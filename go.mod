module ampom

go 1.24
