// smallws reproduces the paper's §5.6 scenario live: a process allocates a
// large address space but works on a small part of it — interactive
// applications, data-intensive jobs migrating towards their data, or
// virtual machines running as processes. AMPoM moves only the working set
// and beats openMosix outright.
//
//	go run ./examples/smallws
package main

import (
	"flag"
	"fmt"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	allocMB := flag.Int64("alloc", 144, "process footprint in MB (the paper uses 575)")
	flag.Parse()
	if *allocMB < 5 {
		cli.Usage("-alloc must be >= 5, have %d", *allocMB)
	}
	fmt.Printf("DGEMM allocating %d MB, working sets from %d MB to %d MB:\n\n",
		*allocMB, *allocMB/5, *allocMB)
	fmt.Printf("%6s | %12s %12s | %8s\n", "ws MB", "openMosix", "AMPoM", "ratio")

	for _, frac := range []int64{5, 4, 3, 2, 1} {
		ws := *allocMB / frac
		w, err := ampom.BuildWorkingSetWorkload(*allocMB, ws, 42)
		cli.Check(err)
		om, err := ampom.Run(ampom.RunConfig{Workload: w, Scheme: ampom.SchemeOpenMosix, Seed: 42})
		cli.Check(err)
		am, err := ampom.Run(ampom.RunConfig{Workload: w, Scheme: ampom.SchemeAMPoM, Seed: 42})
		cli.Check(err)
		fmt.Printf("%6d | %11.2fs %11.2fs | %8.2f\n",
			ws, om.Total.Seconds(), am.Total.Seconds(),
			am.Total.Seconds()/om.Total.Seconds())
	}

	fmt.Println("\nopenMosix pays for the full allocation at freeze time no matter")
	fmt.Println("what; AMPoM transfers only what the migrant actually touches.")
}
