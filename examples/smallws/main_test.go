package main

import (
	"strings"
	"testing"

	"ampom/internal/clitest"
)

func TestSmoke(t *testing.T) {
	out := clitest.Run(t, "-alloc", "20")
	if !strings.Contains(out, "DGEMM allocating 20 MB") || !strings.Contains(out, "ws MB") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Count(out, "\n") < 8 {
		t.Fatalf("expected five sweep rows:\n%s", out)
	}
}
