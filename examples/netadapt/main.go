// netadapt reproduces the paper's §5.5 experiment live: how the three
// schemes behave when the 100 Mb/s cluster interconnect is replaced by a
// tc-shaped 6 Mb/s / 2 ms broadband link, and how AMPoM's Equation 3
// adapts its prefetch depth to the network.
//
//	go run ./examples/netadapt
package main

import (
	"flag"
	"fmt"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	scale := flag.Int64("scale", 1, "divide the example footprints by this")
	flag.Parse()
	if *scale < 1 {
		cli.Usage("-scale must be >= 1, have %d", *scale)
	}

	configs := []struct {
		kernel ampom.Kernel
		mb     int64
	}{
		{ampom.DGEMM, max(57 / *scale, 2)},        // ~115/2 MB
		{ampom.RandomAccess, max(64 / *scale, 2)}, // ~129/2 MB
	}
	networks := []ampom.NetworkProfile{ampom.FastEthernet(), ampom.Broadband()}

	for _, c := range configs {
		w, err := ampom.BuildWorkload(ampom.Entry{Kernel: c.kernel, ProblemSize: c.mb, MemoryMB: c.mb}, 42)
		cli.Check(err)
		fmt.Printf("%s (%d MB):\n", c.kernel, c.mb)
		for _, net := range networks {
			om := must(ampom.Run(ampom.RunConfig{Workload: w, Scheme: ampom.SchemeOpenMosix, Network: net, Seed: 42}))
			np := must(ampom.Run(ampom.RunConfig{Workload: w, Scheme: ampom.SchemeNoPrefetch, Network: net, Seed: 42}))
			am := must(ampom.Run(ampom.RunConfig{Workload: w, Scheme: ampom.SchemeAMPoM, Network: net, Seed: 42}))
			rel := func(r *ampom.Result) float64 {
				return 100 * (r.Total.Seconds() - om.Total.Seconds()) / om.Total.Seconds()
			}
			fmt.Printf("  %-26s AMPoM %+6.1f%%  NoPrefetch %+6.1f%%  (mean N %.1f, RTT est %v)\n",
				net.Name, rel(am), rel(np), am.MeanN, am.FinalRTTEst)
		}
		fmt.Println()
	}
	fmt.Println("On the slow link AMPoM's paging rate r collapses, Equation 3 shrinks")
	fmt.Println("the dependent zone, and random access degrades towards NoPrefetch —")
	fmt.Println("while the sequential kernel stays close to openMosix on both networks.")
}

func must(r *ampom.Result, err error) *ampom.Result {
	cli.Check(err)
	return r
}
