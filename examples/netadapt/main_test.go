package main

import (
	"strings"
	"testing"

	"ampom/internal/clitest"
)

func TestSmoke(t *testing.T) {
	out := clitest.Run(t, "-scale", "16")
	for _, want := range []string{"DGEMM", "RandomAccess", "broadband", "AMPoM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
