// loadbalance demonstrates the paper's §7 outlook on the cluster scenario
// engine: a skewed burst of jobs lands on an 8-node cluster, and the
// periodic load balancer migrates them away under every registered
// balancer policy, end to end through the event engine, the star
// interconnect with oM_infoD monitoring, and the AMPoM prefetcher census.
// Because AMPoM's freeze is orders of magnitude cheaper, the same
// cost-benefit rule fires more often — the "more aggressive migrations"
// the paper predicts — and both makespan and mean slowdown improve; the
// load-vector and mem-usher rows show the openMosix dissemination and
// memory-pressure behaviours beside it.
//
//	go run ./examples/loadbalance
//	go run ./examples/loadbalance -scenario hpc-farm      # the 64-node preset
//	go run ./examples/loadbalance -policies AMPoM,openMosix
//	go run ./examples/loadbalance -spec farm.json         # a saved spec file
//	go run ./examples/loadbalance -fabric two-tier        # switched fabric + gossip infod
package main

import (
	"flag"
	"fmt"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	preset := flag.String("scenario", "", "run a named preset instead of the demo cluster")
	specFile := flag.String("spec", "", "run a saved scenario spec file instead of the demo cluster")
	policies := flag.String("policies", "", "comma-separated balancer policies (default: all registered)")
	fabricFlag := flag.String("fabric", "", "interconnect topology: star (default), two-tier or flat")
	seed := flag.Uint64("seed", 42, "scenario seed")
	flag.Parse()

	var spec ampom.ScenarioSpec
	if *specFile != "" {
		var err error
		spec, err = ampom.LoadScenarioSpec(*specFile)
		if err != nil {
			cli.Fail("%v", err)
		}
	} else if *preset != "" {
		var err error
		spec, err = ampom.ScenarioPreset(*preset)
		if err != nil {
			cli.Usage("%v", err)
		}
	} else {
		// The classic demo: 64 jobs land mostly on node 0 of an 8-node
		// cluster; the balancer runs at 1 Hz.
		spec = ampom.ScenarioSpec{
			Name:            "loadbalance-demo",
			Nodes:           8,
			Procs:           64,
			Skew:            0.8,
			MeanFootprintMB: 96,
			Mix: []ampom.ScenarioMixWeight{
				{Kind: ampom.MixSequential, Weight: 2},
				{Kind: ampom.MixSmallWS, Weight: 1}, // interactive/data-intensive mix (§5.6)
			},
		}.Canonical()
	}
	if *policies != "" {
		spec.Policies = cli.PolicyList(*policies)
	}
	if *fabricFlag != "" {
		k, err := ampom.ParseFabricTopology(*fabricFlag)
		if err != nil {
			cli.Usage("%v", err)
		}
		spec.Fabric.Topology = k
	}
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		cli.Usage("%v", err)
	}

	rep, err := ampom.RunScenario(spec, *seed)
	cli.Check(err)

	fmt.Printf("%d jobs land on a %d-node cluster; balancer runs every %v.\n\n",
		rep.Procs, spec.Nodes, spec.BalancePeriod)
	fmt.Print(rep.Render())
	fmt.Println()
	fmt.Println("openMosix's full-copy freeze makes each migration expensive, so the")
	fmt.Println("balancer holds back; AMPoM's lightweight freeze lets the same rule")
	fmt.Println("migrate aggressively and spread the burst faster.")
}
