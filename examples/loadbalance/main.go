// loadbalance demonstrates the paper's §7 outlook: a burst of jobs lands on
// one node of an 8-node cluster, and a load balancer migrates them away
// under three cost models. Because AMPoM's freeze is orders of magnitude
// cheaper, the same cost-benefit rule fires more often — the "more
// aggressive migrations" the paper predicts — and both makespan and mean
// slowdown improve.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"

	"ampom"
)

func main() {
	cfg := ampom.BalanceConfig{
		Nodes:           8,
		Jobs:            64,
		MeanFootprintMB: 192,
		WorkingSetFrac:  0.25, // interactive/data-intensive mix (§5.6)
	}
	fmt.Println("64 jobs land on node 0 of an 8-node cluster; balancer runs at 1 Hz.")
	fmt.Println()
	fmt.Printf("%-14s %10s %10s %12s %12s\n",
		"policy", "makespan", "slowdown", "migrations", "frozen total")
	for _, st := range ampom.CompareBalancing(cfg) {
		fmt.Printf("%-14v %9.1fs %10.2f %12d %11.1fs\n",
			st.Policy, st.Makespan.Seconds(), st.MeanSlowdown,
			st.Migrations, st.FrozenTotal.Seconds())
	}
	fmt.Println()
	fmt.Println("openMosix's full-copy freeze makes each migration expensive, so the")
	fmt.Println("balancer holds back; AMPoM's lightweight freeze lets the same rule")
	fmt.Println("migrate aggressively and spread the burst faster.")
}
