package main

import (
	"strings"
	"testing"

	"ampom/internal/cli"
	"ampom/internal/clitest"
)

func TestSmokeDemoScenario(t *testing.T) {
	out := clitest.Run(t)
	for _, want := range []string{"loadbalance-demo", "no-migration", "openMosix", "AMPoM", "migrations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeUnknownPresetIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-scenario", "bogus")
	if !strings.Contains(stderr, "unknown preset") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}
