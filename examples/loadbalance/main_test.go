package main

import (
	"strings"
	"testing"

	"ampom/internal/cli"
	"ampom/internal/clitest"
)

func TestSmokeDemoScenario(t *testing.T) {
	out := clitest.Run(t)
	for _, want := range []string{"loadbalance-demo", "no-migration", "openMosix", "AMPoM", "migrations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokePolicySubset(t *testing.T) {
	out := clitest.Run(t, "-policies", "AMPoM")
	if !strings.Contains(out, "AMPoM") || !strings.Contains(out, "no-migration") {
		t.Fatalf("subset report missing expected rows:\n%s", out)
	}
	if strings.Contains(out, "mem-usher") {
		t.Fatalf("excluded policy leaked into the report:\n%s", out)
	}
}

func TestSmokeFabricFlag(t *testing.T) {
	out := clitest.Run(t, "-fabric", "two-tier", "-policies", "AMPoM")
	if !strings.Contains(out, "tiers[AMPoM]") || !strings.Contains(out, "core") {
		t.Fatalf("two-tier demo missing tier stats:\n%s", out)
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage, "-fabric", "hypercube"); !strings.Contains(stderr, "unknown topology") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

func TestSmokeUnknownPolicyIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-policies", "bogus")
	if !strings.Contains(stderr, "unknown balancer policy") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

func TestSmokeUnknownPresetIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-scenario", "bogus")
	if !strings.Contains(stderr, "unknown preset") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}
