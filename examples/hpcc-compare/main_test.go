package main

import (
	"strings"
	"testing"

	"ampom/internal/clitest"
)

func TestSmoke(t *testing.T) {
	out := clitest.Run(t, "-scale", "64")
	for _, want := range []string{"DGEMM", "STREAM", "RandomAccess", "FFT", "prevention"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
