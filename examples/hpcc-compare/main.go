// hpcc-compare runs all four HPCC kernels of the paper's evaluation under
// all three migration schemes at a configurable scale, printing the
// Figure 5/6/7 shapes side by side.
//
//	go run ./examples/hpcc-compare            # 1/8 of paper scale
//	go run ./examples/hpcc-compare -scale 1   # full Table 1 sizes
package main

import (
	"flag"
	"fmt"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	scale := flag.Int64("scale", 8, "divide paper footprints by this")
	flag.Parse()
	if *scale < 1 {
		cli.Usage("-scale must be >= 1, have %d", *scale)
	}

	fmt.Printf("%-14s %6s | %9s %9s %9s | %9s %8s | %10s\n",
		"kernel", "MB", "om total", "np total", "am total", "np faults", "am reqs", "prevention")
	for _, k := range ampom.Kernels() {
		entry := ampom.ScaleEntry(largest(k), *scale)
		w, err := ampom.BuildWorkload(entry, 42)
		cli.Check(err)
		var om, np, am *ampom.Result
		for _, s := range []ampom.Scheme{ampom.SchemeOpenMosix, ampom.SchemeNoPrefetch, ampom.SchemeAMPoM} {
			r, err := ampom.Run(ampom.RunConfig{Workload: w, Scheme: s, Seed: 42})
			cli.Check(err)
			switch s {
			case ampom.SchemeOpenMosix:
				om = r
			case ampom.SchemeNoPrefetch:
				np = r
			case ampom.SchemeAMPoM:
				am = r
			}
		}
		fmt.Printf("%-14v %6d | %8.2fs %8.2fs %8.2fs | %9d %8d | %9.1f%%\n",
			k, entry.MemoryMB,
			om.Total.Seconds(), np.Total.Seconds(), am.Total.Seconds(),
			np.HardFaults, am.HardFaults, 100*am.FaultPrevention(np.HardFaults))
	}
}

// largest picks the biggest Table 1 row of a kernel.
func largest(k ampom.Kernel) ampom.Entry {
	var last ampom.Entry
	for _, e := range ampom.Catalogue() {
		if e.Kernel == k {
			last = e
		}
	}
	return last
}
