package main

import (
	"strings"
	"testing"

	"ampom/internal/clitest"
)

func TestSmoke(t *testing.T) {
	out := clitest.Run(t, "-mb", "8")
	for _, want := range []string{"migrating", "openMosix", "NoPrefetch", "AMPoM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
