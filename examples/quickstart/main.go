// Quickstart: migrate one process under the three schemes of the paper and
// compare freeze time, total runtime and remote paging behaviour.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	mb := flag.Int64("mb", 64, "process footprint in MB")
	flag.Parse()

	// A STREAM-like process (scaled-down Table 1 entry).
	w, err := ampom.BuildWorkload(ampom.Entry{
		Kernel:      ampom.STREAM,
		ProblemSize: *mb,
		MemoryMB:    *mb,
	}, 1)
	cli.Check(err)
	fmt.Printf("migrating %s: %d pages, %v of compute\n\n",
		w.Name, w.Layout.Pages(), w.BaseCompute)

	fmt.Printf("%-12s %10s %10s %12s %14s\n",
		"scheme", "freeze", "total", "fault reqs", "prefetched")
	for _, s := range []ampom.Scheme{ampom.SchemeOpenMosix, ampom.SchemeNoPrefetch, ampom.SchemeAMPoM} {
		r, err := ampom.Run(ampom.RunConfig{Workload: w, Scheme: s, Seed: 1})
		cli.Check(err)
		fmt.Printf("%-12v %10v %10v %12d %14d\n",
			r.Scheme, r.Freeze, r.Total, r.HardFaults, r.PrefetchPages)
	}

	fmt.Println("\nAMPoM freezes ~100x faster than openMosix while finishing in")
	fmt.Println("comparable total time; NoPrefetch freezes fastest but pays a")
	fmt.Println("round trip per page afterwards.")
}
