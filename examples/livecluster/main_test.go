package main

import (
	"path/filepath"
	"strings"
	"testing"

	"ampom"
	"ampom/internal/clitest"
)

func TestSmokeLiveMigration(t *testing.T) {
	out := clitest.Run(t, "-pages", "64")
	if !strings.Contains(out, "memory preserved bit-for-bit") {
		t.Fatalf("live migration did not verify memory:\n%s", out)
	}
	if !strings.Contains(out, "prefetched") {
		t.Fatalf("no prefetch stats:\n%s", out)
	}
}

func TestSmokeRandomMix(t *testing.T) {
	out := clitest.Run(t, "-pages", "64", "-mix", "random")
	if !strings.Contains(out, "memory preserved bit-for-bit") {
		t.Fatalf("random-mix migration did not verify memory:\n%s", out)
	}
}

func TestSmokeMixFromSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := ampom.ScenarioSpec{
		Name:  "live",
		Nodes: 4,
		Mix:   []ampom.ScenarioMixWeight{{Kind: ampom.MixBlocked, Weight: 2}, {Kind: ampom.MixRandom, Weight: 1}},
	}
	if err := ampom.SaveScenarioSpec(path, spec); err != nil {
		t.Fatal(err)
	}
	out := clitest.Run(t, "-pages", "64", "-spec", path)
	if !strings.Contains(out, "mix blocked drawn from spec") {
		t.Fatalf("spec-driven mix not reported:\n%s", out)
	}
	if !strings.Contains(out, "memory preserved bit-for-bit") {
		t.Fatalf("spec-driven migration did not verify memory:\n%s", out)
	}
}
