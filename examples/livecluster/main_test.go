package main

import (
	"strings"
	"testing"

	"ampom/internal/clitest"
)

func TestSmokeLiveMigration(t *testing.T) {
	out := clitest.Run(t, "-pages", "64")
	if !strings.Contains(out, "memory preserved bit-for-bit") {
		t.Fatalf("live migration did not verify memory:\n%s", out)
	}
	if !strings.Contains(out, "prefetched") {
		t.Fatalf("no prefetch stats:\n%s", out)
	}
}

func TestSmokeRandomMix(t *testing.T) {
	out := clitest.Run(t, "-pages", "64", "-mix", "random")
	if !strings.Contains(out, "memory preserved bit-for-bit") {
		t.Fatalf("random-mix migration did not verify memory:\n%s", out)
	}
}
