// livecluster migrates a real process between two real TCP endpoints on
// this machine, with its workload drawn from the cluster scenario engine:
// the process replays a scenario mix's page-reference trace over actual
// 4 KiB byte pages, the freeze ships the PCB plus the three currently
// accessed pages, and the migrant remote-pages the rest from its origin —
// with AMPoM prefetching driven by the measured loopback round-trip time.
// The final memory checksum is compared against a never-migrated run.
//
//	go run ./examples/livecluster
//	go run ./examples/livecluster -mix blocked -pages 512
//	go run ./examples/livecluster -spec farm.json   # mix from a saved spec
package main

import (
	"flag"
	"fmt"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	pages := flag.Int("pages", 2048, "process footprint in 4 KiB pages")
	passes := flag.Int("passes", 2, "how many passes over the footprint")
	mixName := flag.String("mix", "sequential", "scenario mix to replay: sequential, blocked, random, small-ws")
	specFile := flag.String("spec", "", "replay the heaviest-weighted mix of this scenario spec file instead of -mix")
	flag.Parse()
	if *pages < 8 || *passes < 1 {
		cli.Usage("need -pages >= 8 and -passes >= 1")
	}

	var mix ampom.ScenarioMix
	if *specFile != "" {
		// One scenario process made flesh: the saved spec's dominant mix is
		// the trace shape this live run replays over real byte pages.
		spec, err := ampom.LoadScenarioSpec(*specFile)
		if err != nil {
			cli.Fail("%v", err)
		}
		best := spec.Mix[0]
		for _, m := range spec.Mix[1:] {
			if m.Weight > best.Weight {
				best = m
			}
		}
		mix = best.Kind
		fmt.Printf("mix %v drawn from spec %s (scenario %s)\n", mix, *specFile, spec.Name)
	} else {
		switch *mixName {
		case "sequential":
			mix = ampom.MixSequential
		case "blocked":
			mix = ampom.MixBlocked
		case "random":
			mix = ampom.MixRandom
		case "small-ws", "smallws":
			mix = ampom.MixSmallWS
		default:
			cli.Usage("unknown mix %q", *mixName)
		}
	}

	// The program is the same page-reference shape the scenario engine
	// simulates for this mix — the live run is one scenario process made
	// flesh.
	program := ampom.LiveProgramFor(mix, *pages, *passes, 7)
	fmt.Printf("replaying the %v scenario mix: %d refs over %d pages (%d MiB)\n",
		mix, len(program), *pages, *pages*4096>>20)

	// Baseline: the same program without migration.
	solo, err := ampom.ListenLiveNode("solo", "127.0.0.1:0")
	cli.Check(err)
	defer solo.Close()
	baseline := ampom.SpawnLiveProc(solo, 1, *pages, program, 7).RunLocal()

	// Two live nodes on the loopback.
	origin, err := ampom.ListenLiveNode("origin", "127.0.0.1:0")
	cli.Check(err)
	defer origin.Close()
	dest, err := ampom.ListenLiveNode("dest", "127.0.0.1:0")
	cli.Check(err)
	defer dest.Close()
	fmt.Printf("origin node %s, destination node %s\n", origin.Addr(), dest.Addr())

	proc := ampom.SpawnLiveProc(origin, 1, *pages, program, 7)
	proc.Step(len(program) / (2 * *passes)) // run half a pass at the origin first

	fmt.Printf("migrating pid 1 mid-execution...\n")
	sum, err := ampom.MigrateLive(proc, dest.Addr(), ampom.LiveMigrateOptions{Prefetch: true})
	cli.Check(err)

	migrant := dest.Proc(1)
	st := migrant.Stats
	fmt.Printf("\nmigrant finished. memory checksum %016x\n", sum)
	fmt.Printf("baseline (never migrated)        %016x\n", baseline)
	if sum != baseline {
		cli.Fail("MEMORY CORRUPTED BY MIGRATION")
	}
	fmt.Println("memory preserved bit-for-bit ✓")
	fmt.Printf("\nfault requests  %d\n", st.FaultRequests)
	fmt.Printf("demand pages    %d\n", st.DemandPages)
	fmt.Printf("prefetched      %d (%.1f per request)\n",
		st.PrefetchPages, float64(st.PrefetchPages)/float64(st.FaultRequests))
	fmt.Printf("bytes fetched   %d\n", st.BytesFetched)
	fmt.Printf("pages at dest   %d, left at origin %d\n",
		migrant.LocalPages(), proc.LocalPages())
}
