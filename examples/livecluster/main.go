// livecluster migrates a real process between two real TCP endpoints on
// this machine: the process's memory is actual 4 KiB byte pages, the freeze
// ships the PCB plus the three currently accessed pages, and the migrant
// remote-pages the rest from its origin — with AMPoM prefetching driven by
// the measured loopback round-trip time. The final memory checksum is
// compared against a never-migrated run.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"

	"ampom"
)

func main() {
	const pages = 2048 // 8 MiB of real memory
	program := ampom.SequentialLiveProgram(pages, 2)

	// Baseline: the same program without migration.
	solo, err := ampom.ListenLiveNode("solo", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer solo.Close()
	baseline := ampom.SpawnLiveProc(solo, 1, pages, program, 7).RunLocal()

	// Two live nodes on the loopback.
	origin, err := ampom.ListenLiveNode("origin", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer origin.Close()
	dest, err := ampom.ListenLiveNode("dest", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dest.Close()
	fmt.Printf("origin node %s, destination node %s\n", origin.Addr(), dest.Addr())

	proc := ampom.SpawnLiveProc(origin, 1, pages, program, 7)
	proc.Step(pages / 2) // run half a pass at the origin first

	fmt.Printf("migrating pid 1 (%d pages = %d MiB) mid-execution...\n", pages, pages*4096>>20)
	sum, err := ampom.MigrateLive(proc, dest.Addr(), ampom.LiveMigrateOptions{Prefetch: true})
	if err != nil {
		log.Fatal(err)
	}

	migrant := dest.Proc(1)
	st := migrant.Stats
	fmt.Printf("\nmigrant finished. memory checksum %016x\n", sum)
	fmt.Printf("baseline (never migrated)        %016x\n", baseline)
	if sum != baseline {
		log.Fatal("MEMORY CORRUPTED BY MIGRATION")
	}
	fmt.Println("memory preserved bit-for-bit ✓")
	fmt.Printf("\nfault requests  %d\n", st.FaultRequests)
	fmt.Printf("demand pages    %d\n", st.DemandPages)
	fmt.Printf("prefetched      %d (%.1f per request)\n",
		st.PrefetchPages, float64(st.PrefetchPages)/float64(st.FaultRequests))
	fmt.Printf("bytes fetched   %d\n", st.BytesFetched)
	fmt.Printf("pages at dest   %d, left at origin %d\n",
		migrant.LocalPages(), proc.LocalPages())
}
