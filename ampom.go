// Package ampom is a reproduction of "Lightweight Process Migration and
// Memory Prefetching in openMosix" (Ho, Wang, Lau — IPDPS 2008): the AMPoM
// adaptive prefetching algorithm, the lightweight migration mechanism it
// rides on, and the openMosix-style substrate (deterministic cluster
// simulator, remote paging protocol, oM_infoD monitoring daemon, HPCC
// workload models) needed to regenerate every figure of the paper's
// evaluation.
//
// This package is the public facade: it re-exports the stable surface of
// the internal packages so applications can be written against one import.
//
//	w, _ := ampom.BuildWorkload(ampom.Entry{Kernel: ampom.STREAM, MemoryMB: 64}, 1)
//	r, _ := ampom.Run(ampom.RunConfig{Workload: w, Scheme: ampom.SchemeAMPoM})
//	fmt.Println(r.Freeze, r.Total, r.HardFaults)
//
// The deeper layers remain available for advanced use: the experiment
// harness regenerates paper figures (NewCampaign), and the live emulation
// (internal/emu) migrates real byte pages between TCP endpoints.
package ampom

import (
	"ampom/internal/campaign"
	"ampom/internal/clusterd"
	"ampom/internal/core"
	"ampom/internal/emu"
	"ampom/internal/fabric"
	"ampom/internal/harness"
	"ampom/internal/hpcc"
	"ampom/internal/memory"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
	"ampom/internal/resultstore"
	"ampom/internal/scenario"
	"ampom/internal/sched"
	"ampom/internal/simtime"
)

// Core aliases: virtual time and the AMPoM algorithm.
type (
	// Time is an instant of virtual time (nanoseconds).
	Time = simtime.Time
	// Duration is a span of virtual time (nanoseconds).
	Duration = simtime.Duration
	// PageNum identifies a page within a process address space.
	PageNum = memory.PageNum
	// PrefetcherConfig tunes the AMPoM algorithm (window length, dmax,
	// prefetch cap, read-ahead baseline).
	PrefetcherConfig = core.Config
	// Prefetcher is the per-process AMPoM engine.
	Prefetcher = core.Prefetcher
	// Analysis is one per-fault AMPoM decision.
	Analysis = core.Analysis
	// Estimates carries the monitoring daemon's measurements into Eq. 3.
	Estimates = core.Estimates
)

// Workload aliases: the HPCC kernel models of the paper's evaluation.
type (
	// Kernel identifies an HPCC kernel (DGEMM, STREAM, RandomAccess, FFT).
	Kernel = hpcc.Kernel
	// Entry is one Table 1 row: kernel, problem size, memory footprint.
	Entry = hpcc.Entry
	// Workload is a built kernel run: layout, reference stream, compute.
	Workload = hpcc.Workload
)

// The four kernels.
const (
	DGEMM        = hpcc.DGEMM
	STREAM       = hpcc.STREAM
	RandomAccess = hpcc.RandomAccess
	FFT          = hpcc.FFT
)

// Experiment aliases: running migrations and reading results.
type (
	// Scheme selects the migration mechanism.
	Scheme = migrate.Scheme
	// RunConfig describes one migration experiment.
	RunConfig = migrate.RunConfig
	// Result carries a run's timings and fault census.
	Result = migrate.Result
	// Calibration holds the simulator's cost constants.
	Calibration = migrate.Calibration
	// NetworkProfile describes a link (latency, bandwidth).
	NetworkProfile = netmodel.Profile
)

// The three migration schemes of the paper, plus the two baselines its
// Figure 2 and related work describe.
const (
	SchemeOpenMosix     = migrate.OpenMosix
	SchemeNoPrefetch    = migrate.NoPrefetch
	SchemeAMPoM         = migrate.AMPoM
	SchemeFFAFileServer = migrate.FFAFileServer
	SchemePrecopy       = migrate.Precopy
)

// Schemes lists the paper's three evaluated schemes; AllSchemes adds the
// FFA-with-file-server and precopy baselines.
func Schemes() []Scheme    { return migrate.Schemes() }
func AllSchemes() []Scheme { return migrate.AllSchemes() }

// Campaign aliases: regenerating the paper's tables and figures.
type (
	// Campaign memoises an experiment matrix and renders figures.
	Campaign = harness.Matrix
	// CampaignConfig scopes a campaign (scale divisor, seed, worker count).
	CampaignConfig = harness.Config
	// FigureTable is a rendered experiment artefact.
	FigureTable = harness.Table
)

// Campaign-engine aliases: the parallel worker pool underneath the figure
// harness, usable directly for custom experiment sweeps.
type (
	// CampaignJob identifies one experiment cell (kernel, footprint,
	// scheme, network, prefetcher configuration).
	CampaignJob = campaign.Job
	// CampaignEngine fans jobs across a worker pool with a deterministic,
	// concurrency-safe result cache.
	CampaignEngine = campaign.Engine
	// CampaignOptions configures a CampaignEngine.
	CampaignOptions = campaign.Options
	// CampaignProgress is one progress/ETA sample of a running batch.
	CampaignProgress = campaign.Progress
	// CampaignRunError aggregates the failures of a campaign batch.
	CampaignRunError = campaign.RunError
	// CampaignScenarioProgress is one per-policy progress sample of an
	// executing scenario job (CampaignOptions.OnScenarioProgress).
	CampaignScenarioProgress = campaign.ScenarioProgress
)

// NewCampaignEngine returns a parallel experiment engine. Per-job seeds are
// derived from the job key, so any worker count produces identical results.
func NewCampaignEngine(opts CampaignOptions) *CampaignEngine { return campaign.New(opts) }

// DeriveJobSeed exposes the engine's seed derivation: a pure function of
// the campaign base seed and a job fingerprint.
func DeriveJobSeed(base uint64, fingerprint string) uint64 {
	return campaign.DeriveSeed(base, fingerprint)
}

// Result-store aliases: the persistent content-addressed cache behind the
// campaign engine (CampaignOptions.Store), the batch CLIs (-store) and
// the ampom-clusterd service.
type (
	// ResultStore maps campaign job fingerprints to report bytes on disk,
	// with atomic writes and per-cell integrity checks.
	ResultStore = resultstore.Store
	// ResultStoreStats counts a store's hits, misses, corruptions and
	// traffic.
	ResultStoreStats = resultstore.Stats
)

// OpenResultStore returns a store rooted at dir, creating it if needed.
func OpenResultStore(dir string) (*ResultStore, error) { return resultstore.Open(dir) }

// ResultStoreKey maps a job fingerprint to its content-addressed cell
// key — the job handle of the ampom-clusterd HTTP API.
func ResultStoreKey(fingerprint string) string { return resultstore.Key(fingerprint) }

// Campaign-service aliases: the long-lived HTTP daemon (ampom-clusterd)
// and its client (`ampom-cluster -server`).
type (
	// ClusterServer is the campaign service: submit specs, stream
	// progress, fetch byte-identical reports from the shared store.
	ClusterServer = clusterd.Server
	// ClusterServerConfig configures a ClusterServer.
	ClusterServerConfig = clusterd.Config
	// ClusterClient speaks the service's HTTP API.
	ClusterClient = clusterd.Client
	// ClusterJobStatus is one job's wire state (key, status, cached).
	ClusterJobStatus = clusterd.JobStatus
	// ClusterEvent is one line of a job's NDJSON event stream.
	ClusterEvent = clusterd.Event
	// ClusterDiffRequest asks the service to compare two completed jobs.
	ClusterDiffRequest = clusterd.DiffRequest
	// ClusterDiffResponse reports a server-side comparison.
	ClusterDiffResponse = clusterd.DiffResponse
	// ClusterStats is the service's counter snapshot (GET /v1/stats).
	ClusterStats = clusterd.Stats
)

// NewClusterServer returns a campaign service for the configuration.
func NewClusterServer(cfg ClusterServerConfig) (*ClusterServer, error) { return clusterd.New(cfg) }

// NewClusterClient returns a client for the service at baseURL.
func NewClusterClient(baseURL string) *ClusterClient { return clusterd.NewClient(baseURL) }

// NewPrefetcher returns an AMPoM engine for an address space of totalPages
// pages. A zero PrefetcherConfig takes the paper's defaults (l=20, dmax=4).
func NewPrefetcher(cfg PrefetcherConfig, totalPages int64) (*Prefetcher, error) {
	return core.New(cfg, totalPages)
}

// DefaultPrefetcherConfig returns the paper's AMPoM configuration.
func DefaultPrefetcherConfig() PrefetcherConfig { return core.DefaultConfig() }

// Catalogue returns the paper's Table 1 configurations.
func Catalogue() []Entry { return hpcc.Catalogue() }

// Kernels lists the four modelled HPCC kernels.
func Kernels() []Kernel { return hpcc.Kernels() }

// BuildWorkload materialises a kernel run. MemoryMB must be set; seed makes
// stochastic kernels reproducible.
func BuildWorkload(e Entry, seed uint64) (*Workload, error) { return hpcc.Build(e, seed) }

// BuildWorkingSetWorkload builds the §5.6 modified DGEMM: allocMB allocated,
// wsMB actually worked on.
func BuildWorkingSetWorkload(allocMB, wsMB int64, seed uint64) (*Workload, error) {
	return hpcc.BuildWorkingSet(allocMB, wsMB, seed)
}

// ScaleEntry shrinks a Table 1 entry by an integer divisor for quick runs.
func ScaleEntry(e Entry, div int64) Entry { return hpcc.Scaled(e, div) }

// Run executes one migration experiment on the simulated cluster.
func Run(cfg RunConfig) (*Result, error) { return migrate.Run(cfg) }

// FastEthernet returns the Gideon 300 testbed's network profile.
func FastEthernet() NetworkProfile { return netmodel.FastEthernet() }

// Broadband returns the paper's §5.5 tc-shaped 6 Mb/s / 2 ms profile.
func Broadband() NetworkProfile { return netmodel.Broadband() }

// ShapeNetwork applies tc-style traffic shaping to a profile.
func ShapeNetwork(p NetworkProfile, bitsPerSecond float64, oneWayLatency Duration) NetworkProfile {
	return netmodel.Shape(p, bitsPerSecond, oneWayLatency)
}

// NewCampaign returns an experiment campaign that regenerates the paper's
// tables and figures. Scale 1 reproduces paper-scale runs; larger divisors
// shrink footprints for quick exploration.
func NewCampaign(cfg CampaignConfig) *Campaign { return harness.NewMatrix(cfg) }

// Locality measures a workload's page-level spatial and temporal locality
// (the Figure 4 axes).
func Locality(w *Workload) (spatial, temporal float64) { return hpcc.Locality(w) }

// Load-balancing aliases (the paper's §7 outlook): the v2 surface is the
// open BalancerPolicy interface plus a sorted, deterministic registry, so
// new cost models plug in beside the built-in five.
type (
	// BalancerPolicy decides when and where the load balancer migrates.
	// Implement it (Name, MigrationCost, ShouldMigrate) and register with
	// RegisterBalancerPolicy to add a policy to every report.
	BalancerPolicy = sched.BalancerPolicy
	// BalancerView is the cluster state a policy decides on.
	BalancerView = sched.View
	// BalancerNodeView is one node of a BalancerView.
	BalancerNodeView = sched.NodeView
	// BalancerProcView is the migration candidate a policy is asked about.
	BalancerProcView = sched.ProcView
	// BalanceConfig describes a load-balancing study.
	BalanceConfig = sched.Config
	// BalanceStats summarises a study.
	BalanceStats = sched.Stats
)

// The built-in balancer policy names — the registry keys reports are keyed
// by, in registry-sorted order.
const (
	PolicyAMPoM       = sched.NameAMPoM
	PolicyLoadVector  = sched.NameLoadVector
	PolicyMemUsher    = sched.NameMemUsher
	PolicyNoMigration = sched.NameNoMigration
	PolicyOpenMosix   = sched.NameOpenMosix
	PolicyQueueGossip = sched.NameQueueGossip
)

// RegisterBalancerPolicy adds a policy to the registry; registered
// policies appear in default scenario reports and policy sweeps.
func RegisterBalancerPolicy(p BalancerPolicy) error { return sched.Register(p) }

// BalancerPolicyNames lists every registered policy name, sorted.
func BalancerPolicyNames() []string { return sched.Names() }

// LookupBalancerPolicy returns the policy registered under name.
func LookupBalancerPolicy(name string) (BalancerPolicy, bool) { return sched.Lookup(name) }

// BalancerPolicies resolves registry names to policies, preserving order.
func BalancerPolicies(names ...string) ([]BalancerPolicy, error) { return sched.ByNames(names) }

// SimulateBalancer runs the §7 load-balancing study under one policy.
func SimulateBalancer(cfg BalanceConfig, pol BalancerPolicy) BalanceStats {
	return sched.Simulate(cfg, pol)
}

// CompareBalancers runs each policy on the same workload — every
// registered policy, in registry-sorted order, when none are given.
func CompareBalancers(cfg BalanceConfig, pols ...BalancerPolicy) []BalanceStats {
	return sched.Compare(cfg, pols...)
}

// BalancePolicy is the closed v1 policy enum.
//
// Deprecated: use BalancerPolicy and the registry; convert with Balancer().
type BalancePolicy = sched.Policy

// The v1 balancing policies.
//
// Deprecated: use the registry names (PolicyNoMigration, PolicyOpenMosix,
// PolicyAMPoM) or sched's policy instances.
const (
	BalanceNone      = sched.NoMigration
	BalanceOpenMosix = sched.OpenMosixCost
	BalanceAMPoM     = sched.AMPoMCost
)

// SimulateBalancing runs the §7 study under one v1 policy.
//
// Deprecated: use SimulateBalancer with a BalancerPolicy.
func SimulateBalancing(cfg BalanceConfig, p BalancePolicy) BalanceStats {
	return sched.Simulate(cfg, p.Balancer())
}

// CompareBalancing runs the three v1 policies on the same workload, in the
// v1 order (no-migration, openMosix, AMPoM).
//
// Deprecated: use CompareBalancers, which is variable-width and covers the
// whole registry.
func CompareBalancing(cfg BalanceConfig) [3]BalanceStats {
	return [3]BalanceStats{
		sched.Simulate(cfg, sched.NoMigrationPolicy),
		sched.Simulate(cfg, sched.OpenMosixPolicy),
		sched.Simulate(cfg, sched.AMPoMPolicy),
	}
}

// Cluster-scenario aliases: declarative multi-node runs composing the event
// engine, cluster nodes, infod dissemination, the load balancer and the
// AMPoM prefetcher.
type (
	// ScenarioSpec declares one cluster scenario (nodes, heterogeneity,
	// arrivals, trace mixes, network tier, churn).
	ScenarioSpec = scenario.Spec
	// ScenarioReport is the cluster-level outcome under every policy.
	ScenarioReport = scenario.Report
	// ScenarioSchemeStats is one policy's row of a scenario report.
	ScenarioSchemeStats = scenario.SchemeStats
	// ScenarioMix names a per-process page-reference shape.
	ScenarioMix = scenario.MixKind
	// ScenarioMixWeight weights one mix inside a scenario workload.
	ScenarioMixWeight = scenario.MixWeight
	// ScenarioChurn is one scripted mid-run disturbance.
	ScenarioChurn = scenario.ChurnEvent
	// ScenarioJob wraps a scenario as a campaign job (fingerprinted,
	// single-flight, parallel-safe) for CampaignEngine.RunScenario(s).
	ScenarioJob = campaign.ScenarioJob
	// ScenarioFabric selects a scenario's interconnect topology (star,
	// two-tier, flat) and gossip dissemination parameters.
	ScenarioFabric = scenario.FabricSpec
	// FabricTopology names an interconnect topology.
	FabricTopology = fabric.Kind
	// FabricTierStats is one interconnect tier's utilisation row of a
	// scenario report (switched fabrics only).
	FabricTierStats = fabric.TierStats
)

// The built-in fabric topologies: the legacy single-hub star (the default,
// with paired infod daemons), the switched two-tier rack fabric and the
// flat full-bisection fabric (both monitored by decentralised gossip).
const (
	FabricStar    = fabric.KindStar
	FabricTwoTier = fabric.KindTwoTier
	FabricFlat    = fabric.KindFlat
)

// FabricTopologyNames lists the built-in topology names.
func FabricTopologyNames() []string { return fabric.KindNames() }

// ParseFabricTopology resolves a topology name ("star", "two-tier",
// "flat"); the empty string is the star default.
func ParseFabricTopology(s string) (FabricTopology, error) { return fabric.ParseKind(s) }

// The scenario reference mixes.
const (
	MixSequential = scenario.MixSequential
	MixBlocked    = scenario.MixBlocked
	MixRandom     = scenario.MixRandom
	MixSmallWS    = scenario.MixSmallWS
)

// ScenarioPresetNames lists the built-in scenarios of cmd/ampom-cluster.
func ScenarioPresetNames() []string { return scenario.PresetNames() }

// ScenarioChurnKindNames lists every churn-event kind a spec's churn
// timeline accepts, in registry order — the names the JSON codec reads and
// writes.
func ScenarioChurnKindNames() []string { return scenario.ChurnKindNames() }

// ScenarioPreset returns a named built-in scenario.
func ScenarioPreset(name string) (ScenarioSpec, error) { return scenario.Preset(name) }

// ScenarioPresets returns every built-in scenario.
func ScenarioPresets() []ScenarioSpec { return scenario.Presets() }

// RunScenario executes one cluster scenario under the spec's policy set
// (every registered balancing policy by default). It is a pure function of
// (spec, seed): equal inputs render byte-identical reports.
func RunScenario(spec ScenarioSpec, seed uint64) (*ScenarioReport, error) {
	return scenario.Run(spec, seed)
}

// RunScenarioShards is RunScenario with the event engine sharded per rack
// band across the given number of conservative-window workers (two-tier
// fabrics only; clamped to the rack count, and any other topology runs
// sequentially). Sharding is purely an execution strategy: every shard
// count renders a byte-identical report.
func RunScenarioShards(spec ScenarioSpec, seed uint64, shards int) (*ScenarioReport, error) {
	return scenario.RunShards(spec, seed, shards)
}

// Scenario I/O: specs are versioned JSON documents (unknown fields
// rejected, omitted fields defaulted) and reports encode to JSON and CSV,
// so scenarios and their outcomes are shareable on-disk artefacts.

// LoadScenarioSpec reads a spec file written by SaveScenarioSpec (or by
// hand); the result is canonical and validated.
func LoadScenarioSpec(path string) (ScenarioSpec, error) { return scenario.LoadSpec(path) }

// SaveScenarioSpec writes the canonical form of the spec as versioned JSON.
func SaveScenarioSpec(path string, s ScenarioSpec) error { return scenario.SaveSpec(path, s) }

// DecodeScenarioSpec parses a versioned JSON spec document.
func DecodeScenarioSpec(data []byte) (ScenarioSpec, error) { return scenario.DecodeSpec(data) }

// EncodeScenarioSpec renders the canonical spec as versioned JSON.
func EncodeScenarioSpec(s ScenarioSpec) ([]byte, error) { return scenario.EncodeSpec(s) }

// ScenarioReportsJSON renders a batch of reports as one JSON array
// (nil slots from failed runs are skipped).
func ScenarioReportsJSON(reports []*ScenarioReport) ([]byte, error) {
	return scenario.ReportsJSON(reports)
}

// ScenarioReportsCSV renders a batch of reports as one CSV document with a
// single header; the scenario and seed columns distinguish the runs.
func ScenarioReportsCSV(reports []*ScenarioReport) string { return scenario.ReportsCSV(reports) }

// DecodeScenarioReports parses a JSON report artefact (a single report
// object or an array) back into reports — the decoding half of the report
// I/O round trip.
func DecodeScenarioReports(data []byte) ([]*ScenarioReport, error) {
	return scenario.DecodeReports(data)
}

// LoadScenarioReports reads a saved report artefact from disk.
func LoadScenarioReports(path string) ([]*ScenarioReport, error) { return scenario.LoadReports(path) }

// DiffScenarioReports compares two report artefacts and returns one line
// per divergence; empty means the recorded runs are identical. Saved
// artefacts thereby become regression gates (ampom-cluster -diff).
func DiffScenarioReports(a, b []byte) ([]string, error) { return scenario.DiffReportsData(a, b) }

// DiffScenarioReportFiles compares two saved report artefacts by path.
func DiffScenarioReportFiles(pathA, pathB string) ([]string, error) {
	return scenario.DiffReportFiles(pathA, pathB)
}

// ScenarioDiffOptions tunes report comparison: per-column relative
// epsilons for the float columns (counts always compare exactly) and the
// per-column summary mode. The zero value is the exact gate.
type ScenarioDiffOptions = scenario.DiffOptions

// DiffScenarioReportsOpts compares two report artefacts under explicit
// comparison options.
func DiffScenarioReportsOpts(a, b []byte, opts ScenarioDiffOptions) ([]string, error) {
	return scenario.DiffReportsDataOpts(a, b, opts)
}

// DiffScenarioReportFilesOpts compares two saved report artefacts by path
// under explicit comparison options.
func DiffScenarioReportFilesOpts(pathA, pathB string, opts ScenarioDiffOptions) ([]string, error) {
	return scenario.DiffReportFilesOpts(pathA, pathB, opts)
}

// LiveProgramFor drains the scenario mix's page-reference trace into a live
// emulation program over the given footprint: the simulated scenarios and
// the real-TCP livecluster example replay one access shape. The trace spans
// the whole footprint (the mix's working-set fraction is a simulation-side
// concern): a live program must eventually touch every page so the final
// memory-checksum comparison against a never-migrated run is meaningful.
func LiveProgramFor(mix ScenarioMix, pages, passes int, seed uint64) []LiveOp {
	if passes < 1 {
		passes = 1
	}
	var ops []LiveOp
	for pass := 0; pass < passes; pass++ {
		src := mix.CoverTrace(int64(pages), seed+uint64(pass))()
		for {
			ref, ok := src.Next()
			if !ok {
				break
			}
			ops = append(ops, LiveOp{Page: int(ref.Page), Write: pass == 0, Val: byte(int(ref.Page) + pass)})
		}
	}
	return ops
}

// Live emulation aliases: real TCP nodes moving real byte pages.
type (
	// LiveNode is a TCP-listening emulated cluster node.
	LiveNode = emu.Node
	// LiveProc is a process hosted on a LiveNode.
	LiveProc = emu.Proc
	// LiveOp is one instruction of a live process's program.
	LiveOp = emu.Op
	// LiveMigrateOptions configures a live migration.
	LiveMigrateOptions = emu.MigrateOptions
)

// ListenLiveNode starts a live emulation node on addr.
func ListenLiveNode(name, addr string) (*LiveNode, error) { return emu.Listen(name, addr) }

// SpawnLiveProc creates a process with real byte pages on a live node.
func SpawnLiveProc(n *LiveNode, pid, pages int, program []LiveOp, seed uint64) *LiveProc {
	return emu.Spawn(n, pid, pages, program, seed)
}

// MigrateLive performs a live migration over TCP and blocks until the
// migrant finishes, returning its final memory checksum.
func MigrateLive(p *LiveProc, destAddr string, opts LiveMigrateOptions) (uint64, error) {
	return emu.Migrate(p, destAddr, opts)
}

// SequentialLiveProgram builds a multi-pass sequential page program.
func SequentialLiveProgram(pages, passes int) []LiveOp { return emu.SequentialProgram(pages, passes) }

// StridedLiveProgram builds a strided page program.
func StridedLiveProgram(pages, count, stride int) []LiveOp {
	return emu.StridedProgram(pages, count, stride)
}
