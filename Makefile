# Developer/CI entry points. `make ci` is the gate: formatting, vet, build,
# the full test suite, the race detector over the concurrent campaign
# engine, the binary smoke tests, and a short fuzz pass over the AMPoM
# prefetcher and the trace combinators.

GO ?= go

.PHONY: ci fmt-check vet build test race examples-smoke fuzz-smoke bench bench-campaign bench-scenario

ci: fmt-check vet build test race examples-smoke fuzz-smoke

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every binary under cmd/ and examples/ is built and run with a tiny
# configuration through its package's smoke tests.
examples-smoke:
	$(GO) test -count=1 ./cmd/... ./examples/...

# Short fuzz passes over the AMPoM per-fault analysis and the trace
# combinator algebra (the full corpora live in the build cache; run with a
# longer -fuzztime to dig).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzPrefetcherFault -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzCompose -fuzztime 10s ./internal/trace

# BenchmarkCampaign compares a sequential full-matrix campaign against the
# worker pool (byte-identical output either way).
bench-campaign:
	$(GO) test -run '^$$' -bench BenchmarkCampaign -benchtime 2x .

# BenchmarkScenario runs the 64-node / 256-process preset end to end, so
# the perf trajectory captures cluster-scale numbers.
bench-scenario:
	$(GO) test -run '^$$' -bench '^BenchmarkScenario$$' -benchtime 2x .

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
