# Developer/CI entry points. `make ci` is the gate: formatting, vet, build,
# the full test suite, and the race detector over the concurrent campaign
# engine.

GO ?= go

.PHONY: ci fmt-check vet build test race bench bench-campaign

ci: fmt-check vet build test race

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BenchmarkCampaign compares a sequential full-matrix campaign against the
# worker pool (byte-identical output either way).
bench-campaign:
	$(GO) test -run '^$$' -bench BenchmarkCampaign -benchtime 2x .

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
