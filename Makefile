# Developer/CI entry points. `make ci` is the gate: formatting, vet, build,
# the full test suite, the race detector over the concurrent campaign
# engine, the binary smoke tests, the campaign-service smoke (HTTP
# submit, dedup and store-hit paths), a short fuzz pass over the AMPoM
# prefetcher, the trace combinators and the scenario spec codec, one
# bench-balance iteration so policy-dispatch overhead is tracked, and one
# bench-fabric iteration asserting the 512-, 4096- and 16384-node
# presets' event budgets.

GO ?= go

.PHONY: ci fmt-check vet build test race examples-smoke clusterd-smoke fuzz-smoke bench bench-campaign bench-scenario bench-balance bench-fabric bench-json profile

ci: fmt-check vet build test race examples-smoke clusterd-smoke fuzz-smoke bench-balance bench-fabric

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every binary under cmd/ and examples/ is built and run with a tiny
# configuration through its package's smoke tests.
examples-smoke:
	$(GO) test -count=1 ./cmd/... ./examples/...

# The campaign service end to end: submit over HTTP, byte-identical to
# the batch engine, dedup on resubmission, store hit across a server
# restart.
clusterd-smoke:
	$(GO) test -count=1 -run '^TestClusterdSmoke$$' ./internal/clusterd

# Short fuzz passes over the AMPoM per-fault analysis, the trace
# combinator algebra, the scenario spec JSON codec and the event queue's
# differential model against container/heap (the full corpora live in the
# build cache; run with a longer -fuzztime to dig).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzPrefetcherFault -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzCompose -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzSpecRoundTrip -fuzztime 10s ./internal/scenario
	$(GO) test -run '^$$' -fuzz FuzzQueueVsHeap -fuzztime 10s ./internal/eventq

# BenchmarkCampaign compares a sequential full-matrix campaign against the
# worker pool (byte-identical output either way).
bench-campaign:
	$(GO) test -run '^$$' -bench BenchmarkCampaign -benchtime 2x .

# BenchmarkScenario runs the 64-node / 256-process preset end to end, so
# the perf trajectory captures cluster-scale numbers.
bench-scenario:
	$(GO) test -run '^$$' -bench '^BenchmarkScenario$$' -benchtime 2x .

# BenchmarkPolicySweep runs the 64-node preset under every registered
# balancer policy, so the dynamic-dispatch overhead of the open policy
# registry is tracked per PR.
bench-balance:
	$(GO) test -run '^$$' -bench '^BenchmarkPolicySweep$$' -benchtime 1x .

# BenchmarkFabric{512,512Failures,4096,16384,16384Shards} run the rack-farm
# (512n/2048p, failure-free and under the crash/evacuation/link-flap
# script), mega-farm (4096n/16384p) and giga-farm (16384n/65536p)
# presets on their two-tier switched fabrics with gossip dissemination —
# the giga-farm twice, sequentially and under the sharded event engine at
# one shard per rack — and FAIL if any policy's
# events-per-simulated-second exceeds the fixed budgets — the scale-out
# regression gates the incremental cluster view, the bounded partial-view
# gossip plane, the conservative shard scheduler and the failure plane are
# held to.
bench-fabric:
	$(GO) test -run '^$$' -bench '^BenchmarkFabric(512|512Failures|4096|16384|16384Shards)$$' -benchtime 1x -timeout 30m .

# bench-json runs the fabric gates and records them machine-readably in
# BENCH_fabric.json (benchmark name -> ns/op, events/sim-s and the other
# reported metrics), so the perf trajectory is diffable across PRs.
bench-json:
	$(GO) test -run '^$$' -bench '^BenchmarkFabric(512|512Failures|4096|16384|16384Shards)$$' -benchtime 1x -timeout 30m . \
		| $(GO) run ./cmd/ampom-benchjson -o BENCH_fabric.json
	@cat BENCH_fabric.json

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# profile runs the rack-farm preset (trimmed to the CI policy trio) under
# the CPU and heap profilers, so a perf investigation starts from
# `go tool pprof cpu.prof` instead of guesswork. Swap -scenario/-shards to
# profile other presets or the sharded window machinery.
profile:
	$(GO) run ./cmd/ampom-cluster -scenario rack-farm \
		-policies no-migration,AMPoM,queue-gossip \
		-cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof; inspect with: $(GO) tool pprof cpu.prof"
