// Command ampom-cluster runs cluster-scale scenarios: declarative
// multi-node workloads driven end to end through the event engine, the
// interconnect fabric (star, two-tier or flat) with its oM_infoD
// monitoring plane, the pluggable load-balancer policies and the AMPoM
// prefetcher.
//
// Usage:
//
//	ampom-cluster                          # the hpc-farm preset (64 nodes / 256 procs)
//	ampom-cluster -scenario web-churn      # one named preset
//	ampom-cluster -scenario all -j 4       # every preset across 4 workers
//	ampom-cluster -list                    # list presets, topologies and policies
//	ampom-cluster -scenario hpc-farm -nodes 8 -procs 32   # shrink a preset
//	ampom-cluster -scenario rack-farm                     # 512 nodes, two-tier fabric
//	ampom-cluster -scenario hpc-farm -fabric two-tier     # override the topology
//	ampom-cluster -scenario rack-farm -gossip-window 8    # shrink the gossip window
//	ampom-cluster -scenario rack-farm -shards 4    # shard the event engine (same report bytes)
//	ampom-cluster -spec farm.json          # run a user-defined spec file
//	ampom-cluster -policies AMPoM,mem-usher                # restrict the policy set
//	ampom-cluster -spec farm.json -o report.json           # persist the report
//	ampom-cluster -scenario web-churn -dump-spec web.json  # write the spec out
//	ampom-cluster -store ./results         # persist reports; identical re-runs read from disk
//	ampom-cluster -scenario rack-farm -cpuprofile cpu.prof -memprofile mem.prof  # pprof the run (make profile)
//	ampom-cluster -server http://host:8091 -scenario hpc-farm -o r.json  # run via ampom-clusterd, same bytes
//	ampom-cluster -diff a.json b.json      # compare saved reports (exit 1 on divergence)
//	ampom-cluster -diff -diff-eps 0.01 a.json b.json       # floats gate at 1% relative
//	ampom-cluster -diff -diff-eps mean_slowdown=0.02 -summary a.json b.json
//
// Scenarios run through the campaign engine: the scenario seed is derived
// from -seed and the canonical spec fingerprint (policy set and fabric
// included), so any -j value renders byte-identical reports, files
// included.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	name := flag.String("scenario", "hpc-farm", "preset scenario to run, or all")
	specFile := flag.String("spec", "", "run the scenario from this JSON spec file (overrides -scenario)")
	policies := flag.String("policies", "", "comma-separated balancer policies (default: the spec's set, or every registered policy)")
	fabricFlag := flag.String("fabric", "", "override the interconnect topology: "+strings.Join(ampom.FabricTopologyNames(), ", "))
	gossipWindow := flag.Int("gossip-window", 0, "override the gossip window (entries per push) on switched fabrics")
	output := flag.String("o", "", "also write the report(s) to this file (.json or .csv)")
	dumpSpec := flag.String("dump-spec", "", "write the resolved spec to this JSON file and exit")
	diffMode := flag.Bool("diff", false, "compare two saved report files (JSON) and exit 1 on divergence")
	diffEps := flag.String("diff-eps", "", "with -diff: relative epsilon for float columns, either one value (0.01) or per-column (mean_slowdown=0.01,frozen_s=0.05); counts always compare exactly")
	diffSummary := flag.Bool("summary", false, "with -diff: one line per diverging column instead of one per field")
	list := flag.Bool("list", false, "list the preset scenarios, fabric topologies and registered policies, then exit")
	nodes := flag.Int("nodes", 0, "override the preset's node count")
	procs := flag.Int("procs", 0, "override the preset's process count")
	shards := flag.Int("shards", 1, "event-engine shards per scenario run (two-tier fabrics; clamped to the rack count; reports are byte-identical at any value)")
	storeDir := flag.String("store", "", "persistent result store directory: reports land there on completion and identical re-runs are served from disk")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the local run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	server := flag.String("server", "", "submit to a running ampom-clusterd at this URL instead of simulating locally (same flags, same output bytes)")
	apiKey := flag.String("api-key", "", "tenant API key for -server submissions")
	cf := cli.AddCampaignFlags(flag.CommandLine)
	flag.Parse()

	if *diffMode {
		diffReports(flag.Args(), ampom.ScenarioDiffOptions{
			RelEps:  parseDiffEps(*diffEps),
			Summary: *diffSummary,
		})
		return
	}
	if *diffEps != "" || *diffSummary {
		cli.Usage("-diff-eps and -summary only apply to -diff")
	}

	// A bad -o extension is a pure argument mistake: reject it before any
	// scenario runs, with the usage exit code.
	outputExt := strings.ToLower(filepath.Ext(*output))
	if *output != "" && outputExt != ".json" && outputExt != ".csv" {
		cli.Usage("-o %s: want a .json or .csv extension", *output)
	}

	if *list {
		for _, n := range ampom.ScenarioPresetNames() {
			spec, err := ampom.ScenarioPreset(n)
			if err != nil {
				cli.Fail("%v", err)
			}
			fmt.Printf("%-14s %3d nodes  %4d procs  %-8s fabric  %s/%s arrivals, %d churn event(s)\n",
				spec.Name, spec.Nodes, spec.Procs, spec.Fabric.Topology, spec.Arrival, spec.Placement, len(spec.Churn))
		}
		fmt.Printf("fabrics: %s\n", strings.Join(ampom.FabricTopologyNames(), ", "))
		fmt.Printf("policies: %s\n", strings.Join(ampom.BalancerPolicyNames(), ", "))
		fmt.Printf("churn kinds: %s\n", strings.Join(ampom.ScenarioChurnKindNames(), ", "))
		return
	}

	var specs []ampom.ScenarioSpec
	switch {
	case *specFile != "":
		spec, err := ampom.LoadScenarioSpec(*specFile)
		if err != nil {
			cli.Fail("%v", err)
		}
		specs = []ampom.ScenarioSpec{spec}
	case *name == "all":
		specs = ampom.ScenarioPresets()
	default:
		spec, err := ampom.ScenarioPreset(*name)
		if err != nil {
			cli.Usage("%v", err)
		}
		specs = []ampom.ScenarioSpec{spec}
	}
	for i := range specs {
		if *nodes > 0 {
			specs[i].Nodes = *nodes
			specs[i].Procs = 0 // rescale with the node count unless pinned
		}
		if *procs > 0 {
			specs[i].Procs = *procs
		}
		if *nodes > 0 || *procs > 0 {
			// Rescale the derived memory capacity with the new population,
			// matching what a hand-written spec of this size canonicalises to.
			specs[i].NodeMemMB = 0
		}
		if *policies != "" {
			specs[i].Policies = cli.PolicyList(*policies)
		}
		if *fabricFlag != "" {
			k, err := ampom.ParseFabricTopology(*fabricFlag)
			if err != nil {
				cli.Usage("%v", err)
			}
			// Only the topology is overridden; shape and gossip parameters
			// keep the spec's values (or their canonical defaults).
			specs[i].Fabric.Topology = k
		}
		if *gossipWindow != 0 {
			if *gossipWindow < 0 {
				cli.Usage("-gossip-window %d: want a positive entry count", *gossipWindow)
			}
			specs[i].Fabric.GossipWindow = *gossipWindow
		}
		specs[i] = specs[i].Canonical()
		if err := specs[i].Validate(); err != nil {
			cli.Usage("%v", err)
		}
	}

	if *dumpSpec != "" {
		if len(specs) != 1 {
			cli.Usage("-dump-spec needs exactly one scenario, have %d", len(specs))
		}
		cli.Check(ampom.SaveScenarioSpec(*dumpSpec, specs[0]))
		return
	}

	if *shards < 1 {
		cli.Usage("-shards %d: want a positive shard count", *shards)
	}
	if *server != "" && (*cpuProfile != "" || *memProfile != "") {
		cli.Usage("-cpuprofile/-memprofile profile local runs; with -server the simulation happens in the remote process")
	}
	startCPUProfile(*cpuProfile)

	// An interrupt (SIGINT/SIGTERM) drains gracefully in both modes: local
	// batches stop dispatching new scenarios while in-flight runs finish;
	// remote waits abort and report the jobs still pending server-side.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	var (
		reports  []*ampom.ScenarioReport
		exitCode = cli.CodeOK
	)
	if *server != "" {
		if *storeDir != "" {
			cli.Usage("-store applies to local runs; the server maintains its own store")
		}
		reports, exitCode = runRemote(ctx, *server, *apiKey, specs, *shards)
	} else {
		opts := ampom.CampaignOptions{Workers: cf.Workers(), BaseSeed: cf.Seed}
		if *storeDir != "" {
			store, err := ampom.OpenResultStore(*storeDir)
			if err != nil {
				cli.Fail("%v", err)
			}
			opts.Store = store
		}
		eng := ampom.NewCampaignEngine(opts)
		batch := make([]ampom.ScenarioJob, len(specs))
		for i, s := range specs {
			batch[i] = ampom.ScenarioJob{Spec: s, Shards: *shards}
		}
		// A partial failure still prints every healthy report; the
		// aggregated failures go to stderr and the exit code reports them
		// (the ampom-bench convention).
		var err error
		reports, err = eng.RunScenariosCtx(ctx, batch)
		if err != nil {
			cli.Errorf("%v", err)
			exitCode = cli.CodeFail
		}
	}
	printed := false
	for _, r := range reports {
		if r == nil {
			continue
		}
		if printed {
			fmt.Println()
		}
		fmt.Print(r.Render())
		printed = true
	}
	if *output != "" {
		if err := writeReports(*output, reports); err != nil {
			cli.Errorf("%v", err)
			exitCode = cli.CodeFail
		}
	}
	// cli.Exit never returns, so the profiles are flushed explicitly rather
	// than deferred.
	writeProfiles(*cpuProfile, *memProfile)
	cli.Exit(exitCode)
}

// startCPUProfile begins CPU profiling into path; empty means disabled.
// The flame graph it yields is where the next perf investigation starts —
// `make profile` wires a representative preset through it.
func startCPUProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		cli.Fail("%v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		cli.Fail("-cpuprofile: %v", err)
	}
}

// writeProfiles stops the CPU profile and captures the heap profile, in
// that order, right before exit.
func writeProfiles(cpuPath, memPath string) {
	if cpuPath != "" {
		pprof.StopCPUProfile()
	}
	if memPath == "" {
		return
	}
	f, err := os.Create(memPath)
	if err != nil {
		cli.Fail("%v", err)
	}
	defer f.Close()
	runtime.GC() // settle the heap so the profile shows live allocations
	if err := pprof.WriteHeapProfile(f); err != nil {
		cli.Fail("-memprofile: %v", err)
	}
}

// runRemote is the -server client mode: each spec is submitted to the
// campaign service, waited on, and its stored report fetched — the same
// bytes a local run renders, since both sides are the one deterministic
// engine. Failures degrade per spec, like local partial failures.
func runRemote(ctx context.Context, url, apiKey string, specs []ampom.ScenarioSpec, shards int) ([]*ampom.ScenarioReport, int) {
	c := ampom.NewClusterClient(url)
	c.APIKey = apiKey
	reports := make([]*ampom.ScenarioReport, len(specs))
	exitCode := cli.CodeOK
	for i, spec := range specs {
		st, err := c.Submit(ctx, spec, shards)
		if err != nil {
			cli.Errorf("%s: %v", spec.Name, err)
			exitCode = cli.CodeFail
			continue
		}
		if st, err = c.Wait(ctx, st.Key); err != nil {
			cli.Errorf("%s: %v", spec.Name, err)
			exitCode = cli.CodeFail
			continue
		}
		if st.Status != "done" {
			cli.Errorf("%s: job %s %s: %s", spec.Name, st.Key, st.Status, st.Error)
			exitCode = cli.CodeFail
			continue
		}
		data, err := c.Result(ctx, st.Key, "json")
		if err != nil {
			cli.Errorf("%s: %v", spec.Name, err)
			exitCode = cli.CodeFail
			continue
		}
		reps, err := ampom.DecodeScenarioReports(data)
		if err != nil || len(reps) != 1 {
			cli.Errorf("%s: decoding server report: %v", spec.Name, err)
			exitCode = cli.CodeFail
			continue
		}
		reports[i] = reps[0]
	}
	return reports, exitCode
}

// parseDiffEps parses the -diff-eps flag: either one bare epsilon applied
// to every float column, or comma-separated column=eps entries (a bare
// value among them sets the default for unlisted columns).
func parseDiffEps(s string) map[string]float64 {
	if s == "" {
		return nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		col, val := "", part
		if i := strings.IndexByte(part, '='); i >= 0 {
			col, val = part[:i], part[i+1:]
		}
		eps, err := strconv.ParseFloat(val, 64)
		if err != nil || eps < 0 || math.IsNaN(eps) {
			cli.Usage("-diff-eps %s: %q is not a non-negative epsilon", s, val)
		}
		out[col] = eps
	}
	return out
}

// diffReports compares two saved report artefacts and exits 1 when the
// recorded runs diverge under the options — the regression-gate mode.
func diffReports(args []string, opts ampom.ScenarioDiffOptions) {
	if len(args) != 2 {
		cli.Usage("-diff needs exactly two report files, have %d", len(args))
	}
	diffs, err := ampom.DiffScenarioReportFilesOpts(args[0], args[1], opts)
	cli.Check(err)
	if len(diffs) == 0 {
		if len(opts.RelEps) > 0 {
			fmt.Printf("reports equal within tolerance: %s == %s\n", args[0], args[1])
		} else {
			fmt.Printf("reports identical: %s == %s\n", args[0], args[1])
		}
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	cli.Errorf("%d divergence(s) between %s and %s", len(diffs), args[0], args[1])
	cli.Exit(cli.CodeFail)
}

// writeReports persists the healthy reports to path; the extension picks
// the encoding. The JSON shape follows the *requested* batch size — a
// single-scenario run writes an object, a batch always an array, however
// many runs failed — so consumers can parse a file without sniffing it.
// CSV always shares one header.
func writeReports(path string, reports []*ampom.ScenarioReport) error {
	healthy := reports[:0:0]
	for _, r := range reports {
		if r != nil {
			healthy = append(healthy, r)
		}
	}
	if len(healthy) == 0 {
		return fmt.Errorf("-o %s: no healthy reports to write", path)
	}
	var (
		data []byte
		err  error
	)
	switch strings.ToLower(filepath.Ext(path)) {
	case ".json":
		if len(reports) == 1 {
			data, err = healthy[0].JSON()
		} else {
			data, err = ampom.ScenarioReportsJSON(healthy)
		}
	default: // the extension was validated at startup
		data = []byte(ampom.ScenarioReportsCSV(healthy))
	}
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
