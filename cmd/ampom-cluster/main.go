// Command ampom-cluster runs cluster-scale scenarios: declarative
// multi-node workloads driven end to end through the event engine, the
// star interconnect with oM_infoD monitoring, the §7 load balancer and the
// AMPoM prefetcher, under all three balancing policies.
//
// Usage:
//
//	ampom-cluster                          # the hpc-farm preset (64 nodes / 256 procs)
//	ampom-cluster -scenario web-churn      # one named preset
//	ampom-cluster -scenario all -j 4       # every preset across 4 workers
//	ampom-cluster -list                    # list the presets
//	ampom-cluster -scenario hpc-farm -nodes 8 -procs 32   # shrink a preset
//
// Scenarios run through the campaign engine: the scenario seed is derived
// from -seed and the canonical spec fingerprint, so any -j value renders
// byte-identical reports.
package main

import (
	"flag"
	"fmt"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	name := flag.String("scenario", "hpc-farm", "preset scenario to run, or all")
	list := flag.Bool("list", false, "list the preset scenarios and exit")
	seed := flag.Uint64("seed", 42, "campaign base seed")
	jobs := flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS)")
	nodes := flag.Int("nodes", 0, "override the preset's node count")
	procs := flag.Int("procs", 0, "override the preset's process count")
	flag.Parse()

	if *list {
		for _, n := range ampom.ScenarioPresetNames() {
			spec, err := ampom.ScenarioPreset(n)
			if err != nil {
				cli.Fail("%v", err)
			}
			fmt.Printf("%-14s %3d nodes  %4d procs  %s/%s arrivals, %d churn event(s)\n",
				spec.Name, spec.Nodes, spec.Procs, spec.Arrival, spec.Placement, len(spec.Churn))
		}
		return
	}

	var specs []ampom.ScenarioSpec
	if *name == "all" {
		specs = ampom.ScenarioPresets()
	} else {
		spec, err := ampom.ScenarioPreset(*name)
		if err != nil {
			cli.Usage("%v", err)
		}
		specs = []ampom.ScenarioSpec{spec}
	}
	for i := range specs {
		if *nodes > 0 {
			specs[i].Nodes = *nodes
			specs[i].Procs = 0 // rescale with the node count unless pinned
		}
		if *procs > 0 {
			specs[i].Procs = *procs
		}
		specs[i] = specs[i].Canonical()
		if err := specs[i].Validate(); err != nil {
			cli.Usage("%v", err)
		}
	}

	eng := ampom.NewCampaignEngine(ampom.CampaignOptions{Workers: *jobs, BaseSeed: *seed})
	batch := make([]ampom.ScenarioJob, len(specs))
	for i, s := range specs {
		batch[i] = ampom.ScenarioJob{Spec: s}
	}
	// A partial failure still prints every healthy report; the aggregated
	// failures go to stderr and the exit code reports them (the
	// ampom-bench convention).
	reports, err := eng.RunScenarios(batch)
	exitCode := cli.CodeOK
	if err != nil {
		cli.Errorf("%v", err)
		exitCode = cli.CodeFail
	}
	printed := false
	for _, r := range reports {
		if r == nil {
			continue
		}
		if printed {
			fmt.Println()
		}
		fmt.Print(r.Render())
		printed = true
	}
	cli.Exit(exitCode)
}
