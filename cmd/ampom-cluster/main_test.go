package main

import (
	"strings"
	"testing"

	"ampom/internal/cli"
	"ampom/internal/clitest"
)

func TestSmokeList(t *testing.T) {
	out := clitest.Run(t, "-list")
	for _, want := range []string{"hpc-farm", "web-churn", "hetero-burst", "mpi-ranks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("preset %q missing from -list:\n%s", want, out)
		}
	}
}

func TestSmokeShrunkPreset(t *testing.T) {
	out := clitest.Run(t, "-scenario", "web-churn", "-nodes", "4", "-procs", "8", "-seed", "1")
	for _, want := range []string{"scenario web-churn", "no-migration", "openMosix", "AMPoM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeDeterministic(t *testing.T) {
	args := []string{"-scenario", "mpi-ranks", "-nodes", "4", "-procs", "8", "-seed", "3"}
	a := clitest.Run(t, args...)
	b := clitest.Run(t, append([]string{}, args...)...)
	if a != b {
		t.Fatalf("same seed printed different reports:\n%s\n---\n%s", a, b)
	}
}

func TestSmokeUnknownScenarioIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-scenario", "bogus")
	if !strings.Contains(stderr, "unknown preset") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}
