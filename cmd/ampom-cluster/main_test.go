package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ampom"
	"ampom/internal/cli"
	"ampom/internal/clitest"
)

func TestSmokeList(t *testing.T) {
	out := clitest.Run(t, "-list")
	for _, want := range []string{"hpc-farm", "web-churn", "hetero-burst", "mpi-ranks",
		"rack-farm", "rack-farm-failures", "gossip-mesh", "two-tier", "flat",
		"no-migration", "load-vector", "mem-usher", "queue-gossip",
		"churn kinds:", "node-crash", "node-recover", "link-down", "link-up"} {
		if !strings.Contains(out, want) {
			t.Fatalf("%q missing from -list:\n%s", want, out)
		}
	}
}

func TestSmokeShrunkPreset(t *testing.T) {
	out := clitest.Run(t, "-scenario", "web-churn", "-nodes", "4", "-procs", "8", "-seed", "1")
	for _, want := range []string{"scenario web-churn", "no-migration", "openMosix", "AMPoM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeDeterministic(t *testing.T) {
	args := []string{"-scenario", "mpi-ranks", "-nodes", "4", "-procs", "8", "-seed", "3"}
	a := clitest.Run(t, args...)
	b := clitest.Run(t, append([]string{}, args...)...)
	if a != b {
		t.Fatalf("same seed printed different reports:\n%s\n---\n%s", a, b)
	}
}

func TestSmokeUnknownScenarioIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-scenario", "bogus")
	if !strings.Contains(stderr, "unknown preset") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

func TestSmokeUnknownPolicyIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-scenario", "web-churn", "-policies", "bogus")
	if !strings.Contains(stderr, "unknown balancer policy") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

func TestSmokePolicySubset(t *testing.T) {
	out := clitest.Run(t, "-scenario", "web-churn", "-nodes", "4", "-procs", "8",
		"-policies", "AMPoM,openMosix", "-seed", "1")
	// The baseline is always added; the unlisted policies stay out.
	for _, want := range []string{"no-migration", "openMosix", "AMPoM"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	for _, not := range []string{"load-vector", "mem-usher"} {
		if strings.Contains(out, not) {
			t.Fatalf("report includes excluded policy %q:\n%s", not, out)
		}
	}
}

// TestSpecReportRoundTrip is the acceptance criterion: a dumped spec
// reloads to an equal struct, a -spec run lists every registered policy
// (≥ 5, the two new ones included), and equal (spec, seed) inputs produce
// byte-identical JSON and CSV at any worker count.
func TestSpecReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	clitest.Run(t, "-scenario", "web-churn", "-nodes", "4", "-procs", "8", "-dump-spec", specPath)

	spec, err := ampom.LoadScenarioSpec(specPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ampom.ScenarioPreset("web-churn")
	if err != nil {
		t.Fatal(err)
	}
	want.Nodes, want.Procs, want.NodeMemMB = 4, 8, 0
	want = want.Canonical()
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("saved spec reloads unequal:\nwant %+v\ngot  %+v", want, spec)
	}

	all := strings.Join(ampom.BalancerPolicyNames(), ",")
	for _, ext := range []string{".json", ".csv"} {
		out1 := filepath.Join(dir, "r1"+ext)
		out8 := filepath.Join(dir, "r8"+ext)
		clitest.Run(t, "-spec", specPath, "-policies", all, "-seed", "5", "-j", "1", "-o", out1)
		clitest.Run(t, "-spec", specPath, "-policies", all, "-seed", "5", "-j", "8", "-o", out8)
		b1, err := os.ReadFile(out1)
		if err != nil {
			t.Fatal(err)
		}
		b8, err := os.ReadFile(out8)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b8) {
			t.Fatalf("%s reports differ between -j 1 and -j 8", ext)
		}
	}

	var rep struct {
		Policies []struct {
			Policy string `json:"policy"`
		} `json:"policies"`
	}
	data, err := os.ReadFile(filepath.Join(dir, "r1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) < 5 {
		t.Fatalf("report lists %d policies, want >= 5", len(rep.Policies))
	}
	got := map[string]bool{}
	for _, p := range rep.Policies {
		got[p.Policy] = true
	}
	for _, want := range []string{ampom.PolicyLoadVector, ampom.PolicyMemUsher} {
		if !got[want] {
			t.Fatalf("report missing new policy %q (have %v)", want, got)
		}
	}
}

// TestSmokeFabricOverride drives the rack-farm shape at test scale: the
// -fabric override is honoured, the report carries tier rows, and equal
// seeds render byte-identically across worker counts (the acceptance
// property of `-scenario rack-farm -fabric two-tier -j 8`).
func TestSmokeFabricOverride(t *testing.T) {
	args := []string{"-scenario", "rack-farm", "-nodes", "16", "-procs", "64",
		"-fabric", "two-tier", "-seed", "3"}
	out := clitest.Run(t, append([]string{}, append(args, "-j", "1")...)...)
	for _, want := range []string{"scenario rack-farm", "tiers[", "edge", "core", "queue-gossip"} {
		if !strings.Contains(out, want) {
			t.Fatalf("two-tier report missing %q:\n%s", want, out)
		}
	}
	if out8 := clitest.Run(t, append([]string{}, append(args, "-j", "8")...)...); out8 != out {
		t.Fatalf("-j 1 and -j 8 rendered different rack-farm reports")
	}
	// The flat override drops the core tier; the star drops tiers outright.
	flat := clitest.Run(t, "-scenario", "rack-farm", "-nodes", "16", "-procs", "64",
		"-fabric", "flat", "-seed", "3")
	if !strings.Contains(flat, "edge") || strings.Contains(flat, "core") {
		t.Fatalf("flat report tiers wrong:\n%s", flat)
	}
	star := clitest.Run(t, "-scenario", "rack-farm", "-nodes", "16", "-procs", "64",
		"-fabric", "star", "-seed", "3")
	if strings.Contains(star, "tiers[") {
		t.Fatalf("star report carries tier rows:\n%s", star)
	}
}

// TestSmokeFailurePreset drives the failure-realism preset at test scale:
// the failure columns render, crashes and evacuations register, no process
// is lost, the extended CSV header lands in -o output, and equal seeds
// render byte-identically across -shards (failures are global events, so
// sharding stays an execution strategy).
func TestSmokeFailurePreset(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "out.csv")
	args := []string{"-scenario", "rack-farm-failures", "-nodes", "64", "-procs", "256",
		"-policies", "no-migration,AMPoM,queue-gossip", "-seed", "3"}
	out := clitest.Run(t, append(append([]string{}, args...), "-o", csvPath)...)
	for _, want := range []string{"scenario rack-farm-failures",
		"p50(s)", "p95(s)", "p99(s)", "crashes", "evacuated", "failbacks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("failure report missing %q:\n%s", want, out)
		}
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(string(csvData), "\n", 2)[0]
	for _, col := range []string{"sojourn_p50_s", "sojourn_p99_s", "crashes", "evacuations", "fail_backs"} {
		if !strings.Contains(header, col) {
			t.Fatalf("CSV header missing %q: %s", col, header)
		}
	}
	if out2 := clitest.Run(t, append(append([]string{}, args...), "-shards", "2")...); out2 != out {
		t.Fatalf("-shards 2 rendered a different failure report:\n%s\n---\n%s", out, out2)
	}
}

// TestSmokeGossipWindowOverride drives the -gossip-window knob: a tiny
// window still renders a valid deterministic report (and a different run
// than the default, since the knob is behaviour-bearing), and a negative
// value is a usage error.
func TestSmokeGossipWindowOverride(t *testing.T) {
	args := []string{"-scenario", "rack-farm", "-nodes", "16", "-procs", "64",
		"-seed", "3", "-gossip-window", "2"}
	out := clitest.Run(t, args...)
	if !strings.Contains(out, "scenario rack-farm") || !strings.Contains(out, "queue-gossip") {
		t.Fatalf("windowed report malformed:\n%s", out)
	}
	def := clitest.Run(t, "-scenario", "rack-farm", "-nodes", "16", "-procs", "64", "-seed", "3")
	if def == out {
		t.Fatal("-gossip-window 2 rendered the default-window report — the knob is inert")
	}
	if out2 := clitest.Run(t, args...); out2 != out {
		t.Fatal("-gossip-window runs are not deterministic")
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage, "-scenario", "web-churn", "-gossip-window", "-3"); !strings.Contains(stderr, "gossip-window") {
		t.Fatalf("negative window stderr:\n%s", stderr)
	}
}

func TestSmokeUnknownFabricIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-scenario", "web-churn", "-fabric", "hypercube")
	if !strings.Contains(stderr, "unknown topology") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

// TestDiffReports locks the regression-gate mode: identical artefacts exit
// 0, diverging ones exit 1 with the divergence named, and bad usage exits 2.
func TestDiffReports(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	c := filepath.Join(dir, "c.json")
	base := []string{"-scenario", "web-churn", "-nodes", "4", "-procs", "8", "-j", "1"}
	clitest.Run(t, append(append([]string{}, base...), "-seed", "5", "-o", a)...)
	clitest.Run(t, append(append([]string{}, base...), "-seed", "5", "-o", b)...)
	clitest.Run(t, append(append([]string{}, base...), "-seed", "6", "-o", c)...)

	out := clitest.Run(t, "-diff", a, b)
	if !strings.Contains(out, "identical") {
		t.Fatalf("equal artefacts not reported identical:\n%s", out)
	}
	out, stderr := clitest.RunExpect(t, cli.CodeFail, "-diff", a, c)
	if !strings.Contains(out, "seed") {
		t.Fatalf("divergence lines missing the seed:\n%s", out)
	}
	if !strings.Contains(stderr, "divergence") {
		t.Fatalf("stderr missing the divergence summary:\n%s", stderr)
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage, "-diff", a); !strings.Contains(stderr, "exactly two") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeFail, "-diff", a, filepath.Join(dir, "missing.json")); stderr == "" {
		t.Fatal("missing file diffed silently")
	}
}

// TestDiffTolerance locks the -diff-eps / -summary modes: a generous
// relative epsilon lets the float columns of two different-seed runs gate
// as equal only when counts also agree, a per-column epsilon loosens just
// its column, count divergences are never masked, and -summary renders one
// line per diverging column.
func TestDiffTolerance(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	c := filepath.Join(dir, "c.json")
	base := []string{"-scenario", "web-churn", "-nodes", "4", "-procs", "8", "-j", "1"}
	clitest.Run(t, append(append([]string{}, base...), "-seed", "5", "-o", a)...)
	clitest.Run(t, append(append([]string{}, base...), "-seed", "6", "-o", c)...)

	// Different seeds diverge in counts (seed, migrations, ...), so even an
	// enormous float epsilon must not gate them equal.
	out, _ := clitest.RunExpect(t, cli.CodeFail, "-diff", "-diff-eps", "1e9", a, c)
	if !strings.Contains(out, "seed") {
		t.Fatalf("count divergences masked by the float epsilon:\n%s", out)
	}

	// A hand-edited float column within the epsilon gates equal; outside
	// it, fails and names the epsilon.
	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	// Decode with json.Number so untouched values (the uint64 seed above
	// all) re-encode exactly.
	var doc map[string]any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		t.Fatal(err)
	}
	rows := doc["policies"].([]any)
	row := rows[0].(map[string]any)
	slow, err := row["mean_slowdown"].(json.Number).Float64()
	if err != nil {
		t.Fatal(err)
	}
	row["mean_slowdown"] = json.Number(strconv.FormatFloat(slow*1.004, 'g', -1, 64))
	edited, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(b, edited, 0o644); err != nil {
		t.Fatal(err)
	}

	if out := clitest.Run(t, "-diff", "-diff-eps", "0.01", a, b); !strings.Contains(out, "within tolerance") {
		t.Fatalf("0.4%% drift failed the 1%% gate:\n%s", out)
	}
	if out := clitest.Run(t, "-diff", "-diff-eps", "mean_slowdown=0.01", a, b); !strings.Contains(out, "within tolerance") {
		t.Fatalf("0.4%% drift failed the per-column 1%% gate:\n%s", out)
	}
	out, _ = clitest.RunExpect(t, cli.CodeFail, "-diff", "-diff-eps", "0.001", a, b)
	if !strings.Contains(out, "eps") || !strings.Contains(out, "mean_slowdown") {
		t.Fatalf("over-epsilon drift not reported with the epsilon named:\n%s", out)
	}
	// An epsilon scoped to another column leaves this one exact.
	if out, _ := clitest.RunExpect(t, cli.CodeFail, "-diff", "-diff-eps", "frozen_s=1", a, b); !strings.Contains(out, "mean_slowdown") {
		t.Fatalf("foreign-column epsilon loosened mean_slowdown:\n%s", out)
	}

	// Summary mode: one line per diverging column, with the deviation.
	out, _ = clitest.RunExpect(t, cli.CodeFail, "-diff", "-summary", a, b)
	if !strings.Contains(out, "column mean_slowdown: 1 divergence(s)") || !strings.Contains(out, "max rel dev") {
		t.Fatalf("summary mode output unexpected:\n%s", out)
	}

	// Flag hygiene: tolerance flags outside -diff, and malformed epsilons,
	// are usage errors.
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage, "-diff-eps", "0.1"); !strings.Contains(stderr, "only apply to -diff") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage, "-summary"); !strings.Contains(stderr, "only apply to -diff") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage, "-diff", "-diff-eps", "bogus", a, b); !strings.Contains(stderr, "not a non-negative epsilon") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

// TestDiffToleranceSojournColumns locks -diff-eps over the failure plane's
// latency columns: the sojourn percentiles are float columns, so a
// per-column relative epsilon gates small drift as equal, while the
// crash/evacuation/fail-back counters always compare exactly.
func TestDiffToleranceSojournColumns(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	clitest.Run(t, "-scenario", "rack-farm-failures", "-nodes", "64", "-procs", "256",
		"-policies", "no-migration,AMPoM", "-seed", "5", "-j", "1", "-o", a)

	data, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		t.Fatal(err)
	}
	rows := doc["policies"].([]any)
	row := rows[0].(map[string]any)
	p95, err := row["sojourn_p95_s"].(json.Number).Float64()
	if err != nil {
		t.Fatal(err)
	}
	row["sojourn_p95_s"] = json.Number(strconv.FormatFloat(p95*1.004, 'g', -1, 64))
	crashes, err := row["crashes"].(json.Number).Int64()
	if err != nil {
		t.Fatal(err)
	}
	edited, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(b, edited, 0o644); err != nil {
		t.Fatal(err)
	}

	if out := clitest.Run(t, "-diff", "-diff-eps", "sojourn_p95_s=0.01", a, b); !strings.Contains(out, "within tolerance") {
		t.Fatalf("0.4%% sojourn drift failed the per-column 1%% gate:\n%s", out)
	}
	out, _ := clitest.RunExpect(t, cli.CodeFail, "-diff", a, b)
	if !strings.Contains(out, "sojourn_p95_s") {
		t.Fatalf("exact diff did not flag the sojourn column:\n%s", out)
	}

	// A changed counter is never masked by a float epsilon.
	row["crashes"] = json.Number(strconv.FormatInt(crashes+1, 10))
	edited, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, edited, 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ = clitest.RunExpect(t, cli.CodeFail, "-diff", "-diff-eps", "1e9", a, b)
	if !strings.Contains(out, "crashes") {
		t.Fatalf("crash-counter divergence masked by the float epsilon:\n%s", out)
	}
}

// TestServerClientMode locks the -server mode: the binary submits to a
// running campaign service, waits, and writes the same bytes — stdout and
// -o file alike — as a local run of the identical spec; a re-run is
// served without re-simulating.
func TestServerClientMode(t *testing.T) {
	dir := t.TempDir()
	store, err := ampom.OpenResultStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ampom.NewClusterServer(ampom.ClusterServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	specArgs := []string{"-scenario", "web-churn", "-nodes", "4", "-procs", "8"}
	local := filepath.Join(dir, "local.json")
	remote := filepath.Join(dir, "remote.json")
	localOut := clitest.Run(t, append(append([]string{}, specArgs...), "-o", local)...)
	remoteOut := clitest.Run(t, append(append([]string{}, specArgs...),
		"-server", hs.URL, "-api-key", "smoke", "-o", remote)...)
	if localOut != remoteOut {
		t.Fatalf("-server rendered different stdout:\n%s\n---\n%s", localOut, remoteOut)
	}
	lb, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if string(lb) != string(rb) {
		t.Fatal("-server wrote different report bytes than the local run")
	}

	// A second client run of the same spec dedupes server-side: the
	// service still has executed exactly one simulation.
	clitest.Run(t, append(append([]string{}, specArgs...), "-server", hs.URL)...)
	stats, err := ampom.NewClusterClient(hs.URL).ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 1 {
		t.Fatalf("service executed %d simulations for two client runs, want 1", stats.Executed)
	}

	// -store is a local-mode flag; combining it with -server is caught
	// before any work.
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage,
		"-server", hs.URL, "-store", dir, "-scenario", "web-churn"); !strings.Contains(stderr, "-store") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

// TestBatchStoreFlag locks the -store flag: reports persist to the
// content-addressed store, an identical re-run is served from disk, and
// the output bytes are unchanged either way.
func TestBatchStoreFlag(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	args := []string{"-scenario", "web-churn", "-nodes", "4", "-procs", "8", "-store", storeDir}
	out1 := clitest.Run(t, append(append([]string{}, args...), "-o", filepath.Join(dir, "a.json"))...)
	out2 := clitest.Run(t, append(append([]string{}, args...), "-o", filepath.Join(dir, "b.json"))...)
	if out1 != out2 {
		t.Fatal("store-served re-run rendered different output")
	}
	a, err := os.ReadFile(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("store-served re-run wrote different bytes")
	}
	var cells int
	filepath.Walk(storeDir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".rst") {
			cells++
		}
		return nil
	})
	if cells != 1 {
		t.Fatalf("store holds %d cells, want 1", cells)
	}
}

func TestSmokeBadOutputExtensionIsUsageError(t *testing.T) {
	// Rejected before anything runs: a pure argument mistake must not cost
	// a full campaign.
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-o", "report.xml")
	if !strings.Contains(stderr, ".json or .csv") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

// TestSmokeProfileFlags runs a shrunk preset under both profilers and
// checks real pprof artefacts land where asked; profiling a -server
// submission is a usage error (the simulation lives in the remote
// process).
func TestSmokeProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	clitest.Run(t, "-scenario", "web-churn", "-nodes", "4", "-procs", "8", "-seed", "1",
		"-cpuprofile", cpu, "-memprofile", mem)
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	_, stderr := clitest.RunExpect(t, cli.CodeUsage,
		"-server", "http://localhost:1", "-cpuprofile", cpu, "-scenario", "web-churn")
	if !strings.Contains(stderr, "profile local runs") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}
