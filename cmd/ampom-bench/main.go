// Command ampom-bench regenerates the tables and figures of the paper's
// evaluation (Table 1, Figures 4–11) plus the repository's ablation
// studies, printing the same rows and series the paper reports.
//
// Usage:
//
//	ampom-bench                        # every figure at paper scale
//	ampom-bench -scale 16              # quick 1/16-scale pass
//	ampom-bench -figure fig7 -csv      # one figure, CSV output
//	ampom-bench -ablations             # the ablation studies as well
//	ampom-bench -j 8 -progress         # 8 workers, progress/ETA on stderr
//	ampom-bench -parallel=false        # force strictly sequential runs
//
// The experiment matrix is fanned out across a worker pool; per-job seeds
// are derived from the job key, so any -j value renders byte-identical
// tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	scale := flag.Int64("scale", 1, "divide every Table 1 footprint by this (1 = paper scale)")
	figure := flag.String("figure", "all", "which artefact to print: all, table1, fig4..fig11")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	ablations := flag.Bool("ablations", false, "also run the ablation studies")
	progress := flag.Bool("progress", false, "report campaign progress and ETA on stderr")
	cf := cli.AddCampaignFlags(flag.CommandLine)
	flag.Parse()

	cfg := ampom.CampaignConfig{Scale: *scale, Seed: cf.Seed, Workers: cf.Workers()}
	if *progress {
		cfg.Progress = func(p ampom.CampaignProgress) {
			fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d done (%d failed) elapsed %v eta %v    ",
				p.Done, p.Total, p.Failed, p.Elapsed.Round(1e8), p.ETA.Round(1e8))
			if p.Done == p.Total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	c := ampom.NewCampaign(cfg)

	selected := map[string]func() *ampom.FigureTable{
		"table1": c.Table1,
		"fig4":   c.Figure4,
		"fig5":   c.Figure5,
		"fig6":   c.Figure6,
		"fig7":   c.Figure7,
		"fig8":   c.Figure8,
		"fig9":   c.Figure9,
		"fig10":  c.Figure10,
		"fig11":  c.Figure11,
	}
	order := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
	name := strings.ToLower(*figure)
	if _, ok := selected[name]; name != "all" && !ok {
		cli.Usage("unknown figure %q (want all, table1, fig4..fig11)", *figure)
	}

	// Fan the requested matrix out up front: every failure is reported, not
	// just the first, and rendering then reads warm cache. Single figures
	// prewarm just their own cells, so -j and -progress apply there too. A
	// partial failure does not abort the run: the healthy artefacts still
	// render below, and the exit code reports the damage.
	exitCode := cli.CodeOK
	var err error
	switch {
	case name == "all" && *ablations:
		err = c.Prewarm()
	case name == "all":
		err = c.PrewarmFigures()
	default:
		err = c.PrewarmFigure(name)
		if err == nil && *ablations {
			err = c.PrewarmAblations()
		}
	}
	if err != nil {
		cli.Errorf("%v", err)
		exitCode = cli.CodeFail
	}

	// render generates one artefact, skipping (not aborting) those whose
	// cells failed during the prewarm.
	var tables []*ampom.FigureTable
	render := func(artefact string, gen func() *ampom.FigureTable) {
		defer func() {
			if r := recover(); r != nil {
				cli.Errorf("skipping %s: %v", artefact, r)
				exitCode = cli.CodeFail
			}
		}()
		tables = append(tables, gen())
	}

	if name == "all" {
		for _, n := range order {
			render(n, selected[n])
		}
	} else {
		render(name, selected[name])
	}
	if *ablations {
		for _, a := range []struct {
			name string
			gen  func() *ampom.FigureTable
		}{
			{"ablation-schemes", c.AblationSchemes},
			{"ablation-baseline", c.AblationBaseline},
			{"ablation-window", c.AblationWindow},
			{"ablation-dmax", c.AblationDMax},
			{"ablation-cap", c.AblationCap},
		} {
			render(a.name, a.gen)
		}
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Printf("# %s\n%s", t.Title, t.CSV())
		} else {
			fmt.Print(t.Render())
		}
	}
	cli.Exit(exitCode)
}
