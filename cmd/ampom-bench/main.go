// Command ampom-bench regenerates the tables and figures of the paper's
// evaluation (Table 1, Figures 4–11) plus the repository's ablation
// studies, printing the same rows and series the paper reports.
//
// Usage:
//
//	ampom-bench                        # every figure at paper scale
//	ampom-bench -scale 16              # quick 1/16-scale pass
//	ampom-bench -figure fig7 -csv      # one figure, CSV output
//	ampom-bench -ablations             # the ablation studies as well
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ampom"
)

func main() {
	scale := flag.Int64("scale", 1, "divide every Table 1 footprint by this (1 = paper scale)")
	seed := flag.Uint64("seed", 42, "seed for all stochastic components")
	figure := flag.String("figure", "all", "which artefact to print: all, table1, fig4..fig11")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	ablations := flag.Bool("ablations", false, "also run the ablation studies")
	flag.Parse()

	c := ampom.NewCampaign(ampom.CampaignConfig{Scale: *scale, Seed: *seed})

	selected := map[string]func() *ampom.FigureTable{
		"table1": c.Table1,
		"fig4":   c.Figure4,
		"fig5":   c.Figure5,
		"fig6":   c.Figure6,
		"fig7":   c.Figure7,
		"fig8":   c.Figure8,
		"fig9":   c.Figure9,
		"fig10":  c.Figure10,
		"fig11":  c.Figure11,
	}
	order := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}

	var tables []*ampom.FigureTable
	switch strings.ToLower(*figure) {
	case "all":
		for _, name := range order {
			tables = append(tables, selected[name]())
		}
	default:
		gen, ok := selected[strings.ToLower(*figure)]
		if !ok {
			fmt.Fprintf(os.Stderr, "ampom-bench: unknown figure %q (want all, table1, fig4..fig11)\n", *figure)
			os.Exit(2)
		}
		tables = append(tables, gen())
	}
	if *ablations {
		tables = append(tables, c.AllAblations()...)
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Printf("# %s\n%s", t.Title, t.CSV())
		} else {
			fmt.Print(t.Render())
		}
	}
}
