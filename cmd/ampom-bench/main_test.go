package main

import (
	"strings"
	"testing"

	"ampom/internal/cli"
	"ampom/internal/clitest"
)

func TestSmokeTable1(t *testing.T) {
	out := clitest.Run(t, "-figure", "table1", "-scale", "64")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "DGEMM") {
		t.Fatalf("unexpected table1 output:\n%s", out)
	}
}

func TestSmokeFigure10CSV(t *testing.T) {
	out := clitest.Run(t, "-figure", "fig10", "-scale", "64", "-csv", "-j", "2")
	if !strings.Contains(out, "openMosix") || !strings.Contains(out, ",") {
		t.Fatalf("unexpected fig10 CSV output:\n%s", out)
	}
}

func TestSmokeUnknownFigureIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-figure", "bogus")
	if !strings.Contains(stderr, "unknown figure") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}
