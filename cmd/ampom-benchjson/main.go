// Command ampom-benchjson converts `go test -bench` output into a stable
// JSON artefact, so the repository's performance trajectory (the fabric
// event-budget gates above all) is machine-readable and diffable across
// PRs instead of living in CI logs.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkFabric' -benchtime 1x . | ampom-benchjson -o BENCH_fabric.json
//	ampom-benchjson -i bench.txt            # read a saved log instead of stdin
//
// Every benchmark result line ("BenchmarkName  N  value unit  value unit
// ...") becomes one JSON record carrying the iteration count, ns/op, and
// every custom metric (events/sim-s, migrations, B/op, allocs/op) under
// its reported unit. Non-benchmark lines (goos/pkg/PASS headers) pass
// through silently; a log with no benchmark lines is an error, so a CI
// wiring mistake cannot publish an empty artefact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"ampom/internal/cli"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// document is the artefact shape: results sorted by benchmark name under
// a version gate, like the scenario report artefacts — stable however the
// bench regexp ordered the runs.
type document struct {
	Version    int      `json:"version"`
	Benchmarks []result `json:"benchmarks"`
}

// Version is the artefact format version.
const Version = 1

// gomaxprocsSuffix strips the "-8"-style GOMAXPROCS suffix go test appends
// to benchmark names, so artefacts compare across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseLine decodes one benchmark result line, reporting ok=false for
// non-benchmark lines.
func parseLine(line string) (result, bool, error) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false, nil
	}
	fields := strings.Fields(line)
	// Name, iterations, then (value, unit) pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false, fmt.Errorf("benchmark line %q: bad iteration count: %v", line, err)
	}
	r := result{
		Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false, fmt.Errorf("benchmark line %q: bad value %q: %v", line, fields[i], err)
		}
		if fields[i+1] == "ns/op" {
			r.NsPerOp = v
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true, nil
}

// convert parses a full benchmark log into the artefact encoding.
func convert(in io.Reader) ([]byte, error) {
	var doc document
	doc.Version = Version
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		r, ok, err := parseLine(sc.Text())
		if err != nil {
			return nil, err
		}
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	addShardSpeedups(doc.Benchmarks)
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// addShardSpeedups derives the shard_speedup metric: for every benchmark
// named "<Base>Shards" whose sequential sibling "<Base>" is in the log,
// the sharded record gains sequential-ns/sharded-ns — above 1.0 the
// sharded engine wins. Derived here rather than in the benchmarks because
// the two runs are separate benchmark functions; recording the ratio in
// the artefact makes the parallel-efficiency trajectory diffable per PR.
func addShardSpeedups(results []result) {
	seq := make(map[string]float64, len(results))
	for _, r := range results {
		seq[r.Name] = r.NsPerOp
	}
	for i := range results {
		r := &results[i]
		base, ok := strings.CutSuffix(r.Name, "Shards")
		if !ok || base == "" {
			continue
		}
		ns, ok := seq[base]
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics["shard_speedup"] = ns / r.NsPerOp
	}
}

func main() {
	input := flag.String("i", "", "read the benchmark log from this file (default: stdin)")
	output := flag.String("o", "", "write the JSON artefact to this file (default: stdout)")
	flag.Parse()
	if flag.NArg() != 0 {
		cli.Usage("unexpected arguments %v", flag.Args())
	}

	in := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			cli.Fail("%v", err)
		}
		defer f.Close()
		in = f
	}
	data, err := convert(in)
	if err != nil {
		cli.Fail("%v", err)
	}
	if *output == "" {
		os.Stdout.Write(data)
		return
	}
	cli.Check(os.WriteFile(*output, data, 0o644))
}
