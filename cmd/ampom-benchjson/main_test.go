package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ampom/internal/cli"
	"ampom/internal/clitest"
)

// sample mirrors real `go test -bench` output: headers, a plain benchmark,
// one with custom metrics and a GOMAXPROCS suffix, and the PASS trailer.
const sample = `goos: linux
goarch: amd64
pkg: ampom
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFabric512 	       1	1304924710 ns/op	      3279 AMPoM_ev_per_sim_s	        95.00 qg_migrations	1113295496 B/op	 1555518 allocs/op
BenchmarkFabric4096-8 	       1	45000000000 ns/op	     13503 AMPoM_ev_per_sim_s
PASS
ok  	ampom	1.315s
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSmokeConvert(t *testing.T) {
	out := clitest.Run(t, "-i", writeSample(t))
	var doc struct {
		Version    int `json:"version"`
		Benchmarks []struct {
			Name       string             `json:"name"`
			Iterations int64              `json:"iterations"`
			NsPerOp    float64            `json:"ns_per_op"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if doc.Version != 1 || len(doc.Benchmarks) != 2 {
		t.Fatalf("decoded version %d with %d benchmarks, want 1 and 2", doc.Version, len(doc.Benchmarks))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	b4096, b512 := doc.Benchmarks[0], doc.Benchmarks[1]
	if b4096.Name != "BenchmarkFabric4096" || b512.Name != "BenchmarkFabric512" {
		t.Fatalf("names %q, %q not sorted/stripped", b4096.Name, b512.Name)
	}
	if b512.NsPerOp != 1304924710 || b512.Iterations != 1 {
		t.Fatalf("ns/op %v iterations %d decoded wrong", b512.NsPerOp, b512.Iterations)
	}
	if b512.Metrics["AMPoM_ev_per_sim_s"] != 3279 || b512.Metrics["qg_migrations"] != 95 {
		t.Fatalf("custom metrics decoded wrong: %v", b512.Metrics)
	}
	if _, hasNs := b512.Metrics["ns/op"]; hasNs {
		t.Fatal("ns/op leaked into the metrics map")
	}
}

func TestSmokeOutputFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if stdout := clitest.Run(t, "-i", writeSample(t), "-o", out); stdout != "" {
		t.Fatalf("-o still wrote to stdout:\n%s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "BenchmarkFabric512") {
		t.Fatalf("artefact missing benchmark:\n%s", data)
	}
}

func TestSmokeEmptyInputFails(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeFail, "-i", empty); !strings.Contains(stderr, "no benchmark") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

func TestSmokeUnexpectedArgsAreUsageError(t *testing.T) {
	if _, stderr := clitest.RunExpect(t, cli.CodeUsage, "stray"); !strings.Contains(stderr, "unexpected arguments") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

func TestSmokeMalformedLineFails(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("BenchmarkX 1 12 ns/op trailing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr := clitest.RunExpect(t, cli.CodeFail, "-i", bad); !strings.Contains(stderr, "malformed") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}

// TestShardSpeedupMetric locks the derived parallel-efficiency metric: a
// "<Base>Shards" benchmark paired with its sequential sibling gains
// shard_speedup = sequential-ns / sharded-ns, and nothing else does.
func TestShardSpeedupMetric(t *testing.T) {
	log := `BenchmarkFabric16384 	       1	77000000000 ns/op	      2739 qg_migrations
BenchmarkFabric16384Shards 	       1	38500000000 ns/op	      2739 qg_migrations
BenchmarkFabric512 	       1	1304924710 ns/op
PASS
`
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	out := clitest.Run(t, "-i", path)
	var doc struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	byName := map[string]map[string]float64{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b.Metrics
	}
	if got := byName["BenchmarkFabric16384Shards"]["shard_speedup"]; got != 2.0 {
		t.Fatalf("shard_speedup = %v, want 2.0", got)
	}
	for _, name := range []string{"BenchmarkFabric16384", "BenchmarkFabric512"} {
		if _, has := byName[name]["shard_speedup"]; has {
			t.Fatalf("%s wrongly carries shard_speedup", name)
		}
	}
}
