package main

import (
	"strings"
	"testing"

	"ampom/internal/cli"
	"ampom/internal/clitest"
)

func TestSmokeTraceStream(t *testing.T) {
	out := clitest.Run(t, "-kernel", "STREAM", "-mb", "8", "-windows", "2")
	for _, want := range []string{"spatial score", "temporal score", "AMPoM dry run"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeUnknownKernelIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-kernel", "bogus")
	if !strings.Contains(stderr, "unknown kernel") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}
