// Command ampom-trace inspects a workload's page reference stream: its
// locality scores (the Figure 4 axes), footprint coverage, and a window-
// by-window AMPoM dry run showing the spatial locality score and dependent
// zone size the algorithm would compute.
//
// Usage:
//
//	ampom-trace -kernel FFT -mb 65
//	ampom-trace -kernel STREAM -mb 16 -windows 10
package main

import (
	"flag"
	"fmt"
	"strings"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	kernel := flag.String("kernel", "STREAM", "HPCC kernel: DGEMM, STREAM, RandomAccess, FFT")
	mb := flag.Int64("mb", 16, "process footprint in MB")
	windows := flag.Int("windows", 5, "how many AMPoM dry-run windows to print")
	seed := cli.AddSeedFlag(flag.CommandLine)
	flag.Parse()

	var k ampom.Kernel
	switch strings.ToLower(*kernel) {
	case "dgemm":
		k = ampom.DGEMM
	case "stream":
		k = ampom.STREAM
	case "randomaccess", "ra", "gups":
		k = ampom.RandomAccess
	case "fft":
		k = ampom.FFT
	default:
		cli.Usage("unknown kernel %q", *kernel)
	}

	// Build/run failures are runtime failures (exit 1), not usage errors —
	// the ampom-bench convention.
	w, err := ampom.BuildWorkload(ampom.Entry{Kernel: k, ProblemSize: *mb, MemoryMB: *mb}, *seed)
	cli.Check(err)

	spatial, temporal := ampom.Locality(w)
	fmt.Printf("workload        %s\n", w.Name)
	fmt.Printf("pages           %d (%d refs, working set %d pages)\n", w.Layout.Pages(), w.Refs, w.WorkingSetPages)
	fmt.Printf("base compute    %v (init %v)\n", w.BaseCompute, w.InitCompute)
	fmt.Printf("spatial score   %.3f\n", spatial)
	fmt.Printf("temporal score  %.3f\n", temporal)

	// Dry-run the AMPoM window over the first distinct page touches, the
	// stream the prefetcher would see if every first touch faulted.
	pre, err := ampom.NewPrefetcher(ampom.DefaultPrefetcherConfig(), w.Layout.Pages())
	cli.Check(err)
	est := ampom.Estimates{RTT: 20_000_000, PageTransfer: 400_000} // 20 ms / 0.4 ms
	src := w.Source()
	seen := map[ampom.PageNum]bool{}
	var t ampom.Time
	printed := 0
	fmt.Printf("\nAMPoM dry run (every 20 first-touch faults, assumed RTT 20ms):\n")
	fmt.Printf("%-8s %-8s %-10s %-6s %-8s %s\n", "fault#", "S", "r (flt/s)", "N", "streams", "pivots")
	for printed < *windows {
		ref, ok := src.Next()
		if !ok {
			break
		}
		if seen[ref.Page] {
			continue
		}
		seen[ref.Page] = true
		t += 400_000 // network-paced first touches
		pre.RecordFault(ref.Page, t, 1)
		if pre.Faults()%20 == 0 {
			a := pre.Analyze(est)
			fmt.Printf("%-8d %-8.3f %-10.0f %-6d %-8d %v\n",
				pre.Faults(), a.Score, a.PagingRate, a.N, a.Streams, a.Pivots)
			printed++
		}
	}
}
