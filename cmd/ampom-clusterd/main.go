// Command ampom-clusterd is the long-lived campaign service: an HTTP
// daemon accepting cluster-scenario specs, executing them through the
// campaign engine's bounded worker pool, and persisting every report in a
// content-addressed result store it shares with the batch CLIs.
//
// Usage:
//
//	ampom-clusterd                              # listen on 127.0.0.1:8091, store in ./ampom-results
//	ampom-clusterd -addr :8091 -store /var/lib/ampom   # serve the LAN from a shared store
//	ampom-clusterd -addr 127.0.0.1:0            # ephemeral port (printed on stdout)
//	ampom-clusterd -j 4 -quota 8                # 4 concurrent jobs, 8 active per tenant
//	ampom-clusterd -shards 4                    # shard two-tier runs by default
//
// The daemon announces itself on stdout ("listening on http://…") and
// runs until SIGINT/SIGTERM, then drains: admission stops (503), queued
// and running jobs finish, and every completed report is already durable
// in the store. Submit with `ampom-cluster -server URL` or POST a spec
// JSON to /v1/jobs — see docs/api.md for the full API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"time"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8091", "listen address (host:port; port 0 picks an ephemeral port)")
	storeDir := flag.String("store", "ampom-results", "result store directory (shared with ampom-cluster -store)")
	quota := flag.Int("quota", 0, "per-tenant cap on queued+running jobs (0 = default 16, negative = unlimited)")
	shards := flag.Int("shards", 1, "default event-engine shard count for submissions without ?shards=N")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long shutdown waits for running jobs before giving up")
	cf := cli.AddCampaignFlags(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 0 {
		cli.Usage("unexpected argument %q", flag.Arg(0))
	}
	if *storeDir == "" {
		cli.Usage("-store needs a directory")
	}
	if *shards < 1 {
		cli.Usage("-shards %d: want a positive shard count", *shards)
	}

	store, err := ampom.OpenResultStore(*storeDir)
	cli.Check(err)
	srv, err := ampom.NewClusterServer(ampom.ClusterServerConfig{
		Store:         store,
		Workers:       cf.Workers(),
		BaseSeed:      cf.Seed,
		QuotaJobs:     *quota,
		DefaultShards: *shards,
	})
	cli.Check(err)

	ln, err := net.Listen("tcp", *addr)
	cli.Check(err)
	fmt.Printf("ampom-clusterd: listening on http://%s (store %s)\n", ln.Addr(), store.Dir())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		cli.Fail("%v", err)
	}

	// Graceful drain: stop admitting, let queued and running jobs finish
	// (their reports are durable the moment each completes), then close
	// the listener. A second signal kills the process the default way.
	stop()
	fmt.Printf("ampom-clusterd: draining (up to %v)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	exit := cli.CodeOK
	if err := srv.Shutdown(drainCtx); err != nil {
		cli.Errorf("%v", err)
		exit = cli.CodeFail
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		cli.Errorf("%v", err)
		exit = cli.CodeFail
	}
	cli.Exit(exit)
}
