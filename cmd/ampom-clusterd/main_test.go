package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ampom"
	"ampom/internal/cli"
)

// The daemon outlives any single request, so these smoke tests manage the
// process directly instead of going through clitest's run-to-completion
// helpers: boot on an ephemeral port, drive the HTTP API with the public
// client, then SIGTERM and assert a clean drain.

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func daemonBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir := filepath.Join(os.TempDir(), "ampom-smoke")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "ampom-clusterd")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

var listenRE = regexp.MustCompile(`listening on (http://\S+)`)

// startDaemon boots the daemon on an ephemeral port and returns its base
// URL and a stop function that SIGTERMs and returns the exit code.
func startDaemon(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	cmd := exec.Command(daemonBinary(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := bufio.NewScanner(stdout)
	urlCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if m := listenRE.FindStringSubmatch(lines.Text()); m != nil {
				urlCh <- m[1]
				break
			}
		}
		close(urlCh)
		// Keep draining so the daemon never blocks on a full stdout pipe.
		for lines.Scan() {
		}
	}()
	var url string
	select {
	case url = <-urlCh:
	case <-time.After(30 * time.Second):
	}
	if url == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon never announced its listen address")
	}
	stopped := false
	stop := func() int {
		if stopped {
			return -1
		}
		stopped = true
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan int, 1)
		go func() {
			cmd.Wait()
			done <- cmd.ProcessState.ExitCode()
		}()
		select {
		case code := <-done:
			return code
		case <-time.After(time.Minute):
			cmd.Process.Kill()
			<-done
			t.Fatal("daemon did not drain within a minute of SIGTERM")
			return -1
		}
	}
	t.Cleanup(func() {
		if !stopped {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return url, stop
}

// smallSpec is a preset shrunk to simulate in milliseconds.
func smallSpec(t *testing.T) ampom.ScenarioSpec {
	t.Helper()
	spec, err := ampom.ScenarioPreset("web-churn")
	if err != nil {
		t.Fatal(err)
	}
	spec.Nodes, spec.Procs, spec.NodeMemMB = 4, 8, 0
	return spec.Canonical()
}

// TestDaemonSmoke boots the binary, runs one job end to end over HTTP,
// asserts the bytes match a local engine run, and drains with SIGTERM.
func TestDaemonSmoke(t *testing.T) {
	store := t.TempDir()
	url, stop := startDaemon(t, "-store", store)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	c := ampom.NewClusterClient(url)
	spec := smallSpec(t)
	st, err := c.Submit(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.Key); err != nil || st.Status != "done" {
		t.Fatalf("job did not complete: %+v, %v", st, err)
	}
	got, err := c.Result(ctx, st.Key, "json")
	if err != nil {
		t.Fatal(err)
	}
	eng := ampom.NewCampaignEngine(ampom.CampaignOptions{})
	rep, err := eng.RunScenario(ampom.ScenarioJob{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("daemon bytes differ from the local engine run")
	}

	if code := stop(); code != cli.CodeOK {
		t.Fatalf("daemon exited %d after SIGTERM, want %d", code, cli.CodeOK)
	}
	// The report survived the daemon: the store directory holds the cell.
	var cells int
	filepath.Walk(store, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".rst") {
			cells++
		}
		return nil
	})
	if cells != 1 {
		t.Fatalf("store holds %d cells after shutdown, want 1", cells)
	}
}

// TestDaemonStoreSharedWithRestart locks durability: a second daemon
// lifetime over the same store serves the first lifetime's report as a
// cached hit.
func TestDaemonStoreSharedWithRestart(t *testing.T) {
	store := t.TempDir()
	spec := smallSpec(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	url, stop := startDaemon(t, "-store", store)
	c := ampom.NewClusterClient(url)
	st, err := c.Submit(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.Key); err != nil || st.Status != "done" {
		t.Fatalf("first lifetime: %+v, %v", st, err)
	}
	first, err := c.Result(ctx, st.Key, "json")
	if err != nil {
		t.Fatal(err)
	}
	if code := stop(); code != cli.CodeOK {
		t.Fatalf("first lifetime exited %d", code)
	}

	url2, stop2 := startDaemon(t, "-store", store)
	c2 := ampom.NewClusterClient(url2)
	st2, err := c2.Submit(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Status != "done" || !st2.Cached || st2.Key != st.Key {
		t.Fatalf("restart submission %+v, want done+cached under key %s", st2, st.Key)
	}
	second, err := c2.Result(ctx, st2.Key, "json")
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("restart served different bytes")
	}
	if code := stop2(); code != cli.CodeOK {
		t.Fatalf("second lifetime exited %d", code)
	}
}

// TestDaemonUsageErrors locks the flag hygiene and exit-code convention.
func TestDaemonUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-store", ""},
		{"-shards", "0"},
		{"unexpected-arg"},
	} {
		cmd := exec.Command(daemonBinary(t), args...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("args %v: daemon started, want usage error\n%s", args, out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != cli.CodeUsage {
			t.Fatalf("args %v: exit %v, want %d\n%s", args, err, cli.CodeUsage, out)
		}
	}
}
