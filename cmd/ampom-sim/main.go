// Command ampom-sim runs a single migration experiment on the simulated
// cluster and prints its full result: phase timings, fault census, paging
// statistics and AMPoM diagnostics.
//
// Usage:
//
//	ampom-sim -kernel STREAM -mb 575 -scheme ampom
//	ampom-sim -kernel RandomAccess -mb 129 -scheme noprefetch -network broadband
//	ampom-sim -kernel DGEMM -alloc 575 -mb 115    # §5.6 working-set variant
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ampom"
)

func main() {
	kernel := flag.String("kernel", "DGEMM", "HPCC kernel: DGEMM, STREAM, RandomAccess, FFT")
	mb := flag.Int64("mb", 115, "process footprint in MB (working set for -alloc runs)")
	alloc := flag.Int64("alloc", 0, "if set, allocate this many MB but touch only -mb (§5.6)")
	scheme := flag.String("scheme", "ampom", "migration scheme: ampom, openmosix, noprefetch")
	network := flag.String("network", "fast", "network: fast (100Mb/s) or broadband (6Mb/s)")
	load := flag.Float64("load", 0, "background network load fraction [0,0.95]")
	seed := flag.Uint64("seed", 42, "seed")
	flag.Parse()

	var k ampom.Kernel
	switch strings.ToLower(*kernel) {
	case "dgemm":
		k = ampom.DGEMM
	case "stream":
		k = ampom.STREAM
	case "randomaccess", "ra", "gups":
		k = ampom.RandomAccess
	case "fft":
		k = ampom.FFT
	default:
		fatal("unknown kernel %q", *kernel)
	}

	var s ampom.Scheme
	switch strings.ToLower(*scheme) {
	case "ampom":
		s = ampom.SchemeAMPoM
	case "openmosix", "om":
		s = ampom.SchemeOpenMosix
	case "noprefetch", "np", "ffa":
		s = ampom.SchemeNoPrefetch
	default:
		fatal("unknown scheme %q", *scheme)
	}

	net := ampom.FastEthernet()
	if strings.HasPrefix(strings.ToLower(*network), "broad") {
		net = ampom.Broadband()
	}

	var w *ampom.Workload
	var err error
	if *alloc > 0 {
		w, err = ampom.BuildWorkingSetWorkload(*alloc, *mb, *seed)
	} else {
		w, err = ampom.BuildWorkload(ampom.Entry{Kernel: k, ProblemSize: *mb, MemoryMB: *mb}, *seed)
	}
	if err != nil {
		fatal("building workload: %v", err)
	}

	r, err := ampom.Run(ampom.RunConfig{
		Workload: w, Scheme: s, Network: net, Seed: *seed, BackgroundLoad: *load,
	})
	if err != nil {
		fatal("running: %v", err)
	}

	fmt.Printf("workload        %s (%d pages, %d refs)\n", r.Workload, w.Layout.Pages(), w.Refs)
	fmt.Printf("scheme          %v on %s\n", r.Scheme, r.Network)
	fmt.Printf("init            %v\n", r.Init)
	fmt.Printf("freeze          %v\n", r.Freeze)
	fmt.Printf("exec            %v\n", r.Exec)
	fmt.Printf("total           %v\n", r.Total)
	fmt.Printf("faults          %d (hard %d, wait %d, soft %d)\n",
		r.Faults, r.HardFaults, r.WaitFaults, r.SoftFaults)
	fmt.Printf("requests        %d (%d prefetch-only)\n", r.RequestsSent, r.PrefetchOnly)
	fmt.Printf("pages moved     %d demand + %d prefetched\n", r.DemandPages, r.PrefetchPages)
	fmt.Printf("bytes to dest   %d\n", r.BytesToDest)
	fmt.Printf("stall time      %v\n", r.StallTime)
	if s == ampom.SchemeAMPoM {
		fmt.Printf("prefetch/req    %.1f\n", r.PrefetchPerRequest)
		fmt.Printf("mean S / N      %.3f / %.1f\n", r.MeanScore, r.MeanN)
		fmt.Printf("analysis time   %v (%.3f%% of exec)\n", r.AnalysisTime, r.OverheadPct)
		fmt.Printf("final RTT est   %v\n", r.FinalRTTEst)
	}
	fmt.Printf("sim events      %d\n", r.Events)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ampom-sim: "+format+"\n", args...)
	os.Exit(2)
}
