// Command ampom-sim runs migration experiments on the simulated cluster and
// prints their full results: phase timings, fault census, paging statistics
// and AMPoM diagnostics.
//
// Usage:
//
//	ampom-sim -kernel STREAM -mb 575 -scheme ampom
//	ampom-sim -kernel RandomAccess -mb 129 -scheme noprefetch -network broadband
//	ampom-sim -kernel DGEMM -alloc 575 -mb 115    # §5.6 working-set variant
//	ampom-sim -kernel DGEMM -mb 575 -scheme all -j 4   # compare all schemes
//
// Experiments run through the campaign engine: the per-experiment PRNG seed
// is derived from -seed and the workload key, so results are reproducible
// and match the cells ampom-bench renders. -scheme all fans every scheme
// out across -j workers.
package main

import (
	"flag"
	"fmt"
	"strings"

	"ampom"
	"ampom/internal/cli"
)

func main() {
	kernel := flag.String("kernel", "DGEMM", "HPCC kernel: DGEMM, STREAM, RandomAccess, FFT")
	mb := flag.Int64("mb", 115, "process footprint in MB (working set for -alloc runs)")
	alloc := flag.Int64("alloc", 0, "if set, allocate this many MB but touch only -mb (§5.6)")
	scheme := flag.String("scheme", "ampom", "migration scheme: ampom, openmosix, noprefetch, or all")
	network := flag.String("network", "fast", "network: fast (100Mb/s) or broadband (6Mb/s)")
	load := flag.Float64("load", 0, "background network load fraction [0,0.95]")
	cf := cli.AddCampaignFlags(flag.CommandLine)
	flag.Parse()

	var k ampom.Kernel
	switch strings.ToLower(*kernel) {
	case "dgemm":
		k = ampom.DGEMM
	case "stream":
		k = ampom.STREAM
	case "randomaccess", "ra", "gups":
		k = ampom.RandomAccess
	case "fft":
		k = ampom.FFT
	default:
		fatal("unknown kernel %q", *kernel)
	}

	net := ampom.FastEthernet()
	if strings.HasPrefix(strings.ToLower(*network), "broad") {
		net = ampom.Broadband()
	}

	eng := ampom.NewCampaignEngine(ampom.CampaignOptions{Workers: cf.Workers(), BaseSeed: cf.Seed})

	job := ampom.CampaignJob{
		Kernel: k, MemoryMB: *mb, AllocMB: *alloc,
		Network: net, BackgroundLoad: *load,
	}

	var schemes []ampom.Scheme
	switch strings.ToLower(*scheme) {
	case "ampom":
		schemes = []ampom.Scheme{ampom.SchemeAMPoM}
	case "openmosix", "om":
		schemes = []ampom.Scheme{ampom.SchemeOpenMosix}
	case "noprefetch", "np", "ffa":
		schemes = []ampom.Scheme{ampom.SchemeNoPrefetch}
	case "all":
		schemes = ampom.Schemes()
	case "all5":
		schemes = ampom.AllSchemes()
	default:
		fatal("unknown scheme %q (want ampom, openmosix, noprefetch, all, all5)", *scheme)
	}

	batch := make([]ampom.CampaignJob, len(schemes))
	for i, s := range schemes {
		j := job
		j.Scheme = s
		batch[i] = j
	}
	// A partial failure still prints every healthy scheme's row; the
	// aggregated failures go to stderr and the exit code reports them (the
	// ampom-bench convention: 1 for failed runs, 2 only for usage errors).
	results, err := eng.RunAll(batch)
	if err != nil {
		cli.Errorf("%v", err)
	}
	if len(results) == 1 {
		if results[0] == nil {
			cli.Exit(cli.CodeFail)
		}
		printResult(results[0])
		return
	}
	printComparison(results)
	if err != nil {
		cli.Exit(cli.CodeFail)
	}
}

// printResult dumps one experiment in the classic ampom-sim format.
func printResult(r *ampom.Result) {
	fmt.Printf("workload        %s (%d MB)\n", r.Workload, r.MemoryMB)
	fmt.Printf("scheme          %v on %s\n", r.Scheme, r.Network)
	fmt.Printf("init            %v\n", r.Init)
	fmt.Printf("freeze          %v\n", r.Freeze)
	fmt.Printf("exec            %v\n", r.Exec)
	fmt.Printf("total           %v\n", r.Total)
	fmt.Printf("faults          %d (hard %d, wait %d, soft %d)\n",
		r.Faults, r.HardFaults, r.WaitFaults, r.SoftFaults)
	fmt.Printf("requests        %d (%d prefetch-only)\n", r.RequestsSent, r.PrefetchOnly)
	fmt.Printf("pages moved     %d demand + %d prefetched\n", r.DemandPages, r.PrefetchPages)
	fmt.Printf("bytes to dest   %d\n", r.BytesToDest)
	fmt.Printf("stall time      %v\n", r.StallTime)
	if r.Scheme == ampom.SchemeAMPoM {
		fmt.Printf("prefetch/req    %.1f\n", r.PrefetchPerRequest)
		fmt.Printf("mean S / N      %.3f / %.1f\n", r.MeanScore, r.MeanN)
		fmt.Printf("analysis time   %v (%.3f%% of exec)\n", r.AnalysisTime, r.OverheadPct)
		fmt.Printf("final RTT est   %v\n", r.FinalRTTEst)
	}
	fmt.Printf("sim events      %d\n", r.Events)
}

// printComparison renders the -scheme all side-by-side table from the
// healthy results; failed slots (nil) are simply absent.
func printComparison(results []*ampom.Result) {
	var r0 *ampom.Result
	for _, r := range results {
		if r != nil {
			r0 = r
			break
		}
	}
	if r0 == nil {
		return // every scheme failed; the aggregated error is on stderr
	}
	t := &ampom.FigureTable{
		Title:  fmt.Sprintf("Scheme comparison: %s (%d MB) on %s", r0.Workload, r0.MemoryMB, r0.Network),
		Header: []string{"scheme", "freeze (s)", "total (s)", "fault requests", "prefetched", "MB moved"},
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		t.Rows = append(t.Rows, []string{
			r.Scheme.String(),
			fmt.Sprintf("%.3f", r.Freeze.Seconds()),
			fmt.Sprintf("%.3f", r.Total.Seconds()),
			fmt.Sprint(r.HardFaults),
			fmt.Sprint(r.PrefetchPages),
			fmt.Sprintf("%.1f", float64(r.BytesToDest)/1e6),
		})
	}
	fmt.Print(t.Render())
}

func fatal(format string, args ...any) {
	cli.Usage(format, args...)
}
