package main

import (
	"strings"
	"testing"

	"ampom/internal/cli"
	"ampom/internal/clitest"
)

func TestSmokeSingleScheme(t *testing.T) {
	out := clitest.Run(t, "-kernel", "STREAM", "-mb", "8", "-scheme", "ampom")
	for _, want := range []string{"workload", "freeze", "faults", "prefetch/req"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeAllSchemesParallel(t *testing.T) {
	out := clitest.Run(t, "-kernel", "DGEMM", "-mb", "8", "-scheme", "all", "-j", "2")
	if !strings.Contains(out, "Scheme comparison") || !strings.Contains(out, "AMPoM") {
		t.Fatalf("unexpected comparison output:\n%s", out)
	}
}

func TestSmokeUnknownKernelIsUsageError(t *testing.T) {
	_, stderr := clitest.RunExpect(t, cli.CodeUsage, "-kernel", "bogus")
	if !strings.Contains(stderr, "unknown kernel") {
		t.Fatalf("unexpected stderr:\n%s", stderr)
	}
}
