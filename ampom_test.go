package ampom

import (
	"testing"

	"ampom/internal/sim"
)

// newEngine is shared by the micro-benchmarks.
func newEngine() *sim.Engine { return sim.New() }

func TestFacadeQuickstart(t *testing.T) {
	w, err := BuildWorkload(Entry{Kernel: STREAM, ProblemSize: 8, MemoryMB: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(RunConfig{Workload: w, Scheme: SchemeAMPoM, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Freeze <= 0 || r.Total <= r.Freeze {
		t.Fatalf("degenerate result %+v", r)
	}
}

func TestFacadeCatalogue(t *testing.T) {
	if len(Catalogue()) != 18 {
		t.Fatal("catalogue incomplete")
	}
	if len(Kernels()) != 4 {
		t.Fatal("kernel list incomplete")
	}
}

func TestFacadeSchemes(t *testing.T) {
	w, err := BuildWorkload(ScaleEntry(Catalogue()[0], 16), 1)
	if err != nil {
		t.Fatal(err)
	}
	var prevFreeze Duration
	for i, s := range []Scheme{SchemeNoPrefetch, SchemeAMPoM, SchemeOpenMosix} {
		r, err := Run(RunConfig{Workload: w, Scheme: s, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && r.Freeze <= prevFreeze {
			t.Fatalf("freeze ordering violated at %v", s)
		}
		prevFreeze = r.Freeze
	}
}

func TestFacadeNetworkShaping(t *testing.T) {
	p := ShapeNetwork(FastEthernet(), 6e6, 2_000_000)
	if p.BandwidthBps != 0.75e6 {
		t.Fatalf("shaped profile = %+v", p)
	}
	if Broadband().BandwidthBps != 0.75e6 {
		t.Fatal("broadband profile wrong")
	}
}

func TestFacadePrefetcher(t *testing.T) {
	p, err := NewPrefetcher(DefaultPrefetcherConfig(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.RecordFault(PageNum(i), Time(i)*1_000_000, 1)
	}
	a := p.Analyze(Estimates{RTT: 20_000_000, PageTransfer: 400_000})
	if a.Score != 1 || a.N == 0 {
		t.Fatalf("sequential analysis = %+v", a)
	}
}

func TestFacadeCampaign(t *testing.T) {
	c := NewCampaign(CampaignConfig{Scale: 32, Seed: 3})
	tab := c.Table1()
	if len(tab.Rows) == 0 {
		t.Fatal("campaign table empty")
	}
}

func TestFacadeWorkingSet(t *testing.T) {
	w, err := BuildWorkingSetWorkload(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.WorkingSetPages >= w.Layout.Pages() {
		t.Fatal("working set not smaller than allocation")
	}
}

func TestFacadeLocality(t *testing.T) {
	w, err := BuildWorkload(Entry{Kernel: STREAM, ProblemSize: 8, MemoryMB: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, tmp := Locality(w)
	if s <= 0.2 {
		t.Fatalf("STREAM spatial = %v", s)
	}
	if tmp > 0.2 {
		t.Fatalf("STREAM temporal = %v", tmp)
	}
}

// TestFacadeCampaignEngine drives the re-exported parallel campaign engine:
// a small scheme sweep must be cache-shared, deterministic across worker
// counts, and reproducible through the derived job seeds.
func TestFacadeCampaignEngine(t *testing.T) {
	jobs := []CampaignJob{
		{Kernel: STREAM, MemoryMB: 8, Scheme: SchemeAMPoM},
		{Kernel: STREAM, MemoryMB: 8, Scheme: SchemeOpenMosix},
		{Kernel: STREAM, MemoryMB: 8, Scheme: SchemeAMPoM}, // duplicate
	}
	seq := NewCampaignEngine(CampaignOptions{Workers: 1, BaseSeed: 9})
	par := NewCampaignEngine(CampaignOptions{Workers: 4, BaseSeed: 9})
	sres, err := seq.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := par.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Executed() != 2 || par.Executed() != 2 {
		t.Fatalf("executed %d/%d distinct jobs, want 2", seq.Executed(), par.Executed())
	}
	for i := range jobs {
		if sres[i].Total != pres[i].Total || sres[i].HardFaults != pres[i].HardFaults {
			t.Fatalf("job %d: sequential and parallel results differ", i)
		}
	}
	if DeriveJobSeed(9, jobs[0].Fingerprint()) != DeriveJobSeed(9, jobs[2].Fingerprint()) {
		t.Fatal("identical jobs derived different seeds")
	}
	if DeriveJobSeed(9, jobs[0].Fingerprint()) == DeriveJobSeed(10, jobs[0].Fingerprint()) {
		t.Fatal("base seed ignored by seed derivation")
	}
}

// TestFacadePolicyRegistry drives the v2 balancer surface: the registry
// lists all five built-ins in sorted order, lookups and sweeps work, and
// the deprecated v1 shims still answer.
func TestFacadePolicyRegistry(t *testing.T) {
	names := BalancerPolicyNames()
	if len(names) < 5 {
		t.Fatalf("registry has %d policies, want >= 5: %v", len(names), names)
	}
	for _, want := range []string{PolicyAMPoM, PolicyLoadVector, PolicyMemUsher, PolicyNoMigration, PolicyOpenMosix} {
		if _, ok := LookupBalancerPolicy(want); !ok {
			t.Fatalf("built-in policy %q missing", want)
		}
	}
	pols, err := BalancerPolicies(PolicyAMPoM, PolicyNoMigration)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BalanceConfig{Jobs: 16, Nodes: 4}
	res := CompareBalancers(cfg, pols...)
	if len(res) != 2 || res[0].Policy != PolicyAMPoM {
		t.Fatalf("CompareBalancers rows wrong: %+v", res)
	}
	am := SimulateBalancer(cfg, pols[0])
	if am.Policy != PolicyAMPoM || am.Makespan <= 0 {
		t.Fatalf("SimulateBalancer degenerate: %+v", am)
	}
	// The deprecated v1 shims keep answering in the v1 order.
	old := CompareBalancing(cfg)
	if old[0].Policy != PolicyNoMigration || old[2].Policy != PolicyAMPoM {
		t.Fatalf("v1 CompareBalancing order broken: %+v", old)
	}
	if SimulateBalancing(cfg, BalanceAMPoM).Policy != PolicyAMPoM {
		t.Fatal("v1 SimulateBalancing shim broken")
	}
}

// TestFacadeFabric drives the fabric surface: topology parsing, the
// ScenarioFabric spec block, a switched-fabric run with tier stats and the
// queue-gossip policy, and the report decode/diff round trip.
func TestFacadeFabric(t *testing.T) {
	if _, ok := LookupBalancerPolicy(PolicyQueueGossip); !ok {
		t.Fatalf("built-in policy %q missing", PolicyQueueGossip)
	}
	names := FabricTopologyNames()
	if len(names) != 3 {
		t.Fatalf("topologies %v, want star/two-tier/flat", names)
	}
	k, err := ParseFabricTopology("two-tier")
	if err != nil || k != FabricTwoTier {
		t.Fatalf("ParseFabricTopology = %v, %v", k, err)
	}
	if _, err := ParseFabricTopology("hypercube"); err == nil {
		t.Fatal("unknown topology accepted")
	}

	spec := ScenarioSpec{
		Name: "facade-fabric", Nodes: 8, Procs: 24,
		Policies: []string{PolicyAMPoM, PolicyQueueGossip},
		Fabric:   ScenarioFabric{Topology: FabricTwoTier, RackSize: 4},
	}
	rep, err := RunScenario(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	am, ok := rep.Scheme(PolicyAMPoM)
	if !ok || len(am.TierUse) != 2 {
		t.Fatalf("two-tier run carries tiers %+v", am.TierUse)
	}

	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeScenarioReports(js)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Seed != rep.Seed {
		t.Fatalf("report decode round trip lost the run: %+v", back)
	}
	diffs, err := DiffScenarioReports(js, js)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("identical artefacts diverged: %v", diffs)
	}
	other, err := RunScenario(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	oj, err := other.JSON()
	if err != nil {
		t.Fatal(err)
	}
	diffs, err = DiffScenarioReports(js, oj)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 {
		t.Fatal("different-seed artefacts compared equal")
	}
}

// TestFacadeScenarioSpecIO round-trips a spec and a report through the
// facade's I/O surface.
func TestFacadeScenarioSpecIO(t *testing.T) {
	spec := ScenarioSpec{Name: "facade", Nodes: 4, Procs: 8, Policies: []string{PolicyAMPoM}}
	data, err := EncodeScenarioSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeScenarioSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != spec.Canonical().Fingerprint() {
		t.Fatal("facade spec round trip changed the fingerprint")
	}
	rep, err := RunScenario(back, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Schemes) != 2 { // AMPoM plus the implicit baseline
		t.Fatalf("report has %d rows, want 2", len(rep.Schemes))
	}
	js, err := ScenarioReportsJSON([]*ScenarioReport{rep})
	if err != nil {
		t.Fatal(err)
	}
	if len(js) == 0 || ScenarioReportsCSV([]*ScenarioReport{rep}) == "" {
		t.Fatal("report encoders returned nothing")
	}
}

// TestFacadeCampaignWorkers checks the harness-level Workers plumbing.
func TestFacadeCampaignWorkers(t *testing.T) {
	seq := NewCampaign(CampaignConfig{Scale: 16, Seed: 7, Workers: 1}).Table1().Render()
	par := NewCampaign(CampaignConfig{Scale: 16, Seed: 7, Workers: 8}).Table1().Render()
	if seq != par {
		t.Fatal("Table 1 differs across worker counts")
	}
}
