package cli

import (
	"flag"
	"strings"
)

// This file dedupes the campaign flag plumbing every binary used to repeat:
// -seed, -j and -parallel are registered once here, and the
// -parallel=false ⇒ one worker resolution lives in one place instead of
// being copied into each main.

// CampaignFlags holds the campaign-engine flags the cmd/ binaries share.
// Read the fields after flag parsing; resolve the pool size with Workers.
type CampaignFlags struct {
	// Seed is the campaign base seed every per-job seed derives from.
	Seed uint64
	// Jobs is the requested worker pool size (0 = GOMAXPROCS).
	Jobs int
	// Parallel fans batches across the worker pool; false forces strictly
	// sequential runs unless -j overrides it.
	Parallel bool
}

// AddCampaignFlags registers -seed, -j and -parallel on fs (the binaries
// pass flag.CommandLine) and returns the destination struct.
func AddCampaignFlags(fs *flag.FlagSet) *CampaignFlags {
	c := &CampaignFlags{}
	fs.Uint64Var(&c.Seed, "seed", 42, "campaign base seed")
	fs.IntVar(&c.Jobs, "j", 0, "worker pool size (0 = GOMAXPROCS; implies -parallel)")
	fs.BoolVar(&c.Parallel, "parallel", true, "fan batches across the worker pool")
	return c
}

// Workers resolves the worker-pool bound the campaign engine should use:
// -j wins when set; -parallel=false forces 1; otherwise 0 (GOMAXPROCS).
// Per-job seeds are derived from job keys, so every setting renders
// byte-identical output.
func (c *CampaignFlags) Workers() int {
	if !c.Parallel && c.Jobs == 0 {
		return 1
	}
	return c.Jobs
}

// AddSeedFlag registers just -seed, for binaries without a worker pool.
func AddSeedFlag(fs *flag.FlagSet) *uint64 {
	seed := fs.Uint64("seed", 42, "seed for all stochastic components")
	return seed
}

// PolicyList parses a -policies flag value: a comma-separated name list,
// trimmed, empties dropped. "all" (or an empty value) returns nil, which
// scenario canonicalisation resolves to every registered policy. One
// parser serves every binary so the flag cannot drift between them.
func PolicyList(s string) []string {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return nil
	}
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}
