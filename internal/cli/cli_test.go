package cli

import (
	"errors"
	"strings"
	"testing"
)

// capture swaps the exit and stderr hooks, runs fn, and returns the exit
// code (-1 if never called) and everything written to stderr.
func capture(fn func()) (code int, out string) {
	var b strings.Builder
	code = -1
	osExit = func(c int) { code = c }
	stderr = &b
	fn()
	return code, b.String()
}

func TestFailUsesCodeFail(t *testing.T) {
	code, out := capture(func() { Fail("broken %d", 7) })
	if code != CodeFail {
		t.Fatalf("Fail exited %d, want %d", code, CodeFail)
	}
	if !strings.Contains(out, "broken 7") || !strings.Contains(out, ": ") {
		t.Fatalf("unexpected message %q", out)
	}
}

func TestUsageUsesCodeUsage(t *testing.T) {
	code, _ := capture(func() { Usage("bad flag") })
	if code != CodeUsage {
		t.Fatalf("Usage exited %d, want %d", code, CodeUsage)
	}
}

func TestCheckNilIsNoop(t *testing.T) {
	code, out := capture(func() { Check(nil) })
	if code != -1 || out != "" {
		t.Fatalf("Check(nil) exited %d with %q", code, out)
	}
}

func TestCheckErrorFails(t *testing.T) {
	code, out := capture(func() { Check(errors.New("boom")) })
	if code != CodeFail || !strings.Contains(out, "boom") {
		t.Fatalf("Check(err) exited %d with %q", code, out)
	}
}

func TestErrorfDoesNotExit(t *testing.T) {
	code, out := capture(func() { Errorf("partial") })
	if code != -1 {
		t.Fatalf("Errorf exited %d", code)
	}
	if !strings.Contains(out, "partial") {
		t.Fatalf("unexpected message %q", out)
	}
}

func TestExitPassesCodeThrough(t *testing.T) {
	code, _ := capture(func() { Exit(CodeOK) })
	if code != CodeOK {
		t.Fatalf("Exit(0) exited %d", code)
	}
}
