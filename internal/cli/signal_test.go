package cli

import (
	"context"
	"syscall"
	"testing"
	"time"
)

func TestSignalContextCancelsOnSigterm(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	defer stop()
	select {
	case <-ctx.Done():
		t.Fatal("context done before any signal")
	default:
	}
	// While NotifyContext is registered the signal is caught, not fatal.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the context")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}

func TestSignalContextStopDetaches(t *testing.T) {
	ctx, stop := SignalContext(context.Background())
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not cancel the context")
	}
}
