package cli

import (
	"flag"
	"testing"
)

func parseCampaign(t *testing.T, args ...string) *CampaignFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := AddCampaignFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignFlagDefaults(t *testing.T) {
	c := parseCampaign(t)
	if c.Seed != 42 || c.Jobs != 0 || !c.Parallel {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Workers() != 0 {
		t.Fatalf("default workers = %d, want 0 (GOMAXPROCS)", c.Workers())
	}
}

func TestCampaignFlagWorkersResolution(t *testing.T) {
	cases := []struct {
		args []string
		want int
	}{
		{nil, 0},
		{[]string{"-j", "8"}, 8},
		{[]string{"-parallel=false"}, 1},
		{[]string{"-parallel=false", "-j", "4"}, 4}, // -j implies -parallel
	}
	for _, tc := range cases {
		if got := parseCampaign(t, tc.args...).Workers(); got != tc.want {
			t.Fatalf("%v: workers = %d, want %d", tc.args, got, tc.want)
		}
	}
}

func TestPolicyList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"all", nil},
		{" ALL ", nil},
		{"", nil},
		{"AMPoM", []string{"AMPoM"}},
		{" AMPoM , mem-usher ,", []string{"AMPoM", "mem-usher"}},
	}
	for _, tc := range cases {
		got := PolicyList(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("PolicyList(%q) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("PolicyList(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestCampaignFlagSeed(t *testing.T) {
	if c := parseCampaign(t, "-seed", "7"); c.Seed != 7 {
		t.Fatalf("seed = %d", c.Seed)
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	seed := AddSeedFlag(fs)
	if err := fs.Parse([]string{"-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 9 {
		t.Fatalf("seed-only flag = %d", *seed)
	}
}
