// Package cli centralises the exit-code and error-reporting conventions of
// the repository's commands and examples, so every binary fails the same
// way ampom-bench established:
//
//	0 — success
//	1 — runtime or partial failure (a job failed, an artefact was skipped)
//	2 — usage error (bad flags or arguments)
//
// Binaries report errors through Fail/Usage/Check and terminate through
// Exit, never through bare os.Exit or log.Fatal, which keeps partial-
// failure exit codes consistent across cmd/ and examples/.
package cli

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The exit-code convention.
const (
	CodeOK    = 0
	CodeFail  = 1 // runtime or partial failure
	CodeUsage = 2 // bad flags or arguments
)

// Test hooks: the exit function and error stream are swappable so the
// package's behaviour is testable in-process.
var (
	osExit           = os.Exit
	stderr io.Writer = os.Stderr
)

// prog returns the running binary's name for message prefixes.
func prog() string {
	if len(os.Args) == 0 || os.Args[0] == "" {
		return "ampom"
	}
	return filepath.Base(os.Args[0])
}

// Errorf prints a prefixed message to stderr without exiting — for partial
// failures that should be reported while the binary keeps going.
func Errorf(format string, args ...any) {
	fmt.Fprintf(stderr, "%s: %s\n", prog(), fmt.Sprintf(format, args...))
}

// Fail reports a runtime failure and exits with CodeFail.
func Fail(format string, args ...any) {
	Errorf(format, args...)
	osExit(CodeFail)
}

// Usage reports a usage error and exits with CodeUsage.
func Usage(format string, args ...any) {
	Errorf(format, args...)
	osExit(CodeUsage)
}

// Check is the common guard: a nil error is a no-op, anything else is a
// runtime failure.
func Check(err error) {
	if err != nil {
		Fail("%v", err)
	}
}

// Exit terminates with an explicit code — the tail call of binaries that
// accumulate partial failures while still rendering healthy output.
func Exit(code int) { osExit(code) }
