package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on the first SIGINT or
// SIGTERM — the shared graceful-shutdown hook of the repository's
// long-running binaries. The daemon drains on it (stop admitting, finish
// running jobs); the batch CLIs pass it to RunScenariosCtx so an
// interrupted campaign stops dispatching but never tears a simulation
// mid-run.
//
// Signal delivery is one-shot: the stop function restores default
// handling, so a second Ctrl-C during the drain kills the process the
// ordinary way instead of being swallowed.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
