// Package simtime defines the virtual time base used by the discrete-event
// simulator. Virtual time is an int64 nanosecond count so that simulations
// are exactly reproducible across runs and platforms; no wall-clock time is
// ever consulted.
package simtime

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is deliberately a
// distinct type from time.Duration so that virtual and wall-clock durations
// cannot be mixed by accident, although the unit (ns) is the same.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never = Time(1<<63 - 1)

// Add returns the instant d after t. It saturates at Never on overflow.
func (t Time) Add(d Duration) Time {
	s := Time(int64(t) + int64(d))
	if d > 0 && s < t {
		return Never
	}
	return s
}

// Sub returns the duration from u to t (t − u).
func (t Time) Sub(u Time) Duration { return Duration(int64(t) - int64(u)) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds since the
// epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as seconds with microsecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Std converts the virtual duration to a time.Duration. Both are nanosecond
// counts, so the conversion is exact.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration using the standard library notation.
func (d Duration) String() string { return time.Duration(d).String() }

// FromSeconds converts a floating-point number of seconds to a Duration,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Duration {
	if s <= 0 {
		return 0
	}
	return Duration(s*float64(Second) + 0.5)
}

// FromStd converts a time.Duration to a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// Rate is an event rate in events per second of virtual time.
type Rate float64

// Interval returns the mean spacing between events at rate r. A non-positive
// rate yields Never-like spacing (the maximum Duration).
func (r Rate) Interval() Duration {
	if r <= 0 {
		return Duration(1<<63 - 1)
	}
	return FromSeconds(1 / float64(r))
}

// Over computes the rate of n events over duration d. A non-positive
// duration yields 0.
func Over(n int, d Duration) Rate {
	if d <= 0 || n <= 0 {
		return 0
	}
	return Rate(float64(n) / d.Seconds())
}
