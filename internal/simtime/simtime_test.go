package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeAdd(t *testing.T) {
	tm := Time(0)
	if got := tm.Add(Second); got != Time(1e9) {
		t.Fatalf("Add(Second) = %v, want 1e9", int64(got))
	}
	if got := tm.Add(-Second); got != Time(-1e9) {
		t.Fatalf("Add(-Second) = %v, want -1e9", int64(got))
	}
}

func TestTimeAddSaturates(t *testing.T) {
	near := Never - 10
	if got := near.Add(Duration(100)); got != Never {
		t.Fatalf("overflowing Add = %v, want Never", got)
	}
	if got := near.Add(5); got != Never-5 {
		t.Fatalf("non-overflowing Add = %v, want %v", got, Never-5)
	}
}

func TestTimeSub(t *testing.T) {
	a, b := Time(5*Second), Time(2*Second)
	if got := a.Sub(b); got != 3*Second {
		t.Fatalf("Sub = %v, want 3s", got)
	}
	if got := b.Sub(a); got != -3*Second {
		t.Fatalf("Sub = %v, want -3s", got)
	}
}

func TestBeforeAfter(t *testing.T) {
	a, b := Time(1), Time(2)
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Fatal("Before misordered")
	}
	if !b.After(a) || a.After(b) || a.After(a) {
		t.Fatal("After misordered")
	}
}

func TestSeconds(t *testing.T) {
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
	if got := (2500 * Microsecond).Seconds(); got != 0.0025 {
		t.Fatalf("Duration.Seconds = %v, want 0.0025", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3 {
		t.Fatalf("Milliseconds = %v, want 3", got)
	}
}

func TestFromSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want Duration
	}{
		{1, Second},
		{0.001, Millisecond},
		{0, 0},
		{-5, 0},
		{1e-9, Nanosecond},
	}
	for _, c := range cases {
		if got := FromSeconds(c.in); got != c.want {
			t.Errorf("FromSeconds(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	// Restricted to durations well inside float64's integer-exact range;
	// beyond ~2^52 ns the conversion is correct only to 1 ulp.
	f := func(ms uint16) bool {
		d := Duration(ms) * Millisecond
		return FromSeconds(d.Seconds()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdConversion(t *testing.T) {
	if got := (250 * Millisecond).Std(); got != 250*time.Millisecond {
		t.Fatalf("Std = %v", got)
	}
	if got := FromStd(2 * time.Second); got != 2*Second {
		t.Fatalf("FromStd = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if got := Time(1500 * Millisecond).String(); got != "1.500000s" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := Never.String(); got != "never" {
		t.Fatalf("Never.String = %q", got)
	}
	if got := (90 * Second).String(); got != "1m30s" {
		t.Fatalf("Duration.String = %q", got)
	}
}

func TestRateInterval(t *testing.T) {
	if got := Rate(1000).Interval(); got != Millisecond {
		t.Fatalf("Interval = %v, want 1ms", got)
	}
	if got := Rate(0).Interval(); got != Duration(1<<63-1) {
		t.Fatalf("zero-rate Interval = %v", got)
	}
	if got := Rate(-3).Interval(); got != Duration(1<<63-1) {
		t.Fatalf("negative-rate Interval = %v", got)
	}
}

func TestOver(t *testing.T) {
	if got := Over(100, Second); got != 100 {
		t.Fatalf("Over = %v, want 100", got)
	}
	if got := Over(0, Second); got != 0 {
		t.Fatalf("Over with zero events = %v", got)
	}
	if got := Over(10, 0); got != 0 {
		t.Fatalf("Over with zero duration = %v", got)
	}
	if got := Over(10, -Second); got != 0 {
		t.Fatalf("Over with negative duration = %v", got)
	}
}

func TestRateIntervalInverse(t *testing.T) {
	f := func(n uint16) bool {
		if n == 0 {
			return true
		}
		r := Rate(n)
		// rate → interval → rate round-trips within the ns-rounding error.
		back := Over(1, r.Interval())
		diff := float64(back) - float64(r)
		return diff < 1e-4*float64(r) && diff > -1e-4*float64(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
