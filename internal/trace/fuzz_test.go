package trace

import (
	"testing"

	"ampom/internal/memory"
	"ampom/internal/simtime"
)

// FuzzCompose builds workload compositions from arbitrary parameters —
// strided and random primitives combined through Concat, Interleave, Repeat
// and Limit — and checks the combinator contracts every workload model
// relies on: factories replay identically, Count agrees with a full drain,
// exhausted sources stay exhausted, Limit truncates exactly, and permuted
// sweeps cover each page exactly once. Run with `go test -fuzz FuzzCompose`;
// `make ci` gives it a 10 s smoke.
func FuzzCompose(f *testing.F) {
	f.Add(int64(0), uint16(16), int8(1), uint16(8), uint64(1), uint16(10))
	f.Add(int64(100), uint16(64), int8(-3), uint16(32), uint64(7), uint16(5))
	f.Add(int64(5), uint16(1), int8(0), uint16(1), uint64(42), uint16(0))
	f.Add(int64(1<<20), uint16(128), int8(16), uint16(100), uint64(99), uint16(1000))

	f.Fuzz(func(t *testing.T, start int64, count16 uint16, stride int8, span16 uint16, seed uint64, limit16 uint16) {
		// Clamp to simulator-plausible shapes; the interesting surface is
		// the combinator algebra, not giant allocations.
		count := int64(count16%512) + 1
		span := int64(span16%512) + 1
		limit := int64(limit16 % 1024)
		st := memory.PageNum(start % (1 << 40))
		compute := simtime.Microsecond

		parts := []Factory{
			Strided(st, count, int64(stride), compute, false),
			RandomUniform(st, span, count, compute, true, seed),
			Permuted(st, count, compute, false, seed),
			BlockPermuted(st, count, 1+int64(span%8), compute, false, seed),
		}
		composite := Concat(
			Interleave(parts...),
			Repeat(2, Sequential(st, count, compute, false)),
			Limit(limit, RandomUniform(st, span, count, compute, false, seed^1)),
		)

		// Replay determinism: two sources from one factory emit identical
		// streams.
		a := Collect(composite(), 0)
		b := Collect(composite(), 0)
		if len(a) != len(b) {
			t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replay diverges at ref %d: %+v vs %+v", i, a[i], b[i])
			}
		}

		// Count agrees with a full drain, and the total adds up: the four
		// interleaved parts emit 4×count, the repeat 2×count, the limited
		// tail min(limit, count).
		if got := Count(composite); got != int64(len(a)) {
			t.Fatalf("Count %d != drained %d", got, len(a))
		}
		tail := limit
		if count < tail {
			tail = count
		}
		if want := 4*count + 2*count + tail; int64(len(a)) != want {
			t.Fatalf("composite emitted %d refs, want %d", len(a), want)
		}

		// Exhausted sources stay exhausted.
		src := composite()
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		for i := 0; i < 3; i++ {
			if _, ok := src.Next(); ok {
				t.Fatal("source emitted after exhaustion")
			}
		}

		// Permuted covers [st, st+count) exactly once.
		seen := make(map[memory.PageNum]int)
		for _, r := range Collect(Permuted(st, count, compute, false, seed)(), 0) {
			seen[r.Page]++
		}
		if int64(len(seen)) != count {
			t.Fatalf("permutation covered %d of %d pages", len(seen), count)
		}
		for pg, n := range seen {
			if n != 1 {
				t.Fatalf("page %d visited %d times", pg, n)
			}
			if pg < st || pg >= st+memory.PageNum(count) {
				t.Fatalf("page %d outside [%d, %d)", pg, st, st+memory.PageNum(count))
			}
		}
	})
}
