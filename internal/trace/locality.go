package trace

import "ampom/internal/memory"

// StrideCounts computes stride_d for d = 1..dmax over the window of page
// references w, per paper §3.1–3.2.
//
// The stride of page v is the minimum forward distance in w between a
// reference to v and a (later) reference to page v+1. stride_d is the
// number of distinct pages that participate in a stride-d pattern — both
// endpoints of each stride-d link count, and chains share members, so for
// {1,99,2,45,3,78,4} the stride-2 links 1→2, 2→3, 3→4 involve the four
// pages {1,2,3,4} and stride_2 = 4.
//
// The returned slice is indexed so that counts[d] is stride_d; counts[0] is
// unused. Consecutive repeats should be collapsed by the caller (the AMPoM
// window never records them).
func StrideCounts(w []memory.PageNum, dmax int) []int64 {
	counts := make([]int64, dmax+1)
	if len(w) < 2 {
		return counts
	}

	// minStride[v] = minimal forward distance from a reference to v to a
	// reference to v+1.
	minStride := make(map[memory.PageNum]int, len(w))
	pos := make(map[memory.PageNum][]int, len(w))
	for i, p := range w {
		pos[p] = append(pos[p], i)
	}
	for v, ps := range pos {
		succ, ok := pos[v+1]
		if !ok {
			continue
		}
		best := 0
		for _, i := range ps {
			for _, j := range succ {
				if j > i {
					if d := j - i; best == 0 || d < best {
						best = d
					}
					break // succ positions ascend; first j>i is closest
				}
			}
		}
		if best > 0 && best <= dmax {
			minStride[v] = best
		}
	}

	// A page participates in stride-d if it starts a stride-d link (its own
	// stride is d) or terminates one (page v-1 has stride d). Count each
	// page once per d.
	counted := make(map[memory.PageNum]map[int]bool, len(minStride)*2)
	add := func(v memory.PageNum, d int) {
		m := counted[v]
		if m == nil {
			m = make(map[int]bool, 2)
			counted[v] = m
		}
		if !m[d] {
			m[d] = true
			counts[d]++
		}
	}
	for v, d := range minStride {
		add(v, d)
		add(v+1, d)
	}
	return counts
}

// SpatialScore computes the spatial locality score of paper Eq. 1:
//
//	S = Σ_{d=1..dmax} stride_d / (l·d)
//
// where l is the window length used for normalisation. Purely sequential
// access scores 1; random access scores ≈ 0. The caller passes the nominal
// window length l, which may exceed len(w) while the window is filling.
func SpatialScore(w []memory.PageNum, l, dmax int) float64 {
	if l <= 0 || len(w) < 2 {
		return 0
	}
	counts := StrideCounts(w, dmax)
	s := 0.0
	for d := 1; d <= dmax; d++ {
		s += float64(counts[d]) / (float64(l) * float64(d))
	}
	if s > 1 {
		s = 1
	}
	return s
}

// SlidingSpatialScore averages SpatialScore over consecutive windows of
// length l across an entire collapsed page sequence — the whole-trace
// spatial locality used to reproduce Figure 4.
func SlidingSpatialScore(pages []memory.PageNum, l, dmax int) float64 {
	pages = CollapseRepeats(pages)
	if len(pages) < 2 {
		return 0
	}
	if len(pages) <= l {
		return SpatialScore(pages, l, dmax)
	}
	var sum float64
	var n int
	for i := 0; i+l <= len(pages); i += l {
		sum += SpatialScore(pages[i:i+l], l, dmax)
		n++
	}
	return sum / float64(n)
}

// TemporalScore measures page-level temporal reuse: the fraction of
// references (after the first window fills) whose page already occurs among
// the previous l references. A process cycling through a small set of pages
// scores near 1; a streaming or random process over a large footprint
// scores near 0.
func TemporalScore(pages []memory.PageNum, l int) float64 {
	if len(pages) <= 1 || l <= 0 {
		return 0
	}
	recent := make(map[memory.PageNum]int, l)
	var window []memory.PageNum
	var reused, total int
	for _, p := range pages {
		if len(window) == l {
			total++
			if recent[p] > 0 {
				reused++
			}
		}
		window = append(window, p)
		recent[p]++
		if len(window) > l {
			old := window[0]
			window = window[1:]
			recent[old]--
			if recent[old] == 0 {
				delete(recent, old)
			}
		}
	}
	if total == 0 {
		// Trace shorter than the window: fall back to repeat fraction.
		seen := make(map[memory.PageNum]bool, len(pages))
		re := 0
		for _, p := range pages {
			if seen[p] {
				re++
			}
			seen[p] = true
		}
		return float64(re) / float64(len(pages))
	}
	return float64(reused) / float64(total)
}

// DedupeRecent filters a raw page-reference sequence down to the stream a
// page-level observer (the TLB, the fault handler) would see: a reference
// is kept only if its page is not among the last k distinct pages emitted.
// Element-level kernels alternate between the pages of their operand
// arrays hundreds of times per page boundary; after deduplication the
// sequence advances one entry per page transition, matching the
// granularity of the synthetic workload models and of AMPoM's window.
func DedupeRecent(pages []memory.PageNum, k int) []memory.PageNum {
	if k < 1 {
		k = 1
	}
	var out []memory.PageNum
	recent := make([]memory.PageNum, 0, k)
	isRecent := func(p memory.PageNum) bool {
		for _, r := range recent {
			if r == p {
				return true
			}
		}
		return false
	}
	for _, p := range pages {
		if isRecent(p) {
			continue
		}
		out = append(out, p)
		recent = append(recent, p)
		if len(recent) > k {
			recent = recent[1:]
		}
	}
	return out
}

// DistinctPages returns the number of distinct pages in the sequence — the
// page-level footprint.
func DistinctPages(pages []memory.PageNum) int64 {
	seen := make(map[memory.PageNum]bool, len(pages))
	for _, p := range pages {
		seen[p] = true
	}
	return int64(len(seen))
}
