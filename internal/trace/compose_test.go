package trace

import (
	"testing"
	"testing/quick"

	"ampom/internal/memory"
	"ampom/internal/simtime"
)

func drain(f Factory) []Ref { return Collect(f(), 0) }

func TestSequential(t *testing.T) {
	refs := drain(Sequential(10, 5, simtime.Microsecond, true))
	if len(refs) != 5 {
		t.Fatalf("len = %d", len(refs))
	}
	for i, r := range refs {
		if r.Page != memory.PageNum(10+i) || !r.Write || r.Compute != simtime.Microsecond {
			t.Fatalf("ref %d = %+v", i, r)
		}
	}
}

func TestStridedDescending(t *testing.T) {
	refs := drain(Strided(10, 3, -2, 0, false))
	want := []memory.PageNum{10, 8, 6}
	for i, r := range refs {
		if r.Page != want[i] {
			t.Fatalf("refs = %v", Pages(refs))
		}
	}
}

func TestFactoryReplayable(t *testing.T) {
	f := Sequential(0, 10, 0, false)
	a, b := drain(f), drain(f)
	if len(a) != 10 || len(b) != 10 {
		t.Fatal("factory not replayable")
	}
}

func TestRandomUniformDeterministicAndInRange(t *testing.T) {
	f := RandomUniform(100, 50, 200, 0, true, 7)
	a, b := drain(f), drain(f)
	if len(a) != 200 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i].Page != b[i].Page {
			t.Fatal("same seed produced different streams")
		}
		if a[i].Page < 100 || a[i].Page >= 150 {
			t.Fatalf("page %d out of range", a[i].Page)
		}
	}
	c := drain(RandomUniform(100, 50, 200, 0, true, 8))
	diff := false
	for i := range a {
		if a[i].Page != c[i].Page {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestConcat(t *testing.T) {
	f := Concat(Sequential(0, 3, 0, false), Sequential(10, 2, 0, false))
	got := Pages(drain(f))
	want := []memory.PageNum{0, 1, 2, 10, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("concat = %v", got)
		}
	}
	if len(drain(Concat())) != 0 {
		t.Fatal("empty concat should be empty")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	f := Interleave(Sequential(0, 3, 0, false), Sequential(100, 3, 0, false))
	got := Pages(drain(f))
	want := []memory.PageNum{0, 100, 1, 101, 2, 102}
	if len(got) != len(want) {
		t.Fatalf("interleave = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave = %v, want %v", got, want)
		}
	}
}

func TestInterleaveUneven(t *testing.T) {
	f := Interleave(Sequential(0, 5, 0, false), Sequential(100, 2, 0, false))
	got := Pages(drain(f))
	if len(got) != 7 {
		t.Fatalf("interleave dropped refs: %v", got)
	}
	// After the short stream drains, the long one continues alone.
	if got[len(got)-1] != 4 {
		t.Fatalf("tail = %v", got)
	}
}

func TestRepeat(t *testing.T) {
	f := Repeat(3, Sequential(5, 2, 0, false))
	got := Pages(drain(f))
	want := []memory.PageNum{5, 6, 5, 6, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("repeat = %v", got)
		}
	}
}

func TestPermutedCoversExactlyOnce(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int64(nRaw%100) + 1
		refs := drain(Permuted(50, n, 0, false, seed))
		if int64(len(refs)) != n {
			return false
		}
		seen := make(map[memory.PageNum]bool)
		for _, r := range refs {
			if r.Page < 50 || r.Page >= memory.PageNum(50+n) || seen[r.Page] {
				return false
			}
			seen[r.Page] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPermutedCoversExactlyOnce(t *testing.T) {
	f := func(seed uint64, nRaw, bRaw uint8) bool {
		n := int64(nRaw%200) + 1
		block := int64(bRaw%16) + 1
		refs := drain(BlockPermuted(10, n, block, 0, false, seed))
		if int64(len(refs)) != n {
			return false
		}
		seen := make(map[memory.PageNum]bool)
		for _, r := range refs {
			if r.Page < 10 || r.Page >= memory.PageNum(10+n) || seen[r.Page] {
				return false
			}
			seen[r.Page] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPermutedLocallySequential(t *testing.T) {
	const block = 8
	refs := drain(BlockPermuted(0, 64, block, 0, false, 3))
	for i := 0; i < len(refs); i += block {
		for j := 1; j < block; j++ {
			if refs[i+j].Page != refs[i].Page+memory.PageNum(j) {
				t.Fatalf("block starting at ref %d not sequential: %v", i, Pages(refs[i:i+block]))
			}
		}
	}
}

func TestLimit(t *testing.T) {
	f := Limit(3, Sequential(0, 100, 0, false))
	if got := len(drain(f)); got != 3 {
		t.Fatalf("limit = %d", got)
	}
	f = Limit(10, Sequential(0, 2, 0, false))
	if got := len(drain(f)); got != 2 {
		t.Fatalf("limit beyond length = %d", got)
	}
}

func TestCount(t *testing.T) {
	if got := Count(Sequential(0, 42, 0, false)); got != 42 {
		t.Fatalf("count = %d", got)
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSliceSource([]Ref{{Page: 1}, {Page: 2}})
	r, ok := s.Next()
	if !ok || r.Page != 1 {
		t.Fatal("first ref wrong")
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source returned ok")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Page != 1 {
		t.Fatal("reset failed")
	}
}

func TestCollectMax(t *testing.T) {
	src := Sequential(0, 100, 0, false)()
	refs := Collect(src, 10)
	if len(refs) != 10 {
		t.Fatalf("collect max = %d", len(refs))
	}
}
