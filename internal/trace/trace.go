// Package trace defines page-reference streams — the interface between
// workload models and the migration machinery — and implements the locality
// mathematics of the paper: stride detection and the spatial locality score
// of §3.2 (a variant of Weinberg et al.'s score), plus a page-level temporal
// reuse score used to reproduce the locality quadrants of Figure 4.
package trace

import (
	"ampom/internal/memory"
	"ampom/internal/simtime"
)

// Ref is one page-level memory reference: the process computes for Compute
// of CPU time and then touches Page. Write reports whether the touch dirties
// the page.
type Ref struct {
	Page    memory.PageNum
	Compute simtime.Duration
	Write   bool
}

// Source produces a finite stream of references. Implementations need not
// be safe for concurrent use; a simulation drives one source from one
// goroutine.
type Source interface {
	// Next returns the next reference. ok is false when the stream is
	// exhausted, after which Next must keep returning ok == false.
	Next() (ref Ref, ok bool)
}

// SliceSource replays a fixed slice of references.
type SliceSource struct {
	refs []Ref
	pos  int
}

// NewSliceSource returns a Source replaying refs in order.
func NewSliceSource(refs []Ref) *SliceSource { return &SliceSource{refs: refs} }

// Next implements Source.
func (s *SliceSource) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a closure to the Source interface.
type FuncSource func() (Ref, bool)

// Next implements Source.
func (f FuncSource) Next() (Ref, bool) { return f() }

// Collect drains src into a slice, up to max references (max <= 0 means no
// limit). Intended for tests and offline analysis; simulations stream.
func Collect(src Source, max int) []Ref {
	var out []Ref
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Pages extracts just the page numbers of refs.
func Pages(refs []Ref) []memory.PageNum {
	out := make([]memory.PageNum, len(refs))
	for i, r := range refs {
		out[i] = r.Page
	}
	return out
}

// CollapseRepeats removes consecutive references to the same page. The
// paper treats consecutive repeated references as temporal locality and
// counts them as a single page reference (§3.1: r_p != r_{p+1}).
func CollapseRepeats(pages []memory.PageNum) []memory.PageNum {
	out := pages[:0:0]
	for i, p := range pages {
		if i == 0 || p != pages[i-1] {
			out = append(out, p)
		}
	}
	return out
}
