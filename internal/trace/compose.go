package trace

import (
	"ampom/internal/memory"
	"ampom/internal/prng"
	"ampom/internal/simtime"
)

// This file provides a small combinator library for describing page-level
// workloads: sequential sweeps, strided sweeps, random access, round-robin
// interleavings and concatenations. Workload models (e.g. the HPCC kernels)
// are composed from these primitives.
//
// Because sources are stateful one-shot iterators, anything that needs to
// be replayed (Repeat) works with Factory values — functions producing a
// fresh Source per iteration.

// Factory produces a fresh Source. Factories make composite workloads
// replayable even though an individual Source is consumed by iteration.
type Factory func() Source

// Sequential returns a factory sweeping pages [start, start+count) in
// ascending order, charging compute per page, with the given write flag.
func Sequential(start memory.PageNum, count int64, compute simtime.Duration, write bool) Factory {
	return Strided(start, count, 1, compute, write)
}

// Strided returns a factory touching count pages starting at start with the
// given page stride (which may be negative for descending sweeps).
func Strided(start memory.PageNum, count int64, stride int64, compute simtime.Duration, write bool) Factory {
	return func() Source {
		i := int64(0)
		return FuncSource(func() (Ref, bool) {
			if i >= count {
				return Ref{}, false
			}
			p := start + memory.PageNum(i*stride)
			i++
			return Ref{Page: p, Compute: compute, Write: write}, true
		})
	}
}

// RandomUniform returns a factory emitting count references uniformly
// distributed over pages [start, start+span), using its own deterministic
// generator seeded with seed.
func RandomUniform(start memory.PageNum, span int64, count int64, compute simtime.Duration, write bool, seed uint64) Factory {
	return func() Source {
		src := prng.New(seed)
		i := int64(0)
		return FuncSource(func() (Ref, bool) {
			if i >= count {
				return Ref{}, false
			}
			i++
			p := start + memory.PageNum(src.Uint64n(uint64(span)))
			return Ref{Page: p, Compute: compute, Write: write}, true
		})
	}
}

// Concat returns a factory running each sub-factory to exhaustion in order.
func Concat(parts ...Factory) Factory {
	return func() Source {
		var cur Source
		idx := 0
		return FuncSource(func() (Ref, bool) {
			for {
				if cur == nil {
					if idx >= len(parts) {
						return Ref{}, false
					}
					cur = parts[idx]()
					idx++
				}
				if r, ok := cur.Next(); ok {
					return r, true
				}
				cur = nil
			}
		})
	}
}

// Interleave returns a factory drawing one reference from each sub-source
// in round-robin order until all are exhausted. Lock-step array sweeps
// (STREAM's a[i] = b[i] + s·c[i]) are interleavings of sequential sweeps.
func Interleave(parts ...Factory) Factory {
	return func() Source {
		srcs := make([]Source, len(parts))
		for i, f := range parts {
			srcs[i] = f()
		}
		alive := len(srcs)
		i := 0
		return FuncSource(func() (Ref, bool) {
			for alive > 0 {
				s := srcs[i%len(srcs)]
				i++
				if s == nil {
					continue
				}
				if r, ok := s.Next(); ok {
					return r, true
				}
				srcs[(i-1)%len(srcs)] = nil
				alive--
			}
			return Ref{}, false
		})
	}
}

// Repeat returns a factory running the sub-factory n times back to back.
func Repeat(n int, part Factory) Factory {
	parts := make([]Factory, n)
	for i := range parts {
		parts[i] = part
	}
	return Concat(parts...)
}

// Permuted returns a factory touching every page of [start, start+count)
// exactly once in a deterministic pseudo-random order — a page-level
// bit-reversal-style scatter.
func Permuted(start memory.PageNum, count int64, compute simtime.Duration, write bool, seed uint64) Factory {
	return func() Source {
		src := prng.New(seed)
		perm := src.Perm(int(count))
		i := 0
		return FuncSource(func() (Ref, bool) {
			if i >= len(perm) {
				return Ref{}, false
			}
			p := start + memory.PageNum(perm[i])
			i++
			return Ref{Page: p, Compute: compute, Write: write}, true
		})
	}
}

// BlockPermuted returns a factory touching every page of
// [start, start+count) exactly once, visiting fixed-size blocks in a
// deterministic pseudo-random order but pages within a block sequentially.
// This is the page-level shape of cache-blocked permutations such as an
// FFT's bit-reversal transpose: globally scattered, locally sequential.
func BlockPermuted(start memory.PageNum, count, blockPages int64, compute simtime.Duration, write bool, seed uint64) Factory {
	if blockPages < 1 {
		blockPages = 1
	}
	nBlocks := (count + blockPages - 1) / blockPages
	return func() Source {
		src := prng.New(seed)
		order := src.Perm(int(nBlocks))
		bi, off := 0, int64(0)
		return FuncSource(func() (Ref, bool) {
			for bi < len(order) {
				base := int64(order[bi]) * blockPages
				if off >= blockPages || base+off >= count {
					bi++
					off = 0
					continue
				}
				p := start + memory.PageNum(base+off)
				off++
				return Ref{Page: p, Compute: compute, Write: write}, true
			}
			return Ref{}, false
		})
	}
}

// Limit returns a factory truncating the sub-factory to at most n
// references.
func Limit(n int64, part Factory) Factory {
	return func() Source {
		src := part()
		emitted := int64(0)
		return FuncSource(func() (Ref, bool) {
			if emitted >= n {
				return Ref{}, false
			}
			r, ok := src.Next()
			if !ok {
				return Ref{}, false
			}
			emitted++
			return r, true
		})
	}
}

// Count drains a fresh source from the factory and returns its length.
// Useful for sizing compute budgets; workload models should prefer
// analytical counts when available.
func Count(f Factory) int64 {
	src := f()
	var n int64
	for {
		if _, ok := src.Next(); !ok {
			return n
		}
		n++
	}
}
