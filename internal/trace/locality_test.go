package trace

import (
	"testing"
	"testing/quick"

	"ampom/internal/memory"
)

func pages(vs ...int64) []memory.PageNum {
	out := make([]memory.PageNum, len(vs))
	for i, v := range vs {
		out[i] = memory.PageNum(v)
	}
	return out
}

// TestStrideCountsPaperExample1 reproduces §3.1: "the access stream
// {1,99,2,45,3,78,4} contains three stride-2 references ... stride2 = 4
// because there are four pages (1,2,3,4) accessed in a stride-2 pattern."
func TestStrideCountsPaperExample1(t *testing.T) {
	counts := StrideCounts(pages(1, 99, 2, 45, 3, 78, 4), 4)
	if counts[2] != 4 {
		t.Fatalf("stride_2 = %d, want 4 (paper §3.1)", counts[2])
	}
	if counts[1] != 0 || counts[3] != 0 || counts[4] != 0 {
		t.Fatalf("unexpected stride counts: %v", counts)
	}
}

// TestSpatialScorePaperExample2 reproduces §3.2:
// "{10,99,11,34,12,85} only has one stride-2 reference stream {10,11,12}
// (3 pages), therefore stride2 = 3 ... and S = stride2/(6×2) = 0.25."
func TestSpatialScorePaperExample2(t *testing.T) {
	w := pages(10, 99, 11, 34, 12, 85)
	counts := StrideCounts(w, 4)
	if counts[2] != 3 {
		t.Fatalf("stride_2 = %d, want 3 (paper §3.2)", counts[2])
	}
	if got := SpatialScore(w, 6, 4); got != 0.25 {
		t.Fatalf("S = %v, want 0.25 (paper §3.2)", got)
	}
}

// TestSpatialScoreSequential reproduces §3.2: a purely sequential stream
// has S = 1.
func TestSpatialScoreSequential(t *testing.T) {
	w := make([]memory.PageNum, 20)
	for i := range w {
		w[i] = memory.PageNum(i + 100)
	}
	if got := SpatialScore(w, 20, 4); got != 1.0 {
		t.Fatalf("sequential S = %v, want 1 (paper §3.2)", got)
	}
}

func TestSpatialScoreRandomNearZero(t *testing.T) {
	w := pages(90001, 17, 55555, 1234, 777777, 42, 31337, 2718, 16180, 999,
		10007, 20011, 30013, 40009, 50021, 60013, 70001, 80021, 91, 123456)
	if got := SpatialScore(w, 20, 4); got != 0 {
		t.Fatalf("random S = %v, want 0", got)
	}
}

func TestSpatialScoreEdgeCases(t *testing.T) {
	if got := SpatialScore(nil, 20, 4); got != 0 {
		t.Fatalf("nil window S = %v", got)
	}
	if got := SpatialScore(pages(5), 20, 4); got != 0 {
		t.Fatalf("singleton window S = %v", got)
	}
	if got := SpatialScore(pages(1, 2), 0, 4); got != 0 {
		t.Fatalf("l=0 S = %v", got)
	}
}

func TestStrideCountsMinimumDistance(t *testing.T) {
	// Page 5 appears twice; its stride is the minimum forward distance to
	// page 6: from the second occurrence, d = 1. Together with the 90→91
	// link, pages {5,6,90,91} all participate at d = 1.
	counts := StrideCounts(pages(5, 90, 91, 5, 6), 4)
	if counts[1] != 4 {
		t.Fatalf("stride_1 = %d, want 4 (pages 5,6,90,91)", counts[1])
	}
	if counts[2] != 0 && counts[3] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestStrideCountsBeyondDMax(t *testing.T) {
	// 1 ... 2 at distance 5 exceeds dmax=4: no stride.
	counts := StrideCounts(pages(1, 90, 91, 92, 93, 2), 4)
	for d := 1; d <= 4; d++ {
		if d == 1 {
			// 90,91,92,93 chain at d=1: pages 90..93.
			if counts[1] != 4 {
				t.Fatalf("stride_1 = %d, want 4", counts[1])
			}
			continue
		}
		if counts[d] != 0 {
			t.Fatalf("stride_%d = %d, want 0", d, counts[d])
		}
	}
}

func TestScoreBoundedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		w := make([]memory.PageNum, len(raw))
		for i, r := range raw {
			w[i] = memory.PageNum(r % 32) // dense range → many strides
		}
		s := SpatialScore(CollapseRepeats(w), 20, 4)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseRepeats(t *testing.T) {
	got := CollapseRepeats(pages(1, 1, 2, 2, 2, 3, 1, 1))
	want := pages(1, 2, 3, 1)
	if len(got) != len(want) {
		t.Fatalf("collapse = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("collapse = %v, want %v", got, want)
		}
	}
	if out := CollapseRepeats(nil); len(out) != 0 {
		t.Fatal("collapse(nil) not empty")
	}
}

func TestSlidingSpatialScore(t *testing.T) {
	seq := make([]memory.PageNum, 200)
	for i := range seq {
		seq[i] = memory.PageNum(i)
	}
	if got := SlidingSpatialScore(seq, 20, 4); got < 0.9 {
		t.Fatalf("sliding sequential = %v, want ≈1", got)
	}
	short := pages(1, 2, 3)
	if got := SlidingSpatialScore(short, 20, 4); got <= 0 {
		t.Fatalf("short trace score = %v, want > 0", got)
	}
}

func TestTemporalScore(t *testing.T) {
	// Cycling over 4 pages with window 8: everything reused.
	var cyc []memory.PageNum
	for i := 0; i < 100; i++ {
		cyc = append(cyc, memory.PageNum(i%4))
	}
	if got := TemporalScore(cyc, 8); got != 1 {
		t.Fatalf("cyclic temporal = %v, want 1", got)
	}
	// Streaming: no page ever repeats.
	var str []memory.PageNum
	for i := 0; i < 100; i++ {
		str = append(str, memory.PageNum(i))
	}
	if got := TemporalScore(str, 8); got != 0 {
		t.Fatalf("streaming temporal = %v, want 0", got)
	}
	if got := TemporalScore(nil, 8); got != 0 {
		t.Fatalf("nil temporal = %v", got)
	}
	// Short trace fallback: repeats counted directly.
	if got := TemporalScore(pages(1, 1, 2), 8); got <= 0 {
		t.Fatalf("short-trace temporal = %v", got)
	}
}

func TestDistinctPages(t *testing.T) {
	if got := DistinctPages(pages(1, 2, 2, 3, 1)); got != 3 {
		t.Fatalf("distinct = %d", got)
	}
	if got := DistinctPages(nil); got != 0 {
		t.Fatalf("distinct(nil) = %d", got)
	}
}

func TestDedupeRecent(t *testing.T) {
	// Element-level alternation between two pages collapses to one entry
	// per page transition.
	raw := pages(1, 2, 1, 2, 1, 2, 3, 4, 3, 4)
	got := DedupeRecent(raw, 4)
	want := pages(1, 2, 3, 4)
	if len(got) != len(want) {
		t.Fatalf("dedupe = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupe = %v, want %v", got, want)
		}
	}
	// A page re-appearing beyond the window is kept.
	raw = pages(1, 2, 3, 4, 5, 1)
	got = DedupeRecent(raw, 4)
	if got[len(got)-1] != 1 {
		t.Fatalf("out-of-window revisit dropped: %v", got)
	}
	// Degenerate window clamps to 1 (only consecutive repeats removed).
	got = DedupeRecent(pages(7, 7, 8), 0)
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("k=0 dedupe = %v", got)
	}
	if out := DedupeRecent(nil, 4); len(out) != 0 {
		t.Fatal("dedupe(nil) not empty")
	}
}

// TestDedupeRecentProperty: output never contains a page within k of its
// previous occurrence, and preserves first-occurrence order.
func TestDedupeRecentProperty(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		in := make([]memory.PageNum, len(raw))
		for i, r := range raw {
			in[i] = memory.PageNum(r % 16)
		}
		out := DedupeRecent(in, k)
		for i, p := range out {
			lo := i - k
			if lo < 0 {
				lo = 0
			}
			for j := lo; j < i; j++ {
				if out[j] == p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
