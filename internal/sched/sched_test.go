package sched

import (
	"testing"

	"ampom/internal/simtime"
)

func TestPolicyString(t *testing.T) {
	if NoMigration.String() != "no-migration" || OpenMosixCost.String() != "openMosix" || AMPoMCost.String() != "AMPoM" {
		t.Fatal("legacy policy names wrong")
	}
	if NoMigration.Balancer().Name() != BaselineName {
		t.Fatal("legacy conversion broken")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Nodes != 8 || c.Jobs != 64 || c.CostThreshold != 1.25 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.NodeMemMB != 4*8*192 {
		t.Fatalf("node memory default = %d", c.NodeMemMB)
	}
}

func TestSimulationCompletes(t *testing.T) {
	for _, p := range All() {
		st := Simulate(Config{Jobs: 16, Nodes: 4}, p)
		if st.Policy != p.Name() {
			t.Fatalf("stats labelled %q, want %q", st.Policy, p.Name())
		}
		if st.Makespan <= 0 {
			t.Fatalf("%v: makespan %v", p.Name(), st.Makespan)
		}
		if st.MeanSlowdown < 1 {
			t.Fatalf("%v: slowdown %v < 1", p.Name(), st.MeanSlowdown)
		}
	}
}

// TestAMPoMEnablesAggressiveMigration is the §7 claim: with AMPoM's cheap
// migrations the same lifetime rule fires more often and the cluster
// balances better.
func TestAMPoMEnablesAggressiveMigration(t *testing.T) {
	none := Simulate(Config{}, NoMigrationPolicy)
	om := Simulate(Config{}, OpenMosixPolicy)
	am := Simulate(Config{}, AMPoMPolicy)

	if am.Migrations <= om.Migrations {
		t.Fatalf("AMPoM migrations %d not above openMosix's %d (aggressiveness lost)",
			am.Migrations, om.Migrations)
	}
	if am.MeanSlowdown >= none.MeanSlowdown {
		t.Fatalf("AMPoM slowdown %.2f not below no-migration %.2f", am.MeanSlowdown, none.MeanSlowdown)
	}
	if am.MeanSlowdown >= om.MeanSlowdown {
		t.Fatalf("AMPoM slowdown %.2f not below openMosix %.2f", am.MeanSlowdown, om.MeanSlowdown)
	}
	if am.Makespan >= none.Makespan {
		t.Fatalf("AMPoM makespan %v not below no-migration %v", am.Makespan, none.Makespan)
	}
}

func TestFreezeTimeCharged(t *testing.T) {
	om := Simulate(Config{}, OpenMosixPolicy)
	am := Simulate(Config{}, AMPoMPolicy)
	if om.Migrations > 0 && om.FrozenTotal <= 0 {
		t.Fatal("openMosix migrations charged no freeze time")
	}
	// AMPoM's freeze proper (excluding the working-set paging stalls, which
	// FrozenTotal also accumulates) is per-migration far cheaper.
	if om.Migrations > 0 && am.Migrations > 0 {
		perOM := float64(om.FrozenTotal) / float64(om.Migrations)
		perAM := float64(am.FrozenTotal-am.ExtraWork) / float64(am.Migrations)
		if perAM >= perOM/5 {
			t.Fatalf("AMPoM per-migration freeze %.3fs not ≪ openMosix %.3fs",
				perAM/float64(simtime.Second), perOM/float64(simtime.Second))
		}
	}
	if am.ExtraWork <= 0 {
		t.Fatal("AMPoM migrations must charge remote-paging work")
	}
}

func TestNoMigrationPolicyIsInert(t *testing.T) {
	st := Simulate(Config{}, NoMigrationPolicy)
	if st.Migrations != 0 || st.FrozenTotal != 0 || st.ExtraWork != 0 {
		t.Fatalf("no-migration policy acted: %+v", st)
	}
}

func TestDeterministic(t *testing.T) {
	for _, p := range All() {
		a := Simulate(Config{Seed: 5}, p)
		b := Simulate(Config{Seed: 5}, p)
		if a != b {
			t.Fatalf("%v: same seed diverged: %+v vs %+v", p.Name(), a, b)
		}
	}
	a := Simulate(Config{Seed: 5}, AMPoMPolicy)
	c := Simulate(Config{Seed: 6}, AMPoMPolicy)
	if a.Makespan == c.Makespan && a.Migrations == c.Migrations {
		t.Fatal("different seeds produced identical studies")
	}
}

func TestBalancedClusterMigratesLittle(t *testing.T) {
	// With no skew the cluster starts balanced; few migrations should fire.
	skewed := Simulate(Config{}, AMPoMPolicy)
	flat := Simulate(Config{Skew: 1e-9}, AMPoMPolicy)
	if flat.Migrations >= skewed.Migrations {
		t.Fatalf("balanced start migrated %d, skewed %d", flat.Migrations, skewed.Migrations)
	}
}

func TestCompareDefaultsToRegistry(t *testing.T) {
	res := Compare(Config{Jobs: 16, Nodes: 4})
	names := Names()
	if len(res) != len(names) {
		t.Fatalf("Compare returned %d stats for %d registered policies", len(res), len(names))
	}
	for i, st := range res {
		if st.Policy != names[i] {
			t.Fatalf("row %d is %q, want registry order %q", i, st.Policy, names[i])
		}
	}
}
