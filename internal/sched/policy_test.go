package sched

import (
	"math"
	"sort"
	"testing"

	"ampom/internal/prng"
	"ampom/internal/simtime"
)

func TestRegistrySortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("registry names not sorted: %v", names)
	}
	for _, want := range []string{NameNoMigration, NameOpenMosix, NameAMPoM, NameLoadVector, NameMemUsher, NameQueueGossip} {
		p, ok := Lookup(want)
		if !ok {
			t.Fatalf("built-in policy %q not registered", want)
		}
		if p.Name() != want {
			t.Fatalf("policy registered under %q names itself %q", want, p.Name())
		}
	}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All returned %d policies for %d names", len(all), len(names))
	}
	for i, p := range all {
		if p.Name() != names[i] {
			t.Fatalf("All()[%d] = %q, want %q", i, p.Name(), names[i])
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	if err := Register(AMPoMPolicy); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register(badName{}); err == nil {
		t.Fatal("empty-name registration accepted")
	}
}

type badName struct{ noMigration }

func (badName) Name() string { return "" }

func TestByNames(t *testing.T) {
	pols, err := ByNames([]string{NameAMPoM, NameNoMigration})
	if err != nil {
		t.Fatal(err)
	}
	if pols[0].Name() != NameAMPoM || pols[1].Name() != NameNoMigration {
		t.Fatal("ByNames lost input order")
	}
	if _, err := ByNames([]string{"bogus"}); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// view builds a small test cluster view.
func view(loads []int) View {
	v := View{
		Nodes:         make([]NodeView, len(loads)),
		BandwidthBps:  11.36e6,
		CostThreshold: 1.25,
	}
	for i, n := range loads {
		v.Nodes[i] = NodeView{Procs: n, CPUScale: 1, Load: float64(n), QueueLen: n, CapacityMB: 1024}
	}
	return v
}

func TestCostModelsOrdered(t *testing.T) {
	omF, omE := OpenMosixPolicy.MigrationCost(192, 0.5, 11.36e6)
	amF, amE := AMPoMPolicy.MigrationCost(192, 0.5, 11.36e6)
	if amF >= omF/5 {
		t.Fatalf("lightweight freeze %v not ≪ full-copy %v", amF, omF)
	}
	if omE != 0 {
		t.Fatal("full copy owes no post-resume work")
	}
	if amE <= 0 {
		t.Fatal("lightweight must charge remote paging")
	}
	if f, e := NoMigrationPolicy.MigrationCost(192, 0.5, 11.36e6); f != 0 || e != 0 {
		t.Fatal("no-migration charges a cost")
	}
}

func TestClassicPoliciesTargetLeastLoaded(t *testing.T) {
	v := view([]int{9, 1, 4, 0})
	p := ProcView{Node: 0, Remaining: 30 * simtime.Second, FootprintMB: 64, WorkingSetFrac: 0.5}
	dest, ok := AMPoMPolicy.ShouldMigrate(v, p)
	if !ok || dest != 3 {
		t.Fatalf("AMPoM chose (%d, %v), want node 3", dest, ok)
	}
	// A short job fails the cost-benefit rule under the expensive model.
	short := ProcView{Node: 0, Remaining: 10 * simtime.Millisecond, FootprintMB: 512, WorkingSetFrac: 0.5}
	if _, ok := OpenMosixPolicy.ShouldMigrate(v, short); ok {
		t.Fatal("openMosix migrated a job far cheaper to finish in place")
	}
	// No gap, no migration.
	if _, ok := AMPoMPolicy.ShouldMigrate(view([]int{2, 2, 2}), p); ok {
		t.Fatal("migrated on a balanced cluster")
	}
}

func TestLoadVectorSeesOnlyASample(t *testing.T) {
	// With a deterministic stream, the sampled vector decides; the policy
	// must stay inside the view's node range and beat the source's load.
	v := view([]int{12, 0, 0, 0, 0, 0, 0, 0})
	v.Rand = prng.New(3)
	p := ProcView{Node: 0, Remaining: 30 * simtime.Second, FootprintMB: 64, WorkingSetFrac: 0.5}
	migrated := 0
	for i := 0; i < 50; i++ {
		dest, ok := LoadVectorPolicy.ShouldMigrate(v, p)
		if !ok {
			continue
		}
		migrated++
		if dest <= 0 || dest >= len(v.Nodes) {
			t.Fatalf("destination %d out of range", dest)
		}
	}
	if migrated == 0 {
		t.Fatal("load-vector policy never migrated off a 12-proc node")
	}
	// Without a stream it degenerates to full knowledge.
	v.Rand = nil
	if dest, ok := LoadVectorPolicy.ShouldMigrate(v, p); !ok || dest != 1 {
		t.Fatalf("nil-stream fallback chose (%d, %v), want node 1", dest, ok)
	}
}

func TestQueueGossipTargetsShortQueues(t *testing.T) {
	// Full knowledge (nil stream): the shortest scaled queue wins.
	v := view([]int{12, 3, 0, 5})
	p := ProcView{Node: 0, Remaining: 30 * simtime.Second, FootprintMB: 64, WorkingSetFrac: 0.5}
	dest, ok := QueueGossipPolicy.ShouldMigrate(v, p)
	if !ok || dest != 2 {
		t.Fatalf("full-knowledge queue-gossip chose (%d, %v), want node 2", dest, ok)
	}
	// Sampled: stays in range and still evacuates the long queue.
	v.Rand = prng.New(5)
	migrated := 0
	for i := 0; i < 50; i++ {
		dest, ok := QueueGossipPolicy.ShouldMigrate(v, p)
		if !ok {
			continue
		}
		migrated++
		if dest <= 0 || dest >= len(v.Nodes) {
			t.Fatalf("destination %d out of range", dest)
		}
	}
	if migrated == 0 {
		t.Fatal("queue-gossip never migrated off a 12-proc node")
	}
	// No gap once the candidate joins the destination: hold.
	flat := view([]int{2, 1, 1, 1})
	if _, ok := QueueGossipPolicy.ShouldMigrate(flat, p); ok {
		t.Fatal("migrated with no post-join queue gap")
	}
}

func TestQueueGossipSkipsUnknownAndPrefersFresh(t *testing.T) {
	p := ProcView{Node: 0, Remaining: 30 * simtime.Second, FootprintMB: 64, WorkingSetFrac: 0.5}
	// Unknown rows are never targeted, even with the shortest queue.
	v := view([]int{12, 0, 4})
	v.Nodes[1].Unknown = true
	dest, ok := QueueGossipPolicy.ShouldMigrate(v, p)
	if !ok || dest != 2 {
		t.Fatalf("chose (%d, %v) with node 1 unknown, want node 2", dest, ok)
	}
	// Everything unknown: hold.
	all := view([]int{12, 0, 0})
	all.Nodes[1].Unknown = true
	all.Nodes[2].Unknown = true
	if _, ok := QueueGossipPolicy.ShouldMigrate(all, p); ok {
		t.Fatal("migrated with every peer unknown")
	}
	// Equal queues: the fresher entry wins.
	tie := view([]int{12, 1, 1})
	tie.Nodes[1].InfoAge = 8 * simtime.Second
	tie.Nodes[2].InfoAge = simtime.Second
	dest, ok = QueueGossipPolicy.ShouldMigrate(tie, p)
	if !ok || dest != 2 {
		t.Fatalf("chose (%d, %v) on an age tie-break, want the fresher node 2", dest, ok)
	}
}

func TestSampleLenOverridesBuiltins(t *testing.T) {
	// SampleLen >= n-1 forces full knowledge on both sampling policies:
	// with a stream that would otherwise sample, the answer matches the
	// nil-stream (full-knowledge) choice.
	v := view([]int{12, 0, 4, 4, 4, 4, 4, 4})
	p := ProcView{Node: 0, Remaining: 30 * simtime.Second, FootprintMB: 64, WorkingSetFrac: 0.5}
	for _, pol := range []BalancerPolicy{LoadVectorPolicy, QueueGossipPolicy} {
		want, wantOK := pol.ShouldMigrate(v, p)
		sampled := v
		sampled.Rand = prng.New(11)
		sampled.SampleLen = len(v.Nodes)
		got, gotOK := pol.ShouldMigrate(sampled, p)
		if got != want || gotOK != wantOK {
			t.Fatalf("%s: SampleLen=n gave (%d, %v), full knowledge gives (%d, %v)",
				pol.Name(), got, gotOK, want, wantOK)
		}
	}
	// SampleLen=1 with a stream draws exactly one candidate per decision —
	// decisions must stay in range and sometimes hold (partial knowledge).
	one := v
	one.Rand = prng.New(11)
	one.SampleLen = 1
	held := false
	for i := 0; i < 40; i++ {
		dest, ok := QueueGossipPolicy.ShouldMigrate(one, p)
		if !ok {
			held = true
			continue
		}
		if dest <= 0 || dest >= len(one.Nodes) {
			t.Fatalf("destination %d out of range", dest)
		}
	}
	if !held {
		t.Fatal("1-entry sample never held back — it is not sampling")
	}
}

func TestMemUsherMovesOnPressureOnly(t *testing.T) {
	v := view([]int{4, 4, 4})
	p := ProcView{Node: 0, Remaining: 10 * simtime.Second, FootprintMB: 128, WorkingSetFrac: 0.5}
	// No pressure: inert, whatever the CPU loads say.
	if _, ok := MemUsherPolicy.ShouldMigrate(v, p); ok {
		t.Fatal("ushered without memory pressure")
	}
	// Source past the high-water mark: usher to the freest node with room.
	v.Nodes[0].UsedMemMB = 1000
	v.Nodes[1].UsedMemMB = 500
	v.Nodes[2].UsedMemMB = 100
	dest, ok := MemUsherPolicy.ShouldMigrate(v, p)
	if !ok || dest != 2 {
		t.Fatalf("usher chose (%d, %v), want node 2", dest, ok)
	}
	// No destination under the low-water mark: hold.
	v.Nodes[1].UsedMemMB = 900
	v.Nodes[2].UsedMemMB = 900
	if _, ok := MemUsherPolicy.ShouldMigrate(v, p); ok {
		t.Fatal("ushered onto an already-pressured destination")
	}
}

// TestMemUsherSkipsUnknownRows locks the partial-view contract: gossip
// views hand the usher Unknown rows that still carry the cluster-wide
// capacity (so free = capacity, the most tempting destination on the
// board) but no usage sample. Ushering there could be exactly the paging
// disaster the policy exists to avoid, so Unknown rows must never win.
func TestMemUsherSkipsUnknownRows(t *testing.T) {
	v := view([]int{4, 4, 4})
	p := ProcView{Node: 0, Remaining: 10 * simtime.Second, FootprintMB: 128, WorkingSetFrac: 0.5}
	v.Nodes[0].UsedMemMB = 1000
	// Node 1: unknown, apparently empty. Node 2: known, partly full.
	v.Nodes[1] = NodeView{CPUScale: 1, Load: math.Inf(1), CapacityMB: 1024, Unknown: true}
	v.Nodes[2].UsedMemMB = 300
	dest, ok := MemUsherPolicy.ShouldMigrate(v, p)
	if !ok || dest != 2 {
		t.Fatalf("usher chose (%d, %v), want the known node 2 over the unknown 1", dest, ok)
	}
	// Every destination unknown: hold, whatever the pressure.
	v.Nodes[2] = NodeView{CPUScale: 1, Load: math.Inf(1), CapacityMB: 1024, Unknown: true}
	if _, ok := MemUsherPolicy.ShouldMigrate(v, p); ok {
		t.Fatal("ushered onto a node whose memory pressure is unknown")
	}
}

func TestFreezePayloadSizes(t *testing.T) {
	s, ok := OpenMosixPolicy.(FreezePayloadSizer)
	if !ok {
		t.Fatal("openMosix must size its full-copy freeze payload")
	}
	if got := s.FreezePayloadBytes(100); got < 100e6 {
		t.Fatalf("full-copy payload %d below the footprint", got)
	}
	if _, ok := AMPoMPolicy.(FreezePayloadSizer); ok {
		t.Fatal("AMPoM should use the default lightweight payload")
	}
}

func TestViewHelpersDeterministic(t *testing.T) {
	v := view([]int{3, 5, 5, 1, 1})
	if v.LeastLoaded() != 3 {
		t.Fatalf("least loaded = %d, want 3 (lowest index on ties)", v.LeastLoaded())
	}
	order := v.NodesByLoad()
	want := []int{1, 2, 0, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("NodesByLoad = %v, want %v", order, want)
		}
	}
}
