// Balancer policies as an open extension point. The paper's §7 outlook
// frames load balancing as a *family* of cost models riding on the
// migration substrate; this file turns the closed three-policy enum into a
// BalancerPolicy interface plus a registry, so new policies (the openMosix
// probabilistic load vectors and memory-pressure ushering of the related
// HPC-farm literature, queue-length gossip, user-defined models) plug in
// without touching the simulators that drive them.
//
// A policy is a stateless, immutable value: every input it decides on
// arrives through the View, including the PRNG stream probabilistic
// policies draw from. That makes one registered instance safe to share
// across the campaign engine's concurrent scenario workers.
package sched

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ampom/internal/memory"
	"ampom/internal/prng"
	"ampom/internal/simtime"
)

// NodeView is one node as the balancer sees it at a decision point.
type NodeView struct {
	// Procs is the number of live processes resident on the node.
	Procs int
	// CPUScale is the node's CPU speed relative to the reference CPU.
	CPUScale float64
	// Load is the CPU-scaled load the balancer compares: Procs / CPUScale.
	Load float64
	// UsedMemMB sums the footprints of the processes resident on the node.
	UsedMemMB int64
	// CapacityMB is the node's physical memory.
	CapacityMB int64
	// QueueLen is the node's runnable-queue length as disseminated to the
	// deciding node: gossip-aged on switched fabrics, exact (equal to
	// Procs) on the legacy star and in the §7 study.
	QueueLen int
	// InfoAge is how stale this row's dissemination entry is. Zero means
	// ground truth (or a fresh gossip entry).
	InfoAge simtime.Duration
	// Unknown marks a row the deciding node has no dissemination entry
	// for yet — gossip has not reached it. Policies must not target
	// unknown rows; the zero value (known) keeps hand-built views working.
	Unknown bool
}

// ProcView is the migration candidate a policy is asked about.
type ProcView struct {
	// ID is the process identifier (stable across the run).
	ID int
	// Node is the process's current node.
	Node int
	// Remaining is the candidate's estimated remaining service demand.
	Remaining simtime.Duration
	// FootprintMB is the process footprint.
	FootprintMB int64
	// WorkingSetFrac is the fraction of the footprint the process touches
	// after migrating (§5.6).
	WorkingSetFrac float64
}

// View is everything a policy sees at one decision point. It is rebuilt by
// the driving simulator before every decision, so policies stay stateless.
type View struct {
	// Nodes holds every node's current state, indexed by node id.
	//
	// The slice is on loan for the duration of one ShouldMigrate call: the
	// drivers reuse its backing storage between hand-offs (and, with the
	// incremental scenario view, refresh only the rows that changed), so a
	// policy must neither retain Nodes past the call nor mutate its rows.
	// Drivers defend the *next* round by rewriting or re-copying every row
	// they hand out, but a policy that breaks the contract still corrupts
	// its own remaining decisions of the current round.
	Nodes []NodeView
	// BandwidthBps is the monitoring daemons' conservative estimate of the
	// interconnect bandwidth available to a migration.
	BandwidthBps float64
	// CostThreshold is the cost-benefit safety factor of the run.
	CostThreshold float64
	// Rand is the run's policy-decision PRNG stream. Probabilistic policies
	// draw from it; deterministic policies ignore it. May be nil, in which
	// case probabilistic policies fall back to full knowledge.
	Rand *prng.Source
	// SampleLen, when positive, overrides the sample size l of the
	// sampling policies (load-vector, queue-gossip). Zero keeps each
	// policy's built-in default. Scenario runs populate it from
	// Spec.LoadVectorLen.
	SampleLen int

	// least memoises LeastLoaded for drivers that hand the same immutable
	// rows to several candidate decisions in a row (CacheLeastLoaded). Nil
	// — the zero value every hand-built view has — recomputes per call.
	least *int
}

// CacheLeastLoaded installs (and resets) a memo cell for LeastLoaded.
// Drivers that guarantee the view's rows stay unchanged for the lifetime of
// one hand-off call it at every hand-off, so policies that consult
// LeastLoaded once per candidate pay the O(nodes) scan once per view
// instead. The cell is driver-owned storage; resetting it at each hand-off
// is what keeps the memo coherent when the backing rows are refreshed.
func (v *View) CacheLeastLoaded(cell *int) {
	*cell = -1
	v.least = cell
}

// BalancerPolicy decides when and where the load balancer migrates. The
// three methods are the whole contract: a name (the registry key and report
// label), the migration cost model the balancer charges, and the decision
// itself.
type BalancerPolicy interface {
	// Name is the registry key. Reports key their per-policy rows by it.
	Name() string
	// MigrationCost returns the freeze duration and the post-resume
	// remote-paging work that migrating a process of footprintMB costs, at
	// bandwidthBps of interconnect bandwidth, when wsFrac of the footprint
	// is touched after the move. A zero extra means the mechanism moves
	// everything at freeze time (no remote paging after resume).
	MigrationCost(footprintMB int64, wsFrac, bandwidthBps float64) (freeze, extra simtime.Duration)
	// ShouldMigrate decides whether proc should move, returning the
	// destination node. The driver offers candidates from the most loaded
	// nodes first, longest remaining demand first. The view's Nodes slice
	// is on loan for this call only — policies must not retain or mutate
	// it (see View.Nodes).
	ShouldMigrate(view View, proc ProcView) (dest int, ok bool)
}

// FreezePayloadSizer is an optional BalancerPolicy extension: policies
// whose mechanism ships a non-default freeze-time payload implement it so
// the scenario engine's network model carries the right byte count. The
// default (for policies that do not implement it) is AMPoM's lightweight
// payload: three pages plus the 6 B/page MPT.
type FreezePayloadSizer interface {
	// FreezePayloadBytes is the freeze-time network payload, excluding the
	// PCB/register state every mechanism ships.
	FreezePayloadBytes(footprintMB int64) int64
}

// RemotePager is an optional BalancerPolicy extension: policies state
// explicitly whether their mechanism remote-pages the working set after
// resume (the lightweight substrate — MPT install, post-resume stream,
// prefetch census) or moves everything at freeze time. Policies that do
// not implement it are classified by their cost model: a non-zero extra
// from MigrationCost means the lightweight substrate. Implement this when
// the cost model's extra can legitimately be zero in some regimes even
// though the mechanism still remote-pages (or vice versa).
type RemotePager interface {
	// RemotePages reports whether migrants page their working set in from
	// the origin after resuming.
	RemotePages() bool
}

// The built-in policy names, in registry-sorted order.
const (
	NameAMPoM       = "AMPoM"
	NameLoadVector  = "load-vector"
	NameMemUsher    = "mem-usher"
	NameNoMigration = "no-migration"
	NameOpenMosix   = "openMosix"
	NameQueueGossip = "queue-gossip"
)

// BaselineName is the policy every report's slowdown ratios divide by.
const BaselineName = NameNoMigration

// footprintBytesAndPages converts a footprint in MB.
func footprintBytesAndPages(footprintMB int64) (bytes float64, pages float64) {
	bytes = float64(footprintMB) * 1e6
	return bytes, bytes / float64(memory.PageSize)
}

// FullCopyCost is the openMosix cost model: every dirty page moves during
// the freeze, so the process stalls for footprint/bandwidth (plus the
// 65 ms protocol base cost) and owes nothing afterwards.
func FullCopyCost(footprintMB int64, bandwidthBps float64) (freeze, extra simtime.Duration) {
	bytes, _ := footprintBytesAndPages(footprintMB)
	return simtime.FromSeconds(bytes/bandwidthBps) + 65*simtime.Millisecond, 0
}

// LightweightCost is the AMPoM cost model: three pages plus the 6 B/page
// MPT move at freeze, and the working set is remote-paged during execution
// as extra work (the Figure 6 finding that prefetching amortises round
// trips but transfer time adds to compute).
func LightweightCost(footprintMB int64, wsFrac, bandwidthBps float64) (freeze, extra simtime.Duration) {
	bytes, pages := footprintBytesAndPages(footprintMB)
	mptBytes := pages * memory.PTEntrySize
	freeze = simtime.FromSeconds(mptBytes/bandwidthBps) +
		simtime.Duration(pages*3)*simtime.Microsecond + 65*simtime.Millisecond
	extra = simtime.FromSeconds(bytes * wsFrac / bandwidthBps)
	return freeze, extra
}

// MaxCandidates bounds how many processes per node a driving simulator
// offers the policy each balancing round, longest remaining demand first.
const MaxCandidates = 4

// TopCandidates selects up to MaxCandidates eligible items with the
// largest remaining demand, earliest-input-first on ties — the shared
// candidate-selection rule of the sched study and the scenario engine
// (callers iterate their processes in ascending id order).
func TopCandidates[T any](items []T, eligible func(T) bool, remaining func(T) simtime.Duration) []T {
	return TopCandidatesInto(nil, items, eligible, remaining)
}

// TopCandidatesInto is TopCandidates appending into buf[:0], so hot-path
// callers (one selection per node per balance round) can reuse one scratch
// slice instead of allocating per call.
func TopCandidatesInto[T any](buf []T, items []T, eligible func(T) bool, remaining func(T) simtime.Duration) []T {
	top := buf[:0]
	for _, it := range items {
		if !eligible(it) {
			continue
		}
		at := len(top)
		for at > 0 && remaining(top[at-1]) < remaining(it) {
			at--
		}
		if at >= MaxCandidates {
			continue
		}
		var zero T
		top = append(top, zero)
		copy(top[at+1:], top[at:])
		top[at] = it
		if len(top) > MaxCandidates {
			top = top[:MaxCandidates]
		}
	}
	return top
}

// LeastLoaded returns the index of the least loaded node (lowest index on
// ties).
func (v View) LeastLoaded() int {
	if v.least != nil && *v.least >= 0 {
		return *v.least
	}
	best := 0
	for i, n := range v.Nodes {
		if n.Load < v.Nodes[best].Load {
			best = i
		}
	}
	if v.least != nil {
		*v.least = best
	}
	return best
}

// NodesByLoad returns the node indices sorted by descending load (lowest
// index first on ties) — the order the drivers offer source nodes in.
func (v View) NodesByLoad() []int {
	order := make([]int, len(v.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return v.Nodes[order[a]].Load > v.Nodes[order[b]].Load
	})
	return order
}

// Clears applies the cost-benefit rule of Harchol-Balter & Downey (the
// paper's [10]): proc migrates to dest only when its estimated completion
// staying put (processor sharing on its node) beats migrating (freeze,
// remote-paging stalls, sharing on dest) by the view's safety factor.
func (v View) Clears(p ProcView, dest int, freeze, extra simtime.Duration) bool {
	src, dst := v.Nodes[p.Node], v.Nodes[dest]
	stay := float64(p.Remaining) * float64(src.Procs) / src.CPUScale
	move := float64(freeze+extra) + float64(p.Remaining)*float64(dst.Procs+1)/dst.CPUScale
	return stay >= v.CostThreshold*move
}

// noMigration is the baseline: it never migrates and charges nothing.
type noMigration struct{}

func (noMigration) Name() string { return NameNoMigration }

func (noMigration) MigrationCost(int64, float64, float64) (simtime.Duration, simtime.Duration) {
	return 0, 0
}

func (noMigration) ShouldMigrate(View, ProcView) (int, bool) { return 0, false }

// openMosix is the paper's baseline mechanism under the §7 cost-benefit
// rule: the full-address-space freeze makes most candidate moves fail the
// rule, so the balancer holds back.
type openMosix struct{}

func (openMosix) Name() string { return NameOpenMosix }

func (openMosix) MigrationCost(footprintMB int64, _, bandwidthBps float64) (simtime.Duration, simtime.Duration) {
	return FullCopyCost(footprintMB, bandwidthBps)
}

func (openMosix) FreezePayloadBytes(footprintMB int64) int64 {
	_, pages := footprintBytesAndPages(footprintMB)
	// Every page plus per-page framing.
	return int64(pages) * (memory.PageSize + 64)
}

func (openMosix) RemotePages() bool { return false }

func (p openMosix) ShouldMigrate(v View, proc ProcView) (int, bool) {
	freeze, extra := p.MigrationCost(proc.FootprintMB, proc.WorkingSetFrac, v.BandwidthBps)
	return classicTarget(v, proc, freeze, extra)
}

// ampom is the §7 study's headline policy: the lightweight freeze makes far
// more candidate moves clear the same rule — the paper's "more aggressive
// migrations".
type ampom struct{}

func (ampom) Name() string { return NameAMPoM }

func (ampom) MigrationCost(footprintMB int64, wsFrac, bandwidthBps float64) (simtime.Duration, simtime.Duration) {
	return LightweightCost(footprintMB, wsFrac, bandwidthBps)
}

func (p ampom) ShouldMigrate(v View, proc ProcView) (int, bool) {
	freeze, extra := p.MigrationCost(proc.FootprintMB, proc.WorkingSetFrac, v.BandwidthBps)
	return classicTarget(v, proc, freeze, extra)
}

// classicTarget is the shared decision core of the cost-model policies:
// target the globally least loaded node, require a real load gap, and
// apply the cost-benefit rule.
func classicTarget(v View, proc ProcView, freeze, extra simtime.Duration) (int, bool) {
	dest := v.LeastLoaded()
	if dest == proc.Node || v.Nodes[proc.Node].Load <= v.Nodes[dest].Load {
		return 0, false
	}
	if !v.Clears(proc, dest, freeze, extra) {
		return 0, false
	}
	return dest, true
}

// loadVector models openMosix's probabilistic load-vector dissemination:
// each node gossips its load to a few random peers per tick, so a balancer
// decides from an l-entry random sample of the cluster rather than global
// knowledge. The policy draws that sample from the view's PRNG stream,
// targets the least loaded node *it happens to know about*, and charges the
// lightweight cost model (it rides the AMPoM substrate).
type loadVector struct {
	// vectorLen is l, the number of peer loads in the gossiped vector.
	vectorLen int
}

func (loadVector) Name() string { return NameLoadVector }

func (loadVector) MigrationCost(footprintMB int64, wsFrac, bandwidthBps float64) (simtime.Duration, simtime.Duration) {
	return LightweightCost(footprintMB, wsFrac, bandwidthBps)
}

func (p loadVector) ShouldMigrate(v View, proc ProcView) (int, bool) {
	n := len(v.Nodes)
	l := p.vectorLen
	if v.SampleLen > 0 {
		l = v.SampleLen
	}
	dest, know := -1, false
	if v.Rand == nil || l >= n-1 {
		// Full knowledge degenerates to the classic target.
		if d := v.LeastLoaded(); d != proc.Node {
			dest, know = d, true
		}
	} else {
		// Draw the l peers whose loads reached this node's vector. Peers can
		// repeat (gossip is redundant); the sample is still deterministic per
		// run because the stream is seeded from (scenario seed, policy name).
		for i := 0; i < l; i++ {
			c := v.Rand.Intn(n)
			if c == proc.Node || v.Nodes[c].Unknown {
				continue
			}
			if !know || v.Nodes[c].Load < v.Nodes[dest].Load ||
				(v.Nodes[c].Load == v.Nodes[dest].Load && c < dest) {
				dest, know = c, true
			}
		}
	}
	if !know || v.Nodes[proc.Node].Load <= v.Nodes[dest].Load {
		return 0, false
	}
	freeze, extra := LightweightCost(proc.FootprintMB, proc.WorkingSetFrac, v.BandwidthBps)
	if !v.Clears(proc, dest, freeze, extra) {
		return 0, false
	}
	return dest, true
}

// memUsher models openMosix's memory ushering: when a node's resident
// footprints push past the high-water fraction of its physical memory, the
// balancer evacuates processes to the node with the most free memory —
// regardless of CPU load, because paging to disk costs more than any
// imbalance. It ships on the lightweight substrate.
type memUsher struct {
	// highWater is the used-memory fraction that triggers ushering;
	// lowWater bounds how full a destination may get.
	highWater, lowWater float64
}

func (memUsher) Name() string { return NameMemUsher }

func (memUsher) MigrationCost(footprintMB int64, wsFrac, bandwidthBps float64) (simtime.Duration, simtime.Duration) {
	return LightweightCost(footprintMB, wsFrac, bandwidthBps)
}

func (p memUsher) ShouldMigrate(v View, proc ProcView) (int, bool) {
	src := v.Nodes[proc.Node]
	if src.CapacityMB <= 0 ||
		float64(src.UsedMemMB) < p.highWater*float64(src.CapacityMB) {
		return 0, false
	}
	best, bestFree := -1, int64(0)
	for i, n := range v.Nodes {
		// Unknown rows carry the cluster-configured capacity but no usage
		// sample — ushering onto a node whose pressure is unknown could be
		// exactly the paging disaster the policy exists to avoid.
		if i == proc.Node || n.Unknown || n.CapacityMB <= 0 {
			continue
		}
		if float64(n.UsedMemMB+proc.FootprintMB) > p.lowWater*float64(n.CapacityMB) {
			continue
		}
		if free := n.CapacityMB - n.UsedMemMB; free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// queueGossip consumes the gossip-aged queue lengths the decentralised
// infod dissemination carries (NodeView.QueueLen/InfoAge): it samples l
// known peers from the deciding node's vector, targets the shortest
// CPU-scaled queue (freshest entry on ties), requires a real queue gap
// even after the candidate lands, and applies the cost-benefit rule on
// the lightweight substrate. On a fabric where entries age with topology
// distance, the policy's picture of far racks lags — the price of
// decentralisation the gossip literature trades for scalability.
type queueGossip struct {
	// sample is l, how many vector entries one decision inspects.
	sample int
}

func (queueGossip) Name() string { return NameQueueGossip }

func (queueGossip) MigrationCost(footprintMB int64, wsFrac, bandwidthBps float64) (simtime.Duration, simtime.Duration) {
	return LightweightCost(footprintMB, wsFrac, bandwidthBps)
}

func (p queueGossip) ShouldMigrate(v View, proc ProcView) (int, bool) {
	n := len(v.Nodes)
	l := p.sample
	if v.SampleLen > 0 {
		l = v.SampleLen
	}
	scaledQ := func(c int, extra int) float64 {
		return float64(v.Nodes[c].QueueLen+extra) / v.Nodes[c].CPUScale
	}
	dest, know := -1, false
	consider := func(c int) {
		if c == proc.Node || v.Nodes[c].Unknown {
			return
		}
		if !know || scaledQ(c, 0) < scaledQ(dest, 0) ||
			(scaledQ(c, 0) == scaledQ(dest, 0) &&
				(v.Nodes[c].InfoAge < v.Nodes[dest].InfoAge ||
					(v.Nodes[c].InfoAge == v.Nodes[dest].InfoAge && c < dest))) {
			dest, know = c, true
		}
	}
	if v.Rand == nil || l >= n-1 {
		for c := range v.Nodes {
			consider(c)
		}
	} else {
		for i := 0; i < l; i++ {
			consider(v.Rand.Intn(n))
		}
	}
	// The gap must survive the candidate joining the destination queue.
	if !know || scaledQ(proc.Node, 0) <= scaledQ(dest, 1) {
		return 0, false
	}
	freeze, extra := LightweightCost(proc.FootprintMB, proc.WorkingSetFrac, v.BandwidthBps)
	if !v.Clears(proc, dest, freeze, extra) {
		return 0, false
	}
	return dest, true
}

// The built-in policy instances, usable directly without a registry lookup.
var (
	NoMigrationPolicy BalancerPolicy = noMigration{}
	OpenMosixPolicy   BalancerPolicy = openMosix{}
	AMPoMPolicy       BalancerPolicy = ampom{}
	LoadVectorPolicy  BalancerPolicy = loadVector{vectorLen: 3}
	MemUsherPolicy    BalancerPolicy = memUsher{highWater: 0.85, lowWater: 0.6}
	QueueGossipPolicy BalancerPolicy = queueGossip{sample: 8}
)

// The registry. Policies are keyed by Name(); enumeration is always in
// sorted-name order, so every report and fingerprint that iterates the
// registry is deterministic.
var (
	regMu    sync.RWMutex
	registry = map[string]BalancerPolicy{}
)

func init() {
	for _, p := range []BalancerPolicy{
		NoMigrationPolicy, OpenMosixPolicy, AMPoMPolicy, LoadVectorPolicy, MemUsherPolicy,
		QueueGossipPolicy,
	} {
		MustRegister(p)
	}
}

// Register adds a policy to the registry. It fails on an empty name or a
// name already taken.
func Register(p BalancerPolicy) error {
	name := p.Name()
	if name == "" {
		return fmt.Errorf("sched: policy with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("sched: policy %q already registered", name)
	}
	registry[name] = p
	return nil
}

// MustRegister is Register, panicking on failure — for package init blocks.
func MustRegister(p BalancerPolicy) {
	if err := Register(p); err != nil {
		panic(err)
	}
}

// Lookup returns the policy registered under name.
func Lookup(name string) (BalancerPolicy, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names returns every registered policy name, sorted — the canonical
// iteration order of reports and fingerprints.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// All returns every registered policy in sorted-name order.
func All() []BalancerPolicy {
	names := Names()
	out := make([]BalancerPolicy, len(names))
	for i, n := range names {
		out[i], _ = Lookup(n)
	}
	return out
}

// ByNames resolves names to registered policies, preserving input order.
func ByNames(names []string) ([]BalancerPolicy, error) {
	out := make([]BalancerPolicy, len(names))
	for i, n := range names {
		p, ok := Lookup(n)
		if !ok {
			return nil, fmt.Errorf("sched: unknown balancer policy %q (registered: %s)",
				n, strings.Join(Names(), ", "))
		}
		out[i] = p
	}
	return out, nil
}
