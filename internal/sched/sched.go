// Package sched explores the paper's §7 outlook: "new scheduling policies
// can make use of AMPoM on openMosix to perform more aggressive migrations
// since the performance penalty of suboptimal decisions has been
// dramatically decreased."
//
// It simulates a small cluster running processor-sharing nodes with a
// periodic load balancer. The balancer only migrates a job when the job's
// expected remaining work justifies the migration cost (the conservatism of
// Harchol-Balter & Downey, the paper's [10]); because AMPoM's cost model is
// orders of magnitude cheaper than openMosix's copy-everything freeze, the
// same rule fires far more often — the "more aggressive migrations" the
// paper predicts — and mean slowdown drops.
package sched

import (
	"fmt"

	"ampom/internal/memory"
	"ampom/internal/prng"
	"ampom/internal/simtime"
)

// Policy selects the migration cost model the balancer charges.
type Policy uint8

// Balancer policies.
const (
	// NoMigration never migrates; the imbalance persists.
	NoMigration Policy = iota
	// OpenMosixCost charges a full-address-space freeze: the job is frozen
	// for footprint/bandwidth before resuming on the target node.
	OpenMosixCost
	// AMPoMCost charges the lightweight freeze (three pages + MPT) and
	// spreads the working set's remote paging over subsequent execution as
	// extra work, as measured in the migration experiments.
	AMPoMCost
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case NoMigration:
		return "no-migration"
	case OpenMosixCost:
		return "openMosix"
	case AMPoMCost:
		return "AMPoM"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config describes the cluster and workload.
type Config struct {
	// Nodes is the cluster size. Default 8.
	Nodes int
	// Jobs is the number of jobs injected. Default 64.
	Jobs int
	// Seed drives job sizes and the skewed initial placement.
	Seed uint64
	// MeanCompute is the mean job service demand. Default 20 s.
	MeanCompute simtime.Duration
	// MeanFootprintMB is the mean process footprint. Default 192 MB.
	MeanFootprintMB int64
	// WorkingSetFrac is the fraction of the footprint a migrant touches
	// after migration (paper §5.6 motivates < 1). Default 0.5.
	WorkingSetFrac float64
	// BandwidthBps is the interconnect bandwidth. Default Fast Ethernet's
	// effective 11.36 MB/s.
	BandwidthBps float64
	// BalancePeriod is the balancer's decision interval. Default 1 s.
	BalancePeriod simtime.Duration
	// CostThreshold is the safety factor of the cost-benefit rule: a job
	// migrates only when its estimated completion after migrating (freeze,
	// added paging work, target sharing) beats its current estimate by this
	// factor. Default 1.25.
	CostThreshold float64
	// Skew in [0,1] biases initial placement towards the first node.
	// Default 0.8 (badly imbalanced arrival, the motivating case).
	Skew float64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Jobs == 0 {
		c.Jobs = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanCompute == 0 {
		c.MeanCompute = 20 * simtime.Second
	}
	if c.MeanFootprintMB == 0 {
		c.MeanFootprintMB = 192
	}
	if c.WorkingSetFrac == 0 {
		c.WorkingSetFrac = 0.5
	}
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 11.36e6
	}
	if c.BalancePeriod == 0 {
		c.BalancePeriod = simtime.Second
	}
	if c.CostThreshold == 0 {
		c.CostThreshold = 1.25
	}
	if c.Skew == 0 {
		c.Skew = 0.8
	}
	return c
}

// job is one process in the study.
type job struct {
	id        int
	remaining simtime.Duration // service demand left
	footprint int64            // MB
	node      int
	frozenFor simtime.Duration // remaining freeze time (not progressing)
	done      bool
	finishAt  simtime.Time
	demand    simtime.Duration // original service demand
}

// Stats summarises one simulation.
type Stats struct {
	Policy        Policy
	Makespan      simtime.Duration
	MeanSlowdown  float64 // (completion − arrival)/demand averaged over jobs
	Migrations    int
	FrozenTotal   simtime.Duration // total time jobs spent frozen
	ExtraWork     simtime.Duration // remote-paging work added by migrations
	MaxNodeFinish simtime.Duration
}

// tick is the simulation quantum.
const tick = 20 * simtime.Millisecond

// Simulate runs the study under one policy and returns its statistics.
// All jobs arrive at t = 0 with placement skewed onto node 0, modelling a
// burst landing on one entry node — the classic openMosix scenario.
func Simulate(cfg Config, policy Policy) Stats {
	cfg = cfg.withDefaults()
	rng := prng.New(cfg.Seed)

	jobs := make([]*job, cfg.Jobs)
	for i := range jobs {
		node := 0
		if rng.Float64() > cfg.Skew {
			node = rng.Intn(cfg.Nodes)
		}
		jobs[i] = &job{
			id:        i,
			remaining: simtime.Duration(float64(cfg.MeanCompute) * (0.25 + 1.5*rng.Float64())),
			footprint: cfg.MeanFootprintMB/2 + int64(rng.Uint64n(uint64(cfg.MeanFootprintMB))),
			node:      node,
		}
		jobs[i].demand = jobs[i].remaining
	}

	st := Stats{Policy: policy}
	now := simtime.Time(0)
	sinceBalance := simtime.Duration(0)

	for {
		// Node populations (runnable jobs only).
		counts := make([]int, cfg.Nodes)
		for _, j := range jobs {
			if !j.done && j.frozenFor == 0 {
				counts[j.node]++
			}
		}

		// Advance one quantum of processor sharing.
		active := 0
		for _, j := range jobs {
			if j.done {
				continue
			}
			active++
			if j.frozenFor > 0 {
				st.FrozenTotal += min(tick, j.frozenFor)
				j.frozenFor -= tick
				if j.frozenFor < 0 {
					j.frozenFor = 0
				}
				continue
			}
			share := simtime.Duration(float64(tick) / float64(counts[j.node]))
			j.remaining -= share
			if j.remaining <= 0 {
				j.done = true
				j.finishAt = now.Add(tick)
			}
		}
		if active == 0 {
			break
		}
		now = now.Add(tick)
		sinceBalance += tick

		// Balance: up to one migration per node pair per round.
		if policy != NoMigration && sinceBalance >= cfg.BalancePeriod {
			sinceBalance = 0
			for i := 0; i < cfg.Nodes; i++ {
				if !balance(cfg, policy, jobs, &st) {
					break
				}
			}
		}
	}

	st.Makespan = simtime.Duration(now)
	var slow float64
	for _, j := range jobs {
		slow += float64(j.finishAt) / float64(j.demand)
	}
	st.MeanSlowdown = slow / float64(len(jobs))
	return st
}

// migrationCost returns (freeze, extraWork) for moving job j under policy.
func migrationCost(cfg Config, policy Policy, j *job) (freeze, extra simtime.Duration) {
	return MigrationCost(policy, j.footprint, cfg.WorkingSetFrac, cfg.BandwidthBps)
}

// MigrationCost is the balancer's cost model: the freeze duration and the
// post-resume remote-paging work that migrating a process of footprintMB
// costs under policy, at bandwidthBps of available interconnect bandwidth,
// when wsFrac of the footprint is touched after the move. Exported so the
// cluster scenario engine charges the same cost-benefit rule this package's
// §7 study uses.
func MigrationCost(policy Policy, footprintMB int64, wsFrac, bandwidthBps float64) (freeze, extra simtime.Duration) {
	bytes := float64(footprintMB) * 1e6
	switch policy {
	case OpenMosixCost:
		// All dirty pages move during the freeze.
		return simtime.FromSeconds(bytes/bandwidthBps) + 65*simtime.Millisecond, 0
	case AMPoMCost:
		// Three pages + the 6 B/page MPT move at freeze; the working set is
		// remote-paged during execution (additive, per the Figure 6
		// finding that prefetching amortises round trips but transfer time
		// adds to compute).
		pages := bytes / float64(memory.PageSize)
		mptBytes := pages * memory.PTEntrySize
		freeze = simtime.FromSeconds(mptBytes/bandwidthBps) +
			simtime.Duration(pages*3)*simtime.Microsecond + 65*simtime.Millisecond
		extra = simtime.FromSeconds(bytes * wsFrac / bandwidthBps)
		return freeze, extra
	default:
		return 0, 0
	}
}

// balance migrates one job from the most to the least loaded node when the
// cost-benefit rule justifies it, reporting whether a migration happened.
func balance(cfg Config, policy Policy, jobs []*job, st *Stats) bool {
	counts := make([]int, cfg.Nodes)
	for _, j := range jobs {
		if !j.done {
			counts[j.node]++
		}
	}
	src, dst := 0, 0
	for n := range counts {
		if counts[n] > counts[src] {
			src = n
		}
		if counts[n] < counts[dst] {
			dst = n
		}
	}
	if counts[src]-counts[dst] < 2 {
		return false
	}

	// Candidate: the job on src with the most remaining work (its lifetime
	// best justifies the cost, following [10]).
	var cand *job
	for _, j := range jobs {
		if j.done || j.node != src || j.frozenFor > 0 {
			continue
		}
		if cand == nil || j.remaining > cand.remaining {
			cand = j
		}
	}
	if cand == nil {
		return false
	}
	freeze, extra := migrationCost(cfg, policy, cand)
	// Cost-benefit rule: estimated completion staying put (processor
	// sharing on src) versus migrating (freeze, remote-paging stalls,
	// sharing on dst). Migrate only on a clear win — the safety factor is
	// where the paper's "aggressive vs conservative" trade-off lives: a
	// cheap freeze makes far more candidate moves clear the bar.
	stay := float64(cand.remaining) * float64(counts[src])
	move := float64(freeze+extra) + float64(cand.remaining)*float64(counts[dst]+1)
	if stay < cfg.CostThreshold*move {
		return false
	}
	cand.node = dst
	// Remote-paging stalls are network waits, not CPU work: the job is
	// unavailable while its working set streams in (our DES shows the
	// fetch-in is network-bound up front), but the target CPU keeps
	// serving other jobs — the essential difference from openMosix's
	// monolithic freeze is that this stall is working-set-sized, not
	// footprint-sized.
	cand.frozenFor = freeze + extra
	st.Migrations++
	st.ExtraWork += extra
	return true
}

func min(a, b simtime.Duration) simtime.Duration {
	if a < b {
		return a
	}
	return b
}

// Compare runs all three policies on the same workload and returns their
// statistics, in the order NoMigration, OpenMosixCost, AMPoMCost.
func Compare(cfg Config) [3]Stats {
	return [3]Stats{
		Simulate(cfg, NoMigration),
		Simulate(cfg, OpenMosixCost),
		Simulate(cfg, AMPoMCost),
	}
}
