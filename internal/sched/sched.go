// Package sched explores the paper's §7 outlook: "new scheduling policies
// can make use of AMPoM on openMosix to perform more aggressive migrations
// since the performance penalty of suboptimal decisions has been
// dramatically decreased."
//
// It simulates a small cluster running processor-sharing nodes with a
// periodic load balancer. The balancer is a pluggable BalancerPolicy (see
// policy.go): the classic cost-benefit policies only migrate a job when the
// job's expected remaining work justifies the migration cost (the
// conservatism of Harchol-Balter & Downey, the paper's [10]); because
// AMPoM's cost model is orders of magnitude cheaper than openMosix's
// copy-everything freeze, the same rule fires far more often — the "more
// aggressive migrations" the paper predicts — and mean slowdown drops. The
// probabilistic load-vector and memory-ushering policies model the
// dissemination and memory-pressure behaviours openMosix farms tuned in
// practice.
package sched

import (
	"fmt"

	"ampom/internal/prng"
	"ampom/internal/simtime"
)

// Policy is the closed v1 policy enum.
//
// Deprecated: the balancer surface is the open BalancerPolicy interface
// plus the registry (Register, Lookup, Names, All). Policy remains only so
// v1 callers keep compiling; convert with Balancer().
type Policy uint8

// The v1 balancer policies.
//
// Deprecated: use NoMigrationPolicy, OpenMosixPolicy and AMPoMPolicy (or
// the registry) instead.
const (
	// NoMigration never migrates; the imbalance persists.
	NoMigration Policy = iota
	// OpenMosixCost charges a full-address-space freeze: the job is frozen
	// for footprint/bandwidth before resuming on the target node.
	OpenMosixCost
	// AMPoMCost charges the lightweight freeze (three pages + MPT) and
	// spreads the working set's remote paging over subsequent execution as
	// extra work, as measured in the migration experiments.
	AMPoMCost
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case NoMigration:
		return NameNoMigration
	case OpenMosixCost:
		return NameOpenMosix
	case AMPoMCost:
		return NameAMPoM
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Balancer converts the v1 enum to its registered BalancerPolicy.
func (p Policy) Balancer() BalancerPolicy {
	switch p {
	case OpenMosixCost:
		return OpenMosixPolicy
	case AMPoMCost:
		return AMPoMPolicy
	default:
		return NoMigrationPolicy
	}
}

// MigrationCost is the v1 cost-model entry point.
//
// Deprecated: call MigrationCost on a BalancerPolicy (or FullCopyCost /
// LightweightCost directly).
func MigrationCost(policy Policy, footprintMB int64, wsFrac, bandwidthBps float64) (freeze, extra simtime.Duration) {
	return policy.Balancer().MigrationCost(footprintMB, wsFrac, bandwidthBps)
}

// Config describes the cluster and workload.
type Config struct {
	// Nodes is the cluster size. Default 8.
	Nodes int
	// Jobs is the number of jobs injected. Default 64.
	Jobs int
	// Seed drives job sizes and the skewed initial placement.
	Seed uint64
	// MeanCompute is the mean job service demand. Default 20 s.
	MeanCompute simtime.Duration
	// MeanFootprintMB is the mean process footprint. Default 192 MB.
	MeanFootprintMB int64
	// NodeMemMB is each node's physical memory — the capacity the
	// memory-ushering policy balances against. Default: four balanced
	// shares of the mean footprint (4 × Jobs/Nodes × MeanFootprintMB).
	NodeMemMB int64
	// WorkingSetFrac is the fraction of the footprint a migrant touches
	// after migration (paper §5.6 motivates < 1). Default 0.5.
	WorkingSetFrac float64
	// BandwidthBps is the interconnect bandwidth. Default Fast Ethernet's
	// effective 11.36 MB/s.
	BandwidthBps float64
	// BalancePeriod is the balancer's decision interval. Default 1 s.
	BalancePeriod simtime.Duration
	// CostThreshold is the safety factor of the cost-benefit rule: a job
	// migrates only when its estimated completion after migrating (freeze,
	// added paging work, target sharing) beats its current estimate by this
	// factor. Default 1.25.
	CostThreshold float64
	// Skew in [0,1] biases initial placement towards the first node.
	// Default 0.8 (badly imbalanced arrival, the motivating case).
	Skew float64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Jobs == 0 {
		c.Jobs = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MeanCompute == 0 {
		c.MeanCompute = 20 * simtime.Second
	}
	if c.MeanFootprintMB == 0 {
		c.MeanFootprintMB = 192
	}
	if c.NodeMemMB == 0 {
		perNode := int64((c.Jobs + c.Nodes - 1) / c.Nodes)
		c.NodeMemMB = 4 * perNode * c.MeanFootprintMB
	}
	if c.WorkingSetFrac == 0 {
		c.WorkingSetFrac = 0.5
	}
	if c.BandwidthBps == 0 {
		c.BandwidthBps = 11.36e6
	}
	if c.BalancePeriod == 0 {
		c.BalancePeriod = simtime.Second
	}
	if c.CostThreshold == 0 {
		c.CostThreshold = 1.25
	}
	if c.Skew == 0 {
		c.Skew = 0.8
	}
	return c
}

// job is one process in the study.
type job struct {
	id        int
	remaining simtime.Duration // service demand left
	footprint int64            // MB
	node      int
	frozenFor simtime.Duration // remaining freeze time (not progressing)
	done      bool
	finishAt  simtime.Time
	demand    simtime.Duration // original service demand
}

// Stats summarises one simulation.
type Stats struct {
	// Policy is the balancer policy's registry name.
	Policy        string
	Makespan      simtime.Duration
	MeanSlowdown  float64 // (completion − arrival)/demand averaged over jobs
	Migrations    int
	FrozenTotal   simtime.Duration // total time jobs spent frozen
	ExtraWork     simtime.Duration // remote-paging work added by migrations
	MaxNodeFinish simtime.Duration
}

// tick is the simulation quantum.
const tick = 20 * simtime.Millisecond

// Simulate runs the study under one policy and returns its statistics.
// All jobs arrive at t = 0 with placement skewed onto node 0, modelling a
// burst landing on one entry node — the classic openMosix scenario.
func Simulate(cfg Config, pol BalancerPolicy) Stats {
	cfg = cfg.withDefaults()
	rng := prng.New(cfg.Seed)
	// The policy-decision stream is separate from the workload stream, so
	// probabilistic policies see the identical workload the others do.
	brand := prng.New(cfg.Seed ^ 0x62616c616e636572) // "balancer"

	jobs := make([]*job, cfg.Jobs)
	for i := range jobs {
		node := 0
		if rng.Float64() > cfg.Skew {
			node = rng.Intn(cfg.Nodes)
		}
		jobs[i] = &job{
			id:        i,
			remaining: simtime.Duration(float64(cfg.MeanCompute) * (0.25 + 1.5*rng.Float64())),
			footprint: cfg.MeanFootprintMB/2 + int64(rng.Uint64n(uint64(cfg.MeanFootprintMB))),
			node:      node,
		}
		jobs[i].demand = jobs[i].remaining
	}

	st := Stats{Policy: pol.Name()}
	now := simtime.Time(0)
	sinceBalance := simtime.Duration(0)
	balances := pol.Name() != BaselineName

	for {
		// Node populations (runnable jobs only).
		counts := make([]int, cfg.Nodes)
		for _, j := range jobs {
			if !j.done && j.frozenFor == 0 {
				counts[j.node]++
			}
		}

		// Advance one quantum of processor sharing.
		active := 0
		for _, j := range jobs {
			if j.done {
				continue
			}
			active++
			if j.frozenFor > 0 {
				st.FrozenTotal += min(tick, j.frozenFor)
				j.frozenFor -= tick
				if j.frozenFor < 0 {
					j.frozenFor = 0
				}
				continue
			}
			share := simtime.Duration(float64(tick) / float64(counts[j.node]))
			j.remaining -= share
			if j.remaining <= 0 {
				j.done = true
				j.finishAt = now.Add(tick)
			}
		}
		if active == 0 {
			break
		}
		now = now.Add(tick)
		sinceBalance += tick

		// Balance: up to one migration per node per round.
		if balances && sinceBalance >= cfg.BalancePeriod {
			sinceBalance = 0
			for i := 0; i < cfg.Nodes; i++ {
				if !balance(cfg, pol, jobs, brand, &st) {
					break
				}
			}
		}
	}

	st.Makespan = simtime.Duration(now)
	var slow float64
	for _, j := range jobs {
		slow += float64(j.finishAt) / float64(j.demand)
	}
	st.MeanSlowdown = slow / float64(len(jobs))
	return st
}

// makeView assembles the policy's picture of the cluster.
func makeView(cfg Config, jobs []*job, rand *prng.Source) View {
	v := View{
		Nodes:         make([]NodeView, cfg.Nodes),
		BandwidthBps:  cfg.BandwidthBps,
		CostThreshold: cfg.CostThreshold,
		Rand:          rand,
	}
	for i := range v.Nodes {
		v.Nodes[i].CPUScale = 1
		v.Nodes[i].CapacityMB = cfg.NodeMemMB
	}
	for _, j := range jobs {
		if j.done {
			continue
		}
		v.Nodes[j.node].Procs++
		v.Nodes[j.node].UsedMemMB += j.footprint
	}
	for i := range v.Nodes {
		v.Nodes[i].Load = float64(v.Nodes[i].Procs)
		// The study has no dissemination plane: every row is ground truth.
		v.Nodes[i].QueueLen = v.Nodes[i].Procs
	}
	return v
}

// candidatesOn returns up to MaxCandidates runnable jobs on node, longest
// remaining demand first (lifetime best justifies the cost, following
// [10]), ties broken by ascending id.
func candidatesOn(jobs []*job, node int) []*job {
	return TopCandidates(jobs,
		func(j *job) bool { return !j.done && j.frozenFor == 0 && j.node == node },
		func(j *job) simtime.Duration { return j.remaining })
}

// balance offers the policy one candidate at a time — most loaded nodes
// first, longest remaining demand first — and executes the first migration
// it accepts, reporting whether one happened.
func balance(cfg Config, pol BalancerPolicy, jobs []*job, rand *prng.Source, st *Stats) bool {
	v := makeView(cfg, jobs, rand)
	for _, src := range v.NodesByLoad() {
		for _, j := range candidatesOn(jobs, src) {
			pv := ProcView{
				ID:             j.id,
				Node:           src,
				Remaining:      j.remaining,
				FootprintMB:    j.footprint,
				WorkingSetFrac: cfg.WorkingSetFrac,
			}
			dest, ok := pol.ShouldMigrate(v, pv)
			if !ok || dest == src || dest < 0 || dest >= cfg.Nodes {
				continue
			}
			freeze, extra := pol.MigrationCost(j.footprint, cfg.WorkingSetFrac, cfg.BandwidthBps)
			j.node = dest
			// Remote-paging stalls are network waits, not CPU work: the job
			// is unavailable while its working set streams in, but the target
			// CPU keeps serving other jobs — the essential difference from
			// openMosix's monolithic freeze is that this stall is
			// working-set-sized, not footprint-sized.
			j.frozenFor = freeze + extra
			st.Migrations++
			st.ExtraWork += extra
			return true
		}
	}
	return false
}

func min(a, b simtime.Duration) simtime.Duration {
	if a < b {
		return a
	}
	return b
}

// Compare runs each policy on the same workload and returns one Stats per
// policy, in argument order. With no policies it runs every registered
// policy in registry-sorted order.
func Compare(cfg Config, pols ...BalancerPolicy) []Stats {
	if len(pols) == 0 {
		pols = All()
	}
	out := make([]Stats, len(pols))
	for i, p := range pols {
		out[i] = Simulate(cfg, p)
	}
	return out
}
