package harness

import (
	"fmt"

	"ampom/internal/campaign"
	"ampom/internal/scenario"
)

// This file exposes cluster scenarios through the figure harness: the
// Matrix runs them on its campaign engine (same worker pool, cache and seed
// derivation as the figure matrix) and renders their reports as Tables, so
// ampom-cluster output sits beside the paper artefacts.

// RunScenario executes one scenario through the campaign engine, memoised
// and seeded from the matrix seed.
func (m *Matrix) RunScenario(spec scenario.Spec) (*scenario.Report, error) {
	return m.eng.RunScenario(campaign.ScenarioJob{Spec: spec})
}

// RunScenarios fans a scenario batch across the worker pool, aggregating
// failures; healthy slots still return reports.
func (m *Matrix) RunScenarios(specs []scenario.Spec) ([]*scenario.Report, error) {
	jobs := make([]campaign.ScenarioJob, len(specs))
	for i, s := range specs {
		jobs[i] = campaign.ScenarioJob{Spec: s}
	}
	return m.eng.RunScenarios(jobs)
}

// ScenarioTable renders one scenario's report as a harness Table.
func (m *Matrix) ScenarioTable(spec scenario.Spec) (*Table, error) {
	rep, err := m.RunScenario(spec)
	if err != nil {
		return nil, err
	}
	return scenarioTable(rep), nil
}

// PresetScenarioTable renders a named preset scenario.
func (m *Matrix) PresetScenarioTable(name string) (*Table, error) {
	spec, err := scenario.Preset(name)
	if err != nil {
		return nil, err
	}
	return m.ScenarioTable(spec)
}

// scenarioTable converts a report into the harness table shape.
func scenarioTable(r *scenario.Report) *Table {
	t := &Table{
		Title: fmt.Sprintf("Scenario %s: %d nodes, %d processes", r.Spec.Name, r.Spec.Nodes, r.Procs),
		Caption: fmt.Sprintf("Cluster-scale balancing under the §7 cost models (%s/%s arrivals on %s, seed %d).",
			r.Spec.Arrival, r.Spec.Placement, r.Spec.Network.Name, r.Seed),
		Header: []string{"policy", "makespan (s)", "slowdown", "xbase", "migrations", "frozen (s)", "faults", "prefetched", "MB moved"},
	}
	for _, st := range r.Schemes {
		t.Rows = append(t.Rows, []string{
			st.Policy,
			fmtSec(st.Makespan.Seconds()),
			fmt.Sprintf("%.2f", st.MeanSlowdown),
			fmt.Sprintf("%.2f", st.SlowdownVsBase),
			fmt.Sprint(st.Migrations),
			fmtSec(st.FrozenTotal.Seconds()),
			fmt.Sprint(st.HardFaults),
			fmt.Sprint(st.PrefetchPages),
			fmt.Sprintf("%.1f", float64(st.MigrationBytes)/1e6),
		})
	}
	return t
}
