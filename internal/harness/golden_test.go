package harness

import (
	"strings"
	"testing"
)

// These tests lock in the campaign determinism guarantee: the rendered
// tables are byte-identical whatever the worker count, and across repeated
// runs of the same configuration.

// renderAll renders every figure and ablation into one byte stream.
func renderAll(m *Matrix) string {
	var b strings.Builder
	for _, t := range m.AllFigures() {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	for _, t := range m.AllAblations() {
		b.WriteString(t.Render())
		b.WriteString("\n")
	}
	return b.String()
}

func goldenCfg(workers int) Config {
	return Config{Scale: 16, Seed: 7, Workers: workers}
}

func TestTable1DeterministicAcrossWorkers(t *testing.T) {
	seq := NewMatrix(goldenCfg(1)).Table1().Render()
	par := NewMatrix(goldenCfg(8)).Table1().Render()
	if seq != par {
		t.Fatalf("Table1 differs between 1 and 8 workers:\n%s\n---\n%s", seq, par)
	}
}

func TestFigure4DeterministicAcrossWorkers(t *testing.T) {
	seq := NewMatrix(goldenCfg(1)).Figure4().Render()
	par := NewMatrix(goldenCfg(8)).Figure4().Render()
	if seq != par {
		t.Fatalf("Figure4 differs between 1 and 8 workers:\n%s\n---\n%s", seq, par)
	}
	rep := NewMatrix(goldenCfg(8)).Figure4().Render()
	if par != rep {
		t.Fatal("Figure4 differs between repeated runs of the same config")
	}
}

// TestCampaignByteIdentical is the full guarantee: every figure and every
// ablation table, sequential vs 8-way parallel vs a repeated parallel run.
func TestCampaignByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign comparison in -short mode")
	}
	seq := renderAll(NewMatrix(goldenCfg(1)))
	par := renderAll(NewMatrix(goldenCfg(8)))
	if seq != par {
		t.Fatal("campaign output differs between sequential and parallel execution")
	}
	rep := renderAll(NewMatrix(goldenCfg(8)))
	if par != rep {
		t.Fatal("campaign output differs between repeated parallel runs")
	}
}

// TestSeedChangesOutput guards against the degenerate way to pass the
// determinism tests — ignoring the seed altogether.
func TestSeedChangesOutput(t *testing.T) {
	// Figure 7's fault-request counts on RandomAccess are the most
	// seed-sensitive artefact (its reference stream is the stochastic one).
	a := NewMatrix(Config{Scale: 16, Seed: 7}).Figure7().Render()
	b := NewMatrix(Config{Scale: 16, Seed: 8}).Figure7().Render()
	if a == b {
		t.Fatal("changing the campaign seed left Figure 7 unchanged")
	}
}

func TestCampaignJobsDeduplicated(t *testing.T) {
	m := NewMatrix(goldenCfg(0))
	jobs := m.CampaignJobs()
	seen := map[string]bool{}
	for _, j := range jobs {
		fp := j.Fingerprint()
		if seen[fp] {
			t.Fatalf("duplicate fingerprint %q in CampaignJobs", fp)
		}
		seen[fp] = true
	}
	// The matrix must cover at least: 18 catalogue rows × 3 schemes, the
	// Figure 9 broadband cells, the Figure 10 working-set sweep and the
	// ablation sweeps.
	if len(jobs) < 60 {
		t.Fatalf("campaign matrix has %d jobs, expected a fuller matrix", len(jobs))
	}
}

// TestPrewarmSharesCellsWithFigures: after a prewarm, rendering the figures
// must not execute a single extra simulation.
func TestPrewarmSharesCellsWithFigures(t *testing.T) {
	m := NewMatrix(goldenCfg(4))
	if err := m.Prewarm(); err != nil {
		t.Fatal(err)
	}
	executed := m.Engine().Executed()
	if executed != len(m.CampaignJobs()) {
		t.Fatalf("prewarm executed %d jobs for a %d-job matrix", executed, len(m.CampaignJobs()))
	}
	for _, tab := range m.AllFigures() {
		if len(tab.Rows) == 0 {
			t.Fatalf("figure %q empty", tab.Title)
		}
	}
	for _, tab := range m.AllAblations() {
		if len(tab.Rows) == 0 {
			t.Fatalf("ablation %q empty", tab.Title)
		}
	}
	if post := m.Engine().Executed(); post != executed {
		t.Fatalf("rendering after prewarm executed %d extra simulations", post-executed)
	}
}

// TestPrewarmFigureCoversRendering: prewarming one named figure must leave
// nothing for its rendering path to simulate, and unknown names are no-ops.
func TestPrewarmFigureCoversRendering(t *testing.T) {
	m := NewMatrix(goldenCfg(4))
	if err := m.PrewarmFigure("fig7"); err != nil {
		t.Fatal(err)
	}
	warm := m.Engine().Executed()
	if warm == 0 {
		t.Fatal("PrewarmFigure(fig7) executed nothing")
	}
	_ = m.Figure7()
	if got := m.Engine().Executed(); got != warm {
		t.Fatalf("rendering Figure 7 after its prewarm executed %d extra jobs", got-warm)
	}
	if err := m.PrewarmFigure("table1"); err != nil {
		t.Fatal(err)
	}
	if err := m.PrewarmFigure("nonsense"); err != nil {
		t.Fatal(err)
	}
	if got := m.Engine().Executed(); got != warm {
		t.Fatal("simulation-free prewarms must not execute jobs")
	}
}

// TestSharedBaselineComputedOnce: the openMosix baseline cell reused across
// Figures 5–7 and the scheme ablation must map to one fingerprint.
func TestSharedBaselineComputedOnce(t *testing.T) {
	m := NewMatrix(goldenCfg(1))
	_ = m.Figure5()
	after5 := m.Engine().Executed()
	_ = m.Figure6() // same cells as Figure 5
	if got := m.Engine().Executed(); got != after5 {
		t.Fatalf("Figure 6 executed %d extra jobs after Figure 5", got-after5)
	}
	// The scheme ablation's three paper schemes on DGEMM@575/16 coincide
	// with Figure 5 cells; only the two extra baselines may run.
	_ = m.AblationSchemes()
	if got := m.Engine().Executed(); got != after5+2 {
		t.Fatalf("scheme ablation executed %d extra jobs, want 2", got-after5)
	}
}
