package harness

import (
	"fmt"

	"ampom/internal/campaign"
	"ampom/internal/core"
	"ampom/internal/hpcc"
	"ampom/internal/migrate"
)

// Ablations go beyond the paper: they isolate the design choices DESIGN.md
// calls out by re-running representative workloads with one knob changed.

// ablate runs one AMPoM experiment with a custom prefetcher configuration.
// The campaign fingerprint covers the configuration, so variants cache
// independently and the default-config cell is shared with the figures.
func (m *Matrix) ablate(k hpcc.Kernel, mb int64, cfg core.Config) *migrate.Result {
	return m.mustRun(campaign.Job{Kernel: k, MemoryMB: mb, Scheme: migrate.AMPoM, AMPoM: cfg})
}

// AblationBaseline compares the §5.3 read-ahead baseline against pure
// Eq. 3 sizing on RandomAccess — the workload whose S ≈ 0 makes the
// baseline the only source of prefetching.
func (m *Matrix) AblationBaseline() *Table {
	t := &Table{
		Title:   "Ablation: read-ahead baseline (RandomAccess)",
		Caption: "BaselineScore floors the zone size when the pattern is unclear (§5.3)",
		Header:  []string{"baseline", "total (s)", "fault requests", "prefetched/request"},
	}
	mb := scaled(513, m.cfg.Scale)
	for _, bl := range []float64{-1, 0.2, core.DefaultBaselineScore, 0.9} {
		cfg := core.DefaultConfig()
		cfg.BaselineScore = bl
		r := m.ablate(hpcc.RandomAccess, mb, cfg)
		name := fmt.Sprintf("%.2f", bl)
		if bl < 0 {
			name = "off"
		}
		t.Rows = append(t.Rows, []string{
			name, fmtSec(r.Total.Seconds()), fmt.Sprint(r.HardFaults),
			fmt.Sprintf("%.1f", r.PrefetchPerRequest),
		})
	}
	return t
}

// AblationWindow sweeps the lookback window length l on DGEMM.
func (m *Matrix) AblationWindow() *Table {
	t := &Table{
		Title:   "Ablation: lookback window length l (DGEMM)",
		Caption: "the paper fixes l = 20 'so that the analysis overhead could be limited' (§4)",
		Header:  []string{"l", "total (s)", "fault requests", "overhead (%)"},
	}
	mb := scaled(575, m.cfg.Scale)
	for _, l := range []int{5, 10, 20, 40, 80} {
		cfg := core.DefaultConfig()
		cfg.WindowLen = l
		r := m.ablate(hpcc.DGEMM, mb, cfg)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(l), fmtSec(r.Total.Seconds()), fmt.Sprint(r.HardFaults),
			fmt.Sprintf("%.3f", r.OverheadPct),
		})
	}
	return t
}

// AblationDMax sweeps the maximum stride searched on STREAM, whose
// interleaved sweeps need d ≥ 3 to be recognised.
func (m *Matrix) AblationDMax() *Table {
	t := &Table{
		Title:   "Ablation: maximum stride dmax (STREAM)",
		Caption: "STREAM's triad is three interleaved sequential streams — a stride-3 pattern",
		Header:  []string{"dmax", "total (s)", "fault requests", "mean S"},
	}
	mb := scaled(575, m.cfg.Scale)
	for _, d := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.DMax = d
		r := m.ablate(hpcc.STREAM, mb, cfg)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(d), fmtSec(r.Total.Seconds()), fmt.Sprint(r.HardFaults),
			fmt.Sprintf("%.3f", r.MeanScore),
		})
	}
	return t
}

// AblationCap sweeps the per-fault prefetch cap on STREAM, the kernel that
// drives the deepest zones.
func (m *Matrix) AblationCap() *Table {
	t := &Table{
		Title:   "Ablation: prefetch cap MaxPrefetch (STREAM)",
		Caption: "a safety valve against mis-estimated N flooding the network",
		Header:  []string{"cap", "total (s)", "fault requests", "prefetched/request"},
	}
	mb := scaled(575, m.cfg.Scale)
	for _, cap := range []int{8, 32, 128, 512} {
		cfg := core.DefaultConfig()
		cfg.MaxPrefetch = cap
		r := m.ablate(hpcc.STREAM, mb, cfg)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cap), fmtSec(r.Total.Seconds()), fmt.Sprint(r.HardFaults),
			fmt.Sprintf("%.1f", r.PrefetchPerRequest),
		})
	}
	return t
}

// AblationSchemes compares all five migration mechanisms — the paper's
// three plus the FFA-with-file-server and V-system precopy baselines its
// Figure 2 and related work describe — on the largest DGEMM.
func (m *Matrix) AblationSchemes() *Table {
	t := &Table{
		Title:   "Ablation: migration mechanisms (DGEMM)",
		Caption: "the paper's three schemes plus the Figure 2 / related-work baselines",
		Header:  []string{"scheme", "freeze (s)", "precopy (s)", "total (s)", "fault requests", "MB moved"},
	}
	mb := scaled(575, m.cfg.Scale)
	for _, s := range migrate.AllSchemes() {
		r := m.mustRun(campaign.Job{Kernel: hpcc.DGEMM, MemoryMB: mb, Scheme: s})
		t.Rows = append(t.Rows, []string{
			s.String(), fmtSec(r.Freeze.Seconds()), fmtSec(r.Precopy.Seconds()),
			fmtSec(r.Total.Seconds()), fmt.Sprint(r.HardFaults),
			fmt.Sprintf("%.1f", float64(r.BytesToDest)/1e6),
		})
	}
	return t
}

// AllAblations renders every ablation table, prewarming the ablation matrix
// through the campaign worker pool first.
func (m *Matrix) AllAblations() []*Table {
	if err := m.PrewarmAblations(); err != nil {
		panic(err)
	}
	return []*Table{
		m.AblationSchemes(), m.AblationBaseline(), m.AblationWindow(),
		m.AblationDMax(), m.AblationCap(),
	}
}
