// Package harness regenerates every table and figure of the paper's
// evaluation (§5): it runs the kernel × size × scheme experiment matrix on
// the simulated Gideon 300 cluster and formats the same rows and series the
// paper reports. Runs are memoised, so figures that share runs (5, 6, 7, 8,
// 11 all come from one matrix) pay for them once.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ampom/internal/campaign"
	"ampom/internal/hpcc"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
)

// Config scopes an experiment campaign.
type Config struct {
	// Scale divides every Table 1 footprint (1 = paper scale, 16 = laptop
	// smoke scale). Freeze times and totals shrink accordingly, but every
	// qualitative shape survives scaling.
	Scale int64
	// Seed drives all stochastic components.
	Seed uint64
	// Workers bounds the campaign engine's worker pool: 0 means GOMAXPROCS,
	// 1 runs strictly sequentially. Per-job seeds are derived from the job
	// key, so every setting renders byte-identical tables.
	Workers int
	// Progress, when set, receives a sample after every job of a Prewarm
	// batch completes.
	Progress func(campaign.Progress)
}

// DefaultConfig runs at paper scale.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 42} }

func (c Config) normalised() Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Matrix renders the paper's tables and figures from campaign results. All
// experiment execution — memoisation, worker pool, seed derivation — lives
// in the campaign engine; the Matrix only enumerates jobs and formats rows.
type Matrix struct {
	cfg Config
	eng *campaign.Engine

	// warmMu guards the prewarm bookkeeping: a batch that completed cleanly
	// is not re-submitted, so progress callbacks never replay over a
	// fully-cached matrix.
	warmMu        sync.Mutex
	figuresWarm   bool
	ablationsWarm bool
}

// NewMatrix returns a matrix backed by a fresh campaign engine.
func NewMatrix(cfg Config) *Matrix {
	cfg = cfg.normalised()
	return &Matrix{
		cfg: cfg,
		eng: campaign.New(campaign.Options{
			Workers:    cfg.Workers,
			BaseSeed:   cfg.Seed,
			OnProgress: cfg.Progress,
		}),
	}
}

// Config returns the campaign configuration.
func (m *Matrix) Config() Config { return m.cfg }

// Engine exposes the backing campaign engine (progress hooks, statistics).
func (m *Matrix) Engine() *campaign.Engine { return m.eng }

// entries returns the scaled Table 1 rows of one kernel.
func (m *Matrix) entries(k hpcc.Kernel) []hpcc.Entry {
	rows := hpcc.CatalogueFor(k)
	out := make([]hpcc.Entry, len(rows))
	for i, e := range rows {
		out[i] = hpcc.Scaled(e, m.cfg.Scale)
	}
	return out
}

// run executes (and memoises, via the campaign engine) one experiment.
func (m *Matrix) run(k hpcc.Kernel, mb int64, scheme migrate.Scheme, net netmodel.Profile) *migrate.Result {
	return m.mustRun(campaign.Job{Kernel: k, MemoryMB: mb, Scheme: scheme, Network: net})
}

// mustRun executes one campaign job, panicking on failure — the rendering
// paths have no way to represent a missing cell. Batch execution with error
// aggregation is Prewarm.
func (m *Matrix) mustRun(job campaign.Job) *migrate.Result {
	r, err := m.eng.Run(job)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return r
}

// Table is a rendered experiment artefact: a title, a caption tying it to
// the paper, column headers and formatted rows.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// sortKernels returns the kernels in the paper's presentation order.
func sortKernels() []hpcc.Kernel { return hpcc.Kernels() }

// fmtSec formats seconds with ms precision.
func fmtSec(sec float64) string { return fmt.Sprintf("%.3f", sec) }

// fmtPct formats a percentage.
func fmtPct(p float64) string { return fmt.Sprintf("%+.1f%%", p) }

// sortedSizes returns the distinct scaled sizes of a kernel, ascending.
func (m *Matrix) sortedSizes(k hpcc.Kernel) []int64 {
	var sizes []int64
	for _, e := range m.entries(k) {
		sizes = append(sizes, e.MemoryMB)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes
}
