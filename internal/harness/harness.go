// Package harness regenerates every table and figure of the paper's
// evaluation (§5): it runs the kernel × size × scheme experiment matrix on
// the simulated Gideon 300 cluster and formats the same rows and series the
// paper reports. Runs are memoised, so figures that share runs (5, 6, 7, 8,
// 11 all come from one matrix) pay for them once.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"ampom/internal/hpcc"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
)

// Config scopes an experiment campaign.
type Config struct {
	// Scale divides every Table 1 footprint (1 = paper scale, 16 = laptop
	// smoke scale). Freeze times and totals shrink accordingly, but every
	// qualitative shape survives scaling.
	Scale int64
	// Seed drives all stochastic components.
	Seed uint64
}

// DefaultConfig runs at paper scale.
func DefaultConfig() Config { return Config{Scale: 1, Seed: 42} }

func (c Config) normalised() Config {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// runKey identifies one memoised run.
type runKey struct {
	kernel  hpcc.Kernel
	mb      int64
	scheme  migrate.Scheme
	network string
}

// Matrix memoises experiment runs for one configuration.
type Matrix struct {
	cfg  Config
	runs map[runKey]*migrate.Result
}

// NewMatrix returns an empty run cache for cfg.
func NewMatrix(cfg Config) *Matrix {
	return &Matrix{cfg: cfg.normalised(), runs: make(map[runKey]*migrate.Result)}
}

// Config returns the campaign configuration.
func (m *Matrix) Config() Config { return m.cfg }

// entries returns the scaled Table 1 rows of one kernel.
func (m *Matrix) entries(k hpcc.Kernel) []hpcc.Entry {
	rows := hpcc.CatalogueFor(k)
	out := make([]hpcc.Entry, len(rows))
	for i, e := range rows {
		out[i] = hpcc.Scaled(e, m.cfg.Scale)
	}
	return out
}

// run executes (and memoises) one experiment.
func (m *Matrix) run(k hpcc.Kernel, mb int64, scheme migrate.Scheme, net netmodel.Profile) *migrate.Result {
	key := runKey{k, mb, scheme, net.Name}
	if r, ok := m.runs[key]; ok {
		return r
	}
	w, err := hpcc.Build(hpcc.Entry{Kernel: k, ProblemSize: mb, MemoryMB: mb}, m.cfg.Seed)
	if err != nil {
		panic(fmt.Sprintf("harness: building %v/%dMB: %v", k, mb, err))
	}
	r, err := migrate.Run(migrate.RunConfig{
		Workload: w,
		Scheme:   scheme,
		Network:  net,
		Seed:     m.cfg.Seed,
	})
	if err != nil {
		panic(fmt.Sprintf("harness: running %v/%dMB/%v: %v", k, mb, scheme, err))
	}
	m.runs[key] = r
	return r
}

// Table is a rendered experiment artefact: a title, a caption tying it to
// the paper, column headers and formatted rows.
type Table struct {
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// sortKernels returns the kernels in the paper's presentation order.
func sortKernels() []hpcc.Kernel { return hpcc.Kernels() }

// fmtSec formats seconds with ms precision.
func fmtSec(sec float64) string { return fmt.Sprintf("%.3f", sec) }

// fmtPct formats a percentage.
func fmtPct(p float64) string { return fmt.Sprintf("%+.1f%%", p) }

// sortedSizes returns the distinct scaled sizes of a kernel, ascending.
func (m *Matrix) sortedSizes(k hpcc.Kernel) []int64 {
	var sizes []int64
	for _, e := range m.entries(k) {
		sizes = append(sizes, e.MemoryMB)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	return sizes
}
