package harness

import (
	"ampom/internal/campaign"
	"ampom/internal/core"
	"ampom/internal/hpcc"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
)

// This file enumerates the full experiment matrix as campaign jobs, so the
// whole figure/ablation campaign can be fanned out across the engine's
// worker pool up front and the rendering paths then only hit warm cache.

// grid enumerates kernel × size × scheme cells on the testbed network —
// the shape Figures 5, 6, 7, 8 and 11 all draw from.
func (m *Matrix) grid(schemes ...migrate.Scheme) []campaign.Job {
	var jobs []campaign.Job
	fe := netmodel.FastEthernet()
	for _, k := range sortKernels() {
		for _, mb := range m.sortedSizes(k) {
			for _, s := range schemes {
				jobs = append(jobs, campaign.Job{Kernel: k, MemoryMB: mb, Scheme: s, Network: fe})
			}
		}
	}
	return jobs
}

// figureJobsFor returns the campaign jobs one named artefact needs (the
// -figure names of ampom-bench). Table 1 and Figure 4 simulate nothing and
// return nil.
func (m *Matrix) figureJobsFor(name string) []campaign.Job {
	switch name {
	case "fig5", "fig6":
		return m.grid(migrate.Schemes()...)
	case "fig7":
		return m.grid(migrate.AMPoM, migrate.NoPrefetch)
	case "fig8", "fig11":
		return m.grid(migrate.AMPoM)
	case "fig9":
		// The broadband adaptation pair on both networks.
		var jobs []campaign.Job
		for _, c := range []campaign.Job{
			{Kernel: hpcc.DGEMM, MemoryMB: scaled(115, m.cfg.Scale)},
			{Kernel: hpcc.RandomAccess, MemoryMB: scaled(129, m.cfg.Scale)},
		} {
			for _, net := range []netmodel.Profile{netmodel.FastEthernet(), netmodel.Broadband()} {
				for _, s := range migrate.Schemes() {
					jobs = append(jobs, campaign.Job{Kernel: c.Kernel, MemoryMB: c.MemoryMB, Scheme: s, Network: net})
				}
			}
		}
		return jobs
	case "fig10":
		// The §5.6 working-set sweep.
		var jobs []campaign.Job
		alloc := scaled(575, m.cfg.Scale)
		for _, frac := range []int64{5, 4, 3, 2, 1} {
			ws := alloc / frac
			if ws < 1 {
				ws = 1
			}
			for _, s := range []migrate.Scheme{migrate.OpenMosix, migrate.AMPoM} {
				jobs = append(jobs, campaign.Job{Kernel: hpcc.DGEMM, MemoryMB: ws, AllocMB: alloc, Scheme: s})
			}
		}
		return jobs
	default:
		return nil
	}
}

// PrewarmFigure fans the named artefact's cells across the worker pool, so
// single-figure runs still use -j workers and report progress. Unknown or
// simulation-free names (table1, fig4) are a no-op.
func (m *Matrix) PrewarmFigure(name string) error {
	jobs := campaign.Dedupe(m.figureJobsFor(name))
	if len(jobs) == 0 {
		return nil
	}
	_, err := m.eng.RunAll(jobs)
	return err
}

// FigureJobs enumerates every experiment Figures 5–11 need, deduplicated:
// cells shared between figures (the openMosix baseline of Figures 5, 6 and
// 9, the AMPoM runs of Figures 5–8 and 11) appear once.
func (m *Matrix) FigureJobs() []campaign.Job {
	jobs := m.figureJobsFor("fig5") // covers fig6/7/8/11 as subsets
	jobs = append(jobs, m.figureJobsFor("fig9")...)
	jobs = append(jobs, m.figureJobsFor("fig10")...)
	return campaign.Dedupe(jobs)
}

// AblationJobs enumerates every experiment the ablation tables need.
func (m *Matrix) AblationJobs() []campaign.Job {
	var jobs []campaign.Job

	// Scheme ablation: all five mechanisms on the largest DGEMM.
	dgemm := scaled(575, m.cfg.Scale)
	for _, s := range migrate.AllSchemes() {
		jobs = append(jobs, campaign.Job{Kernel: hpcc.DGEMM, MemoryMB: dgemm, Scheme: s})
	}

	// Read-ahead baseline sweep on RandomAccess.
	ra := scaled(513, m.cfg.Scale)
	for _, bl := range []float64{-1, 0.2, core.DefaultBaselineScore, 0.9} {
		cfg := core.DefaultConfig()
		cfg.BaselineScore = bl
		jobs = append(jobs, campaign.Job{Kernel: hpcc.RandomAccess, MemoryMB: ra, Scheme: migrate.AMPoM, AMPoM: cfg})
	}

	// Window-length sweep on DGEMM.
	for _, l := range []int{5, 10, 20, 40, 80} {
		cfg := core.DefaultConfig()
		cfg.WindowLen = l
		jobs = append(jobs, campaign.Job{Kernel: hpcc.DGEMM, MemoryMB: dgemm, Scheme: migrate.AMPoM, AMPoM: cfg})
	}

	// Stride and cap sweeps on STREAM.
	stream := scaled(575, m.cfg.Scale)
	for _, d := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.DMax = d
		jobs = append(jobs, campaign.Job{Kernel: hpcc.STREAM, MemoryMB: stream, Scheme: migrate.AMPoM, AMPoM: cfg})
	}
	for _, cap := range []int{8, 32, 128, 512} {
		cfg := core.DefaultConfig()
		cfg.MaxPrefetch = cap
		jobs = append(jobs, campaign.Job{Kernel: hpcc.STREAM, MemoryMB: stream, Scheme: migrate.AMPoM, AMPoM: cfg})
	}

	return campaign.Dedupe(jobs)
}

// CampaignJobs enumerates the whole matrix: figures plus ablations.
func (m *Matrix) CampaignJobs() []campaign.Job {
	return campaign.Dedupe(append(m.FigureJobs(), m.AblationJobs()...))
}

// prewarm submits one batch unless an earlier submission already completed
// cleanly, so repeated calls (e.g. an explicit Prewarm followed by
// AllFigures) neither re-enqueue the matrix nor replay progress callbacks
// over pure cache hits.
func (m *Matrix) prewarm(warm *bool, jobs func() []campaign.Job) error {
	m.warmMu.Lock()
	defer m.warmMu.Unlock()
	if *warm {
		return nil
	}
	if _, err := m.eng.RunAll(jobs()); err != nil {
		return err
	}
	*warm = true
	return nil
}

// PrewarmFigures runs every figure experiment across the worker pool,
// aggregating failures into one error instead of stopping at the first.
func (m *Matrix) PrewarmFigures() error {
	return m.prewarm(&m.figuresWarm, m.FigureJobs)
}

// PrewarmAblations runs every ablation experiment across the worker pool.
func (m *Matrix) PrewarmAblations() error {
	return m.prewarm(&m.ablationsWarm, m.AblationJobs)
}

// Prewarm runs the full campaign matrix across the worker pool.
func (m *Matrix) Prewarm() error {
	if err := m.PrewarmFigures(); err != nil {
		return err
	}
	return m.PrewarmAblations()
}
