package harness

import (
	"fmt"

	"ampom/internal/campaign"
	"ampom/internal/hpcc"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
)

// Table1 reproduces the paper's Table 1: problem and memory sizes of the
// HPCC configurations (scaled by the campaign scale).
func (m *Matrix) Table1() *Table {
	t := &Table{
		Title:   "Table 1: Problem and memory sizes of HPCC",
		Caption: fmt.Sprintf("(scale 1/%d of the paper's configuration)", m.cfg.Scale),
		Header:  []string{"kernel", "problem size", "memory size (MB)"},
	}
	for _, k := range sortKernels() {
		for _, e := range m.entries(k) {
			t.Rows = append(t.Rows, []string{
				k.String(), fmt.Sprint(e.ProblemSize), fmt.Sprint(e.MemoryMB),
			})
		}
	}
	return t
}

// Figure4 reproduces the locality quadrants: measured spatial and temporal
// locality of each kernel's reference stream.
func (m *Matrix) Figure4() *Table {
	t := &Table{
		Title:   "Figure 4: HPCC kernels and localities",
		Caption: "measured page-level locality of the modelled kernels",
		Header:  []string{"kernel", "spatial score", "temporal score", "quadrant"},
	}
	for _, k := range sortKernels() {
		e := m.entries(k)[0]
		// Measure the exact stream the campaign simulates for this cell:
		// same entry shape and same derived seed as the engine's build.
		job := campaign.Job{Kernel: k, MemoryMB: e.MemoryMB}
		w := hpcc.MustBuild(hpcc.Entry{Kernel: k, ProblemSize: e.MemoryMB, MemoryMB: e.MemoryMB},
			m.eng.SeedFor(job))
		s, tmp := hpcc.Locality(w)
		quad := quadrant(s, tmp)
		t.Rows = append(t.Rows, []string{
			k.String(), fmt.Sprintf("%.3f", s), fmt.Sprintf("%.3f", tmp), quad,
		})
	}
	return t
}

func quadrant(spatial, temporal float64) string {
	sp := "low-spatial"
	if spatial >= 0.3 {
		sp = "high-spatial"
	}
	tm := "low-temporal"
	if temporal >= 0.45 {
		tm = "high-temporal"
	}
	return sp + "/" + tm
}

// Figure5 reproduces the migration freeze times of AMPoM, openMosix and
// NoPrefetch across all kernels and sizes.
func (m *Matrix) Figure5() *Table {
	t := &Table{
		Title:   "Figure 5: Migration latencies (freeze time, seconds)",
		Caption: "per kernel and program size; log-scale plot in the paper",
		Header:  []string{"kernel", "size (MB)", "AMPoM", "openMosix", "NoPrefetch"},
	}
	fe := netmodel.FastEthernet()
	for _, k := range sortKernels() {
		for _, mb := range m.sortedSizes(k) {
			am := m.run(k, mb, migrate.AMPoM, fe)
			om := m.run(k, mb, migrate.OpenMosix, fe)
			np := m.run(k, mb, migrate.NoPrefetch, fe)
			t.Rows = append(t.Rows, []string{
				k.String(), fmt.Sprint(mb),
				fmtSec(am.Freeze.Seconds()), fmtSec(om.Freeze.Seconds()), fmtSec(np.Freeze.Seconds()),
			})
		}
	}
	return t
}

// Figure6 reproduces the total execution times.
func (m *Matrix) Figure6() *Table {
	t := &Table{
		Title:   "Figure 6: Application performance (total execution time, seconds)",
		Caption: "init + freeze + post-migration execution",
		Header:  []string{"kernel", "size (MB)", "AMPoM", "openMosix", "NoPrefetch", "AMPoM vs oM", "NoPref vs oM"},
	}
	fe := netmodel.FastEthernet()
	for _, k := range sortKernels() {
		for _, mb := range m.sortedSizes(k) {
			am := m.run(k, mb, migrate.AMPoM, fe)
			om := m.run(k, mb, migrate.OpenMosix, fe)
			np := m.run(k, mb, migrate.NoPrefetch, fe)
			rel := func(r *migrate.Result) string {
				return fmtPct(100 * (r.Total.Seconds() - om.Total.Seconds()) / om.Total.Seconds())
			}
			t.Rows = append(t.Rows, []string{
				k.String(), fmt.Sprint(mb),
				fmtSec(am.Total.Seconds()), fmtSec(om.Total.Seconds()), fmtSec(np.Total.Seconds()),
				rel(am), rel(np),
			})
		}
	}
	return t
}

// Figure7 reproduces the page-fault-request counts of AMPoM vs NoPrefetch.
func (m *Matrix) Figure7() *Table {
	t := &Table{
		Title:   "Figure 7: Number of page fault requests",
		Caption: "demand requests reaching the home node; log-scale plot in the paper",
		Header:  []string{"kernel", "size (MB)", "AMPoM", "NoPrefetch", "prevented"},
	}
	fe := netmodel.FastEthernet()
	for _, k := range sortKernels() {
		for _, mb := range m.sortedSizes(k) {
			am := m.run(k, mb, migrate.AMPoM, fe)
			np := m.run(k, mb, migrate.NoPrefetch, fe)
			t.Rows = append(t.Rows, []string{
				k.String(), fmt.Sprint(mb),
				fmt.Sprint(am.HardFaults), fmt.Sprint(np.HardFaults),
				fmt.Sprintf("%.1f%%", 100*am.FaultPrevention(np.HardFaults)),
			})
		}
	}
	return t
}

// Figure8 reproduces the prefetch aggressiveness: pages prefetched per page
// fault request.
func (m *Matrix) Figure8() *Table {
	t := &Table{
		Title:   "Figure 8: Prefetched pages per page fault (request)",
		Caption: "AMPoM adapts aggressiveness to access pattern and paging rate",
		Header:  []string{"kernel", "size (MB)", "prefetched/request", "mean N", "mean S"},
	}
	fe := netmodel.FastEthernet()
	for _, k := range sortKernels() {
		for _, mb := range m.sortedSizes(k) {
			am := m.run(k, mb, migrate.AMPoM, fe)
			t.Rows = append(t.Rows, []string{
				k.String(), fmt.Sprint(mb),
				fmt.Sprintf("%.1f", am.PrefetchPerRequest),
				fmt.Sprintf("%.1f", am.MeanN),
				fmt.Sprintf("%.3f", am.MeanScore),
			})
		}
	}
	return t
}

// Figure9 reproduces the broadband adaptation experiment: execution time
// increase vs openMosix at 100 Mb/s and at tc-shaped 6 Mb/s / 2 ms.
func (m *Matrix) Figure9() *Table {
	t := &Table{
		Title:   "Figure 9: Adaptation to network performances",
		Caption: "% increase in execution time relative to openMosix on the same network",
		Header:  []string{"workload", "network", "AMPoM", "NoPrefetch"},
	}
	type cfg struct {
		k  hpcc.Kernel
		mb int64
	}
	cfgs := []cfg{
		{hpcc.DGEMM, scaled(115, m.cfg.Scale)},
		{hpcc.RandomAccess, scaled(129, m.cfg.Scale)},
	}
	for _, c := range cfgs {
		for _, net := range []netmodel.Profile{netmodel.FastEthernet(), netmodel.Broadband()} {
			om := m.run(c.k, c.mb, migrate.OpenMosix, net)
			am := m.run(c.k, c.mb, migrate.AMPoM, net)
			np := m.run(c.k, c.mb, migrate.NoPrefetch, net)
			rel := func(r *migrate.Result) string {
				return fmtPct(100 * (r.Total.Seconds() - om.Total.Seconds()) / om.Total.Seconds())
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%v(%dMB)", c.k, c.mb), net.Name, rel(am), rel(np),
			})
		}
	}
	return t
}

func scaled(mb, scale int64) int64 {
	v := mb / scale
	if v < 1 {
		v = 1
	}
	return v
}

// Figure10 reproduces the small-working-set experiment: modified DGEMM that
// allocates the full footprint but works on a subset.
func (m *Matrix) Figure10() *Table {
	alloc := scaled(575, m.cfg.Scale)
	t := &Table{
		Title:   "Figure 10: Process migration with smaller working sets",
		Caption: fmt.Sprintf("modified DGEMM: %d MB allocated, working set varies", alloc),
		Header:  []string{"working set (MB)", "openMosix", "AMPoM", "AMPoM/openMosix"},
	}
	for _, frac := range []int64{5, 4, 3, 2, 1} { // 1/5 .. full
		ws := alloc / frac
		if ws < 1 {
			ws = 1
		}
		om := m.runWorkingSet(alloc, ws, migrate.OpenMosix)
		am := m.runWorkingSet(alloc, ws, migrate.AMPoM)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ws),
			fmtSec(om.Total.Seconds()), fmtSec(am.Total.Seconds()),
			fmt.Sprintf("%.2f", am.Total.Seconds()/om.Total.Seconds()),
		})
	}
	return t
}

// runWorkingSet executes one §5.6 variant run through the campaign engine.
func (m *Matrix) runWorkingSet(alloc, ws int64, scheme migrate.Scheme) *migrate.Result {
	return m.mustRun(campaign.Job{Kernel: hpcc.DGEMM, MemoryMB: ws, AllocMB: alloc, Scheme: scheme})
}

// Figure11 reproduces the AMPoM analysis overhead: time spent determining
// the dependent zone as a percentage of execution time.
func (m *Matrix) Figure11() *Table {
	t := &Table{
		Title:   "Figure 11: Overheads of AMPoM",
		Caption: "dependent-zone analysis time as % of total execution time",
		Header:  []string{"kernel", "size (MB)", "overhead (%)"},
	}
	fe := netmodel.FastEthernet()
	for _, k := range sortKernels() {
		for _, mb := range m.sortedSizes(k) {
			am := m.run(k, mb, migrate.AMPoM, fe)
			t.Rows = append(t.Rows, []string{
				k.String(), fmt.Sprint(mb), fmt.Sprintf("%.3f", am.OverheadPct),
			})
		}
	}
	return t
}

// AllFigures renders every table and figure in paper order. The experiment
// matrix is prewarmed through the campaign worker pool first, so rendering
// only reads warm cache; per-job seeds make the output byte-identical for
// any worker count.
func (m *Matrix) AllFigures() []*Table {
	if err := m.PrewarmFigures(); err != nil {
		panic(err)
	}
	return []*Table{
		m.Table1(), m.Figure4(), m.Figure5(), m.Figure6(), m.Figure7(),
		m.Figure8(), m.Figure9(), m.Figure10(), m.Figure11(),
	}
}
