package harness

import (
	"strings"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/scenario"
)

// These tests extend the campaign determinism guarantee to cluster
// scenarios: the acceptance-scale preset (64 nodes / 256 processes) and the
// rest of the preset catalogue render byte-identically whatever the worker
// count, sequential vs parallel campaign execution included. `make ci` runs
// this file under the race detector too.

// renderScenarios runs every preset up to 128 nodes through one matrix and
// concatenates the rendered reports. The 512-node rack-farm preset is
// gated separately (a shrunk worker-identity test below, plus the
// BenchmarkFabric512 event-budget gate in `make ci`) so this test stays
// race-detector-sized.
func renderScenarios(t *testing.T, workers int) string {
	t.Helper()
	m := NewMatrix(Config{Scale: 16, Seed: 7, Workers: workers})
	var specs []scenario.Spec
	for _, s := range scenario.Presets() {
		if s.Nodes <= 128 {
			specs = append(specs, s)
		}
	}
	if len(specs) < 5 {
		t.Fatalf("only %d presets under 128 nodes — the preset catalogue shrank", len(specs))
	}
	reports, err := m.RunScenarios(specs)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.Render())
		b.WriteString("\n")
	}
	return b.String()
}

func TestScenarioGoldenAcrossWorkers(t *testing.T) {
	seq := renderScenarios(t, 1)
	par := renderScenarios(t, 8)
	if seq != par {
		t.Fatal("scenario reports differ between sequential and 8-way parallel execution")
	}
	rep := renderScenarios(t, 8)
	if par != rep {
		t.Fatal("scenario reports differ between repeated parallel runs")
	}
}

func TestScenarioGoldenAcceptancePreset(t *testing.T) {
	// The pinned 64-node / 256-process scenario, twice with the same seed.
	spec, err := scenario.Preset("hpc-farm")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 64 || spec.Procs != 256 {
		t.Fatalf("hpc-farm is %dn/%dp, want 64/256", spec.Nodes, spec.Procs)
	}
	a, err := NewMatrix(Config{Seed: 7, Workers: 4}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatrix(Config{Seed: 7, Workers: 1}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("equal-seed hpc-farm runs rendered different reports")
	}
}

// TestScenarioGoldenFivePolicyIO locks byte-identical rendered, JSON and
// CSV reports for a five-policy run across 1-way vs 8-way worker pools —
// the determinism hazard a map-ordered policy iteration would trip.
func TestScenarioGoldenFivePolicyIO(t *testing.T) {
	spec := scenario.Spec{
		Name:  "golden-five",
		Nodes: 6,
		Procs: 24,
		Skew:  0.7,
	}.Canonical()
	if len(spec.Policies) < 5 {
		t.Fatalf("canonical policy set %v has fewer than 5 policies", spec.Policies)
	}
	a, err := NewMatrix(Config{Seed: 7, Workers: 1}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatrix(Config{Seed: 7, Workers: 8}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("rendered reports differ between -j 1 and -j 8")
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatal("JSON reports differ between -j 1 and -j 8")
	}
	if a.CSV() != b.CSV() {
		t.Fatal("CSV reports differ between -j 1 and -j 8")
	}
	if len(a.Schemes) != len(spec.Policies) {
		t.Fatalf("report has %d rows for %d policies", len(a.Schemes), len(spec.Policies))
	}
	for i, st := range a.Schemes {
		if st.Policy != spec.Policies[i] {
			t.Fatalf("row %d is %q, want registry-sorted %q", i, st.Policy, spec.Policies[i])
		}
	}
}

// TestFabricGoldenAcrossWorkers locks j1 == j8 byte-identity for every
// fabric topology under every registered policy: rendered, JSON and CSV
// reports are identical whatever the worker count.
func TestFabricGoldenAcrossWorkers(t *testing.T) {
	for _, topo := range []string{"star", "two-tier", "flat"} {
		kind, err := fabric.ParseKind(topo)
		if err != nil {
			t.Fatal(err)
		}
		spec := scenario.Spec{
			Name:            "golden-" + topo,
			Nodes:           10,
			Procs:           40,
			Skew:            0.7,
			MeanFootprintMB: 32,
			Fabric:          scenario.FabricSpec{Topology: kind, RackSize: 4},
		}.Canonical()
		if len(spec.Policies) != len(scenario.DefaultPolicies()) {
			t.Fatalf("%s: spec runs %d policies, want the whole registry", topo, len(spec.Policies))
		}
		a, err := NewMatrix(Config{Seed: 7, Workers: 1}).RunScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewMatrix(Config{Seed: 7, Workers: 8}).RunScenario(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Fatalf("%s: rendered reports differ between -j 1 and -j 8", topo)
		}
		aj, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Fatalf("%s: JSON reports differ between -j 1 and -j 8", topo)
		}
		if a.CSV() != b.CSV() {
			t.Fatalf("%s: CSV reports differ between -j 1 and -j 8", topo)
		}
	}
}

// TestRackFarmShrunkAcrossWorkers drives the rack-farm preset's exact
// shape (two-tier fabric, slow tier, round-robin ranks) at test scale and
// locks worker-count byte-identity — the acceptance property of
// `ampom-cluster -scenario rack-farm -fabric two-tier -j 8`.
func TestRackFarmShrunkAcrossWorkers(t *testing.T) {
	spec, err := scenario.Preset("rack-farm")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 512 || spec.Procs != 2048 {
		t.Fatalf("rack-farm is %dn/%dp, want 512/2048", spec.Nodes, spec.Procs)
	}
	spec.Nodes, spec.Procs, spec.NodeMemMB = 64, 256, 0
	spec = spec.Canonical()
	a, err := NewMatrix(Config{Seed: 7, Workers: 1}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatrix(Config{Seed: 7, Workers: 8}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("shrunk rack-farm reports differ between -j 1 and -j 8")
	}
	am, ok := a.Scheme("AMPoM")
	if !ok {
		t.Fatal("no AMPoM row")
	}
	if am.Migrations == 0 {
		t.Fatal("rack-farm's slow tier triggered no migrations")
	}
	if len(am.TierUse) != 2 {
		t.Fatalf("rack-farm reports %d tiers, want edge+core", len(am.TierUse))
	}
}

func TestScenarioSeedChangesReport(t *testing.T) {
	spec, err := scenario.Preset("web-churn")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewMatrix(Config{Seed: 7}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMatrix(Config{Seed: 8}).RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() == b.Render() {
		t.Fatal("changing the matrix seed left the scenario report unchanged")
	}
}

func TestScenarioMemoisedInMatrix(t *testing.T) {
	m := NewMatrix(Config{Seed: 7, Workers: 4})
	spec, err := scenario.Preset("mpi-ranks")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunScenario(spec); err != nil {
		t.Fatal(err)
	}
	executed := m.Engine().Executed()
	tab, err := m.PresetScenarioTable("mpi-ranks")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(spec.Policies) {
		t.Fatalf("scenario table has %d rows, want %d", len(tab.Rows), len(spec.Policies))
	}
	if got := m.Engine().Executed(); got != executed {
		t.Fatalf("re-rendering a cached scenario executed %d extra simulations", got-executed)
	}
}
