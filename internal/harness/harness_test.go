package harness

import (
	"strconv"
	"strings"
	"testing"

	"ampom/internal/hpcc"
	"ampom/internal/netmodel"
)

// testMatrix runs at 1/16 scale so the whole suite stays fast.
func testMatrix() *Matrix { return NewMatrix(Config{Scale: 16, Seed: 7}) }

func cell(t *Table, row int, col string) string {
	for i, h := range t.Header {
		if h == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab := testMatrix().Table1()
	if len(tab.Rows) != 18 {
		t.Fatalf("rows = %d, want 18 (Table 1)", len(tab.Rows))
	}
	if tab.Rows[0][0] != "DGEMM" {
		t.Fatalf("first row = %v", tab.Rows[0])
	}
}

func TestFigure4Quadrants(t *testing.T) {
	tab := testMatrix().Figure4()
	got := map[string]string{}
	for i := range tab.Rows {
		got[tab.Rows[i][0]] = cell(tab, i, "quadrant")
	}
	if got["STREAM"] != "high-spatial/low-temporal" {
		t.Errorf("STREAM quadrant = %q", got["STREAM"])
	}
	if got["DGEMM"] != "high-spatial/high-temporal" {
		t.Errorf("DGEMM quadrant = %q", got["DGEMM"])
	}
	if got["RandomAccess"] != "low-spatial/low-temporal" {
		t.Errorf("RandomAccess quadrant = %q", got["RandomAccess"])
	}
	if !strings.HasSuffix(got["FFT"], "high-temporal") {
		t.Errorf("FFT quadrant = %q, want high-temporal", got["FFT"])
	}
}

func TestFigure5FreezeShapes(t *testing.T) {
	m := testMatrix()
	tab := m.Figure5()
	for i := range tab.Rows {
		am := parseF(t, cell(tab, i, "AMPoM"))
		om := parseF(t, cell(tab, i, "openMosix"))
		np := parseF(t, cell(tab, i, "NoPrefetch"))
		if !(np < am && am < om) {
			t.Fatalf("row %v: freeze ordering violated", tab.Rows[i])
		}
	}
	// openMosix freeze grows linearly with size within each kernel.
	var prevOM float64
	var prevKernel string
	for i := range tab.Rows {
		k := tab.Rows[i][0]
		om := parseF(t, cell(tab, i, "openMosix"))
		if k == prevKernel && om <= prevOM {
			t.Fatalf("openMosix freeze not growing: row %v", tab.Rows[i])
		}
		prevKernel, prevOM = k, om
	}
}

func TestFigure6Shapes(t *testing.T) {
	tab := testMatrix().Figure6()
	for i := range tab.Rows {
		amRel := parseF(t, cell(tab, i, "AMPoM vs oM"))
		npRel := parseF(t, cell(tab, i, "NoPref vs oM"))
		if npRel <= 0 {
			t.Fatalf("row %v: NoPrefetch must be slower than openMosix", tab.Rows[i])
		}
		if amRel >= npRel {
			t.Fatalf("row %v: AMPoM must beat NoPrefetch", tab.Rows[i])
		}
		if amRel > 25 || amRel < -40 {
			t.Fatalf("row %v: AMPoM vs openMosix out of band", tab.Rows[i])
		}
	}
}

func TestFigure7Prevention(t *testing.T) {
	tab := testMatrix().Figure7()
	for i := range tab.Rows {
		am := parseF(t, cell(tab, i, "AMPoM"))
		np := parseF(t, cell(tab, i, "NoPrefetch"))
		if am >= np {
			t.Fatalf("row %v: AMPoM must send fewer requests", tab.Rows[i])
		}
	}
}

func TestFigure8Ordering(t *testing.T) {
	m := testMatrix()
	tab := m.Figure8()
	// At the largest size, STREAM prefetches most aggressively and
	// RandomAccess least (Figure 8's ordering).
	last := map[string]float64{}
	for i := range tab.Rows {
		last[tab.Rows[i][0]] = parseF(t, cell(tab, i, "prefetched/request"))
	}
	if last["RandomAccess"] >= last["STREAM"] {
		t.Fatalf("RandomAccess %v not below STREAM %v", last["RandomAccess"], last["STREAM"])
	}
	if last["RandomAccess"] >= last["FFT"] {
		t.Fatalf("RandomAccess %v not below FFT %v", last["RandomAccess"], last["FFT"])
	}
}

func TestFigure9Shapes(t *testing.T) {
	tab := testMatrix().Figure9()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := range tab.Rows {
		am := parseF(t, cell(tab, i, "AMPoM"))
		np := parseF(t, cell(tab, i, "NoPrefetch"))
		if am >= np {
			t.Fatalf("row %v: AMPoM must outperform NoPrefetch", tab.Rows[i])
		}
	}
	// NoPrefetch degrades more on broadband than on fast ethernet.
	npFastDGEMM := parseF(t, cell(tab, 0, "NoPrefetch"))
	npSlowDGEMM := parseF(t, cell(tab, 1, "NoPrefetch"))
	if npSlowDGEMM <= npFastDGEMM {
		t.Fatalf("NoPrefetch DGEMM: %v on 6Mb/s not worse than %v on 100Mb/s", npSlowDGEMM, npFastDGEMM)
	}
}

func TestFigure10Shapes(t *testing.T) {
	tab := testMatrix().Figure10()
	// The AMPoM/openMosix ratio grows towards 1 as the working set grows.
	var prev float64 = -1
	for i := range tab.Rows {
		r := parseF(t, cell(tab, i, "AMPoM/openMosix"))
		if r <= prev {
			t.Fatalf("ratio not increasing: row %v", tab.Rows[i])
		}
		prev = r
	}
	first := parseF(t, cell(tab, 0, "AMPoM/openMosix"))
	if first > 0.6 {
		t.Fatalf("smallest working set ratio = %v, want ≪ 1 (§5.6)", first)
	}
}

func TestFigure11Overheads(t *testing.T) {
	tab := testMatrix().Figure11()
	for i := range tab.Rows {
		ov := parseF(t, cell(tab, i, "overhead (%)"))
		if ov < 0 || ov > 0.6 {
			t.Fatalf("row %v: overhead outside the paper's <0.6%% band", tab.Rows[i])
		}
	}
}

func TestAblationBaseline(t *testing.T) {
	tab := testMatrix().AblationBaseline()
	// Baseline off ⇒ more fault requests than the default.
	off := parseF(t, cell(tab, 0, "fault requests"))
	def := parseF(t, cell(tab, 2, "fault requests"))
	if off <= def {
		t.Fatalf("baseline off requests %v not above default %v", off, def)
	}
}

func TestAblationDMax(t *testing.T) {
	tab := testMatrix().AblationDMax()
	// Narrowing the stride search must never help: fault requests with
	// dmax = 1 are at least those with dmax = 4. (The batch-install
	// dynamics often degenerate STREAM's fault stream to stride-1 runs, so
	// the scores can coincide — the request count is the robust signal.)
	r1 := parseF(t, cell(tab, 0, "fault requests"))
	r4 := parseF(t, cell(tab, 2, "fault requests"))
	if r1 < r4 {
		t.Fatalf("dmax=1 requests %v below dmax=4 requests %v", r1, r4)
	}
	for i := range tab.Rows {
		s := parseF(t, cell(tab, i, "mean S"))
		if s < 0 || s > 1 {
			t.Fatalf("row %v: score out of range", tab.Rows[i])
		}
	}
}

func TestAblationCapMonotone(t *testing.T) {
	tab := testMatrix().AblationCap()
	// A tighter cap means more fault requests.
	prev := -1.0
	for i := len(tab.Rows) - 1; i >= 0; i-- { // descending cap order
		req := parseF(t, cell(tab, i, "fault requests"))
		if prev >= 0 && req < prev {
			t.Fatalf("requests not monotone in cap: %v", tab.Rows)
		}
		prev = req
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tab.Render()
	if !strings.Contains(out, "a    bb") && !strings.Contains(out, "a  ") {
		t.Fatalf("render = %q", out)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Fatalf("csv = %q", csv)
	}
}

func TestAllFiguresComplete(t *testing.T) {
	m := testMatrix()
	figs := m.AllFigures()
	if len(figs) != 9 {
		t.Fatalf("figures = %d, want 9", len(figs))
	}
	for _, f := range figs {
		if len(f.Rows) == 0 {
			t.Fatalf("figure %q empty", f.Title)
		}
		if out := f.Render(); len(out) == 0 {
			t.Fatalf("figure %q renders empty", f.Title)
		}
	}
}

func TestMatrixMemoisation(t *testing.T) {
	m := testMatrix()
	a := m.run(hpcc.STREAM, 10, 2, fe())
	b := m.run(hpcc.STREAM, 10, 2, fe())
	if a != b {
		t.Fatal("matrix did not memoise")
	}
}

func fe() netmodel.Profile { return netmodel.FastEthernet() }
