// Package sim implements a sequential discrete-event simulation engine.
//
// The engine advances a virtual clock from event to event; callbacks run to
// completion and may schedule further events. All model components (network
// links, CPUs, processes, daemons) share one Engine, which makes the whole
// simulation single-threaded and deterministic: given the same seed and the
// same model, two runs produce bit-identical schedules.
package sim

import (
	"fmt"

	"ampom/internal/eventq"
	"ampom/internal/simtime"
)

// Engine is a discrete-event scheduler. Create one with New.
type Engine struct {
	now     simtime.Time
	queue   eventq.Queue
	running bool
	stopped bool

	// curPushed is the PushedAt of the event currently executing — the
	// instant its scheduling logically happened. The shard barrier reads it
	// to carry one more level of causal history across engines: when two
	// staged events tie on (firing, staging) instants, the sequential
	// engine would have ordered them by when their staging callbacks were
	// themselves scheduled.
	curPushed simtime.Time

	// Processed counts events executed since creation; useful for loop
	// detection in tests and for reporting.
	Processed uint64

	// MaxEvents aborts the run (with a panic describing the leak) when more
	// than this many events execute, guarding against runaway models.
	// Zero means no limit.
	MaxEvents uint64
}

// New returns an Engine with the clock at the epoch.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() simtime.Time { return e.now }

// Pending returns the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return e.queue.Len() }

// NextAt returns the firing instant of the earliest pending event, and
// whether one exists. The window scheduler uses it to compute conservative
// horizons without disturbing the queue.
func (e *Engine) NextAt() (simtime.Time, bool) {
	if ev := e.queue.Peek(); ev != nil {
		return ev.At, true
	}
	return 0, false
}

// AdvanceTo moves the clock forward to t without running anything; instants
// not after the current time are ignored. Run stops advancing when its
// queue drains, so a coordinator driving several engines through shared
// windows uses this to keep the clocks aligned at each window edge.
func (e *Engine) AdvanceTo(t simtime.Time) {
	if t > e.now {
		e.now = t
	}
}

// Interrupted reports whether the most recent Run returned because Stop
// was called (as opposed to draining the queue or reaching the horizon).
func (e *Engine) Interrupted() bool { return e.stopped }

// Schedule runs fn after delay d. A negative delay is treated as zero
// (fire as soon as possible, after already-pending events at the current
// instant). The returned handle can be passed to Cancel.
func (e *Engine) Schedule(d simtime.Duration, fn func()) *eventq.Event {
	if d < 0 {
		d = 0
	}
	return e.queue.Push(e.now.Add(d), e.now, fn)
}

// At schedules fn at the absolute instant t. Instants in the past are
// clamped to the current time.
func (e *Engine) At(t simtime.Time, fn func()) *eventq.Event {
	if t < e.now {
		t = e.now
	}
	return e.queue.Push(t, e.now, fn)
}

// AtPushed schedules fn at the absolute instant t recording pushedAt — an
// earlier virtual instant at which the scheduling logically happened — as
// its tie-break rank. The shard barrier uses it to inject events staged by
// other engines into the exact slot a sequential push at pushedAt would
// have occupied.
func (e *Engine) AtPushed(t, pushedAt simtime.Time, fn func()) *eventq.Event {
	if t < e.now {
		t = e.now
	}
	return e.queue.Push(t, pushedAt, fn)
}

// Cancel prevents a scheduled event from firing. It is safe to cancel an
// event that already fired.
func (e *Engine) Cancel(ev *eventq.Event) { e.queue.Cancel(ev) }

// Stop makes the current Run return after the executing callback finishes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, Stop is called,
// or the next event would fire after the until instant. It returns the
// virtual time at which it stopped. Use simtime.Never to run to quiescence.
func (e *Engine) Run(until simtime.Time) simtime.Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		next := e.queue.Peek()
		if next == nil {
			break
		}
		if next.At > until {
			// Do not advance the clock past the horizon.
			if until > e.now {
				e.now = until
			}
			return e.now
		}
		ev := e.queue.Pop()
		if ev.At > e.now {
			e.now = ev.At
		}
		e.curPushed = ev.PushedAt
		fn := ev.Fn
		ev.Fn = nil
		if fn != nil {
			fn()
		}
		e.Processed++
		if e.MaxEvents != 0 && e.Processed > e.MaxEvents {
			panic(fmt.Sprintf("sim: event budget exceeded (%d events, t=%v)", e.Processed, e.now))
		}
	}
	return e.now
}

// step pops and runs the earliest pending event, advancing the clock to
// its firing instant — one iteration of Run's loop, for a coordinator
// interleaving several engines at a shared instant. The caller has
// checked the queue is non-empty and the event is within its horizon.
func (e *Engine) step() {
	ev := e.queue.Pop()
	if ev.At > e.now {
		e.now = ev.At
	}
	e.curPushed = ev.PushedAt
	fn := ev.Fn
	ev.Fn = nil
	if fn != nil {
		fn()
	}
	e.Processed++
	if e.MaxEvents != 0 && e.Processed > e.MaxEvents {
		panic(fmt.Sprintf("sim: event budget exceeded (%d events, t=%v)", e.Processed, e.now))
	}
}

// RunAll executes events until the queue is empty and returns the final
// virtual time.
func (e *Engine) RunAll() simtime.Time { return e.Run(simtime.Never) }

// Timer is a cancellable, re-armable one-shot timer bound to an engine.
// The zero value is unusable; create with NewTimer.
type Timer struct {
	eng *Engine
	ev  *eventq.Event
	fn  func()
}

// NewTimer returns a timer that runs fn when it expires.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// Arm (re)schedules the timer d from now, cancelling any earlier schedule.
func (t *Timer) Arm(d simtime.Duration) {
	t.Disarm()
	t.ev = t.eng.Schedule(d, func() {
		t.ev = nil
		t.fn()
	})
}

// Disarm cancels the pending expiry, if any.
func (t *Timer) Disarm() {
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}

// Armed reports whether the timer has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil }

// Ticker repeatedly invokes a callback at a fixed virtual period until
// stopped.
type Ticker struct {
	eng    *Engine
	period simtime.Duration
	ev     *eventq.Event
	fn     func()
}

// NewTicker creates and starts a ticker with the given period. The first
// tick fires one period from now. A non-positive period panics.
func NewTicker(eng *Engine, period simtime.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{eng: eng, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.eng.Schedule(t.period, func() {
		t.schedule()
		t.fn()
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}
