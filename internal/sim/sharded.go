// Conservative parallel discrete-event execution: a ShardGroup advances
// several shard engines plus one global (coordinator) engine through
// shared lookahead windows, the window-barrier variant of null-message
// PDES. Each shard owns a disjoint slice of the model and may run
// concurrently with its peers inside a window; everything cross-shard is
// staged through the group and injected at the next barrier in a
// deterministic order, so a sharded run reproduces the sequential
// schedule event for event.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ampom/internal/simtime"
)

// GlobalShard addresses the coordinator engine in Stage calls.
const GlobalShard = -1

// stagedEvent is one cross-shard callback waiting for the next barrier.
type stagedEvent struct {
	at       simtime.Time
	stagedAt simtime.Time // staging shard's clock at the Stage call
	parentAt simtime.Time // PushedAt of the event whose callback staged this
	rank     uint64       // caller-supplied origination rank; breaks remaining ties
	src      int          // staging shard; part of the deterministic merge order
	dst      int          // destination shard, or GlobalShard
	fn       func()
}

// ShardGroup coordinates shard engines under conservative lookahead
// windows.
//
// The synchronisation protocol per window: let T be the earliest pending
// event across every engine, G the global engine's earliest event, and L
// the lookahead (the minimum cross-shard propagation latency — no shard
// can affect another sooner than L after acting). The window edge is
// E = min(T+L, G, horizon). Every shard runs its events with At <= E in
// parallel (shards cannot interact inside the window: anything they stage
// lands strictly after E, because staged arrivals pay L on top of a
// strictly positive serialisation delay). At the barrier the staged
// events are injected carrying their staging instants as PushedAt, so the
// destination queue orders them exactly where a sequential push at that
// instant would have landed. Global events are full synchronisation
// points (they may touch any shard's state), which is why E never passes
// G; when the edge carries global events the shards stop strictly short
// of it and the coincident instant executes single-threaded, interleaving
// global and shard events by scheduling time — reproducing the sequential
// engine's insertion-order tie-break.
type ShardGroup struct {
	// Global is the coordinator engine: events that read or write state
	// spanning shards (scheduler ticks, balancing, migrations) live here.
	Global *Engine
	// Shards are the per-partition engines, each owning a disjoint model
	// slice.
	Shards []*Engine

	lookahead simtime.Duration
	parallel  bool
	inMerge   bool // executing a coincident instant single-threaded

	// outbox[src] is written only by shard src's worker during a window;
	// the barrier drains every outbox single-threaded.
	outbox  [][]stagedEvent
	pending []stagedEvent

	// work[i] feeds window edges to shard i's persistent worker goroutine;
	// winWG is the per-window barrier. Workers start at the first parallel
	// Run and stop when it returns — one goroutine per shard per run, not
	// one per shard per window.
	work  []chan simtime.Time
	winWG sync.WaitGroup

	// Occupancy counters (see Stats). windows/globalSync/staged are
	// deterministic; shardBusy is wall-clock nanoseconds, written only by
	// shard i's worker inside a window and read only after the barrier.
	windows      uint64
	globalSync   uint64
	staged       uint64
	shardWindows []uint64
	shardBusy    []int64
}

// GroupStats is the occupancy picture of one sharded run — how the
// conservative window protocol actually spent its time. Windows counts
// lookahead windows advanced; GlobalSyncWindows the subset whose edge
// carried global events (the single-threaded coincident instants);
// StagedEvents the cross-shard events injected at barriers. Those three
// are deterministic. ShardWindows[i] counts windows in which shard i had
// work, ShardEvents[i] its processed events, and ShardBusy[i] the
// wall-clock time its worker spent executing window phases (measured only
// under goroutine workers; zero when windows run inline). Execution
// telemetry, never model output: nothing here may feed back into the
// simulation or its reports' byte surface.
type GroupStats struct {
	Windows           uint64
	GlobalSyncWindows uint64
	StagedEvents      uint64
	GlobalEvents      uint64
	ShardWindows      []uint64
	ShardEvents       []uint64
	ShardBusy         []time.Duration
}

// NewShardGroup assembles a group over the given engines. The lookahead
// must be positive — it is the correctness bound that lets shards run a
// window unsynchronised. parallel selects goroutine-per-shard execution
// inside windows; sequential execution of the same windows is
// byte-identical (the tests' lever for exercising both paths).
func NewShardGroup(global *Engine, shards []*Engine, lookahead simtime.Duration, parallel bool) *ShardGroup {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive shard lookahead %v", lookahead))
	}
	if global == nil || len(shards) == 0 {
		panic("sim: shard group needs a global engine and at least one shard")
	}
	return &ShardGroup{
		Global:       global,
		Shards:       shards,
		lookahead:    lookahead,
		parallel:     parallel,
		outbox:       make([][]stagedEvent, len(shards)),
		shardWindows: make([]uint64, len(shards)),
		shardBusy:    make([]int64, len(shards)),
	}
}

// Lookahead returns the group's conservative window bound.
func (g *ShardGroup) Lookahead() simtime.Duration { return g.lookahead }

// Stage schedules fn at instant at on shard dst (or the global engine,
// dst == GlobalShard) from within shard src's current window. The call is
// safe from src's worker goroutine; the event is injected at the next
// barrier with src's current clock as its scheduling instant, so it sorts
// against the destination's own events exactly as a sequential push at
// this moment would. Equal (at, scheduling instant) pairs resolve the
// way the sequential engine would have ordered the staging callbacks
// themselves — by the instant each callback was scheduled — then by
// rank, an origination order the caller threads through causal chains
// that march in lockstep (the fabric stamps it on each envelope), then
// by (src, staging order).
func (g *ShardGroup) Stage(src, dst int, at simtime.Time, rank uint64, fn func()) {
	sh := g.Shards[src]
	g.outbox[src] = append(g.outbox[src], stagedEvent{at: at, stagedAt: sh.Now(), parentAt: sh.curPushed, rank: rank, src: src, dst: dst, fn: fn})
}

// InMerge reports whether the group is executing a coincident instant
// single-threaded (the global-synchronisation phase of a window). Model
// code uses it to pick a shared origination-rank counter over per-shard
// ones: during the merge there is exactly one writer anywhere, outside it
// exactly one writer per shard. Reads from shard workers are safe — the
// flag only changes while no worker runs.
func (g *ShardGroup) InMerge() bool { return g.inMerge }

// flush injects every staged event into its destination engine in the
// deterministic merge order. Runs single-threaded at the barrier.
func (g *ShardGroup) flush() {
	n := 0
	for _, ob := range g.outbox {
		n += len(ob)
	}
	if n == 0 {
		return
	}
	g.staged += uint64(n)
	g.pending = g.pending[:0]
	for i, ob := range g.outbox {
		g.pending = append(g.pending, ob...)
		g.outbox[i] = g.outbox[i][:0]
	}
	// Stable on (at, stagedAt, parentAt, rank, src): entries of one shard
	// keep their staging order; cross-shard ties resolve by the staging
	// callbacks' own scheduling instants (the order one engine would have
	// run them in), then by origination rank, then by shard index. The
	// destination queue orders by (At, PushedAt) anyway, so this injection
	// order only breaks exact scheduling-instant ties — the documented
	// contract.
	sort.SliceStable(g.pending, func(i, j int) bool {
		a, b := g.pending[i], g.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.stagedAt != b.stagedAt {
			return a.stagedAt < b.stagedAt
		}
		if a.parentAt != b.parentAt {
			return a.parentAt < b.parentAt
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.src < b.src
	})
	for _, ev := range g.pending {
		if ev.dst == GlobalShard {
			g.Global.AtPushed(ev.at, ev.stagedAt, ev.fn)
		} else {
			g.Shards[ev.dst].AtPushed(ev.at, ev.stagedAt, ev.fn)
		}
	}
}

// Run executes the group until every queue drains, the global engine's
// Stop is called, or the next window would open past the horizon. It
// returns the virtual time at which it stopped, mirroring Engine.Run.
func (g *ShardGroup) Run(horizon simtime.Time) simtime.Time {
	if g.parallel {
		g.startWorkers()
		defer g.stopWorkers()
	}
	for {
		g.flush()

		// T: the earliest pending event anywhere; G caps the window at the
		// next global synchronisation point.
		var t simtime.Time
		have := false
		for _, sh := range g.Shards {
			if at, ok := sh.NextAt(); ok && (!have || at < t) {
				t, have = at, true
			}
		}
		gAt, gOK := g.Global.NextAt()
		if gOK && (!have || gAt < t) {
			t, have = gAt, true
		}
		if !have {
			// Drained. The sequential engine's clock rests at the last
			// event it ran; the group equivalent is the furthest clock.
			end := g.Global.Now()
			for _, sh := range g.Shards {
				if n := sh.Now(); n > end {
					end = n
				}
			}
			return end
		}
		if t > horizon {
			g.Global.AdvanceTo(horizon)
			for _, sh := range g.Shards {
				sh.AdvanceTo(horizon)
			}
			return horizon
		}

		e := t + simtime.Time(g.lookahead)
		if gOK && gAt < e {
			e = gAt
		}
		if e > horizon {
			e = horizon
		}

		g.windows++
		if gOK && gAt <= e {
			// The edge carries global events (e == gAt). Shards run strictly
			// short of it in parallel, every clock advances onto it, and the
			// coincident instant executes single-threaded with global and
			// shard events interleaved by scheduling time — the order the
			// sequential engine's insertion sequence would have produced.
			g.globalSync++
			g.runShards(e - 1)
			for _, sh := range g.Shards {
				sh.AdvanceTo(e)
			}
			g.Global.AdvanceTo(e)
			g.runInstant(e)
			if g.Global.Interrupted() {
				// Mirror Engine.Run's Stop contract: report the stop event's
				// instant, not the window edge.
				return g.Global.Now()
			}
		} else {
			g.runShards(e)
			for _, sh := range g.Shards {
				sh.AdvanceTo(e)
			}
			g.Global.AdvanceTo(e)
		}
	}
}

// runInstant executes every event firing at exactly instant t, across the
// global engine and all shards, in ascending scheduling-time order — ties
// resolve shards-first, then by shard index. Events a callback schedules
// at t join the same interleave. Runs single-threaded: global events may
// touch any shard's state, and the coincident instant is exactly where
// that contact happens.
func (g *ShardGroup) runInstant(t simtime.Time) {
	g.Global.stopped = false
	g.inMerge = true
	defer func() { g.inMerge = false }()
	for {
		var best *Engine
		var bestPushed simtime.Time
		for _, sh := range g.Shards {
			if ev := sh.queue.Peek(); ev != nil && ev.At == t {
				if best == nil || ev.PushedAt < bestPushed {
					best, bestPushed = sh, ev.PushedAt
				}
			}
		}
		isGlobal := false
		if ev := g.Global.queue.Peek(); ev != nil && ev.At == t {
			if best == nil || ev.PushedAt < bestPushed {
				best, bestPushed, isGlobal = g.Global, ev.PushedAt, true
			}
		}
		if best == nil {
			return
		}
		best.step()
		if isGlobal && g.Global.stopped {
			return
		}
	}
}

// startWorkers launches one persistent goroutine per shard, fed window
// edges over its channel. Each worker times its phase with the wall clock
// (the busy figure Stats reports) and signals the window barrier when its
// shard's queue reaches the edge.
func (g *ShardGroup) startWorkers() {
	g.work = make([]chan simtime.Time, len(g.Shards))
	for i := range g.Shards {
		ch := make(chan simtime.Time, 1)
		g.work[i] = ch
		go func(i int, ch chan simtime.Time) {
			for e := range ch {
				t0 := time.Now()
				g.Shards[i].Run(e)
				g.shardBusy[i] += int64(time.Since(t0))
				g.winWG.Done()
			}
		}(i, ch)
	}
}

// stopWorkers retires the worker pool; every worker is idle between
// windows (the barrier guarantees it), so closing the channels suffices.
func (g *ShardGroup) stopWorkers() {
	for _, ch := range g.work {
		close(ch)
	}
	g.work = nil
}

// runShards executes one window's shard phase: every shard with work at or
// before the window edge runs, on its persistent worker when the group is
// parallel.
func (g *ShardGroup) runShards(e simtime.Time) {
	if !g.parallel {
		for i, sh := range g.Shards {
			if at, ok := sh.NextAt(); ok && at <= e {
				g.shardWindows[i]++
				sh.Run(e)
			}
		}
		return
	}
	for i, sh := range g.Shards {
		if at, ok := sh.NextAt(); ok && at <= e {
			g.shardWindows[i]++
			g.winWG.Add(1)
			g.work[i] <- e
		}
	}
	g.winWG.Wait()
}

// Stats snapshots the group's occupancy counters. Call it between Runs or
// after one returns — the window barrier is what orders the workers'
// busy-time writes before this read.
func (g *ShardGroup) Stats() GroupStats {
	s := GroupStats{
		Windows:           g.windows,
		GlobalSyncWindows: g.globalSync,
		StagedEvents:      g.staged,
		GlobalEvents:      g.Global.Processed,
		ShardWindows:      append([]uint64(nil), g.shardWindows...),
		ShardEvents:       make([]uint64, len(g.Shards)),
		ShardBusy:         make([]time.Duration, len(g.Shards)),
	}
	for i, sh := range g.Shards {
		s.ShardEvents[i] = sh.Processed
		s.ShardBusy[i] = time.Duration(g.shardBusy[i])
	}
	return s
}

// Processed sums executed events across the global engine and every
// shard — the figure a sequential run reports as Engine.Processed.
func (g *ShardGroup) Processed() uint64 {
	total := g.Global.Processed
	for _, sh := range g.Shards {
		total += sh.Processed
	}
	return total
}
