package sim

import (
	"testing"

	"ampom/internal/simtime"
)

func TestScheduleAdvancesClock(t *testing.T) {
	e := New()
	var fired simtime.Time
	e.Schedule(5*simtime.Second, func() { fired = e.Now() })
	end := e.RunAll()
	if fired != simtime.Time(5*simtime.Second) {
		t.Fatalf("fired at %v, want 5s", fired)
	}
	if end != fired {
		t.Fatalf("end = %v, want %v", end, fired)
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3*simtime.Second, func() { order = append(order, 3) })
	e.Schedule(1*simtime.Second, func() { order = append(order, 1) })
	e.Schedule(2*simtime.Second, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(simtime.Second, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var depth3 simtime.Time
	e.Schedule(simtime.Second, func() {
		e.Schedule(simtime.Second, func() {
			e.Schedule(simtime.Second, func() { depth3 = e.Now() })
		})
	})
	e.RunAll()
	if depth3 != simtime.Time(3*simtime.Second) {
		t.Fatalf("nested event at %v, want 3s", depth3)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(-simtime.Second, func() { fired = true })
	e.RunAll()
	if !fired {
		t.Fatal("negative-delay event never fired")
	}
	if e.Now() != 0 {
		t.Fatalf("clock = %v, want 0", e.Now())
	}
}

func TestAtClampsPast(t *testing.T) {
	e := New()
	e.Schedule(2*simtime.Second, func() {
		e.At(simtime.Time(simtime.Second), func() {
			if e.Now() != simtime.Time(2*simtime.Second) {
				t.Errorf("past-scheduled event at %v, want clamped to 2s", e.Now())
			}
		})
	})
	e.RunAll()
}

func TestRunUntilHorizon(t *testing.T) {
	e := New()
	var fired []simtime.Time
	for i := 1; i <= 5; i++ {
		d := simtime.Duration(i) * simtime.Second
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	end := e.Run(simtime.Time(3 * simtime.Second))
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3", len(fired))
	}
	if end != simtime.Time(3*simtime.Second) {
		t.Fatalf("end = %v, want 3s", end)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.RunAll()
	if len(fired) != 5 {
		t.Fatalf("fired %d total, want 5", len(fired))
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(simtime.Duration(i)*simtime.Second, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 4 {
		t.Fatalf("processed %d events, want 4 (Stop ignored?)", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(simtime.Second, func() { fired = true })
	e.Cancel(ev)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := New()
	e.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		e.RunAll()
	})
	e.RunAll()
}

func TestMaxEventsGuard(t *testing.T) {
	e := New()
	e.MaxEvents = 100
	var loop func()
	loop = func() { e.Schedule(simtime.Second, loop) }
	e.Schedule(simtime.Second, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway loop did not trip MaxEvents")
		}
	}()
	e.RunAll()
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(simtime.Second, func() {})
	}
	e.RunAll()
	if e.Processed != 7 {
		t.Fatalf("Processed = %d, want 7", e.Processed)
	}
}

func TestRunHorizonAdvancesClockWithoutEvents(t *testing.T) {
	e := New()
	end := e.Run(simtime.Time(10 * simtime.Second))
	// No events: Run drains immediately and the clock stays at 0 (nothing
	// forced it forward), since quiescence ends the run.
	if end != 0 {
		t.Fatalf("end = %v, want 0 for empty queue", end)
	}
	e.Schedule(20*simtime.Second, func() {})
	end = e.Run(simtime.Time(10 * simtime.Second))
	if end != simtime.Time(10*simtime.Second) {
		t.Fatalf("end = %v, want horizon 10s", end)
	}
	if e.Pending() != 1 {
		t.Fatal("event beyond horizon should stay pending")
	}
}

func TestTimer(t *testing.T) {
	e := New()
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Arm(simtime.Second)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	e.RunAll()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if tm.Armed() {
		t.Fatal("timer should disarm after firing")
	}
}

func TestTimerRearmReplaces(t *testing.T) {
	e := New()
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Arm(simtime.Second)
	tm.Arm(2 * simtime.Second) // replaces the first schedule
	e.RunAll()
	if fires != 1 {
		t.Fatalf("fires = %d, want 1 (re-arm must cancel previous)", fires)
	}
	if e.Now() != simtime.Time(2*simtime.Second) {
		t.Fatalf("fired at %v, want 2s", e.Now())
	}
}

func TestTimerDisarm(t *testing.T) {
	e := New()
	fires := 0
	tm := NewTimer(e, func() { fires++ })
	tm.Arm(simtime.Second)
	tm.Disarm()
	e.RunAll()
	if fires != 0 {
		t.Fatal("disarmed timer fired")
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []simtime.Time
	var tk *Ticker
	tk = NewTicker(e, simtime.Second, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tk.Stop()
		}
	})
	e.RunAll()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3", ticks)
	}
	for i, at := range ticks {
		want := simtime.Time(simtime.Duration(i+1) * simtime.Second)
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	NewTicker(New(), 0, func() {})
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() []simtime.Time {
		e := New()
		var log []simtime.Time
		var recurse func(depth int)
		recurse = func(depth int) {
			log = append(log, e.Now())
			if depth < 50 {
				e.Schedule(simtime.Duration(depth+1)*simtime.Millisecond, func() { recurse(depth + 1) })
				e.Schedule(simtime.Duration(depth+2)*simtime.Millisecond, func() { log = append(log, e.Now()) })
			}
		}
		e.Schedule(0, func() { recurse(0) })
		e.RunAll()
		return log
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
