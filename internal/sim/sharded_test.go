package sim

import (
	"reflect"
	"sync"
	"testing"

	"ampom/internal/simtime"
)

func newTestGroup(shards int, parallel bool) *ShardGroup {
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = New()
	}
	return NewShardGroup(New(), engines, simtime.Millisecond, parallel)
}

func TestShardGroupDrainsAllEngines(t *testing.T) {
	g := newTestGroup(2, false)
	var got []string
	g.Shards[0].At(simtime.Time(1*simtime.Millisecond), func() { got = append(got, "s0@1ms") })
	g.Shards[1].At(simtime.Time(2*simtime.Millisecond), func() { got = append(got, "s1@2ms") })
	g.Global.At(simtime.Time(3*simtime.Millisecond), func() { got = append(got, "g@3ms") })

	end := g.Run(simtime.Never)
	want := []string{"s0@1ms", "s1@2ms", "g@3ms"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if end != simtime.Time(3*simtime.Millisecond) {
		t.Fatalf("end = %v, want 3ms", end)
	}
	if g.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3", g.Processed())
	}
}

func TestShardGroupGlobalCapsWindow(t *testing.T) {
	// A global event inside a shard's lookahead window must run before the
	// shard events that follow it, even though the shard had earlier work.
	g := newTestGroup(1, false)
	var got []string
	at := func(us int64) simtime.Time { return simtime.Time(simtime.Duration(us) * simtime.Microsecond) }
	g.Shards[0].At(at(100), func() { got = append(got, "shard@100us") })
	g.Global.At(at(500), func() { got = append(got, "global@500us") })
	g.Shards[0].At(at(700), func() { got = append(got, "shard@700us") })

	g.Run(simtime.Never)
	want := []string{"shard@100us", "global@500us", "shard@700us"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestShardGroupShardsFirstAtGlobalInstant(t *testing.T) {
	// At a coincident instant the shard event runs in the shard phase,
	// before the global event — the documented tie-break.
	g := newTestGroup(1, false)
	var got []string
	at := simtime.Time(5 * simtime.Millisecond)
	g.Global.At(at, func() { got = append(got, "global") })
	g.Shards[0].At(at, func() { got = append(got, "shard") })

	g.Run(simtime.Never)
	want := []string{"shard", "global"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestShardGroupStageMergeOrder(t *testing.T) {
	// Staged events landing at one instant from stagings at one instant are
	// injected at the barrier ordered by (src, staging order), regardless of
	// the order shards staged them in; firing time dominates everything.
	g := newTestGroup(3, false)
	var got []string
	at := func(us int64) simtime.Time { return simtime.Time(simtime.Duration(us) * simtime.Microsecond) }

	// Everything lands on shard 1 so the insertion (Seq) order is the
	// observable order. Both stagers act at the same instant (10us), so the
	// scheduling-time rank ties and the lower source shard must insert
	// first; shard 2 staging first in wall order must not matter.
	g.Shards[2].At(at(10), func() {
		g.Stage(2, 1, at(5000), 0, func() { got = append(got, "src2@5ms") })
		g.Stage(2, 1, at(2000), 0, func() { got = append(got, "src2@2ms") })
	})
	g.Shards[0].At(at(10), func() {
		g.Stage(0, 1, at(5000), 0, func() { got = append(got, "src0@5ms-a") })
		g.Stage(0, 1, at(5000), 0, func() { got = append(got, "src0@5ms-b") })
		g.Stage(0, GlobalShard, at(9000), 0, func() { got = append(got, "src0@9ms-global") })
	})

	g.Run(simtime.Never)
	want := []string{"src2@2ms", "src0@5ms-a", "src0@5ms-b", "src2@5ms", "src0@9ms-global"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestShardGroupStageSchedulingTimeDominates(t *testing.T) {
	// Two stagings for the same firing instant from different shard clocks:
	// the earlier staging wins, whatever the source index — exactly the
	// order one sequential engine's insertion sequence would have produced.
	// A destination-local event pushed between the two staging instants
	// slots between them for the same reason.
	g := newTestGroup(3, false)
	var got []string
	at := func(us int64) simtime.Time { return simtime.Time(simtime.Duration(us) * simtime.Microsecond) }

	land := at(5000)
	g.Shards[2].At(at(10), func() {
		g.Stage(2, 1, land, 0, func() { got = append(got, "staged-by-2@10us") })
	})
	g.Shards[1].At(at(20), func() {
		g.Shards[1].At(land, func() { got = append(got, "local@20us") })
	})
	g.Shards[0].At(at(30), func() {
		g.Stage(0, 1, land, 0, func() { got = append(got, "staged-by-0@30us") })
	})

	g.Run(simtime.Never)
	want := []string{"staged-by-2@10us", "local@20us", "staged-by-0@30us"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestShardGroupCoincidentInstantInterleavesBySchedulingTime(t *testing.T) {
	// At an instant shared by global and shard events, execution follows
	// the scheduling time of each event — the sequential engine's insertion
	// order — not a blanket shards-first rule: a tick armed long ago beats
	// a recently scheduled shard event, and an old shard timer beats a
	// recently armed global one.
	g := newTestGroup(1, false)
	var got []string
	at := func(ms int64) simtime.Time { return simtime.Time(simtime.Duration(ms) * simtime.Millisecond) }

	g.Global.At(at(10), func() { got = append(got, "global-armed@0") })
	g.Shards[0].At(at(20), func() { got = append(got, "shard-armed@0") })
	g.Shards[0].At(at(2), func() {
		g.Shards[0].At(at(10), func() { got = append(got, "shard-armed@2ms") })
	})
	g.Global.At(at(5), func() {
		g.Global.At(at(20), func() { got = append(got, "global-armed@5ms") })
	})

	g.Run(simtime.Never)
	want := []string{"global-armed@0", "shard-armed@2ms", "shard-armed@0", "global-armed@5ms"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestShardGroupHorizonAdvancesClocks(t *testing.T) {
	g := newTestGroup(2, false)
	horizon := simtime.Time(10 * simtime.Millisecond)
	g.Shards[0].At(simtime.Time(20*simtime.Millisecond), func() { t.Fatal("ran past horizon") })

	if end := g.Run(horizon); end != horizon {
		t.Fatalf("end = %v, want %v", end, horizon)
	}
	for i, sh := range g.Shards {
		if sh.Now() != horizon {
			t.Fatalf("shard %d clock = %v, want %v", i, sh.Now(), horizon)
		}
	}
	if g.Global.Now() != horizon {
		t.Fatalf("global clock = %v, want %v", g.Global.Now(), horizon)
	}
	if g.Shards[0].Pending() != 1 {
		t.Fatalf("event past horizon should stay queued")
	}
}

func TestShardGroupStopFromGlobal(t *testing.T) {
	g := newTestGroup(2, false)
	stopAt := simtime.Time(4 * simtime.Millisecond)
	g.Global.At(stopAt, func() { g.Global.Stop() })
	g.Shards[1].At(simtime.Time(50*simtime.Millisecond), func() { t.Fatal("ran after stop") })

	if end := g.Run(simtime.Never); end != stopAt {
		t.Fatalf("end = %v, want %v", end, stopAt)
	}
}

func TestShardGroupParallelMatchesSequential(t *testing.T) {
	// The same ping-pong workload through both execution modes: each shard
	// relays a token onward through the group; traces must be identical.
	run := func(parallel bool) []string {
		g := newTestGroup(4, parallel)
		var mu sync.Mutex
		var got []string
		hops := 0
		var relay func(shard int, at simtime.Time)
		relay = func(shard int, at simtime.Time) {
			g.Shards[shard].At(at, func() {
				mu.Lock()
				got = append(got, string(rune('a'+shard)))
				mu.Unlock()
				hops++
				if hops < 12 {
					g.Stage(shard, (shard+1)%4, at+simtime.Time(2*simtime.Millisecond), 0, func() {
						relay((shard+1)%4, at+simtime.Time(4*simtime.Millisecond))
					})
				}
			})
		}
		relay(0, simtime.Time(simtime.Millisecond))
		g.Run(simtime.Never)
		return got
	}
	seq, par := run(false), run(true)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel trace %v != sequential %v", par, seq)
	}
	if len(seq) != 12 {
		t.Fatalf("trace length = %d, want 12", len(seq))
	}
}

func TestShardGroupStatsConsistent(t *testing.T) {
	// The occupancy counters must tell one coherent story in both execution
	// modes: every deterministic figure (windows, global syncs, staged and
	// processed events, per-shard window participation) is identical inline
	// and under goroutine workers, and the per-shard event counts plus the
	// global engine's account for every processed event.
	run := func(parallel bool) GroupStats {
		g := newTestGroup(3, parallel)
		var mu sync.Mutex
		hops := 0
		var relay func(shard int, at simtime.Time)
		relay = func(shard int, at simtime.Time) {
			g.Shards[shard].At(at, func() {
				mu.Lock()
				hops++
				h := hops
				mu.Unlock()
				if h < 9 {
					g.Stage(shard, (shard+1)%3, at+simtime.Time(2*simtime.Millisecond), 0, func() {
						relay((shard+1)%3, at+simtime.Time(4*simtime.Millisecond))
					})
				}
			})
		}
		relay(0, simtime.Time(simtime.Millisecond))
		// A global event mid-run forces at least one global-sync window.
		g.Global.At(simtime.Time(10*simtime.Millisecond), func() {})
		g.Run(simtime.Never)

		st := g.Stats()
		if st.Windows == 0 {
			t.Fatalf("parallel=%v: Windows = 0 after a run with events", parallel)
		}
		if st.GlobalSyncWindows == 0 || st.GlobalSyncWindows > st.Windows {
			t.Fatalf("parallel=%v: GlobalSyncWindows = %d out of range (0, %d]",
				parallel, st.GlobalSyncWindows, st.Windows)
		}
		if len(st.ShardWindows) != len(g.Shards) || len(st.ShardEvents) != len(g.Shards) || len(st.ShardBusy) != len(g.Shards) {
			t.Fatalf("parallel=%v: per-shard slice lengths %d/%d/%d, want %d",
				parallel, len(st.ShardWindows), len(st.ShardEvents), len(st.ShardBusy), len(g.Shards))
		}
		var shardEvents uint64
		for i := range g.Shards {
			if st.ShardWindows[i] > st.Windows {
				t.Fatalf("parallel=%v: shard %d participated in %d of %d windows",
					parallel, i, st.ShardWindows[i], st.Windows)
			}
			shardEvents += st.ShardEvents[i]
			if !parallel && st.ShardBusy[i] != 0 {
				t.Fatalf("inline run recorded busy time %v on shard %d", st.ShardBusy[i], i)
			}
		}
		if got := shardEvents + st.GlobalEvents; got != g.Processed() {
			t.Fatalf("parallel=%v: shard events %d + global %d = %d, Processed() = %d",
				parallel, shardEvents, st.GlobalEvents, got, g.Processed())
		}
		// The relay stages one cross-shard hand-off per hop except the last.
		if st.StagedEvents != 8 {
			t.Fatalf("parallel=%v: StagedEvents = %d, want 8", parallel, st.StagedEvents)
		}
		return st
	}

	seq, par := run(false), run(true)
	seq.ShardBusy, par.ShardBusy = nil, nil // wall-clock, legitimately differs
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("deterministic stats diverge across modes:\ninline   %+v\nparallel %+v", seq, par)
	}
}

func TestNewShardGroupRejectsBadConfig(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero lookahead", func() { NewShardGroup(New(), []*Engine{New()}, 0, false) })
	mustPanic("nil global", func() { NewShardGroup(nil, []*Engine{New()}, simtime.Millisecond, false) })
	mustPanic("no shards", func() { NewShardGroup(New(), nil, simtime.Millisecond, false) })
}
