// Package prng provides a small, fast, deterministic pseudo-random number
// generator for simulation use. Every stochastic component of the simulator
// draws from an explicitly seeded Source so that runs are exactly
// reproducible; the global math/rand state is never used.
//
// The generator is xoshiro256**, seeded through SplitMix64 as recommended by
// its authors. It is not cryptographically secure and must not be used for
// security purposes.
package prng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// valid; obtain one with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitMix64 advances the SplitMix64 state and returns the next output.
// It is used only to expand a 64-bit seed into the 256-bit xoshiro state.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed. Distinct seeds
// give independent-looking streams; the same seed always gives the same
// stream.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the source to the state derived from seed.
func (s *Source) Reseed(seed uint64) {
	sm := seed
	s.s0 = splitMix64(&sm)
	s.s1 = splitMix64(&sm)
	s.s2 = splitMix64(&sm)
	s.s3 = splitMix64(&sm)
	// xoshiro256** must not start from the all-zero state. SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 1
	}
}

// Split derives a new independent Source from s. The derived stream is a
// deterministic function of s's current state, and s is advanced, so
// repeated Splits yield distinct children.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa5a5a5a5deadbeef)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Int63 returns a uniformly distributed non-negative int64.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := s.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomises the order of n elements using the provided swap
// function, via the Fisher-Yates algorithm.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the polar Box-Muller transform.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1).
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
