package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between independent streams", same)
	}
}

func TestReseed(t *testing.T) {
	s := New(7)
	first := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s.Reseed(7)
	for i, want := range first {
		if got := s.Uint64(); got != want {
			t.Fatalf("after Reseed output %d = %d, want %d", i, got, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(9)
	c1 := s.Split()
	c2 := s.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first output")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		if v := s.Uint64n(256); v >= 256 {
			t.Fatalf("Uint64n(256) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(17)
	const buckets, n = 10, 100000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(31)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ≈1", mean)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := New(37)
	for i := 0; i < 10000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 = %d < 0", v)
		}
	}
}
