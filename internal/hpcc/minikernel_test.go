package hpcc

import (
	"testing"

	"ampom/internal/memory"
	"ampom/internal/trace"
)

// The mini-kernels are real computations; these tests validate that the
// synthetic workload generators land in the same Figure 4 locality
// quadrants as the genuine article.
//
// Real kernels touch elements, alternating between operand arrays hundreds
// of times per page; DedupeRecent reduces their streams to the page-level
// view AMPoM's window actually observes before scoring.

const dedupeWindow = 8

func pageView(ps []memory.PageNum) []memory.PageNum {
	return trace.DedupeRecent(ps, dedupeWindow)
}

func TestMiniSTREAMLocality(t *testing.T) {
	ps := pageView(MiniSTREAM(64*elemsPerPage, 2)) // 64 pages per array
	s := trace.SlidingSpatialScore(ps, 20, 4)
	tmp := trace.TemporalScore(ps, 192*2/5)
	if s < 0.3 {
		t.Fatalf("real STREAM spatial = %.3f, want high", s)
	}
	if tmp > 0.3 {
		t.Fatalf("real STREAM temporal = %.3f, want low", tmp)
	}
}

func TestMiniDGEMMLocality(t *testing.T) {
	ps := pageView(MiniDGEMM(128, 32)) // 32 pages per matrix, blocked 32
	s := trace.SlidingSpatialScore(ps, 20, 4)
	tmp := trace.TemporalScore(ps, 38)
	if s < 0.3 {
		t.Fatalf("real DGEMM spatial = %.3f, want moderate+", s)
	}
	if tmp < 0.45 {
		t.Fatalf("real DGEMM temporal = %.3f, want high (blocked reuse)", tmp)
	}
}

func TestMiniRandomAccessLocality(t *testing.T) {
	n := 128 * elemsPerPage
	ps := pageView(MiniRandomAccess(n, 4096, 5))
	s := trace.SlidingSpatialScore(ps, 20, 4)
	if s > 0.15 {
		t.Fatalf("real GUPS spatial = %.3f, want ≈0", s)
	}
}

func TestMiniFFTLocality(t *testing.T) {
	// The in-place radix-2 FFT re-sweeps its whole footprint every pass
	// (reuse distance ≈ 2× the footprint) and its butterfly strides are
	// page-sized or larger — Figure 4's low-spatial/high-temporal corner,
	// exactly where the paper places FFT.
	ps := pageView(MiniFFT(1 << 16)) // 2^16 points over 128 pages
	s := trace.SlidingSpatialScore(ps, 20, 4)
	tmp := trace.TemporalScore(ps, 256)
	if tmp < 0.45 {
		t.Fatalf("real FFT temporal = %.3f, want high (pass reuse)", tmp)
	}
	if s > 0.15 {
		t.Fatalf("real FFT spatial = %.3f, want low (butterfly strides)", s)
	}
}

func TestMiniKernelsCoverFootprint(t *testing.T) {
	// Each mini-kernel touches its whole footprint, like the real HPCC.
	cases := []struct {
		name  string
		ps    []memory.PageNum
		pages int64
	}{
		{"STREAM", MiniSTREAM(32*elemsPerPage, 1), 3 * 32},
		{"DGEMM", MiniDGEMM(48, 16), 3 * 5},
		{"FFT", MiniFFT(1 << 14), 32},
	}
	for _, c := range cases {
		got := trace.DistinctPages(c.ps)
		if got < c.pages*9/10 {
			t.Errorf("%s touched %d of %d pages", c.name, got, c.pages)
		}
	}
}

// TestGeneratorsMatchRealKernels is the validation headline: for each
// kernel, the synthetic generator and the real mini-kernel agree on the
// relative locality orderings that drive AMPoM's behaviour.
func TestGeneratorsMatchRealKernels(t *testing.T) {
	type scores struct{ spatial, temporal float64 }
	real := map[Kernel]scores{}

	rs := pageView(MiniSTREAM(64*elemsPerPage, 2))
	rd := pageView(MiniDGEMM(128, 32))
	rr := pageView(MiniRandomAccess(128*elemsPerPage, 4096, 5))
	rf := pageView(MiniFFT(1 << 16))
	real[STREAM] = scores{trace.SlidingSpatialScore(rs, 20, 4), trace.TemporalScore(rs, 76)}
	real[DGEMM] = scores{trace.SlidingSpatialScore(rd, 20, 4), trace.TemporalScore(rd, 38)}
	real[RandomAccess] = scores{trace.SlidingSpatialScore(rr, 20, 4), trace.TemporalScore(rr, 51)}
	real[FFT] = scores{trace.SlidingSpatialScore(rf, 20, 4), trace.TemporalScore(rf, 256)}

	synth := map[Kernel]scores{}
	for _, k := range Kernels() {
		w := MustBuild(Scaled(CatalogueFor(k)[0], 16), 5)
		s, tmp := Locality(w)
		synth[k] = scores{s, tmp}
	}

	// Spatial ordering: STREAM clearly above RandomAccess in both worlds.
	if !(real[STREAM].spatial > real[RandomAccess].spatial+0.1) {
		t.Errorf("real kernels: STREAM spatial %.3f not ≫ RandomAccess %.3f",
			real[STREAM].spatial, real[RandomAccess].spatial)
	}
	if !(synth[STREAM].spatial > synth[RandomAccess].spatial+0.1) {
		t.Errorf("generators: STREAM spatial %.3f not ≫ RandomAccess %.3f",
			synth[STREAM].spatial, synth[RandomAccess].spatial)
	}
	// Spatial: DGEMM also clearly above RandomAccess in both worlds.
	if !(real[DGEMM].spatial > real[RandomAccess].spatial+0.1) {
		t.Errorf("real kernels: DGEMM spatial %.3f not ≫ RandomAccess %.3f",
			real[DGEMM].spatial, real[RandomAccess].spatial)
	}
	if !(synth[DGEMM].spatial > synth[RandomAccess].spatial+0.1) {
		t.Errorf("generators: DGEMM spatial %.3f not ≫ RandomAccess %.3f",
			synth[DGEMM].spatial, synth[RandomAccess].spatial)
	}
	// Temporal ordering: DGEMM and FFT above STREAM in both worlds.
	for _, k := range []Kernel{DGEMM, FFT} {
		if !(real[k].temporal > real[STREAM].temporal) {
			t.Errorf("real kernels: %v temporal %.3f not above STREAM %.3f",
				k, real[k].temporal, real[STREAM].temporal)
		}
		if !(synth[k].temporal > synth[STREAM].temporal) {
			t.Errorf("generators: %v temporal %.3f not above STREAM %.3f",
				k, synth[k].temporal, synth[STREAM].temporal)
		}
	}
}
