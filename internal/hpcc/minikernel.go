package hpcc

import (
	"math"

	"ampom/internal/memory"
	"ampom/internal/prng"
)

// Mini-kernels: small, *real* implementations of the four HPCC kernels,
// instrumented to record the page-level reference stream their actual
// memory accesses produce. They exist to validate the synthetic workload
// models: the tests check that each generator lands in the same Figure 4
// locality quadrant as the real computation it stands for.
//
// The recorder maps element indices to pages assuming 8-byte elements
// (512 per 4 KiB page), the layout of the double-precision HPCC kernels.

// elemsPerPage is the number of float64 elements per page.
const elemsPerPage = memory.PageSize / 8

// recorder captures page-level references of a real kernel run. Arrays are
// registered with a page offset so distinct arrays occupy distinct page
// ranges, as they do in a real address space.
type recorder struct {
	pages []memory.PageNum
	last  memory.PageNum
	prime bool
}

// touch records element i of an array starting at page base.
func (r *recorder) touch(base memory.PageNum, i int) {
	p := base + memory.PageNum(i/elemsPerPage)
	// Collapse consecutive repeats at record time: within-page runs are
	// temporal locality the page-level stream does not distinguish.
	if r.prime && p == r.last {
		return
	}
	r.pages = append(r.pages, p)
	r.last = p
	r.prime = true
}

// MiniDGEMM multiplies two n×n matrices the blocked way (block size b) and
// returns the recorded page reference stream. A, B and C live at distinct
// page bases.
func MiniDGEMM(n, b int) []memory.PageNum {
	if b <= 0 || b > n {
		b = n
	}
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.5
		bb[i] = float64(i%5) * 0.25
	}
	matPages := memory.PageNum((n*n + elemsPerPage - 1) / elemsPerPage)
	aBase, bBase, cBase := memory.PageNum(0), matPages, 2*matPages

	var rec recorder
	for jj := 0; jj < n; jj += b {
		for kk := 0; kk < n; kk += b {
			for i := 0; i < n; i++ {
				for k := kk; k < min(kk+b, n); k++ {
					aik := a[i*n+k]
					rec.touch(aBase, i*n+k)
					for j := jj; j < min(jj+b, n); j++ {
						rec.touch(bBase, k*n+j)
						c[i*n+j] += aik * bb[k*n+j]
						rec.touch(cBase, i*n+j)
					}
				}
			}
		}
	}
	return rec.pages
}

// MiniSTREAM runs the four STREAM operations over arrays of n elements for
// iters iterations and returns the page stream.
func MiniSTREAM(n, iters int) []memory.PageNum {
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 1
		b[i] = 2
	}
	arrPages := memory.PageNum((n + elemsPerPage - 1) / elemsPerPage)
	aBase, bBase, cBase := memory.PageNum(0), arrPages, 2*arrPages

	var rec recorder
	const scalar = 3.0
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ { // Copy: c = a
			rec.touch(aBase, i)
			c[i] = a[i]
			rec.touch(cBase, i)
		}
		for i := 0; i < n; i++ { // Scale: b = s*c
			rec.touch(cBase, i)
			b[i] = scalar * c[i]
			rec.touch(bBase, i)
		}
		for i := 0; i < n; i++ { // Add: c = a + b
			rec.touch(aBase, i)
			rec.touch(bBase, i)
			c[i] = a[i] + b[i]
			rec.touch(cBase, i)
		}
		for i := 0; i < n; i++ { // Triad: a = b + s*c
			rec.touch(bBase, i)
			rec.touch(cBase, i)
			a[i] = b[i] + scalar*c[i]
			rec.touch(aBase, i)
		}
	}
	return rec.pages
}

// MiniRandomAccess performs updates random xor-updates over a table of n
// 64-bit words (GUPS) and returns the page stream.
func MiniRandomAccess(n, updates int, seed uint64) []memory.PageNum {
	table := make([]uint64, n)
	for i := range table {
		table[i] = uint64(i)
	}
	rng := prng.New(seed)
	var rec recorder
	for u := 0; u < updates; u++ {
		ran := rng.Uint64()
		i := int(ran % uint64(n))
		table[i] ^= ran
		rec.touch(0, i)
	}
	return rec.pages
}

// MiniFFT computes an in-place radix-2 FFT over n complex points (n a
// power of two), recording the page stream of its real/imaginary arrays —
// the bit-reversal permutation followed by the log n butterfly passes.
func MiniFFT(n int) []memory.PageNum {
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Sin(float64(i))
	}
	var rec recorder

	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			rec.touch(0, i)
			rec.touch(0, j)
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
	}
	// Butterfly passes.
	for size := 2; size <= n; size <<= 1 {
		ang := -2 * math.Pi / float64(size)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < n; start += size {
			cwr, cwi := 1.0, 0.0
			for k := 0; k < size/2; k++ {
				i, j := start+k, start+k+size/2
				rec.touch(0, i)
				rec.touch(0, j)
				tr := re[j]*cwr - im[j]*cwi
				ti := re[j]*cwi + im[j]*cwr
				re[j], im[j] = re[i]-tr, im[i]-ti
				re[i], im[i] = re[i]+tr, im[i]+ti
				cwr, cwi = cwr*wr-cwi*wi, cwr*wi+cwi*wr
			}
		}
	}
	return rec.pages
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
