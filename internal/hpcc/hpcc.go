// Package hpcc models the four HPC Challenge kernels the paper evaluates —
// DGEMM, STREAM, RandomAccess and FFT — as page-level reference streams with
// calibrated compute densities.
//
// The paper skips HPL, PTRANS and b_eff ("network communication performance
// in parallel programs is not the focus of AMPoM", §5.1) and keeps the four
// kernels that span the spatial × temporal locality quadrants of Figure 4:
//
//	                temporal: low       temporal: high
//	spatial: high   STREAM              DGEMM
//	spatial: low    RandomAccess        FFT
//
// AMPoM only ever observes (a) the stream of faulted page numbers and
// (b) the compute time between touches, so a page-level model with the right
// locality structure and the right compute density reproduces the paper's
// migration behaviour. Compute densities are calibrated against the paper's
// Figure 6 anchors for the Gideon 300's 2 GHz Pentium 4 (see basetime.go).
package hpcc

import (
	"fmt"

	"ampom/internal/memory"
	"ampom/internal/simtime"
	"ampom/internal/trace"
)

// Kernel identifies one of the modelled HPCC kernels.
type Kernel uint8

// The four kernels of the paper's evaluation.
const (
	DGEMM Kernel = iota
	STREAM
	RandomAccess
	FFT
)

// Kernels lists all modelled kernels in the paper's order.
func Kernels() []Kernel { return []Kernel{DGEMM, STREAM, RandomAccess, FFT} }

// String returns the HPCC kernel name.
func (k Kernel) String() string {
	switch k {
	case DGEMM:
		return "DGEMM"
	case STREAM:
		return "STREAM"
	case RandomAccess:
		return "RandomAccess"
	case FFT:
		return "FFT"
	default:
		return fmt.Sprintf("Kernel(%d)", uint8(k))
	}
}

// Entry is one row of the paper's Table 1: a kernel run at a configured
// problem size occupying a given memory footprint.
type Entry struct {
	Kernel      Kernel
	ProblemSize int64 // the size written in the hpccinf.txt configuration
	MemoryMB    int64 // resulting process footprint in MB
}

// String formats the entry like "DGEMM/17350 (575MB)".
func (e Entry) String() string {
	return fmt.Sprintf("%s/%d (%dMB)", e.Kernel, e.ProblemSize, e.MemoryMB)
}

// Catalogue returns the paper's Table 1 verbatim: the problem sizes and
// memory footprints used in every experiment.
func Catalogue() []Entry {
	return []Entry{
		{DGEMM, 7600, 115}, {DGEMM, 10850, 230}, {DGEMM, 13350, 345},
		{DGEMM, 15450, 460}, {DGEMM, 17350, 575},

		{STREAM, 7750, 115}, {STREAM, 11000, 230}, {STREAM, 13450, 345},
		{STREAM, 15520, 460}, {STREAM, 17400, 575},

		{RandomAccess, 8000, 65}, {RandomAccess, 11000, 129},
		{RandomAccess, 16000, 260}, {RandomAccess, 23000, 513},

		{FFT, 8000, 65}, {FFT, 11000, 129},
		{FFT, 16000, 260}, {FFT, 23000, 513},
	}
}

// CatalogueFor returns the Table 1 rows of one kernel.
func CatalogueFor(k Kernel) []Entry {
	var out []Entry
	for _, e := range Catalogue() {
		if e.Kernel == k {
			out = append(out, e)
		}
	}
	return out
}

// Largest returns the biggest configured run of a kernel — the sizes the
// paper quotes its headline percentages for.
func Largest(k Kernel) Entry {
	rows := CatalogueFor(k)
	return rows[len(rows)-1]
}

// Layout page budget for the non-heap regions. The code and stack of the
// HPCC binary are tiny compared to the data; the three "currently accessed"
// pages migrated at freeze time come one from each region.
const (
	codePages  = 32
	stackPages = 16
	pagesPerMB = 1024 * 1024 / memory.PageSize
)

// LayoutForMB builds the process layout for a footprint of mb megabytes.
func LayoutForMB(mb int64) (memory.Layout, error) {
	if mb < 1 {
		return memory.Layout{}, fmt.Errorf("hpcc: footprint %dMB too small", mb)
	}
	heap := mb*pagesPerMB - codePages - stackPages
	return memory.NewLayout(codePages, heap, stackPages)
}

// Workload is a fully built kernel run: the process layout, the
// post-migration reference stream and its compute calibration.
type Workload struct {
	// Name identifies the run in reports, e.g. "STREAM/17400".
	Name string
	// Entry is the Table 1 row this was built from.
	Entry Entry
	// Layout is the process address-space layout.
	Layout memory.Layout
	// Source produces the post-migration page reference stream. Factories
	// are replayable; each simulation run draws a fresh stream.
	Source trace.Factory
	// Refs is the analytic reference count of the stream.
	Refs int64
	// BaseCompute is the pure CPU time of the post-migration phase (the
	// paper's execution on an unloaded node with all pages local).
	BaseCompute simtime.Duration
	// InitCompute is the pre-migration allocate-and-initialise phase the
	// paper runs before triggering migration ("we initiated migration right
	// after a kernel has finished allocating the required memory").
	InitCompute simtime.Duration
	// WorkingSetPages is the number of distinct heap pages the stream
	// touches (the full heap for the standard kernels; less for the §5.6
	// working-set variant).
	WorkingSetPages int64
}

// Build materialises the workload for a Table 1 entry. The seed
// parameterises the stochastic kernels (RandomAccess table indices, FFT
// scatter permutation) so runs are reproducible.
func Build(e Entry, seed uint64) (*Workload, error) {
	layout, err := LayoutForMB(e.MemoryMB)
	if err != nil {
		return nil, err
	}
	w := &Workload{
		Name:   fmt.Sprintf("%s/%d", e.Kernel, e.ProblemSize),
		Entry:  e,
		Layout: layout,
	}
	heap := layout.Region(memory.RegionHeap)
	base := baseTime(e.Kernel, e.MemoryMB)
	w.BaseCompute = base
	w.InitCompute = initTime(e.MemoryMB)
	w.WorkingSetPages = heap.Count

	switch e.Kernel {
	case DGEMM:
		w.Source, w.Refs = buildDGEMM(heap, heap.Count, base)
	case STREAM:
		w.Source, w.Refs = buildSTREAM(heap, base)
	case RandomAccess:
		w.Source, w.Refs = buildRandomAccess(heap, base, seed)
	case FFT:
		w.Source, w.Refs = buildFFT(heap, base, seed)
	default:
		return nil, fmt.Errorf("hpcc: unknown kernel %v", e.Kernel)
	}
	return w, nil
}

// MustBuild is Build panicking on error, for fixtures and examples.
func MustBuild(e Entry, seed uint64) *Workload {
	w, err := Build(e, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// BuildWorkingSet builds the §5.6 experiment's modified DGEMM: the process
// allocates allocMB of memory but its matrices — and therefore its entire
// post-migration working set — occupy only wsMB of it.
func BuildWorkingSet(allocMB, wsMB int64, seed uint64) (*Workload, error) {
	if wsMB <= 0 || wsMB > allocMB {
		return nil, fmt.Errorf("hpcc: working set %dMB outside allocation %dMB", wsMB, allocMB)
	}
	layout, err := LayoutForMB(allocMB)
	if err != nil {
		return nil, err
	}
	heap := layout.Region(memory.RegionHeap)
	wsPages := wsMB * pagesPerMB
	if wsPages > heap.Count {
		wsPages = heap.Count
	}
	base := baseTime(DGEMM, wsMB)
	src, refs := buildDGEMM(heap, wsPages, base)
	return &Workload{
		Name:            fmt.Sprintf("DGEMM-ws/%d-of-%dMB", wsMB, allocMB),
		Entry:           Entry{Kernel: DGEMM, ProblemSize: wsMB, MemoryMB: allocMB},
		Layout:          layout,
		Source:          src,
		Refs:            refs,
		BaseCompute:     base,
		InitCompute:     initTime(allocMB),
		WorkingSetPages: wsPages,
	}, nil
}

// Locality measures a workload's page-level spatial and temporal locality,
// the quantities behind the paper's Figure 4 quadrants. Spatial is the
// sliding Eq. 1 score over the whole reference stream (l = 20, dmax = 4);
// temporal is the fraction of references re-touching a page seen within the
// previous 0.4×heap references — wide enough to catch DGEMM's panel reuse
// and FFT's blocked-stage reuse, narrow enough that STREAM's whole-array
// revisits and RandomAccess's chance collisions score low.
func Locality(w *Workload) (spatial, temporal float64) {
	refs := trace.Collect(w.Source(), 0)
	ps := trace.Pages(refs)
	heap := w.Layout.Region(memory.RegionHeap)
	spatial = trace.SlidingSpatialScore(ps, 20, 4)
	temporal = trace.TemporalScore(ps, int(heap.Count*2/5))
	return spatial, temporal
}

// Scaled returns a copy of e shrunk by an integer divisor — used by unit
// tests and quick examples to run the same shapes at laptop scale. The
// divisor must not reduce the footprint below 1 MB.
func Scaled(e Entry, div int64) Entry {
	if div < 1 {
		div = 1
	}
	mb := e.MemoryMB / div
	if mb < 1 {
		mb = 1
	}
	return Entry{Kernel: e.Kernel, ProblemSize: e.ProblemSize / div, MemoryMB: mb}
}
