package hpcc

import (
	"ampom/internal/memory"
	"ampom/internal/simtime"
	"ampom/internal/trace"
)

// This file builds the page-level reference streams of the four kernels.
// Each builder returns a replayable factory plus the analytic reference
// count; compute time per reference is the kernel's calibrated base time
// spread over its references, so the stream's total compute equals
// baseTime() exactly (up to rounding).

// perRef divides a compute budget over n references.
func perRef(total simtime.Duration, n int64) simtime.Duration {
	if n <= 0 {
		return 0
	}
	return total / simtime.Duration(n)
}

// dgemmPasses is the number of block-column passes of the modelled blocked
// matrix multiply. Each pass re-reads all of A and first-touches one chunk
// of B and C, giving DGEMM its high temporal locality and its slow,
// compute-bound fault stream after the first pass.
const dgemmPasses = 64

// buildDGEMM models C = A·B with block-column panels. The heap holds the
// three matrices contiguously: A | B | C, each third pages. Each pass j
// re-reads all of A and first-touches one fresh column chunk of B and C.
// The fresh chunk is touched as a burst at panel-copy speed — real blocked
// DGEMMs copy each fresh panel into contiguous buffers before computing on
// it — so fresh-page demand clusters, and compute happens on resident
// panels between bursts. wsPages caps the touched heap pages for the §5.6
// working-set variant (pass heap.Count for the standard kernel).
func buildDGEMM(heap memory.Region, wsPages int64, base simtime.Duration) (trace.Factory, int64) {
	third := wsPages / 3
	if third < 1 {
		third = 1
	}
	passes := int64(dgemmPasses)
	if passes > third {
		passes = third // degenerate tiny runs: one chunk per page
	}
	chunk := third / passes

	aStart := heap.Start
	bStart := heap.Start + memory.PageNum(third)
	cStart := heap.Start + memory.PageNum(2*third)

	refs := passes*third + 2*third // A re-read per pass + B, C once each
	cp := perRef(base, refs)

	parts := make([]trace.Factory, 0, passes)
	for j := int64(0); j < passes; j++ {
		bc := chunk
		if j == passes-1 {
			bc = third - chunk*(passes-1) // last chunk absorbs remainder
		}
		// Panel copies touch the fresh B and C chunks at memory speed (1 %
		// of the pass compute); the A re-read carries the block products.
		passCompute := cp * simtime.Duration(third+2*bc)
		parts = append(parts, trace.Concat(
			trace.Sequential(bStart+memory.PageNum(j*chunk), bc, perRef(passCompute/100, bc), false),
			trace.Sequential(cStart+memory.PageNum(j*chunk), bc, perRef(passCompute/100, bc), true),
			trace.Sequential(aStart, third, perRef(passCompute*98/100, third), false),
		))
	}
	return trace.Concat(parts...), refs
}

// streamIterations is the number of whole benchmark iterations modelled.
// Real STREAM runs 10; we model 4 and fold the full compute budget into
// them — only the first pass generates faults, so the migration behaviour
// is unchanged while simulations stay fast.
const streamIterations = 4

// buildSTREAM models the four STREAM operations over three arrays a|b|c:
// Copy c←a, Scale b←c, Add c←a+b, Triad a←b+s·c. Lock-step array sweeps
// become round-robin interleavings of sequential page streams, which is
// exactly the stride-2/stride-3 fault pattern AMPoM's window sees.
func buildSTREAM(heap memory.Region, base simtime.Duration) (trace.Factory, int64) {
	third := heap.Count / 3
	if third < 1 {
		third = 1
	}
	a := heap.Start
	b := heap.Start + memory.PageNum(third)
	c := heap.Start + memory.PageNum(2*third)

	refsPerIter := int64(2*third + 2*third + 3*third + 3*third)
	refs := refsPerIter * streamIterations
	cp := perRef(base, refs)

	iteration := trace.Concat(
		// Copy: c[i] = a[i]
		trace.Interleave(
			trace.Sequential(a, third, cp, false),
			trace.Sequential(c, third, cp, true),
		),
		// Scale: b[i] = s·c[i]
		trace.Interleave(
			trace.Sequential(c, third, cp, false),
			trace.Sequential(b, third, cp, true),
		),
		// Add: c[i] = a[i] + b[i]
		trace.Interleave(
			trace.Sequential(a, third, cp, false),
			trace.Sequential(b, third, cp, false),
			trace.Sequential(c, third, cp, true),
		),
		// Triad: a[i] = b[i] + s·c[i]
		trace.Interleave(
			trace.Sequential(b, third, cp, false),
			trace.Sequential(c, third, cp, false),
			trace.Sequential(a, third, cp, true),
		),
	)
	return trace.Repeat(streamIterations, iteration), refs
}

// touchesPerPage is the modelled RandomAccess fetch-in density: random
// page touches per table page during the phase that drags the table to the
// migrant. Real GUPS performs 4 updates per table *word* (≈2048 per page);
// page coverage is therefore complete within the first ~1 % of updates
// (coupon collector), after which the table is local and the remaining
// ~99 % of updates run fault-free. We model the fetch-in with 6 touches
// per page (99.8 % coverage) carrying the corresponding sliver of compute,
// and fold the fault-free bulk of the updates into a resident compute
// segment — the structure that gives the paper its "network time adds to
// compute time" RandomAccess behaviour.
const touchesPerPage = 6

// buildRandomAccess models GUPS: the fetch-in slice of the random update
// stream, the fault-free bulk of the updates, then the harness's
// sequential verification sweep.
func buildRandomAccess(heap memory.Region, base simtime.Duration, seed uint64) (trace.Factory, int64) {
	touches := heap.Count * touchesPerPage
	sweep := heap.Count
	refs := touches + 1 + sweep

	// Real update compute is ~0.4 µs each; the fetch-in touches carry ~1 %
	// of the budget, the resident bulk 84 %, the verification sweep 15 %.
	cpT := perRef(base*1/100, touches)
	bulk := base * 84 / 100
	cpS := perRef(base*15/100, sweep)
	return trace.Concat(
		trace.RandomUniform(heap.Start, heap.Count, touches, cpT, true, seed^0x9a0d),
		// Fault-free bulk of the updates: the table is (almost) fully
		// local, so this is pure compute pinned on a resident page.
		trace.Sequential(heap.Start, 1, bulk, true),
		trace.Sequential(heap.Start, sweep, cpS, false),
	), refs
}

// fftPasses is the number of modelled butterfly pass groups.
const fftPasses = 4

// fftBlock is the page-level cache block of the modelled FFT: the
// bit-reversal transpose and the butterfly stages are blocked, so accesses
// are globally strided but locally sequential, and each block is re-read
// within its fused stage group — the short-distance page reuse that puts
// FFT in Figure 4's high-temporal-locality quadrant.
const fftBlock = 16

// fftStageIters is how many fused stage iterations touch a block within one
// pass group.
const fftStageIters = 2

// buildFFT models a large out-of-place FFT over data D and work W halves of
// the heap: a blocked bit-reversal scatter (the lower spatial locality
// phase), then fftPasses blocked sweeps alternating the D→W and W→D
// directions, each block run through fftStageIters fused stages.
func buildFFT(heap memory.Region, base simtime.Duration, seed uint64) (trace.Factory, int64) {
	half := heap.Count / 2
	if half < 1 {
		half = 1
	}
	d := heap.Start
	w := heap.Start + memory.PageNum(half)

	nBlocks := (half + fftBlock - 1) / fftBlock
	blockAt := func(base memory.PageNum, i int64) (memory.PageNum, int64) {
		start := base + memory.PageNum(i*fftBlock)
		count := int64(fftBlock)
		if rem := half - i*fftBlock; rem < count {
			count = rem
		}
		return start, count
	}

	// Refs: scatter (half) + passes × stageIters × (src block + dst block).
	refs := half + int64(fftPasses)*fftStageIters*2*half
	// The bit-reversal scatter is data movement, not flops: it carries 3 %
	// of the compute budget; the butterfly passes carry the rest.
	cpScatter := perRef(base*3/100, half)
	cpPass := perRef(base*97/100, refs-half)

	parts := []trace.Factory{
		trace.BlockPermuted(d, half, fftBlock, cpScatter, true, seed^0x0ff7),
	}
	for p := 0; p < fftPasses; p++ {
		src, dst := d, w
		if p%2 == 1 {
			src, dst = w, d
		}
		for i := int64(0); i < nBlocks; i++ {
			sStart, sCount := blockAt(src, i)
			dStart, dCount := blockAt(dst, i)
			parts = append(parts, trace.Repeat(fftStageIters, trace.Concat(
				trace.Sequential(sStart, sCount, cpPass, false),
				trace.Sequential(dStart, dCount, cpPass, true),
			)))
		}
	}
	return trace.Concat(parts...), refs
}
