package hpcc

import (
	"math"

	"ampom/internal/simtime"
)

// Base compute-time curves, calibrated against the paper's Figure 6 on the
// Gideon 300 testbed (2 GHz Pentium 4, all pages local):
//
//   - DGEMM:        ≈56 s of pure compute at 575 MB, growing ~footprint^1.5
//     (O(n³) flops over O(n²) data);
//   - STREAM:       ≈21 s at 575 MB, linear (pure bandwidth kernel);
//   - RandomAccess: ≈117 s at 513 MB, linear in table size (GUPS updates);
//   - FFT:          ≈32 s at 513 MB, ~n·log n.
//
// These anchors make the simulated openMosix totals (freeze + compute)
// land on the paper's curves; every scheme comparison then follows from
// mechanism, not fitting.

func baseTime(k Kernel, mb int64) simtime.Duration {
	f := float64(mb)
	var secs float64
	switch k {
	case DGEMM:
		secs = 56 * math.Pow(f/575, 1.5)
	case STREAM:
		secs = 20.8 * f / 575
	case RandomAccess:
		secs = 117 * f / 513
	case FFT:
		ratio := f / 513
		secs = 32 * ratio * (1 + 0.15*math.Log2(math.Max(ratio, 1e-3))/math.Log2(513))
	default:
		secs = f / 10
	}
	return simtime.FromSeconds(secs)
}

// initTime models the pre-migration allocate-and-initialise phase: filling
// memory at a calibrated ~400 MB/s on the P4 (memset plus data generation).
func initTime(mb int64) simtime.Duration {
	return simtime.FromSeconds(float64(mb) / 400)
}
