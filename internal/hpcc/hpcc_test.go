package hpcc

import (
	"testing"

	"ampom/internal/memory"
	"ampom/internal/trace"
)

// TestCatalogueMatchesTable1 pins the catalogue to the paper's Table 1.
func TestCatalogueMatchesTable1(t *testing.T) {
	type row struct {
		problem int64
		mb      int64
	}
	want := map[Kernel][]row{
		DGEMM:        {{7600, 115}, {10850, 230}, {13350, 345}, {15450, 460}, {17350, 575}},
		STREAM:       {{7750, 115}, {11000, 230}, {13450, 345}, {15520, 460}, {17400, 575}},
		RandomAccess: {{8000, 65}, {11000, 129}, {16000, 260}, {23000, 513}},
		FFT:          {{8000, 65}, {11000, 129}, {16000, 260}, {23000, 513}},
	}
	for k, rows := range want {
		got := CatalogueFor(k)
		if len(got) != len(rows) {
			t.Fatalf("%v: %d rows, want %d", k, len(got), len(rows))
		}
		for i, r := range rows {
			if got[i].ProblemSize != r.problem || got[i].MemoryMB != r.mb {
				t.Fatalf("%v row %d = %+v, want %+v (Table 1)", k, i, got[i], r)
			}
		}
	}
	if len(Catalogue()) != 18 {
		t.Fatalf("catalogue rows = %d, want 18", len(Catalogue()))
	}
}

func TestLargest(t *testing.T) {
	if e := Largest(DGEMM); e.MemoryMB != 575 {
		t.Fatalf("largest DGEMM = %+v", e)
	}
	if e := Largest(RandomAccess); e.MemoryMB != 513 {
		t.Fatalf("largest RandomAccess = %+v", e)
	}
}

func TestLayoutForMB(t *testing.T) {
	l, err := LayoutForMB(115)
	if err != nil {
		t.Fatal(err)
	}
	if l.Bytes() != 115<<20 {
		t.Fatalf("bytes = %d, want %d", l.Bytes(), 115<<20)
	}
	if l.Region(memory.RegionCode).Count != codePages ||
		l.Region(memory.RegionStack).Count != stackPages {
		t.Fatal("region budgets wrong")
	}
	if _, err := LayoutForMB(0); err == nil {
		t.Fatal("0MB layout accepted")
	}
}

func TestBuildAllCatalogueEntries(t *testing.T) {
	for _, e := range Catalogue() {
		w, err := Build(e, 1)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if w.Refs <= 0 || w.BaseCompute <= 0 || w.InitCompute <= 0 {
			t.Fatalf("%v: degenerate workload %+v", e, w)
		}
		if w.Layout.Pages() != e.MemoryMB*pagesPerMB {
			t.Fatalf("%v: pages = %d", e, w.Layout.Pages())
		}
	}
}

// TestRefCountsMatchAnalytic verifies the advertised Refs against an
// actual drain of the stream, at reduced scale for speed.
func TestRefCountsMatchAnalytic(t *testing.T) {
	for _, k := range Kernels() {
		e := Scaled(CatalogueFor(k)[0], 16) // ~7 MB
		w := MustBuild(e, 3)
		if got := trace.Count(w.Source); got != w.Refs {
			t.Fatalf("%v: drained %d refs, advertised %d", k, got, w.Refs)
		}
	}
}

// TestComputeBudget: the stream's total compute is the calibrated base
// time (within integer-division rounding).
func TestComputeBudget(t *testing.T) {
	for _, k := range Kernels() {
		e := Scaled(CatalogueFor(k)[0], 16)
		w := MustBuild(e, 3)
		src := w.Source()
		var total int64
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			total += int64(r.Compute)
		}
		lo, hi := int64(w.BaseCompute)*95/100, int64(w.BaseCompute)*101/100
		if total < lo || total > hi {
			t.Fatalf("%v: stream compute %d outside [%d,%d] of base %d", k, total, lo, hi, int64(w.BaseCompute))
		}
	}
}

// TestStreamsStayInHeap: every reference lands inside the heap region.
func TestStreamsStayInHeap(t *testing.T) {
	for _, k := range Kernels() {
		e := Scaled(CatalogueFor(k)[0], 16)
		w := MustBuild(e, 3)
		heap := w.Layout.Region(memory.RegionHeap)
		src := w.Source()
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			if !heap.Contains(r.Page) {
				t.Fatalf("%v: ref to page %d outside heap %+v", k, r.Page, heap)
			}
		}
	}
}

// TestWorkingSetCoverage: the standard kernels eventually touch their whole
// heap (the paper's "HPCC programs access their entire address spaces").
func TestWorkingSetCoverage(t *testing.T) {
	for _, k := range Kernels() {
		e := Scaled(CatalogueFor(k)[0], 16)
		w := MustBuild(e, 3)
		heap := w.Layout.Region(memory.RegionHeap)
		touched := map[memory.PageNum]bool{}
		src := w.Source()
		for {
			r, ok := src.Next()
			if !ok {
				break
			}
			touched[r.Page] = true
		}
		frac := float64(len(touched)) / float64(heap.Count)
		// RandomAccess coverage is probabilistic (~1-e^-6) but the
		// verification sweep completes it; others are exact up to the /3
		// and /2 splits losing a page or two.
		if frac < 0.99 {
			t.Fatalf("%v: touched %.3f of heap", k, frac)
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	e := Scaled(Largest(RandomAccess), 32)
	a := MustBuild(e, 9)
	b := MustBuild(e, 9)
	sa, sb := a.Source(), b.Source()
	for i := 0; ; i++ {
		ra, oka := sa.Next()
		rb, okb := sb.Next()
		if oka != okb {
			t.Fatal("stream lengths differ for same seed")
		}
		if !oka {
			break
		}
		if ra != rb {
			t.Fatalf("ref %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestBuildWorkingSet(t *testing.T) {
	w, err := BuildWorkingSet(64, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Layout.Bytes() != 64<<20 {
		t.Fatalf("allocation = %d", w.Layout.Bytes())
	}
	heap := w.Layout.Region(memory.RegionHeap)
	maxTouched := memory.PageNum(0)
	src := w.Source()
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.Page > maxTouched {
			maxTouched = r.Page
		}
	}
	// Touches stay within the working-set prefix of the heap.
	if got := int64(maxTouched - heap.Start + 1); got > 16*pagesPerMB {
		t.Fatalf("touched %d pages, want <= %d", got, 16*pagesPerMB)
	}
	if _, err := BuildWorkingSet(64, 65, 1); err == nil {
		t.Fatal("working set beyond allocation accepted")
	}
	if _, err := BuildWorkingSet(64, 0, 1); err == nil {
		t.Fatal("zero working set accepted")
	}
}

// TestFigure4LocalityQuadrants verifies the generators land in the paper's
// Figure 4 quadrants, measured with the trace package's whole-trace scores.
func TestFigure4LocalityQuadrants(t *testing.T) {
	spatial := map[Kernel]float64{}
	temporal := map[Kernel]float64{}
	for _, k := range Kernels() {
		e := Scaled(CatalogueFor(k)[0], 16)
		w := MustBuild(e, 5)
		spatial[k], temporal[k] = Locality(w)
	}
	// Spatial: STREAM and DGEMM high; RandomAccess lowest.
	if spatial[STREAM] <= spatial[RandomAccess] || spatial[DGEMM] <= spatial[RandomAccess] {
		t.Fatalf("spatial quadrants wrong: %v", spatial)
	}
	if spatial[RandomAccess] > 0.2 {
		t.Fatalf("RandomAccess spatial = %v, want ≈0", spatial[RandomAccess])
	}
	// Temporal: DGEMM and FFT revisit pages; STREAM and RandomAccess
	// effectively never within a window.
	if temporal[DGEMM] <= temporal[STREAM] || temporal[FFT] <= temporal[RandomAccess] {
		t.Fatalf("temporal quadrants wrong: %v", temporal)
	}
}

func TestScaled(t *testing.T) {
	e := Scaled(Entry{Kernel: DGEMM, ProblemSize: 1000, MemoryMB: 100}, 4)
	if e.MemoryMB != 25 || e.ProblemSize != 250 {
		t.Fatalf("scaled = %+v", e)
	}
	e = Scaled(Entry{Kernel: DGEMM, ProblemSize: 10, MemoryMB: 2}, 100)
	if e.MemoryMB != 1 {
		t.Fatalf("scaled floor = %+v", e)
	}
	e = Scaled(Entry{Kernel: DGEMM, ProblemSize: 10, MemoryMB: 8}, 0)
	if e.MemoryMB != 8 {
		t.Fatalf("scale 0 should clamp to 1: %+v", e)
	}
}

func TestKernelString(t *testing.T) {
	if DGEMM.String() != "DGEMM" || STREAM.String() != "STREAM" ||
		RandomAccess.String() != "RandomAccess" || FFT.String() != "FFT" {
		t.Fatal("kernel names wrong")
	}
	e := Entry{Kernel: STREAM, ProblemSize: 17400, MemoryMB: 575}
	if e.String() != "STREAM/17400 (575MB)" {
		t.Fatalf("entry string = %q", e.String())
	}
}

func TestBaseTimeMonotonicInSize(t *testing.T) {
	for _, k := range Kernels() {
		rows := CatalogueFor(k)
		for i := 1; i < len(rows); i++ {
			a := baseTime(k, rows[i-1].MemoryMB)
			b := baseTime(k, rows[i].MemoryMB)
			if b <= a {
				t.Fatalf("%v base time not monotonic: %v then %v", k, a, b)
			}
		}
	}
}
