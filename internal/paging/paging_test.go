package paging

import (
	"testing"

	"ampom/internal/cluster"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// rig is a two-node harness: a deputy at the origin and a pager at the
// destination, as after a lightweight migration of a process with n pages.
type rig struct {
	eng    *sim.Engine
	origin *cluster.Node
	dest   *cluster.Node
	link   *netmodel.Link
	as     *memory.AddressSpace
	tables *memory.TablePair
	deputy *Deputy
	pager  *Pager
}

func newRig(t *testing.T, pages int64) *rig {
	t.Helper()
	eng := sim.New()
	origin := cluster.NewNode(eng, "origin", 1)
	dest := cluster.NewNode(eng, "dest", 1)
	link := netmodel.NewLink(eng, netmodel.FastEthernet(), origin.NIC, dest.NIC)
	layout := memory.MustLayout(1, pages-2, 1)
	as := memory.NewAddressSpace(layout)
	as.EvictAllToRemote()
	tables := memory.NewTablePair(pages)
	return &rig{
		eng: eng, origin: origin, dest: dest, link: link, as: as, tables: tables,
		deputy: NewDeputy(DefaultDeputyConfig(), origin, link, tables),
		pager:  NewPager(DefaultPagerConfig(), dest, link, as),
	}
}

func TestWireSizes(t *testing.T) {
	req := PageRequest{Demand: 5, Prefetch: []memory.PageNum{6, 7}}
	if req.WireSize() != ReqHeaderBytes+3*ReqPerPageBytes {
		t.Fatalf("request size = %d", req.WireSize())
	}
	req = PageRequest{Demand: NoDemand, Prefetch: []memory.PageNum{6}}
	if req.WireSize() != ReqHeaderBytes+ReqPerPageBytes {
		t.Fatalf("prefetch-only size = %d", req.WireSize())
	}
	rep := PageReply{Page: 5}
	if rep.WireSize() != memory.PageSize+ReplyOverhead {
		t.Fatalf("reply size = %d", rep.WireSize())
	}
}

func TestDemandFetch(t *testing.T) {
	r := newRig(t, 64)
	resumed := simtime.Time(-1)
	r.pager.Request(7, nil)
	r.pager.Wait(7, func() { resumed = r.eng.Now() })
	r.eng.RunAll()

	if resumed < 0 {
		t.Fatal("waiter never resumed")
	}
	if r.as.State(7) != memory.StateResident {
		t.Fatalf("page state = %v after demand fetch", r.as.State(7))
	}
	// Ownership moved (paper §2.2): origin copy deleted.
	if r.tables.HPT.Loc(7) != memory.LocUnmapped || r.tables.MPT.Loc(7) != memory.LocMigrant {
		t.Fatal("tables not updated on transfer")
	}
	if err := r.tables.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if r.pager.Stats.DemandRequested != 1 || r.deputy.Stats.DemandServed != 1 {
		t.Fatalf("stats: %+v / %+v", r.pager.Stats, r.deputy.Stats)
	}
}

func TestDemandServedBeforePrefetch(t *testing.T) {
	r := newRig(t, 64)
	var resumedAt simtime.Time
	r.pager.Request(10, []memory.PageNum{20, 21, 22, 23, 24, 25, 26, 27, 28, 29})
	r.pager.Wait(10, func() { resumedAt = r.eng.Now() })
	r.eng.RunAll()

	// The demand page is first on the wire: the stall must be roughly one
	// RTT plus ONE page serialisation, not eleven.
	onePage := netmodel.FastEthernet().TransferTime(memory.PageSize + ReplyOverhead)
	budget := simtime.Duration(float64(onePage)*2.5) + 2*netmodel.FastEthernet().LatencyOneWay + simtime.Millisecond
	if resumedAt.Sub(0) > budget {
		t.Fatalf("resumed after %v, want ≈ RTT + 1 page (%v)", resumedAt, budget)
	}
	if r.deputy.Stats.PrefetchServed != 10 {
		t.Fatalf("prefetch served = %d", r.deputy.Stats.PrefetchServed)
	}
}

func TestPrefetchFiltering(t *testing.T) {
	r := newRig(t, 64)
	// Page 30 resident, 31 in flight: neither may be re-requested.
	r.as.SetState(30, memory.StateResident)
	r.as.SetState(31, memory.StateInFlight)
	n := r.pager.Request(NoDemand, []memory.PageNum{30, 31, 32})
	if n != 1 {
		t.Fatalf("requested %d prefetch pages, want 1 (filtering)", n)
	}
	if r.as.State(32) != memory.StateInFlight {
		t.Fatal("requested page not marked in flight")
	}
}

func TestEmptyRequestNotSent(t *testing.T) {
	r := newRig(t, 64)
	r.as.SetState(5, memory.StateResident)
	if n := r.pager.Request(NoDemand, []memory.PageNum{5}); n != 0 {
		t.Fatalf("n = %d", n)
	}
	r.eng.RunAll()
	if r.pager.Stats.RequestsSent != 0 || r.deputy.Stats.Requests != 0 {
		t.Fatal("empty request went on the wire")
	}
}

func TestDemandExcludedFromPrefetchList(t *testing.T) {
	r := newRig(t, 64)
	n := r.pager.Request(9, []memory.PageNum{9, 10})
	if n != 1 {
		t.Fatalf("prefetch count = %d, want 1 (demand page excluded)", n)
	}
	r.pager.Wait(9, func() {})
	r.eng.RunAll()
	if r.deputy.Stats.DemandServed != 1 || r.deputy.Stats.PrefetchServed != 1 {
		t.Fatalf("deputy stats = %+v", r.deputy.Stats)
	}
}

func TestInstallArrived(t *testing.T) {
	r := newRig(t, 64)
	r.pager.Request(NoDemand, []memory.PageNum{12, 13, 14})
	r.eng.RunAll()
	for _, p := range []memory.PageNum{12, 13, 14} {
		if r.as.State(p) != memory.StateArrived {
			t.Fatalf("page %d state = %v, want arrived (installed only at next fault)", p, r.as.State(p))
		}
	}
	cost := r.pager.InstallArrived()
	if cost <= 0 {
		t.Fatal("install cost must be positive")
	}
	for _, p := range []memory.PageNum{12, 13, 14} {
		if r.as.State(p) != memory.StateResident {
			t.Fatalf("page %d not installed", p)
		}
	}
	if r.pager.InstallArrived() != 0 {
		t.Fatal("second install should be free")
	}
	if r.pager.Stats.PagesInstalled != 3 {
		t.Fatalf("installed = %d", r.pager.Stats.PagesInstalled)
	}
}

func TestStallTimeAccounting(t *testing.T) {
	r := newRig(t, 64)
	r.pager.Request(7, nil)
	r.pager.Wait(7, func() {})
	r.eng.RunAll()
	if r.pager.Stats.StallTime <= 0 {
		t.Fatal("stall time not recorded")
	}
}

func TestDoubleWaitPanics(t *testing.T) {
	r := newRig(t, 64)
	r.pager.Request(7, nil)
	r.pager.Wait(7, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second waiter accepted")
		}
	}()
	r.pager.Wait(7, func() {})
}

func TestWaitOnNonInFlightPanics(t *testing.T) {
	r := newRig(t, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("wait on remote page accepted")
		}
	}()
	r.pager.Wait(7, func() {})
}

func TestDemandForLocalPagePanics(t *testing.T) {
	r := newRig(t, 64)
	r.as.SetState(7, memory.StateResident)
	defer func() {
		if recover() == nil {
			t.Fatal("demand for resident page accepted")
		}
	}()
	r.pager.Request(7, nil)
}

func TestDeputySkipsAlreadyTransferred(t *testing.T) {
	r := newRig(t, 64)
	// Simulate a stale request: page 8 already migrated.
	if err := r.tables.TransferToMigrant(8); err != nil {
		t.Fatal(err)
	}
	r.as.SetState(8, memory.StateRemote) // migrant side believes it's remote
	r.pager.Request(NoDemand, []memory.PageNum{8})
	// The reply never comes; the pager would wait forever on a demand, but
	// a prefetch just stays in flight. The deputy must count the skip.
	r.eng.RunAll()
	if r.deputy.Stats.Skipped != 1 {
		t.Fatalf("skipped = %d", r.deputy.Stats.Skipped)
	}
	if r.pager.Stats.PagesArrived != 0 {
		t.Fatal("phantom page arrived")
	}
}

// TestBulkTransferConservation: requesting every page in batches moves each
// page exactly once and preserves table consistency throughout.
func TestBulkTransferConservation(t *testing.T) {
	const pages = 256
	r := newRig(t, pages)
	var batch []memory.PageNum
	for p := memory.PageNum(0); p < pages; p++ {
		batch = append(batch, p)
		if len(batch) == 32 {
			r.pager.Request(NoDemand, batch)
			batch = nil
		}
	}
	r.eng.RunAll()
	if r.pager.Stats.PagesArrived != pages {
		t.Fatalf("arrived = %d, want %d", r.pager.Stats.PagesArrived, pages)
	}
	if got := r.deputy.Stats.PrefetchServed; got != pages {
		t.Fatalf("served = %d", got)
	}
	r.pager.InstallArrived()
	if r.as.CountInState(memory.StateResident) != pages {
		t.Fatalf("resident = %d", r.as.CountInState(memory.StateResident))
	}
	if err := r.tables.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if r.tables.HPT.Mapped() != 0 {
		t.Fatalf("origin still stores %d pages", r.tables.HPT.Mapped())
	}
}

func TestOutstanding(t *testing.T) {
	r := newRig(t, 64)
	r.pager.Request(NoDemand, []memory.PageNum{1, 2, 3})
	if r.pager.Outstanding() != 3 {
		t.Fatalf("outstanding = %d", r.pager.Outstanding())
	}
	r.eng.RunAll()
	if r.pager.Outstanding() != 0 {
		t.Fatalf("outstanding after drain = %d", r.pager.Outstanding())
	}
}

func TestDeputyGating(t *testing.T) {
	r := newRig(t, 64)
	// Gate the deputy far in the future: a request parks instead of being
	// served (the FFA file server before its flush lands).
	r.deputy.SetAvailableAfter(simtime.Time(10 * simtime.Second))
	r.pager.Request(NoDemand, []memory.PageNum{5, 6})
	r.eng.Run(simtime.Time(simtime.Second))
	if r.pager.Stats.PagesArrived != 0 {
		t.Fatal("gated deputy served pages early")
	}
	// Releasing the gate at its instant drains the parked request.
	r.eng.At(simtime.Time(10*simtime.Second), func() {
		r.deputy.SetAvailableAfter(r.eng.Now())
	})
	r.eng.RunAll()
	if r.pager.Stats.PagesArrived != 2 {
		t.Fatalf("parked request not drained: arrived = %d", r.pager.Stats.PagesArrived)
	}
}

func TestDeputyGateInPastIsTransparent(t *testing.T) {
	r := newRig(t, 64)
	r.deputy.SetAvailableAfter(0) // already available
	r.pager.Request(NoDemand, []memory.PageNum{5})
	r.eng.RunAll()
	if r.pager.Stats.PagesArrived != 1 {
		t.Fatal("past gate blocked service")
	}
}
