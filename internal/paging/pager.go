package paging

import (
	"fmt"

	"ampom/internal/cluster"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/simtime"
)

// PagerConfig prices the migrant-side fault handling.
type PagerConfig struct {
	// FaultBase is charged at every page fault (trap, handler entry).
	FaultBase simtime.Duration
	// InstallPerPage is charged per arrived page copied into the address
	// space (Algorithm 1's "copy these pages to the migrant's address
	// space").
	InstallPerPage simtime.Duration
}

// DefaultPagerConfig returns the 2 GHz P4 calibration.
func DefaultPagerConfig() PagerConfig {
	return PagerConfig{
		FaultBase:      2 * simtime.Microsecond,
		InstallPerPage: 1500 * simtime.Nanosecond,
	}
}

// PagerStats accounts the migrant-side paging activity. The evaluation
// figures read these directly:
//
//   - HardFaults is Figure 7's "number of page fault requests": faults on
//     pages that were neither local nor in flight, forcing a demand request
//     to the origin.
//   - PrefetchRequested/HardFaults is Figure 8's prefetched pages per page
//     fault (request).
type PagerStats struct {
	HardFaults int64 // demand request sent, full stall
	WaitFaults int64 // page already in flight, stalled without a request
	SoftFaults int64 // page had arrived, install only

	RequestsSent      int64 // PageRequest messages carrying ≥ 1 page
	PrefetchOnly      int64 // requests with no demand page
	PrefetchRequested int64 // pages requested as prefetch
	DemandRequested   int64 // pages requested on demand

	PagesArrived   int64
	PagesInstalled int64
	BytesReceived  int64

	StallTime simtime.Duration // time the process spent blocked on pages
}

// Pager is the migrant-side remote paging engine: it owns the residency
// state machine, sends batched requests, buffers arrivals, and wakes the
// executor when the page it stalled on arrives.
type Pager struct {
	cfg  PagerConfig
	node *cluster.Node
	link *netmodel.Link
	as   *memory.AddressSpace

	seq     uint64
	arrived []memory.PageNum // arrived but not yet installed

	// waiting executor state
	waitingOn    memory.PageNum
	waitingSince simtime.Time
	resume       func()

	Stats PagerStats
}

// NewPager installs a pager for the migrant's address space on node. It
// registers itself as a payload handler for PageReply messages.
func NewPager(cfg PagerConfig, node *cluster.Node, link *netmodel.Link, as *memory.AddressSpace) *Pager {
	p := &Pager{cfg: cfg, node: node, link: link, as: as, waitingOn: NoDemand}
	node.Handle(p.handle)
	return p
}

// AddressSpace returns the migrant's address space.
func (p *Pager) AddressSpace() *memory.AddressSpace { return p.as }

// FaultBaseCost returns the per-fault handler entry cost on this node.
func (p *Pager) FaultBaseCost() simtime.Duration { return p.node.Scale(p.cfg.FaultBase) }

// InstallArrived copies every buffered arrived page into the address space
// and returns the CPU cost of doing so. Algorithm 1 performs this at the
// top of each fault.
func (p *Pager) InstallArrived() simtime.Duration {
	if len(p.arrived) == 0 {
		return 0
	}
	n := 0
	for _, page := range p.arrived {
		if p.as.State(page) == memory.StateArrived {
			p.as.SetState(page, memory.StateResident)
			n++
		}
	}
	p.arrived = p.arrived[:0]
	p.Stats.PagesInstalled += int64(n)
	return p.node.Scale(p.cfg.InstallPerPage * simtime.Duration(n))
}

// Request sends one batched paging request: demand is the faulted page
// (NoDemand when the fault was satisfied locally), prefetch the
// dependent-zone candidates. Pages that are not remote any more are
// filtered out here — "if j is not stored locally, record j in the remote
// paging request" (Algorithm 1). It returns how many prefetch pages were
// actually requested.
func (p *Pager) Request(demand memory.PageNum, prefetch []memory.PageNum) int {
	var wanted []memory.PageNum
	for _, page := range prefetch {
		if page == demand {
			continue
		}
		if p.as.State(page) == memory.StateRemote {
			wanted = append(wanted, page)
			p.as.SetState(page, memory.StateInFlight)
		}
	}
	if demand != NoDemand {
		if st := p.as.State(demand); st != memory.StateRemote {
			panic(fmt.Sprintf("paging: demand request for page %d in state %v", demand, st))
		}
		p.as.SetState(demand, memory.StateInFlight)
		p.Stats.DemandRequested++
	}
	if demand == NoDemand && len(wanted) == 0 {
		return 0 // nothing to ask for; no message
	}

	p.seq++
	req := PageRequest{Seq: p.seq, Demand: demand, Prefetch: wanted}
	p.Stats.RequestsSent++
	if demand == NoDemand {
		p.Stats.PrefetchOnly++
	}
	p.Stats.PrefetchRequested += int64(len(wanted))
	p.link.Send(p.node.NIC, netmodel.Message{Size: req.WireSize(), Payload: req})
	return len(wanted)
}

// Wait registers the executor as blocked on page, with resume invoked once
// the page has arrived and been installed. The page must be in flight
// (either from this fault's demand request or an earlier prefetch).
func (p *Pager) Wait(page memory.PageNum, resume func()) {
	if st := p.as.State(page); st != memory.StateInFlight {
		panic(fmt.Sprintf("paging: wait on page %d in state %v", page, st))
	}
	if p.resume != nil {
		panic("paging: second waiter registered")
	}
	p.waitingOn = page
	p.waitingSince = p.node.Eng.Now()
	p.resume = resume
}

// handle consumes PageReply messages.
func (p *Pager) handle(payload any) bool {
	rep, ok := payload.(PageReply)
	if !ok {
		return false
	}
	p.Stats.PagesArrived++
	p.Stats.BytesReceived += rep.WireSize()

	if st := p.as.State(rep.Page); st != memory.StateInFlight {
		panic(fmt.Sprintf("paging: arrival of page %d in state %v", rep.Page, st))
	}
	p.as.SetState(rep.Page, memory.StateArrived)
	p.arrived = append(p.arrived, rep.Page)

	if p.resume != nil && rep.Page == p.waitingOn {
		// The stalled fault completes: install everything buffered (we are
		// still inside the fault handler) and resume the process.
		p.Stats.StallTime += p.node.Eng.Now().Sub(p.waitingSince)
		resume := p.resume
		p.resume = nil
		p.waitingOn = NoDemand
		cost := p.InstallArrived()
		p.node.Eng.Schedule(cost, resume)
	}
	return true
}

// Outstanding returns the number of in-flight pages.
func (p *Pager) Outstanding() int64 { return p.as.CountInState(memory.StateInFlight) }
