// Package paging implements the remote paging support of paper §2.2: the
// wire protocol between a migrant and the deputy process left at its origin
// node, the deputy itself, and the migrant-side pager that tracks page
// residency, batches prefetch requests, and accounts every statistic the
// evaluation figures need.
//
// Protocol: the migrant sends one PageRequest per fault-time analysis,
// carrying an optional demand page and the dependent-zone pages to
// prefetch. The deputy replies with one PageReply message per page —
// demand page first — so replies stream back-to-back down the link and the
// round-trip latency is paid once per batch (the pipelining effect of
// §5.4). Serving a page deletes it at the origin and updates the HPT; the
// migrant flips its MPT entry when the page arrives.
package paging

import (
	"fmt"

	"ampom/internal/cluster"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/simtime"
)

// NoDemand marks a PageRequest that carries only prefetches.
const NoDemand = memory.PageNum(-1)

// Wire sizing. Page identifiers travel as 6-byte table entries, matching
// the MPT entry size.
const (
	ReqHeaderBytes  = 64
	ReqPerPageBytes = 6
	ReplyOverhead   = 64
)

// PageRequest asks the deputy for pages. Demand is the faulted page the
// migrant is stalled on (NoDemand if none); Prefetch lists dependent-zone
// pages wanted ahead of use.
type PageRequest struct {
	Seq      uint64
	Demand   memory.PageNum
	Prefetch []memory.PageNum
}

// WireSize returns the request's bytes on the wire.
func (r PageRequest) WireSize() int64 {
	n := int64(len(r.Prefetch))
	if r.Demand != NoDemand {
		n++
	}
	return ReqHeaderBytes + n*ReqPerPageBytes
}

// PageReply carries one page of data to the migrant.
type PageReply struct {
	Seq    uint64
	Page   memory.PageNum
	Demand bool // serving the request's demand page
}

// WireSize returns the reply's bytes on the wire.
func (r PageReply) WireSize() int64 { return memory.PageSize + ReplyOverhead }

// DeputyConfig prices the deputy's CPU work.
type DeputyConfig struct {
	// ServeBase is charged once per request (wakeup, request parse).
	ServeBase simtime.Duration
	// ServePerPage is charged per page looked up and queued.
	ServePerPage simtime.Duration
}

// DefaultDeputyConfig returns the 2 GHz P4 calibration.
func DefaultDeputyConfig() DeputyConfig {
	return DeputyConfig{
		ServeBase:    25 * simtime.Microsecond,
		ServePerPage: 2 * simtime.Microsecond,
	}
}

// DeputyStats counts the deputy's served traffic.
type DeputyStats struct {
	Requests       int64 // requests received
	DemandServed   int64 // demand pages sent
	PrefetchServed int64 // prefetch pages sent
	Skipped        int64 // requested pages no longer stored at the origin
	BytesSent      int64
}

// Deputy is the origin-side stub process: after migration it "only answers
// remote paging requests and executes system calls on behalf of the
// migrant" (§2.2). It owns the HPT side of the table pair.
//
// A Deputy also models the *file server* of Roush's original Freeze Free
// Algorithm: with SetAvailableAfter, page service is gated until the
// origin's dirty-page flush has landed (paper Figure 2, middle).
type Deputy struct {
	cfg    DeputyConfig
	node   *cluster.Node
	link   *netmodel.Link
	tables *memory.TablePair

	availableAfter simtime.Time
	gated          []gatedRequest

	Stats DeputyStats
}

// gatedRequest is a request parked until the backing store is ready.
type gatedRequest struct {
	seq    uint64
	pages  []memory.PageNum
	demand map[memory.PageNum]bool
}

// SetAvailableAfter gates page service until instant t: requests arriving
// earlier are parked and drained once the store holds the pages. Passing
// the current time (or any past instant) releases parked requests
// immediately.
func (d *Deputy) SetAvailableAfter(t simtime.Time) {
	d.availableAfter = t
	if d.node.Eng.Now() < t {
		return
	}
	for _, g := range d.gated {
		g := g
		cost := d.node.Scale(d.cfg.ServeBase + d.cfg.ServePerPage*simtime.Duration(len(g.pages)))
		d.node.Eng.Schedule(cost, func() { d.serve(g.seq, g.pages, g.demand) })
	}
	d.gated = nil
}

// NewDeputy installs a deputy on node serving pages across link from the
// table pair. It registers itself as a payload handler.
func NewDeputy(cfg DeputyConfig, node *cluster.Node, link *netmodel.Link, tables *memory.TablePair) *Deputy {
	d := &Deputy{cfg: cfg, node: node, link: link, tables: tables}
	node.Handle(d.handle)
	return d
}

func (d *Deputy) handle(payload any) bool {
	req, ok := payload.(PageRequest)
	if !ok {
		return false
	}
	d.Stats.Requests++

	// The demand page is served first — the migrant is stalled on it — and
	// the dependent zone streams behind it.
	pages := make([]memory.PageNum, 0, len(req.Prefetch)+1)
	demand := map[memory.PageNum]bool{}
	if req.Demand != NoDemand {
		pages = append(pages, req.Demand)
		demand[req.Demand] = true
	}
	pages = append(pages, req.Prefetch...)

	if d.node.Eng.Now() < d.availableAfter {
		d.gated = append(d.gated, gatedRequest{seq: req.Seq, pages: pages, demand: demand})
		return true
	}
	cost := d.node.Scale(d.cfg.ServeBase + d.cfg.ServePerPage*simtime.Duration(len(pages)))
	d.node.Eng.Schedule(cost, func() { d.serve(req.Seq, pages, demand) })
	return true
}

func (d *Deputy) serve(seq uint64, pages []memory.PageNum, demand map[memory.PageNum]bool) {
	for _, p := range pages {
		if d.tables.HPT.Loc(p) == memory.LocUnmapped {
			// Already transferred (or never stored) — a benign race when a
			// demand fault and an in-flight prefetch cross on the wire.
			d.Stats.Skipped++
			continue
		}
		if err := d.tables.TransferToMigrant(p); err != nil {
			panic(fmt.Sprintf("paging: deputy serving page %d: %v", p, err))
		}
		rep := PageReply{Seq: seq, Page: p, Demand: demand[p]}
		d.Stats.BytesSent += rep.WireSize()
		if demand[p] {
			d.Stats.DemandServed++
		} else {
			d.Stats.PrefetchServed++
		}
		d.link.Send(d.node.NIC, netmodel.Message{Size: rep.WireSize(), Payload: rep})
	}
}
