package infod

import (
	"testing"

	"ampom/internal/cluster"
	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// gossipLine wires n gossip daemons into a line topology with a fixed
// per-hop delay, delivered through a direct send hook (no fabric): node i
// reaches node j in |i-j| hops of hopDelay each. This isolates the
// daemon's merge/age logic from routing.
func gossipLine(t *testing.T, n int, fanout int, hopDelay simtime.Duration) (*sim.Engine, []*Gossip) {
	t.Helper()
	eng := sim.New()
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		nodes[i] = cluster.NewNode(eng, "g", 1)
	}
	daemons := make([]*Gossip, n)
	cfg := GossipConfig{Period: simtime.Second, Fanout: fanout}
	for i := range daemons {
		i := i
		send := func(dst int, m netmodel.Message) {
			hops := dst - i
			if hops < 0 {
				hops = -hops
			}
			eng.Schedule(simtime.Duration(hops)*hopDelay, func() { nodes[dst].Deliver(m.Payload) })
		}
		daemons[i] = NewGossip(cfg, nodes[i], i, n, 11.36e6, send, uint64(1000+i))
		daemons[i].SetProbe(func() LoadSample {
			return LoadSample{Load: float64(i), Queue: 2 * i, UsedMemMB: int64(i)}
		})
		daemons[i].Start()
	}
	return eng, daemons
}

func TestGossipMergesNewestWins(t *testing.T) {
	eng, daemons := gossipLine(t, 6, 2, simtime.Millisecond)
	eng.Run(simtime.Time(15 * simtime.Second))
	for i, g := range daemons {
		for o := 0; o < 6; o++ {
			e := g.Entry(o)
			if !e.Known {
				t.Fatalf("daemon %d missing origin %d", i, o)
			}
			if e.Sample.Queue != 2*o || e.Sample.UsedMemMB != int64(o) {
				t.Fatalf("daemon %d origin %d carries sample %+v", i, o, e.Sample)
			}
			if age, ok := g.EntryAge(o); !ok || age < 0 {
				t.Fatalf("daemon %d origin %d age %v, %v", i, o, age, ok)
			}
		}
	}
}

func TestGossipStalenessGrowsWithDistance(t *testing.T) {
	// With a strongly distance-proportional hop delay, the far end of the
	// line must accumulate a larger staleness estimate for origin 0 than
	// origin 0's direct neighbour does.
	eng, daemons := gossipLine(t, 8, 1, 40*simtime.Millisecond)
	eng.Run(simtime.Time(60 * simtime.Second))
	near, okN := daemons[1].AgeRTT(0)
	far, okF := daemons[7].AgeRTT(0)
	if !okN || !okF {
		t.Fatalf("missing estimates: near %v far %v", okN, okF)
	}
	if far <= near {
		t.Fatalf("staleness did not grow with distance: near %v, far %v", near, far)
	}
}

func TestGossipEstimatesAndBandwidth(t *testing.T) {
	eng, daemons := gossipLine(t, 4, 2, simtime.Millisecond)
	eng.Run(simtime.Time(10 * simtime.Second))
	g := daemons[2]
	est := g.Estimates(0)
	if est.RTT <= 0 || est.PageTransfer <= 0 {
		t.Fatalf("degenerate estimates %+v", est)
	}
	// Unheard origins fall back to the prior, never zero.
	fresh := NewGossip(GossipConfig{}, cluster.NewNode(eng, "x", 1), 0, 4, 11.36e6,
		func(int, netmodel.Message) {}, 1)
	if est := fresh.Estimates(3); est.RTT <= 0 || est.PageTransfer <= 0 {
		t.Fatalf("fresh daemon estimates degenerate: %+v", est)
	}
	if fresh.MeanRTT() <= 0 {
		t.Fatal("fresh daemon mean RTT degenerate")
	}
	if bw := g.Bandwidth(); bw <= 0 || bw > 11.36e6 {
		t.Fatalf("bandwidth estimate %g out of range", bw)
	}
}

func TestGossipStopHaltsPushes(t *testing.T) {
	eng, daemons := gossipLine(t, 3, 1, simtime.Millisecond)
	eng.Run(simtime.Time(5 * simtime.Second))
	for _, g := range daemons {
		g.Stop()
	}
	before := eng.Processed
	eng.Run(simtime.Time(10 * simtime.Second))
	// Only already-queued sends drain; no new periodic work appears.
	if eng.Processed > before+64 {
		t.Fatalf("stopped daemons still generated %d events", eng.Processed-before)
	}
}

// gossipMesh wires n daemons into a full mesh with direct delivery after a
// fixed delay, letting the test intercept (and optionally drop) every
// message. cfg is used as given, so tests can pin windows, ages and pulls.
func gossipMesh(t *testing.T, n int, cfg GossipConfig, delay simtime.Duration,
	intercept func(src, dst int, m netmodel.Message) bool) (*sim.Engine, []*Gossip) {
	t.Helper()
	eng := sim.New()
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		nodes[i] = cluster.NewNode(eng, "g", 1)
	}
	daemons := make([]*Gossip, n)
	for i := range daemons {
		i := i
		send := func(dst int, m netmodel.Message) {
			if intercept != nil && !intercept(i, dst, m) {
				return
			}
			eng.Schedule(delay, func() { nodes[dst].Deliver(m.Payload) })
		}
		daemons[i] = NewGossip(cfg, nodes[i], i, n, 11.36e6, send, uint64(1000+i))
		daemons[i].SetProbe(func() LoadSample {
			return LoadSample{Load: float64(i), Queue: 2 * i, UsedMemMB: int64(i)}
		})
		daemons[i].Start()
	}
	return eng, daemons
}

// TestGossipConfigNegativeDisables locks the config convention: zero still
// means "use the default", while a negative Jitter/MaxAge/Alpha/PullPeriod
// explicitly disables the mechanism — the knobs withDefaults used to
// silently overwrite.
func TestGossipConfigNegativeDisables(t *testing.T) {
	def := GossipConfig{}.withDefaults()
	if def.Jitter != 0.5 || def.Alpha != 0.1 || def.MaxAge != 30*simtime.Second {
		t.Fatalf("zero knobs did not take defaults: %+v", def)
	}
	if def.WindowLen != DefaultWindowLen {
		t.Fatalf("default window %d, want %d", def.WindowLen, DefaultWindowLen)
	}
	if def.PullPeriod != 4*def.Period {
		t.Fatalf("default pull period %v, want 4×%v", def.PullPeriod, def.Period)
	}
	off := GossipConfig{Jitter: -1, MaxAge: -simtime.Second, Alpha: -0.5, PullPeriod: -1}.withDefaults()
	if off.Jitter != 0 {
		t.Fatalf("negative Jitter resolved to %g, want disabled (0)", off.Jitter)
	}
	if off.Alpha != 0 {
		t.Fatalf("negative Alpha resolved to %g, want disabled (0)", off.Alpha)
	}
	if off.MaxAge > 0 {
		t.Fatalf("negative MaxAge resolved to %v, want disabled", off.MaxAge)
	}
	if off.PullPeriod > 0 {
		t.Fatalf("negative PullPeriod resolved to %v, want disabled", off.PullPeriod)
	}
	// Disabled jitter draws exactly SchedDelay, every time.
	eng := sim.New()
	g := NewGossip(GossipConfig{Jitter: -1}, cluster.NewNode(eng, "x", 1), 0, 2, 11.36e6,
		func(int, netmodel.Message) {}, 1)
	for i := 0; i < 8; i++ {
		if d := g.schedDelay(); d != g.cfg.SchedDelay {
			t.Fatalf("disabled jitter drew delay %v, want exactly %v", d, g.cfg.SchedDelay)
		}
	}
}

// TestGossipPushDistinctPeers locks the fanout fix: one push round never
// targets the same peer twice, so configured fanout is always realised.
// With fanout = n-1 every round must cover the entire peer set.
func TestGossipPushDistinctPeers(t *testing.T) {
	const n, fanout = 4, 3
	sent := make(map[int][]int)
	cfg := GossipConfig{
		Period: simtime.Second, Fanout: fanout,
		SchedDelay: simtime.Duration(1), Jitter: -1, PullPeriod: -1,
	}
	eng, _ := gossipMesh(t, n, cfg, simtime.Millisecond,
		func(src, dst int, m netmodel.Message) bool {
			if _, ok := m.Payload.(gossipMsg); ok {
				sent[src] = append(sent[src], dst)
			}
			return true
		})
	eng.Run(simtime.Time(10500 * simtime.Millisecond))
	for src := 0; src < n; src++ {
		dsts := sent[src]
		if len(dsts) < 10*fanout {
			t.Fatalf("node %d pushed %d messages, want ≥ %d", src, len(dsts), 10*fanout)
		}
		// Scheduling delays are pinned, so sends arrive in per-round groups
		// of exactly fanout; each group must cover all n-1 peers.
		for r := 0; r+fanout <= len(dsts); r += fanout {
			seen := map[int]bool{}
			for _, d := range dsts[r : r+fanout] {
				if d == src {
					t.Fatalf("node %d pushed to itself", src)
				}
				if seen[d] {
					t.Fatalf("node %d round %d drew peer %d twice: %v", src, r/fanout, d, dsts[r:r+fanout])
				}
				seen[d] = true
			}
		}
	}
}

// TestGossipWindowBoundsWire locks the tentpole invariant: no message ever
// carries more than WindowLen entries whatever the cluster size, while a
// daemon's accumulated view still grows past the window.
func TestGossipWindowBoundsWire(t *testing.T) {
	const n, window = 40, 4
	cfg := GossipConfig{Period: simtime.Second, Fanout: 2, WindowLen: window}
	maxEntries, msgs := 0, 0
	eng, daemons := gossipMesh(t, n, cfg, simtime.Millisecond,
		func(src, dst int, m netmodel.Message) bool {
			if g, ok := m.Payload.(gossipMsg); ok {
				msgs++
				if len(g.Entries) > maxEntries {
					maxEntries = len(g.Entries)
				}
				if want := cfg.withDefaults().MsgBytes + cfg.withDefaults().EntryBytes*int64(len(g.Entries)); m.Size != want {
					t.Fatalf("message size %d for %d entries, want %d", m.Size, len(g.Entries), want)
				}
			}
			return true
		})
	eng.Run(simtime.Time(40 * simtime.Second))
	if msgs == 0 {
		t.Fatal("no gossip messages observed")
	}
	if maxEntries > window {
		t.Fatalf("a push carried %d entries, window is %d", maxEntries, window)
	}
	best := 0
	for _, g := range daemons {
		if k := g.KnownCount(); k > best {
			best = k
		}
	}
	if best <= window {
		t.Fatalf("windowed pushes capped knowledge at %d origins; views must accumulate past the window (%d)", best, window)
	}
}

// TestGossipLocalReadsExpire locks the aging fix: entries past MaxAge stop
// serving local reads (the row reads Unknown), instead of reporting
// unbounded staleness to policies forever — while a negative MaxAge
// explicitly disables expiry.
func TestGossipLocalReadsExpire(t *testing.T) {
	run := func(maxAge simtime.Duration) []*Gossip {
		cfg := GossipConfig{Period: simtime.Second, Fanout: 2, MaxAge: maxAge}
		eng, daemons := gossipMesh(t, 4, cfg, simtime.Millisecond, nil)
		eng.Run(simtime.Time(10 * simtime.Second))
		for i, g := range daemons {
			for o := 0; o < 4; o++ {
				if o != i && !g.Entry(o).Known {
					t.Fatalf("daemon %d missing origin %d while gossiping", i, o)
				}
			}
			g.Stop()
		}
		// Idle far past MaxAge with every daemon stopped: nothing refreshes.
		eng.At(simtime.Time(30*simtime.Second), func() {})
		eng.Run(simtime.Time(30 * simtime.Second))
		return daemons
	}

	for i, g := range run(2 * simtime.Second) {
		for o := 0; o < 4; o++ {
			if o == i {
				continue
			}
			if g.Entry(o).Known {
				t.Fatalf("daemon %d still serves origin %d %v past MaxAge", i, o, 28*simtime.Second)
			}
			if _, ok := g.EntryAge(o); ok {
				t.Fatalf("daemon %d reports an age for expired origin %d", i, o)
			}
		}
		if g.KnownCount() != 0 {
			t.Fatalf("daemon %d counts %d live entries past MaxAge", i, g.KnownCount())
		}
	}

	// Negative MaxAge: aging disabled, stale entries serve forever.
	for i, g := range run(-simtime.Second) {
		for o := 0; o < 4; o++ {
			if o != i && !g.Entry(o).Known {
				t.Fatalf("daemon %d expired origin %d with aging disabled", i, o)
			}
		}
	}
}

// TestGossipAntiEntropyHealsPartition locks the pull rounds' purpose: two
// halves of a cluster are isolated from the first round (no cross entry is
// ever learned), the partition heals, and within a bounded number of pull
// rounds every daemon's view of every origin is Known — with a window much
// smaller than the cluster, so any single push or pull carries only a
// slice of the plane.
func TestGossipAntiEntropyHealsPartition(t *testing.T) {
	const (
		n      = 10
		healAt = simtime.Time(20 * simtime.Second)
	)
	cfg := GossipConfig{
		Period: simtime.Second, Fanout: 1, WindowLen: 3,
		PullPeriod: 2 * simtime.Second, MaxAge: 30 * simtime.Second,
	}
	var eng *sim.Engine
	sideOf := func(i int) bool { return i < n/2 }
	eng, daemons := gossipMesh(t, n, cfg, simtime.Millisecond,
		func(src, dst int, m netmodel.Message) bool {
			return eng.Now() >= healAt || sideOf(src) == sideOf(dst)
		})

	eng.Run(healAt)
	for i, g := range daemons {
		for o := 0; o < n; o++ {
			if sideOf(i) != sideOf(o) && g.Entry(o).Known {
				t.Fatalf("daemon %d knows cross-partition origin %d while partitioned", i, o)
			}
		}
	}

	// Bounded convergence: 10 pull rounds after the heal, every view of
	// every origin must be live again.
	eng.Run(healAt.Add(10 * cfg.PullPeriod))
	for i, g := range daemons {
		for o := 0; o < n; o++ {
			if o == i {
				continue
			}
			if !g.Entry(o).Known {
				t.Fatalf("daemon %d still missing origin %d ten pull rounds after the heal", i, o)
			}
		}
	}
}

func TestGossipDeterministicPeers(t *testing.T) {
	run := func() []GossipEntry {
		eng, daemons := gossipLine(t, 5, 2, simtime.Millisecond)
		eng.Run(simtime.Time(8 * simtime.Second))
		var out []GossipEntry
		for _, g := range daemons {
			for o := 0; o < 5; o++ {
				out = append(out, g.Entry(o))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
