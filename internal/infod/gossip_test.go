package infod

import (
	"testing"

	"ampom/internal/cluster"
	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// gossipLine wires n gossip daemons into a line topology with a fixed
// per-hop delay, delivered through a direct send hook (no fabric): node i
// reaches node j in |i-j| hops of hopDelay each. This isolates the
// daemon's merge/age logic from routing.
func gossipLine(t *testing.T, n int, fanout int, hopDelay simtime.Duration) (*sim.Engine, []*Gossip) {
	t.Helper()
	eng := sim.New()
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		nodes[i] = cluster.NewNode(eng, "g", 1)
	}
	daemons := make([]*Gossip, n)
	cfg := GossipConfig{Period: simtime.Second, Fanout: fanout}
	for i := range daemons {
		i := i
		send := func(dst int, m netmodel.Message) {
			hops := dst - i
			if hops < 0 {
				hops = -hops
			}
			eng.Schedule(simtime.Duration(hops)*hopDelay, func() { nodes[dst].Deliver(m.Payload) })
		}
		daemons[i] = NewGossip(cfg, nodes[i], i, n, 11.36e6, send, uint64(1000+i))
		daemons[i].SetProbe(func() LoadSample {
			return LoadSample{Load: float64(i), Queue: 2 * i, UsedMemMB: int64(i)}
		})
		daemons[i].Start()
	}
	return eng, daemons
}

func TestGossipMergesNewestWins(t *testing.T) {
	eng, daemons := gossipLine(t, 6, 2, simtime.Millisecond)
	eng.Run(simtime.Time(15 * simtime.Second))
	for i, g := range daemons {
		for o := 0; o < 6; o++ {
			e := g.Entry(o)
			if !e.Known {
				t.Fatalf("daemon %d missing origin %d", i, o)
			}
			if e.Sample.Queue != 2*o || e.Sample.UsedMemMB != int64(o) {
				t.Fatalf("daemon %d origin %d carries sample %+v", i, o, e.Sample)
			}
			if age, ok := g.EntryAge(o); !ok || age < 0 {
				t.Fatalf("daemon %d origin %d age %v, %v", i, o, age, ok)
			}
		}
	}
}

func TestGossipStalenessGrowsWithDistance(t *testing.T) {
	// With a strongly distance-proportional hop delay, the far end of the
	// line must accumulate a larger staleness estimate for origin 0 than
	// origin 0's direct neighbour does.
	eng, daemons := gossipLine(t, 8, 1, 40*simtime.Millisecond)
	eng.Run(simtime.Time(60 * simtime.Second))
	near, okN := daemons[1].AgeRTT(0)
	far, okF := daemons[7].AgeRTT(0)
	if !okN || !okF {
		t.Fatalf("missing estimates: near %v far %v", okN, okF)
	}
	if far <= near {
		t.Fatalf("staleness did not grow with distance: near %v, far %v", near, far)
	}
}

func TestGossipEstimatesAndBandwidth(t *testing.T) {
	eng, daemons := gossipLine(t, 4, 2, simtime.Millisecond)
	eng.Run(simtime.Time(10 * simtime.Second))
	g := daemons[2]
	est := g.Estimates(0)
	if est.RTT <= 0 || est.PageTransfer <= 0 {
		t.Fatalf("degenerate estimates %+v", est)
	}
	// Unheard origins fall back to the prior, never zero.
	fresh := NewGossip(GossipConfig{}, cluster.NewNode(eng, "x", 1), 0, 4, 11.36e6,
		func(int, netmodel.Message) {}, 1)
	if est := fresh.Estimates(3); est.RTT <= 0 || est.PageTransfer <= 0 {
		t.Fatalf("fresh daemon estimates degenerate: %+v", est)
	}
	if fresh.MeanRTT() <= 0 {
		t.Fatal("fresh daemon mean RTT degenerate")
	}
	if bw := g.Bandwidth(); bw <= 0 || bw > 11.36e6 {
		t.Fatalf("bandwidth estimate %g out of range", bw)
	}
}

func TestGossipStopHaltsPushes(t *testing.T) {
	eng, daemons := gossipLine(t, 3, 1, simtime.Millisecond)
	eng.Run(simtime.Time(5 * simtime.Second))
	for _, g := range daemons {
		g.Stop()
	}
	before := eng.Processed
	eng.Run(simtime.Time(10 * simtime.Second))
	// Only already-queued sends drain; no new periodic work appears.
	if eng.Processed > before+64 {
		t.Fatalf("stopped daemons still generated %d events", eng.Processed-before)
	}
}

func TestGossipDeterministicPeers(t *testing.T) {
	run := func() []GossipEntry {
		eng, daemons := gossipLine(t, 5, 2, simtime.Millisecond)
		eng.Run(simtime.Time(8 * simtime.Second))
		var out []GossipEntry
		for _, g := range daemons {
			for o := 0; o < 5; o++ {
				out = append(out, g.Entry(o))
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
