// Decentralised gossip dissemination — the switched-fabric replacement for
// the paired hub-spoke daemon exchange. One Gossip daemon runs per node;
// every period it pushes a bounded window of its load vector — its own
// fresh sample plus the l-1 most recently refreshed entries it has heard,
// the openMosix "l freshest entries" dissemination — to a few distinct
// random peers. Entries age as they propagate, and the t0 estimate AMPoM's
// Equation 3 consumes is derived per origin from the observed gossip-path
// timing. Because an entry's age accumulates queueing, scheduling delay and
// hop count, balancer policies on a large fabric see staleness that grows
// with topology distance — the MOSIX information-dissemination behaviour
// the related farm literature describes, rather than the paper's two-node
// pairing.
//
// Storage is compact: a daemon keeps only the origins it has actually
// heard from (a map of cells plus a recency ring ordering them by last
// refresh), never a dense length-n vector, so the whole gossip plane is
// O(n·l·retention) resident rather than O(n²). Alongside the periodic
// pushes, each daemon runs slower anti-entropy pull rounds: it asks one
// random peer for that peer's current window, which heals partitions and
// brings late joiners up to date even when pushes alone would starve them.
package infod

import (
	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/prng"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// DefaultWindowLen is the default bounded-window size l: how many entries
// (own sample included) one push or pull response carries.
const DefaultWindowLen = 32

// GossipConfig tunes a gossip daemon. Zero fields take defaults; the
// fields marked "negative disables" treat any negative value as an
// explicit off switch, so a zero-jitter or never-expiring configuration is
// expressible (zero still means "use the default", as everywhere else in
// the spec surface). The fabric layer always passes Period, Fanout and
// WindowLen explicitly (resolved from fabric.DefaultGossipPeriod/
// DefaultGossipFanout/DefaultGossipWindow); the local defaults here only
// serve direct NewGossip callers and mirror those values.
type GossipConfig struct {
	// Period is the gossip push period. Default 2 s (the paired daemons'
	// historical update period).
	Period simtime.Duration
	// Fanout is how many distinct random peers each push round targets.
	// Default 2.
	Fanout int
	// WindowLen is l, the maximum number of entries (own sample included)
	// one outgoing vector carries — the openMosix bounded partial view.
	// Default DefaultWindowLen.
	WindowLen int
	// PullPeriod is the anti-entropy pull period: every PullPeriod the
	// daemon asks one random peer for its window. Default 4×Period;
	// negative disables pulls.
	PullPeriod simtime.Duration
	// MaxAge expires entries: they are dropped from outgoing vectors and
	// local reads past MaxAge report Unknown. Default 30 s; negative
	// disables aging entirely (entries never expire).
	MaxAge simtime.Duration
	// SchedDelay is the mean user-level scheduling delay before a daemon
	// composes or merges a message. Default 6 ms, as for Config.
	SchedDelay simtime.Duration
	// Jitter is the fractional spread of SchedDelay. Default 0.5; negative
	// disables jitter (every delay is exactly SchedDelay).
	Jitter float64
	// Alpha is the EWMA weight folding new age samples into the per-origin
	// staleness estimate. Default 0.1; negative disables smoothing updates
	// (the estimate pins to the first observed sample).
	Alpha float64
	// BandwidthFloorFrac floors the bandwidth estimate at this fraction of
	// nominal capacity. Default 0.25.
	BandwidthFloorFrac float64
	// MsgBytes is the wire size of a gossip message header. Default 192.
	MsgBytes int64
	// EntryBytes is the wire size of one load-vector entry. Default 32.
	EntryBytes int64
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Period == 0 {
		c.Period = 2 * simtime.Second
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.WindowLen <= 0 {
		c.WindowLen = DefaultWindowLen
	}
	if c.PullPeriod == 0 {
		c.PullPeriod = 4 * c.Period
	}
	if c.MaxAge == 0 {
		c.MaxAge = 30 * simtime.Second
	}
	if c.SchedDelay == 0 {
		c.SchedDelay = 6 * simtime.Millisecond
	}
	switch {
	case c.Jitter == 0:
		c.Jitter = 0.5
	case c.Jitter < 0:
		c.Jitter = 0
	}
	switch {
	case c.Alpha == 0:
		c.Alpha = 0.1
	case c.Alpha < 0:
		c.Alpha = 0
	}
	if c.BandwidthFloorFrac == 0 {
		c.BandwidthFloorFrac = 0.25
	}
	if c.MsgBytes == 0 {
		c.MsgBytes = 192
	}
	if c.EntryBytes == 0 {
		c.EntryBytes = 32
	}
	return c
}

// LoadSample is one node's disseminated load state at a stamp instant.
type LoadSample struct {
	// Load is the CPU-scaled runnable load (queue length / CPU scale).
	Load float64
	// Queue is the raw runnable-queue length.
	Queue int
	// UsedMemMB is the resident memory footprint.
	UsedMemMB int64
}

// GossipEntry is one origin's entry in a daemon's load vector.
type GossipEntry struct {
	// Sample is the origin's load state as of Stamp.
	Sample LoadSample
	// Stamp is the origin-side composition instant of the sample.
	Stamp simtime.Time
	// Hops counts how many daemon-to-daemon pushes the entry crossed.
	Hops int
	// Known reports whether any sample for the origin has arrived yet.
	Known bool
}

// gossipEntryWire is one entry on the wire (hops as recorded by the
// sender; the receiver increments).
type gossipEntryWire struct {
	Origin int
	Entry  GossipEntry
}

// gossipMsg is one load-vector push (or pull response — the receiver
// merges both identically).
type gossipMsg struct {
	From    int
	Entries []gossipEntryWire
}

// gossipPullMsg is one anti-entropy pull request: the receiver replies to
// From with its own current window.
type gossipPullMsg struct {
	From int
}

// cell is one heard origin's state: the entry itself plus the per-origin
// staleness EWMA, and the recency-ring position of the origin's latest
// refresh (the dedup key the window composer checks).
type cell struct {
	entry   GossipEntry
	ageEst  simtime.Duration
	haveAge bool
	ringPos int64
}

// sweepFloor is the minimum heard-set size before expiry sweeps trigger.
const sweepFloor = 64

// Gossip is one node's gossip dissemination daemon.
type Gossip struct {
	cfg  GossipConfig
	eng  *sim.Engine
	node *cluster.Node
	id   int
	n    int
	send func(dst int, m netmodel.Message)
	rng  *prng.Source

	probe      func() LoadSample
	ticker     *sim.Ticker
	pullTicker *sim.Ticker

	// self is the daemon's own latest sample; cells holds only origins
	// actually heard from. ring is a circular buffer of origin ids in
	// refresh order (ringN total appends); an origin is current at ring
	// position p iff its cell's ringPos == p, so the window composer walks
	// the ring newest-first with O(1) dedup. sweepAt is the heard-set size
	// that triggers the next amortised expiry sweep.
	self    GossipEntry
	cells   map[int]*cell
	ring    []int32
	ringN   int64
	sweepAt int

	peerScratch []int

	// Bandwidth estimate state — the same NIC-counter differencing the
	// paired daemon uses.
	lastBytes   int64
	lastAt      simtime.Time
	bwEst       float64
	haveBw      bool
	nominalBw   float64
	minInterval simtime.Duration
}

// NewGossip creates the gossip daemon of node id in an n-node cluster.
// send routes one message to a peer (the fabric's topology path); seed
// drives the daemon's jitter and peer-selection stream. The daemon
// registers its message handler on the node; call Start to begin pushing.
func NewGossip(cfg GossipConfig, node *cluster.Node, id, n int, nominalBw float64, send func(dst int, m netmodel.Message), seed uint64) *Gossip {
	cfg = cfg.withDefaults()
	ringCap := 4 * cfg.WindowLen
	if ringCap < sweepFloor {
		ringCap = sweepFloor
	}
	g := &Gossip{
		cfg:         cfg,
		eng:         node.Eng,
		node:        node,
		id:          id,
		n:           n,
		send:        send,
		rng:         prng.New(seed),
		cells:       make(map[int]*cell),
		ring:        make([]int32, ringCap),
		sweepAt:     sweepFloor,
		nominalBw:   nominalBw,
		minInterval: 10 * simtime.Millisecond,
		lastAt:      node.Eng.Now(),
	}
	node.Handle(g.handle)
	return g
}

// ID returns the daemon's node id.
func (g *Gossip) ID() int { return g.id }

// SetProbe installs the local load probe sampled at every push round.
func (g *Gossip) SetProbe(f func() LoadSample) { g.probe = f }

// Start begins periodic pushes (and, unless disabled, anti-entropy pulls).
func (g *Gossip) Start() {
	if g.ticker != nil {
		return
	}
	g.ticker = sim.NewTicker(g.eng, g.cfg.Period, g.push)
	if g.cfg.PullPeriod > 0 {
		g.pullTicker = sim.NewTicker(g.eng, g.cfg.PullPeriod, g.pull)
	}
}

// Stop halts periodic pushes and pulls.
func (g *Gossip) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
	if g.pullTicker != nil {
		g.pullTicker.Stop()
		g.pullTicker = nil
	}
}

// schedDelay draws one user-level scheduling delay.
func (g *Gossip) schedDelay() simtime.Duration {
	j := 1 + g.cfg.Jitter*(2*g.rng.Float64()-1)
	return simtime.Duration(float64(g.cfg.SchedDelay) * j)
}

// expired reports whether a stamp has aged out under MaxAge (negative
// MaxAge: never).
func (g *Gossip) expired(stamp, now simtime.Time) bool {
	return g.cfg.MaxAge > 0 && now.Sub(stamp) > g.cfg.MaxAge
}

// compose re-probes the daemon's own sample and assembles the bounded
// outgoing window: the fresh self entry plus the most recently refreshed
// live entries off the recency ring, up to WindowLen total. Stale ring
// slots (an origin refreshed again later, or an entry past MaxAge) are
// skipped; expired cells encountered on the walk are reclaimed. The slice
// is allocated per call because it escapes into the in-flight message.
func (g *Gossip) compose(now simtime.Time) []gossipEntryWire {
	if g.probe != nil {
		g.self = GossipEntry{Sample: g.probe(), Stamp: now, Known: true}
	} else {
		g.self = GossipEntry{Stamp: now, Known: true}
	}
	max := g.cfg.WindowLen
	if m := len(g.cells) + 1; m < max {
		max = m
	}
	out := make([]gossipEntryWire, 0, max)
	out = append(out, gossipEntryWire{Origin: g.id, Entry: g.self})
	span := int64(len(g.ring))
	if g.ringN < span {
		span = g.ringN
	}
	for k := int64(1); k <= span && len(out) < g.cfg.WindowLen; k++ {
		pos := g.ringN - k
		o := int(g.ring[pos%int64(len(g.ring))])
		c, ok := g.cells[o]
		if !ok || c.ringPos != pos {
			continue // origin refreshed since (a newer slot covers it) or reclaimed
		}
		if g.expired(c.entry.Stamp, now) {
			delete(g.cells, o)
			continue
		}
		out = append(out, gossipEntryWire{Origin: o, Entry: c.entry})
	}
	return out
}

// pickPeers selects k distinct random peers (never the daemon itself) by
// rejection sampling into a reused scratch slice. One round's fanout never
// lands on the same peer twice, so configured fanout is always realised.
func (g *Gossip) pickPeers(k int) []int {
	if k > g.n-1 {
		k = g.n - 1
	}
	ps := g.peerScratch[:0]
	for len(ps) < k {
		dst := g.rng.Intn(g.n)
		if dst == g.id {
			continue
		}
		dup := false
		for _, p := range ps {
			if p == dst {
				dup = true
				break
			}
		}
		if !dup {
			ps = append(ps, dst)
		}
	}
	g.peerScratch = ps
	return ps
}

// push composes the outgoing window and hands it to Fanout distinct random
// peers, each after a scheduling delay. The vector is stamped at
// composition time, as the paired daemon stamps its payload.
func (g *Gossip) push() {
	snapshot := g.compose(g.eng.Now())
	if g.n <= 1 {
		return
	}
	size := g.cfg.MsgBytes + g.cfg.EntryBytes*int64(len(snapshot))
	msg := gossipMsg{From: g.id, Entries: snapshot}
	for _, dst := range g.pickPeers(g.cfg.Fanout) {
		dst := dst
		g.eng.Schedule(g.schedDelay(), func() {
			g.send(dst, netmodel.Message{Size: size, Payload: msg})
		})
	}
}

// pull runs one anti-entropy round: ask a single random peer for its
// current window. The response is an ordinary gossipMsg, merged like any
// push — so a partitioned or late-joining daemon converges within a
// bounded number of pull rounds once connectivity is back, even when the
// push windows alone would starve it.
func (g *Gossip) pull() {
	if g.n <= 1 {
		return
	}
	dst := g.pickPeers(1)[0]
	msg := gossipPullMsg{From: g.id}
	g.eng.Schedule(g.schedDelay(), func() {
		g.send(dst, netmodel.Message{Size: g.cfg.MsgBytes, Payload: msg})
	})
}

// handle consumes gossip traffic delivered to this node; merges and pull
// responses run after this side's scheduling delay (the daemon has to be
// woken and run).
func (g *Gossip) handle(payload any) bool {
	switch m := payload.(type) {
	case gossipMsg:
		g.eng.Schedule(g.schedDelay(), func() { g.merge(m) })
		return true
	case gossipPullMsg:
		g.eng.Schedule(g.schedDelay(), func() { g.servePull(m.From) })
		return true
	}
	return false
}

// servePull answers one anti-entropy request with this daemon's window.
func (g *Gossip) servePull(dst int) {
	if dst == g.id || dst < 0 || dst >= g.n {
		return
	}
	snapshot := g.compose(g.eng.Now())
	size := g.cfg.MsgBytes + g.cfg.EntryBytes*int64(len(snapshot))
	g.send(dst, netmodel.Message{Size: size, Payload: gossipMsg{From: g.id, Entries: snapshot}})
}

// merge folds a received window in: newer stamps win, hop counts
// increment, accepted entries move to the head of the recency ring, and
// every accepted entry contributes an age sample to the per-origin
// staleness estimate. Entries already past MaxAge on arrival are not
// resurrected.
func (g *Gossip) merge(m gossipMsg) {
	now := g.eng.Now()
	for _, w := range m.Entries {
		o := w.Origin
		if o == g.id || o < 0 || o >= g.n || !w.Entry.Known {
			continue
		}
		if g.expired(w.Entry.Stamp, now) {
			continue
		}
		c, ok := g.cells[o]
		if ok && w.Entry.Stamp <= c.entry.Stamp {
			continue
		}
		if !ok {
			c = &cell{}
			g.cells[o] = c
		}
		e := w.Entry
		e.Hops++
		c.entry = e
		c.ringPos = g.ringN
		g.ring[g.ringN%int64(len(g.ring))] = int32(o)
		g.ringN++
		g.recordAge(c, now.Sub(e.Stamp))
	}
	g.maybeSweep(now)
}

// maybeSweep reclaims expired cells once the heard set crosses the sweep
// threshold, then re-arms the threshold at twice the surviving size — an
// amortised-O(1) bound that keeps a daemon's resident heard set within a
// constant factor of the entries actually live under MaxAge. The expiry
// set is a pure function of (cells, now), so the map-order iteration
// cannot perturb determinism.
func (g *Gossip) maybeSweep(now simtime.Time) {
	if g.cfg.MaxAge <= 0 || len(g.cells) < g.sweepAt {
		return
	}
	for o, c := range g.cells {
		if g.expired(c.entry.Stamp, now) {
			delete(g.cells, o)
		}
	}
	g.sweepAt = 2 * len(g.cells)
	if g.sweepAt < sweepFloor {
		g.sweepAt = sweepFloor
	}
}

// recordAge folds one observed entry age into the origin's EWMA.
func (g *Gossip) recordAge(c *cell, age simtime.Duration) {
	if age < 0 {
		age = 0
	}
	if !c.haveAge {
		c.ageEst = age
		c.haveAge = true
		return
	}
	a := g.cfg.Alpha
	c.ageEst = simtime.Duration(a*float64(age) + (1-a)*float64(c.ageEst))
}

// Entry returns this daemon's current view of origin's load state. An
// entry past MaxAge reads as unknown — local readers see the same expiry
// the wire applies, never unbounded staleness.
func (g *Gossip) Entry(origin int) GossipEntry {
	if origin == g.id {
		return g.self
	}
	c, ok := g.cells[origin]
	if !ok || g.expired(c.entry.Stamp, g.eng.Now()) {
		return GossipEntry{}
	}
	return c.entry
}

// EntryAge returns how stale the origin's entry is right now (and whether
// a live one exists at all — expired entries report absent).
func (g *Gossip) EntryAge(origin int) (simtime.Duration, bool) {
	e := g.Entry(origin)
	if !e.Known {
		return 0, false
	}
	return g.eng.Now().Sub(e.Stamp), true
}

// Fresh calls f for every live (non-expired) entry this daemon currently
// holds, own entry excluded. Callback order is map order — unspecified —
// so callers must apply f per origin without cross-origin dependence (the
// incremental gossip view writes one row per callback, which is order-free).
func (g *Gossip) Fresh(f func(origin int, e GossipEntry)) {
	now := g.eng.Now()
	for o, c := range g.cells {
		if g.expired(c.entry.Stamp, now) {
			continue
		}
		f(o, c.entry)
	}
}

// KnownCount reports how many origins currently read as live entries.
func (g *Gossip) KnownCount() int {
	n := 0
	now := g.eng.Now()
	for _, c := range g.cells {
		if !g.expired(c.entry.Stamp, now) {
			n++
		}
	}
	return n
}

// AgeRTT returns the staleness-derived round-trip estimate for origin
// (2× the smoothed one-way dissemination delay), if any sample arrived.
func (g *Gossip) AgeRTT(origin int) (simtime.Duration, bool) {
	c, ok := g.cells[origin]
	if !ok || !c.haveAge {
		return 0, false
	}
	return 2 * c.ageEst, true
}

// MeanRTT is the mean staleness-derived round-trip estimate over every
// origin heard from; with no samples yet it falls back to the freshly
// joined daemon's prior (two scheduling delays). The sum is integer
// arithmetic over per-origin estimates, so map order cannot perturb it.
func (g *Gossip) MeanRTT() simtime.Duration {
	var sum simtime.Duration
	n := 0
	for _, c := range g.cells {
		if c.haveAge {
			sum += 2 * c.ageEst
			n++
		}
	}
	if n == 0 {
		return 2 * g.cfg.SchedDelay
	}
	return sum / simtime.Duration(n)
}

// refreshBandwidth re-derives the bandwidth estimate from NIC counter
// deltas, exactly as the paired daemon does.
func (g *Gossip) refreshBandwidth() {
	now := g.eng.Now()
	elapsed := now.Sub(g.lastAt)
	if g.haveBw && elapsed < g.minInterval {
		return
	}
	cur := g.node.NIC.Counters.RxBytes + g.node.NIC.Counters.TxBytes
	if elapsed > 0 {
		observed := float64(cur-g.lastBytes) / elapsed.Seconds()
		floor := g.cfg.BandwidthFloorFrac * g.nominalBw
		if observed < floor {
			observed = floor
		}
		if observed > g.nominalBw {
			observed = g.nominalBw
		}
		g.bwEst = observed
		g.haveBw = true
	}
	g.lastBytes = cur
	g.lastAt = now
}

// Bandwidth returns the current bytes/s estimate.
func (g *Gossip) Bandwidth() float64 {
	g.refreshBandwidth()
	if !g.haveBw {
		return g.cfg.BandwidthFloorFrac * g.nominalBw
	}
	return g.bwEst
}

// Estimates assembles the Eq. 3 inputs this daemon would report for a
// migration originating at origin: the staleness-derived RTT (or the
// prior when nothing has been heard) and the one-page transfer time at
// the estimated bandwidth.
func (g *Gossip) Estimates(origin int) core.Estimates {
	rtt, ok := g.AgeRTT(origin)
	if !ok {
		rtt = 2 * g.cfg.SchedDelay
	}
	pageBytes := float64(memory.PageSize + 64)
	return core.Estimates{
		RTT:          rtt,
		PageTransfer: simtime.FromSeconds(pageBytes / g.Bandwidth()),
	}
}
