// Decentralised gossip dissemination — the switched-fabric replacement for
// the paired hub-spoke daemon exchange. One Gossip daemon runs per node;
// every period it pushes its load vector (its own fresh sample plus the
// entries it has heard) to a few random peers, entries age as they
// propagate, and the t0 estimate AMPoM's Equation 3 consumes is derived
// per origin from the observed gossip-path timing. Because an entry's age
// accumulates queueing, scheduling delay and hop count, balancer policies
// on a large fabric see staleness that grows with topology distance — the
// MOSIX information-dissemination behaviour the related farm literature
// describes, rather than the paper's two-node pairing.
package infod

import (
	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/prng"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// GossipConfig tunes a gossip daemon. Zero fields take defaults. The
// fabric layer always passes Period and Fanout explicitly (resolved from
// fabric.DefaultGossipPeriod/DefaultGossipFanout); the local defaults
// here only serve direct NewGossip callers and mirror those values.
type GossipConfig struct {
	// Period is the gossip push period. Default 2 s (the paired daemons'
	// historical update period).
	Period simtime.Duration
	// Fanout is how many random peers each push round targets. Default 2.
	Fanout int
	// MaxAge drops entries older than this from outgoing vectors (they
	// still serve local reads until overwritten). Default 30 s.
	MaxAge simtime.Duration
	// SchedDelay is the mean user-level scheduling delay before a daemon
	// composes or merges a message. Default 6 ms, as for Config.
	SchedDelay simtime.Duration
	// Jitter is the fractional spread of SchedDelay. Default 0.5.
	Jitter float64
	// Alpha is the EWMA weight folding new age samples into the per-origin
	// staleness estimate. Default 0.1.
	Alpha float64
	// BandwidthFloorFrac floors the bandwidth estimate at this fraction of
	// nominal capacity. Default 0.25.
	BandwidthFloorFrac float64
	// MsgBytes is the wire size of a gossip message header. Default 192.
	MsgBytes int64
	// EntryBytes is the wire size of one load-vector entry. Default 32.
	EntryBytes int64
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Period == 0 {
		c.Period = 2 * simtime.Second
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.MaxAge == 0 {
		c.MaxAge = 30 * simtime.Second
	}
	if c.SchedDelay == 0 {
		c.SchedDelay = 6 * simtime.Millisecond
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.BandwidthFloorFrac == 0 {
		c.BandwidthFloorFrac = 0.25
	}
	if c.MsgBytes == 0 {
		c.MsgBytes = 192
	}
	if c.EntryBytes == 0 {
		c.EntryBytes = 32
	}
	return c
}

// LoadSample is one node's disseminated load state at a stamp instant.
type LoadSample struct {
	// Load is the CPU-scaled runnable load (queue length / CPU scale).
	Load float64
	// Queue is the raw runnable-queue length.
	Queue int
	// UsedMemMB is the resident memory footprint.
	UsedMemMB int64
}

// GossipEntry is one origin's entry in a daemon's load vector.
type GossipEntry struct {
	// Sample is the origin's load state as of Stamp.
	Sample LoadSample
	// Stamp is the origin-side composition instant of the sample.
	Stamp simtime.Time
	// Hops counts how many daemon-to-daemon pushes the entry crossed.
	Hops int
	// Known reports whether any sample for the origin has arrived yet.
	Known bool
}

// gossipEntryWire is one entry on the wire (hops as recorded by the
// sender; the receiver increments).
type gossipEntryWire struct {
	Origin int
	Entry  GossipEntry
}

// gossipMsg is one load-vector push.
type gossipMsg struct {
	From    int
	Entries []gossipEntryWire
}

// Gossip is one node's gossip dissemination daemon.
type Gossip struct {
	cfg  GossipConfig
	eng  *sim.Engine
	node *cluster.Node
	id   int
	n    int
	send func(dst int, m netmodel.Message)
	rng  *prng.Source

	probe  func() LoadSample
	ticker *sim.Ticker

	entries []GossipEntry
	ageEst  []simtime.Duration
	haveAge []bool

	// Bandwidth estimate state — the same NIC-counter differencing the
	// paired daemon uses.
	lastBytes   int64
	lastAt      simtime.Time
	bwEst       float64
	haveBw      bool
	nominalBw   float64
	minInterval simtime.Duration
}

// NewGossip creates the gossip daemon of node id in an n-node cluster.
// send routes one message to a peer (the fabric's topology path); seed
// drives the daemon's jitter and peer-selection stream. The daemon
// registers its message handler on the node; call Start to begin pushing.
func NewGossip(cfg GossipConfig, node *cluster.Node, id, n int, nominalBw float64, send func(dst int, m netmodel.Message), seed uint64) *Gossip {
	cfg = cfg.withDefaults()
	g := &Gossip{
		cfg:         cfg,
		eng:         node.Eng,
		node:        node,
		id:          id,
		n:           n,
		send:        send,
		rng:         prng.New(seed),
		entries:     make([]GossipEntry, n),
		ageEst:      make([]simtime.Duration, n),
		haveAge:     make([]bool, n),
		nominalBw:   nominalBw,
		minInterval: 10 * simtime.Millisecond,
		lastAt:      node.Eng.Now(),
	}
	node.Handle(g.handle)
	return g
}

// ID returns the daemon's node id.
func (g *Gossip) ID() int { return g.id }

// SetProbe installs the local load probe sampled at every push round.
func (g *Gossip) SetProbe(f func() LoadSample) { g.probe = f }

// Start begins periodic pushes.
func (g *Gossip) Start() {
	if g.ticker != nil {
		return
	}
	g.ticker = sim.NewTicker(g.eng, g.cfg.Period, g.push)
}

// Stop halts periodic pushes.
func (g *Gossip) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
}

// schedDelay draws one user-level scheduling delay.
func (g *Gossip) schedDelay() simtime.Duration {
	j := 1 + g.cfg.Jitter*(2*g.rng.Float64()-1)
	return simtime.Duration(float64(g.cfg.SchedDelay) * j)
}

// push composes the outgoing load vector and hands it to fanout random
// peers, each after a scheduling delay. The vector is stamped at
// composition time, as the paired daemon stamps its payload.
func (g *Gossip) push() {
	now := g.eng.Now()
	if g.probe != nil {
		g.entries[g.id] = GossipEntry{Sample: g.probe(), Stamp: now, Known: true}
	} else {
		g.entries[g.id] = GossipEntry{Stamp: now, Known: true}
	}

	// The snapshot is allocated exact-size per push: it escapes into the
	// in-flight message (receivers merge it after link delivery, so the
	// buffer cannot be pooled), but counting first avoids the append-growth
	// copies that used to double the gossip plane's allocation churn.
	fresh := 0
	for _, e := range g.entries {
		if e.Known && now.Sub(e.Stamp) <= g.cfg.MaxAge {
			fresh++
		}
	}
	snapshot := make([]gossipEntryWire, 0, fresh)
	for o, e := range g.entries {
		if !e.Known || now.Sub(e.Stamp) > g.cfg.MaxAge {
			continue
		}
		snapshot = append(snapshot, gossipEntryWire{Origin: o, Entry: e})
	}
	size := g.cfg.MsgBytes + g.cfg.EntryBytes*int64(len(snapshot))
	msg := gossipMsg{From: g.id, Entries: snapshot}

	for k := 0; k < g.cfg.Fanout && g.n > 1; k++ {
		dst := g.rng.Intn(g.n)
		for dst == g.id {
			dst = g.rng.Intn(g.n)
		}
		g.eng.Schedule(g.schedDelay(), func() {
			g.send(dst, netmodel.Message{Size: size, Payload: msg})
		})
	}
}

// handle consumes gossip messages delivered to this node; the merge runs
// after this side's scheduling delay (the daemon has to be woken and run).
func (g *Gossip) handle(payload any) bool {
	m, ok := payload.(gossipMsg)
	if !ok {
		return false
	}
	g.eng.Schedule(g.schedDelay(), func() { g.merge(m) })
	return true
}

// merge folds a received load vector in: newer stamps win, hop counts
// increment, and every accepted entry contributes an age sample to the
// per-origin staleness estimate.
func (g *Gossip) merge(m gossipMsg) {
	now := g.eng.Now()
	for _, w := range m.Entries {
		o := w.Origin
		if o == g.id || o < 0 || o >= g.n {
			continue
		}
		cur := g.entries[o]
		if cur.Known && w.Entry.Stamp <= cur.Stamp {
			continue
		}
		e := w.Entry
		e.Hops++
		e.Known = true
		g.entries[o] = e
		g.recordAge(o, now.Sub(e.Stamp))
	}
}

// recordAge folds one observed entry age into the origin's EWMA.
func (g *Gossip) recordAge(origin int, age simtime.Duration) {
	if age < 0 {
		age = 0
	}
	if !g.haveAge[origin] {
		g.ageEst[origin] = age
		g.haveAge[origin] = true
		return
	}
	a := g.cfg.Alpha
	g.ageEst[origin] = simtime.Duration(a*float64(age) + (1-a)*float64(g.ageEst[origin]))
}

// Entry returns this daemon's current view of origin's load state.
func (g *Gossip) Entry(origin int) GossipEntry { return g.entries[origin] }

// EntryAge returns how stale the origin's entry is right now (and whether
// one exists at all).
func (g *Gossip) EntryAge(origin int) (simtime.Duration, bool) {
	e := g.entries[origin]
	if !e.Known {
		return 0, false
	}
	return g.eng.Now().Sub(e.Stamp), true
}

// AgeRTT returns the staleness-derived round-trip estimate for origin
// (2× the smoothed one-way dissemination delay), if any sample arrived.
func (g *Gossip) AgeRTT(origin int) (simtime.Duration, bool) {
	if !g.haveAge[origin] {
		return 0, false
	}
	return 2 * g.ageEst[origin], true
}

// MeanRTT is the mean staleness-derived round-trip estimate over every
// origin heard from; with no samples yet it falls back to the freshly
// joined daemon's prior (two scheduling delays).
func (g *Gossip) MeanRTT() simtime.Duration {
	var sum simtime.Duration
	n := 0
	for o := range g.ageEst {
		if g.haveAge[o] {
			sum += 2 * g.ageEst[o]
			n++
		}
	}
	if n == 0 {
		return 2 * g.cfg.SchedDelay
	}
	return sum / simtime.Duration(n)
}

// refreshBandwidth re-derives the bandwidth estimate from NIC counter
// deltas, exactly as the paired daemon does.
func (g *Gossip) refreshBandwidth() {
	now := g.eng.Now()
	elapsed := now.Sub(g.lastAt)
	if g.haveBw && elapsed < g.minInterval {
		return
	}
	cur := g.node.NIC.Counters.RxBytes + g.node.NIC.Counters.TxBytes
	if elapsed > 0 {
		observed := float64(cur-g.lastBytes) / elapsed.Seconds()
		floor := g.cfg.BandwidthFloorFrac * g.nominalBw
		if observed < floor {
			observed = floor
		}
		if observed > g.nominalBw {
			observed = g.nominalBw
		}
		g.bwEst = observed
		g.haveBw = true
	}
	g.lastBytes = cur
	g.lastAt = now
}

// Bandwidth returns the current bytes/s estimate.
func (g *Gossip) Bandwidth() float64 {
	g.refreshBandwidth()
	if !g.haveBw {
		return g.cfg.BandwidthFloorFrac * g.nominalBw
	}
	return g.bwEst
}

// Estimates assembles the Eq. 3 inputs this daemon would report for a
// migration originating at origin: the staleness-derived RTT (or the
// prior when nothing has been heard) and the one-page transfer time at
// the estimated bandwidth.
func (g *Gossip) Estimates(origin int) core.Estimates {
	rtt, ok := g.AgeRTT(origin)
	if !ok {
		rtt = 2 * g.cfg.SchedDelay
	}
	pageBytes := float64(memory.PageSize + 64)
	return core.Estimates{
		RTT:          rtt,
		PageTransfer: simtime.FromSeconds(pageBytes / g.Bandwidth()),
	}
}
