package infod

import (
	"testing"

	"ampom/internal/cluster"
	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

func rig(cfg Config) (*sim.Engine, *Daemon, *Daemon, *netmodel.Link) {
	eng := sim.New()
	a := cluster.NewNode(eng, "a", 1)
	b := cluster.NewNode(eng, "b", 1)
	link := netmodel.NewLink(eng, netmodel.FastEthernet(), a.NIC, b.NIC)
	da := New(cfg, a, link, 1)
	db := New(cfg, b, link, 2)
	return eng, da, db, link
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.UpdatePeriod != simtime.Second || c.SchedDelay != 6*simtime.Millisecond ||
		c.Alpha != 0.1 || c.BandwidthFloorFrac != 0.25 || c.MsgBytes != 192 || c.Jitter != 0.5 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestInitialRTTPrior(t *testing.T) {
	_, da, _, link := rig(Config{})
	want := 2*6*simtime.Millisecond + link.RTT()
	if da.RTT() != want {
		t.Fatalf("prior RTT = %v, want %v", da.RTT(), want)
	}
	if da.RTTSamples() != 0 {
		t.Fatal("samples before start")
	}
}

func TestRTTConvergesOnIdleLink(t *testing.T) {
	eng, da, db, _ := rig(Config{})
	da.Start()
	db.Start()
	eng.Run(simtime.Time(60 * simtime.Second))
	da.Stop()
	db.Stop()
	eng.RunAll()

	if da.RTTSamples() < 50 {
		t.Fatalf("samples = %d, want ≈60", da.RTTSamples())
	}
	// Idle-link daemon RTT ≈ two scheduling delays (6 ms ± 50 % each) plus
	// the wire; the EWMA should sit in [6 ms, 20 ms].
	got := da.RTT()
	if got < 6*simtime.Millisecond || got > 20*simtime.Millisecond {
		t.Fatalf("converged RTT = %v, want ≈12ms", got)
	}
}

// TestRTTInflatesUnderLoad: daemon acks queue behind bulk page traffic, so
// the RTT estimate grows on a busy link — the mechanism that makes AMPoM
// "prefetch more aggressively when the network is busy" (§1).
func TestRTTInflatesUnderLoad(t *testing.T) {
	measure := func(busy bool) simtime.Duration {
		eng := sim.New()
		a := cluster.NewNode(eng, "a", 1)
		b := cluster.NewNode(eng, "b", 1)
		link := netmodel.NewLink(eng, netmodel.FastEthernet(), a.NIC, b.NIC)
		da := New(Config{}, a, link, 1)
		db := New(Config{}, b, link, 2)
		a.Handle(func(p any) bool { _, ok := p.(string); return ok })
		b.Handle(func(p any) bool { _, ok := p.(string); return ok })
		da.Start()
		db.Start()
		if busy {
			// 100 KB bursts every 20 ms in both directions ≈ 9 ms of
			// queueing in front of every daemon message.
			sim.NewTicker(eng, 20*simtime.Millisecond, func() {
				link.Send(a.NIC, netmodel.Message{Size: 100 << 10, Payload: "bulk"})
				link.Send(b.NIC, netmodel.Message{Size: 100 << 10, Payload: "bulk"})
			})
		}
		eng.Run(simtime.Time(30 * simtime.Second))
		da.Stop()
		db.Stop()
		eng.Stop()
		return da.RTT()
	}
	idle, busy := measure(false), measure(true)
	if busy <= idle {
		t.Fatalf("busy RTT %v <= idle RTT %v; queueing must inflate the estimate", busy, idle)
	}
}

func TestBandwidthFloorWhenIdle(t *testing.T) {
	_, da, _, link := rig(Config{})
	bw := da.Bandwidth()
	want := 0.25 * link.Profile().BandwidthBps
	if bw != want {
		t.Fatalf("idle bandwidth = %v, want floor %v", bw, want)
	}
}

func TestBandwidthTracksTraffic(t *testing.T) {
	eng := sim.New()
	a := cluster.NewNode(eng, "a", 1)
	b := cluster.NewNode(eng, "b", 1)
	link := netmodel.NewLink(eng, netmodel.FastEthernet(), a.NIC, b.NIC)
	da := New(Config{}, a, link, 1)
	b.Handle(func(any) bool { return true }) // sink for bulk payloads

	da.Bandwidth() // snapshot counters at t=0
	// Push ~nominal bandwidth of traffic for 2 s.
	nominal := link.Profile().BandwidthBps
	chunk := int64(nominal / 100)
	sim.NewTicker(eng, 10*simtime.Millisecond, func() {
		if eng.Now() < simtime.Time(2*simtime.Second) {
			link.Send(a.NIC, netmodel.Message{Size: chunk, Payload: "bulk"})
		}
	})
	eng.Run(simtime.Time(2 * simtime.Second))
	got := da.Bandwidth()
	if got < 0.8*nominal {
		t.Fatalf("busy bandwidth estimate = %v, want ≈%v", got, nominal)
	}
}

func TestEstimatesShape(t *testing.T) {
	_, da, _, _ := rig(Config{})
	est := da.Estimates()
	if est.RTT != da.RTT() {
		t.Fatal("estimate RTT mismatch")
	}
	if est.PageTransfer <= 0 {
		t.Fatal("page transfer estimate must be positive")
	}
	// td at the floored bandwidth: (4096+64) / (0.25·11.36e6) ≈ 1.46 ms.
	if est.PageTransfer > 3*simtime.Millisecond {
		t.Fatalf("td = %v implausible", est.PageTransfer)
	}
}

func TestStartStopIdempotent(t *testing.T) {
	eng, da, _, _ := rig(Config{})
	da.Start()
	da.Start() // second start is a no-op
	da.Stop()
	da.Stop()
	eng.RunAll()
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after stop", eng.Pending())
	}
}

func TestDeterministicRTT(t *testing.T) {
	run := func() simtime.Duration {
		eng, da, db, _ := rig(Config{})
		da.Start()
		db.Start()
		eng.Run(simtime.Time(20 * simtime.Second))
		da.Stop()
		db.Stop()
		eng.RunAll()
		return da.RTT()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}
