// Package infod models the paper's resource discovery and monitoring
// daemon — a modified oM_infoD (§2.4, §4). It supplies the two network
// estimates AMPoM's Equation 3 consumes:
//
//   - t0, the round-trip time to the origin node, measured by timing the
//     acknowledgement of periodic load updates. Because this is a
//     user-level daemon exchange, the estimate includes daemon scheduling
//     delay on both sides and any queueing behind bulk page traffic — it is
//     deliberately much larger than the wire RTT (see DESIGN.md), and it
//     grows when the network is busy, which is exactly what makes AMPoM
//     "prefetch more aggressively ... when the network is busy" (§1).
//
//   - td, the transfer time of one page at the currently available
//     bandwidth, estimated by differencing the NIC's RX/TX byte counters
//     (the paper reads them from /sbin/ifconfig) over the recent past.
package infod

import (
	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/prng"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// Config tunes the daemon. Zero fields take defaults.
type Config struct {
	// UpdatePeriod is the load-update broadcast period. Default 1 s.
	UpdatePeriod simtime.Duration
	// SchedDelay is the mean user-level scheduling delay a daemon suffers
	// before handling a message (being woken, scheduled, and run on a
	// timesharing node). Default 6 ms, which lands the daemon-level RTT
	// estimate in the tens of milliseconds once queueing behind page
	// traffic is folded in — the magnitude the paper's Figure 8 prefetch
	// depths imply.
	SchedDelay simtime.Duration
	// Jitter is the fractional spread of SchedDelay. Default 0.5.
	Jitter float64
	// Alpha is the EWMA smoothing weight for the RTT estimate. Default 0.1:
	// slow convergence means short runs keep a near-prior estimate while
	// long saturated runs converge to queue-inflated values, which is what
	// makes prefetch depth grow with program size (Figure 8).
	Alpha float64
	// BandwidthFloorFrac floors the bandwidth estimate at this fraction of
	// nominal capacity, so an idle network does not yield a degenerate td.
	// Default 0.25.
	BandwidthFloorFrac float64
	// MsgBytes is the wire size of a load update / ack. Default 192.
	MsgBytes int64
}

func (c Config) withDefaults() Config {
	if c.UpdatePeriod == 0 {
		c.UpdatePeriod = simtime.Second
	}
	if c.SchedDelay == 0 {
		c.SchedDelay = 6 * simtime.Millisecond
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	if c.Alpha == 0 {
		c.Alpha = 0.1
	}
	if c.BandwidthFloorFrac == 0 {
		c.BandwidthFloorFrac = 0.25
	}
	if c.MsgBytes == 0 {
		c.MsgBytes = 192
	}
	return c
}

// loadUpdate is the periodic oM_infoD broadcast carrying node load; the
// peer acknowledges it, and the ack round trip is the RTT sample.
type loadUpdate struct {
	Seq    uint64
	SentAt simtime.Time
	From   *Daemon
}

// loadAck acknowledges a loadUpdate.
type loadAck struct {
	Seq    uint64
	SentAt simtime.Time
	From   *Daemon
}

// Daemon is one node's monitoring daemon, paired with the peer daemon at
// the other end of the link.
type Daemon struct {
	cfg  Config
	eng  *sim.Engine
	node *cluster.Node
	link *netmodel.Link
	rng  *prng.Source

	ticker *sim.Ticker
	seq    uint64
	peer   *Daemon // set by Pair; nil daemons answer any peer

	// RTT estimate state.
	rttEst   simtime.Duration
	haveRTT  bool
	rttCount int64

	// Bandwidth estimate state: last counter snapshot.
	lastBytes   int64
	lastAt      simtime.Time
	bwEst       float64
	haveBw      bool
	nominalBw   float64
	minInterval simtime.Duration

	// CPU utilisation hook: the executor (or scheduler) publishes the
	// node's current utilisation here; the daemon just reports it, as the
	// original oM_infoD does.
	cpuUtil func() float64
}

// New creates a daemon on node, talking across link. Seed drives the
// scheduling-delay jitter.
func New(cfg Config, node *cluster.Node, link *netmodel.Link, seed uint64) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:         cfg,
		eng:         node.Eng,
		node:        node,
		link:        link,
		rng:         prng.New(seed),
		nominalBw:   link.Profile().BandwidthBps,
		minInterval: 10 * simtime.Millisecond,
		lastAt:      node.Eng.Now(),
	}
	// Until the first ack arrives the daemon assumes two scheduling delays
	// plus the wire — a sensible prior for a freshly joined node.
	d.rttEst = 2*cfg.SchedDelay + link.RTT()
	node.Handle(d.handle)
	return d
}

// SetCPUUtil installs the utilisation probe reported to peers.
func (d *Daemon) SetCPUUtil(f func() float64) { d.cpuUtil = f }

// Pair binds two daemons as the endpoints of one monitored link: each then
// handles only traffic originating from the other and leaves everything else
// to the next handler on its node. Unpaired daemons keep the historical
// behaviour (answer any daemon traffic), so two-node experiments are
// unchanged; pairing is what lets a hub node run one daemon per spoke in a
// star-topology cluster without the daemons stealing each other's acks.
func Pair(a, b *Daemon) {
	a.peer = b
	b.peer = a
}

// Start begins periodic load updates.
func (d *Daemon) Start() {
	if d.ticker != nil {
		return
	}
	d.ticker = sim.NewTicker(d.eng, d.cfg.UpdatePeriod, d.sendUpdate)
}

// Stop halts periodic updates.
func (d *Daemon) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

// schedDelay draws one user-level scheduling delay.
func (d *Daemon) schedDelay() simtime.Duration {
	j := 1 + d.cfg.Jitter*(2*d.rng.Float64()-1)
	return simtime.Duration(float64(d.cfg.SchedDelay) * j)
}

func (d *Daemon) sendUpdate() {
	d.seq++
	// The daemon wakes, composes the update, and hands it to the kernel
	// after a scheduling delay; SentAt is stamped at composition time, as
	// the real daemon stamps its payload.
	upd := loadUpdate{Seq: d.seq, SentAt: d.eng.Now(), From: d}
	d.eng.Schedule(d.schedDelay(), func() {
		d.link.Send(d.node.NIC, netmodel.Message{Size: d.cfg.MsgBytes, Payload: upd})
	})
}

// handle consumes daemon messages delivered to this node.
func (d *Daemon) handle(payload any) bool {
	switch m := payload.(type) {
	case loadUpdate:
		if m.From == d {
			return false // our own update echoed back — not ours to handle
		}
		if d.peer != nil && m.From != d.peer {
			return false // another spoke's update — its own daemon acks it
		}
		// Ack after this side's scheduling delay.
		ack := loadAck{Seq: m.Seq, SentAt: m.SentAt, From: d}
		d.eng.Schedule(d.schedDelay(), func() {
			d.link.Send(d.node.NIC, netmodel.Message{Size: d.cfg.MsgBytes, Payload: ack})
		})
		return true
	case loadAck:
		if d.peer != nil && m.From != nil && m.From != d.peer {
			return false
		}
		sample := d.eng.Now().Sub(m.SentAt)
		d.recordRTT(sample)
		return true
	default:
		return false
	}
}

func (d *Daemon) recordRTT(sample simtime.Duration) {
	d.rttCount++
	if !d.haveRTT {
		d.rttEst = sample
		d.haveRTT = true
		return
	}
	a := d.cfg.Alpha
	d.rttEst = simtime.Duration(a*float64(sample) + (1-a)*float64(d.rttEst))
}

// RTT returns the daemon's current round-trip estimate (2t0 of Eq. 3).
func (d *Daemon) RTT() simtime.Duration { return d.rttEst }

// RTTSamples returns how many ack samples have been folded in.
func (d *Daemon) RTTSamples() int64 { return d.rttCount }

// refreshBandwidth re-derives the bandwidth estimate from NIC counter
// deltas if enough time passed since the previous sample (the paper
// resamples every time the lookback window loops once).
func (d *Daemon) refreshBandwidth() {
	now := d.eng.Now()
	elapsed := now.Sub(d.lastAt)
	if d.haveBw && elapsed < d.minInterval {
		return
	}
	cur := d.node.NIC.Counters.RxBytes + d.node.NIC.Counters.TxBytes
	if elapsed > 0 {
		observed := float64(cur-d.lastBytes) / elapsed.Seconds()
		floor := d.cfg.BandwidthFloorFrac * d.nominalBw
		if observed < floor {
			observed = floor
		}
		if observed > d.nominalBw {
			observed = d.nominalBw
		}
		d.bwEst = observed
		d.haveBw = true
	}
	d.lastBytes = cur
	d.lastAt = now
}

// Bandwidth returns the current bytes/s estimate.
func (d *Daemon) Bandwidth() float64 {
	d.refreshBandwidth()
	if !d.haveBw {
		return d.cfg.BandwidthFloorFrac * d.nominalBw
	}
	return d.bwEst
}

// Estimates assembles the measurements AMPoM's analysis consumes: the
// daemon-level RTT and the transfer time of one page (plus protocol
// header) at the estimated bandwidth.
func (d *Daemon) Estimates() core.Estimates {
	bw := d.Bandwidth()
	pageBytes := float64(memory.PageSize + 64)
	return core.Estimates{
		RTT:          d.rttEst,
		PageTransfer: simtime.FromSeconds(pageBytes / bw),
	}
}
