package cluster

import (
	"testing"

	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

func TestDispatchOrder(t *testing.T) {
	eng := sim.New()
	n := NewNode(eng, "n", 1)
	var got []string
	n.Handle(func(p any) bool {
		if _, ok := p.(int); ok {
			got = append(got, "int")
			return true
		}
		return false
	})
	n.Handle(func(p any) bool {
		if _, ok := p.(string); ok {
			got = append(got, "string")
			return true
		}
		return false
	})
	peer := NewNode(eng, "peer", 1)
	link := netmodel.NewLink(eng, netmodel.FastEthernet(), n.NIC, peer.NIC)
	link.Send(peer.NIC, netmodel.Message{Size: 1, Payload: 7})
	link.Send(peer.NIC, netmodel.Message{Size: 1, Payload: "hi"})
	eng.RunAll()
	if len(got) != 2 || got[0] != "int" || got[1] != "string" {
		t.Fatalf("dispatch = %v", got)
	}
}

func TestUnhandledPayloadPanics(t *testing.T) {
	eng := sim.New()
	n := NewNode(eng, "n", 1)
	peer := NewNode(eng, "peer", 1)
	link := netmodel.NewLink(eng, netmodel.FastEthernet(), n.NIC, peer.NIC)
	link.Send(peer.NIC, netmodel.Message{Size: 1, Payload: 3.14})
	defer func() {
		if recover() == nil {
			t.Fatal("unhandled payload did not panic")
		}
	}()
	eng.RunAll()
}

func TestScale(t *testing.T) {
	eng := sim.New()
	fast := NewNode(eng, "fast", 2)
	if got := fast.Scale(10 * simtime.Second); got != 5*simtime.Second {
		t.Fatalf("2x node scaled 10s to %v", got)
	}
	ref := NewNode(eng, "ref", 1)
	if got := ref.Scale(10 * simtime.Second); got != 10*simtime.Second {
		t.Fatalf("reference node scaled 10s to %v", got)
	}
	degenerate := NewNode(eng, "d", 0) // clamped to 1
	if got := degenerate.Scale(simtime.Second); got != simtime.Second {
		t.Fatalf("zero-scale node scaled 1s to %v", got)
	}
}

func TestPCB(t *testing.T) {
	eng := sim.New()
	home := NewNode(eng, "home", 1)
	away := NewNode(eng, "away", 1)
	p := NewPCB(42, "job", home)
	if p.Migrated() {
		t.Fatal("fresh PCB claims migrated")
	}
	if p.State != ProcRunning {
		t.Fatalf("state = %v", p.State)
	}
	p.Current = away
	if !p.Migrated() {
		t.Fatal("migrated PCB claims home")
	}
}

func TestProcStateString(t *testing.T) {
	want := map[ProcState]string{
		ProcRunning: "running", ProcFrozen: "frozen",
		ProcDeputy: "deputy", ProcDone: "done",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
