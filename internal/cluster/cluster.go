// Package cluster models openMosix cluster nodes and process control
// blocks: each node owns a CPU (expressed as a speed scale relative to the
// paper's 2 GHz Pentium 4), a NIC, and a payload dispatcher that routes
// arriving messages to the protocol handlers registered on the node
// (remote paging, monitoring daemon, migration control).
package cluster

import (
	"fmt"

	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// Node is one cluster machine.
type Node struct {
	Name string
	// CPUScale expresses the node's CPU speed relative to the reference
	// 2 GHz P4: compute that takes d on the reference takes d/CPUScale
	// here.
	CPUScale float64

	Eng *sim.Engine
	NIC *netmodel.NIC

	handlers []func(payload any) bool
}

// NewNode creates a node with a NIC whose deliveries are routed through the
// node's dispatcher.
func NewNode(eng *sim.Engine, name string, cpuScale float64) *Node {
	if cpuScale <= 0 {
		cpuScale = 1
	}
	n := &Node{Name: name, CPUScale: cpuScale, Eng: eng}
	n.NIC = netmodel.NewNIC(name, n.dispatch)
	return n
}

// Handle registers a payload handler. Handlers are tried in registration
// order until one returns true; unhandled payloads panic, because a model
// delivering messages nobody consumes is mis-wired.
func (n *Node) Handle(h func(payload any) bool) { n.handlers = append(n.handlers, h) }

func (n *Node) dispatch(m netmodel.Message) {
	for _, h := range n.handlers {
		if h(m.Payload) {
			return
		}
	}
	panic(fmt.Sprintf("cluster: node %q received unhandled payload %T", n.Name, m.Payload))
}

// Deliver routes an already-received payload through the node's handler
// chain. The fabric routing layer uses it to dispatch the inner payload of
// an envelope after the NIC accounting of the final hop has happened;
// unhandled payloads panic exactly as NIC-delivered ones do.
func (n *Node) Deliver(payload any) { n.dispatch(netmodel.Message{Payload: payload}) }

// Scale converts reference-CPU compute time to this node's wall time.
func (n *Node) Scale(d simtime.Duration) simtime.Duration {
	if n.CPUScale == 1 {
		return d
	}
	return simtime.Duration(float64(d) / n.CPUScale)
}

// ProcState is a process's lifecycle state.
type ProcState uint8

// Process lifecycle states.
const (
	ProcRunning ProcState = iota
	ProcFrozen            // suspended for migration
	ProcDeputy            // origin-side stub serving remote paging / syscalls
	ProcDone
)

// String names the state.
func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "running"
	case ProcFrozen:
		return "frozen"
	case ProcDeputy:
		return "deputy"
	case ProcDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// PCB is a minimal process control block: identity, placement and the
// registers/metadata openMosix captures and restores around migration. The
// simulator does not execute real instructions, but carrying the PCB keeps
// migration bookkeeping (and its costs) faithful.
type PCB struct {
	PID   int
	Name  string
	State ProcState

	// Home is the unique home node (openMosix's UHN); Current is where the
	// process executes now.
	Home, Current *Node

	// Registers stands in for the architectural state captured at freeze
	// time; its size contributes to the migration payload.
	Registers [64]uint64
}

// RegisterBytes is the wire size of the captured architectural state plus
// openMosix process metadata.
const RegisterBytes = 2048

// NewPCB returns a running PCB homed at node home.
func NewPCB(pid int, name string, home *Node) *PCB {
	return &PCB{PID: pid, Name: name, State: ProcRunning, Home: home, Current: home}
}

// Migrated reports whether the process runs away from home.
func (p *PCB) Migrated() bool { return p.Current != p.Home }
