package campaign

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ampom/internal/core"
	"ampom/internal/hpcc"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
)

func job(k hpcc.Kernel, mb int64, s migrate.Scheme) Job {
	return Job{Kernel: k, MemoryMB: mb, Scheme: s}
}

func TestFingerprintTable(t *testing.T) {
	fe := netmodel.FastEthernet()
	cases := []struct {
		name string
		job  Job
		want string
	}{
		{
			name: "defaults normalised",
			job:  job(hpcc.STREAM, 8, migrate.OpenMosix),
			want: "kernel=STREAM|mb=8|alloc=0|scheme=openMosix|net=fast-ethernet-100Mbps/100000/1.136e+07|load=0",
		},
		{
			name: "explicit fast ethernet equals zero network",
			job:  Job{Kernel: hpcc.STREAM, MemoryMB: 8, Scheme: migrate.OpenMosix, Network: fe},
			want: "kernel=STREAM|mb=8|alloc=0|scheme=openMosix|net=fast-ethernet-100Mbps/100000/1.136e+07|load=0",
		},
		{
			name: "ampom carries its config",
			job:  job(hpcc.DGEMM, 35, migrate.AMPoM),
			want: "kernel=DGEMM|mb=35|alloc=0|scheme=AMPoM|net=fast-ethernet-100Mbps/100000/1.136e+07|load=0|ampom=l20,d4,cap128,bl0.6",
		},
		{
			name: "non-ampom scheme drops prefetcher config",
			job:  Job{Kernel: hpcc.DGEMM, MemoryMB: 35, Scheme: migrate.NoPrefetch, AMPoM: core.Config{WindowLen: 80}},
			want: "kernel=DGEMM|mb=35|alloc=0|scheme=NoPrefetch|net=fast-ethernet-100Mbps/100000/1.136e+07|load=0",
		},
		{
			name: "negative baseline canonicalised to disabled sentinel",
			job:  Job{Kernel: hpcc.RandomAccess, MemoryMB: 32, Scheme: migrate.AMPoM, AMPoM: core.Config{BaselineScore: -0.5}},
			want: "kernel=RandomAccess|mb=32|alloc=0|scheme=AMPoM|net=fast-ethernet-100Mbps/100000/1.136e+07|load=0|ampom=l20,d4,cap128,bl-1",
		},
		{
			name: "working set variant",
			job:  Job{Kernel: hpcc.DGEMM, MemoryMB: 7, AllocMB: 35, Scheme: migrate.AMPoM},
			want: "kernel=DGEMM|mb=7|alloc=35|scheme=AMPoM|net=fast-ethernet-100Mbps/100000/1.136e+07|load=0|ampom=l20,d4,cap128,bl0.6",
		},
		{
			name: "working set forces DGEMM regardless of requested kernel",
			job:  Job{Kernel: hpcc.STREAM, MemoryMB: 7, AllocMB: 35, Scheme: migrate.AMPoM},
			want: "kernel=DGEMM|mb=7|alloc=35|scheme=AMPoM|net=fast-ethernet-100Mbps/100000/1.136e+07|load=0|ampom=l20,d4,cap128,bl0.6",
		},
		{
			name: "broadband with background load",
			job:  Job{Kernel: hpcc.FFT, MemoryMB: 16, Scheme: migrate.NoPrefetch, Network: netmodel.Broadband(), BackgroundLoad: 0.5},
			want: "kernel=FFT|mb=16|alloc=0|scheme=NoPrefetch|net=broadband-6Mbps/2000000/750000|load=0.5",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.job.Fingerprint(); got != c.want {
				t.Errorf("fingerprint = %q, want %q", got, c.want)
			}
		})
	}
}

// TestFingerprintCoversAllFields pins the field counts of every struct the
// fingerprint enumerates by hand. Adding a field to any of them without
// extending Job.Fingerprint would silently merge distinct experiments into
// one cache cell — this test turns that into a loud failure.
func TestFingerprintCoversAllFields(t *testing.T) {
	for _, c := range []struct {
		name string
		typ  reflect.Type
		want int
	}{
		{"campaign.Job", reflect.TypeOf(Job{}), 7},
		{"core.Config", reflect.TypeOf(core.Config{}), 4},
		{"netmodel.Profile", reflect.TypeOf(netmodel.Profile{}), 3},
	} {
		if got := c.typ.NumField(); got != c.want {
			t.Errorf("%s now has %d fields (was %d): extend Job.Fingerprint (and Job.normalised) first, then update this count",
				c.name, got, c.want)
		}
	}
}

func TestWorkloadFingerprintIgnoresSchemeAndNetwork(t *testing.T) {
	base := Job{Kernel: hpcc.DGEMM, MemoryMB: 35, Scheme: migrate.AMPoM}
	variants := []Job{
		{Kernel: hpcc.DGEMM, MemoryMB: 35, Scheme: migrate.OpenMosix},
		{Kernel: hpcc.DGEMM, MemoryMB: 35, Scheme: migrate.NoPrefetch, Network: netmodel.Broadband()},
		{Kernel: hpcc.DGEMM, MemoryMB: 35, Scheme: migrate.AMPoM, AMPoM: core.Config{WindowLen: 80}},
		{Kernel: hpcc.DGEMM, MemoryMB: 35, Scheme: migrate.AMPoM, BackgroundLoad: 0.3},
	}
	for _, v := range variants {
		if v.WorkloadFingerprint() != base.WorkloadFingerprint() {
			t.Errorf("workload fingerprint of %v differs from base: %q vs %q",
				v, v.WorkloadFingerprint(), base.WorkloadFingerprint())
		}
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("full fingerprint of %v should differ from base", v)
		}
	}
	other := Job{Kernel: hpcc.DGEMM, MemoryMB: 36, Scheme: migrate.AMPoM}
	if other.WorkloadFingerprint() == base.WorkloadFingerprint() {
		t.Error("different footprint must change the workload fingerprint")
	}
}

func TestDeriveSeed(t *testing.T) {
	cases := []struct {
		name         string
		baseA, baseB uint64
		fpA, fpB     string
		wantEqual    bool
	}{
		{"same inputs same seed", 42, 42, "a", "a", true},
		{"different fingerprints diverge", 42, 42, "a", "b", false},
		{"different base seeds diverge", 42, 43, "a", "a", false},
		{"empty fingerprint still mixes base", 1, 2, "", "", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, b := DeriveSeed(c.baseA, c.fpA), DeriveSeed(c.baseB, c.fpB)
			if (a == b) != c.wantEqual {
				t.Errorf("DeriveSeed(%d,%q)=%d vs DeriveSeed(%d,%q)=%d, wantEqual=%v",
					c.baseA, c.fpA, a, c.baseB, c.fpB, b, c.wantEqual)
			}
			if a == 0 || b == 0 {
				t.Error("derived seed must never be zero")
			}
		})
	}
}

func TestRunMemoises(t *testing.T) {
	e := New(Options{Workers: 1, BaseSeed: 7})
	j := job(hpcc.STREAM, 8, migrate.AMPoM)
	a, err := e.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Run did not hit the cache")
	}
	if e.Executed() != 1 || e.Requests() != 2 {
		t.Fatalf("executed=%d requests=%d, want 1/2", e.Executed(), e.Requests())
	}
}

// TestSingleFlight hammers one job from many goroutines: the simulation
// must run exactly once and every caller must observe the same result.
// Run with -race to check the cache synchronisation.
func TestSingleFlight(t *testing.T) {
	e := New(Options{Workers: 8, BaseSeed: 7})
	j := job(hpcc.RandomAccess, 8, migrate.AMPoM)
	const n = 16
	results := make([]*migrate.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := e.Run(j)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if e.Executed() != 1 {
		t.Fatalf("executed %d times, want 1", e.Executed())
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw a different result pointer", i)
		}
	}
}

// TestRunAllSharesCache fans a batch with duplicates and overlapping cells
// across the pool; the engine must execute each distinct fingerprint once.
func TestRunAllSharesCache(t *testing.T) {
	e := New(Options{Workers: 8, BaseSeed: 7})
	jobs := []Job{
		job(hpcc.STREAM, 8, migrate.AMPoM),
		job(hpcc.STREAM, 8, migrate.OpenMosix),
		job(hpcc.STREAM, 8, migrate.AMPoM), // duplicate
		job(hpcc.DGEMM, 8, migrate.AMPoM),
		{Kernel: hpcc.STREAM, MemoryMB: 8, Scheme: migrate.AMPoM, Network: netmodel.FastEthernet()}, // normalises to a duplicate
	}
	res, err := e.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
	}
	if e.Executed() != 3 {
		t.Fatalf("executed %d distinct jobs, want 3", e.Executed())
	}
	if res[0] != res[2] || res[0] != res[4] {
		t.Fatal("duplicate jobs did not share one result")
	}
}

func TestRunAllAggregatesErrors(t *testing.T) {
	e := New(Options{Workers: 4, BaseSeed: 7})
	jobs := []Job{
		job(hpcc.STREAM, 8, migrate.AMPoM),
		{Kernel: hpcc.DGEMM, MemoryMB: 4, AllocMB: 2, Scheme: migrate.AMPoM}, // ws > alloc: invalid
		{Kernel: hpcc.STREAM, MemoryMB: 0, Scheme: migrate.AMPoM},            // no footprint: invalid
		job(hpcc.FFT, 8, migrate.OpenMosix),
	}
	res, err := e.RunAll(jobs)
	if err == nil {
		t.Fatal("want aggregated error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T, want *RunError", err)
	}
	if len(re.Failures) != 2 || re.Total != len(jobs) {
		t.Fatalf("failures=%d total=%d, want 2/%d: %v", len(re.Failures), re.Total, len(jobs), err)
	}
	if res[0] == nil || res[3] == nil {
		t.Fatal("healthy jobs must still produce results")
	}
	if res[1] != nil || res[2] != nil {
		t.Fatal("failed jobs must leave nil slots")
	}
	if !strings.Contains(err.Error(), "2/4") {
		t.Fatalf("error summary %q lacks failure count", err)
	}
}

func TestRunAllProgress(t *testing.T) {
	var mu sync.Mutex
	var samples []Progress
	e := New(Options{
		Workers:  4,
		BaseSeed: 7,
		OnProgress: func(p Progress) {
			mu.Lock()
			samples = append(samples, p)
			mu.Unlock()
		},
	})
	jobs := []Job{
		job(hpcc.STREAM, 8, migrate.AMPoM),
		job(hpcc.STREAM, 8, migrate.OpenMosix),
		{Kernel: hpcc.STREAM, MemoryMB: 0, Scheme: migrate.AMPoM}, // fails
	}
	_, _ = e.RunAll(jobs)
	if len(samples) != len(jobs) {
		t.Fatalf("progress samples = %d, want %d", len(samples), len(jobs))
	}
	for i, p := range samples {
		if p.Done != i+1 {
			t.Fatalf("sample %d: Done=%d, want %d (monotonic)", i, p.Done, i+1)
		}
		if p.Total != len(jobs) {
			t.Fatalf("sample %d: Total=%d", i, p.Total)
		}
	}
	final := samples[len(samples)-1]
	if final.Failed != 1 || final.ETA != 0 {
		t.Fatalf("final sample = %+v, want Failed=1 ETA=0", final)
	}
}

// TestParallelMatchesSequential is the engine-level determinism guarantee:
// the same batch through 1 worker and through 8 workers must produce
// value-identical results for every job.
func TestParallelMatchesSequential(t *testing.T) {
	var jobs []Job
	for _, k := range hpcc.Kernels() {
		for _, s := range migrate.Schemes() {
			jobs = append(jobs, job(k, 8, s))
		}
	}
	seq := New(Options{Workers: 1, BaseSeed: 11})
	par := New(Options{Workers: 8, BaseSeed: 11})
	sres, err := seq.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := par.RunAll(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if !reflect.DeepEqual(*sres[i], *pres[i]) {
			t.Fatalf("job %v: sequential and parallel results differ:\n%+v\n%+v", jobs[i], *sres[i], *pres[i])
		}
	}
}

// TestBaseSeedMatters: a different campaign seed must actually change the
// stochastic results somewhere in the matrix.
func TestBaseSeedMatters(t *testing.T) {
	j := job(hpcc.RandomAccess, 8, migrate.AMPoM)
	a, err := New(Options{BaseSeed: 1}).Run(j)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{BaseSeed: 2}).Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(*a, *b) {
		t.Fatal("changing the base seed left a RandomAccess run identical")
	}
}

func TestDedupe(t *testing.T) {
	a := job(hpcc.STREAM, 8, migrate.AMPoM)
	b := job(hpcc.STREAM, 8, migrate.OpenMosix)
	got := Dedupe([]Job{a, b, a, b, a})
	if len(got) != 2 {
		t.Fatalf("dedupe kept %d jobs, want 2", len(got))
	}
	if got[0].Scheme != migrate.AMPoM || got[1].Scheme != migrate.OpenMosix {
		t.Fatal("dedupe did not preserve first-occurrence order")
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := New(Options{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(Options{Workers: 3}).Workers(); w != 3 {
		t.Fatalf("workers = %d, want 3", w)
	}
	if s := New(Options{}).BaseSeed(); s != 42 {
		t.Fatalf("default base seed = %d, want 42", s)
	}
}
