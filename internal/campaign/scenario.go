package campaign

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ampom/internal/scenario"
)

// This file makes cluster scenarios first-class campaign jobs: they are
// fingerprinted from the canonical Spec, executed through the same worker
// pool as migration experiments, memoised in a concurrency-safe
// single-flight cache, and seeded purely from (base seed, fingerprint) — so
// scenario batches inherit the engine's determinism guarantee: any worker
// count renders byte-identical reports.

// ScenarioJob identifies one cluster-scenario cell of a campaign.
type ScenarioJob struct {
	Spec scenario.Spec

	// Shards selects the event-engine shard count the run executes with.
	// It is an execution strategy, not a model parameter — every count
	// yields a byte-identical report — so it stays out of the fingerprint
	// (and therefore out of the cache key and seed).
	Shards int
}

// Fingerprint returns the job's canonical cache/seed key, namespaced apart
// from migration-experiment fingerprints.
func (j ScenarioJob) Fingerprint() string { return "scenario|" + j.Spec.Fingerprint() }

// String describes the job in progress reports and errors.
func (j ScenarioJob) String() string { return j.Spec.String() }

// SeedForScenario returns the PRNG seed a scenario job runs with — the same
// derivation rule migration jobs use, applied to the scenario fingerprint.
func (e *Engine) SeedForScenario(j ScenarioJob) uint64 {
	return DeriveSeed(e.opts.BaseSeed, j.Fingerprint())
}

// ScenarioProgress is one progress sample of an executing scenario job:
// the policy whose simulation just finished and how far through the job's
// policy set the run is. Samples reach Options.OnScenarioProgress.
type ScenarioProgress struct {
	// Job is the scenario being executed.
	Job ScenarioJob
	// Fingerprint is the job's cache/store key, so multiplexing consumers
	// (the daemon's event streams) can route samples without recomputing
	// it.
	Fingerprint string
	// Policy is the registry name of the policy that just finished; Done
	// of Total counts finished policy simulations.
	Policy      string
	Done, Total int
}

// RunScenario executes one scenario, memoised: concurrent calls with the
// same fingerprint run the simulation once and share the report. With a
// result store configured, a fingerprint whose report bytes are already
// on disk is decoded instead of simulated, and every newly computed
// report is persisted on success — failed runs never reach the store, and
// (like every flight error) never stay in the in-memory cache either, so
// retries re-execute.
func (e *Engine) RunScenario(job ScenarioJob) (*scenario.Report, error) {
	e.statMu.Lock()
	e.requests++
	e.statMu.Unlock()

	fp := job.Fingerprint()
	rep, err, executed := e.scenarios.do(fp,
		func(r any) error { return fmt.Errorf("campaign: %v: panic during scenario: %v", job, r) },
		func() (*scenario.Report, error) {
			if rep, ok := e.storeLookup(fp); ok {
				return rep, nil
			}
			var hook func(scenario.PolicyProgress)
			if cb := e.opts.OnScenarioProgress; cb != nil {
				hook = func(p scenario.PolicyProgress) {
					cb(ScenarioProgress{Job: job, Fingerprint: fp, Policy: p.Policy, Done: p.Done, Total: p.Total})
				}
			}
			rep, err := scenario.RunShardsHook(job.Spec, e.SeedForScenario(job), job.Shards, hook)
			if err != nil {
				return nil, err
			}
			e.storePersist(fp, rep)
			return rep, nil
		})
	if executed {
		e.statMu.Lock()
		e.executed++
		e.statMu.Unlock()
	}
	return rep, err
}

// storeLookup serves a job from the persistent result store, if one is
// configured and holds a decodable cell for the fingerprint. Corrupt or
// undecodable cells degrade to a miss — the caller recomputes, and the
// following storePersist heals the cell.
func (e *Engine) storeLookup(fp string) (*scenario.Report, bool) {
	st := e.opts.Store
	if st == nil {
		return nil, false
	}
	data, ok, _ := st.Get(fp)
	if !ok {
		return nil, false
	}
	reps, err := scenario.DecodeReports(data)
	if err != nil || len(reps) != 1 {
		return nil, false
	}
	return reps[0], true
}

// storePersist writes a freshly computed report to the result store. A
// store that cannot be written degrades the engine to compute-only — the
// report itself is still healthy, so persistence failures are deliberately
// not surfaced as job failures.
func (e *Engine) storePersist(fp string, rep *scenario.Report) {
	st := e.opts.Store
	if st == nil {
		return
	}
	data, err := rep.JSON()
	if err != nil {
		return
	}
	_ = st.Put(fp, data)
}

// ScenarioError ties a failed scenario job to its error.
type ScenarioError struct {
	Job ScenarioJob
	Err error
}

func (e ScenarioError) Error() string { return fmt.Sprintf("%v: %v", e.Job, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e ScenarioError) Unwrap() error { return e.Err }

// ScenarioRunError aggregates every failure of a scenario batch; healthy
// jobs still complete and return reports.
type ScenarioRunError struct {
	Total    int
	Failures []ScenarioError
}

func (e *ScenarioRunError) Error() string {
	if len(e.Failures) == 0 {
		return "campaign: no failures"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d/%d scenario(s) failed", len(e.Failures), e.Total)
	for i, f := range e.Failures {
		if i == 4 && len(e.Failures) > 5 {
			fmt.Fprintf(&b, "; … %d more", len(e.Failures)-i)
			break
		}
		fmt.Fprintf(&b, "; %v", f)
	}
	return b.String()
}

// RunScenarios executes a batch of scenarios across the worker pool and
// returns one report per job, in input order. Failures are aggregated into
// a *ScenarioRunError (sorted by fingerprint for determinism); the
// corresponding report slots are nil and every other scenario still runs.
func (e *Engine) RunScenarios(jobs []ScenarioJob) ([]*scenario.Report, error) {
	return e.RunScenariosCtx(context.Background(), jobs)
}

// RunScenariosCtx is RunScenarios under cooperative cancellation: once
// ctx is done, no further scenario is dispatched — runs already in flight
// finish and return their reports, and every skipped job fails with ctx's
// error in the aggregate. This is the graceful-drain path the batch CLI
// wires its SIGINT/SIGTERM context into.
func (e *Engine) RunScenariosCtx(ctx context.Context, jobs []ScenarioJob) ([]*scenario.Report, error) {
	reports := make([]*scenario.Report, len(jobs))
	errs := make([]error, len(jobs))
	e.fanOutCtx(ctx, len(jobs), func(i int) {
		reports[i], errs[i] = e.RunScenario(jobs[i])
	}, func(i int) {
		errs[i] = fmt.Errorf("campaign: skipped: %w", ctx.Err())
	})

	var failures []ScenarioError
	seen := make(map[string]bool)
	for i, err := range errs {
		if err == nil {
			continue
		}
		fp := jobs[i].Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		failures = append(failures, ScenarioError{Job: jobs[i], Err: err})
	}
	if len(failures) == 0 {
		return reports, nil
	}
	sort.Slice(failures, func(i, j int) bool {
		return failures[i].Job.Fingerprint() < failures[j].Job.Fingerprint()
	})
	return reports, &ScenarioRunError{Total: len(jobs), Failures: failures}
}
