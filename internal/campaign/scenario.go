package campaign

import (
	"fmt"
	"sort"
	"strings"

	"ampom/internal/scenario"
)

// This file makes cluster scenarios first-class campaign jobs: they are
// fingerprinted from the canonical Spec, executed through the same worker
// pool as migration experiments, memoised in a concurrency-safe
// single-flight cache, and seeded purely from (base seed, fingerprint) — so
// scenario batches inherit the engine's determinism guarantee: any worker
// count renders byte-identical reports.

// ScenarioJob identifies one cluster-scenario cell of a campaign.
type ScenarioJob struct {
	Spec scenario.Spec

	// Shards selects the event-engine shard count the run executes with.
	// It is an execution strategy, not a model parameter — every count
	// yields a byte-identical report — so it stays out of the fingerprint
	// (and therefore out of the cache key and seed).
	Shards int
}

// Fingerprint returns the job's canonical cache/seed key, namespaced apart
// from migration-experiment fingerprints.
func (j ScenarioJob) Fingerprint() string { return "scenario|" + j.Spec.Fingerprint() }

// String describes the job in progress reports and errors.
func (j ScenarioJob) String() string { return j.Spec.String() }

// SeedForScenario returns the PRNG seed a scenario job runs with — the same
// derivation rule migration jobs use, applied to the scenario fingerprint.
func (e *Engine) SeedForScenario(j ScenarioJob) uint64 {
	return DeriveSeed(e.opts.BaseSeed, j.Fingerprint())
}

// RunScenario executes one scenario, memoised: concurrent calls with the
// same fingerprint run the simulation once and share the report.
func (e *Engine) RunScenario(job ScenarioJob) (*scenario.Report, error) {
	e.statMu.Lock()
	e.requests++
	e.statMu.Unlock()

	rep, err, executed := e.scenarios.do(job.Fingerprint(),
		func(r any) error { return fmt.Errorf("campaign: %v: panic during scenario: %v", job, r) },
		func() (*scenario.Report, error) {
			return scenario.RunShards(job.Spec, e.SeedForScenario(job), job.Shards)
		})
	if executed {
		e.statMu.Lock()
		e.executed++
		e.statMu.Unlock()
	}
	return rep, err
}

// ScenarioError ties a failed scenario job to its error.
type ScenarioError struct {
	Job ScenarioJob
	Err error
}

func (e ScenarioError) Error() string { return fmt.Sprintf("%v: %v", e.Job, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e ScenarioError) Unwrap() error { return e.Err }

// ScenarioRunError aggregates every failure of a scenario batch; healthy
// jobs still complete and return reports.
type ScenarioRunError struct {
	Total    int
	Failures []ScenarioError
}

func (e *ScenarioRunError) Error() string {
	if len(e.Failures) == 0 {
		return "campaign: no failures"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d/%d scenario(s) failed", len(e.Failures), e.Total)
	for i, f := range e.Failures {
		if i == 4 && len(e.Failures) > 5 {
			fmt.Fprintf(&b, "; … %d more", len(e.Failures)-i)
			break
		}
		fmt.Fprintf(&b, "; %v", f)
	}
	return b.String()
}

// RunScenarios executes a batch of scenarios across the worker pool and
// returns one report per job, in input order. Failures are aggregated into
// a *ScenarioRunError (sorted by fingerprint for determinism); the
// corresponding report slots are nil and every other scenario still runs.
func (e *Engine) RunScenarios(jobs []ScenarioJob) ([]*scenario.Report, error) {
	reports := make([]*scenario.Report, len(jobs))
	errs := make([]error, len(jobs))
	e.fanOut(len(jobs), func(i int) {
		reports[i], errs[i] = e.RunScenario(jobs[i])
	})

	var failures []ScenarioError
	seen := make(map[string]bool)
	for i, err := range errs {
		if err == nil {
			continue
		}
		fp := jobs[i].Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		failures = append(failures, ScenarioError{Job: jobs[i], Err: err})
	}
	if len(failures) == 0 {
		return reports, nil
	}
	sort.Slice(failures, func(i, j int) bool {
		return failures[i].Job.Fingerprint() < failures[j].Job.Fingerprint()
	})
	return reports, &ScenarioRunError{Total: len(jobs), Failures: failures}
}
