// Package campaign is the parallel experiment engine behind the figure
// harness: it fans an embarrassingly-parallel matrix of migration
// experiments (kernel × memory size × scheme × network profile × prefetcher
// configuration) out across a bounded worker pool, memoises results in a
// concurrency-safe single-flight cache so cells shared between figures are
// computed once, and aggregates per-job failures instead of aborting the
// whole campaign at the first one.
//
// Determinism is the load-bearing property: every job's PRNG seed is derived
// from the campaign base seed and the job's canonical fingerprint alone —
// never from execution order, worker identity or wall-clock — so a campaign
// run with 16 workers produces byte-identical tables to a sequential run.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ampom/internal/core"
	"ampom/internal/hpcc"
	"ampom/internal/migrate"
	"ampom/internal/netmodel"
	"ampom/internal/resultstore"
	"ampom/internal/scenario"
)

// Job identifies one cell of an experiment campaign. The zero values of
// Network and AMPoM mean the defaults (Fast Ethernet, the paper's §4
// configuration); they are normalised before fingerprinting so equivalent
// jobs share one cache cell.
type Job struct {
	// Kernel is the HPCC kernel to run.
	Kernel hpcc.Kernel
	// MemoryMB is the process footprint — or, when AllocMB is set, the
	// working set actually touched (§5.6).
	MemoryMB int64
	// AllocMB, when > 0, builds the §5.6 modified-DGEMM variant: AllocMB
	// allocated, MemoryMB worked on.
	AllocMB int64
	// Scheme is the migration mechanism.
	Scheme migrate.Scheme
	// Network is the link profile; zero value means Fast Ethernet.
	Network netmodel.Profile
	// AMPoM tunes the prefetcher (AMPoM scheme only); zero value means the
	// paper's defaults.
	AMPoM core.Config
	// BackgroundLoad is the fraction of link bandwidth consumed by
	// competing traffic.
	BackgroundLoad float64
}

// normalised maps every "use the default" zero value to the default it
// stands for, so that jobs which run identically fingerprint identically.
func (j Job) normalised() Job {
	if j.AllocMB > 0 {
		// The §5.6 working-set workload is the modified DGEMM regardless of
		// the requested kernel (hpcc.BuildWorkingSet models only that);
		// canonicalise so the label, fingerprint and seed all agree.
		j.Kernel = hpcc.DGEMM
	}
	if j.Network.BandwidthBps == 0 {
		j.Network = netmodel.FastEthernet()
	}
	if j.Scheme != migrate.AMPoM {
		// The prefetcher configuration is dead weight for every other
		// scheme; zero it so e.g. an openMosix baseline requested by an
		// ablation shares its cell with the one requested by Figure 5.
		j.AMPoM = core.Config{}
	} else {
		j.AMPoM = j.AMPoM.Canonical()
	}
	return j
}

// Fingerprint returns the job's canonical cache/seed key. Two jobs with the
// same fingerprint run the same experiment and share one cache cell.
func (j Job) Fingerprint() string {
	j = j.normalised()
	var b strings.Builder
	fmt.Fprintf(&b, "kernel=%s|mb=%d|alloc=%d|scheme=%s|net=%s/%d/%g|load=%g",
		j.Kernel, j.MemoryMB, j.AllocMB, j.Scheme,
		j.Network.Name, int64(j.Network.LatencyOneWay), j.Network.BandwidthBps,
		j.BackgroundLoad)
	if j.Scheme == migrate.AMPoM {
		fmt.Fprintf(&b, "|ampom=l%d,d%d,cap%d,bl%g",
			j.AMPoM.WindowLen, j.AMPoM.DMax, j.AMPoM.MaxPrefetch, j.AMPoM.BaselineScore)
	}
	return b.String()
}

// WorkloadFingerprint identifies just the workload the job runs on —
// kernel, footprint and working-set allocation. Per-job seeds are derived
// from this sub-key rather than the full fingerprint, so every scheme,
// network and prefetcher variant measured on one workload replays the
// identical reference stream: the cross-scheme comparisons the figures
// report hold the workload fixed, as the paper's testbed did.
func (j Job) WorkloadFingerprint() string {
	j = j.normalised()
	return fmt.Sprintf("kernel=%s|mb=%d|alloc=%d", j.Kernel, j.MemoryMB, j.AllocMB)
}

// String describes the job in progress reports and errors.
func (j Job) String() string {
	j = j.normalised()
	if j.AllocMB > 0 {
		return fmt.Sprintf("%v(%dMB/%dMB)/%v", j.Kernel, j.MemoryMB, j.AllocMB, j.Scheme)
	}
	return fmt.Sprintf("%v(%dMB)/%v", j.Kernel, j.MemoryMB, j.Scheme)
}

// DeriveSeed mixes the campaign base seed with a job fingerprint into the
// job's private PRNG seed. The derivation is a pure function of its two
// arguments (FNV-1a over the fingerprint, then a SplitMix64 finalisation),
// which is what makes parallel campaigns reproducible: a job draws the same
// random stream no matter which worker runs it or in what order.
func DeriveSeed(base uint64, fingerprint string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(fingerprint); i++ {
		h ^= uint64(fingerprint[i])
		h *= fnvPrime
	}
	z := h ^ (base + 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Progress is one campaign progress sample, delivered after each job
// completes (including cache hits, which complete instantly).
type Progress struct {
	// Done counts finished jobs of the batch; Failed of those failed.
	Done, Failed int
	// Total is the batch size.
	Total int
	// Elapsed is wall-clock time since the batch started.
	Elapsed time.Duration
	// ETA extrapolates the remaining wall-clock time from the pace so far.
	ETA time.Duration
	// Job is the job that just finished.
	Job Job
}

// Options configures an Engine.
type Options struct {
	// Workers bounds the worker pool: 0 means GOMAXPROCS, 1 runs batches
	// sequentially.
	Workers int
	// BaseSeed is the campaign seed every per-job seed is derived from.
	// Zero means 42.
	BaseSeed uint64
	// Calibration overrides the simulator cost constants; nil means the
	// Gideon 300 defaults.
	Calibration *migrate.Calibration
	// OnProgress, when set, is called after every job of a RunAll batch
	// completes. Calls are serialised; the callback must not block long.
	OnProgress func(Progress)
	// OnScenarioProgress, when set, receives a sample after each policy of
	// an executing scenario completes (cache and store hits produce no
	// samples — nothing runs). Calls arrive from the executing goroutine
	// and must not block long. This is the hook ampom-clusterd streams to
	// clients.
	OnScenarioProgress func(ScenarioProgress)
	// Store, when set, backs the in-memory scenario cache with a
	// persistent content-addressed result store: RunScenario serves a
	// fingerprint whose report bytes are already on disk without
	// simulating, and persists every newly computed report on success.
	// Failed runs are never persisted — a store cell is proof the
	// fingerprint once ran to completion.
	Store *resultstore.Store
}

// Engine executes campaign jobs through a worker pool and a single-flight
// result cache. It is safe for concurrent use.
type Engine struct {
	opts    Options
	workers int

	runs      flight[*migrate.Result]
	scenarios flight[*scenario.Report]

	statMu   sync.Mutex
	executed int
	requests int

	now func() time.Time // test hook
}

// New returns an engine for the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if opts.BaseSeed == 0 {
		opts.BaseSeed = 42
	}
	return &Engine{
		opts:    opts,
		workers: w,
		now:     time.Now,
	}
}

// flight is a fingerprint-keyed single-flight cache: the first requester of
// a key computes, every later requester blocks on the cell and shares the
// outcome. Both the migration-experiment cache and the scenario cache are
// instances, so the concurrency discipline lives in one place.
type flight[T any] struct {
	mu    sync.Mutex
	cells map[string]*fcell[T]
}

// fcell is one single-flight slot.
type fcell[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// do returns the memoised outcome for key, running compute exactly once
// across concurrent callers. executed reports whether this call did the
// computing.
//
// Only success is cached. Callers concurrent with a failing compute share
// its error (they asked for the in-flight run and that run failed), but
// the cell is dropped before they are released, so any later request
// re-executes instead of replaying a stale failure — a transient fault
// (exhausted disk, an interrupted run) never poisons the fingerprint for
// the engine's lifetime. A panicking compute is handled the same way:
// waiters get wrapPanic(recovered) as their error, the cell is dropped,
// and the panic is re-raised in the computing goroutine.
func (f *flight[T]) do(key string, wrapPanic func(r any) error, compute func() (T, error)) (val T, err error, executed bool) {
	f.mu.Lock()
	if f.cells == nil {
		f.cells = make(map[string]*fcell[T])
	}
	c, ok := f.cells[key]
	if ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, false
	}
	c = &fcell[T]{done: make(chan struct{})}
	f.cells[key] = c
	f.mu.Unlock()

	// Drop failed cells before releasing waiters, so a retry after the
	// error re-executes. The identity check guards against deleting a
	// successor cell some future requester installed (impossible today —
	// nothing replaces a cell before done is closed — but cheap).
	drop := func() {
		f.mu.Lock()
		if f.cells[key] == c {
			delete(f.cells, key)
		}
		f.mu.Unlock()
	}
	// Always release waiters, even if compute panics underneath us and a
	// caller up the stack recovers.
	defer close(c.done)
	defer func() {
		if r := recover(); r != nil {
			c.err = wrapPanic(r)
			drop()
			panic(r)
		}
	}()
	c.val, c.err = compute()
	if c.err != nil {
		drop()
	}
	return c.val, c.err, true
}

// Workers returns the pool bound.
func (e *Engine) Workers() int { return e.workers }

// BaseSeed returns the campaign seed.
func (e *Engine) BaseSeed() uint64 { return e.opts.BaseSeed }

// Executed returns how many jobs the engine actually simulated (cache
// misses). Requests returns how many Run calls it served in total.
func (e *Engine) Executed() int {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.executed
}

// Requests returns the total number of Run calls served (hits + misses).
func (e *Engine) Requests() int {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.requests
}

// SeedFor returns the PRNG seed a job's workload is built and run with —
// the derivation the engine itself uses, exposed so out-of-band analyses
// (e.g. the Figure 4 locality measurement) can replay the exact stream the
// campaign simulates.
func (e *Engine) SeedFor(j Job) uint64 {
	return DeriveSeed(e.opts.BaseSeed, j.WorkloadFingerprint())
}

// Run executes one job, memoised: concurrent calls with the same
// fingerprint run the simulation once and share the result.
func (e *Engine) Run(job Job) (*migrate.Result, error) {
	e.statMu.Lock()
	e.requests++
	e.statMu.Unlock()

	res, err, executed := e.runs.do(job.Fingerprint(),
		func(r any) error { return fmt.Errorf("campaign: %v: panic during simulation: %v", job, r) },
		func() (*migrate.Result, error) { return e.execute(job.normalised()) })
	if executed {
		e.statMu.Lock()
		e.executed++
		e.statMu.Unlock()
	}
	return res, err
}

// execute simulates one job with its derived seed.
func (e *Engine) execute(j Job) (*migrate.Result, error) {
	seed := e.SeedFor(j)
	var (
		w   *hpcc.Workload
		err error
	)
	if j.AllocMB > 0 {
		w, err = hpcc.BuildWorkingSet(j.AllocMB, j.MemoryMB, seed)
	} else {
		w, err = hpcc.Build(hpcc.Entry{Kernel: j.Kernel, ProblemSize: j.MemoryMB, MemoryMB: j.MemoryMB}, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: building %v: %w", j, err)
	}
	r, err := migrate.Run(migrate.RunConfig{
		Workload:       w,
		Scheme:         j.Scheme,
		Network:        j.Network,
		AMPoM:          j.AMPoM,
		Calibration:    e.opts.Calibration,
		Seed:           seed,
		BackgroundLoad: j.BackgroundLoad,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: running %v: %w", j, err)
	}
	return r, nil
}

// fanOut distributes n indexed tasks across the engine's worker pool and
// waits for all of them. Both job batches (RunAll) and scenario batches
// (RunScenarios) go through here, so they share one pool bound.
func (e *Engine) fanOut(n int, run func(i int)) {
	e.fanOutCtx(context.Background(), n, run, nil)
}

// fanOutCtx is fanOut under cooperative cancellation: once ctx is done no
// further index is dispatched — tasks already running finish normally (a
// simulation is never torn mid-run) and every undispatched index is
// reported to skip instead. This is the graceful-drain primitive the
// SIGINT/SIGTERM handling of the batch CLIs and the daemon build on.
func (e *Engine) fanOutCtx(ctx context.Context, n int, run func(i int), skip func(i int)) {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			if skip != nil {
				for j := i; j < n; j++ {
					skip(j)
				}
			}
			break dispatch
		case idx <- i:
		}
	}
	close(idx)
	wg.Wait()
}

// JobError ties a failed job to its error.
type JobError struct {
	Job Job
	Err error
}

func (e JobError) Error() string { return fmt.Sprintf("%v: %v", e.Job, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e JobError) Unwrap() error { return e.Err }

// RunError aggregates every failure of a campaign batch. The batch's healthy
// jobs still complete and return results — a broken ablation cell no longer
// takes the whole figure regeneration down with it.
type RunError struct {
	// Total is the batch size the failures came from.
	Total    int
	Failures []JobError
}

func (e *RunError) Error() string {
	if len(e.Failures) == 0 {
		return "campaign: no failures"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d/%d job(s) failed", len(e.Failures), e.Total)
	for i, f := range e.Failures {
		if i == 4 && len(e.Failures) > 5 {
			fmt.Fprintf(&b, "; … %d more", len(e.Failures)-i)
			break
		}
		fmt.Fprintf(&b, "; %v", f)
	}
	return b.String()
}

// RunAll executes a batch of jobs across the worker pool and returns one
// result per job, in input order. Duplicate or already-cached jobs are
// served from the cache. Failures are aggregated into a *RunError (sorted
// by job fingerprint for determinism); the corresponding result slots are
// nil and every other job still runs to completion.
func (e *Engine) RunAll(jobs []Job) ([]*migrate.Result, error) {
	results := make([]*migrate.Result, len(jobs))
	errs := make([]error, len(jobs))

	start := e.now()
	var (
		progMu sync.Mutex
		done   int
		failed int
	)
	report := func(i int) {
		if e.opts.OnProgress == nil {
			return
		}
		progMu.Lock()
		done++
		if errs[i] != nil {
			failed++
		}
		elapsed := e.now().Sub(start)
		var eta time.Duration
		if done > 0 && done < len(jobs) {
			eta = time.Duration(float64(elapsed) / float64(done) * float64(len(jobs)-done))
		}
		e.opts.OnProgress(Progress{
			Done: done, Failed: failed, Total: len(jobs),
			Elapsed: elapsed, ETA: eta, Job: jobs[i],
		})
		progMu.Unlock()
	}

	e.fanOut(len(jobs), func(i int) {
		results[i], errs[i] = e.Run(jobs[i])
		report(i)
	})

	var failures []JobError
	seen := make(map[string]bool)
	for i, err := range errs {
		if err == nil {
			continue
		}
		fp := jobs[i].Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		failures = append(failures, JobError{Job: jobs[i], Err: err})
	}
	if len(failures) == 0 {
		return results, nil
	}
	sort.Slice(failures, func(i, j int) bool {
		return failures[i].Job.Fingerprint() < failures[j].Job.Fingerprint()
	})
	return results, &RunError{Total: len(jobs), Failures: failures}
}

// Dedupe returns jobs with duplicate fingerprints removed, preserving first
// occurrence order — handy for enumerating a figure matrix whose tables
// share cells.
func Dedupe(jobs []Job) []Job {
	seen := make(map[string]bool, len(jobs))
	out := jobs[:0:0]
	for _, j := range jobs {
		fp := j.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, j)
	}
	return out
}
