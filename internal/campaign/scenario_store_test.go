package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ampom/internal/resultstore"
	"ampom/internal/scenario"
)

// TestFlightErrorDropped locks the single-flight retry contract: a failed
// compute is not memoised, so the next request for the same key re-executes
// instead of replaying a stale failure.
func TestFlightErrorDropped(t *testing.T) {
	var f flight[int]
	wrap := func(r any) error { return fmt.Errorf("panic: %v", r) }
	calls := 0
	boom := errors.New("transient fault")
	compute := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 42, nil
	}
	if _, err, executed := f.do("k", wrap, compute); err != boom || !executed {
		t.Fatalf("first call: err %v executed %v, want the fault, executed", err, executed)
	}
	v, err, executed := f.do("k", wrap, compute)
	if err != nil || v != 42 || !executed {
		t.Fatalf("retry after error: v %d err %v executed %v, want recomputed 42", v, err, executed)
	}
	// Success, by contrast, stays cached.
	if _, _, executed := f.do("k", wrap, compute); executed {
		t.Fatal("successful cell was not cached")
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

// TestScenarioErrorRetryReexecutes is the same contract at the engine level:
// a failing scenario job does not poison its fingerprint.
func TestScenarioErrorRetryReexecutes(t *testing.T) {
	bad := ScenarioJob{Spec: scenario.Spec{Name: "bad", Nodes: 4, Skew: 3}}
	e := New(Options{BaseSeed: 7})
	if _, err := e.RunScenario(bad); err == nil {
		t.Fatal("invalid scenario did not fail")
	}
	if _, err := e.RunScenario(bad); err == nil {
		t.Fatal("invalid scenario did not fail on retry")
	}
	if e.Executed() != 2 {
		t.Fatalf("failing job executed %d times across 2 requests, want 2 (errors must not be cached)", e.Executed())
	}
}

// TestScenarioStoreRoundTrip locks the persistent-store contract: a fresh
// engine sharing the store serves the fingerprint from disk — byte-identical
// report, no simulation — and the store observes the hit.
func TestScenarioStoreRoundTrip(t *testing.T) {
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := testScenario("store-rt")

	first := New(Options{BaseSeed: 7, Store: st})
	r1, err := first.RunScenario(job)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Puts != 1 {
		t.Fatalf("store puts %d after first run, want 1", got.Puts)
	}

	// A fresh engine (empty in-memory cache) with the same store must not
	// simulate: the progress hook fires only from a real run, so any sample
	// is proof of a re-simulation.
	simulated := false
	second := New(Options{BaseSeed: 7, Store: st,
		OnScenarioProgress: func(ScenarioProgress) { simulated = true }})
	r2, err := second.RunScenario(job)
	if err != nil {
		t.Fatal(err)
	}
	if simulated {
		t.Fatal("store hit re-simulated the scenario")
	}
	if got := st.Stats(); got.Hits < 1 {
		t.Fatalf("store stats %+v, want at least one hit", got)
	}
	b1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("store-served report re-encodes differently from the simulated one")
	}
}

// TestScenarioFailureNeverPersisted locks that a store cell is proof of a
// completed run: failed jobs write nothing.
func TestScenarioFailureNeverPersisted(t *testing.T) {
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := ScenarioJob{Spec: scenario.Spec{Name: "bad", Nodes: 4, Skew: 3}}
	e := New(Options{BaseSeed: 7, Store: st})
	if _, err := e.RunScenario(bad); err == nil {
		t.Fatal("invalid scenario did not fail")
	}
	if got := st.Stats(); got.Puts != 0 {
		t.Fatalf("failed job persisted %d cell(s), want 0", got.Puts)
	}
	if _, ok, _ := st.Get(bad.Fingerprint()); ok {
		t.Fatal("failed job's fingerprint hits the store")
	}
}

// TestRunScenariosCtxCancelled locks the graceful-drain contract: a done
// context stops dispatch, and every skipped job fails with the context's
// error instead of hanging or running.
func TestRunScenariosCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Options{Workers: 2, BaseSeed: 7})
	jobs := []ScenarioJob{testScenario("c1"), testScenario("c2"), testScenario("c3")}
	reports, err := e.RunScenariosCtx(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled batch reported success")
	}
	re, ok := err.(*ScenarioRunError)
	if !ok {
		t.Fatalf("error is %T, want *ScenarioRunError", err)
	}
	if len(re.Failures) != len(jobs) {
		t.Fatalf("%d/%d jobs failed, want all skipped", len(re.Failures), len(jobs))
	}
	for _, f := range re.Failures {
		if !errors.Is(f.Err, context.Canceled) {
			t.Fatalf("skip error %v does not wrap context.Canceled", f.Err)
		}
	}
	for i, r := range reports {
		if r != nil {
			t.Fatalf("skipped job %d returned a report", i)
		}
	}
	if e.Executed() != 0 {
		t.Fatalf("cancelled batch executed %d simulations, want 0", e.Executed())
	}
}

// TestScenarioProgressHook locks the shape of the progress stream the daemon
// multiplexes to clients: one sample per completed policy, Done counting up
// to Total, every sample carrying the job's fingerprint.
func TestScenarioProgressHook(t *testing.T) {
	var (
		mu      sync.Mutex
		samples []ScenarioProgress
	)
	e := New(Options{BaseSeed: 7, OnScenarioProgress: func(p ScenarioProgress) {
		mu.Lock()
		samples = append(samples, p)
		mu.Unlock()
	}})
	job := testScenario("progress")
	if _, err := e.RunScenario(job); err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no progress samples from a real run")
	}
	total := samples[0].Total
	if len(samples) != total {
		t.Fatalf("%d samples for Total %d, want one per policy", len(samples), total)
	}
	for i, p := range samples {
		if p.Done != i+1 || p.Total != total {
			t.Fatalf("sample %d = %d/%d, want %d/%d", i, p.Done, p.Total, i+1, total)
		}
		if p.Fingerprint != job.Fingerprint() {
			t.Fatalf("sample fingerprint %q, want %q", p.Fingerprint, job.Fingerprint())
		}
		if p.Policy == "" {
			t.Fatalf("sample %d has no policy name", i)
		}
	}
	// A cache hit produces no samples — nothing runs.
	before := len(samples)
	if _, err := e.RunScenario(job); err != nil {
		t.Fatal(err)
	}
	if len(samples) != before {
		t.Fatal("cache hit emitted progress samples")
	}
}
