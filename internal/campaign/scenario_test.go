package campaign

import (
	"strings"
	"sync"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/scenario"
	"ampom/internal/simtime"
)

func testScenario(name string) ScenarioJob {
	return ScenarioJob{Spec: scenario.Spec{
		Name:            name,
		Nodes:           4,
		Procs:           8,
		MeanCompute:     4 * simtime.Second,
		MeanFootprintMB: 32,
	}.Canonical()}
}

func TestScenarioSingleFlight(t *testing.T) {
	e := New(Options{Workers: 8, BaseSeed: 7})
	const callers = 16
	reports := make([]*scenario.Report, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := e.RunScenario(testScenario("sf"))
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = r
		}(i)
	}
	wg.Wait()
	if e.Executed() != 1 {
		t.Fatalf("%d callers executed %d simulations, want 1", callers, e.Executed())
	}
	for i := 1; i < callers; i++ {
		if reports[i] != reports[0] {
			t.Fatal("single-flight callers received different report pointers")
		}
	}
}

func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	jobs := []ScenarioJob{testScenario("a"), testScenario("b"), testScenario("c")}
	render := func(workers int) string {
		e := New(Options{Workers: workers, BaseSeed: 7})
		reports, err := e.RunScenarios(jobs)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range reports {
			b.WriteString(r.Render())
		}
		return b.String()
	}
	if render(1) != render(8) {
		t.Fatal("scenario batch differs between 1 and 8 workers")
	}
}

func TestScenarioSeedDerivation(t *testing.T) {
	e := New(Options{BaseSeed: 7})
	j := testScenario("seed")
	if e.SeedForScenario(j) != DeriveSeed(7, j.Fingerprint()) {
		t.Fatal("scenario seed not derived from (base, fingerprint)")
	}
	r, err := e.RunScenario(j)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != e.SeedForScenario(j) {
		t.Fatalf("report ran with seed %d, want %d", r.Seed, e.SeedForScenario(j))
	}
	// Distinct specs must draw distinct seeds (namespaced fingerprints).
	if e.SeedForScenario(testScenario("a")) == e.SeedForScenario(testScenario("b")) {
		t.Fatal("distinct scenarios share a seed")
	}
}

func TestScenarioFailureAggregation(t *testing.T) {
	bad := ScenarioJob{Spec: scenario.Spec{Name: "bad", Nodes: 4, Skew: 3}}
	e := New(Options{Workers: 4, BaseSeed: 7})
	reports, err := e.RunScenarios([]ScenarioJob{testScenario("ok"), bad})
	if err == nil {
		t.Fatal("invalid scenario did not fail the batch")
	}
	re, ok := err.(*ScenarioRunError)
	if !ok {
		t.Fatalf("error is %T, want *ScenarioRunError", err)
	}
	if len(re.Failures) != 1 || re.Total != 2 {
		t.Fatalf("got %d/%d failures, want 1/2", len(re.Failures), re.Total)
	}
	if reports[0] == nil {
		t.Fatal("healthy scenario did not complete")
	}
	if reports[1] != nil {
		t.Fatal("failed scenario returned a report")
	}
}

func TestScenarioFingerprintNamespaced(t *testing.T) {
	if !strings.HasPrefix(testScenario("x").Fingerprint(), "scenario|") {
		t.Fatal("scenario fingerprints must not collide with migration-job fingerprints")
	}
}

// TestScenarioShardsOutsideFingerprint locks that the shard count is an
// execution strategy: it changes neither the job fingerprint (cache key,
// seed) nor one byte of the report, and the single-flight cache therefore
// shares work across shard counts.
func TestScenarioShardsOutsideFingerprint(t *testing.T) {
	fab := scenario.FabricSpec{Topology: fabric.KindTwoTier, RackSize: 2}
	spec := scenario.Spec{
		Name:            "shards-fp",
		Nodes:           4,
		Procs:           8,
		MeanCompute:     4 * simtime.Second,
		MeanFootprintMB: 32,
		Fabric:          fab,
	}.Canonical()
	seq := ScenarioJob{Spec: spec}
	sharded := ScenarioJob{Spec: spec, Shards: 2}
	if seq.Fingerprint() != sharded.Fingerprint() {
		t.Fatalf("shard count leaked into the fingerprint: %q != %q", seq.Fingerprint(), sharded.Fingerprint())
	}

	a, err := New(Options{BaseSeed: 7}).RunScenario(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{BaseSeed: 7}).RunScenario(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatal("sharded campaign run rendered a different report than the sequential run")
	}

	e := New(Options{BaseSeed: 7})
	if _, err := e.RunScenario(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunScenario(sharded); err != nil {
		t.Fatal(err)
	}
	if e.Executed() != 1 {
		t.Fatalf("shard counts missed the single-flight cache: executed %d, want 1", e.Executed())
	}
}
