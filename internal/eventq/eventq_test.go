package eventq

import (
	"sort"
	"testing"
	"testing/quick"

	"ampom/internal/simtime"
)

func TestPopOrder(t *testing.T) {
	var q Queue
	times := []simtime.Time{5, 1, 3, 2, 4}
	for _, at := range times {
		q.Push(at, 0, func() {})
	}
	for want := simtime.Time(1); want <= 5; want++ {
		e := q.Pop()
		if e == nil || e.At != want {
			t.Fatalf("pop = %v, want %v", e, want)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop from empty queue should be nil")
	}
}

func TestTieBreakBySequence(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(7, 0, func() { order = append(order, i) })
	}
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		e.Fn()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: %v", order)
		}
	}
}

func TestPeek(t *testing.T) {
	var q Queue
	if q.Peek() != nil {
		t.Fatal("peek on empty queue should be nil")
	}
	q.Push(9, 0, func() {})
	e := q.Push(2, 0, func() {})
	if got := q.Peek(); got != e {
		t.Fatalf("peek = %v, want earliest", got)
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d, want 2 (peek must not remove)", q.Len())
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	a := q.Push(1, 0, func() {})
	b := q.Push(2, 0, func() {})
	c := q.Push(3, 0, func() {})
	if !q.Cancel(b) {
		t.Fatal("cancel of pending event returned false")
	}
	if q.Cancel(b) {
		t.Fatal("second cancel returned true")
	}
	if !b.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if got := q.Pop(); got != a {
		t.Fatalf("pop = %v, want a", got)
	}
	if got := q.Pop(); got != c {
		t.Fatalf("pop = %v, want c", got)
	}
	if q.Cancel(a) {
		t.Fatal("cancel of popped event returned true")
	}
	if q.Cancel(nil) {
		t.Fatal("cancel(nil) returned true")
	}
}

// TestLifecycleAccessors pins the Fired/Cancelled/Done state machine: a
// pending event reports none, a popped event reports fired (not
// cancelled), a cancelled event reports cancelled (not fired).
func TestLifecycleAccessors(t *testing.T) {
	var q Queue
	fired := q.Push(1, 0, func() {})
	cancelled := q.Push(2, 0, func() {})
	pending := q.Push(3, 0, func() {})

	for _, e := range []*Event{fired, cancelled, pending} {
		if e.Fired() || e.Cancelled() || e.Done() {
			t.Fatalf("pending event reports fired=%v cancelled=%v done=%v",
				e.Fired(), e.Cancelled(), e.Done())
		}
	}

	if got := q.Pop(); got != fired {
		t.Fatalf("pop = %v, want first event", got)
	}
	if !fired.Fired() || fired.Cancelled() || !fired.Done() {
		t.Fatalf("popped event reports fired=%v cancelled=%v done=%v, want true/false/true",
			fired.Fired(), fired.Cancelled(), fired.Done())
	}
	if fired.Fn == nil {
		t.Fatal("pop cleared Fn; callers run the callback through the returned handle")
	}

	q.Cancel(cancelled)
	if cancelled.Fired() || !cancelled.Cancelled() || !cancelled.Done() {
		t.Fatalf("cancelled event reports fired=%v cancelled=%v done=%v, want false/true/true",
			cancelled.Fired(), cancelled.Cancelled(), cancelled.Done())
	}
	if cancelled.Fn != nil {
		t.Fatal("cancel left Fn set")
	}
}

func TestCancelHead(t *testing.T) {
	var q Queue
	head := q.Push(1, 0, func() {})
	q.Push(2, 0, func() {})
	q.Push(3, 0, func() {})
	q.Cancel(head)
	if got := q.Pop(); got.At != 2 {
		t.Fatalf("after cancelling head, pop.At = %v, want 2", got.At)
	}
}

func TestCancelLast(t *testing.T) {
	var q Queue
	q.Push(1, 0, func() {})
	last := q.Push(2, 0, func() {})
	q.Cancel(last)
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
}

func TestLen(t *testing.T) {
	var q Queue
	for i := 0; i < 100; i++ {
		q.Push(simtime.Time(i), 0, func() {})
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 40; i++ {
		q.Pop()
	}
	if q.Len() != 60 {
		t.Fatalf("len after pops = %d", q.Len())
	}
}

// TestPopsSortedProperty: any multiset of times pops in non-decreasing
// order, with ties in insertion order.
func TestPopsSortedProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var q Queue
		for _, r := range raw {
			q.Push(simtime.Time(r%1000), 0, func() {})
		}
		var prevAt simtime.Time = -1
		var prevSeq uint64
		for {
			e := q.Pop()
			if e == nil {
				break
			}
			if e.At < prevAt {
				return false
			}
			if e.At == prevAt && e.Seq < prevSeq {
				return false
			}
			prevAt, prevSeq = e.At, e.Seq
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRandomProperty: cancelling an arbitrary subset leaves exactly
// the survivors, still sorted.
func TestCancelRandomProperty(t *testing.T) {
	f := func(raw []uint16, mask uint64) bool {
		var q Queue
		var events []*Event
		for _, r := range raw {
			events = append(events, q.Push(simtime.Time(r), 0, func() {}))
		}
		var survivors []simtime.Time
		for i, e := range events {
			if mask&(1<<(uint(i)%64)) != 0 && i%3 == 0 {
				q.Cancel(e)
			} else {
				survivors = append(survivors, e.At)
			}
		}
		sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
		for _, want := range survivors {
			e := q.Pop()
			if e == nil || e.At != want {
				return false
			}
		}
		return q.Pop() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
