// Package eventq implements the pending-event set of the discrete-event
// simulator: a binary min-heap ordered by firing time, then by the virtual
// instant the event was scheduled at, then by a monotonically increasing
// sequence number, so that events scheduled earlier fire earlier. In a
// single-engine run the scheduling instant never decreases between pushes,
// which makes (At, PushedAt, Seq) the same total order as (At, Seq) — but
// a sharded run injects events pushed by other engines after the fact, and
// PushedAt is what lets those merge into the exact slot the sequential
// schedule would have given them. Stable tie-breaking is what makes
// simulations deterministic.
package eventq

import "ampom/internal/simtime"

// Event is a scheduled callback. Events are allocated by the queue and
// reachable through the handle returned by Push, which supports
// cancellation.
type Event struct {
	At       simtime.Time // firing instant
	PushedAt simtime.Time // virtual instant the push happened; breaks At ties
	Seq      uint64       // insertion order, breaks (At, PushedAt) ties
	Fn       func()       // callback; nil after cancellation

	index int // heap index, or a sentinel once removed
}

// Sentinel index values marking how an event left the heap. Both are
// negative so the "still pending" test stays index >= 0.
const (
	firedIndex     = -1
	cancelledIndex = -2
)

// Fired reports whether the event was popped from the queue (and so has
// run, or is about to). A cancelled event never fires.
func (e *Event) Fired() bool { return e.index == firedIndex }

// Cancelled reports whether the event was removed by Cancel before firing.
// An event that already fired is not cancelled; see Fired.
func (e *Event) Cancelled() bool { return e.index == cancelledIndex }

// Done reports whether the event is no longer pending, for either reason.
func (e *Event) Done() bool { return e.index < 0 }

// Queue is a time-ordered event set. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulation engine owns it.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Push schedules fn to fire at instant at and returns a handle that can be
// passed to Cancel. pushedAt is the virtual instant the scheduling happens
// at (the engine clock of the pusher); it orders coincident firings ahead
// of the insertion sequence.
func (q *Queue) Push(at, pushedAt simtime.Time, fn func()) *Event {
	e := &Event{At: at, PushedAt: pushedAt, Seq: q.seq, Fn: fn}
	q.seq++
	e.index = len(q.heap)
	q.heap = append(q.heap, e)
	q.up(e.index)
	return e
}

// Peek returns the earliest pending event without removing it, or nil if the
// queue is empty.
func (q *Queue) Peek() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	return q.heap[0]
}

// Pop removes and returns the earliest pending event, or nil if the queue is
// empty.
func (q *Queue) Pop() *Event {
	if len(q.heap) == 0 {
		return nil
	}
	e := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[0].index = 0
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if len(q.heap) > 0 {
		q.down(0)
	}
	e.index = firedIndex
	return e
}

// Cancel removes a pending event so it will never fire. Cancelling an event
// that already fired or was already cancelled is a no-op. It returns whether
// the event was actually removed.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	i := e.index
	last := len(q.heap) - 1
	if i != last {
		q.heap[i] = q.heap[last]
		q.heap[i].index = i
	}
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if i < len(q.heap) {
		if !q.up(i) {
			q.down(i)
		}
	}
	e.index = cancelledIndex
	e.Fn = nil
	return true
}

// less orders events by firing time, then by scheduling instant, then by
// insertion sequence.
func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.At != b.At {
		return a.At < b.At
	}
	if a.PushedAt != b.PushedAt {
		return a.PushedAt < b.PushedAt
	}
	return a.Seq < b.Seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

// up restores the heap property walking towards the root. It reports whether
// the element moved.
func (q *Queue) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down restores the heap property walking towards the leaves.
func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
