package eventq

import (
	"container/heap"
	"testing"

	"ampom/internal/simtime"
)

// refEvent mirrors Event inside the container/heap reference model.
type refEvent struct {
	at       simtime.Time
	pushedAt simtime.Time
	seq      uint64
	index    int // heap index, -1 once removed
}

// refHeap is the trusted oracle: the standard library's heap over the same
// (At, PushedAt, Seq) order the queue promises.
type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].pushedAt != h[j].pushedAt {
		return h[i].pushedAt < h[j].pushedAt
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// FuzzQueueVsHeap drives an interleaved Push/Pop/Cancel schedule against
// both the queue and the container/heap reference and fails on any
// divergence in lengths, pop order or cancel outcomes. The byte stream is
// consumed three bytes per operation: opcode, then two operands (firing
// time and scheduling instant for pushes — deliberately unordered, the
// queue is a plain priority set — or a handle selector for cancels).
func FuzzQueueVsHeap(f *testing.F) {
	// Pops interleaved with pushes.
	f.Add([]byte{0, 5, 0, 0, 3, 0, 2, 0, 0, 0, 1, 0, 2, 0, 0, 2, 0, 0})
	// Cancel of the last heap element (selector far past the live count
	// wraps onto the newest handle).
	f.Add([]byte{0, 1, 0, 0, 2, 0, 0, 3, 0, 3, 255, 255, 2, 0, 0})
	// Cancel of the head while later, larger elements must sift down.
	f.Add([]byte{0, 9, 0, 0, 1, 0, 0, 8, 0, 0, 7, 0, 3, 0, 1, 2, 0, 0, 2, 0, 0})
	// Double cancel and cancel-after-pop: both must agree on "false".
	f.Add([]byte{0, 4, 0, 3, 0, 0, 3, 0, 0, 0, 2, 0, 2, 0, 0, 3, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		var (
			q       Queue
			ref     refHeap
			handles []*Event    // every event ever pushed, in push order
			refs    []*refEvent // the reference twin of each handle
			seq     uint64
		)
		for len(data) >= 3 {
			op, a, b := data[0], data[1], data[2]
			data = data[3:]
			switch op % 4 {
			case 0, 1: // push — weighted so schedules actually grow
				at := simtime.Time(a % 64)
				pushedAt := simtime.Time(b % 16) // coarse, to force At+PushedAt ties
				r := &refEvent{at: at, pushedAt: pushedAt, seq: seq}
				seq++
				handles = append(handles, q.Push(at, pushedAt, func() {}))
				heap.Push(&ref, r)
				refs = append(refs, r)
			case 2: // pop
				got := q.Pop()
				if len(ref) == 0 {
					if got != nil {
						t.Fatalf("pop: queue returned (at=%v seq=%d), reference empty", got.At, got.Seq)
					}
					continue
				}
				want := heap.Pop(&ref).(*refEvent)
				if got == nil {
					t.Fatalf("pop: queue empty, reference has (at=%v seq=%d)", want.at, want.seq)
				}
				if got.At != want.at || got.Seq != want.seq {
					t.Fatalf("pop: queue (at=%v seq=%d), reference (at=%v seq=%d)",
						got.At, got.Seq, want.at, want.seq)
				}
				if !got.Fired() || got.Cancelled() {
					t.Fatalf("popped event: Fired=%v Cancelled=%v, want true/false",
						got.Fired(), got.Cancelled())
				}
			case 3: // cancel an arbitrary past handle (possibly already gone)
				if len(handles) == 0 {
					if q.Cancel(nil) {
						t.Fatal("Cancel(nil) returned true")
					}
					continue
				}
				i := (int(a)<<8 | int(b)) % len(handles)
				e, r := handles[i], refs[i]
				got := q.Cancel(e)
				want := r.index >= 0
				if want {
					heap.Remove(&ref, r.index)
					r.index = -1
				}
				if got != want {
					t.Fatalf("cancel handle %d: queue=%v, reference=%v", i, got, want)
				}
				if got && !e.Cancelled() {
					t.Fatal("successful Cancel left Cancelled() false")
				}
			}
			if q.Len() != len(ref) {
				t.Fatalf("len: queue=%d, reference=%d", q.Len(), len(ref))
			}
		}
		// Drain both; the tails must agree element for element.
		for {
			got := q.Pop()
			if len(ref) == 0 {
				if got != nil {
					t.Fatalf("drain: queue returned (at=%v seq=%d), reference empty", got.At, got.Seq)
				}
				return
			}
			want := heap.Pop(&ref).(*refEvent)
			if got == nil || got.At != want.at || got.Seq != want.seq {
				t.Fatalf("drain: queue %v, reference (at=%v seq=%d)", got, want.at, want.seq)
			}
		}
	})
}
