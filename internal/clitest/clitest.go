// Package clitest smoke-tests this module's binaries: it builds the
// command in the calling test's package directory once, runs it with a tiny
// configuration, and asserts on the exit code and output. Every package
// under cmd/ and examples/ carries a main_test.go built on these helpers,
// so `go test ./...` exercises each binary end to end.
//
// The binary is executed directly (not via `go run`, which collapses every
// child failure to exit status 1), so the repository's 0/1/2 exit-code
// convention is assertable.
package clitest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// timeout bounds one binary run; smoke configurations are tiny, so a hang
// is a bug, not slowness.
const timeout = 2 * time.Minute

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// binary builds the calling package's command once per test process and
// returns the executable's path. Binaries land under one deterministic
// per-package path in the system temp dir, overwritten on every run, so
// repeated test invocations never accumulate litter.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		cwd, err := os.Getwd()
		if err != nil {
			buildErr = err
			return
		}
		dir := filepath.Join(os.TempDir(), "ampom-smoke")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, filepath.Base(cwd))
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// run executes the package's binary with args and returns stdout, stderr
// and the exit code.
func run(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, binary(t), args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	if ctx.Err() != nil {
		t.Fatalf("binary timed out after %v\nstderr:\n%s", timeout, errb.String())
	}
	code = 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("running binary: %v\nstderr:\n%s", err, errb.String())
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// Run executes the package's binary expecting success, and returns stdout.
func Run(t *testing.T, args ...string) string {
	t.Helper()
	stdout, stderr, code := run(t, args...)
	if code != 0 {
		t.Fatalf("binary exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	return stdout
}

// RunExpect executes the package's binary expecting the given exit code,
// and returns stdout and stderr.
func RunExpect(t *testing.T, wantCode int, args ...string) (stdout, stderr string) {
	t.Helper()
	stdout, stderr, code := run(t, args...)
	if code != wantCode {
		t.Fatalf("binary exited %d, want %d\nstdout:\n%s\nstderr:\n%s", code, wantCode, stdout, stderr)
	}
	return stdout, stderr
}
