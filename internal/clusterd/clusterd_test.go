package clusterd

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ampom/internal/campaign"
	"ampom/internal/fabric"
	"ampom/internal/resultstore"
	"ampom/internal/scenario"
	"ampom/internal/simtime"
)

// newTestServer boots a service on an ephemeral port over a fresh store.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := resultstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, NewClient(hs.URL), hs
}

// smallSpec is a shrunk scenario that simulates in milliseconds.
func smallSpec(t *testing.T, name string) scenario.Spec {
	t.Helper()
	s := scenario.Spec{
		Name:            name,
		Nodes:           4,
		Procs:           8,
		MeanCompute:     4 * simtime.Second,
		MeanFootprintMB: 32,
	}.Canonical()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClusterdSmoke is the CI acceptance gate (make clusterd-smoke): boot
// the daemon on an ephemeral port, submit the 64-node hpc-farm preset
// twice, and assert that the second submission is served without
// re-simulation, that a fresh daemon sharing the store serves it as a
// store hit, and that the daemon's result bytes are byte-identical to
// what the batch path (`ampom-cluster -o report.json`, i.e. the campaign
// engine at the default seed) produces for the same spec.
func TestClusterdSmoke(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, c, _ := newTestServer(t, Config{Store: store})
	spec, err := scenario.Preset("hpc-farm")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	st1, err := c.Submit(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Key == "" || !resultstore.ValidKey(st1.Key) {
		t.Fatalf("submit returned malformed key %q", st1.Key)
	}
	done, err := c.Wait(ctx, st1.Key)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("job finished %s (%s), want done", done.Status, done.Error)
	}

	// Second submission of the identical spec: same key, already done, and
	// no second simulation ran.
	st2, err := c.Submit(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Key != st1.Key {
		t.Fatalf("identical specs got distinct keys %s / %s", st1.Key, st2.Key)
	}
	if st2.Status != StatusDone {
		t.Fatalf("resubmission status %s, want done", st2.Status)
	}
	if s.eng.Executed() != 1 {
		t.Fatalf("two submissions executed %d simulations, want 1", s.eng.Executed())
	}

	// The daemon's JSON result is byte-identical to the batch path: the
	// campaign engine at the shared default seed, encoded by Report.JSON —
	// exactly the bytes `ampom-cluster -o report.json` writes.
	gotJSON, err := c.Result(ctx, st1.Key, "json")
	if err != nil {
		t.Fatal(err)
	}
	batch := campaign.New(campaign.Options{})
	rep, err := batch.RunScenario(campaign.ScenarioJob{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("daemon result bytes differ from the batch CLI encoding")
	}
	gotCSV, err := c.Result(ctx, st1.Key, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != scenario.ReportsCSV([]*scenario.Report{rep}) {
		t.Fatal("daemon CSV differs from the batch CSV encoding")
	}

	// A fresh daemon lifetime over the same store: the submission is a
	// store hit (cached, no simulation), observable through /v1/stats.
	s2, c2, _ := newTestServer(t, Config{Store: store})
	hitsBefore := store.Stats().Hits
	st3, err := c2.Submit(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Key != st1.Key || st3.Status != StatusDone || !st3.Cached {
		t.Fatalf("restart submission = %+v, want done+cached under the same key", st3)
	}
	if s2.eng.Executed() != 0 {
		t.Fatalf("restart daemon executed %d simulations, want 0", s2.eng.Executed())
	}
	stats, err := c2.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store.Hits <= hitsBefore {
		t.Fatalf("store hits %d not above %d — the dedup is not observable", stats.Store.Hits, hitsBefore)
	}
	if got, err := c2.Result(ctx, st1.Key, ""); err != nil || string(got) != string(wantJSON) {
		t.Fatalf("restart daemon result differs (err %v)", err)
	}
}

// TestShardsByteIdentity locks the acceptance property across execution
// strategies: a daemon running a two-tier spec sharded serves the same
// bytes as the sequential batch path.
func TestShardsByteIdentity(t *testing.T) {
	spec := scenario.Spec{
		Name:            "sharded",
		Nodes:           8,
		Procs:           16,
		MeanCompute:     4 * simtime.Second,
		MeanFootprintMB: 32,
		Fabric:          scenario.FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4},
	}.Canonical()
	_, c, _ := newTestServer(t, Config{DefaultShards: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.Key); err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(ctx, st.Key, "json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.RunShards(spec, campaign.DeriveSeed(42, campaign.ScenarioJob{Spec: spec}.Fingerprint()), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("sharded daemon run differs from the sequential batch run")
	}
}

// TestQuotaAdmission locks per-tenant admission control: with the worker
// slot held, a tenant can stack jobs only up to the quota, the 429 rings
// carry the quota headers, dedup costs nothing, and another tenant has
// its own budget.
func TestQuotaAdmission(t *testing.T) {
	s, c, hs := newTestServer(t, Config{Workers: 1, QuotaJobs: 2})
	// Occupy the single worker slot so admitted jobs stay queued.
	s.sem <- struct{}{}
	ctx := context.Background()

	a, err := c.Submit(ctx, smallSpec(t, "qa"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, smallSpec(t, "qb"), 0); err != nil {
		t.Fatal(err)
	}
	// Third distinct spec: over quota, rejected before any work is queued.
	_, err = c.Submit(ctx, smallSpec(t, "qc"), 0)
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("over-quota submit error %v, want 429", err)
	}
	// The raw response carries the quota headers.
	data, err := scenario.EncodeSpec(smallSpec(t, "qc"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("X-Quota-Limit") != "2" || resp.Header.Get("X-Quota-Used") != "2" {
		t.Fatalf("quota headers limit=%q used=%q, want 2/2",
			resp.Header.Get("X-Quota-Limit"), resp.Header.Get("X-Quota-Used"))
	}
	// Resubmitting a queued spec dedupes — no quota charge, no rejection.
	if st, err := c.Submit(ctx, smallSpec(t, "qa"), 0); err != nil || st.Key != a.Key {
		t.Fatalf("dedup submit: %+v, %v", st, err)
	}
	// Another tenant has an independent budget.
	other := NewClient(hs.URL)
	other.APIKey = "tenant-b"
	if _, err := other.Submit(ctx, smallSpec(t, "qc"), 0); err != nil {
		t.Fatalf("second tenant rejected: %v", err)
	}
	// Release the worker; everything queued drains, freeing the quota.
	<-s.sem
	for _, name := range []string{"qa", "qb", "qc"} {
		key := resultstore.Key(campaign.ScenarioJob{Spec: smallSpec(t, name)}.Fingerprint())
		if st, err := c.Wait(ctx, key); err != nil || st.Status != StatusDone {
			t.Fatalf("%s: %+v, %v", name, st, err)
		}
	}
	if _, err := c.Submit(ctx, smallSpec(t, "qd"), 0); err != nil {
		t.Fatalf("quota not released after drain: %v", err)
	}
}

// TestFailedEntryReplaced locks the error-caching satellite at the
// daemon level: a registry entry in the failed state does not dedupe a
// resubmission — the spec re-executes.
func TestFailedEntryReplaced(t *testing.T) {
	s, c, _ := newTestServer(t, Config{})
	spec := smallSpec(t, "retry")
	sj := campaign.ScenarioJob{Spec: spec}
	key := resultstore.Key(sj.Fingerprint())
	// Plant a failed entry under the spec's key, as a crashed run leaves.
	failed := newJob(key, sj.Fingerprint(), spec, 1, "anonymous", StatusQueued)
	failed.setStatus(StatusFailed, "synthetic failure")
	s.mu.Lock()
	s.jobs[key] = failed
	s.mu.Unlock()

	ctx := context.Background()
	st, err := c.Submit(ctx, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status == StatusFailed {
		t.Fatal("failed entry replayed instead of re-executing")
	}
	if st, err := c.Wait(ctx, st.Key); err != nil || st.Status != StatusDone {
		t.Fatalf("retry did not complete: %+v, %v", st, err)
	}
}

// TestEventsStream locks the NDJSON feed: replay plus live events carry
// per-policy progress and end at the terminal status, and a late
// subscriber receives the full replay.
func TestEventsStream(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	ctx := context.Background()
	st, err := c.Submit(ctx, smallSpec(t, "events"), 0)
	if err != nil {
		t.Fatal(err)
	}
	collect := func() (progress int, last Event, policies map[string]bool) {
		policies = make(map[string]bool)
		streamCtx, cancel := context.WithTimeout(ctx, time.Minute)
		defer cancel()
		err := c.Events(streamCtx, st.Key, func(ev Event) {
			last = ev
			if ev.Type == "progress" {
				progress++
				policies[ev.Policy] = true
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return progress, last, policies
	}
	progress, last, policies := collect()
	if progress == 0 {
		t.Fatal("no progress events on the live stream")
	}
	if last.Type != "status" || last.Status != StatusDone {
		t.Fatalf("stream ended on %+v, want the done status", last)
	}
	if !policies["AMPoM"] || !policies["no-migration"] {
		t.Fatalf("progress events name policies %v, want AMPoM and no-migration among them", policies)
	}
	// A subscriber arriving after completion replays the identical history.
	progress2, last2, _ := collect()
	if progress2 != progress || last2.Status != StatusDone {
		t.Fatalf("replay stream saw %d progress events ending %+v, want %d ending done",
			progress2, last2, progress)
	}
}

// TestDiffEndpoint locks server-side report comparison: a key against
// itself gates equal, different scenarios diverge, and the tolerance
// knobs arrive intact.
func TestDiffEndpoint(t *testing.T) {
	_, c, _ := newTestServer(t, Config{})
	ctx := context.Background()
	a, err := c.Submit(ctx, smallSpec(t, "diff-a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, smallSpec(t, "diff-b"), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{a.Key, b.Key} {
		if _, err := c.Wait(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	same, err := c.Diff(ctx, DiffRequest{A: a.Key, B: a.Key})
	if err != nil {
		t.Fatal(err)
	}
	if !same.Equal || len(same.Divergences) != 0 {
		t.Fatalf("self-diff not equal: %+v", same)
	}
	diff, err := c.Diff(ctx, DiffRequest{A: a.Key, B: b.Key})
	if err != nil {
		t.Fatal(err)
	}
	if diff.Equal || len(diff.Divergences) == 0 {
		t.Fatalf("distinct scenarios gate equal: %+v", diff)
	}
	summary, err := c.Diff(ctx, DiffRequest{A: a.Key, B: b.Key, Summary: true})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Equal || len(summary.Divergences) >= len(diff.Divergences) {
		t.Fatalf("summary mode did not collapse the output: %d vs %d lines",
			len(summary.Divergences), len(diff.Divergences))
	}
}

// TestDrain locks graceful shutdown: draining rejects new submissions
// with 503 while queued jobs finish, and Shutdown returns once they have.
func TestDrain(t *testing.T) {
	s, c, _ := newTestServer(t, Config{Workers: 1})
	s.sem <- struct{}{} // hold the worker so the job stays queued
	ctx := context.Background()
	st, err := c.Submit(ctx, smallSpec(t, "drain"), 0)
	if err != nil {
		t.Fatal(err)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		shutdownErr <- s.Shutdown(sctx)
	}()
	// Draining flips synchronously in Shutdown before it blocks on the
	// drain; poll briefly for the flag, then assert admission is closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never set draining")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = c.Submit(ctx, smallSpec(t, "drain-late"), 0)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit while draining: %v, want 503", err)
	}
	// Status reads still work mid-drain.
	if _, err := c.Status(ctx, st.Key); err != nil {
		t.Fatal(err)
	}
	<-s.sem // release the worker; the queued job runs to completion
	if err := <-shutdownErr; err != nil {
		t.Fatal(err)
	}
	done, err := c.Status(ctx, st.Key)
	if err != nil || done.Status != StatusDone {
		t.Fatalf("queued job after drain: %+v, %v — drain must finish admitted work", done, err)
	}
}

// TestRequestHygiene locks the error surface: malformed keys and specs
// are 400s, unknown keys 404, and an unfinished job's result is a 409.
func TestRequestHygiene(t *testing.T) {
	s, c, hs := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	for _, path := range []string{
		"/v1/jobs/../../etc/passwd",
		"/v1/jobs/short",
		"/v1/jobs/" + strings.Repeat("Z", 64),
	} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want a 4xx rejection", path, resp.StatusCode)
		}
	}
	if _, err := c.Status(ctx, strings.Repeat("a", 64)); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown key status: %v, want 404", err)
	}
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(`{"version":1,"nodez":4}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d, want 400", resp.StatusCode)
	}

	s.sem <- struct{}{} // keep the job queued
	st, err := c.Submit(ctx, smallSpec(t, "hygiene"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, st.Key, "json"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("result of queued job: %v, want 409", err)
	}
	<-s.sem
	if _, err := c.Wait(ctx, st.Key); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, st.Key, "xml"); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("unknown format: %v, want 400", err)
	}
}
