package clusterd

import "ampom/internal/resultstore"

// The job lifecycle states a submission moves through. A job enters the
// registry as StatusQueued (or directly as StatusDone when the result
// store already holds its report), becomes StatusRunning when a worker
// picks it up, and terminates as StatusDone or StatusFailed. A failed
// job's status stays observable, but a resubmission of the same spec
// replaces it and re-executes — like the engine's in-memory cache and
// the result store, the daemon never treats an error as a cached result.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// JobStatus is the wire shape of one job's state — the response of
// POST /v1/jobs and GET /v1/jobs/{key}.
type JobStatus struct {
	// Key is the job's content-addressed handle: the result-store cell key
	// of the submitted spec's fingerprint. Identical submissions share it.
	Key string `json:"key"`
	// Scenario is the submitted spec's name, echoed for readability.
	Scenario string `json:"scenario,omitempty"`
	// Status is one of the Status* states.
	Status string `json:"status"`
	// Cached reports that the result was served from the persistent store
	// without simulating — either at submit time or after a daemon restart.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure message of a StatusFailed job.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the status is an end state.
func (s JobStatus) Terminal() bool { return s.Status == StatusDone || s.Status == StatusFailed }

// Event is one line of a job's NDJSON event stream (GET
// /v1/jobs/{key}/events): either a lifecycle transition ("status") or a
// per-policy progress sample ("progress") forwarded from the campaign
// engine.
type Event struct {
	Type string `json:"type"` // "status" or "progress"
	// Status fields ("status" events).
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Progress fields ("progress" events): Policy just finished, Done of
	// Total policy simulations complete.
	Policy string `json:"policy,omitempty"`
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
}

// DiffRequest is the body of POST /v1/diff: two job handles to compare,
// with the same tolerance knobs as `ampom-cluster -diff`.
type DiffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
	// Eps maps a float column to the relative epsilon within which it still
	// gates as equal; the "" key is the default for unlisted float columns.
	// Counts always compare exactly.
	Eps map[string]float64 `json:"eps,omitempty"`
	// Summary collapses the output to one line per diverging column.
	Summary bool `json:"summary,omitempty"`
}

// DiffResponse reports a comparison: Equal means no divergence under the
// requested tolerances.
type DiffResponse struct {
	Equal       bool     `json:"equal"`
	Divergences []string `json:"divergences,omitempty"`
}

// Stats is the response of GET /v1/stats: the result store's counters
// (hits observable by clients — the resubmission acceptance criterion),
// the registry census by status, and the engine's request/execution
// counts.
type Stats struct {
	Store    resultstore.Stats `json:"store"`
	Jobs     map[string]int    `json:"jobs"`
	Executed int               `json:"executed"`
	Requests int               `json:"requests"`
	Draining bool              `json:"draining,omitempty"`
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}
