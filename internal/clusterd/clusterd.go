// Package clusterd is the long-lived campaign service: an HTTP daemon
// that accepts cluster-scenario specs, executes them through the campaign
// engine's bounded worker pool, and persists every report in a
// content-addressed result store shared with the batch CLIs.
//
// The service inherits the engine's two load-bearing properties. First,
// determinism: a job's report is a pure function of (spec, base seed), so
// the daemon's response bytes are identical to what `ampom-cluster -o`
// writes for the same spec — at any worker or shard count. Second,
// content addressing: the job handle is the SHA-256 of the spec's
// canonical fingerprint, so identical submissions — concurrent or years
// apart — share one cell. A resubmission is served from the in-memory
// single-flight cache or the on-disk store without re-simulating, and the
// store's hit counter (GET /v1/stats) makes the dedup observable.
//
// Admission control is per tenant (the X-API-Key header): each tenant may
// have a bounded number of jobs queued or running, and an over-limit
// submission is rejected with 429 before any work is queued. Draining
// (Shutdown) stops admission with 503 while running jobs finish.
package clusterd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"ampom/internal/campaign"
	"ampom/internal/resultstore"
	"ampom/internal/scenario"
)

// DefaultQuota is the per-tenant cap on jobs queued or running at once
// when Config.QuotaJobs is zero.
const DefaultQuota = 16

// maxSpecBytes bounds a submitted spec document; canonical specs are a
// few kilobytes, so the limit only exists to shed garbage.
const maxSpecBytes = 1 << 20

// Config configures a Server.
type Config struct {
	// Store is the persistent result store; required. The daemon shares it
	// with batch CLIs pointed at the same directory.
	Store *resultstore.Store
	// Workers bounds the number of concurrently executing jobs: 0 means
	// GOMAXPROCS.
	Workers int
	// BaseSeed is the campaign seed job seeds derive from; 0 means 42 —
	// the batch CLIs' default, which is what makes daemon and CLI bytes
	// comparable out of the box.
	BaseSeed uint64
	// QuotaJobs caps each tenant's queued-plus-running jobs: 0 means
	// DefaultQuota, negative disables the quota (the repository's
	// negative-disables convention).
	QuotaJobs int
	// DefaultShards is the event-engine shard count for submissions that
	// don't pass ?shards=N; 0 means 1 (sequential). Sharding is an
	// execution strategy: every value renders byte-identical reports.
	DefaultShards int
}

// Server is the campaign service. Create with New, mount via Handler, and
// stop with Shutdown.
type Server struct {
	cfg   Config
	eng   *campaign.Engine
	mux   *http.ServeMux
	sem   chan struct{}
	quota int // 0 = unlimited

	mu       sync.Mutex
	jobs     map[string]*job // by result-store cell key
	active   map[string]int  // queued+running jobs per tenant
	draining bool
	wg       sync.WaitGroup // one count per admitted job
}

// New returns a Server for the given configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("clusterd: config needs a result store")
	}
	if cfg.DefaultShards < 0 {
		return nil, fmt.Errorf("clusterd: negative default shard count %d", cfg.DefaultShards)
	}
	if cfg.DefaultShards == 0 {
		cfg.DefaultShards = 1
	}
	s := &Server{
		cfg:    cfg,
		jobs:   make(map[string]*job),
		active: make(map[string]int),
	}
	switch {
	case cfg.QuotaJobs == 0:
		s.quota = DefaultQuota
	case cfg.QuotaJobs > 0:
		s.quota = cfg.QuotaJobs
	}
	s.eng = campaign.New(campaign.Options{
		Workers:            cfg.Workers,
		BaseSeed:           cfg.BaseSeed,
		Store:              cfg.Store,
		OnScenarioProgress: s.onProgress,
	})
	s.sem = make(chan struct{}, s.eng.Workers())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{key}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{key}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: admission stops immediately (submissions
// get 503), jobs already queued or running finish, and the method returns
// once the last one has — or with ctx's error if the deadline lands
// first. Reports are durable the moment each job completes (the engine
// persists through the store's atomic writes), so there is no separate
// flush step.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("clusterd: drain: %w", ctx.Err())
	}
}

// tenantOf resolves a request's tenant from the X-API-Key header; absent
// means the shared anonymous tenant.
func tenantOf(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	return "anonymous"
}

// onProgress routes an engine progress sample to its job's event stream.
func (s *Server) onProgress(p campaign.ScenarioProgress) {
	s.mu.Lock()
	j := s.jobs[resultstore.Key(p.Fingerprint)]
	s.mu.Unlock()
	if j != nil {
		j.publish(Event{Type: "progress", Policy: p.Policy, Done: p.Done, Total: p.Total})
	}
}

// writeJSON renders one response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// httpError renders the uniform JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit admits one job: decode the spec, dedupe against the
// registry and the store, gate the tenant's quota, then queue. The
// response is the job's status — 200 when the result already exists or
// the job is already known, 202 when newly queued.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := scenario.DecodeSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	shards := s.cfg.DefaultShards
	if q := r.URL.Query().Get("shards"); q != "" {
		shards, err = strconv.Atoi(q)
		if err != nil || shards < 1 {
			httpError(w, http.StatusBadRequest, "shards=%s: want a positive shard count", q)
			return
		}
	}
	sj := campaign.ScenarioJob{Spec: spec, Shards: shards}
	fp := sj.Fingerprint()
	key := resultstore.Key(fp)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining: no new jobs admitted")
		return
	}
	if j, ok := s.jobs[key]; ok && j.snapshot().Status != StatusFailed {
		// Same fingerprint already queued, running or done: the submission
		// dedupes onto the existing job and costs no quota. A failed entry
		// falls through instead — errors are never cached, so resubmitting
		// a failed spec re-executes it.
		s.quotaHeaders(w, tenant)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	if _, ok, _ := s.cfg.Store.Get(fp); ok {
		// The store already holds this fingerprint's report — perhaps from
		// a batch CLI run, perhaps from a previous daemon lifetime. Serve
		// it as a completed job without simulating.
		j := newJob(key, fp, spec, shards, tenant, StatusQueued)
		j.cached = true
		s.jobs[key] = j
		s.quotaHeaders(w, tenant)
		s.mu.Unlock()
		j.setStatus(StatusDone, "")
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	if s.quota > 0 && s.active[tenant] >= s.quota {
		used := s.active[tenant]
		s.mu.Unlock()
		w.Header().Set("X-Quota-Limit", strconv.Itoa(s.quota))
		w.Header().Set("X-Quota-Used", strconv.Itoa(used))
		httpError(w, http.StatusTooManyRequests,
			"tenant quota exhausted: %d of %d job(s) active", used, s.quota)
		return
	}
	j := newJob(key, fp, spec, shards, tenant, StatusQueued)
	s.jobs[key] = j
	s.active[tenant]++
	s.wg.Add(1)
	s.quotaHeaders(w, tenant)
	s.mu.Unlock()

	go s.runJob(j)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// quotaHeaders attaches the tenant's admission headers; the caller holds
// s.mu.
func (s *Server) quotaHeaders(w http.ResponseWriter, tenant string) {
	if s.quota > 0 {
		w.Header().Set("X-Quota-Limit", strconv.Itoa(s.quota))
		w.Header().Set("X-Quota-Used", strconv.Itoa(s.active[tenant]))
	}
}

// runJob executes one admitted job through the bounded worker pool.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	j.setStatus(StatusRunning, "")
	_, err := s.eng.RunScenario(campaign.ScenarioJob{Spec: j.spec, Shards: j.shards})

	s.mu.Lock()
	s.active[j.tenant]--
	if s.active[j.tenant] <= 0 {
		delete(s.active, j.tenant)
	}
	s.mu.Unlock()

	if err != nil {
		j.setStatus(StatusFailed, err.Error())
		return
	}
	j.setStatus(StatusDone, "")
}

// lookup resolves a path key to its registry entry, falling back to the
// persistent store for results that outlived the process that computed
// them (a previous daemon lifetime, or a batch CLI sharing the store).
// The fallback synthesizes a done-and-cached entry without registering
// it.
func (s *Server) lookup(key string) (*job, JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[key]
	s.mu.Unlock()
	if ok {
		return j, j.snapshot(), true
	}
	if _, found, _ := s.cfg.Store.GetKey(key); found {
		return nil, JobStatus{Key: key, Status: StatusDone, Cached: true}, true
	}
	return nil, JobStatus{}, false
}

// keyParam validates the {key} path parameter before it reaches the
// registry or the filesystem.
func keyParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !resultstore.ValidKey(key) {
		httpError(w, http.StatusBadRequest, "malformed job key %q", key)
		return "", false
	}
	return key, true
}

// handleStatus reports one job's state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	key, ok := keyParam(w, r)
	if !ok {
		return
	}
	_, st, found := s.lookup(key)
	if !found {
		httpError(w, http.StatusNotFound, "unknown job %s", key)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult serves a completed job's report. JSON responses are the
// stored bytes verbatim — the exact bytes `ampom-cluster -o report.json`
// writes for the same spec — so byte-identity between service and batch
// output is structural, not a re-encoding coincidence. ?format=csv
// re-encodes through the same CSV encoder the CLI uses.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, ok := keyParam(w, r)
	if !ok {
		return
	}
	_, st, found := s.lookup(key)
	if !found {
		httpError(w, http.StatusNotFound, "unknown job %s", key)
		return
	}
	switch st.Status {
	case StatusDone:
	case StatusFailed:
		httpError(w, http.StatusConflict, "job %s failed: %s", key, st.Error)
		return
	default:
		httpError(w, http.StatusConflict, "job %s is %s; result not ready", key, st.Status)
		return
	}
	data, found, err := s.cfg.Store.GetKey(key)
	if err != nil || !found {
		// A corrupt or missing cell behind a done job: the report is gone;
		// resubmitting recomputes and heals the cell.
		httpError(w, http.StatusNotFound, "result for %s not available; resubmit to recompute", key)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "csv":
		reps, err := scenario.DecodeReports(data)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "decoding stored report: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		io.WriteString(w, scenario.ReportsCSV(reps))
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or csv)", format)
	}
}

// handleEvents streams a job's progress as NDJSON: the replay buffer
// first, then live events until the job terminates or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	key, ok := keyParam(w, r)
	if !ok {
		return
	}
	j, st, found := s.lookup(key)
	if !found {
		httpError(w, http.StatusNotFound, "unknown job %s", key)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev Event) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if j == nil {
		// Store-only result (previous daemon lifetime): the whole history
		// collapses to its terminal state.
		emit(Event{Type: "status", Status: st.Status})
		return
	}
	replay, ch := j.subscribe()
	defer j.unsubscribe(ch)
	for _, ev := range replay {
		emit(ev)
	}
	for {
		select {
		case ev := <-ch:
			emit(ev)
		case <-r.Context().Done():
			return
		case <-j.done:
			// Drain events raced ahead of the close, then finish.
			for {
				select {
				case ev := <-ch:
					emit(ev)
				default:
					return
				}
			}
		}
	}
}

// handleDiff compares two completed jobs' reports with the same
// field-by-field gate as `ampom-cluster -diff`.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading diff request: %v", err)
		return
	}
	var req DiffRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding diff request: %v", err)
		return
	}
	load := func(key string) ([]byte, bool) {
		if !resultstore.ValidKey(key) {
			httpError(w, http.StatusBadRequest, "malformed job key %q", key)
			return nil, false
		}
		_, st, found := s.lookup(key)
		if !found {
			httpError(w, http.StatusNotFound, "unknown job %s", key)
			return nil, false
		}
		if st.Status != StatusDone {
			httpError(w, http.StatusConflict, "job %s is %s; nothing to diff", key, st.Status)
			return nil, false
		}
		data, found, err := s.cfg.Store.GetKey(key)
		if err != nil || !found {
			httpError(w, http.StatusNotFound, "result for %s not available", key)
			return nil, false
		}
		return data, true
	}
	a, ok := load(req.A)
	if !ok {
		return
	}
	b, ok := load(req.B)
	if !ok {
		return
	}
	diffs, err := scenario.DiffReportsDataOpts(a, b, scenario.DiffOptions{
		RelEps:  req.Eps,
		Summary: req.Summary,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, DiffResponse{Equal: len(diffs) == 0, Divergences: diffs})
}

// handleStats reports the store counters and registry census.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make(map[string]int)
	for _, j := range s.jobs {
		jobs[j.snapshot().Status]++
	}
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Stats{
		Store:    s.cfg.Store.Stats(),
		Jobs:     jobs,
		Executed: s.eng.Executed(),
		Requests: s.eng.Requests(),
		Draining: draining,
	})
}
