package clusterd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"ampom/internal/scenario"
)

// Client speaks the service's HTTP API — the engine behind the batch
// CLI's -server mode. The zero HTTPClient uses http.DefaultClient.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8091".
	BaseURL string
	// APIKey, when set, identifies the tenant (the X-API-Key header).
	APIKey string
	// HTTPClient overrides the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// PollInterval paces Wait's status polling; 0 means 100ms.
	PollInterval time.Duration
}

// NewClient returns a client for the service at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (skipped
// when out is nil). Non-2xx responses surface the server's error body.
func (c *Client) do(req *http.Request, out any) error {
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("clusterd: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("clusterd: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var e errorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("clusterd: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("clusterd: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("clusterd: decoding response: %w", err)
	}
	return nil
}

// Submit posts a spec for execution and returns the job's handle and
// admission status. Identical specs return the same key; a spec whose
// report the service already holds returns status "done" immediately.
func (c *Client) Submit(ctx context.Context, spec scenario.Spec, shards int) (JobStatus, error) {
	data, err := scenario.EncodeSpec(spec)
	if err != nil {
		return JobStatus{}, err
	}
	url := c.BaseURL + "/v1/jobs"
	if shards > 1 {
		url += "?shards=" + strconv.Itoa(shards)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return JobStatus{}, fmt.Errorf("clusterd: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	var st JobStatus
	if err := c.do(req, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Status fetches one job's current state.
func (c *Client) Status(ctx context.Context, key string) (JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+key, nil)
	if err != nil {
		return JobStatus{}, fmt.Errorf("clusterd: %w", err)
	}
	var st JobStatus
	if err := c.do(req, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Wait polls until the job reaches a terminal state (returned even when
// it is StatusFailed — the caller reads .Error) or ctx ends.
func (c *Client) Wait(ctx context.Context, key string) (JobStatus, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		st, err := c.Status(ctx, key)
		if err != nil {
			return JobStatus{}, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("clusterd: waiting for %s: %w", key, ctx.Err())
		case <-time.After(interval):
		}
	}
}

// Result fetches a completed job's report. format is "json" (the stored
// bytes verbatim, identical to the batch CLI's -o output) or "csv".
func (c *Client) Result(ctx context.Context, key, format string) ([]byte, error) {
	url := c.BaseURL + "/v1/jobs/" + key + "/result"
	if format != "" && format != "json" {
		url += "?format=" + format
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("clusterd: %w", err)
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("clusterd: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("clusterd: reading result: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("clusterd: %s: %s", resp.Status, e.Error)
		}
		return nil, fmt.Errorf("clusterd: %s", resp.Status)
	}
	return body, nil
}

// Events streams a job's NDJSON event feed, invoking fn per event until
// the stream ends (job terminal) or ctx is cancelled.
func (c *Client) Events(ctx context.Context, key string, fn func(Event)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+key+"/events", nil)
	if err != nil {
		return fmt.Errorf("clusterd: %w", err)
	}
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("clusterd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		var e errorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("clusterd: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("clusterd: %s", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return nil
			}
			if ctx.Err() != nil {
				return fmt.Errorf("clusterd: event stream: %w", ctx.Err())
			}
			return fmt.Errorf("clusterd: event stream: %w", err)
		}
		fn(ev)
	}
}

// Diff compares two completed jobs server-side.
func (c *Client) Diff(ctx context.Context, dr DiffRequest) (DiffResponse, error) {
	data, err := json.Marshal(dr)
	if err != nil {
		return DiffResponse{}, fmt.Errorf("clusterd: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/diff", bytes.NewReader(data))
	if err != nil {
		return DiffResponse{}, fmt.Errorf("clusterd: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	var out DiffResponse
	if err := c.do(req, &out); err != nil {
		return DiffResponse{}, err
	}
	return out, nil
}

// ServerStats fetches the service's counters.
func (c *Client) ServerStats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return Stats{}, fmt.Errorf("clusterd: %w", err)
	}
	var out Stats
	if err := c.do(req, &out); err != nil {
		return Stats{}, err
	}
	return out, nil
}
