package clusterd

import (
	"sync"

	"ampom/internal/scenario"
)

// job is one registry entry: the submitted spec, its lifecycle state, and
// the event stream subscribers follow. The registry key is the spec
// fingerprint's result-store cell key, so the in-memory registry, the
// engine's single-flight cache and the on-disk store all agree about
// which submissions are "the same job".
type job struct {
	key         string
	fingerprint string
	spec        scenario.Spec
	shards      int
	tenant      string

	mu     sync.Mutex
	status string
	cached bool
	errMsg string
	// events is the replay buffer: a subscriber arriving mid-run first
	// receives every event so far, then the live tail — no gap, no
	// duplicate, because subscribe snapshots and registers under one lock.
	events []Event
	subs   map[chan Event]struct{}
	// done closes on the terminal transition; the terminal event is
	// published before done closes, so a drained subscriber channel plus a
	// closed done means the stream is complete.
	done chan struct{}
}

// subEventBuffer bounds one subscriber's channel. A job emits one event
// per policy plus a handful of lifecycle transitions, so a slow reader
// would need to ignore its socket entirely to overflow; overflowing
// events are dropped for that subscriber rather than blocking the engine.
const subEventBuffer = 64

func newJob(key, fingerprint string, spec scenario.Spec, shards int, tenant, status string) *job {
	return &job{
		key:         key,
		fingerprint: fingerprint,
		spec:        spec,
		shards:      shards,
		tenant:      tenant,
		status:      status,
		subs:        make(map[chan Event]struct{}),
		done:        make(chan struct{}),
	}
}

// snapshot returns the job's wire status.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		Key:      j.key,
		Scenario: j.spec.Name,
		Status:   j.status,
		Cached:   j.cached,
		Error:    j.errMsg,
	}
}

// publish appends an event to the replay buffer and fans it out to every
// live subscriber.
func (j *job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // subscriber hopelessly behind; drop rather than block
		}
	}
}

// setStatus moves the job to a new lifecycle state and publishes the
// transition. Terminal states close done after the terminal event is
// buffered, so subscribers always observe the transition.
func (j *job) setStatus(status, errMsg string) {
	j.mu.Lock()
	j.status = status
	j.errMsg = errMsg
	ev := Event{Type: "status", Status: status, Error: errMsg}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	terminal := status == StatusDone || status == StatusFailed
	j.mu.Unlock()
	if terminal {
		close(j.done)
	}
}

// subscribe returns the replay buffer so far and a channel carrying every
// later event. Snapshot and registration happen under one lock, so the
// two views splice without gap or duplicate.
func (j *job) subscribe() (replay []Event, ch chan Event) {
	ch = make(chan Event, subEventBuffer)
	j.mu.Lock()
	replay = append([]Event(nil), j.events...)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return replay, ch
}

// unsubscribe detaches a subscriber channel.
func (j *job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}
