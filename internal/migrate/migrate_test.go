package migrate

import (
	"testing"

	"ampom/internal/hpcc"
	"ampom/internal/netmodel"
	"ampom/internal/simtime"
)

// smallWorkload builds a fast, reduced-scale kernel run.
func smallWorkload(t *testing.T, k hpcc.Kernel, div int64) *hpcc.Workload {
	t.Helper()
	w, err := hpcc.Build(hpcc.Scaled(hpcc.Largest(k), div), 11)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func runScheme(t *testing.T, w *hpcc.Workload, s Scheme) *Result {
	t.Helper()
	r, err := Run(RunConfig{Workload: w, Scheme: s, Seed: 5})
	if err != nil {
		t.Fatalf("%v/%v: %v", w.Name, s, err)
	}
	return r
}

func TestSchemeString(t *testing.T) {
	if OpenMosix.String() != "openMosix" || NoPrefetch.String() != "NoPrefetch" || AMPoM.String() != "AMPoM" {
		t.Fatal("scheme names wrong")
	}
	if len(Schemes()) != 3 {
		t.Fatal("scheme list wrong")
	}
}

func TestNilWorkloadRejected(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Fatal("nil workload accepted")
	}
}

func TestOpenMosixNeverFaults(t *testing.T) {
	w := smallWorkload(t, hpcc.STREAM, 32)
	r := runScheme(t, w, OpenMosix)
	if r.Faults != 0 || r.HardFaults != 0 {
		t.Fatalf("openMosix faulted: %+v", r)
	}
	// Freeze moves the whole dirty footprint.
	if r.BytesToDest < w.Layout.Bytes() {
		t.Fatalf("freeze moved %d bytes, want >= %d", r.BytesToDest, w.Layout.Bytes())
	}
}

func TestNoPrefetchFaultsOncePerPage(t *testing.T) {
	w := smallWorkload(t, hpcc.STREAM, 32)
	r := runScheme(t, w, NoPrefetch)
	// Every page except the three freeze pages demand-faults exactly once.
	wantMax := w.Layout.Pages() - 3
	if r.HardFaults > wantMax {
		t.Fatalf("hard faults %d > pages-3 %d", r.HardFaults, wantMax)
	}
	// The stream touches essentially the whole heap.
	if r.HardFaults < w.WorkingSetPages*95/100 {
		t.Fatalf("hard faults %d, want ≈ working set %d", r.HardFaults, w.WorkingSetPages)
	}
	if r.PrefetchPages != 0 {
		t.Fatal("NoPrefetch prefetched")
	}
}

func TestAMPoMPreventsFaults(t *testing.T) {
	for _, k := range []hpcc.Kernel{hpcc.DGEMM, hpcc.STREAM, hpcc.FFT} {
		w := smallWorkload(t, k, 32)
		np := runScheme(t, w, NoPrefetch)
		am := runScheme(t, w, AMPoM)
		prev := am.FaultPrevention(np.HardFaults)
		if prev < 0.85 {
			t.Errorf("%v: prevention = %.3f, want >= 0.85 (paper 97-99%%)", k, prev)
		}
	}
}

func TestAMPoMRandomAccessPreventsLess(t *testing.T) {
	w := smallWorkload(t, hpcc.RandomAccess, 32)
	np := runScheme(t, w, NoPrefetch)
	am := runScheme(t, w, AMPoM)
	prev := am.FaultPrevention(np.HardFaults)
	seq := runScheme(t, smallWorkload(t, hpcc.STREAM, 32), AMPoM)
	npSeq := runScheme(t, smallWorkload(t, hpcc.STREAM, 32), NoPrefetch)
	if prev >= seq.FaultPrevention(npSeq.HardFaults) {
		t.Fatalf("RandomAccess prevention %.3f not below STREAM's", prev)
	}
	if prev < 0.3 {
		t.Fatalf("RandomAccess prevention %.3f collapsed (read-ahead baseline broken?)", prev)
	}
}

func TestFreezeTimeOrdering(t *testing.T) {
	w := smallWorkload(t, hpcc.DGEMM, 16)
	om := runScheme(t, w, OpenMosix)
	np := runScheme(t, w, NoPrefetch)
	am := runScheme(t, w, AMPoM)
	// Figure 5's ordering: NoPrefetch < AMPoM << openMosix.
	if !(np.Freeze < am.Freeze && am.Freeze < om.Freeze) {
		t.Fatalf("freeze ordering violated: np=%v am=%v om=%v", np.Freeze, am.Freeze, om.Freeze)
	}
	if om.Freeze < 10*am.Freeze {
		t.Fatalf("openMosix freeze %v not ≫ AMPoM freeze %v", om.Freeze, am.Freeze)
	}
}

func TestTotalTimeOrdering(t *testing.T) {
	// Figure 6's shape: AMPoM ≈ openMosix, NoPrefetch clearly slower.
	for _, k := range hpcc.Kernels() {
		w := smallWorkload(t, k, 16)
		om := runScheme(t, w, OpenMosix)
		np := runScheme(t, w, NoPrefetch)
		am := runScheme(t, w, AMPoM)
		if np.Total <= om.Total {
			t.Errorf("%v: NoPrefetch %v not slower than openMosix %v", k, np.Total, om.Total)
		}
		ratio := am.Total.Seconds() / om.Total.Seconds()
		if ratio > 1.25 || ratio < 0.6 {
			t.Errorf("%v: AMPoM/openMosix = %.2f outside sane band", k, ratio)
		}
		if np.Total <= am.Total {
			t.Errorf("%v: NoPrefetch %v not slower than AMPoM %v", k, np.Total, am.Total)
		}
	}
}

// TestPaperAnchors pins the §5.2 calibration: a 575 MB DGEMM freezes in
// ≈53.9 s under openMosix, ≈0.6 s under AMPoM, ≈0.07 s under NoPrefetch.
func TestPaperAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale anchor run")
	}
	w, err := hpcc.Build(hpcc.Largest(hpcc.DGEMM), 1)
	if err != nil {
		t.Fatal(err)
	}
	within := func(got simtime.Duration, wantSec, tol float64) bool {
		return got.Seconds() > wantSec*(1-tol) && got.Seconds() < wantSec*(1+tol)
	}
	om := runScheme(t, w, OpenMosix)
	if !within(om.Freeze, 53.9, 0.05) {
		t.Errorf("openMosix freeze = %v, want ≈53.9s (paper §5.2)", om.Freeze)
	}
	np := runScheme(t, w, NoPrefetch)
	if !within(np.Freeze, 0.07, 0.15) {
		t.Errorf("NoPrefetch freeze = %v, want ≈0.07s (paper §5.2)", np.Freeze)
	}
	am := runScheme(t, w, AMPoM)
	if !within(am.Freeze, 0.6, 0.10) {
		t.Errorf("AMPoM freeze = %v, want ≈0.6s (paper §5.2)", am.Freeze)
	}
	// §5.4: AMPoM avoids ≈98 % of DGEMM page fault requests.
	if prev := am.FaultPrevention(np.HardFaults); prev < 0.95 {
		t.Errorf("prevention = %.3f, want >= 0.95 (paper 98%%)", prev)
	}
	// Abstract: 0-5 % overhead vs openMosix; our simulator overlaps a
	// little, so accept a modest win as well.
	ratio := am.Total.Seconds() / om.Total.Seconds()
	if ratio < 0.9 || ratio > 1.08 {
		t.Errorf("AMPoM/openMosix = %.3f, want ≈1.0", ratio)
	}
}

func TestFreezeGrowsLinearlyForOpenMosix(t *testing.T) {
	w1 := smallWorkload(t, hpcc.DGEMM, 16) // ~35MB
	w2 := smallWorkload(t, hpcc.DGEMM, 8)  // ~71MB
	f1 := runScheme(t, w1, OpenMosix).Freeze
	f2 := runScheme(t, w2, OpenMosix).Freeze
	ratio := f2.Seconds() / f1.Seconds()
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("freeze ratio for 2x size = %.2f, want ≈2 (linear growth, Figure 5)", ratio)
	}
}

func TestAMPoMFreezeDominatedByMPT(t *testing.T) {
	w := smallWorkload(t, hpcc.DGEMM, 8)
	am := runScheme(t, w, AMPoM)
	np := runScheme(t, w, NoPrefetch)
	mptOnly := am.Freeze - np.Freeze
	perPage := mptOnly.Seconds() / float64(w.Layout.Pages())
	// 6 bytes of transfer plus ~3 µs install per entry.
	if perPage < 2e-6 || perPage > 6e-6 {
		t.Fatalf("MPT cost per page = %.2g s, want ≈3.5 µs", perPage)
	}
}

func TestWorkingSetScenario(t *testing.T) {
	// §5.6: with a small working set inside a big allocation, AMPoM beats
	// openMosix outright.
	full, err := hpcc.BuildWorkingSet(72, 72, 3)
	if err != nil {
		t.Fatal(err)
	}
	small, err := hpcc.BuildWorkingSet(72, 18, 3)
	if err != nil {
		t.Fatal(err)
	}
	omSmall := runScheme(t, small, OpenMosix)
	amSmall := runScheme(t, small, AMPoM)
	if amSmall.Total.Seconds() > 0.6*omSmall.Total.Seconds() {
		t.Fatalf("small-ws AMPoM %v not ≪ openMosix %v", amSmall.Total, omSmall.Total)
	}
	omFull := runScheme(t, full, OpenMosix)
	amFull := runScheme(t, full, AMPoM)
	rSmall := amSmall.Total.Seconds() / omSmall.Total.Seconds()
	rFull := amFull.Total.Seconds() / omFull.Total.Seconds()
	if rFull <= rSmall {
		t.Fatalf("ratio must grow with working set: %.2f then %.2f", rSmall, rFull)
	}
}

func TestBroadbandDegradesNoPrefetchMost(t *testing.T) {
	w := smallWorkload(t, hpcc.RandomAccess, 32)
	bb := netmodel.Broadband()
	om := MustRun(RunConfig{Workload: w, Scheme: OpenMosix, Network: bb, Seed: 5})
	np := MustRun(RunConfig{Workload: w, Scheme: NoPrefetch, Network: bb, Seed: 5})
	am := MustRun(RunConfig{Workload: w, Scheme: AMPoM, Network: bb, Seed: 5})
	if !(om.Total < am.Total && am.Total < np.Total) {
		t.Fatalf("6Mb/s ordering wrong: om=%v am=%v np=%v (Figure 9)", om.Total, am.Total, np.Total)
	}
}

func TestAnalysisOverheadSmall(t *testing.T) {
	// Figure 11: AMPoM's analysis consumes < 0.6 % of execution time.
	for _, k := range hpcc.Kernels() {
		w := smallWorkload(t, k, 16)
		am := runScheme(t, w, AMPoM)
		if am.OverheadPct > 0.6 {
			t.Errorf("%v: overhead %.3f%%, want < 0.6%% (Figure 11)", k, am.OverheadPct)
		}
		if am.OverheadPct <= 0 {
			t.Errorf("%v: overhead not accounted", k)
		}
	}
}

func TestDeterminism(t *testing.T) {
	w := smallWorkload(t, hpcc.FFT, 32)
	a := runScheme(t, w, AMPoM)
	b := runScheme(t, w, AMPoM)
	if a.Total != b.Total || a.HardFaults != b.HardFaults || a.PrefetchPages != b.PrefetchPages {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesRandomAccessRun(t *testing.T) {
	e := hpcc.Scaled(hpcc.Largest(hpcc.RandomAccess), 32)
	w1, _ := hpcc.Build(e, 1)
	w2, _ := hpcc.Build(e, 2)
	a := runScheme(t, w1, AMPoM)
	b := runScheme(t, w2, AMPoM)
	if a.HardFaults == b.HardFaults && a.Total == b.Total {
		t.Fatal("different workload seeds produced identical runs")
	}
}

func TestSkipInit(t *testing.T) {
	w := smallWorkload(t, hpcc.STREAM, 32)
	r := MustRun(RunConfig{Workload: w, Scheme: OpenMosix, Seed: 5, SkipInit: true})
	if r.Init != 0 {
		t.Fatalf("init = %v with SkipInit", r.Init)
	}
	if r.Total != r.Freeze+r.Exec {
		t.Fatalf("total %v != freeze %v + exec %v", r.Total, r.Freeze, r.Exec)
	}
}

func TestResultAccounting(t *testing.T) {
	w := smallWorkload(t, hpcc.STREAM, 32)
	r := runScheme(t, w, AMPoM)
	if r.Faults != r.HardFaults+r.WaitFaults+r.SoftFaults {
		t.Fatalf("fault census inconsistent: %+v", r)
	}
	if r.Total != r.Init+r.Freeze+r.Exec {
		t.Fatalf("phase sum: total %v != %v+%v+%v", r.Total, r.Init, r.Freeze, r.Exec)
	}
	if r.PagesArrived != r.DemandPages+r.PrefetchPages {
		t.Fatalf("page conservation: arrived %d != demand %d + prefetch %d",
			r.PagesArrived, r.DemandPages, r.PrefetchPages)
	}
	// Every fetched page crosses the wire exactly once.
	if r.PagesArrived < w.WorkingSetPages*95/100 {
		t.Fatalf("arrived %d pages, want ≈ working set %d", r.PagesArrived, w.WorkingSetPages)
	}
	if r.Events == 0 {
		t.Fatal("event count missing")
	}
}

func TestBackgroundLoadSlowsRun(t *testing.T) {
	w := smallWorkload(t, hpcc.STREAM, 32)
	clean := MustRun(RunConfig{Workload: w, Scheme: AMPoM, Seed: 5})
	loaded := MustRun(RunConfig{Workload: w, Scheme: AMPoM, Seed: 5, BackgroundLoad: 0.5})
	if loaded.Total <= clean.Total {
		t.Fatalf("50%% background load did not slow the run: %v vs %v", loaded.Total, clean.Total)
	}
}

func TestFaultPreventionHelper(t *testing.T) {
	r := &Result{HardFaults: 20}
	if got := r.FaultPrevention(100); got != 0.8 {
		t.Fatalf("prevention = %v", got)
	}
	if got := r.FaultPrevention(0); got != 0 {
		t.Fatalf("prevention with zero baseline = %v", got)
	}
	r.HardFaults = 200
	if got := r.FaultPrevention(100); got != 0 {
		t.Fatalf("negative prevention not clamped: %v", got)
	}
}
