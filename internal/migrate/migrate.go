// Package migrate orchestrates whole migration experiments: it builds a
// two-node cluster (origin and destination joined by a modelled link),
// runs a workload's pre-migration phase, freezes and transfers the process
// under one of the paper's three schemes, then executes the post-migration
// reference stream with remote paging and (for AMPoM) adaptive
// prefetching, collecting every statistic the evaluation figures report.
//
// The three schemes (paper Figure 2):
//
//   - OpenMosix: all dirty pages transferred during the freeze; no remote
//     page faults afterwards.
//   - NoPrefetch: the FFA variant of §5.1 — only the three currently
//     accessed pages (code, data, stack) move at freeze time; every other
//     page is demand-fetched from the origin, one fault at a time.
//   - AMPoM: the three pages plus the master page table move at freeze
//     time; afterwards Algorithm 1 runs at every fault and prefetches the
//     dependent zone.
package migrate

import (
	"fmt"

	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/hpcc"
	"ampom/internal/infod"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/paging"
	"ampom/internal/sim"
	"ampom/internal/simtime"
	"ampom/internal/trace"
)

// Scheme selects the migration mechanism.
type Scheme uint8

// The schemes compared in the paper's evaluation, plus the two baselines
// its Figure 2 and related work describe.
const (
	// OpenMosix transfers every dirty page during the freeze (paper
	// Figure 2, top).
	OpenMosix Scheme = iota
	// NoPrefetch is the paper's FFA variant: three pages at freeze time,
	// then demand paging directly from the origin (§5.1).
	NoPrefetch
	// AMPoM is the paper's contribution: three pages plus the MPT at
	// freeze time, then adaptive prefetching (Figure 2, bottom).
	AMPoM
	// FFAFileServer is Roush & Campbell's original Freeze Free Algorithm
	// (Figure 2, middle): three pages at freeze time, the origin flushes
	// all dirty pages to a file server, and the migrant's faults are
	// served by the file server — gated until the flush lands.
	FFAFileServer
	// Precopy is the V-system baseline (related work §6): the address
	// space is pre-copied while the process keeps executing at the origin;
	// the freeze then retransmits only the pages dirtied during the
	// precopy. No remote faults afterwards.
	Precopy
)

// Schemes lists the paper's three evaluated schemes in its presentation
// order.
func Schemes() []Scheme { return []Scheme{AMPoM, OpenMosix, NoPrefetch} }

// AllSchemes additionally includes the FFA-with-file-server and precopy
// baselines used by the scheme ablation.
func AllSchemes() []Scheme {
	return []Scheme{AMPoM, OpenMosix, NoPrefetch, FFAFileServer, Precopy}
}

// String names the scheme as in the figures.
func (s Scheme) String() string {
	switch s {
	case OpenMosix:
		return "openMosix"
	case NoPrefetch:
		return "NoPrefetch"
	case AMPoM:
		return "AMPoM"
	case FFAFileServer:
		return "FFA-fileserver"
	case Precopy:
		return "Precopy"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// Calibration gathers the cost constants of the modelled kernels and
// protocol, calibrated against the paper's §5.2 anchors (575 MB DGEMM:
// 53.9 s openMosix, 0.6 s AMPoM, 0.07 s NoPrefetch freeze).
type Calibration struct {
	// MigrationBase is the fixed openMosix migration protocol cost
	// (negotiation, PCB capture/restore, socket setup).
	MigrationBase simtime.Duration
	// PageMsgOverhead is the per-page wire overhead during freeze-time bulk
	// transfer.
	PageMsgOverhead int64
	// MPTEntryCPU is the destination-side cost of installing one MPT entry
	// (AMPoM's freeze is dominated by this for large processes).
	MPTEntryCPU simtime.Duration

	Deputy paging.DeputyConfig
	Pager  paging.PagerConfig
	Cost   core.CostModel
	Infod  infod.Config
}

// DefaultCalibration returns the Gideon 300 calibration.
func DefaultCalibration() Calibration {
	return Calibration{
		MigrationBase:   65 * simtime.Millisecond,
		PageMsgOverhead: 64,
		MPTEntryCPU:     3 * simtime.Microsecond,
		Deputy:          paging.DefaultDeputyConfig(),
		Pager:           paging.DefaultPagerConfig(),
		Cost:            core.DefaultCostModel(),
		Infod:           infod.Config{},
	}
}

// RunConfig describes one experiment run.
type RunConfig struct {
	// Workload is the kernel run to execute.
	Workload *hpcc.Workload
	// Scheme is the migration mechanism.
	Scheme Scheme
	// Network is the link profile (FastEthernet by default).
	Network netmodel.Profile
	// AMPoM configures the prefetcher (AMPoM scheme only); zero value means
	// paper defaults.
	AMPoM core.Config
	// Calibration overrides cost constants; zero value means defaults.
	Calibration *Calibration
	// Seed drives all stochastic components.
	Seed uint64
	// BackgroundLoad is the fraction of link bandwidth consumed by
	// competing traffic.
	BackgroundLoad float64
	// SkipInit drops the pre-migration initialise phase from the timeline
	// (the migration then happens at t=0 with all pages already dirty).
	SkipInit bool
}

// Result carries everything the evaluation figures need from one run.
type Result struct {
	Workload string
	Kernel   hpcc.Kernel
	MemoryMB int64
	Scheme   Scheme
	Network  string

	// Phase timings.
	Init    simtime.Duration // pre-migration allocate+initialise phase
	Precopy simtime.Duration // pre-copy rounds while executing (Precopy only)
	Freeze  simtime.Duration // migration freeze time (Figure 5)
	Exec    simtime.Duration // resume → workload completion
	Total   simtime.Duration // Init + Precopy + Freeze + Exec (Figure 6)

	// Fault census.
	Faults     int64 // all faults (hard + wait + soft)
	HardFaults int64 // demand requests to the origin (Figure 7)
	WaitFaults int64 // stalled on an in-flight prefetch, no request
	SoftFaults int64 // satisfied by an arrived-but-uninstalled page

	// Request/transfer census.
	RequestsSent  int64
	PrefetchOnly  int64
	DemandPages   int64
	PrefetchPages int64
	PagesArrived  int64
	BytesToDest   int64 // bytes received by the migrant (freeze + paging)

	// Derived figure metrics.
	PrefetchPerRequest float64 // Figure 8
	OverheadPct        float64 // Figure 11: analysis time / exec time ×100

	// Diagnostics.
	StallTime    simtime.Duration
	AnalysisTime simtime.Duration
	MeanScore    float64
	MeanN        float64
	FinalRTTEst  simtime.Duration
	Events       uint64
}

// FaultPrevention returns the fraction of first-touch fetches that did not
// need a demand request, relative to a NoPrefetch baseline that faults once
// per fetched page (the §5.4 "prevented page fault requests" metric).
func (r *Result) FaultPrevention(baselineFaults int64) float64 {
	if baselineFaults <= 0 {
		return 0
	}
	p := 1 - float64(r.HardFaults)/float64(baselineFaults)
	if p < 0 {
		return 0
	}
	return p
}

// freezeDone is the control payload completing a freeze-time bulk transfer.
type freezeDone struct{ fn func() }

// Run executes one experiment and returns its result.
func Run(cfg RunConfig) (*Result, error) {
	w := cfg.Workload
	if w == nil {
		return nil, fmt.Errorf("migrate: nil workload")
	}
	cal := DefaultCalibration()
	if cfg.Calibration != nil {
		cal = *cfg.Calibration
	}
	net := cfg.Network
	if net.BandwidthBps == 0 {
		net = netmodel.FastEthernet()
	}

	eng := sim.New()
	origin := cluster.NewNode(eng, "origin", 1.0)
	dest := cluster.NewNode(eng, "dest", 1.0)
	link := netmodel.NewLink(eng, net, origin.NIC, dest.NIC)
	link.SetBackgroundLoad(cfg.BackgroundLoad)

	// Control handler for freeze-completion payloads, on both nodes.
	ctl := func(p any) bool {
		if f, ok := p.(freezeDone); ok {
			f.fn()
			return true
		}
		return false
	}
	origin.Handle(ctl)
	dest.Handle(ctl)

	pcb := cluster.NewPCB(1, w.Name, origin)
	as := memory.NewAddressSpace(w.Layout)

	res := &Result{
		Workload: w.Name,
		Kernel:   w.Entry.Kernel,
		MemoryMB: w.Entry.MemoryMB,
		Scheme:   cfg.Scheme,
		Network:  net.Name,
	}

	// --- Pre-migration phase ----------------------------------------------
	// The kernel allocates and initialises its memory at the origin; the
	// paper triggers migration right after. Initialisation dirties the
	// whole address space.
	initTime := w.InitCompute
	if cfg.SkipInit {
		initTime = 0
	}
	res.Init = initTime
	as.MarkAllDirty()

	var (
		exec       *executor
		destDaemon *infod.Daemon
		origDaemon *infod.Daemon
		pager      *paging.Pager
		deputy     *paging.Deputy
		resumeAt   simtime.Time
		execEndAt  simtime.Time
	)

	finish := func(end simtime.Time) {
		execEndAt = end
		pcb.State = cluster.ProcDone
		if destDaemon != nil {
			destDaemon.Stop()
		}
		if origDaemon != nil {
			origDaemon.Stop()
		}
	}

	// resume starts the migrant executing at the destination node.
	resume := func() {
		resumeAt = eng.Now()
		res.Freeze = resumeAt.Sub(simtime.Time(initTime + res.Precopy))
		pcb.State = cluster.ProcRunning
		pcb.Current = dest
		exec.start(finish)
	}

	// --- Pre-copy phase (Precopy scheme only) -----------------------------
	// The V-system baseline copies the address space while the process
	// keeps executing at the origin; pages dirtied during a round are
	// retransmitted in the next, and the final residue moves during the
	// freeze. The rounds consume the front of the reference stream — those
	// references execute at the origin and are not replayed at the
	// destination.
	var precopyStream *windowedStream
	var precopyResidueBytes int64
	if cfg.Scheme == Precopy {
		precopyStream = &windowedStream{src: w.Source(), node: origin}
		allBytes := w.Layout.Pages()*(memory.PageSize+cal.PageMsgOverhead) + cluster.RegisterBytes
		round := net.TransferTime(allBytes)
		res.BytesToDest += allBytes
		residue := int64(0)
		for i := 0; i < 3; i++ {
			res.Precopy += round
			dirtied, ended := precopyStream.consume(round)
			residue = dirtied
			if ended || dirtied == 0 {
				break
			}
			bytes := dirtied * (memory.PageSize + cal.PageMsgOverhead)
			next := net.TransferTime(bytes)
			if i == 2 || next >= round {
				break // not converging; stop-and-copy the rest
			}
			res.BytesToDest += bytes
			round = next
		}
		precopyResidueBytes = residue*(memory.PageSize+cal.PageMsgOverhead) + cluster.RegisterBytes
		res.BytesToDest += precopyResidueBytes
	}

	// --- Freeze and transfer, per scheme ----------------------------------
	migrationStart := simtime.Time(initTime + res.Precopy)
	var fsFlushDone func(simtime.Time) // set by the FFA wiring below
	eng.At(migrationStart, func() {
		pcb.State = cluster.ProcFrozen
		switch cfg.Scheme {
		case OpenMosix:
			// Ship every dirty page in one bulk stream; no deputy needed
			// for paging afterwards (openMosix still leaves a deputy for
			// syscalls, but it serves no pages).
			bytes := as.DirtyPages()*(memory.PageSize+cal.PageMsgOverhead) + cluster.RegisterBytes
			res.BytesToDest += bytes
			eng.Schedule(cal.MigrationBase, func() {
				link.Send(origin.NIC, netmodel.Message{Size: bytes, Payload: freezeDone{resume}})
			})

		case Precopy:
			// Only the residue dirtied during the last pre-copy round moves
			// during the freeze.
			eng.Schedule(cal.MigrationBase, func() {
				link.Send(origin.NIC, netmodel.Message{Size: precopyResidueBytes, Payload: freezeDone{resume}})
			})

		case NoPrefetch, AMPoM, FFAFileServer:
			bytes := 3*(memory.PageSize+cal.PageMsgOverhead) + cluster.RegisterBytes
			var mptInstall simtime.Duration
			if cfg.Scheme == AMPoM {
				bytes += w.Layout.Pages() * memory.PTEntrySize
				mptInstall = dest.Scale(cal.MPTEntryCPU * simtime.Duration(w.Layout.Pages()))
			}
			res.BytesToDest += bytes
			eng.Schedule(cal.MigrationBase, func() {
				link.Send(origin.NIC, netmodel.Message{Size: bytes, Payload: freezeDone{func() {
					eng.Schedule(mptInstall, resume)
				}}})
			})
		}
	})

	// --- Post-migration machinery ------------------------------------------
	switch cfg.Scheme {
	case OpenMosix:
		// All pages arrive during the freeze; the address space stays fully
		// resident and the executor never faults.
		exec = newExecutor(execConfig{
			node: dest, src: w.Source(), as: as, cal: cal,
		})

	case Precopy:
		// The precopy rounds already executed the stream's prefix at the
		// origin; the destination continues from there, fully resident.
		exec = newExecutor(execConfig{
			node: dest, src: precopyStream.rest(), as: as, cal: cal,
		})

	case FFAFileServer:
		// Three pages travel with the freeze; the origin flushes all dirty
		// pages to a file server, which serves the migrant's faults — but
		// only once the flush has landed (paper Figure 2, middle).
		fs := cluster.NewNode(eng, "fileserver", 1.0)
		fs.Handle(ctl)
		linkOF := netmodel.NewLink(eng, net, origin.NIC, fs.NIC)
		linkMF := netmodel.NewLink(eng, net, dest.NIC, fs.NIC)
		linkMF.SetBackgroundLoad(cfg.BackgroundLoad)

		tables := memory.NewTablePair(w.Layout.Pages())
		as.EvictAllToRemote()
		for _, p := range []memory.PageNum{
			w.Layout.Region(memory.RegionCode).Start,
			w.Layout.Region(memory.RegionHeap).Start,
			w.Layout.Region(memory.RegionStack).Start,
		} {
			as.SetState(p, memory.StateResident)
			if err := tables.TransferToMigrant(p); err != nil {
				return nil, fmt.Errorf("migrate: installing freeze page: %w", err)
			}
		}
		deputy = paging.NewDeputy(cal.Deputy, fs, linkMF, tables)
		deputy.SetAvailableAfter(simtime.Never)
		fsFlushDone = func(at simtime.Time) { deputy.SetAvailableAfter(at) }
		pager = paging.NewPager(cal.Pager, dest, linkMF, as)
		exec = newExecutor(execConfig{node: dest, src: w.Source(), as: as, cal: cal, pager: pager})

		// The flush leaves the origin in parallel with the freeze.
		flushBytes := as.CountInState(memory.StateRemote) * (memory.PageSize + cal.PageMsgOverhead)
		eng.At(migrationStart, func() {
			eng.Schedule(cal.MigrationBase, func() {
				linkOF.Send(origin.NIC, netmodel.Message{Size: flushBytes, Payload: freezeDone{func() {
					fsFlushDone(eng.Now())
				}}})
			})
		})

	case NoPrefetch, AMPoM:
		tables := memory.NewTablePair(w.Layout.Pages())
		as.EvictAllToRemote()
		// The three "currently accessed" pages travel with the freeze.
		for _, p := range []memory.PageNum{
			w.Layout.Region(memory.RegionCode).Start,
			w.Layout.Region(memory.RegionHeap).Start,
			w.Layout.Region(memory.RegionStack).Start,
		} {
			as.SetState(p, memory.StateResident)
			if err := tables.TransferToMigrant(p); err != nil {
				return nil, fmt.Errorf("migrate: installing freeze page: %w", err)
			}
		}
		deputy = paging.NewDeputy(cal.Deputy, origin, link, tables)
		pager = paging.NewPager(cal.Pager, dest, link, as)
		pcbDeputy := cluster.NewPCB(1, w.Name+"-deputy", origin)
		pcbDeputy.State = cluster.ProcDeputy

		ec := execConfig{node: dest, src: w.Source(), as: as, cal: cal, pager: pager}
		if cfg.Scheme == AMPoM {
			pre, err := core.New(cfg.AMPoM, w.Layout.Pages())
			if err != nil {
				return nil, err
			}
			destDaemon = infod.New(cal.Infod, dest, link, cfg.Seed^0xd41d)
			origDaemon = infod.New(cal.Infod, origin, link, cfg.Seed^0x8c1f)
			destDaemon.Start()
			origDaemon.Start()
			ec.pre = pre
			ec.est = destDaemon.Estimates
		}
		exec = newExecutor(ec)
		if destDaemon != nil {
			destDaemon.SetCPUUtil(exec.Utilization)
		}
	}

	// --- Run to completion --------------------------------------------------
	eng.MaxEvents = 500_000_000
	eng.RunAll()
	if pcb.State != cluster.ProcDone {
		return nil, fmt.Errorf("migrate: %s/%s did not finish (t=%v, pending=%d)",
			w.Name, cfg.Scheme, eng.Now(), eng.Pending())
	}

	// --- Collect ------------------------------------------------------------
	res.Exec = execEndAt.Sub(resumeAt)
	res.Total = simtime.Duration(execEndAt)
	res.Faults = exec.faults
	res.HardFaults = exec.hardFaults
	res.WaitFaults = exec.waitFaults
	res.SoftFaults = exec.softFaults
	res.AnalysisTime = exec.analysisTime
	if exec.analyses > 0 {
		res.MeanScore = exec.scoreSum / float64(exec.analyses)
		res.MeanN = exec.nSum / float64(exec.analyses)
	}
	if res.Exec > 0 {
		res.OverheadPct = 100 * float64(res.AnalysisTime) / float64(res.Exec)
	}
	if pager != nil {
		st := pager.Stats
		res.RequestsSent = st.RequestsSent
		res.PrefetchOnly = st.PrefetchOnly
		res.DemandPages = st.DemandRequested
		res.PrefetchPages = st.PrefetchRequested
		res.PagesArrived = st.PagesArrived
		res.BytesToDest += st.BytesReceived
		res.StallTime = st.StallTime
		if res.HardFaults > 0 {
			res.PrefetchPerRequest = float64(st.PrefetchRequested) / float64(res.HardFaults)
		}
	}
	if destDaemon != nil {
		res.FinalRTTEst = destDaemon.RTT()
	}
	if deputy != nil && pager != nil {
		// Every page the deputy sent must have arrived at the migrant.
		if deputy.Stats.DemandServed+deputy.Stats.PrefetchServed != pager.Stats.PagesArrived {
			return nil, fmt.Errorf("migrate: page conservation violated: deputy sent %d+%d, migrant got %d",
				deputy.Stats.DemandServed, deputy.Stats.PrefetchServed, pager.Stats.PagesArrived)
		}
	}
	res.Events = eng.Processed
	return res, nil
}

// MustRun is Run panicking on error, for examples and benchmarks.
func MustRun(cfg RunConfig) *Result {
	r, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// windowedStream executes a reference stream in wall-clock windows (the
// pre-copy rounds): consume() runs exactly `budget` of compute, splitting a
// reference that spans the window boundary, and rest() yields whatever has
// not executed yet for the destination executor to continue with.
type windowedStream struct {
	src     trace.Source
	node    *cluster.Node
	pending trace.Ref // partially computed reference, Compute = remainder
	hasPend bool
	done    bool
}

// consume runs budget worth of compute and returns the distinct pages
// written in the window (the dirty set the next pre-copy round must
// retransmit) and whether the stream ended inside the window.
func (ws *windowedStream) consume(budget simtime.Duration) (dirtied int64, ended bool) {
	written := make(map[memory.PageNum]bool)
	var used simtime.Duration
	for used < budget {
		var ref trace.Ref
		if ws.hasPend {
			ref = ws.pending
			ws.hasPend = false
		} else {
			var ok bool
			ref, ok = ws.src.Next()
			if !ok {
				ws.done = true
				return int64(len(written)), true
			}
			ref.Compute = ws.node.Scale(ref.Compute)
		}
		if used+ref.Compute > budget {
			// The reference spans the window boundary: bank the remainder
			// (its page touch happens when the compute completes, in a
			// later window).
			ref.Compute -= budget - used
			ws.pending = ref
			ws.hasPend = true
			return int64(len(written)), false
		}
		used += ref.Compute
		if ref.Write {
			written[ref.Page] = true
		}
	}
	return int64(len(written)), false
}

// rest returns the unexecuted tail of the stream. References are already
// scaled to the origin node's CPU; the destination executor re-scales, so
// hand back reference-CPU durations by inverting the scale.
func (ws *windowedStream) rest() trace.Source {
	first := true
	return trace.FuncSource(func() (trace.Ref, bool) {
		if first {
			first = false
			if ws.hasPend {
				ref := ws.pending
				ref.Compute = simtime.Duration(float64(ref.Compute) * ws.node.CPUScale)
				return ref, true
			}
		}
		if ws.done {
			return trace.Ref{}, false
		}
		return ws.src.Next()
	})
}
