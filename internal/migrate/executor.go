package migrate

import (
	"fmt"

	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/memory"
	"ampom/internal/paging"
	"ampom/internal/simtime"
	"ampom/internal/trace"
)

// executor drives a migrated process's reference stream on the destination
// node as an event-driven state machine: it consumes references, advancing
// the virtual clock by their compute time, and enters the fault path
// whenever it touches a page that is not installed. Consecutive resident
// references are batched into a single scheduled compute interval, so the
// event count is proportional to faults, not references.
type executor struct {
	node *cluster.Node
	src  trace.Source
	as   *memory.AddressSpace
	cal  Calibration

	// Remote paging machinery; nil for openMosix (never faults).
	pager *paging.Pager
	// AMPoM; nil for NoPrefetch.
	pre *core.Prefetcher
	est func() core.Estimates

	// Utilisation sampling (the C array of §3.1).
	startAt        simtime.Time
	busy           simtime.Duration
	lastSampleAt   simtime.Time
	lastSampleBusy simtime.Duration
	util           float64

	// Census.
	faults       int64
	hardFaults   int64
	waitFaults   int64
	softFaults   int64
	analyses     int64
	analysisTime simtime.Duration
	scoreSum     float64
	nSum         float64

	done func(endAt simtime.Time)
}

type execConfig struct {
	node  *cluster.Node
	src   trace.Source
	as    *memory.AddressSpace
	cal   Calibration
	pager *paging.Pager
	pre   *core.Prefetcher
	est   func() core.Estimates
}

func newExecutor(c execConfig) *executor {
	return &executor{
		node:  c.node,
		src:   c.src,
		as:    c.as,
		cal:   c.cal,
		pager: c.pager,
		pre:   c.pre,
		est:   c.est,
		util:  1,
	}
}

// start begins execution at the current instant; done fires at completion.
func (e *executor) start(done func(endAt simtime.Time)) {
	e.done = done
	now := e.node.Eng.Now()
	e.startAt = now
	e.lastSampleAt = now
	e.step()
}

// step consumes references until the stream ends or a fault interrupts it,
// accumulating the compute time of the batch into one scheduled event.
func (e *executor) step() {
	var pending simtime.Duration
	for {
		ref, ok := e.src.Next()
		if !ok {
			e.busy += pending
			e.node.Eng.Schedule(pending, func() {
				e.done(e.node.Eng.Now())
			})
			return
		}
		pending += e.node.Scale(ref.Compute)
		if e.as.State(ref.Page) == memory.StateResident {
			continue
		}
		page := ref.Page
		e.busy += pending
		e.node.Eng.Schedule(pending, func() { e.fault(page) })
		return
	}
}

// Utilization returns the most recent CPU utilisation sample.
func (e *executor) Utilization() float64 { return e.util }

// utilTau is the smoothing horizon of the utilisation estimate. The
// paper's C_i comes from oM_infoD's coarse node-level sampling, not from
// raw per-fault intervals, so we exponentially smooth the instantaneous
// busy fraction over a daemon-like horizon.
const utilTau = 250 * simtime.Millisecond

// sampleUtil computes C_i: the smoothed fraction of wall time the process
// spends computing rather than stalling.
func (e *executor) sampleUtil() float64 {
	now := e.node.Eng.Now()
	elapsed := now.Sub(e.lastSampleAt)
	if elapsed <= 0 {
		return e.util
	}
	u := float64(e.busy-e.lastSampleBusy) / float64(elapsed)
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	e.lastSampleAt = now
	e.lastSampleBusy = e.busy
	// Exponential smoothing with a weight proportional to the observation
	// interval, approximating a fixed-rate daemon sampler.
	alpha := float64(elapsed) / float64(elapsed+utilTau)
	e.util = alpha*u + (1-alpha)*e.util
	return e.util
}

// fault is the page-fault handler: Algorithm 1 of the paper.
func (e *executor) fault(page memory.PageNum) {
	if e.pager == nil {
		panic(fmt.Sprintf("migrate: fault on page %d under a scheme with no remote paging", page))
	}
	e.faults++

	// "if pages prefetched last time have arrived then copy these pages to
	// the migrant's address space" — install arrivals first.
	cost := e.pager.FaultBaseCost() + e.pager.InstallArrived()

	// State after installation decides the fault class.
	st := e.as.State(page)

	ci := e.sampleUtil()
	demand := paging.NoDemand
	if st == memory.StateRemote {
		demand = page
	}

	var zone []memory.PageNum
	if e.pre != nil {
		// "record i in the lookback window; calculate the current spatial
		// locality score; calculate the number of pages in the dependent
		// zone; identify which pages are in the dependent zone."
		e.pre.RecordFault(page, e.node.Eng.Now(), ci)
		a := e.pre.Analyze(e.est())
		ac := e.node.Scale(e.cal.Cost.AnalysisCost(e.pre.Config(), a))
		e.analysisTime += ac
		e.analyses++
		e.scoreSum += a.Score
		e.nSum += float64(a.N)
		cost += ac
		zone = a.Zone
	}

	e.node.Eng.Schedule(cost, func() { e.faultSend(page, demand, zone) })
}

// faultSend finishes the fault after handler costs: it sends the batched
// request and either resumes immediately or blocks on the missing page.
func (e *executor) faultSend(page memory.PageNum, demand memory.PageNum, zone []memory.PageNum) {
	// A page that arrived while the handler ran is not yet installed;
	// demand cannot have been requested by anyone else, so its state can
	// only still be Remote.
	nPref := e.pager.Request(demand, zone)
	if e.pre != nil {
		e.pre.NotePrefetched(nPref)
	}

	switch e.as.State(page) {
	case memory.StateResident:
		// Installed by this fault's arrival sweep: a soft (minor) fault.
		e.softFaults++
		e.step()
	case memory.StateArrived:
		// Arrived while the handler ran; install and continue.
		e.softFaults++
		cost := e.pager.InstallArrived()
		e.node.Eng.Schedule(cost, e.step)
	case memory.StateInFlight:
		if demand == page {
			e.hardFaults++
		} else {
			e.waitFaults++
		}
		e.pager.Wait(page, e.step)
	default:
		panic(fmt.Sprintf("migrate: page %d still remote after fault handling", page))
	}
}
