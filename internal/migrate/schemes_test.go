package migrate

import (
	"testing"

	"ampom/internal/hpcc"
)

func TestAllSchemesComplete(t *testing.T) {
	w := smallWorkload(t, hpcc.DGEMM, 16)
	results := map[Scheme]*Result{}
	for _, s := range AllSchemes() {
		r, err := Run(RunConfig{Workload: w, Scheme: s, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.Total <= 0 {
			t.Fatalf("%v: degenerate total", s)
		}
		results[s] = r
	}
	if len(AllSchemes()) != 5 {
		t.Fatal("scheme list incomplete")
	}
	// Figure 2's story: FFA's file-server detour costs more than fetching
	// directly from the origin (the reason the paper's variant exists).
	if results[FFAFileServer].Total <= results[NoPrefetch].Total {
		t.Fatalf("FFA %v not slower than NoPrefetch %v", results[FFAFileServer].Total, results[NoPrefetch].Total)
	}
	// Both demand-page every first touch.
	if results[FFAFileServer].HardFaults != results[NoPrefetch].HardFaults {
		t.Fatalf("FFA faults %d != NoPrefetch faults %d",
			results[FFAFileServer].HardFaults, results[NoPrefetch].HardFaults)
	}
	// Precopy never faults remotely and moves at least the address space.
	if results[Precopy].Faults != 0 {
		t.Fatalf("precopy faulted %d times", results[Precopy].Faults)
	}
	if results[Precopy].BytesToDest < results[OpenMosix].BytesToDest {
		t.Fatal("precopy moved fewer bytes than stop-and-copy — dirty retransmission lost")
	}
}

func TestSchemeStringsComplete(t *testing.T) {
	if FFAFileServer.String() != "FFA-fileserver" || Precopy.String() != "Precopy" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(99).String() == "" {
		t.Fatal("unknown scheme must still format")
	}
}

func TestFFAGatedByFlush(t *testing.T) {
	w := smallWorkload(t, hpcc.STREAM, 32)
	np := runScheme(t, w, NoPrefetch)
	ffa := runScheme(t, w, FFAFileServer)
	// The migrant's first faults wait for the whole flush: FFA's stall time
	// clearly exceeds direct-from-origin demand paging's.
	if ffa.StallTime <= np.StallTime {
		t.Fatalf("FFA stall %v not above NoPrefetch %v (flush gate lost)", ffa.StallTime, np.StallTime)
	}
	// Freeze is identical: both ship just the three pages.
	diff := ffa.Freeze - np.Freeze
	if diff < -ffa.Freeze/10 || diff > ffa.Freeze/10 {
		t.Fatalf("FFA freeze %v != NoPrefetch freeze %v", ffa.Freeze, np.Freeze)
	}
}

func TestPrecopyTradeoffs(t *testing.T) {
	// RandomAccess has compute ≫ transfer, the favourable precopy case:
	// rounds converge and execution continues at the destination.
	w := smallWorkload(t, hpcc.RandomAccess, 16)
	om := runScheme(t, w, OpenMosix)
	pc := runScheme(t, w, Precopy)
	if pc.Freeze >= om.Freeze {
		t.Fatalf("precopy freeze %v not below stop-and-copy %v", pc.Freeze, om.Freeze)
	}
	if pc.Precopy <= 0 {
		t.Fatal("precopy rounds not recorded")
	}
	if pc.Exec <= 0 {
		t.Fatal("compute-rich workload should keep executing at the destination")
	}
	// The V-system's documented weakness: retransmission makes it move
	// more bytes than plain stop-and-copy.
	if pc.BytesToDest <= om.BytesToDest {
		t.Fatalf("precopy bytes %d not above openMosix %d", pc.BytesToDest, om.BytesToDest)
	}
	if pc.Total != pc.Init+pc.Precopy+pc.Freeze+pc.Exec {
		t.Fatalf("phase sum wrong: %+v", pc)
	}
}

func TestPrecopyDegenerateWhenComputePoor(t *testing.T) {
	// STREAM's compute is below one transfer time: the process finishes at
	// the origin during the first round and nothing executes remotely.
	w := smallWorkload(t, hpcc.STREAM, 32)
	pc := runScheme(t, w, Precopy)
	if pc.Exec != 0 {
		t.Fatalf("exec = %v, want 0 (stream exhausted during precopy)", pc.Exec)
	}
	if pc.Faults != 0 {
		t.Fatal("degenerate precopy faulted")
	}
}

func TestAMPoMBeatsAllBaselines(t *testing.T) {
	// The headline comparison including the two extra baselines: AMPoM has
	// the best freeze-vs-total trade-off — only openMosix/Precopy match its
	// total, and they pay 1-2 orders of magnitude more freeze.
	w := smallWorkload(t, hpcc.DGEMM, 16)
	am := runScheme(t, w, AMPoM)
	for _, s := range []Scheme{OpenMosix, Precopy} {
		r := runScheme(t, w, s)
		if r.Freeze < 5*am.Freeze {
			t.Errorf("%v freeze %v not ≫ AMPoM freeze %v", s, r.Freeze, am.Freeze)
		}
	}
	for _, s := range []Scheme{NoPrefetch, FFAFileServer} {
		r := runScheme(t, w, s)
		if r.Total < am.Total {
			t.Errorf("%v total %v below AMPoM %v", s, r.Total, am.Total)
		}
	}
}
