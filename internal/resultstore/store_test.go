package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"version":1,"report":"bytes"}` + "\n")
	const fp = "scenario|name=x|nodes=8"
	if _, ok, err := s.Get(fp); ok || err != nil {
		t.Fatalf("fresh store Get = ok %v err %v, want miss", ok, err)
	}
	if err := s.Put(fp, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(fp)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok %v err %v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %q want %q", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put", st)
	}
	if st.BytesRead != int64(len(payload)) || st.BytesWritten != int64(len(payload)) {
		t.Fatalf("byte counters %+v, want %d each way", st, len(payload))
	}
}

func TestKeyIsStableAndValid(t *testing.T) {
	k1, k2 := Key("scenario|a"), Key("scenario|a")
	if k1 != k2 {
		t.Fatal("Key is not deterministic")
	}
	if k1 == Key("scenario|b") {
		t.Fatal("distinct fingerprints share a key")
	}
	if !ValidKey(k1) {
		t.Fatalf("ValidKey rejects its own key %q", k1)
	}
	for _, bad := range []string{"", "short", strings.Repeat("g", 64), strings.Repeat("A", 64), k1 + "00"} {
		if ValidKey(bad) {
			t.Fatalf("ValidKey accepts %q", bad)
		}
	}
}

func TestGetKeyMalformed(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetKey("../../etc/passwd"); ok || err == nil {
		t.Fatalf("malformed key: ok %v err %v, want rejection", ok, err)
	}
}

func TestCorruptCellEvicted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = "scenario|corrupt"
	if err := s.Put(fp, []byte("precious report bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte behind the store's back.
	path := s.path(Key(fp))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(fp); ok || err == nil {
		t.Fatalf("corrupt cell: ok %v err %v, want integrity error", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt cell was not evicted")
	}
	// A miss now (evicted), and a fresh Put heals the cell.
	if _, ok, _ := s.Get(fp); ok {
		t.Fatal("evicted cell still hits")
	}
	if err := s.Put(fp, []byte("healed")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(fp)
	if err != nil || !ok || string(got) != "healed" {
		t.Fatalf("healed cell: %q ok %v err %v", got, ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", st.Corrupt)
	}
}

func TestTruncatedCellDetected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = "scenario|truncated"
	if err := s.Put(fp, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	path := s.path(Key(fp))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(fp); ok || err == nil {
		t.Fatalf("truncated cell: ok %v err %v, want integrity error", ok, err)
	}
}

func TestPutOverwritesAndLeavesNoTempLitter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "scenario|overwrite"
	for i := 0; i < 3; i++ {
		if err := s.Put(fp, []byte(fmt.Sprintf("generation %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := s.Get(fp)
	if err != nil || !ok || string(got) != "generation 2" {
		t.Fatalf("after overwrites: %q ok %v err %v", got, ok, err)
	}
	var files []string
	filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, p)
		}
		return nil
	})
	if len(files) != 1 {
		t.Fatalf("store litter: %v, want exactly the one cell", files)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = "scenario|race"
	payload := bytes.Repeat([]byte("deterministic payload "), 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := s.Put(fp, payload); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get(fp)
				if err != nil {
					t.Error(err)
					return
				}
				if ok && !bytes.Equal(got, payload) {
					t.Error("reader observed a torn cell")
					return
				}
			}
		}()
	}
	wg.Wait()
}
