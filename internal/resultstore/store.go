// Package resultstore is the persistent content-addressed result store
// behind the campaign engine and the ampom-clusterd service: it maps a
// campaign job fingerprint to the report bytes the job rendered, on disk,
// so a re-run of an identical spec — in another process, on another day —
// is a disk read instead of a simulation.
//
// The store is content-addressed twice over. The cell a result lives in is
// Key(fingerprint), the SHA-256 of the job's canonical fingerprint — the
// same identity the campaign engine's in-memory single-flight cache keys
// by, so the two caches can never disagree about which runs are "the same
// run". And every cell carries the SHA-256 of its own payload in a header
// line, verified on every read, so a truncated or bit-rotted file is
// detected (and evicted) instead of being served as a report.
//
// Writes are atomic: the payload lands in a temp file in the destination
// directory, is fsynced, and is renamed into place, so concurrent writers
// of one cell and readers racing a writer both observe either the old
// complete cell or the new complete cell — never a torn one. Only
// successful runs are ever written; a failed job has no bytes to store,
// which is what makes a store cell proof that the fingerprint once ran to
// completion.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// envelopeMagic versions the on-disk cell format. A cell is one header
// line — magic, payload SHA-256, payload length — followed by the payload
// bytes verbatim.
const envelopeMagic = "ampom-result/1"

// Stats counts the store's traffic since Open. All counters only grow.
type Stats struct {
	// Hits and Misses count Get/GetKey outcomes; Corrupt counts reads
	// that failed the integrity check (each also counts as a miss after
	// the cell is evicted).
	Hits, Misses, Corrupt int64
	// Puts counts completed writes.
	Puts int64
	// BytesRead and BytesWritten total the payload bytes served and
	// persisted.
	BytesRead, BytesWritten int64
}

// Store is a directory of content-addressed result cells. It is safe for
// concurrent use by any number of goroutines and — writes being atomic
// renames of complete, checksummed cells — by cooperating processes
// sharing the directory (a batch CLI alongside a daemon).
type Store struct {
	dir string

	mu sync.Mutex
	st Stats
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Key maps a job fingerprint to its content-addressed cell name: the hex
// SHA-256 of the fingerprint. The key doubles as the public job handle of
// ampom-clusterd's HTTP API — stable across processes, URL-safe, and
// reveals nothing about the spec.
func Key(fingerprint string) string {
	h := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(h[:])
}

// ValidKey reports whether key has the shape Key produces (64 lowercase
// hex digits) — the gate HTTP handlers apply to path parameters before
// touching the filesystem.
func ValidKey(key string) bool {
	if len(key) != 2*sha256.Size {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path places a cell under a two-hex-digit fan-out directory so huge
// stores never accumulate one enormous flat directory.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".rst")
}

// Get returns the payload stored for fingerprint. ok is false on a miss.
// A cell that fails the integrity check is evicted and reported as an
// error (and a miss): the caller recomputes and the next Put heals the
// cell.
func (s *Store) Get(fingerprint string) (payload []byte, ok bool, err error) {
	return s.GetKey(Key(fingerprint))
}

// GetKey is Get addressed by the cell key instead of the fingerprint —
// the form servers use when the handle arrives from a client that never
// shared the underlying spec.
func (s *Store) GetKey(key string) (payload []byte, ok bool, err error) {
	if !ValidKey(key) {
		return nil, false, fmt.Errorf("resultstore: malformed key %q", key)
	}
	path := s.path(key)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("resultstore: %w", err)
	}
	payload, err = parseEnvelope(data)
	if err != nil {
		// Evict the corrupt cell so the next Put rewrites it from scratch.
		os.Remove(path)
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		return nil, false, fmt.Errorf("resultstore: cell %s: %w", key, err)
	}
	s.count(func(st *Stats) { st.Hits++; st.BytesRead += int64(len(payload)) })
	return payload, true, nil
}

// Put persists payload as the cell for fingerprint, atomically: the bytes
// are written to a temp file in the destination directory, fsynced, and
// renamed into place. Re-putting an existing cell simply replaces it with
// identical content.
func (s *Store) Put(fingerprint string, payload []byte) error {
	key := Key(fingerprint)
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	f, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultstore: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", envelopeMagic, hex.EncodeToString(sum[:]), len(payload))
	if _, err := f.WriteString(header); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultstore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultstore: %w", err)
	}
	s.count(func(st *Stats) { st.Puts++; st.BytesWritten += int64(len(payload)) })
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// count applies one counter update under the lock.
func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.st)
	s.mu.Unlock()
}

// parseEnvelope verifies a cell's header against its payload and returns
// the payload.
func parseEnvelope(data []byte) ([]byte, error) {
	nl := strings.IndexByte(string(data[:min(len(data), 256)]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("missing envelope header")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != envelopeMagic {
		return nil, fmt.Errorf("malformed envelope header")
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil || wantLen < 0 {
		return nil, fmt.Errorf("malformed envelope length")
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("payload length %d, envelope promises %d", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, fmt.Errorf("payload checksum mismatch")
	}
	return payload, nil
}
