package memory

import "fmt"

// Loc records, in a page-table entry, where a page's data lives.
type Loc uint8

const (
	// LocUnmapped: the page is not mapped in the address space.
	LocUnmapped Loc = iota
	// LocOrigin: the data is stored at the process's origin (home) node.
	LocOrigin
	// LocMigrant: the data is stored at the migrant's current node.
	LocMigrant
)

// String names the location.
func (l Loc) String() string {
	switch l {
	case LocUnmapped:
		return "unmapped"
	case LocOrigin:
		return "origin"
	case LocMigrant:
		return "migrant"
	default:
		return fmt.Sprintf("loc(%d)", uint8(l))
	}
}

// Table is a page table: one entry per page of the layout. It serves as
// both the MPT (at the migrant) and the HPT (at the origin); the TablePair
// wrapper enforces the update protocol between the two.
type Table struct {
	name    string
	entries []Loc
	mapped  int64
}

// NewTable returns a table for n pages with every page mapped at the given
// initial location.
func NewTable(name string, n int64, initial Loc) *Table {
	t := &Table{name: name, entries: make([]Loc, n)}
	for i := range t.entries {
		t.entries[i] = initial
	}
	if initial != LocUnmapped {
		t.mapped = n
	}
	return t
}

// Name returns the table's diagnostic name.
func (t *Table) Name() string { return t.name }

// Pages returns the number of entries.
func (t *Table) Pages() int64 { return int64(len(t.entries)) }

// Mapped returns the number of mapped entries.
func (t *Table) Mapped() int64 { return t.mapped }

// Bytes returns the wire size of the table: PTEntrySize bytes per entry
// (paper §5.2: "the size of an MPT is 6 bytes per page").
func (t *Table) Bytes() int64 { return int64(len(t.entries)) * PTEntrySize }

// Loc returns the entry for page p.
func (t *Table) Loc(p PageNum) Loc {
	t.check(p)
	return t.entries[p]
}

// Set overwrites the entry for page p.
func (t *Table) Set(p PageNum, l Loc) {
	t.check(p)
	old := t.entries[p]
	if old == l {
		return
	}
	if old == LocUnmapped {
		t.mapped++
	}
	if l == LocUnmapped {
		t.mapped--
	}
	t.entries[p] = l
}

// Clone deep-copies the table under a new name; migration clones the
// origin's table to create the migrant's MPT.
func (t *Table) Clone(name string) *Table {
	c := &Table{name: name, entries: make([]Loc, len(t.entries)), mapped: t.mapped}
	copy(c.entries, t.entries)
	return c
}

func (t *Table) check(p PageNum) {
	if p < 0 || int64(p) >= int64(len(t.entries)) {
		panic(fmt.Sprintf("memory: page %d outside table %q of %d entries", p, t.name, len(t.entries)))
	}
}

// TablePair binds a migrant's MPT to the origin's HPT and implements the
// update protocol of paper §2.2:
//
//   - page transferred to the migrant → delete the origin copy, update HPT
//     (and the MPT entry flips to "migrant");
//   - page created by the migrant → only the MPT is updated;
//   - page unmapped → both tables update if the data was at the origin,
//     otherwise only the MPT.
type TablePair struct {
	MPT *Table // at the migrant: where each page's data is
	HPT *Table // at the origin: which pages the origin still stores
}

// NewTablePair models the instant after migration: every mapped page's data
// is still at the origin, so the MPT maps all pages to LocOrigin and the
// HPT records the origin storing all of them.
func NewTablePair(n int64) *TablePair {
	return &TablePair{
		MPT: NewTable("mpt", n, LocOrigin),
		HPT: NewTable("hpt", n, LocOrigin),
	}
}

// TransferToMigrant records that page p's data moved origin→migrant: the
// origin copy is deleted (paper: "its copy in the original node will be
// deleted and the HPT will be updated accordingly").
func (tp *TablePair) TransferToMigrant(p PageNum) error {
	if tp.MPT.Loc(p) != LocOrigin {
		return fmt.Errorf("memory: transfer of page %d not stored at origin (mpt=%v)", p, tp.MPT.Loc(p))
	}
	tp.MPT.Set(p, LocMigrant)
	tp.HPT.Set(p, LocUnmapped)
	return nil
}

// CreateAtMigrant records a page newly created by the migrant (e.g. heap
// growth after migration): "when a page is created by a migrant, only the
// MPT needs to be updated".
func (tp *TablePair) CreateAtMigrant(p PageNum) error {
	if tp.MPT.Loc(p) != LocUnmapped {
		return fmt.Errorf("memory: create of already-mapped page %d (mpt=%v)", p, tp.MPT.Loc(p))
	}
	tp.MPT.Set(p, LocMigrant)
	return nil
}

// Unmap removes page p from the address space, updating the HPT only when
// the origin stored the data.
func (tp *TablePair) Unmap(p PageNum) error {
	switch tp.MPT.Loc(p) {
	case LocUnmapped:
		return fmt.Errorf("memory: unmap of unmapped page %d", p)
	case LocOrigin:
		tp.HPT.Set(p, LocUnmapped)
		tp.MPT.Set(p, LocUnmapped)
	case LocMigrant:
		tp.MPT.Set(p, LocUnmapped)
	}
	return nil
}

// CheckConsistent verifies the cross-table invariant: the origin stores
// exactly the mapped pages whose MPT entry says "origin". It returns the
// first violation found.
func (tp *TablePair) CheckConsistent() error {
	if tp.MPT.Pages() != tp.HPT.Pages() {
		return fmt.Errorf("memory: table size mismatch mpt=%d hpt=%d", tp.MPT.Pages(), tp.HPT.Pages())
	}
	for p := PageNum(0); p < PageNum(tp.MPT.Pages()); p++ {
		atOrigin := tp.MPT.Loc(p) == LocOrigin
		hptHas := tp.HPT.Loc(p) != LocUnmapped
		if atOrigin != hptHas {
			return fmt.Errorf("memory: page %d inconsistent: mpt=%v hpt=%v", p, tp.MPT.Loc(p), tp.HPT.Loc(p))
		}
	}
	return nil
}
