package memory

import (
	"testing"
	"testing/quick"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable("t", 100, LocOrigin)
	if tb.Pages() != 100 || tb.Mapped() != 100 {
		t.Fatalf("pages=%d mapped=%d", tb.Pages(), tb.Mapped())
	}
	if tb.Bytes() != 100*PTEntrySize {
		t.Fatalf("bytes = %d, want %d (6 B per entry, paper §5.2)", tb.Bytes(), 100*PTEntrySize)
	}
	tb.Set(5, LocMigrant)
	if tb.Loc(5) != LocMigrant {
		t.Fatal("entry not set")
	}
	tb.Set(6, LocUnmapped)
	if tb.Mapped() != 99 {
		t.Fatalf("mapped = %d, want 99", tb.Mapped())
	}
	tb.Set(6, LocOrigin)
	if tb.Mapped() != 100 {
		t.Fatalf("mapped = %d, want 100", tb.Mapped())
	}
}

func TestTableUnmappedInitial(t *testing.T) {
	tb := NewTable("t", 10, LocUnmapped)
	if tb.Mapped() != 0 {
		t.Fatalf("mapped = %d", tb.Mapped())
	}
}

func TestTableClone(t *testing.T) {
	tb := NewTable("orig", 10, LocOrigin)
	tb.Set(3, LocMigrant)
	c := tb.Clone("copy")
	if c.Name() != "copy" || c.Loc(3) != LocMigrant || c.Mapped() != tb.Mapped() {
		t.Fatal("clone mismatch")
	}
	c.Set(4, LocUnmapped)
	if tb.Loc(4) != LocOrigin {
		t.Fatal("clone shares storage with original")
	}
}

func TestTableBoundsPanic(t *testing.T) {
	tb := NewTable("t", 10, LocOrigin)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range entry did not panic")
		}
	}()
	tb.Loc(10)
}

func TestLocString(t *testing.T) {
	if LocUnmapped.String() != "unmapped" || LocOrigin.String() != "origin" || LocMigrant.String() != "migrant" {
		t.Fatal("loc names wrong")
	}
}

func TestTablePairInitialConsistency(t *testing.T) {
	tp := NewTablePair(50)
	if err := tp.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestTransferToMigrant(t *testing.T) {
	tp := NewTablePair(50)
	if err := tp.TransferToMigrant(7); err != nil {
		t.Fatal(err)
	}
	if tp.MPT.Loc(7) != LocMigrant {
		t.Fatal("MPT not updated")
	}
	if tp.HPT.Loc(7) != LocUnmapped {
		t.Fatal("origin copy not deleted (paper §2.2)")
	}
	if err := tp.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	// Double transfer is a protocol violation.
	if err := tp.TransferToMigrant(7); err == nil {
		t.Fatal("double transfer accepted")
	}
}

func TestCreateAtMigrant(t *testing.T) {
	tp := NewTablePair(50)
	tp.MPT.Set(9, LocUnmapped)
	tp.HPT.Set(9, LocUnmapped)
	if err := tp.CreateAtMigrant(9); err != nil {
		t.Fatal(err)
	}
	if tp.MPT.Loc(9) != LocMigrant {
		t.Fatal("MPT not updated on create")
	}
	// "only the MPT needs to be updated" — HPT untouched.
	if tp.HPT.Loc(9) != LocUnmapped {
		t.Fatal("HPT touched on create")
	}
	if err := tp.CreateAtMigrant(9); err == nil {
		t.Fatal("create over mapped page accepted")
	}
	if err := tp.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapAtOrigin(t *testing.T) {
	tp := NewTablePair(50)
	if err := tp.Unmap(3); err != nil {
		t.Fatal(err)
	}
	// Page stored at origin: both tables update.
	if tp.MPT.Loc(3) != LocUnmapped || tp.HPT.Loc(3) != LocUnmapped {
		t.Fatal("unmap of origin-stored page must update both tables")
	}
	if err := tp.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapAtMigrant(t *testing.T) {
	tp := NewTablePair(50)
	if err := tp.TransferToMigrant(4); err != nil {
		t.Fatal(err)
	}
	if err := tp.Unmap(4); err != nil {
		t.Fatal(err)
	}
	if tp.MPT.Loc(4) != LocUnmapped {
		t.Fatal("MPT not unmapped")
	}
	if err := tp.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	if err := tp.Unmap(4); err == nil {
		t.Fatal("double unmap accepted")
	}
}

// TestTablePairProtocolProperty: any legal sequence of transfer / create /
// unmap operations preserves the MPT/HPT consistency invariant.
func TestTablePairProtocolProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const pages = 32
		tp := NewTablePair(pages)
		for _, op := range ops {
			p := PageNum(op % pages)
			switch (op / pages) % 3 {
			case 0:
				if tp.MPT.Loc(p) == LocOrigin {
					if tp.TransferToMigrant(p) != nil {
						return false
					}
				}
			case 1:
				if tp.MPT.Loc(p) == LocUnmapped {
					if tp.CreateAtMigrant(p) != nil {
						return false
					}
				}
			case 2:
				if tp.MPT.Loc(p) != LocUnmapped {
					if tp.Unmap(p) != nil {
						return false
					}
				}
			}
			if tp.CheckConsistent() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckConsistentDetectsViolation(t *testing.T) {
	tp := NewTablePair(10)
	tp.HPT.Set(2, LocUnmapped) // break invariant behind the protocol's back
	if err := tp.CheckConsistent(); err == nil {
		t.Fatal("violation not detected")
	}
	tp2 := &TablePair{MPT: NewTable("m", 5, LocOrigin), HPT: NewTable("h", 6, LocOrigin)}
	if err := tp2.CheckConsistent(); err == nil {
		t.Fatal("size mismatch not detected")
	}
}
