package memory

import (
	"testing"
	"testing/quick"
)

func TestNewLayout(t *testing.T) {
	l, err := NewLayout(32, 1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if l.Pages() != 1048 {
		t.Fatalf("pages = %d, want 1048", l.Pages())
	}
	if l.Bytes() != 1048*PageSize {
		t.Fatalf("bytes = %d", l.Bytes())
	}
	regions := l.Regions()
	if len(regions) != 3 {
		t.Fatalf("regions = %d", len(regions))
	}
	if regions[0].Kind != RegionCode || regions[0].Start != 0 || regions[0].Count != 32 {
		t.Fatalf("code region = %+v", regions[0])
	}
	if regions[1].Kind != RegionHeap || regions[1].Start != 32 || regions[1].Count != 1000 {
		t.Fatalf("heap region = %+v", regions[1])
	}
	if regions[2].Kind != RegionStack || regions[2].Start != 1032 || regions[2].Count != 16 {
		t.Fatalf("stack region = %+v", regions[2])
	}
}

func TestNewLayoutRejectsNonPositive(t *testing.T) {
	for _, c := range [][3]int64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if _, err := NewLayout(c[0], c[1], c[2]); err == nil {
			t.Fatalf("layout %v accepted", c)
		}
	}
}

func TestRegionOf(t *testing.T) {
	l := MustLayout(10, 100, 5)
	cases := []struct {
		p    PageNum
		kind RegionKind
		ok   bool
	}{
		{0, RegionCode, true},
		{9, RegionCode, true},
		{10, RegionHeap, true},
		{109, RegionHeap, true},
		{110, RegionStack, true},
		{114, RegionStack, true},
		{115, 0, false},
	}
	for _, c := range cases {
		r, ok := l.RegionOf(c.p)
		if ok != c.ok {
			t.Fatalf("RegionOf(%d) ok = %v", c.p, ok)
		}
		if ok && r.Kind != c.kind {
			t.Fatalf("RegionOf(%d) = %v, want %v", c.p, r.Kind, c.kind)
		}
	}
}

func TestRegionAccessors(t *testing.T) {
	l := MustLayout(10, 100, 5)
	h := l.Region(RegionHeap)
	if h.Start != 10 || h.Count != 100 || h.End() != 110 {
		t.Fatalf("heap = %+v", h)
	}
	if !h.Contains(50) || h.Contains(5) || h.Contains(110) {
		t.Fatal("Contains wrong")
	}
	if !l.Valid(0) || !l.Valid(114) || l.Valid(115) || l.Valid(-1) {
		t.Fatal("Valid wrong")
	}
}

func TestRegionKindString(t *testing.T) {
	if RegionCode.String() != "code" || RegionHeap.String() != "heap" || RegionStack.String() != "stack" {
		t.Fatal("region names wrong")
	}
}

func TestAddressSpaceStates(t *testing.T) {
	as := NewAddressSpace(MustLayout(2, 10, 2))
	if as.CountInState(StateResident) != 14 {
		t.Fatalf("initial resident = %d", as.CountInState(StateResident))
	}
	as.SetState(3, StateRemote)
	as.SetState(4, StateInFlight)
	as.SetState(5, StateArrived)
	if as.State(3) != StateRemote || as.State(4) != StateInFlight || as.State(5) != StateArrived {
		t.Fatal("states not set")
	}
	if as.CountInState(StateResident) != 11 {
		t.Fatalf("resident = %d, want 11", as.CountInState(StateResident))
	}
	// Setting the same state twice must not skew counts.
	as.SetState(3, StateRemote)
	if as.CountInState(StateRemote) != 1 {
		t.Fatalf("remote = %d, want 1", as.CountInState(StateRemote))
	}
}

func TestEvictAllToRemote(t *testing.T) {
	as := NewAddressSpace(MustLayout(2, 10, 2))
	as.SetState(5, StateArrived)
	as.EvictAllToRemote()
	if as.CountInState(StateRemote) != 14 {
		t.Fatalf("remote = %d, want 14", as.CountInState(StateRemote))
	}
	if as.CountInState(StateResident) != 0 || as.CountInState(StateArrived) != 0 {
		t.Fatal("stale state counts after evict")
	}
}

func TestDirtyTracking(t *testing.T) {
	as := NewAddressSpace(MustLayout(2, 10, 2))
	if as.DirtyPages() != 0 {
		t.Fatal("fresh space dirty")
	}
	as.MarkDirty(3)
	as.MarkDirty(3) // idempotent
	as.MarkDirty(7)
	if as.DirtyPages() != 2 || !as.Dirty(3) || !as.Dirty(7) || as.Dirty(4) {
		t.Fatalf("dirty = %d", as.DirtyPages())
	}
	if as.DirtyBytes() != 2*PageSize {
		t.Fatalf("dirty bytes = %d", as.DirtyBytes())
	}
	as.MarkAllDirty()
	if as.DirtyPages() != 14 {
		t.Fatalf("all dirty = %d", as.DirtyPages())
	}
}

func TestAddressSpaceBoundsPanic(t *testing.T) {
	as := NewAddressSpace(MustLayout(1, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	as.State(99)
}

func TestStateString(t *testing.T) {
	names := map[PageState]string{
		StateRemote: "remote", StateInFlight: "in-flight",
		StateArrived: "arrived", StateResident: "resident",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

// StateCountsConsistentProperty: after arbitrary SetState sequences, the
// per-state counts always sum to the page total and match a direct census.
func TestStateCountsConsistentProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const pages = 64
		as := NewAddressSpace(MustLayout(4, pages-8, 4))
		for _, op := range ops {
			p := PageNum(op % pages)
			s := PageState(op / pages % 4)
			as.SetState(p, s)
		}
		var census [4]int64
		for p := PageNum(0); p < pages; p++ {
			census[as.State(p)]++
		}
		var total int64
		for s := PageState(0); s < 4; s++ {
			if as.CountInState(s) != census[s] {
				return false
			}
			total += census[s]
		}
		return total == pages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
