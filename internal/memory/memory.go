// Package memory models a migrating process's address space at page
// granularity: code/heap/stack regions, dirty-page tracking, the residency
// state machine used by the remote-paging machinery, and the two page tables
// of the paper's design — the master page table (MPT) carried by the migrant
// and the home page table (HPT) kept by the deputy at the origin node
// (paper §2.2).
package memory

import "fmt"

// PageSize is the page size in bytes (x86 Linux 2.4, as in the paper).
const PageSize = 4096

// PTEntrySize is the size of one master-page-table entry in bytes. The
// paper states the MPT costs 6 bytes per page (§5.2).
const PTEntrySize = 6

// PageNum identifies a page within a process address space, starting at 0.
type PageNum int64

// RegionKind classifies an address-space region.
type RegionKind uint8

// Region kinds. The paper's lightweight migration ships the currently
// accessed page of each of the three regions.
const (
	RegionCode RegionKind = iota
	RegionHeap
	RegionStack
)

// String returns the conventional region name.
func (k RegionKind) String() string {
	switch k {
	case RegionCode:
		return "code"
	case RegionHeap:
		return "heap"
	case RegionStack:
		return "stack"
	default:
		return fmt.Sprintf("region(%d)", uint8(k))
	}
}

// Region is a contiguous run of pages of one kind.
type Region struct {
	Kind  RegionKind
	Start PageNum // first page number
	Count int64   // number of pages
}

// Contains reports whether page p falls inside the region.
func (r Region) Contains(p PageNum) bool {
	return p >= r.Start && p < r.Start+PageNum(r.Count)
}

// End returns one past the last page of the region.
func (r Region) End() PageNum { return r.Start + PageNum(r.Count) }

// Layout is an ordered, non-overlapping set of regions starting at page 0.
type Layout struct {
	regions []Region
	total   int64
}

// NewLayout builds a layout with the code region first, then heap, then
// stack, mirroring a simplified Linux process map. Counts must be positive.
func NewLayout(codePages, heapPages, stackPages int64) (Layout, error) {
	if codePages <= 0 || heapPages <= 0 || stackPages <= 0 {
		return Layout{}, fmt.Errorf("memory: layout requires positive page counts (code=%d heap=%d stack=%d)",
			codePages, heapPages, stackPages)
	}
	var l Layout
	next := PageNum(0)
	for _, r := range []Region{
		{Kind: RegionCode, Count: codePages},
		{Kind: RegionHeap, Count: heapPages},
		{Kind: RegionStack, Count: stackPages},
	} {
		r.Start = next
		next += PageNum(r.Count)
		l.regions = append(l.regions, r)
		l.total += r.Count
	}
	return l, nil
}

// MustLayout is NewLayout that panics on error, for tests and fixtures.
func MustLayout(codePages, heapPages, stackPages int64) Layout {
	l, err := NewLayout(codePages, heapPages, stackPages)
	if err != nil {
		panic(err)
	}
	return l
}

// Pages returns the total number of pages in the layout.
func (l Layout) Pages() int64 { return l.total }

// Bytes returns the layout size in bytes.
func (l Layout) Bytes() int64 { return l.total * PageSize }

// Regions returns the layout's regions in address order.
func (l Layout) Regions() []Region { return l.regions }

// RegionOf returns the region containing page p.
func (l Layout) RegionOf(p PageNum) (Region, bool) {
	for _, r := range l.regions {
		if r.Contains(p) {
			return r, true
		}
	}
	return Region{}, false
}

// Region returns the (single) region of the given kind.
func (l Layout) Region(kind RegionKind) Region {
	for _, r := range l.regions {
		if r.Kind == kind {
			return r
		}
	}
	return Region{}
}

// Valid reports whether p is a page of this layout.
func (l Layout) Valid(p PageNum) bool { return p >= 0 && p < PageNum(l.total) }

// PageState is the migrant-side residency state of a page, driving the
// fault/prefetch state machine.
type PageState uint8

const (
	// StateRemote: the page data is stored at the origin node (HPT) and no
	// request for it is outstanding. Referencing it is a hard fault.
	StateRemote PageState = iota
	// StateInFlight: the page has been requested (demand or prefetch) and
	// the reply has not arrived. Referencing it stalls but sends no new
	// request — a "prevented" fault request in the paper's Figure 7 terms.
	StateInFlight
	// StateArrived: the reply carrying the page has arrived but the page has
	// not been copied into the migrant's address space yet; Algorithm 1
	// installs arrived pages at the next fault. Referencing it is a soft
	// fault (handler cost only).
	StateArrived
	// StateResident: the page is installed in the migrant's address space.
	// References proceed at full speed.
	StateResident
)

// String names the state.
func (s PageState) String() string {
	switch s {
	case StateRemote:
		return "remote"
	case StateInFlight:
		return "in-flight"
	case StateArrived:
		return "arrived"
	case StateResident:
		return "resident"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// AddressSpace tracks per-page residency and dirty bits for one process.
type AddressSpace struct {
	layout Layout
	state  []PageState
	dirty  []bool

	counts [4]int64 // population per state
	nDirty int64
}

// NewAddressSpace returns an address space with every page resident (the
// process starts whole at its origin node) and clean.
func NewAddressSpace(layout Layout) *AddressSpace {
	n := layout.Pages()
	as := &AddressSpace{
		layout: layout,
		state:  make([]PageState, n),
		dirty:  make([]bool, n),
	}
	for i := range as.state {
		as.state[i] = StateResident
	}
	as.counts[StateResident] = n
	return as
}

// Layout returns the address-space layout.
func (as *AddressSpace) Layout() Layout { return as.layout }

// Pages returns the total page count.
func (as *AddressSpace) Pages() int64 { return as.layout.Pages() }

// State returns the residency state of page p.
func (as *AddressSpace) State(p PageNum) PageState {
	as.check(p)
	return as.state[p]
}

// SetState transitions page p to state s, keeping population counts.
func (as *AddressSpace) SetState(p PageNum, s PageState) {
	as.check(p)
	old := as.state[p]
	if old == s {
		return
	}
	as.counts[old]--
	as.counts[s]++
	as.state[p] = s
}

// CountInState returns how many pages are in state s.
func (as *AddressSpace) CountInState(s PageState) int64 { return as.counts[s] }

// MarkDirty sets the dirty bit of page p (a write touched it).
func (as *AddressSpace) MarkDirty(p PageNum) {
	as.check(p)
	if !as.dirty[p] {
		as.dirty[p] = true
		as.nDirty++
	}
}

// MarkAllDirty dirties the whole address space — the paper migrates kernels
// right after they finished initialising their memory, at which point
// essentially every page is dirty.
func (as *AddressSpace) MarkAllDirty() {
	for i := range as.dirty {
		if !as.dirty[i] {
			as.dirty[i] = true
			as.nDirty++
		}
	}
}

// Dirty reports the dirty bit of page p.
func (as *AddressSpace) Dirty(p PageNum) bool {
	as.check(p)
	return as.dirty[p]
}

// DirtyPages returns the number of dirty pages.
func (as *AddressSpace) DirtyPages() int64 { return as.nDirty }

// DirtyBytes returns the dirty footprint in bytes.
func (as *AddressSpace) DirtyBytes() int64 { return as.nDirty * PageSize }

// EvictAllToRemote flips every page to StateRemote, modelling the state of
// the migrant right after a lightweight migration (only explicitly
// re-installed pages become resident again).
func (as *AddressSpace) EvictAllToRemote() {
	for i := range as.state {
		as.state[i] = StateRemote
	}
	as.counts = [4]int64{}
	as.counts[StateRemote] = as.layout.Pages()
}

func (as *AddressSpace) check(p PageNum) {
	if !as.layout.Valid(p) {
		panic(fmt.Sprintf("memory: page %d outside address space of %d pages", p, as.layout.Pages()))
	}
}
