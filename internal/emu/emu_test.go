package emu

import (
	"testing"

	"ampom/internal/core"
)

// twoNodes starts an origin and a destination on the loopback.
func twoNodes(t *testing.T) (*Node, *Node) {
	t.Helper()
	origin, err := Listen("origin", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dest, err := Listen("dest", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		origin.Close()
		dest.Close()
	})
	return origin, dest
}

// baseline runs the same program without migration and returns the final
// memory checksum.
func baseline(t *testing.T, pages int, program []Op, seed uint64) uint64 {
	t.Helper()
	node, err := Listen("solo", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	p := Spawn(node, 1, pages, program, seed)
	return p.RunLocal()
}

func TestMigrationPreservesMemorySequential(t *testing.T) {
	const pages = 128
	program := SequentialProgram(pages, 3)
	want := baseline(t, pages, program, 7)

	origin, dest := twoNodes(t)
	p := Spawn(origin, 1, pages, program, 7)
	got, err := Migrate(p, dest.Addr(), MigrateOptions{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checksum after migration %x != baseline %x", got, want)
	}
}

func TestMigrationPreservesMemoryNoPrefetch(t *testing.T) {
	const pages = 64
	program := SequentialProgram(pages, 2)
	want := baseline(t, pages, program, 9)

	origin, dest := twoNodes(t)
	p := Spawn(origin, 1, pages, program, 9)
	got, err := Migrate(p, dest.Addr(), MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checksum %x != baseline %x", got, want)
	}
}

func TestMigrationPreservesMemoryStrided(t *testing.T) {
	const pages = 96
	program := StridedProgram(pages, 500, 7)
	want := baseline(t, pages, program, 13)

	origin, dest := twoNodes(t)
	p := Spawn(origin, 1, pages, program, 13)
	got, err := Migrate(p, dest.Addr(), MigrateOptions{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checksum %x != baseline %x", got, want)
	}
}

func TestMidExecutionMigration(t *testing.T) {
	const pages = 64
	program := SequentialProgram(pages, 4)
	want := baseline(t, pages, program, 21)

	origin, dest := twoNodes(t)
	p := Spawn(origin, 1, pages, program, 21)
	p.Step(pages + pages/2) // run 1.5 passes locally, then migrate
	got, err := Migrate(p, dest.Addr(), MigrateOptions{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("checksum %x != baseline %x (mid-execution state lost?)", got, want)
	}
}

func TestPrefetchBatchesRequests(t *testing.T) {
	const pages = 256
	program := SequentialProgram(pages, 1)

	origin, dest := twoNodes(t)
	pNo := Spawn(origin, 1, pages, program, 3)
	if _, err := Migrate(pNo, dest.Addr(), MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	noPrefetchReqs := dest.Proc(1).Stats.FaultRequests

	origin2, dest2 := twoNodes(t)
	pYes := Spawn(origin2, 2, pages, program, 3)
	if _, err := Migrate(pYes, dest2.Addr(), MigrateOptions{Prefetch: true}); err != nil {
		t.Fatal(err)
	}
	st := dest2.Proc(2).Stats
	if st.FaultRequests >= noPrefetchReqs {
		t.Fatalf("prefetch requests %d not below demand-only %d", st.FaultRequests, noPrefetchReqs)
	}
	if st.PrefetchPages == 0 {
		t.Fatal("no pages prefetched on a sequential program")
	}
}

func TestOnlyTouchedPagesMove(t *testing.T) {
	const pages = 200
	// Touch only the first quarter (small working set, §5.6).
	program := SequentialProgram(pages/4, 2)

	origin, dest := twoNodes(t)
	p := Spawn(origin, 1, pages, program, 5)
	if _, err := Migrate(p, dest.Addr(), MigrateOptions{Prefetch: true}); err != nil {
		t.Fatal(err)
	}
	migrant := dest.Proc(1)
	moved := migrant.LocalPages()
	if moved >= pages*3/4 {
		t.Fatalf("moved %d of %d pages for a quarter-size working set", moved, pages)
	}
	// Untouched pages stay at the origin deputy.
	if left := p.LocalPages(); left == 0 {
		t.Fatal("origin retained nothing; working-set advantage lost")
	}
	if moved+p.LocalPages() != pages {
		t.Fatalf("page conservation violated: %d at dest + %d at origin != %d",
			moved, p.LocalPages(), pages)
	}
}

func TestBytesFetchedAccounting(t *testing.T) {
	const pages = 64
	program := SequentialProgram(pages, 1)
	origin, dest := twoNodes(t)
	p := Spawn(origin, 1, pages, program, 2)
	if _, err := Migrate(p, dest.Addr(), MigrateOptions{Prefetch: true}); err != nil {
		t.Fatal(err)
	}
	st := dest.Proc(1).Stats
	fetched := st.DemandPages + st.PrefetchPages
	if st.BytesFetched != fetched*PageSize {
		t.Fatalf("bytes %d != %d pages × %d", st.BytesFetched, fetched, PageSize)
	}
}

func TestCustomPrefetcherConfig(t *testing.T) {
	const pages = 128
	program := SequentialProgram(pages, 1)
	origin, dest := twoNodes(t)
	p := Spawn(origin, 1, pages, program, 4)
	cfg := core.Config{WindowLen: 10, DMax: 2, MaxPrefetch: 4, BaselineScore: -1}
	if _, err := Migrate(p, dest.Addr(), MigrateOptions{Prefetch: true, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	st := dest.Proc(1).Stats
	perReq := float64(st.PrefetchPages) / float64(st.FaultRequests)
	if perReq > 4 {
		t.Fatalf("prefetched %.1f pages/request despite cap 4", perReq)
	}
}

func TestSpawnAndRunLocalDeterministic(t *testing.T) {
	program := StridedProgram(32, 200, 5)
	a := baseline(t, 32, program, 77)
	b := baseline(t, 32, program, 77)
	if a != b {
		t.Fatal("local runs with same seed diverged")
	}
	c := baseline(t, 32, program, 78)
	if a == c {
		t.Fatal("different seeds produced identical memories")
	}
}

func TestNodeAccessors(t *testing.T) {
	n, err := Listen("x", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Name() != "x" || n.Addr() == "" {
		t.Fatal("accessors wrong")
	}
	if n.Proc(99) != nil {
		t.Fatal("phantom proc")
	}
}

func TestProgramBuilders(t *testing.T) {
	seq := SequentialProgram(10, 2)
	if len(seq) != 20 || seq[0].Page != 0 || !seq[0].Write || seq[10].Write {
		t.Fatalf("sequential program wrong: %+v", seq[:3])
	}
	str := StridedProgram(10, 5, 3)
	want := []int{0, 3, 6, 9, 2}
	for i, op := range str {
		if op.Page != want[i] {
			t.Fatalf("strided pages = %v", str)
		}
	}
}
