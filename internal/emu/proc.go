package emu

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"ampom/internal/core"
	"ampom/internal/memory"
	"ampom/internal/simtime"
)

// Proc is an emulated process: a program counter over a list of page
// operations and a set of real byte pages, some of which may still live at
// the origin node after a migration.
type Proc struct {
	node       *Node
	pid        int
	totalPages int
	program    []Op
	pos        int
	seed       uint64

	mu    sync.Mutex
	pages [][]byte // nil entry = page not stored on this node

	// Migrant-side paging state.
	originAddr string
	conn       net.Conn
	enc        *gob.Encoder
	dec        *gob.Decoder
	pre        *core.Prefetcher
	rtt        time.Duration
	checksum   uint64

	// Deputy-side completion signal.
	deputyDone     chan struct{}
	remoteChecksum uint64

	Stats Stats
}

// Stats counts the migrant's paging activity.
type Stats struct {
	FaultRequests int64 // batched requests to the origin (hard faults)
	DemandPages   int64
	PrefetchPages int64
	BytesFetched  int64
}

// Spawn creates a process on node with every page local and initialised to
// a deterministic pattern derived from seed.
func Spawn(node *Node, pid int, totalPages int, program []Op, seed uint64) *Proc {
	p := &Proc{
		node:       node,
		pid:        pid,
		totalPages: totalPages,
		program:    program,
		pages:      make([][]byte, totalPages),
		seed:       seed,
		deputyDone: make(chan struct{}),
		checksum:   fnvSeed(seed),
	}
	for i := range p.pages {
		p.pages[i] = initialPage(i, seed)
	}
	node.mu.Lock()
	node.procs[pid] = p
	node.mu.Unlock()
	return p
}

// initialPage builds page i's initial contents.
func initialPage(i int, seed uint64) []byte {
	data := make([]byte, PageSize)
	x := seed ^ uint64(i)*0x9e3779b97f4a7c15
	for j := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		data[j] = byte(x)
	}
	return data
}

func fnvSeed(seed uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// takePage removes and returns a page's data, or nil if not stored here.
func (p *Proc) takePage(page int) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if page < 0 || page >= len(p.pages) {
		return nil
	}
	d := p.pages[page]
	p.pages[page] = nil
	return d
}

// hasPage reports whether the page is stored locally.
func (p *Proc) hasPage(page int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pages[page] != nil
}

// apply executes one op against local memory; the page must be local.
func (p *Proc) apply(op Op) {
	p.mu.Lock()
	data := p.pages[op.Page]
	p.mu.Unlock()
	if data == nil {
		panic(fmt.Sprintf("emu: op on non-local page %d", op.Page))
	}
	if op.Write {
		for j := 0; j < len(data); j += 64 {
			data[j] ^= op.Val
		}
		return
	}
	// Reads fold the page into the running checksum so read ordering and
	// page contents both matter for the integrity comparison.
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(p.checksum >> (8 * i))
	}
	h.Write(b[:])
	h.Write(data[:128])
	p.checksum = h.Sum64()
}

// RunLocal executes the remaining program entirely locally and returns the
// final memory checksum. It is the never-migrated baseline.
func (p *Proc) RunLocal() uint64 {
	for ; p.pos < len(p.program); p.pos++ {
		p.apply(p.program[p.pos])
	}
	return p.MemoryChecksum()
}

// Step executes up to k ops locally (pre-migration phase).
func (p *Proc) Step(k int) {
	for i := 0; i < k && p.pos < len(p.program); i++ {
		p.apply(p.program[p.pos])
		p.pos++
	}
}

// MemoryChecksum hashes all locally stored pages plus the read-fold state.
// After a completed run that touched every page, memory is fully local and
// the checksum is comparable across migrated and non-migrated executions.
func (p *Proc) MemoryChecksum() uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(p.checksum >> (8 * i))
	}
	h.Write(b[:])
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, data := range p.pages {
		if data != nil {
			h.Write(data)
		} else {
			h.Write([]byte{0xff, 0x00})
		}
	}
	return h.Sum64()
}

// MigrateOptions configures a live migration.
type MigrateOptions struct {
	// Prefetch enables AMPoM; otherwise the migrant demand-pages only
	// (the NoPrefetch scheme).
	Prefetch bool
	// Config tunes the prefetcher; zero value takes paper defaults.
	Config core.Config
}

// Migrate freezes the process, ships the freeze payload (PCB, program
// counter, the three currently relevant pages, and implicitly the MPT — the
// page-presence map travels as the carried-page keys plus TotalPages), and
// resumes it on the destination node, which demand-pages the rest from this
// node. It blocks until the migrant finishes its program and returns the
// migrant's final memory checksum.
func Migrate(p *Proc, destAddr string, opts MigrateOptions) (uint64, error) {
	// Freeze: capture the three "currently accessed" pages — the current
	// op's page plus the first and last pages standing in for code and
	// stack.
	carried := map[int][]byte{}
	carry := func(page int) {
		if data := p.takePage(page); data != nil {
			carried[page] = data
		}
	}
	if p.pos < len(p.program) {
		carry(p.program[p.pos].Page)
	}
	carry(0)
	carry(p.totalPages - 1)

	conn, err := net.Dial("tcp", destAddr)
	if err != nil {
		return 0, fmt.Errorf("emu: migrate dial: %w", err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&wire{
		Type: msgMigrate, PID: p.pid, TotalPages: p.totalPages,
		ProgramPos: p.pos, Carried: carried, Program: p.program, Seed: p.seed,
		Checksum: p.checksum, // the read-fold state travels with the PCB
	}); err != nil {
		return 0, fmt.Errorf("emu: migrate send: %w", err)
	}
	var ack wire
	if err := dec.Decode(&ack); err != nil {
		return 0, fmt.Errorf("emu: migrate ack: %w", err)
	}

	// The origin instance becomes the deputy; tell the destination to
	// resume the migrant, pointing it back here for remote paging.
	cfg := opts.Config
	if opts.Prefetch {
		// Validate eagerly so a bad config fails the migration, not the
		// remote executor.
		if _, err := core.New(cfg, int64(p.totalPages)); err != nil {
			return 0, err
		}
	}
	if err := enc.Encode(&wire{
		Type: msgResume, PID: p.pid,
		OriginAddr: p.node.Addr(), Prefetch: opts.Prefetch, PrefetchCfg: cfg,
	}); err != nil {
		return 0, fmt.Errorf("emu: resume send: %w", err)
	}

	<-p.deputyDone
	return p.remoteChecksum, nil
}

// runMigrant executes the remaining program at the destination, paging
// missing pages from the origin, then reports completion to the deputy.
func (p *Proc) runMigrant() {
	if err := p.dialOrigin(); err != nil {
		panic(fmt.Sprintf("emu: migrant pager: %v", err))
	}
	defer p.conn.Close()

	for ; p.pos < len(p.program); p.pos++ {
		op := p.program[p.pos]
		if !p.hasPage(op.Page) {
			if err := p.fault(op.Page); err != nil {
				panic(fmt.Sprintf("emu: fault on page %d: %v", op.Page, err))
			}
		}
		p.apply(op)
	}
	sum := p.MemoryChecksum()
	_ = p.enc.Encode(&wire{Type: msgDone, PID: p.pid, Checksum: sum})
}

// dialOrigin opens the paging connection and measures the initial RTT.
func (p *Proc) dialOrigin() error {
	conn, err := net.Dial("tcp", p.originAddr)
	if err != nil {
		return err
	}
	p.conn = conn
	p.enc = gob.NewEncoder(conn)
	p.dec = gob.NewDecoder(conn)

	start := time.Now()
	if err := p.enc.Encode(&wire{Type: msgPing, Token: 1}); err != nil {
		return err
	}
	var pong wire
	if err := p.dec.Decode(&pong); err != nil {
		return err
	}
	p.rtt = time.Since(start)
	if p.rtt <= 0 {
		p.rtt = time.Microsecond
	}
	return nil
}

// fault fetches the faulted page (and, with AMPoM, its dependent zone) from
// the origin in one batched request.
func (p *Proc) fault(page int) error {
	req := []int{page}
	if p.pre != nil {
		p.pre.RecordFault(memory.PageNum(page), simtime.Time(time.Now().UnixNano()), 1)
		a := p.pre.Analyze(core.Estimates{
			RTT:          simtime.FromStd(p.rtt),
			PageTransfer: simtime.FromStd(p.rtt / 4),
		})
		for _, z := range a.Zone {
			if !p.hasPage(int(z)) && int(z) != page {
				req = append(req, int(z))
			}
		}
	}
	p.Stats.FaultRequests++
	if err := p.enc.Encode(&wire{Type: msgPageReq, PID: p.pid, Pages: req, Demand: true}); err != nil {
		return err
	}
	prefetched := 0
	for {
		var resp wire
		if err := p.dec.Decode(&resp); err != nil {
			return err
		}
		if resp.Type != msgPageResp {
			return fmt.Errorf("emu: unexpected %v during paging", resp.Type)
		}
		if resp.Page < 0 {
			break // batch terminator
		}
		p.mu.Lock()
		p.pages[resp.Page] = resp.Data
		p.mu.Unlock()
		p.Stats.BytesFetched += int64(len(resp.Data))
		if resp.Page == page {
			p.Stats.DemandPages++
		} else {
			prefetched++
		}
	}
	p.Stats.PrefetchPages += int64(prefetched)
	if p.pre != nil {
		p.pre.NotePrefetched(prefetched)
	}
	if !p.hasPage(page) {
		return fmt.Errorf("emu: demand page %d not served", page)
	}
	return nil
}

// LocalPages counts pages currently stored on this node.
func (p *Proc) LocalPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, d := range p.pages {
		if d != nil {
			n++
		}
	}
	return n
}
