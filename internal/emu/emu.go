// Package emu is a live, userland emulation of the paper's lightweight
// process migration: real nodes listening on real TCP sockets, hosting
// processes whose memory is real 4 KiB byte pages, migrating by shipping
// the PCB, the three currently accessed pages and the master page table,
// and remote-paging the rest from the origin on demand — with the same
// AMPoM prefetcher (internal/core) deciding the dependent zone from
// measured round-trip times.
//
// The discrete-event simulator (internal/migrate) is what reproduces the
// paper's numbers; this package demonstrates the protocol end to end
// outside simulated time, and its tests verify that migration preserves
// memory contents bit-for-bit.
package emu

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"ampom/internal/core"
)

// PageSize is the emulated page size in bytes.
const PageSize = 4096

// msgType discriminates wire messages.
type msgType uint8

const (
	msgMigrate  msgType = iota + 1 // origin → destination: freeze payload
	msgResume                      // origin → destination: start executing
	msgPageReq                     // migrant → origin deputy
	msgPageResp                    // origin deputy → migrant
	msgPing                        // RTT probe
	msgPong
	msgDone // destination → origin: process finished (checksum piggybacked)
)

// wire is the single message envelope exchanged between nodes.
type wire struct {
	Type msgType

	// Migration payload.
	PID        int
	TotalPages int
	ProgramPos int
	Carried    map[int][]byte // the three freeze-time pages
	Program    []Op
	Seed       uint64

	// Resume payload.
	OriginAddr  string
	Prefetch    bool
	PrefetchCfg core.Config

	// Paging payload.
	Pages  []int  // requested page numbers (demand first)
	Page   int    // served page number
	Data   []byte // served page data
	Demand bool

	// Ping payload.
	Token uint64

	// Done payload.
	Checksum uint64
}

// Op is one instruction of an emulated process's program: touch page Page;
// if Write, mutate it with Val, otherwise fold it into the running
// checksum.
type Op struct {
	Page  int
	Write bool
	Val   byte
}

// SequentialProgram returns a program sweeping all pages in order `passes`
// times, writing on the first pass.
func SequentialProgram(pages, passes int) []Op {
	var ops []Op
	for p := 0; p < passes; p++ {
		for i := 0; i < pages; i++ {
			ops = append(ops, Op{Page: i, Write: p == 0, Val: byte(i + p)})
		}
	}
	return ops
}

// StridedProgram returns a program touching pages with the given stride
// pattern, wrapping around the footprint.
func StridedProgram(pages, count, stride int) []Op {
	var ops []Op
	p := 0
	for i := 0; i < count; i++ {
		ops = append(ops, Op{Page: p, Write: i%3 == 0, Val: byte(i)})
		p = (p + stride) % pages
	}
	return ops
}

// Node is one emulated cluster machine: a TCP listener hosting processes
// and serving deputy page requests for processes that migrated away.
type Node struct {
	name string
	ln   net.Listener

	mu    sync.Mutex
	procs map[int]*Proc

	wg     sync.WaitGroup
	closed bool
}

// Listen starts a node on addr (use "127.0.0.1:0" for tests).
func Listen(name, addr string) (*Node, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("emu: node %s: %w", name, err)
	}
	n := &Node{name: name, ln: ln, procs: make(map[int]*Proc)}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Close stops the listener and waits for connection handlers to drain.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(conn)
		}()
	}
}

// serve handles one inbound connection until EOF.
func (n *Node) serve(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var m wire
		if err := dec.Decode(&m); err != nil {
			return
		}
		switch m.Type {
		case msgPing:
			if enc.Encode(&wire{Type: msgPong, Token: m.Token}) != nil {
				return
			}
		case msgMigrate:
			n.acceptMigration(&m)
			if enc.Encode(&wire{Type: msgDone, PID: m.PID}) != nil {
				return
			}
		case msgResume:
			if err := n.resume(&m); err != nil {
				return
			}
		case msgPageReq:
			if err := n.servePages(enc, &m); err != nil {
				return
			}
		case msgDone:
			n.finishDeputy(m.PID, m.Checksum)
		default:
			return
		}
	}
}

// servePages answers a deputy page request: every requested page still
// stored here is sent (demand page first, as ordered by the requester) and
// deleted locally — ownership moves with the data (paper §2.2).
func (n *Node) servePages(enc *gob.Encoder, m *wire) error {
	n.mu.Lock()
	proc := n.procs[m.PID]
	n.mu.Unlock()
	if proc == nil {
		return fmt.Errorf("emu: page request for unknown pid %d", m.PID)
	}
	for i, p := range m.Pages {
		data := proc.takePage(p)
		if data == nil {
			continue // already transferred: benign cross-on-the-wire race
		}
		resp := wire{Type: msgPageResp, PID: m.PID, Page: p, Data: data, Demand: i == 0 && m.Demand}
		if err := enc.Encode(&resp); err != nil {
			return err
		}
	}
	// Terminator so the migrant knows the batch is complete.
	return enc.Encode(&wire{Type: msgPageResp, PID: m.PID, Page: -1})
}

// acceptMigration installs an inbound migrant; it stays frozen until the
// origin's resume message arrives.
func (n *Node) acceptMigration(m *wire) {
	p := &Proc{
		node:       n,
		pid:        m.PID,
		totalPages: m.TotalPages,
		pages:      make([][]byte, m.TotalPages),
		program:    m.Program,
		pos:        m.ProgramPos,
		seed:       m.Seed,
		checksum:   m.Checksum,
	}
	for pageNum, data := range m.Carried {
		p.pages[pageNum] = data
	}
	n.mu.Lock()
	n.procs[m.PID] = p
	n.mu.Unlock()
}

// resume starts a previously installed migrant's executor.
func (n *Node) resume(m *wire) error {
	p := n.Proc(m.PID)
	if p == nil {
		return fmt.Errorf("emu: resume of unknown pid %d", m.PID)
	}
	p.originAddr = m.OriginAddr
	if m.Prefetch {
		pre, err := core.New(m.PrefetchCfg, int64(p.totalPages))
		if err != nil {
			return err
		}
		p.pre = pre
	}
	go p.runMigrant()
	return nil
}

// finishDeputy releases deputy state once the migrant reports completion.
func (n *Node) finishDeputy(pid int, checksum uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p := n.procs[pid]; p != nil {
		p.remoteChecksum = checksum
		close(p.deputyDone)
	}
}

// Proc returns the hosted process with the given pid, if any.
func (n *Node) Proc(pid int) *Proc {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.procs[pid]
}
