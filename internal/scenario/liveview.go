// Incremental cluster-view maintenance. The scenario runner used to
// rebuild its ground-truth view from scratch before every balancing
// decision — an O(nodes+procs) scan, an O(n log n) re-sort of the load
// order, and an O(procs) filter per source node — which made view
// bookkeeping, not events, the budget of the large fabric presets. The
// liveView replaces those scans with aggregates maintained O(1) at each
// state transition (arrival, completion, freeze, unfreeze, migration,
// balloon, CPU churn):
//
//   - per-node resident counts, runnable counts and resident memory, the
//     exact sums the full rebuild produced (integer arithmetic, so the
//     incremental totals are bit-identical to a recompute);
//   - per-node runnable process lists in ascending id order, the exact
//     sequence candidatesOn used to extract by filtering the global slice;
//   - derived NodeView rows plus the descending-load source order, kept
//     sorted by a bounded repair: events mark their nodes dirty, and the
//     next balance round re-derives only the dirty rows and re-inserts
//     them into the order instead of re-sorting every node.
//
// The contract is observational equivalence: every row, every ordering and
// every aggregate a balance round reads is identical to what the full
// rebuild would have produced at the same instant (the property
// TestLiveViewMatchesRebuild locks). The payoff is that balance rounds and
// gossip probes cost O(dirty + decisions), not O(cluster), which is what
// lets the presets grow from 512 to 4096 nodes inside the same event
// budget.
package scenario

import (
	"sort"

	"ampom/internal/cluster"
	"ampom/internal/sched"
)

// liveView is the incrementally maintained ground-truth cluster state of
// one policy run.
type liveView struct {
	nodes []*cluster.Node // CPUScale is read live at row refresh
	capMB int64

	// Aggregates, maintained O(1) per event. live counts the arrived,
	// unfinished processes resident on a node (frozen migrants belong to
	// their destination, as in the full rebuild); runnable excludes frozen
	// processes; mem sums resident footprints.
	live     []int
	runnable []int
	mem      []int64

	// runnableOn holds each node's runnable processes in ascending id
	// order — the iteration order candidatesOn's global filter preserved.
	runnableOn [][]*proc

	// liveOn holds each node's arrived, unfinished residents in ascending
	// id order — runnableOn plus the frozen in-migrants, which live on
	// their destination like the live/mem aggregates. The quantum ticks
	// iterate runnableOn; liveOn serves the per-node scans that must see
	// frozen residents too (balloon churn), so neither ever walks the
	// global process slice.
	liveOn [][]*proc

	// rows are the derived NodeView rows; order is the node index sequence
	// sorted by descending Load, ascending index on ties (the NodesByLoad
	// order). Both are repaired lazily from the dirty set.
	rows  []sched.NodeView
	order []int

	// The dirty set is split per shard so that concurrent shard phases of a
	// sharded run never share an append target: touch(i) records i on the
	// list of the shard owning node i, and only that shard's worker (or the
	// barrier-separated global phase) ever touches node i. refresh drains
	// the lists in shard order; the result is order-independent because row
	// derivation is per node and the load order is a strict total order.
	// Sequential runs have one shard, i.e. exactly one list.
	dirty   []bool
	dirtyBy [][]int
	shardOf []int // nil: every node on shard 0
}

// newLiveView builds the zero-process state: every row at load zero, the
// source order the identity (what sorting an all-zero cluster yields).
// shardOf maps node → shard over shards shards for sharded runs; nil (with
// shards <= 1) keeps the whole dirty set on one list.
func newLiveView(nodes []*cluster.Node, capMB int64, shardOf []int, shards int) *liveView {
	n := len(nodes)
	if shards < 1 {
		shards = 1
	}
	lv := &liveView{
		nodes:      nodes,
		capMB:      capMB,
		live:       make([]int, n),
		runnable:   make([]int, n),
		mem:        make([]int64, n),
		runnableOn: make([][]*proc, n),
		liveOn:     make([][]*proc, n),
		rows:       make([]sched.NodeView, n),
		order:      make([]int, n),
		dirty:      make([]bool, n),
		dirtyBy:    make([][]int, shards),
		shardOf:    shardOf,
	}
	lv.dirtyBy[0] = make([]int, 0, n)
	for i := range lv.rows {
		lv.rows[i] = sched.NodeView{CPUScale: nodes[i].CPUScale, CapacityMB: capMB}
		lv.order[i] = i
	}
	return lv
}

// touch marks node i's row (and its position in the load order) stale.
// CPU-scale churn calls it directly; every other event reaches it through
// the transition hooks below.
func (lv *liveView) touch(i int) {
	if !lv.dirty[i] {
		lv.dirty[i] = true
		s := 0
		if lv.shardOf != nil {
			s = lv.shardOf[i]
		}
		lv.dirtyBy[s] = append(lv.dirtyBy[s], i)
	}
}

// dirtyCount sums the queued dirty marks across shards.
func (lv *liveView) dirtyCount() int {
	n := 0
	for _, list := range lv.dirtyBy {
		n += len(list)
	}
	return n
}

// arrive admits p to its node: resident, runnable, memory and the
// candidate list.
func (lv *liveView) arrive(p *proc) {
	i := p.node
	lv.live[i]++
	lv.runnable[i]++
	lv.mem[i] += p.footprintMB
	lv.runnableOn[i] = insertByID(lv.runnableOn[i], p)
	lv.liveOn[i] = insertByID(lv.liveOn[i], p)
	lv.touch(i)
}

// depart retires a completing process. Completion only happens to runnable
// processes (the quantum loop skips frozen ones), so the candidate list
// always holds p.
func (lv *liveView) depart(p *proc) {
	i := p.node
	lv.live[i]--
	lv.runnable[i]--
	lv.mem[i] -= p.footprintMB
	lv.runnableOn[i] = removeByID(lv.runnableOn[i], p)
	lv.liveOn[i] = removeByID(lv.liveOn[i], p)
	lv.touch(i)
}

// freeze moves a migrating process from src to dst at freeze time: the
// resident aggregates transfer immediately (a frozen migrant counts
// towards its destination, as the balancer view always had it), while
// runnability — and candidacy — lapse until unfreeze.
func (lv *liveView) freeze(p *proc, src, dst int) {
	lv.live[src]--
	lv.runnable[src]--
	lv.mem[src] -= p.footprintMB
	lv.runnableOn[src] = removeByID(lv.runnableOn[src], p)
	lv.liveOn[src] = removeByID(lv.liveOn[src], p)
	lv.live[dst]++
	lv.mem[dst] += p.footprintMB
	lv.liveOn[dst] = insertByID(lv.liveOn[dst], p)
	lv.touch(src)
	lv.touch(dst)
}

// unfreeze restores a migrant's runnability on its destination. The
// visible row is untouched — resident count, load and memory already moved
// at freeze time — so no dirtying is needed; only the quantum shares and
// the candidate list change.
func (lv *liveView) unfreeze(p *proc) {
	i := p.node
	lv.runnable[i]++
	lv.runnableOn[i] = insertByID(lv.runnableOn[i], p)
}

// suspend parks a runnable resident off the tick and candidate lists
// without departing it: its node crashed (killing the process's progress)
// or it arrived on a crashed node, and it idles, still resident, until the
// node recovers. The visible row is untouched — load tracks the resident
// count, and a suspended process still occupies its node's memory and
// queue slot, exactly what a recovering balancer should see.
func (lv *liveView) suspend(p *proc) {
	i := p.node
	lv.runnable[i]--
	lv.runnableOn[i] = removeByID(lv.runnableOn[i], p)
}

// failBack reverses an interrupted migration's freeze-time transfer: the
// resident aggregates move from the dead destination back to the source.
// Runnability is the caller's decision — the migrant resumes at once on a
// live source but stays suspended (still frozen) on a crashed one.
func (lv *liveView) failBack(p *proc, dst, src int) {
	lv.live[dst]--
	lv.mem[dst] -= p.footprintMB
	lv.liveOn[dst] = removeByID(lv.liveOn[dst], p)
	lv.live[src]++
	lv.mem[src] += p.footprintMB
	lv.liveOn[src] = insertByID(lv.liveOn[src], p)
	lv.touch(dst)
	lv.touch(src)
}

// memDelta applies a resident-footprint change (balloon churn) to p's
// current node — frozen or runnable, the footprint lives where the process
// is resident.
func (lv *liveView) memDelta(i int, delta int64) {
	lv.mem[i] += delta
	lv.touch(i)
}

// refresh re-derives the dirty rows from the aggregates and repairs their
// positions in the load order, leaving rows and order exactly as a full
// rebuild plus sort would. With an empty dirty set it is a no-op — the
// usual case between events.
func (lv *liveView) refresh() {
	if lv.dirtyCount() == 0 {
		return
	}
	for _, list := range lv.dirtyBy {
		for _, i := range list {
			scale := lv.nodes[i].CPUScale
			lv.rows[i] = sched.NodeView{
				Procs:      lv.live[i],
				CPUScale:   scale,
				Load:       float64(lv.live[i]) / scale,
				UsedMemMB:  lv.mem[i],
				CapacityMB: lv.capMB,
				QueueLen:   lv.live[i],
			}
		}
	}
	lv.repairOrder()
	for s, list := range lv.dirtyBy {
		for _, i := range list {
			lv.dirty[i] = false
		}
		lv.dirtyBy[s] = list[:0]
	}
}

// before is the source-order key: descending load, ascending node index on
// ties — a strict total order, so the sorted sequence is unique and equal
// to what the stable full sort produced.
func (lv *liveView) before(a, b int) bool {
	la, lb := lv.rows[a].Load, lv.rows[b].Load
	if la != lb {
		return la > lb
	}
	return a < b
}

// repairOrder removes the dirty nodes from the order and re-inserts each
// at its sorted position — O(dirty × n) worst case but O(n) in practice,
// against the O(n log n) comparison sort the full rebuild paid per round.
func (lv *liveView) repairOrder() {
	k := 0
	for _, n := range lv.order {
		if !lv.dirty[n] {
			lv.order[k] = n
			k++
		}
	}
	lv.order = lv.order[:k]
	for _, list := range lv.dirtyBy {
		for _, n := range list {
			at := sort.Search(len(lv.order), func(j int) bool { return lv.before(n, lv.order[j]) })
			lv.order = append(lv.order, 0)
			copy(lv.order[at+1:], lv.order[at:])
			lv.order[at] = n
		}
	}
}

// insertByID inserts p into a list kept in ascending id order.
func insertByID(list []*proc, p *proc) []*proc {
	at := sort.Search(len(list), func(j int) bool { return list[j].t.id > p.t.id })
	list = append(list, nil)
	copy(list[at+1:], list[at:])
	list[at] = p
	return list
}

// removeByID removes p from a list kept in ascending id order.
func removeByID(list []*proc, p *proc) []*proc {
	at := sort.Search(len(list), func(j int) bool { return list[j].t.id >= p.t.id })
	copy(list[at:], list[at+1:])
	list[len(list)-1] = nil
	return list[:len(list)-1]
}
