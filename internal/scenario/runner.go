package scenario

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/fabric"
	"ampom/internal/infod"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/prng"
	"ampom/internal/sched"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// DefaultPolicies lists every registered balancing policy in registry
// order — the set a canonical Spec with no explicit Policies runs under.
// The no-migration baseline is the row slowdown ratios divide by.
func DefaultPolicies() []string { return sched.Names() }

// procTemplate is one pre-drawn process. Templates are drawn once per
// (Spec, seed) and replayed identically under every policy, so cross-policy
// comparisons hold the workload fixed — the same discipline the campaign
// engine applies to cross-scheme migration experiments.
type procTemplate struct {
	id          int
	demand      simtime.Duration
	footprintMB int64
	mix         MixKind
	node        int
	arriveAt    simtime.Time
	traceSeed   uint64
}

// buildWorkload draws the node CPU scales and every process (including the
// churn bursts) from one PRNG stream in a fixed order.
func buildWorkload(spec Spec, seed uint64) (scales []float64, procs []procTemplate) {
	rng := prng.New(seed)

	// Node tiers: the slow and fast nodes are scattered deterministically.
	scales = make([]float64, spec.Nodes)
	for i := range scales {
		scales[i] = 1
	}
	nSlow := int(spec.SlowFrac * float64(spec.Nodes))
	nFast := int(spec.FastFrac * float64(spec.Nodes))
	perm := rng.Perm(spec.Nodes)
	for i := 0; i < nSlow && i < len(perm); i++ {
		scales[perm[i]] = spec.SlowScale
	}
	for i := 0; i < nFast && nSlow+i < len(perm); i++ {
		scales[perm[nSlow+i]] = spec.FastScale
	}

	mix := spec.sortedMix()
	draw := func(id, node int, at simtime.Time) procTemplate {
		// The PRNG draw order (demand, footprint, mix, trace seed) is
		// golden-locked; keep it when editing.
		demand := simtime.Duration(float64(spec.MeanCompute) * (0.25 + 1.5*rng.Float64()))
		// mean/2 + Uint64n(mean) is in [mean/2, 3·mean/2) — strictly
		// positive except at the degenerate mean of 1 MB, where 0/2 +
		// Uint64n(1) draws a 0 MB process that mem-aware policies would
		// migrate for free. Clamp only that case so every other mean keeps
		// its historical draws (goldens depend on them).
		footprint := spec.MeanFootprintMB/2 + int64(rng.Uint64n(uint64(spec.MeanFootprintMB)))
		if footprint < 1 {
			footprint = 1
		}
		t := procTemplate{
			id:          id,
			demand:      demand,
			footprintMB: footprint,
			mix:         drawMix(mix, rng),
			node:        node,
			arriveAt:    at,
			traceSeed:   rng.Uint64(),
		}
		return t
	}
	place := func(i int) int {
		if spec.Placement == PlaceRoundRobin {
			return i % spec.Nodes
		}
		if rng.Float64() < spec.Skew {
			return 0
		}
		return rng.Intn(spec.Nodes)
	}

	var at simtime.Time
	for i := 0; i < spec.Procs; i++ {
		if spec.Arrival == ArrivalPoisson && i > 0 {
			at = at.Add(simtime.Duration(rng.ExpFloat64() * float64(spec.MeanInterarrival)))
		}
		procs = append(procs, draw(i, place(i), at))
	}
	for _, c := range spec.Churn {
		if c.Kind != ChurnBurst {
			continue
		}
		for i := 0; i < c.Procs; i++ {
			procs = append(procs, draw(len(procs), c.Node, simtime.Time(c.At)))
		}
	}
	return scales, procs
}

// proc is one process's live state during a policy run.
type proc struct {
	t           procTemplate
	pcb         *cluster.PCB
	remaining   simtime.Duration
	footprintMB int64 // live footprint: balloon churn grows it mid-run
	node        int
	arrived     bool
	frozen      bool
	done        bool

	// Failure-plane state. from is the source node of the migration in
	// progress (the fail-back target while frozen); seq is bumped at every
	// migrate and fail-back, so a payload delivery or scheduled unfreeze
	// carrying a stale seq is a no-op; suspended parks the process off the
	// tick lists while its node is crashed; restoring marks the window
	// between payload delivery and unfreeze, when the migrant is already at
	// its destination and only a crash of that destination can bounce it.
	from      int
	seq       uint64
	suspended bool
	restoring bool

	freezeStart simtime.Time
	finishAt    simtime.Time
	migrations  int
}

// migMsg is the freeze-time payload of one migration in flight across the
// interconnect; the fabric routes it along the topology path. seq snapshots
// the migrant's migration sequence at send time: a fail-back bumps the
// sequence, so a payload that outlives its migration (crash or link failure
// bounced the migrant while the bytes were in flight) arrives stale and is
// ignored.
type migMsg struct {
	pid   int
	seq   uint64
	dest  int
	bytes int64
}

// clusterSim is one policy's end-to-end simulation.
type clusterSim struct {
	spec  Spec
	pol   sched.BalancerPolicy
	prand *prng.Source // policy-decision stream (probabilistic policies)

	eng   *sim.Engine
	nodes []*cluster.Node
	ic    fabric.Interconnect

	// Sharded runs: the per-shard engines (each owning a contiguous band
	// of racks), the node → shard map and the conservative window
	// coordinator. An effective shard count of 1 leaves them nil and runs
	// the classic sequential engine — and every shard count produces a
	// byte-identical report (the contract the shard goldens pin).
	shards  int
	shardOf []int
	engines []*sim.Engine
	group   *sim.ShardGroup

	// Per-rack tick decomposition (two-tier fabrics): the quantum tick is
	// not one whole-cluster event but one sub-event per rack band plus a
	// global epilogue. Bands are rack-sized node ranges fixed by the spec —
	// never by the shard count — so the event population, and with it
	// st.Events and every report byte, is identical at every shard count.
	// bandEng[b] is the engine owning band b's nodes (the global engine on
	// sequential runs); doneBy[b] accumulates band b's completions for the
	// epilogue to aggregate. Star and flat fabrics keep the monolithic
	// ticker (bands == 0), which pins the legacy goldens.
	bands   int
	bandLo  []int // bandLo[b] is band b's first node; band b ends at bandLo[b+1]
	bandEng []*sim.Engine
	doneBy  []int

	procs   []*proc
	doneN   int
	horizon simtime.Time

	// lv is the incrementally maintained ground-truth view: per-node
	// aggregates, candidate lists and the descending-load source order,
	// updated O(1) at every arrival/completion/freeze/migration/balloon
	// event instead of rebuilt O(nodes+procs) per balance decision.
	lv *liveView

	// viewScratch and gvScratch are the reusable row buffers handed to
	// policies: the ground-truth copy, fully re-copied from the canonical
	// rows at every balance round, and the per-source gossip view,
	// maintained incrementally — gvScratch is a persistent template of
	// Unknown rows into which each hand-off writes only the source's exact
	// row plus the rows its daemon actually knows (gvWritten records them,
	// and the next hand-off restores exactly those back to the template),
	// so a hand-off costs O(known set), not O(nodes). Policies do not
	// retain a view past ShouldMigrate (the sched.BalancerPolicy
	// contract); because nothing handed out survives a round boundary
	// unrewritten, a policy that breaks the contract and scribbles on a
	// retained slice still cannot corrupt the next round — the canonical
	// rows live in lv and are never handed out.
	viewScratch []sched.NodeView
	gvScratch   []sched.NodeView
	gvWritten   []int

	// llBase and llGossip are the LeastLoaded memo cells of the two
	// hand-off views, reset at each hand-off.
	llBase, llGossip int

	// candScratch is the per-decision candidate reuse buffer.
	candScratch []*proc

	// crashed marks the nodes currently down. Crash and recovery are global
	// (merge-phase) events; shard events only read the flags, and the window
	// barriers order those reads against the writes, so every shard count
	// observes identical node liveness at identical virtual instants.
	crashed []bool

	// checkView, when set (tests only), observes every balance round's
	// ground-truth view right after the incremental refresh — the hook the
	// live-view-vs-rebuild property test and the retention tests use.
	checkView func(base sched.View)

	st SchemeStats
}

// newClusterSim wires the cluster for a sequential run. See
// newClusterSimShards.
func newClusterSim(spec Spec, scales []float64, tmpl []procTemplate, pol sched.BalancerPolicy, seed uint64) *clusterSim {
	return newClusterSimShards(spec, scales, tmpl, pol, seed, 1)
}

// shardPlan resolves the effective shard count and the node → shard map
// for a spec. Sharding requires the two-tier fabric — shards own whole
// racks and exchange only through the core, the hop whose latency is the
// conservative lookahead — so every other topology (and a degenerate
// latency) clamps to the sequential count of 1. Racks map to shards in
// contiguous bands, at most one shard per rack.
func shardPlan(spec Spec, shards int) (int, []int) {
	f := spec.Fabric.Canonical()
	if shards <= 1 || f.Topology != fabric.KindTwoTier || spec.Network.LatencyOneWay <= 0 {
		return 1, nil
	}
	racks := (spec.Nodes + f.RackSize - 1) / f.RackSize
	if shards > racks {
		shards = racks
	}
	if shards <= 1 {
		return 1, nil
	}
	shardOf := make([]int, spec.Nodes)
	for i := range shardOf {
		shardOf[i] = (i / f.RackSize) * shards / racks
	}
	return shards, shardOf
}

// forceShardWorkers makes sharded runs use the goroutine-per-shard window
// pool even on a single-CPU host; the shard golden tests set it so the
// race detector exercises the real cross-goroutine handoff.
var forceShardWorkers = false

// shardWorkers reports whether sharded windows should run on goroutines.
// Both modes execute the identical schedule; inline execution just skips
// the goroutine overhead where no parallel hardware would repay it.
func shardWorkers() bool { return forceShardWorkers || runtime.GOMAXPROCS(0) > 1 }

// newClusterSimShards wires the cluster: nodes, the interconnect fabric
// with its monitoring plane, the migration payload handlers, arrivals,
// churn and the two tickers. With an effective shard count above 1 each
// rack band's nodes, links and gossip daemons live on a shard engine and
// the run advances through conservative lookahead windows; the global
// engine keeps everything cross-shard (ticks, balancing, migrations).
func newClusterSimShards(spec Spec, scales []float64, tmpl []procTemplate, pol sched.BalancerPolicy, seed uint64, shards int) *clusterSim {
	c := &clusterSim{
		spec: spec,
		pol:  pol,
		// Each policy draws decisions from its own stream, a pure function
		// of (scenario seed, policy name), so adding a policy to the set
		// never perturbs another policy's run.
		prand:   prng.New(seed ^ fnvHash(pol.Name())),
		eng:     sim.New(),
		horizon: simtime.Time(spec.MaxSimTime),
		st:      SchemeStats{Policy: pol.Name()},
	}

	c.shards, c.shardOf = shardPlan(spec, shards)
	if c.shards > 1 {
		c.engines = make([]*sim.Engine, c.shards)
		for i := range c.engines {
			c.engines[i] = sim.New()
		}
		c.group = sim.NewShardGroup(c.eng, c.engines, spec.Network.LatencyOneWay, shardWorkers())
	}
	engOf := func(node int) *sim.Engine {
		if c.group == nil {
			return c.eng
		}
		return c.engines[c.shardOf[node]]
	}

	c.nodes = make([]*cluster.Node, spec.Nodes)
	for i := range c.nodes {
		c.nodes[i] = cluster.NewNode(engOf(i), fmt.Sprintf("n%03d", i), scales[i])
		node := i
		c.nodes[i].Handle(func(payload any) bool {
			m, ok := payload.(migMsg)
			if !ok {
				return false
			}
			c.deliver(node, m)
			return true
		})
	}
	c.lv = newLiveView(c.nodes, spec.NodeMemMB, c.shardOf, c.shards)
	c.crashed = make([]bool, spec.Nodes)

	// The interconnect: topology, per-link queues and the monitoring
	// plane (paired daemons on the star, gossip on switched fabrics). Its
	// internal seed streams derive from the scenario seed, so every
	// policy observes identical daemon behaviour.
	f := spec.Fabric.Canonical()
	var shcfg *fabric.Sharding
	if c.group != nil {
		shcfg = &fabric.Sharding{
			ShardOf: c.shardOf,
			Engines: c.engines,
			Group:   c.group,
			// Migration payloads restore through both endpoints' daemons,
			// so their final delivery belongs to the global phase.
			GlobalPayload: func(p any) bool { _, ok := p.(migMsg); return ok },
		}
	}
	c.ic = fabric.Build(c.eng, c.nodes, fabric.Config{
		Kind:           f.Topology,
		RackSize:       f.RackSize,
		Oversub:        f.Oversub,
		GossipFanout:   f.GossipFanout,
		GossipPeriod:   f.GossipPeriod,
		GossipWindow:   f.GossipWindow,
		Network:        spec.Network,
		BackgroundLoad: spec.BackgroundLoad,
		Seed:           seed,
		Sharding:       shcfg,
	})
	if c.group != nil {
		// The group's window bound and the fabric's declared minimum
		// cross-shard latency must agree, or conservative execution is
		// unsound.
		lk := c.ic.(interface{ Lookahead() simtime.Duration }).Lookahead()
		if lk != c.group.Lookahead() {
			panic(fmt.Sprintf("scenario: fabric lookahead %v != shard window %v", lk, c.group.Lookahead()))
		}
	}
	for i := 0; i < spec.Nodes; i++ {
		if g := c.ic.Gossip(i); g != nil {
			g.SetProbe(c.probeFor(i))
		}
	}

	c.procs = make([]*proc, len(tmpl))
	for i, t := range tmpl {
		p := &proc{
			t:           t,
			pcb:         cluster.NewPCB(t.id, fmt.Sprintf("p%03d", t.id), c.nodes[t.node]),
			remaining:   t.demand,
			footprintMB: t.footprintMB,
			node:        t.node,
		}
		c.procs[i] = p
		// Arrival is a shard event: it touches only the template node's
		// slice of the live view (a process cannot have migrated before it
		// arrived).
		engOf(t.node).At(t.arriveAt, func() {
			p.arrived = true
			c.lv.arrive(p)
			// An arrival on a crashed node parks until recovery — the node
			// admits the process (it is resident) but cannot run it. The
			// flags are written only by barrier-separated global events.
			if c.crashed[p.node] {
				p.suspended = true
				p.pcb.State = cluster.ProcFrozen
				c.lv.suspend(p)
			}
		})
	}

	for _, ev := range spec.Churn {
		ev := ev
		switch ev.Kind {
		case ChurnSlowNode:
			c.eng.Schedule(ev.At, func() {
				c.nodes[ev.Node].CPUScale *= ev.Factor
				c.lv.touch(ev.Node)
				// A template (Unknown) row in the gossip-view scratch
				// carries the live CPU scale; written rows are restored
				// from the live nodes at the next hand-off anyway.
				if c.gvScratch != nil && c.gvScratch[ev.Node].Unknown {
					c.gvScratch[ev.Node].CPUScale = c.nodes[ev.Node].CPUScale
				}
			})
		case ChurnNetLoad:
			c.eng.Schedule(ev.At, func() { c.ic.SetBackgroundLoad(ev.Node, ev.Factor) })
		case ChurnBalloon:
			c.eng.Schedule(ev.At, func() { c.balloon(ev) })
		case ChurnBurst:
			// Burst processes were pre-drawn into the templates.
		case ChurnNodeCrash:
			c.eng.Schedule(ev.At, func() { c.crash(ev.Node) })
		case ChurnNodeRecover:
			c.eng.Schedule(ev.At, func() { c.recover(ev.Node) })
		case ChurnLinkDown:
			c.eng.Schedule(ev.At, func() { c.linkState(ev.Node, false) })
		case ChurnLinkUp:
			c.eng.Schedule(ev.At, func() { c.linkState(ev.Node, true) })
		}
	}

	if f.Topology == fabric.KindTwoTier && !forceMonolithicTick {
		// Per-rack tick decomposition. The band count follows the spec's
		// rack geometry, not the shard plan: a sequential run schedules the
		// same sub-events on its one engine, so every shard count replays
		// the identical event population.
		c.bands = (spec.Nodes + f.RackSize - 1) / f.RackSize
		c.bandLo = make([]int, c.bands+1)
		c.bandEng = make([]*sim.Engine, c.bands)
		c.doneBy = make([]int, c.bands)
		for b := 0; b < c.bands; b++ {
			c.bandLo[b] = b * f.RackSize
			c.bandEng[b] = engOf(c.bandLo[b])
		}
		c.bandLo[c.bands] = spec.Nodes
		c.scheduleBandTicks(simtime.Time(spec.Quantum))
	} else {
		sim.NewTicker(c.eng, spec.Quantum, c.tick)
	}
	if pol.Name() != sched.BaselineName {
		sim.NewTicker(c.eng, spec.BalancePeriod, c.balance)
	}
	return c
}

// forceMonolithicTick (tests only) makes two-tier runs keep the
// single-event whole-cluster ticker instead of the per-band decomposition
// — the reference implementation the decomposition property test compares
// against.
var forceMonolithicTick = false

// fnvHash is FNV-1a over s — the per-policy stream discriminator.
func fnvHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// probeFor is node i's local load probe, sampled by its gossip daemon at
// every push round. The counts mirror the balancer view: frozen migrants
// belong to their destination node. The probe reads the live aggregates —
// O(1) where it used to scan every process per push round per node, the
// other half of the O(procs) bookkeeping the incremental view removes.
func (c *clusterSim) probeFor(i int) func() infod.LoadSample {
	return func() infod.LoadSample {
		s := infod.LoadSample{
			Queue:     c.lv.live[i],
			UsedMemMB: c.lv.mem[i],
		}
		s.Load = float64(s.Queue) / c.nodes[i].CPUScale
		return s
	}
}

// balloon grows the memory footprint of the largest live process on the
// event's node (ties to the lowest id) by the event factor — a data set
// expanding mid-run. With nothing live on the node the event is a no-op.
// The scan is the live view's per-node resident list, not the global
// process slice; it must be liveOn, not runnableOn, because a frozen
// in-migrant is a balloon target too (the footprint lives where the
// process is resident), and the list's ascending id order with a strict
// comparison reproduces the global scan's lowest-id tie-break.
func (c *clusterSim) balloon(ev ChurnEvent) {
	var target *proc
	for _, p := range c.lv.liveOn[ev.Node] {
		if target == nil || p.footprintMB > target.footprintMB {
			target = p
		}
	}
	if target == nil {
		return
	}
	was := target.footprintMB
	target.footprintMB = int64(float64(target.footprintMB) * ev.Factor)
	if target.footprintMB < 1 {
		target.footprintMB = 1
	}
	c.lv.memDelta(target.node, target.footprintMB-was)
}

// run executes the simulation to completion (or the horizon) and finalises
// the statistics.
func (c *clusterSim) run() SchemeStats {
	var end simtime.Time
	if c.group != nil {
		end = c.group.Run(c.horizon)
	} else {
		end = c.eng.Run(c.horizon)
	}
	if c.st.Makespan == 0 {
		c.st.Makespan = simtime.Duration(end)
	}

	// Sojourn latencies (arrival → completion) feed the SLO percentiles,
	// but only on specs that exercise the failure plane: legacy reports
	// keep their exact shape, and the collection cost stays off the
	// fast path.
	var sojourns []simtime.Duration
	collect := c.spec.HasFailures()
	var slow float64
	for _, p := range c.procs {
		switch {
		case p.done:
			slow += float64(p.finishAt.Sub(p.t.arriveAt)) / float64(p.t.demand)
			if collect {
				sojourns = append(sojourns, p.finishAt.Sub(p.t.arriveAt))
			}
		case !p.arrived:
			c.st.Unfinished++
			slow += 1
		default:
			c.st.Unfinished++
			slow += float64(end.Sub(p.t.arriveAt)) / float64(p.t.demand)
		}
	}
	c.st.MeanSlowdown = slow / float64(len(c.procs))
	if len(sojourns) > 0 {
		sort.Slice(sojourns, func(i, j int) bool { return sojourns[i] < sojourns[j] })
		c.st.SojournP50 = sojournPercentile(sojourns, 50)
		c.st.SojournP95 = sojournPercentile(sojourns, 95)
		c.st.SojournP99 = sojournPercentile(sojourns, 99)
	}

	c.st.FinalRTT = c.ic.MeanRTT()
	// Every sequential event maps one-to-one onto a shard or global event
	// (routed deliveries replace, never add), so the sum reproduces the
	// sequential count exactly.
	if c.group != nil {
		c.st.Events = c.group.Processed()
	} else {
		c.st.Events = c.eng.Processed
	}
	// Tier utilisation is a switched-fabric artefact; legacy star reports
	// keep their pre-fabric shape.
	if !c.spec.Fabric.IsDefault() {
		c.st.TierUse = c.ic.TierStats()
	}
	if c.group != nil {
		c.st.Sharding = &ShardStats{
			Shards:  c.shards,
			Workers: shardWorkers(),
			Group:   c.group.Stats(),
		}
	}
	return c.st
}

// tick advances one processor-sharing quantum on every node — the
// monolithic ticker star and flat fabrics keep. It walks the live view's
// per-node runnable lists instead of the global process slice, so neither
// finished processes nor a Poisson arrival tail are ever rescanned; the
// per-process updates are independent given each node's population
// snapshot, so the node-major order leaves every observable byte where
// the old id-major global scan put it.
func (c *clusterSim) tick() {
	now := c.eng.Now()
	for i := 0; i < c.spec.Nodes; i++ {
		c.doneN += c.tickNode(i, now)
	}
	if c.doneN == len(c.procs) {
		c.st.Makespan = simtime.Duration(now.Add(c.spec.Quantum))
		c.eng.Stop()
	}
}

// tickNode advances one quantum on node i's runnable residents and
// reports how many of them completed. The share divisor is the node's
// runnable population when its quantum fires: completions during the loop
// shrink the list but must not perturb later shares, and no tick ever
// touches another node's counters, so the single up-front read equals the
// whole-cluster pre-scan the monolithic tick used to take.
func (c *clusterSim) tickNode(i int, now simtime.Time) (done int) {
	cnt := c.lv.runnable[i]
	if cnt == 0 {
		return 0
	}
	share := simtime.Duration(float64(c.spec.Quantum) * c.nodes[i].CPUScale / float64(cnt))
	// Completion removes the process from the list in place (it is always
	// at the cursor — the list stays in ascending id order), so the cursor
	// only advances past survivors.
	for k := 0; k < len(c.lv.runnableOn[i]); {
		p := c.lv.runnableOn[i][k]
		p.remaining -= share
		if p.remaining <= 0 {
			p.done = true
			p.pcb.State = cluster.ProcDone
			p.finishAt = now.Add(c.spec.Quantum)
			done++
			c.lv.depart(p)
			continue
		}
		k++
	}
	return done
}

// tickEpilogueLag is the global aggregation event's offset past the band
// ticks' instant. Virtual time is integer nanoseconds, so no event can
// fire strictly between kQ and kQ+1ns: the epilogue observes exactly the
// post-tick state, yet — unlike a global event at kQ itself — it leaves
// the band ticks inside the window's parallel shard phase instead of
// dragging them into the single-threaded coincident instant.
const tickEpilogueLag = simtime.Nanosecond

// scheduleBandTicks schedules quantum at's tick sub-events — one per rack
// band, each on the engine owning the band — plus the global epilogue one
// nanosecond later. Ascending band order on every engine mirrors the
// coordinator's shards-first, ascending-index interleave at coincident
// instants, which is how a sharded run replays the sequential schedule.
func (c *clusterSim) scheduleBandTicks(at simtime.Time) {
	for b := 0; b < c.bands; b++ {
		b := b
		c.bandEng[b].At(at, func() { c.tickBand(b) })
	}
	c.eng.At(at.Add(tickEpilogueLag), func() { c.tickEpilogue(at) })
}

// tickBand advances one quantum on one rack band's nodes. It runs on the
// band's owning engine inside the window's parallel phase and touches only
// band-local state: its nodes' processes, their live-view slices and the
// band's completion counter.
func (c *clusterSim) tickBand(b int) {
	now := c.bandEng[b].Now()
	done := 0
	for i := c.bandLo[b]; i < c.bandLo[b+1]; i++ {
		done += c.tickNode(i, now)
	}
	c.doneBy[b] += done
}

// tickEpilogue is the global aggregation closing quantum at: it reschedules
// the next quantum's sub-events (first, like the monolithic ticker), sums
// the per-band completion counters into doneN and applies the monolithic
// tick's Stop/Makespan rule. It is the decomposition's only global event —
// the window barrier separating it from the band ticks is what makes their
// doneBy writes visible here.
func (c *clusterSim) tickEpilogue(at simtime.Time) {
	c.scheduleBandTicks(at.Add(c.spec.Quantum))
	done := 0
	for _, n := range c.doneBy {
		done += n
	}
	c.doneN = done
	if done == len(c.procs) {
		c.st.Makespan = simtime.Duration(at.Add(c.spec.Quantum))
		c.eng.Stop()
	}
}

// view assembles the ground-truth picture of the cluster: per-node
// resident counts (frozen migrants count towards their destination, as in
// the sched study), CPU-scaled loads, resident memory, and the monitoring
// plane's conservative bandwidth estimate. The rows come from the live
// view — only nodes dirtied since the last round are re-derived — and are
// copied into the hand-off scratch, so the canonical rows stay private and
// a policy that wrongly retains or mutates a handed view cannot corrupt
// the next round. On the legacy star this is exactly what policies decide
// with; on switched fabrics it only orders the driver's source scan, and
// decisions see gossipView instead.
func (c *clusterSim) view() sched.View {
	c.lv.refresh()
	if c.viewScratch == nil {
		c.viewScratch = make([]sched.NodeView, c.spec.Nodes)
	}
	copy(c.viewScratch, c.lv.rows)
	v := sched.View{
		Nodes:         c.viewScratch,
		BandwidthBps:  c.ic.ClusterBandwidth(),
		CostThreshold: c.spec.CostThreshold,
		Rand:          c.prand,
		SampleLen:     c.spec.LoadVectorLen,
	}
	v.CacheLeastLoaded(&c.llBase)
	// Seed the memo from the live view's sorted order instead of letting
	// the first LeastLoaded call rescan all rows: the order is (load desc,
	// index asc), so the min-load class is the suffix and its first
	// element is exactly the scan's answer — the lowest index at minimum
	// load. Binary search finds the suffix start in O(log n).
	if n := len(c.lv.order); n > 0 {
		minLoad := c.viewScratch[c.lv.order[n-1]].Load
		p := sort.Search(n, func(i int) bool {
			return c.viewScratch[c.lv.order[i]].Load <= minLoad
		})
		c.llBase = c.lv.order[p]
	}
	return v
}

// unknownRow is the gossip view's template row for a node the deciding
// daemon has no live entry for: infinite load (never a load target),
// marked Unknown, but still carrying the node's CPU scale and physical
// memory — capacity is cluster configuration every node knows, so the
// memory usher sees an unknown node as unknown, not as zero-capacity.
func (c *clusterSim) unknownRow(i int) sched.NodeView {
	return sched.NodeView{
		CPUScale:   c.nodes[i].CPUScale,
		Load:       math.Inf(1),
		CapacityMB: c.spec.NodeMemMB,
		Unknown:    true,
	}
}

// gossipView rewrites the ground-truth view into what the source node's
// gossip daemon actually knows: every row the daemon holds a live entry
// for comes from that aged entry, the node's own row stays exact (a node
// always knows itself), and everything else is the Unknown template.
// Staleness therefore grows with topology distance, and so do the
// policies' mistakes.
//
// The view is maintained incrementally, mirroring the live ground-truth
// view: the scratch rows idle in the Unknown-template state, each call
// first restores the rows the previous call wrote (recorded in gvWritten)
// and then writes only the current daemon's known set — O(entries the
// daemon holds), not O(nodes), per hand-off. InfoAge is derived lazily at
// the decision instant from the entry's stamp, never stored. The write
// order inside Fresh is the daemon's map order, but each callback touches
// only its own origin's row, so the resulting view is order-independent.
func (c *clusterSim) gossipView(src int, base sched.View) sched.View {
	g := c.ic.Gossip(src)
	if g == nil {
		return base
	}
	if c.gvScratch == nil {
		c.gvScratch = make([]sched.NodeView, len(base.Nodes))
		for i := range c.gvScratch {
			c.gvScratch[i] = c.unknownRow(i)
		}
		c.gvWritten = make([]int, 0, len(base.Nodes))
	}
	for _, i := range c.gvWritten {
		c.gvScratch[i] = c.unknownRow(i)
	}
	c.gvWritten = c.gvWritten[:0]

	v := base
	v.Nodes = c.gvScratch
	v.CacheLeastLoaded(&c.llGossip)
	now := c.eng.Now()
	c.gvScratch[src] = base.Nodes[src]
	c.gvWritten = append(c.gvWritten, src)
	// Seed the LeastLoaded memo while writing: every unwritten row is the
	// infinite-load Unknown template, so the argmin over written rows —
	// lowest index on load ties, matching the scan's order — is the
	// scan's answer, and the O(nodes) pass per hand-off disappears.
	bestO, bestL := src, base.Nodes[src].Load
	g.Fresh(func(o int, e infod.GossipEntry) {
		if o == src {
			return
		}
		c.gvScratch[o] = sched.NodeView{
			Procs:      e.Sample.Queue,
			CPUScale:   base.Nodes[o].CPUScale,
			Load:       e.Sample.Load,
			UsedMemMB:  e.Sample.UsedMemMB,
			CapacityMB: c.spec.NodeMemMB,
			QueueLen:   e.Sample.Queue,
			InfoAge:    now.Sub(e.Stamp),
		}
		c.gvWritten = append(c.gvWritten, o)
		if l := e.Sample.Load; l < bestL || (l == bestL && o < bestO) {
			bestO, bestL = o, l
		}
	})
	c.llGossip = bestO
	return v
}

// balance runs one balancing round: up to one migration per node, stopping
// at the first pass where the policy accepts nothing.
func (c *clusterSim) balance() {
	for i := 0; i < c.spec.Nodes; i++ {
		if !c.balanceOnce() {
			return
		}
	}
}

// balanceOnce offers the policy candidates — most loaded nodes first,
// longest remaining demand first — and executes the first migration it
// accepts, reporting whether one happened. On switched fabrics each
// source's candidates are judged against that source's gossip view. The
// source order is the live view's maintained descending-load sequence, and
// sources with no runnable candidates skip the per-source view build
// entirely (the policy was never consulted for them before either).
func (c *clusterSim) balanceOnce() bool {
	base := c.view()
	if c.checkView != nil {
		c.checkView(base)
	}
	for _, src := range c.lv.order {
		cands := c.candidatesOn(src)
		if len(cands) == 0 {
			continue
		}
		v := c.gossipView(src, base)
		for _, p := range cands {
			pv := sched.ProcView{
				ID:             p.t.id,
				Node:           src,
				Remaining:      p.remaining,
				FootprintMB:    p.footprintMB,
				WorkingSetFrac: p.t.mix.WorkingSetFrac(),
			}
			dest, ok := c.pol.ShouldMigrate(v, pv)
			if !ok || dest == src || dest < 0 || dest >= c.spec.Nodes {
				continue
			}
			c.migrate(p, src, dest)
			return true
		}
	}
	return false
}

// candidatesOn returns up to sched.MaxCandidates runnable processes on
// node, longest remaining demand first (lifetime best justifies the cost,
// following Harchol-Balter & Downey), ties broken by ascending id. The
// pool is the live view's per-node list — already filtered to runnable
// residents, already in the ascending-id order the global filter used to
// preserve.
func (c *clusterSim) candidatesOn(node int) []*proc {
	c.candScratch = sched.TopCandidatesInto(c.candScratch, c.lv.runnableOn[node],
		func(p *proc) bool { return true },
		func(p *proc) simtime.Duration { return p.remaining })
	return c.candScratch
}

// migrate freezes cand and ships its freeze-time payload across the
// fabric's topology path (network-paced per hop, competing with daemon
// traffic and other migrations). The freeze ends when the payload lands,
// plus the destination-side restore costs.
func (c *clusterSim) migrate(p *proc, src, dst int) {
	p.seq++
	p.from = src
	p.frozen = true
	p.freezeStart = c.eng.Now()
	p.node = dst
	p.migrations++
	p.pcb.State = cluster.ProcFrozen
	p.pcb.Current = c.nodes[dst]
	c.lv.freeze(p, src, dst)
	c.st.Migrations++

	bytes := c.freezeBytes(p)
	if !c.ic.PathUp(src, dst) {
		// Stale gossip steered the migrant at an unreachable destination.
		// The freeze-time payload cannot be committed to the wire, so no
		// migration bytes move: the migrant reverts to its source at once,
		// the way an openMosix deputy keeps a process it cannot ship.
		c.failBack(p)
		return
	}
	c.st.MigrationBytes += bytes
	m := migMsg{pid: p.t.id, seq: p.seq, dest: dst, bytes: bytes}
	c.ic.Send(src, dst, netmodel.Message{Size: bytes, Payload: m})
}

// freezeBytes sizes the freeze-time transfer under the policy: policies
// that ship a non-default payload (openMosix's full copy) declare it via
// sched.FreezePayloadSizer; everything else rides the AMPoM substrate —
// three pages, the 6 B/page MPT, and the PCB.
func (c *clusterSim) freezeBytes(p *proc) int64 {
	if s, ok := c.pol.(sched.FreezePayloadSizer); ok {
		return s.FreezePayloadBytes(p.footprintMB) + cluster.RegisterBytes
	}
	pages := footprintPages(p.footprintMB)
	return 3*memory.PageSize + pages*memory.PTEntrySize + cluster.RegisterBytes
}

// deliver consumes a migration payload arriving at its destination node
// (the fabric routed and relayed it); the destination restores the
// process.
func (c *clusterSim) deliver(node int, m migMsg) {
	if node != m.dest {
		panic(fmt.Sprintf("scenario: migration payload for node %d delivered to node %d", m.dest, node))
	}
	p := c.procs[m.pid]
	if m.seq != p.seq || !p.frozen || p.node != m.dest {
		// The migration this payload belonged to was failed back while the
		// bytes were in flight (destination crash or path failure); the
		// process already resumed at its source.
		return
	}
	c.restore(p, m.dest)
}

// restore finishes a migration at the destination: destination-side restore
// costs, the AMPoM working-set stream (charged as continued unavailability
// at the daemons' estimated bandwidth), and the prefetch census.
func (c *clusterSim) restore(p *proc, dst int) {
	p.restoring = true
	cal := 65 * simtime.Millisecond // openMosix protocol base cost
	pages := footprintPages(p.footprintMB)
	// The PCB's home node is the template's origin by construction and is
	// never reassigned, so the index is known without scanning the cluster.
	src := p.t.node
	bw := c.ic.PathBandwidth(src, dst)
	var extra simtime.Duration
	if c.remotePages(p, bw) {
		// MPT install on the destination CPU.
		cal += c.nodes[dst].Scale(simtime.Duration(pages*3) * simtime.Microsecond)
		// The working set streams in from the origin while the process
		// stalls on remote paging; the prefetcher census extrapolates how
		// many of those first touches fault versus arrive prefetched.
		wsPages := int64(float64(pages) * p.t.mix.WorkingSetFrac())
		wsBytes := wsPages * memory.PageSize
		extra = simtime.FromSeconds(float64(wsBytes) / bw)
		c.st.ExtraWork += extra
		c.st.MigrationBytes += wsBytes

		hard, pref := c.prefetchCensus(p, c.ic.PathEstimates(src, dst), wsPages)
		c.st.HardFaults += hard
		c.st.PrefetchPages += pref
	}
	// The unfreeze is guarded by the migration sequence: if the destination
	// crashes during the restore window the migrant fails back (bumping the
	// sequence) and this event must land dead.
	seq := p.seq
	c.eng.Schedule(cal+extra, func() {
		if p.seq != seq || !p.frozen {
			return
		}
		c.unfreeze(p)
	})
}

// remotePages decides whether a migrant rides the lightweight substrate —
// MPT install, post-resume working-set stream and prefetch census. The
// policy states it explicitly via sched.RemotePager; otherwise its cost
// model classifies it (a non-zero extra means remote paging).
func (c *clusterSim) remotePages(p *proc, bw float64) bool {
	if rp, ok := c.pol.(sched.RemotePager); ok {
		return rp.RemotePages()
	}
	_, extra := c.pol.MigrationCost(p.footprintMB, p.t.mix.WorkingSetFrac(), bw)
	return extra > 0
}

// unfreeze resumes a restored migrant.
func (c *clusterSim) unfreeze(p *proc) {
	p.frozen = false
	p.restoring = false
	p.pcb.State = cluster.ProcRunning
	c.lv.unfreeze(p)
	c.st.FrozenTotal += c.eng.Now().Sub(p.freezeStart)
}

// dryRunCap bounds the prefetcher dry-run per migration; totals are
// extrapolated from the sampled prefix to the full working set.
const dryRunCap = 384

// prefetchCensus dry-runs the AMPoM prefetcher over the migrant's
// first-touch stream with the daemons' current estimates, the way
// ampom-trace does, and extrapolates hard-fault and prefetched-page totals
// over the working set.
func (c *clusterSim) prefetchCensus(p *proc, est core.Estimates, wsPages int64) (hard, prefetched int64) {
	if wsPages < 1 {
		return 0, 0
	}
	pre := core.MustNew(core.DefaultConfig(), wsPages)
	src := p.t.mix.Trace(wsPages, p.t.traceSeed)()
	seen := make([]bool, wsPages)
	arrived := make([]bool, wsPages)
	var sampled, sampleHard int64
	var t simtime.Time
	for sampled < dryRunCap {
		ref, ok := src.Next()
		if !ok {
			break
		}
		if ref.Page < 0 || int64(ref.Page) >= wsPages || seen[ref.Page] {
			continue
		}
		seen[ref.Page] = true
		sampled++
		t = t.Add(est.PageTransfer)
		if arrived[ref.Page] {
			continue // prevented: the zone fetch beat the touch
		}
		sampleHard++
		t = t.Add(est.RTT)
		pre.RecordFault(ref.Page, t, 1)
		a := pre.Analyze(est)
		n := 0
		for _, pg := range a.Zone {
			if pg >= 0 && int64(pg) < wsPages && !arrived[pg] {
				arrived[pg] = true
				n++
			}
		}
		pre.NotePrefetched(n)
	}
	if sampled == 0 {
		return 0, 0
	}
	hard = int64(float64(sampleHard) / float64(sampled) * float64(wsPages))
	if hard < 1 {
		hard = 1
	}
	if hard > wsPages {
		hard = wsPages
	}
	return hard, wsPages - hard
}

// Run executes the scenario under the spec's policy set from the single
// seed and assembles the cluster-level report. It is a pure function of its
// arguments: the same (Spec, seed) always yields an identical Report.
// Report rows follow the canonical (registry-sorted) policy order.
func Run(spec Spec, seed uint64) (*Report, error) {
	return RunShards(spec, seed, 1)
}

// PolicyProgress is one progress sample of a scenario run: the policy
// whose simulation just completed and how far through the spec's policy
// set the run is. The campaign engine forwards these samples to its
// OnScenarioProgress hook, which is what ampom-clusterd streams to
// clients as NDJSON.
type PolicyProgress struct {
	// Policy is the registry name of the policy that just finished.
	Policy string
	// Done counts finished policy simulations; Total is the spec's
	// canonical policy-set size.
	Done, Total int
}

// RunShards is Run with the event engine sharded per rack band across
// shards conservative-window workers (clamped to the rack count; 1 — or
// any non-two-tier fabric — is the sequential engine). Sharding is an
// execution strategy, not a model parameter: every shard count yields a
// byte-identical Report, so it never participates in fingerprints or
// seeds.
func RunShards(spec Spec, seed uint64, shards int) (*Report, error) {
	return RunShardsHook(spec, seed, shards, nil)
}

// RunShardsHook is RunShards with an observation hook called after each
// policy's simulation completes. The hook is purely observational — it
// never influences the run, so hooked and unhooked runs render
// byte-identical reports — and is called from the running goroutine, so
// it must not block for long.
func RunShardsHook(spec Spec, seed uint64, shards int, hook func(PolicyProgress)) (*Report, error) {
	spec = spec.Canonical()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pols, err := sched.ByNames(spec.Policies)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if seed == 0 {
		seed = 42
	}
	scales, tmpl := buildWorkload(spec, seed)
	rep := &Report{Spec: spec, Seed: seed, Procs: len(tmpl)}
	for i, pol := range pols {
		st := newClusterSimShards(spec, scales, tmpl, pol, seed, shards).run()
		rep.Schemes = append(rep.Schemes, st)
		if hook != nil {
			hook(PolicyProgress{Policy: pol.Name(), Done: i + 1, Total: len(pols)})
		}
	}
	if base := rep.Baseline().MeanSlowdown; base > 0 {
		for i := range rep.Schemes {
			rep.Schemes[i].SlowdownVsBase = rep.Schemes[i].MeanSlowdown / base
		}
	}
	return rep, nil
}

// MustRun is Run for callers with no failure path (benchmarks, examples).
func MustRun(spec Spec, seed uint64) *Report {
	r, err := Run(spec, seed)
	if err != nil {
		panic(err)
	}
	return r
}
