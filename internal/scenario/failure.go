// The failure plane: node crashes with optional evacuation, fail-back of
// interrupted migrations, link failures and recovery. Everything here runs
// as global (merge-phase) events, so node liveness and link state change
// only at barrier-separated instants that every shard count observes
// identically — the property that keeps failure reports byte-identical
// across -shards.
//
// The fail-back protocol follows the openMosix deputy discipline: the
// source node keeps a process's frozen image until the destination
// acknowledges the restore, so a migration interrupted by a crash or a
// dead path never loses the process — it reverts to its source, resuming
// immediately if the source is alive and parking suspended until recovery
// if the source itself crashed. Three mechanisms make that airtight under
// store-and-forward routing, where a payload may be dropped at a failed
// hop or, conversely, survive a transition it was already past:
//
//   - admission: migrate() checks PathUp before committing the payload to
//     the wire and fails the migrant back instantly when the path is dead
//     (stale gossip keeps steering migrants at crashed nodes until their
//     entries age out — those bounce here);
//   - the bounce sweep: at every down-transition the runner fails back
//     every in-flight migrant whose destination crashed or whose remaining
//     path (past its source edge) is no longer verifiable, so any payload
//     the fabric later drops has already been bounced;
//   - sequence guards: every migrate and fail-back bumps the process's
//     migration sequence, so a payload or scheduled unfreeze that outlives
//     its migration arrives stale and lands dead.
package scenario

import "ampom/internal/cluster"

// crash takes node v down. Its runnable residents either evacuate
// (spec.Evacuate: real migrations shipped as the dying node's last gasp,
// while its edge link is still up) or lose their progress and park
// suspended until recovery. The edge link then drops, in-flight migrants
// headed for v bounce back to their sources, and migrants caught
// mid-restore on v fail back too. Crashing a crashed node is a no-op.
func (c *clusterSim) crash(v int) {
	if c.crashed[v] {
		return
	}
	c.crashed[v] = true
	c.st.Crashes++
	if c.spec.Evacuate {
		c.evacuate(v)
	} else {
		for _, p := range snapshotProcs(c.lv.runnableOn[v]) {
			c.kill(p)
		}
	}
	c.ic.SetLinkState(v, false)
	c.bounceSweep()
	// Migrants caught between payload delivery and unfreeze on v: their
	// restore dies with the node, so they revert to their sources.
	for _, p := range snapshotProcs(c.lv.liveOn[v]) {
		if p.frozen && p.restoring {
			c.failBack(p)
		}
	}
}

// recover brings node v back: its edge link comes up and every suspended
// resident resumes — crash-killed processes restart from scratch (their
// remaining demand was reset at the crash), failed-back migrants resume
// from their preserved frozen image. Recovering a live node is a no-op.
func (c *clusterSim) recover(v int) {
	if !c.crashed[v] {
		return
	}
	c.crashed[v] = false
	c.ic.SetLinkState(v, true)
	for _, p := range snapshotProcs(c.lv.liveOn[v]) {
		if !p.suspended {
			continue
		}
		p.suspended = false
		p.frozen = false
		p.pcb.State = cluster.ProcRunning
		c.lv.unfreeze(p)
	}
}

// linkState applies a link churn event; a down-transition re-verifies
// every in-flight migration against the new topology.
func (c *clusterSim) linkState(sel int, up bool) {
	c.ic.SetLinkState(sel, up)
	if !up {
		c.bounceSweep()
	}
}

// evacuate drains node v's runnable residents through real migrations, one
// per process in ascending id order, each to the least-loaded reachable
// live node at that moment (the resident aggregates move at freeze time,
// so successive evacuees spread). A process with no reachable target is
// killed in place instead.
func (c *clusterSim) evacuate(v int) {
	for _, p := range snapshotProcs(c.lv.runnableOn[v]) {
		dst := c.evacTarget(v)
		if dst < 0 {
			c.kill(p)
			continue
		}
		c.st.Evacuations++
		c.migrate(p, v, dst)
	}
}

// evacTarget picks the evacuation destination from v: the least-loaded
// live node the dying node can still reach, lowest index on ties, -1 when
// nothing qualifies.
func (c *clusterSim) evacTarget(v int) int {
	best, bestLoad := -1, 0.0
	for i := 0; i < c.spec.Nodes; i++ {
		if i == v || c.crashed[i] || !c.ic.PathUp(v, i) {
			continue
		}
		load := float64(c.lv.live[i]) / c.nodes[i].CPUScale
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// kill makes a crash take p's progress: remaining demand resets to the
// full demand and the process parks suspended on its node until recovery.
// The process itself is never lost — crashes cost work, not workload.
func (c *clusterSim) kill(p *proc) {
	p.remaining = p.t.demand
	p.suspended = true
	p.pcb.State = cluster.ProcFrozen
	c.lv.suspend(p)
}

// bounceSweep fails back every in-flight migrant stranded by a topology
// down-transition: frozen, payload not yet delivered, and either its
// destination crashed or the remainder of its path — past the source edge,
// which an evacuation payload legitimately leaves through just before it
// drops — can no longer deliver. Any such payload the fabric later drops
// (or, rarely, still delivers over a path that healed around the check)
// was bounced here first and arrives sequence-stale. A suspended frozen
// migrant has already failed back and parked on its crashed source — it
// is no longer in flight, so later down-transitions must not bounce it
// again (a migrant restores or fails back exactly once).
func (c *clusterSim) bounceSweep() {
	for _, p := range c.procs {
		if p.frozen && !p.restoring && !p.suspended && (c.crashed[p.node] || !c.ic.DestReachable(p.from, p.node)) {
			c.failBack(p)
		}
	}
}

// failBack reverts an interrupted migration: the migrant returns to its
// source instantly — the source kept the frozen image, openMosix deputy
// style, so no return payload crosses the wire — and the freeze the
// process has served so far is accounted. On a live source it resumes at
// once; if the source itself crashed it parks suspended, frozen image
// preserved, until recovery.
func (c *clusterSim) failBack(p *proc) {
	src := p.from
	p.seq++
	p.restoring = false
	c.lv.failBack(p, p.node, src)
	p.node = src
	p.pcb.Current = c.nodes[src]
	c.st.FrozenTotal += c.eng.Now().Sub(p.freezeStart)
	c.st.FailBacks++
	if c.crashed[src] {
		p.suspended = true
		return
	}
	p.frozen = false
	p.pcb.State = cluster.ProcRunning
	c.lv.unfreeze(p)
}

// snapshotProcs copies a live-view resident list before iterating with
// mutating transitions (suspend, migrate, fail-back all edit the lists in
// place).
func snapshotProcs(list []*proc) []*proc {
	return append([]*proc(nil), list...)
}
