// Scenario I/O: a versioned JSON codec for Spec and JSON/CSV encoders for
// Report, so scenarios and their outcomes are shareable on-disk artefacts
// (the ROADMAP's "Scenario I/O" item).
//
// The codec is strict and total: unknown fields are rejected (a typo never
// silently runs the default), omitted fields take the Canonical defaults,
// and the version field gates format evolution. Decoding always returns a
// canonical, validated Spec, so decode→encode→decode is the identity — the
// property FuzzSpecRoundTrip locks in. Every encoder is a pure function of
// its value: equal reports render byte-identical JSON and CSV whatever
// worker pool produced them.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ampom/internal/fabric"
	"ampom/internal/netmodel"
	"ampom/internal/simtime"
)

// SpecVersion is the on-disk spec format version this codec reads and
// writes.
const SpecVersion = 1

// specJSON is the on-disk shape of a Spec. Enums travel as their String()
// names and durations as Go duration strings ("250ms"), so files are
// hand-editable.
type specJSON struct {
	Version          int          `json:"version"`
	Name             string       `json:"name,omitempty"`
	Nodes            int          `json:"nodes,omitempty"`
	Procs            int          `json:"procs,omitempty"`
	SlowFrac         float64      `json:"slow_frac,omitempty"`
	FastFrac         float64      `json:"fast_frac,omitempty"`
	SlowScale        float64      `json:"slow_scale,omitempty"`
	FastScale        float64      `json:"fast_scale,omitempty"`
	Arrival          string       `json:"arrival,omitempty"`
	MeanInterarrival string       `json:"mean_interarrival,omitempty"`
	Placement        string       `json:"placement,omitempty"`
	Skew             float64      `json:"skew,omitempty"`
	MeanCompute      string       `json:"mean_compute,omitempty"`
	MeanFootprintMB  int64        `json:"mean_footprint_mb,omitempty"`
	NodeMemMB        int64        `json:"node_mem_mb,omitempty"`
	Mix              []mixJSON    `json:"mix,omitempty"`
	Policies         []string     `json:"policies,omitempty"`
	LoadVectorLen    int          `json:"load_vector_len,omitempty"`
	Evacuate         bool         `json:"evacuate,omitempty"`
	Network          *networkJSON `json:"network,omitempty"`
	Fabric           *fabricJSON  `json:"fabric,omitempty"`
	BackgroundLoad   float64      `json:"background_load,omitempty"`
	BalancePeriod    string       `json:"balance_period,omitempty"`
	CostThreshold    float64      `json:"cost_threshold,omitempty"`
	Quantum          string       `json:"quantum,omitempty"`
	MaxSimTime       string       `json:"max_sim_time,omitempty"`
	Churn            []churnJSON  `json:"churn,omitempty"`
}

type mixJSON struct {
	Kind   string `json:"kind"`
	Weight int    `json:"weight"`
}

type networkJSON struct {
	Name          string  `json:"name,omitempty"`
	LatencyOneWay string  `json:"latency_one_way,omitempty"`
	BandwidthBps  float64 `json:"bandwidth_bps,omitempty"`
}

// fabricJSON is the on-disk shape of the Fabric block. The legacy star
// default is encoded by omitting the block entirely, so pre-fabric spec
// documents decode (and re-encode) unchanged.
type fabricJSON struct {
	Topology     string  `json:"topology"`
	RackSize     int     `json:"rack_size,omitempty"`
	Oversub      float64 `json:"oversubscription,omitempty"`
	GossipFanout int     `json:"gossip_fanout,omitempty"`
	GossipPeriod string  `json:"gossip_period,omitempty"`
	GossipWindow int     `json:"gossip_window,omitempty"`
}

type churnJSON struct {
	At     string  `json:"at"`
	Kind   string  `json:"kind"`
	Node   int     `json:"node"`
	Factor float64 `json:"factor,omitempty"`
	Procs  int     `json:"procs,omitempty"`
}

// fmtDur renders a duration in the Go notation time.ParseDuration reads
// back exactly.
func fmtDur(d simtime.Duration) string { return d.String() }

// parseDur reads a Go duration string; empty means "use the default".
func parseDur(field, s string) (simtime.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: field %s: %w", field, err)
	}
	return simtime.FromStd(d), nil
}

// parseMixKind resolves a mix name.
func parseMixKind(s string) (MixKind, error) {
	for _, k := range []MixKind{MixSequential, MixBlocked, MixRandom, MixSmallWS} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown mix kind %q", s)
}

// parseArrival resolves an arrival-model name; empty means the default.
func parseArrival(s string) (ArrivalModel, error) {
	switch s {
	case "", ArrivalBatch.String():
		return ArrivalBatch, nil
	case ArrivalPoisson.String():
		return ArrivalPoisson, nil
	}
	return 0, fmt.Errorf("scenario: unknown arrival model %q", s)
}

// parsePlacement resolves a placement name; empty means the default.
func parsePlacement(s string) (Placement, error) {
	switch s {
	case "", PlaceSkewed.String():
		return PlaceSkewed, nil
	case PlaceRoundRobin.String():
		return PlaceRoundRobin, nil
	}
	return 0, fmt.Errorf("scenario: unknown placement %q", s)
}

// parseChurnKind resolves a churn-kind name against the registry, so any
// kind String() renders is guaranteed to parse back.
func parseChurnKind(s string) (ChurnKind, error) {
	for i, name := range churnKindNames {
		if s == name {
			return ChurnKind(i), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown churn kind %q", s)
}

// toJSON converts a canonical Spec into its on-disk shape.
func (s Spec) toJSON() specJSON {
	out := specJSON{
		Version:          SpecVersion,
		Name:             s.Name,
		Nodes:            s.Nodes,
		Procs:            s.Procs,
		SlowFrac:         s.SlowFrac,
		FastFrac:         s.FastFrac,
		SlowScale:        s.SlowScale,
		FastScale:        s.FastScale,
		Arrival:          s.Arrival.String(),
		MeanInterarrival: fmtDur(s.MeanInterarrival),
		Placement:        s.Placement.String(),
		Skew:             s.Skew,
		MeanCompute:      fmtDur(s.MeanCompute),
		MeanFootprintMB:  s.MeanFootprintMB,
		NodeMemMB:        s.NodeMemMB,
		Policies:         s.Policies,
		LoadVectorLen:    s.LoadVectorLen,
		Evacuate:         s.Evacuate,
		BackgroundLoad:   s.BackgroundLoad,
		BalancePeriod:    fmtDur(s.BalancePeriod),
		CostThreshold:    s.CostThreshold,
		Quantum:          fmtDur(s.Quantum),
		MaxSimTime:       fmtDur(s.MaxSimTime),
	}
	for _, m := range s.Mix {
		out.Mix = append(out.Mix, mixJSON{Kind: m.Kind.String(), Weight: m.Weight})
	}
	out.Network = &networkJSON{
		Name:          s.Network.Name,
		LatencyOneWay: fmtDur(s.Network.LatencyOneWay),
		BandwidthBps:  s.Network.BandwidthBps,
	}
	if f := s.Fabric.Canonical(); !f.IsDefault() {
		out.Fabric = &fabricJSON{
			Topology:     f.Topology.String(),
			RackSize:     f.RackSize,
			Oversub:      f.Oversub,
			GossipFanout: f.GossipFanout,
			GossipPeriod: fmtDur(f.GossipPeriod),
			GossipWindow: f.GossipWindow,
		}
	}
	for _, c := range s.Churn {
		out.Churn = append(out.Churn, churnJSON{
			At: fmtDur(c.At), Kind: c.Kind.String(), Node: c.Node,
			Factor: c.Factor, Procs: c.Procs,
		})
	}
	return out
}

// fromJSON converts the on-disk shape back into a Spec (not yet canonical).
func (sj specJSON) fromJSON() (Spec, error) {
	s := Spec{
		Name:            sj.Name,
		Nodes:           sj.Nodes,
		Procs:           sj.Procs,
		SlowFrac:        sj.SlowFrac,
		FastFrac:        sj.FastFrac,
		SlowScale:       sj.SlowScale,
		FastScale:       sj.FastScale,
		Skew:            sj.Skew,
		MeanFootprintMB: sj.MeanFootprintMB,
		NodeMemMB:       sj.NodeMemMB,
		Policies:        sj.Policies,
		LoadVectorLen:   sj.LoadVectorLen,
		Evacuate:        sj.Evacuate,
		BackgroundLoad:  sj.BackgroundLoad,
		CostThreshold:   sj.CostThreshold,
	}
	var err error
	if s.Arrival, err = parseArrival(sj.Arrival); err != nil {
		return Spec{}, err
	}
	if s.Placement, err = parsePlacement(sj.Placement); err != nil {
		return Spec{}, err
	}
	if s.MeanInterarrival, err = parseDur("mean_interarrival", sj.MeanInterarrival); err != nil {
		return Spec{}, err
	}
	if s.MeanCompute, err = parseDur("mean_compute", sj.MeanCompute); err != nil {
		return Spec{}, err
	}
	if s.BalancePeriod, err = parseDur("balance_period", sj.BalancePeriod); err != nil {
		return Spec{}, err
	}
	if s.Quantum, err = parseDur("quantum", sj.Quantum); err != nil {
		return Spec{}, err
	}
	if s.MaxSimTime, err = parseDur("max_sim_time", sj.MaxSimTime); err != nil {
		return Spec{}, err
	}
	for _, m := range sj.Mix {
		k, err := parseMixKind(m.Kind)
		if err != nil {
			return Spec{}, err
		}
		s.Mix = append(s.Mix, MixWeight{Kind: k, Weight: m.Weight})
	}
	if sj.Network != nil {
		lat, err := parseDur("network.latency_one_way", sj.Network.LatencyOneWay)
		if err != nil {
			return Spec{}, err
		}
		s.Network = netmodel.Profile{
			Name:          sj.Network.Name,
			LatencyOneWay: lat,
			BandwidthBps:  sj.Network.BandwidthBps,
		}
	}
	if sj.Fabric != nil {
		kind, err := fabric.ParseKind(sj.Fabric.Topology)
		if err != nil {
			return Spec{}, fmt.Errorf("scenario: %w", err)
		}
		period, err := parseDur("fabric.gossip_period", sj.Fabric.GossipPeriod)
		if err != nil {
			return Spec{}, err
		}
		s.Fabric = FabricSpec{
			Topology:     kind,
			RackSize:     sj.Fabric.RackSize,
			Oversub:      sj.Fabric.Oversub,
			GossipFanout: sj.Fabric.GossipFanout,
			GossipPeriod: period,
			GossipWindow: sj.Fabric.GossipWindow,
		}
	}
	for i, c := range sj.Churn {
		k, err := parseChurnKind(c.Kind)
		if err != nil {
			return Spec{}, fmt.Errorf("scenario: churn[%d]: %w", i, err)
		}
		at, err := parseDur(fmt.Sprintf("churn[%d].at", i), c.At)
		if err != nil {
			return Spec{}, err
		}
		s.Churn = append(s.Churn, ChurnEvent{
			At: at, Kind: k, Node: c.Node, Factor: c.Factor, Procs: c.Procs,
		})
	}
	return s, nil
}

// EncodeSpec renders the canonical form of s as versioned, indented JSON.
// It fails on a spec that does not validate, so an encoded spec always
// decodes.
func EncodeSpec(s Spec) ([]byte, error) {
	s = s.Canonical()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(s.toJSON(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeSpec parses a versioned JSON spec: unknown fields are rejected,
// omitted fields take the Canonical defaults, and the result is validated.
// The returned Spec is canonical, so DecodeSpec∘EncodeSpec is the identity.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sj specJSON
	if err := dec.Decode(&sj); err != nil {
		return Spec{}, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec document")
	}
	if sj.Version != SpecVersion {
		return Spec{}, fmt.Errorf("scenario: unsupported spec version %d (want %d)", sj.Version, SpecVersion)
	}
	s, err := sj.fromJSON()
	if err != nil {
		return Spec{}, err
	}
	s = s.Canonical()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a spec file written by SaveSpec (or by hand).
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	return DecodeSpec(data)
}

// SaveSpec writes the canonical form of s to path as versioned JSON.
func SaveSpec(path string, s Spec) error {
	data, err := EncodeSpec(s)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// ReportVersion is the on-disk report format version.
const ReportVersion = 1

// reportJSON is the on-disk shape of a Report.
type reportJSON struct {
	Version  int          `json:"version"`
	Spec     specJSON     `json:"spec"`
	Seed     uint64       `json:"seed"`
	Procs    int          `json:"procs"`
	Policies []schemeJSON `json:"policies"`
}

type schemeJSON struct {
	Policy         string  `json:"policy"`
	MakespanS      float64 `json:"makespan_s"`
	MeanSlowdown   float64 `json:"mean_slowdown"`
	SlowdownVsBase float64 `json:"slowdown_vs_base"`
	Migrations     int     `json:"migrations"`
	FrozenS        float64 `json:"frozen_s"`
	ExtraWorkS     float64 `json:"extra_work_s"`
	HardFaults     int64   `json:"hard_faults"`
	PrefetchPages  int64   `json:"prefetch_pages"`
	MigrationBytes int64   `json:"migration_bytes"`
	Unfinished     int     `json:"unfinished"`
	FinalRTTMs     float64 `json:"final_rtt_ms"`
	Events         uint64  `json:"events"`
	// The failure plane's SLO percentiles and event counters. Populated
	// only by failure-churn runs, and omitted at zero, so legacy report
	// documents keep their exact shape.
	SojournP50S float64    `json:"sojourn_p50_s,omitempty"`
	SojournP95S float64    `json:"sojourn_p95_s,omitempty"`
	SojournP99S float64    `json:"sojourn_p99_s,omitempty"`
	Crashes     int        `json:"crashes,omitempty"`
	Evacuations int        `json:"evacuations,omitempty"`
	FailBacks   int        `json:"fail_backs,omitempty"`
	Tiers       []tierJSON `json:"tiers,omitempty"`
}

// tierJSON is one interconnect tier's utilisation row (switched fabrics
// only; legacy star reports omit the field).
type tierJSON struct {
	Tier        string  `json:"tier"`
	Links       int     `json:"links"`
	CapacityBps float64 `json:"capacity_bps"`
	Bytes       int64   `json:"bytes"`
}

// schemeToJSON converts one policy row.
func schemeToJSON(st SchemeStats) schemeJSON {
	out := schemeJSON{
		Policy:         st.Policy,
		MakespanS:      st.Makespan.Seconds(),
		MeanSlowdown:   st.MeanSlowdown,
		SlowdownVsBase: st.SlowdownVsBase,
		Migrations:     st.Migrations,
		FrozenS:        st.FrozenTotal.Seconds(),
		ExtraWorkS:     st.ExtraWork.Seconds(),
		HardFaults:     st.HardFaults,
		PrefetchPages:  st.PrefetchPages,
		MigrationBytes: st.MigrationBytes,
		Unfinished:     st.Unfinished,
		FinalRTTMs:     st.FinalRTT.Milliseconds(),
		Events:         st.Events,
		SojournP50S:    st.SojournP50.Seconds(),
		SojournP95S:    st.SojournP95.Seconds(),
		SojournP99S:    st.SojournP99.Seconds(),
		Crashes:        st.Crashes,
		Evacuations:    st.Evacuations,
		FailBacks:      st.FailBacks,
	}
	for _, tu := range st.TierUse {
		out.Tiers = append(out.Tiers, tierJSON{
			Tier: tu.Name, Links: tu.Links, CapacityBps: tu.CapacityBps, Bytes: tu.Bytes,
		})
	}
	return out
}

// toReportJSON converts a report into its on-disk shape — the single
// construction both the object and array encodings share.
func (r *Report) toReportJSON() reportJSON {
	out := reportJSON{
		Version: ReportVersion,
		Spec:    r.Spec.Canonical().toJSON(),
		Seed:    r.Seed,
		Procs:   r.Procs,
	}
	for _, st := range r.Schemes {
		out.Policies = append(out.Policies, schemeToJSON(st))
	}
	return out
}

// JSON renders the report as indented JSON with rows in the report's
// (registry-sorted) policy order. The encoding is a pure function of the
// report, so equal-seed runs are byte-identical at any worker count.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r.toReportJSON(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding report: %w", err)
	}
	return append(b, '\n'), nil
}

// ReportsJSON renders several reports as one JSON array, for batch runs.
func ReportsJSON(reports []*Report) ([]byte, error) {
	outs := make([]reportJSON, 0, len(reports))
	for _, r := range reports {
		if r == nil {
			continue
		}
		outs = append(outs, r.toReportJSON())
	}
	b, err := json.MarshalIndent(outs, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding reports: %w", err)
	}
	return append(b, '\n'), nil
}

// csvHeader is the column set of the CSV report encoding. The scenario and
// seed columns make concatenated multi-report files self-describing.
var csvHeader = []string{
	"scenario", "seed", "policy", "makespan_s", "mean_slowdown",
	"slowdown_vs_base", "migrations", "frozen_s", "extra_work_s",
	"hard_faults", "prefetch_pages", "migration_bytes", "unfinished",
	"final_rtt_ms", "events",
}

// csvFailureHeader extends csvHeader with the failure plane's SLO and
// event-counter columns. A document uses the extended set when any of its
// reports ran failure churn (every row must share one column count);
// failure-free documents keep the legacy header byte-for-byte.
var csvFailureHeader = append(append([]string(nil), csvHeader...),
	"sojourn_p50_s", "sojourn_p95_s", "sojourn_p99_s",
	"crashes", "evacuations", "fail_backs",
)

// fmtFloat renders a float with the shortest representation that parses
// back exactly — deterministic and lossless.
func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// csvRows appends the report's data rows (no header); failures widens the
// rows with the failure-plane columns to match csvFailureHeader.
func (r *Report) csvRows(b *strings.Builder, failures bool) {
	for _, st := range r.Schemes {
		cells := []string{
			r.Spec.Name,
			strconv.FormatUint(r.Seed, 10),
			st.Policy,
			fmtFloat(st.Makespan.Seconds()),
			fmtFloat(st.MeanSlowdown),
			fmtFloat(st.SlowdownVsBase),
			strconv.Itoa(st.Migrations),
			fmtFloat(st.FrozenTotal.Seconds()),
			fmtFloat(st.ExtraWork.Seconds()),
			strconv.FormatInt(st.HardFaults, 10),
			strconv.FormatInt(st.PrefetchPages, 10),
			strconv.FormatInt(st.MigrationBytes, 10),
			strconv.Itoa(st.Unfinished),
			fmtFloat(st.FinalRTT.Milliseconds()),
			strconv.FormatUint(st.Events, 10),
		}
		if failures {
			cells = append(cells,
				fmtFloat(st.SojournP50.Seconds()),
				fmtFloat(st.SojournP95.Seconds()),
				fmtFloat(st.SojournP99.Seconds()),
				strconv.Itoa(st.Crashes),
				strconv.Itoa(st.Evacuations),
				strconv.Itoa(st.FailBacks),
			)
		}
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
}

// csvHeaderFor picks the header for a document covering the given reports:
// the extended failure set when any report ran failure churn, the legacy
// set otherwise.
func csvHeaderFor(reports []*Report) ([]string, bool) {
	for _, r := range reports {
		if r != nil && r.Spec.HasFailures() {
			return csvFailureHeader, true
		}
	}
	return csvHeader, false
}

// CSV renders the report as comma-separated values, one row per policy in
// the report's (registry-sorted) order.
func (r *Report) CSV() string {
	var b strings.Builder
	header, failures := csvHeaderFor([]*Report{r})
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	r.csvRows(&b, failures)
	return b.String()
}

// ReportsCSV renders several reports as one CSV document with a single
// header; the scenario and seed columns distinguish the runs.
func ReportsCSV(reports []*Report) string {
	var b strings.Builder
	header, failures := csvHeaderFor(reports)
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range reports {
		if r == nil {
			continue
		}
		r.csvRows(&b, failures)
	}
	return b.String()
}
