package scenario

import (
	"math"
	"strings"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/sched"
	"ampom/internal/simtime"
)

// gossipViewSpec is a small two-tier cluster whose gossip window (4) is
// well below the node count (16), so hand-off views genuinely mix Known
// and Unknown rows while the plane converges.
func gossipViewSpec() Spec {
	return Spec{
		Name:            "gossip-view-prop",
		Nodes:           16,
		Procs:           64,
		SlowFrac:        0.25,
		SlowScale:       0.5,
		MeanCompute:     2 * simtime.Second,
		MeanFootprintMB: 32,
		Fabric:          FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4, GossipWindow: 4},
		Churn: []ChurnEvent{
			{At: 2 * simtime.Second, Kind: ChurnSlowNode, Node: 1, Factor: 0.5},
		},
	}.Canonical()
}

// TestGossipViewIncrementalMatchesRebuild is the consumer-side tentpole
// property: at every balance round, for every source node, the
// incrementally maintained gossip view (template + restore + known-set
// writes) is row-for-row identical to a from-scratch rebuild straight from
// the daemon's entries — self row exact, known rows aged at the decision
// instant, everything else the Unknown template with the cluster capacity
// and the live CPU scale.
func TestGossipViewIncrementalMatchesRebuild(t *testing.T) {
	spec := gossipViewSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("invalid spec: %v", err)
	}
	pol, ok := sched.Lookup(sched.NameQueueGossip)
	if !ok {
		t.Fatal("queue-gossip policy not registered")
	}
	const seed = 5
	scales, tmpl := buildWorkload(spec, seed)
	c := newClusterSim(spec, scales, tmpl, pol, seed)
	rounds := 0
	sawKnown, sawUnknownWithCap := false, false
	c.checkView = func(base sched.View) {
		rounds++
		now := c.eng.Now()
		for src := 0; src < spec.Nodes; src++ {
			g := c.ic.Gossip(src)
			if g == nil {
				t.Fatal("switched fabric without a gossip daemon")
			}
			want := make([]sched.NodeView, spec.Nodes)
			for i := range want {
				if i == src {
					want[i] = base.Nodes[i]
					continue
				}
				e := g.Entry(i)
				if !e.Known {
					want[i] = sched.NodeView{
						CPUScale:   c.nodes[i].CPUScale,
						Load:       math.Inf(1),
						CapacityMB: spec.NodeMemMB,
						Unknown:    true,
					}
					sawUnknownWithCap = sawUnknownWithCap || want[i].CapacityMB > 0
					continue
				}
				want[i] = sched.NodeView{
					Procs:      e.Sample.Queue,
					CPUScale:   base.Nodes[i].CPUScale,
					Load:       e.Sample.Load,
					UsedMemMB:  e.Sample.UsedMemMB,
					CapacityMB: spec.NodeMemMB,
					QueueLen:   e.Sample.Queue,
					InfoAge:    now.Sub(e.Stamp),
				}
				sawKnown = true
			}
			got := c.gossipView(src, base)
			for i := range want {
				if got.Nodes[i] != want[i] {
					t.Fatalf("src %d row %d at %v: incremental %+v, rebuild %+v",
						src, i, now, got.Nodes[i], want[i])
				}
			}
		}
	}
	c.run()
	if rounds == 0 {
		t.Fatal("no balance rounds ran — the property was never checked")
	}
	if !sawKnown {
		t.Fatal("no Known gossip row ever appeared — the plane never converged at all")
	}
	if !sawUnknownWithCap {
		t.Fatal("no Unknown row with cluster capacity appeared — partial views were never exercised")
	}
}

// TestFabricGossipWindowSpec pins the window knob's spec plumbing: it is
// behaviour-bearing (fingerprints split on it), canonicalises to the
// fabric default, survives the JSON codec, stays out of legacy star
// fingerprints, and rejects absurd values.
func TestFabricGossipWindowSpec(t *testing.T) {
	base := Spec{
		Name: "w", Nodes: 8, Procs: 16, MeanCompute: simtime.Second,
		Fabric: FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4},
	}
	windowed := base
	windowed.Fabric.GossipWindow = 8
	if base.Fingerprint() == windowed.Fingerprint() {
		t.Fatal("gossip window is invisible to the fingerprint")
	}
	if got := base.Fabric.Canonical().GossipWindow; got != fabric.DefaultGossipWindow {
		t.Fatalf("canonical window %d, want fabric default %d", got, fabric.DefaultGossipWindow)
	}

	enc, err := EncodeSpec(windowed)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Fabric.GossipWindow != 8 {
		t.Fatalf("codec round-trip lost the window: got %d, want 8", dec.Fabric.GossipWindow)
	}

	star := base
	star.Fabric = FabricSpec{}
	if strings.Contains(star.Fingerprint(), "fabric=") {
		t.Fatal("legacy star fingerprint grew a fabric segment")
	}

	bad := FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4, GossipWindow: 1 << 17}
	if err := bad.Validate(); err == nil {
		t.Fatal("window 1<<17 accepted")
	}
}
