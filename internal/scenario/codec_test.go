package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/sched"
	"ampom/internal/simtime"
)

func TestSpecRoundTripPresets(t *testing.T) {
	for _, spec := range Presets() {
		enc, err := EncodeSpec(spec)
		if err != nil {
			t.Fatalf("%s: encode: %v", spec.Name, err)
		}
		dec, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v\n%s", spec.Name, err, enc)
		}
		if !reflect.DeepEqual(dec, spec.Canonical()) {
			t.Fatalf("%s: round trip changed the spec:\nwant %+v\ngot  %+v", spec.Name, spec.Canonical(), dec)
		}
		if dec.Fingerprint() != spec.Fingerprint() {
			t.Fatalf("%s: round trip changed the fingerprint", spec.Name)
		}
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := small()
	spec.Policies = []string{sched.NameAMPoM}
	if err := SaveSpec(path, spec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec.Canonical()) {
		t.Fatalf("file round trip changed the spec:\nwant %+v\ngot  %+v", spec.Canonical(), got)
	}
	// The explicit policy set canonicalises to {AMPoM, baseline}, sorted.
	want := []string{sched.NameAMPoM, sched.BaselineName}
	if !reflect.DeepEqual(got.Policies, want) {
		t.Fatalf("policies = %v, want %v", got.Policies, want)
	}
}

func TestDecodeSpecDefaults(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{"version": 1, "name": "tiny", "nodes": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Name: "tiny", Nodes: 4}.Canonical()
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("defaulting diverged from Canonical:\nwant %+v\ngot  %+v", want, spec)
	}
	if len(spec.Policies) != len(sched.Names()) {
		t.Fatalf("default policy set %v, want every registered policy", spec.Policies)
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"version": 1, "nodez": 4}`,
		"missing version":   `{"name": "x"}`,
		"future version":    `{"version": 99}`,
		"bad arrival":       `{"version": 1, "arrival": "bogus"}`,
		"bad placement":     `{"version": 1, "placement": "bogus"}`,
		"bad mix kind":      `{"version": 1, "mix": [{"kind": "bogus", "weight": 1}]}`,
		"bad churn kind":    `{"version": 1, "churn": [{"at": "1s", "kind": "bogus", "node": 1}]}`,
		"bad duration":      `{"version": 1, "mean_compute": "fast"}`,
		"unknown policy":    `{"version": 1, "policies": ["bogus"]}`,
		"invalid structure": `{"version": 1, "nodes": 1}`,
		"trailing data":     `{"version": 1} {"version": 1}`,
		"not json":          `nonsense`,
	}
	for name, doc := range cases {
		if _, err := DecodeSpec([]byte(doc)); err == nil {
			t.Errorf("%s accepted: %s", name, doc)
		}
	}
}

func TestSpecFabricRoundTrip(t *testing.T) {
	for _, spec := range []Spec{
		func() Spec {
			s := small()
			s.Fabric = FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4, Oversub: 2}
			s.LoadVectorLen = 5
			return s
		}(),
		func() Spec {
			s := small()
			s.Fabric = FabricSpec{Topology: fabric.KindFlat, GossipFanout: 3, GossipPeriod: simtime.Second}
			s.Churn = []ChurnEvent{{At: simtime.Second, Kind: ChurnBalloon, Node: 1, Factor: 4}}
			return s
		}(),
	} {
		enc, err := EncodeSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("decode: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(dec, spec.Canonical()) {
			t.Fatalf("fabric round trip changed the spec:\nwant %+v\ngot  %+v", spec.Canonical(), dec)
		}
		if dec.Fingerprint() != spec.Fingerprint() {
			t.Fatal("fabric round trip changed the fingerprint")
		}
	}
	// The default star omits the block entirely, keeping legacy documents
	// byte-stable; non-default blocks appear.
	enc, err := EncodeSpec(small())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), `"fabric"`) || strings.Contains(string(enc), `"load_vector_len"`) {
		t.Fatalf("default spec encodes fabric fields:\n%s", enc)
	}
	for name, doc := range map[string]string{
		"bad topology":  `{"version": 1, "fabric": {"topology": "hypercube"}}`,
		"bad rack size": `{"version": 1, "fabric": {"topology": "two-tier", "rack_size": 1}}`,
		"bad fanout":    `{"version": 1, "fabric": {"topology": "flat", "gossip_fanout": 999}}`,
		"bad period":    `{"version": 1, "fabric": {"topology": "flat", "gossip_period": "soon"}}`,
		"bad balloon":   `{"version": 1, "churn": [{"at": "1s", "kind": "balloon", "node": 0, "factor": -2}]}`,
		"bad l":         `{"version": 1, "load_vector_len": -3}`,
	} {
		if _, err := DecodeSpec([]byte(doc)); err == nil {
			t.Errorf("%s accepted: %s", name, doc)
		}
	}
}

func TestReportDecodeRoundTrip(t *testing.T) {
	spec := small()
	spec.Fabric = FabricSpec{Topology: fabric.KindTwoTier, RackSize: 2}
	rep := MustRun(spec, 7)

	// Single object form.
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReports(js)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d reports from a single object", len(got))
	}
	if !reflect.DeepEqual(got[0].Spec, rep.Spec) {
		t.Fatalf("decoded spec diverged:\nwant %+v\ngot  %+v", rep.Spec, got[0].Spec)
	}
	if got[0].Seed != rep.Seed || got[0].Procs != rep.Procs || len(got[0].Schemes) != len(rep.Schemes) {
		t.Fatal("decoded report envelope diverged")
	}
	for i, st := range got[0].Schemes {
		want := rep.Schemes[i]
		if st.Policy != want.Policy || st.Migrations != want.Migrations ||
			st.HardFaults != want.HardFaults || st.MigrationBytes != want.MigrationBytes ||
			st.Events != want.Events || len(st.TierUse) != len(want.TierUse) {
			t.Fatalf("row %d diverged:\nwant %+v\ngot  %+v", i, want, st)
		}
	}
	// Decode→encode is stable at the JSON level (the regression-gate
	// property -diff relies on).
	js2, err := got[0].JSON()
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := DiffReportsData(js, js2)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("decode→encode diverged:\n%s", strings.Join(diffs, "\n"))
	}

	// Array form.
	batch, err := ReportsJSON([]*Report{rep, rep})
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeReports(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d reports from a 2-array", len(got))
	}

	// Garbage is rejected.
	for name, doc := range map[string]string{
		"bad version":   `{"version": 99}`,
		"unknown field": `{"version": 1, "bogus": 1}`,
		"trailing":      `{"version": 1} {}`,
		"not json":      `nonsense`,
	} {
		if _, err := DecodeReports([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestReportDecodeAcceptsUnregisteredPolicies locks the artefact contract:
// a report recorded under a custom policy decodes in a process that never
// registered it — the record of a past run must not depend on the
// decoder's registry (specs, by contrast, keep rejecting unknown names).
func TestReportDecodeAcceptsUnregisteredPolicies(t *testing.T) {
	doc := `{
  "version": 1,
  "spec": {"version": 1, "name": "foreign", "nodes": 4, "policies": ["my-custom-policy", "no-migration"]},
  "seed": 7,
  "procs": 16,
  "policies": [
    {"policy": "my-custom-policy", "makespan_s": 10, "mean_slowdown": 1.5, "slowdown_vs_base": 0.5,
     "migrations": 3, "frozen_s": 1, "extra_work_s": 0, "hard_faults": 0, "prefetch_pages": 0,
     "migration_bytes": 100, "unfinished": 0, "final_rtt_ms": 12, "events": 1000},
    {"policy": "no-migration", "makespan_s": 20, "mean_slowdown": 3, "slowdown_vs_base": 1,
     "migrations": 0, "frozen_s": 0, "extra_work_s": 0, "hard_faults": 0, "prefetch_pages": 0,
     "migration_bytes": 0, "unfinished": 0, "final_rtt_ms": 12, "events": 800}
  ]
}`
	reps, err := DecodeReports([]byte(doc))
	if err != nil {
		t.Fatalf("report with a custom policy failed to decode: %v", err)
	}
	if st, ok := reps[0].Scheme("my-custom-policy"); !ok || st.Migrations != 3 {
		t.Fatalf("custom policy row lost: %+v", reps[0].Schemes)
	}
	// The same names in a *spec* artefact stay rejected: a spec is an
	// input to run, and running needs the policy registered.
	if _, err := DecodeSpec([]byte(`{"version": 1, "policies": ["my-custom-policy"]}`)); err == nil {
		t.Fatal("spec with an unregistered policy accepted")
	}
	// And diffing artefacts with custom policies works too.
	if diffs, err := DiffReportsData([]byte(doc), []byte(doc)); err != nil || len(diffs) != 0 {
		t.Fatalf("self-diff of a custom-policy artefact failed: %v %v", diffs, err)
	}
}

func TestDiffReportsFindsDivergence(t *testing.T) {
	a := MustRun(small(), 7)
	b := MustRun(small(), 8)
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	same, err := DiffReportsData(aj, aj)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 0 {
		t.Fatalf("identical artefacts diverged:\n%s", strings.Join(same, "\n"))
	}
	diffs, err := DiffReportsData(aj, bj)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 {
		t.Fatal("different-seed artefacts compared equal")
	}
	found := false
	for _, d := range diffs {
		if strings.Contains(d, "seed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("seed divergence not reported:\n%s", strings.Join(diffs, "\n"))
	}
}

func TestReportJSONAndCSVDeterministic(t *testing.T) {
	rep := MustRun(small(), 7)
	j1, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := MustRun(small(), 7).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("equal-seed runs rendered different JSON")
	}
	if rep.CSV() != MustRun(small(), 7).CSV() {
		t.Fatal("equal-seed runs rendered different CSV")
	}
	// One row per policy, in report order, in both encodings.
	for _, st := range rep.Schemes {
		if !strings.Contains(string(j1), `"policy": "`+st.Policy+`"`) {
			t.Fatalf("JSON missing policy %q:\n%s", st.Policy, j1)
		}
	}
	lines := strings.Split(strings.TrimSpace(rep.CSV()), "\n")
	if len(lines) != 1+len(rep.Schemes) {
		t.Fatalf("CSV has %d lines for %d policies", len(lines), len(rep.Schemes))
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestReportsEncodersSkipNil(t *testing.T) {
	rep := MustRun(small(), 7)
	js, err := ReportsJSON([]*Report{nil, rep})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(js), "[") {
		t.Fatal("ReportsJSON is not an array")
	}
	csv := ReportsCSV([]*Report{nil, rep, rep})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2*len(rep.Schemes) {
		t.Fatalf("concatenated CSV has %d lines", len(lines))
	}
}
