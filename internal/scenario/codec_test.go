package scenario

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ampom/internal/sched"
)

func TestSpecRoundTripPresets(t *testing.T) {
	for _, spec := range Presets() {
		enc, err := EncodeSpec(spec)
		if err != nil {
			t.Fatalf("%s: encode: %v", spec.Name, err)
		}
		dec, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v\n%s", spec.Name, err, enc)
		}
		if !reflect.DeepEqual(dec, spec.Canonical()) {
			t.Fatalf("%s: round trip changed the spec:\nwant %+v\ngot  %+v", spec.Name, spec.Canonical(), dec)
		}
		if dec.Fingerprint() != spec.Fingerprint() {
			t.Fatalf("%s: round trip changed the fingerprint", spec.Name)
		}
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	spec := small()
	spec.Policies = []string{sched.NameAMPoM}
	if err := SaveSpec(path, spec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec.Canonical()) {
		t.Fatalf("file round trip changed the spec:\nwant %+v\ngot  %+v", spec.Canonical(), got)
	}
	// The explicit policy set canonicalises to {AMPoM, baseline}, sorted.
	want := []string{sched.NameAMPoM, sched.BaselineName}
	if !reflect.DeepEqual(got.Policies, want) {
		t.Fatalf("policies = %v, want %v", got.Policies, want)
	}
}

func TestDecodeSpecDefaults(t *testing.T) {
	spec, err := DecodeSpec([]byte(`{"version": 1, "name": "tiny", "nodes": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Name: "tiny", Nodes: 4}.Canonical()
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("defaulting diverged from Canonical:\nwant %+v\ngot  %+v", want, spec)
	}
	if len(spec.Policies) != len(sched.Names()) {
		t.Fatalf("default policy set %v, want every registered policy", spec.Policies)
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"version": 1, "nodez": 4}`,
		"missing version":   `{"name": "x"}`,
		"future version":    `{"version": 99}`,
		"bad arrival":       `{"version": 1, "arrival": "bogus"}`,
		"bad placement":     `{"version": 1, "placement": "bogus"}`,
		"bad mix kind":      `{"version": 1, "mix": [{"kind": "bogus", "weight": 1}]}`,
		"bad churn kind":    `{"version": 1, "churn": [{"at": "1s", "kind": "bogus", "node": 1}]}`,
		"bad duration":      `{"version": 1, "mean_compute": "fast"}`,
		"unknown policy":    `{"version": 1, "policies": ["bogus"]}`,
		"invalid structure": `{"version": 1, "nodes": 1}`,
		"trailing data":     `{"version": 1} {"version": 1}`,
		"not json":          `nonsense`,
	}
	for name, doc := range cases {
		if _, err := DecodeSpec([]byte(doc)); err == nil {
			t.Errorf("%s accepted: %s", name, doc)
		}
	}
}

func TestReportJSONAndCSVDeterministic(t *testing.T) {
	rep := MustRun(small(), 7)
	j1, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := MustRun(small(), 7).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("equal-seed runs rendered different JSON")
	}
	if rep.CSV() != MustRun(small(), 7).CSV() {
		t.Fatal("equal-seed runs rendered different CSV")
	}
	// One row per policy, in report order, in both encodings.
	for _, st := range rep.Schemes {
		if !strings.Contains(string(j1), `"policy": "`+st.Policy+`"`) {
			t.Fatalf("JSON missing policy %q:\n%s", st.Policy, j1)
		}
	}
	lines := strings.Split(strings.TrimSpace(rep.CSV()), "\n")
	if len(lines) != 1+len(rep.Schemes) {
		t.Fatalf("CSV has %d lines for %d policies", len(lines), len(rep.Schemes))
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestReportsEncodersSkipNil(t *testing.T) {
	rep := MustRun(small(), 7)
	js, err := ReportsJSON([]*Report{nil, rep})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(js), "[") {
		t.Fatal("ReportsJSON is not an array")
	}
	csv := ReportsCSV([]*Report{nil, rep, rep})
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+2*len(rep.Schemes) {
		t.Fatalf("concatenated CSV has %d lines", len(lines))
	}
}
