package scenario

import (
	"reflect"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/sched"
	"ampom/internal/simtime"
)

// tickSpec is churnSpec pinned to the two-tier fabric — the topology whose
// quantum tick is decomposed into per-rack-band sub-events.
func tickSpec(seed uint64) Spec {
	s := churnSpec(seed)
	s.Name = "tick-churn"
	s.Fabric.Topology = fabric.KindTwoTier
	return s.Canonical()
}

// monolithicSim builds a two-tier sim that keeps the whole-cluster
// single-event ticker — the reference the decomposition is compared
// against.
func monolithicSim(spec Spec, scales []float64, tmpl []procTemplate, pol sched.BalancerPolicy, seed uint64) *clusterSim {
	forceMonolithicTick = true
	defer func() { forceMonolithicTick = false }()
	return newClusterSim(spec, scales, tmpl, pol, seed)
}

// TestBandTickMatchesMonolithic is the decomposition's central property:
// under random churn/balloon/migration sequences and every registered
// policy, the per-band tick sub-events leave every process with exactly
// the state — remaining demand, completion instant, done/frozen flags,
// residence — a monolithic whole-cluster tick produces, at every quantum.
// Both sims are driven in lockstep through virtual time, pausing just past
// each quantum's epilogue instant so the decomposed run's completion
// aggregation has fired before each comparison.
func TestBandTickMatchesMonolithic(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		spec := tickSpec(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		scales, tmpl := buildWorkload(spec, seed)
		pols, err := sched.ByNames(spec.Policies)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range pols {
			dec := newClusterSim(spec, scales, tmpl, pol, seed)
			mono := monolithicSim(spec, scales, tmpl, pol, seed)
			name := pol.Name()
			if dec.bands == 0 || dec.bandEng == nil {
				t.Fatalf("seed %d/%s: two-tier sim did not decompose its tick", seed, name)
			}
			if wantBands := (spec.Nodes + spec.Fabric.RackSize - 1) / spec.Fabric.RackSize; dec.bands != wantBands {
				t.Fatalf("seed %d/%s: %d bands, want %d (rack geometry)", seed, name, dec.bands, wantBands)
			}
			if mono.bands != 0 {
				t.Fatalf("seed %d/%s: forced-monolithic sim decomposed anyway", seed, name)
			}

			at := simtime.Time(spec.Quantum)
			for q := 1; ; q++ {
				if at > dec.horizon {
					t.Fatalf("seed %d/%s: scenario never completed inside the horizon", seed, name)
				}
				edge := at.Add(tickEpilogueLag)
				dec.eng.Run(edge)
				mono.eng.Run(edge)
				if dec.doneN != mono.doneN {
					t.Fatalf("seed %d/%s quantum %d: doneN %d (decomposed) != %d (monolithic)",
						seed, name, q, dec.doneN, mono.doneN)
				}
				for i := range dec.procs {
					d, m := dec.procs[i], mono.procs[i]
					if d.remaining != m.remaining || d.finishAt != m.finishAt ||
						d.done != m.done || d.frozen != m.frozen ||
						d.node != m.node || d.arrived != m.arrived {
						t.Fatalf("seed %d/%s quantum %d: proc %d diverged:\ndecomposed rem=%v finish=%v done=%v frozen=%v node=%d arrived=%v\nmonolithic rem=%v finish=%v done=%v frozen=%v node=%d arrived=%v",
							seed, name, q, d.t.id,
							d.remaining, d.finishAt, d.done, d.frozen, d.node, d.arrived,
							m.remaining, m.finishAt, m.done, m.frozen, m.node, m.arrived)
					}
				}
				if dec.doneN == len(dec.procs) {
					break
				}
				at = at.Add(spec.Quantum)
			}
			if dec.st.Makespan != mono.st.Makespan {
				t.Fatalf("seed %d/%s: makespan %v (decomposed) != %v (monolithic)",
					seed, name, dec.st.Makespan, mono.st.Makespan)
			}
		}
	}
}

// TestBandTickMatchesMonolithicStats runs both tick implementations end to
// end and compares the full per-policy statistics. Only the processed
// event count (the decomposition schedules more, smaller events) and the
// sharding telemetry may differ; every model output must be identical.
func TestBandTickMatchesMonolithicStats(t *testing.T) {
	spec := tickSpec(2)
	scales, tmpl := buildWorkload(spec, 2)
	pols, err := sched.ByNames(spec.Policies)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range pols {
		dec := newClusterSim(spec, scales, tmpl, pol, 2).run()
		mono := monolithicSim(spec, scales, tmpl, pol, 2).run()
		if dec.Events <= mono.Events {
			t.Fatalf("%s: decomposed run processed %d events, monolithic %d — decomposition should add per-band sub-events",
				pol.Name(), dec.Events, mono.Events)
		}
		dec.Events, mono.Events = 0, 0
		dec.Sharding, mono.Sharding = nil, nil
		if !reflect.DeepEqual(dec, mono) {
			t.Fatalf("%s: model outputs diverge:\ndecomposed %+v\nmonolithic %+v", pol.Name(), dec, mono)
		}
	}
}
