package scenario

import (
	"strings"
	"testing"

	"ampom/internal/sched"
	"ampom/internal/simtime"
)

// small returns a quick scenario for tests that only need the machinery,
// not the scale.
func small() Spec {
	return Spec{
		Name:            "small",
		Nodes:           4,
		Procs:           12,
		MeanCompute:     8 * simtime.Second,
		MeanFootprintMB: 32,
		Skew:            0.7,
	}.Canonical()
}

func TestRunDeterministic(t *testing.T) {
	spec, err := Preset("hpc-farm")
	if err != nil {
		t.Fatal(err)
	}
	a := MustRun(spec, 7).Render()
	b := MustRun(spec, 7).Render()
	if a != b {
		t.Fatalf("same seed rendered different reports:\n%s\n---\n%s", a, b)
	}
}

func TestSeedChangesReport(t *testing.T) {
	spec := small()
	if MustRun(spec, 7).Render() == MustRun(spec, 8).Render() {
		t.Fatal("changing the seed left the report unchanged")
	}
}

func TestPresetsValidAndDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, name := range PresetNames() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
		if spec.Canonical().Fingerprint() != spec.Canonical().Canonical().Fingerprint() {
			t.Fatalf("preset %s: Canonical is not a fixed point", name)
		}
		fp := spec.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("presets %s and %s share fingerprint %q", prev, name, fp)
		}
		seen[fp] = name
	}
	if _, err := Preset("nonsense"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestAcceptancePresetShape(t *testing.T) {
	// The acceptance scenario is pinned: 64 nodes, 256 processes.
	spec, err := Preset("hpc-farm")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 64 || spec.Procs != 256 {
		t.Fatalf("hpc-farm is %d nodes / %d procs, want 64/256", spec.Nodes, spec.Procs)
	}
}

func TestFingerprintCanonicalises(t *testing.T) {
	var zero Spec
	if zero.Fingerprint() != zero.Canonical().Fingerprint() {
		t.Fatal("zero spec and its canonical form fingerprint differently")
	}
	shrunk := small()
	shrunk.Procs = 6
	if shrunk.Fingerprint() == small().Fingerprint() {
		t.Fatal("changing Procs left the fingerprint unchanged")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{Nodes: 1},
		{SlowFrac: 0.7, FastFrac: 0.7},
		{Skew: 2},
		{BackgroundLoad: 0.99},
		{Quantum: -simtime.Millisecond},
		{MeanCompute: -simtime.Second},
		{MeanInterarrival: -simtime.Second},
		{BalancePeriod: -simtime.Second},
		{MaxSimTime: -simtime.Second},
		{MeanFootprintMB: -1},
		{CostThreshold: -2},
		{Mix: []MixWeight{{Kind: MixRandom, Weight: 0}}},
		{Churn: []ChurnEvent{{Kind: ChurnSlowNode, Node: 99, Factor: 0.5}}},
		{Churn: []ChurnEvent{{Kind: ChurnBurst, Node: 0, Procs: 0}}},
		{Churn: []ChurnEvent{{Kind: ChurnNetLoad, Node: 0, Factor: 0.5}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestMigrationImprovesSkewedBurst(t *testing.T) {
	rep := MustRun(small(), 42)
	base := rep.Baseline()
	am, ok := rep.Scheme(sched.NameAMPoM)
	if !ok {
		t.Fatal("no AMPoM row")
	}
	om, ok := rep.Scheme(sched.NameOpenMosix)
	if !ok {
		t.Fatal("no openMosix row")
	}
	if am.Migrations == 0 {
		t.Fatal("skewed burst triggered no AMPoM migrations")
	}
	if am.MeanSlowdown >= base.MeanSlowdown {
		t.Fatalf("AMPoM slowdown %.2f did not beat no-migration %.2f", am.MeanSlowdown, base.MeanSlowdown)
	}
	if am.HardFaults == 0 || am.PrefetchPages == 0 {
		t.Fatal("AMPoM migrations produced no prefetch census")
	}
	if om.HardFaults != 0 || om.PrefetchPages != 0 {
		t.Fatal("openMosix must not report remote faults")
	}
	if base.Migrations != 0 || base.MigrationBytes != 0 {
		t.Fatal("no-migration baseline moved something")
	}
}

func TestPolicySetCanonicalAndFingerprinted(t *testing.T) {
	full := small()
	subset := small()
	subset.Policies = []string{sched.NameAMPoM}

	// Canonical: empty means the whole registry; explicit sets gain the
	// baseline and sort.
	if got := full.Canonical().Policies; len(got) != len(sched.Names()) {
		t.Fatalf("default policy set %v, want the registry", got)
	}
	want := []string{sched.NameAMPoM, sched.BaselineName}
	got := subset.Canonical().Policies
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("subset canonicalised to %v, want %v", got, want)
	}

	// The policy set is part of the job key.
	if full.Fingerprint() == subset.Fingerprint() {
		t.Fatal("policy set missing from the fingerprint")
	}

	// A subset run reports exactly its rows, in sorted order.
	rep := MustRun(subset, 42)
	if len(rep.Schemes) != 2 || rep.Schemes[0].Policy != sched.NameAMPoM || rep.Schemes[1].Policy != sched.BaselineName {
		t.Fatalf("subset report rows wrong: %+v", rep.Schemes)
	}
	if rep.Baseline().Policy != sched.BaselineName {
		t.Fatal("Baseline did not find the no-migration row")
	}

	// Unknown policies are rejected.
	bad := small()
	bad.Policies = []string{"bogus"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

func TestNewPoliciesActOnPressure(t *testing.T) {
	// A tight-memory, heavily skewed cluster: the usher must evacuate the
	// entry node, and the load-vector policy must migrate despite partial
	// knowledge.
	spec := small()
	spec.NodeMemMB = 2 * spec.MeanFootprintMB
	rep := MustRun(spec, 42)
	usher, ok := rep.Scheme(sched.NameMemUsher)
	if !ok {
		t.Fatal("no mem-usher row")
	}
	if usher.Migrations == 0 {
		t.Fatal("memory pressure triggered no ushering")
	}
	lv, ok := rep.Scheme(sched.NameLoadVector)
	if !ok {
		t.Fatal("no load-vector row")
	}
	if lv.Migrations == 0 {
		t.Fatal("skewed burst triggered no load-vector migrations")
	}
	base := rep.Baseline()
	if lv.MeanSlowdown >= base.MeanSlowdown {
		t.Fatalf("load-vector slowdown %.2f did not beat no-migration %.2f",
			lv.MeanSlowdown, base.MeanSlowdown)
	}
}

func TestBurstChurnAddsProcesses(t *testing.T) {
	spec := small()
	spec.Churn = []ChurnEvent{{At: simtime.Second, Kind: ChurnBurst, Node: 1, Procs: 5}}
	rep := MustRun(spec, 42)
	if rep.Procs != spec.Procs+5 {
		t.Fatalf("report has %d procs, want %d", rep.Procs, spec.Procs+5)
	}
	if !strings.Contains(rep.Render(), "(5 in bursts)") {
		t.Fatal("burst not reported in the header")
	}
}

func TestChurnChangesOutcome(t *testing.T) {
	plain := small()
	churned := small()
	churned.Churn = []ChurnEvent{{At: simtime.Second, Kind: ChurnSlowNode, Node: 0, Factor: 0.25}}
	if MustRun(plain, 42).Render() == MustRun(churned, 42).Render() {
		t.Fatal("slowing the loaded node changed nothing")
	}
	if plain.Fingerprint() == churned.Fingerprint() {
		t.Fatal("churn missing from the fingerprint")
	}
}

func TestNegativeSkewMeansUniform(t *testing.T) {
	spec := small()
	spec.Procs = 400
	spec.Skew = -1
	if err := spec.Validate(); err != nil {
		t.Fatalf("negative skew rejected: %v", err)
	}
	if got := spec.Canonical().Skew; got != -1 {
		t.Fatalf("canonical skew %g, want the -1 uniform sentinel", got)
	}
	if spec.Fingerprint() == small().Fingerprint() {
		t.Fatal("uniform placement shares a fingerprint with the skewed default")
	}
	_, procs := buildWorkload(spec.Canonical(), 42)
	onZero := 0
	for _, p := range procs {
		if p.node == 0 {
			onZero++
		}
	}
	// Uniform over 4 nodes: ~100 of 400 on node 0, nowhere near the 0.8
	// default skew's ~320.
	if onZero > len(procs)/2 {
		t.Fatalf("%d of %d processes on node 0 — placement still skewed", onZero, len(procs))
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	spec := small()
	spec.Placement = PlaceRoundRobin
	_, procs := buildWorkload(spec, 42)
	for i, p := range procs {
		if p.node != i%spec.Nodes {
			t.Fatalf("proc %d placed on node %d, want %d", i, p.node, i%spec.Nodes)
		}
	}
}

func TestWorkloadSharedAcrossPolicies(t *testing.T) {
	// The templates must come out identically however often they are drawn.
	spec := small()
	_, a := buildWorkload(spec, 9)
	_, b := buildWorkload(spec, 9)
	if len(a) != len(b) {
		t.Fatal("template counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("template %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHorizonBoundsRun(t *testing.T) {
	spec := small()
	spec.MaxSimTime = 3 * simtime.Second // far too short to finish
	rep := MustRun(spec, 42)
	for _, st := range rep.Schemes {
		if st.Unfinished == 0 {
			t.Fatalf("%v: horizon of %v finished everything", st.Policy, spec.MaxSimTime)
		}
		if st.Makespan > spec.MaxSimTime {
			t.Fatalf("%v: makespan %v beyond horizon", st.Policy, st.Makespan)
		}
	}
}

func TestHeterogeneousScales(t *testing.T) {
	spec := small()
	spec.SlowFrac, spec.FastFrac = 0.25, 0.25
	scales, _ := buildWorkload(spec, 42)
	slow, fast, ref := 0, 0, 0
	for _, s := range scales {
		switch s {
		case spec.SlowScale:
			slow++
		case spec.FastScale:
			fast++
		case 1:
			ref++
		default:
			t.Fatalf("unexpected CPU scale %g", s)
		}
	}
	if slow != 1 || fast != 1 || ref != 2 {
		t.Fatalf("tier split %d/%d/%d, want 1 slow, 1 fast, 2 reference", slow, fast, ref)
	}
}

func TestMixTraceCoversWorkingSet(t *testing.T) {
	// Sequential and blocked mixes touch every working-set page exactly
	// once; random stays within bounds.
	for _, k := range []MixKind{MixSequential, MixBlocked, MixSmallWS, MixRandom} {
		src := k.Trace(64, 3)()
		seen := make(map[int64]int)
		n := 0
		for {
			ref, ok := src.Next()
			if !ok {
				break
			}
			if ref.Page < 0 || ref.Page >= 64 {
				t.Fatalf("%v: page %d out of the 64-page working set", k, ref.Page)
			}
			seen[int64(ref.Page)]++
			n++
		}
		if n == 0 {
			t.Fatalf("%v: empty trace", k)
		}
		if k != MixRandom && len(seen) != 64 {
			t.Fatalf("%v: touched %d of 64 pages", k, len(seen))
		}
	}
}
