package scenario

import (
	"math"
	"strings"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/sched"
	"ampom/internal/simtime"
)

// small returns a quick scenario for tests that only need the machinery,
// not the scale.
func small() Spec {
	return Spec{
		Name:            "small",
		Nodes:           4,
		Procs:           12,
		MeanCompute:     8 * simtime.Second,
		MeanFootprintMB: 32,
		Skew:            0.7,
	}.Canonical()
}

func TestRunDeterministic(t *testing.T) {
	spec, err := Preset("hpc-farm")
	if err != nil {
		t.Fatal(err)
	}
	a := MustRun(spec, 7).Render()
	b := MustRun(spec, 7).Render()
	if a != b {
		t.Fatalf("same seed rendered different reports:\n%s\n---\n%s", a, b)
	}
}

func TestSeedChangesReport(t *testing.T) {
	spec := small()
	if MustRun(spec, 7).Render() == MustRun(spec, 8).Render() {
		t.Fatal("changing the seed left the report unchanged")
	}
}

func TestPresetsValidAndDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, name := range PresetNames() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
		if spec.Canonical().Fingerprint() != spec.Canonical().Canonical().Fingerprint() {
			t.Fatalf("preset %s: Canonical is not a fixed point", name)
		}
		fp := spec.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("presets %s and %s share fingerprint %q", prev, name, fp)
		}
		seen[fp] = name
	}
	if _, err := Preset("nonsense"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestAcceptancePresetShape(t *testing.T) {
	// The acceptance scenario is pinned: 64 nodes, 256 processes.
	spec, err := Preset("hpc-farm")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 64 || spec.Procs != 256 {
		t.Fatalf("hpc-farm is %d nodes / %d procs, want 64/256", spec.Nodes, spec.Procs)
	}
}

func TestFingerprintCanonicalises(t *testing.T) {
	var zero Spec
	if zero.Fingerprint() != zero.Canonical().Fingerprint() {
		t.Fatal("zero spec and its canonical form fingerprint differently")
	}
	shrunk := small()
	shrunk.Procs = 6
	if shrunk.Fingerprint() == small().Fingerprint() {
		t.Fatal("changing Procs left the fingerprint unchanged")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{Nodes: 1},
		{SlowFrac: 0.7, FastFrac: 0.7},
		{SlowFrac: math.NaN()},
		{FastFrac: math.NaN()},
		{SlowFrac: math.NaN(), FastFrac: math.NaN()},
		{Skew: 2},
		{BackgroundLoad: 0.99},
		{Quantum: -simtime.Millisecond},
		{MeanCompute: -simtime.Second},
		{MeanInterarrival: -simtime.Second},
		{BalancePeriod: -simtime.Second},
		{MaxSimTime: -simtime.Second},
		{MeanFootprintMB: -1},
		{CostThreshold: -2},
		{Mix: []MixWeight{{Kind: MixRandom, Weight: 0}}},
		{Churn: []ChurnEvent{{Kind: ChurnSlowNode, Node: 99, Factor: 0.5}}},
		{Churn: []ChurnEvent{{Kind: ChurnBurst, Node: 0, Procs: 0}}},
		{Churn: []ChurnEvent{{Kind: ChurnNetLoad, Node: 0, Factor: 0.5}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestMigrationImprovesSkewedBurst(t *testing.T) {
	rep := MustRun(small(), 42)
	base := rep.Baseline()
	am, ok := rep.Scheme(sched.NameAMPoM)
	if !ok {
		t.Fatal("no AMPoM row")
	}
	om, ok := rep.Scheme(sched.NameOpenMosix)
	if !ok {
		t.Fatal("no openMosix row")
	}
	if am.Migrations == 0 {
		t.Fatal("skewed burst triggered no AMPoM migrations")
	}
	if am.MeanSlowdown >= base.MeanSlowdown {
		t.Fatalf("AMPoM slowdown %.2f did not beat no-migration %.2f", am.MeanSlowdown, base.MeanSlowdown)
	}
	if am.HardFaults == 0 || am.PrefetchPages == 0 {
		t.Fatal("AMPoM migrations produced no prefetch census")
	}
	if om.HardFaults != 0 || om.PrefetchPages != 0 {
		t.Fatal("openMosix must not report remote faults")
	}
	if base.Migrations != 0 || base.MigrationBytes != 0 {
		t.Fatal("no-migration baseline moved something")
	}
}

func TestPolicySetCanonicalAndFingerprinted(t *testing.T) {
	full := small()
	subset := small()
	subset.Policies = []string{sched.NameAMPoM}

	// Canonical: empty means the whole registry; explicit sets gain the
	// baseline and sort.
	if got := full.Canonical().Policies; len(got) != len(sched.Names()) {
		t.Fatalf("default policy set %v, want the registry", got)
	}
	want := []string{sched.NameAMPoM, sched.BaselineName}
	got := subset.Canonical().Policies
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("subset canonicalised to %v, want %v", got, want)
	}

	// The policy set is part of the job key.
	if full.Fingerprint() == subset.Fingerprint() {
		t.Fatal("policy set missing from the fingerprint")
	}

	// A subset run reports exactly its rows, in sorted order.
	rep := MustRun(subset, 42)
	if len(rep.Schemes) != 2 || rep.Schemes[0].Policy != sched.NameAMPoM || rep.Schemes[1].Policy != sched.BaselineName {
		t.Fatalf("subset report rows wrong: %+v", rep.Schemes)
	}
	if rep.Baseline().Policy != sched.BaselineName {
		t.Fatal("Baseline did not find the no-migration row")
	}

	// Unknown policies are rejected.
	bad := small()
	bad.Policies = []string{"bogus"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

func TestNewPoliciesActOnPressure(t *testing.T) {
	// A tight-memory, heavily skewed cluster: the usher must evacuate the
	// entry node, and the load-vector policy must migrate despite partial
	// knowledge.
	spec := small()
	spec.NodeMemMB = 2 * spec.MeanFootprintMB
	rep := MustRun(spec, 42)
	usher, ok := rep.Scheme(sched.NameMemUsher)
	if !ok {
		t.Fatal("no mem-usher row")
	}
	if usher.Migrations == 0 {
		t.Fatal("memory pressure triggered no ushering")
	}
	lv, ok := rep.Scheme(sched.NameLoadVector)
	if !ok {
		t.Fatal("no load-vector row")
	}
	if lv.Migrations == 0 {
		t.Fatal("skewed burst triggered no load-vector migrations")
	}
	base := rep.Baseline()
	if lv.MeanSlowdown >= base.MeanSlowdown {
		t.Fatalf("load-vector slowdown %.2f did not beat no-migration %.2f",
			lv.MeanSlowdown, base.MeanSlowdown)
	}
}

func TestBurstChurnAddsProcesses(t *testing.T) {
	spec := small()
	spec.Churn = []ChurnEvent{{At: simtime.Second, Kind: ChurnBurst, Node: 1, Procs: 5}}
	rep := MustRun(spec, 42)
	if rep.Procs != spec.Procs+5 {
		t.Fatalf("report has %d procs, want %d", rep.Procs, spec.Procs+5)
	}
	if !strings.Contains(rep.Render(), "(5 in bursts)") {
		t.Fatal("burst not reported in the header")
	}
}

func TestChurnChangesOutcome(t *testing.T) {
	plain := small()
	churned := small()
	churned.Churn = []ChurnEvent{{At: simtime.Second, Kind: ChurnSlowNode, Node: 0, Factor: 0.25}}
	if MustRun(plain, 42).Render() == MustRun(churned, 42).Render() {
		t.Fatal("slowing the loaded node changed nothing")
	}
	if plain.Fingerprint() == churned.Fingerprint() {
		t.Fatal("churn missing from the fingerprint")
	}
}

func TestNegativeSkewMeansUniform(t *testing.T) {
	spec := small()
	spec.Procs = 400
	spec.Skew = -1
	if err := spec.Validate(); err != nil {
		t.Fatalf("negative skew rejected: %v", err)
	}
	if got := spec.Canonical().Skew; got != -1 {
		t.Fatalf("canonical skew %g, want the -1 uniform sentinel", got)
	}
	if spec.Fingerprint() == small().Fingerprint() {
		t.Fatal("uniform placement shares a fingerprint with the skewed default")
	}
	_, procs := buildWorkload(spec.Canonical(), 42)
	onZero := 0
	for _, p := range procs {
		if p.node == 0 {
			onZero++
		}
	}
	// Uniform over 4 nodes: ~100 of 400 on node 0, nowhere near the 0.8
	// default skew's ~320.
	if onZero > len(procs)/2 {
		t.Fatalf("%d of %d processes on node 0 — placement still skewed", onZero, len(procs))
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	spec := small()
	spec.Placement = PlaceRoundRobin
	_, procs := buildWorkload(spec, 42)
	for i, p := range procs {
		if p.node != i%spec.Nodes {
			t.Fatalf("proc %d placed on node %d, want %d", i, p.node, i%spec.Nodes)
		}
	}
}

func TestWorkloadSharedAcrossPolicies(t *testing.T) {
	// The templates must come out identically however often they are drawn.
	spec := small()
	_, a := buildWorkload(spec, 9)
	_, b := buildWorkload(spec, 9)
	if len(a) != len(b) {
		t.Fatal("template counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("template %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFootprintDrawNeverZero pins the degenerate-mean clamp: a 1 MB mean
// footprint (0/2 + Uint64n(1) == 0 before the clamp) must still yield
// processes that cost something to migrate.
func TestFootprintDrawNeverZero(t *testing.T) {
	spec := small()
	spec.MeanFootprintMB = 1
	_, procs := buildWorkload(spec.Canonical(), 42)
	for _, p := range procs {
		if p.footprintMB < 1 {
			t.Fatalf("proc %d drew a %d MB footprint at mean 1 MB", p.id, p.footprintMB)
		}
	}
}

func TestHorizonBoundsRun(t *testing.T) {
	spec := small()
	spec.MaxSimTime = 3 * simtime.Second // far too short to finish
	rep := MustRun(spec, 42)
	for _, st := range rep.Schemes {
		if st.Unfinished == 0 {
			t.Fatalf("%v: horizon of %v finished everything", st.Policy, spec.MaxSimTime)
		}
		if st.Makespan > spec.MaxSimTime {
			t.Fatalf("%v: makespan %v beyond horizon", st.Policy, st.Makespan)
		}
	}
}

func TestHeterogeneousScales(t *testing.T) {
	spec := small()
	spec.SlowFrac, spec.FastFrac = 0.25, 0.25
	scales, _ := buildWorkload(spec, 42)
	slow, fast, ref := 0, 0, 0
	for _, s := range scales {
		switch s {
		case spec.SlowScale:
			slow++
		case spec.FastScale:
			fast++
		case 1:
			ref++
		default:
			t.Fatalf("unexpected CPU scale %g", s)
		}
	}
	if slow != 1 || fast != 1 || ref != 2 {
		t.Fatalf("tier split %d/%d/%d, want 1 slow, 1 fast, 2 reference", slow, fast, ref)
	}
}

func TestBalloonChurnPressuresUsher(t *testing.T) {
	// A cluster with headroom: without the balloon, nothing crosses the
	// usher's high-water mark; with a mid-run footprint explosion on the
	// loaded node, ushering must evacuate.
	spec := small()
	spec.NodeMemMB = 24 * spec.MeanFootprintMB
	calm := MustRun(spec, 42)
	calmUsher, ok := calm.Scheme(sched.NameMemUsher)
	if !ok {
		t.Fatal("no mem-usher row")
	}
	if calmUsher.Migrations != 0 {
		t.Fatalf("headroom cluster ushered %d times without pressure", calmUsher.Migrations)
	}

	spec.Churn = []ChurnEvent{
		{At: 2 * simtime.Second, Kind: ChurnBalloon, Node: 0, Factor: 16},
		{At: 3 * simtime.Second, Kind: ChurnBalloon, Node: 0, Factor: 4},
	}
	ballooned := MustRun(spec, 42)
	usher, ok := ballooned.Scheme(sched.NameMemUsher)
	if !ok {
		t.Fatal("no mem-usher row")
	}
	if usher.Migrations == 0 {
		t.Fatal("balloon churn triggered no ushering")
	}
	if calm.Render() == ballooned.Render() {
		t.Fatal("balloon churn changed nothing")
	}
	if spec.Fingerprint() == small().Fingerprint() {
		t.Fatal("balloon churn missing from the fingerprint")
	}
}

func TestBalloonValidation(t *testing.T) {
	bad := []Spec{
		{Churn: []ChurnEvent{{Kind: ChurnBalloon, Node: 99, Factor: 2}}},
		{Churn: []ChurnEvent{{Kind: ChurnBalloon, Node: 0, Factor: 0}}},
		{Churn: []ChurnEvent{{Kind: ChurnBalloon, Node: 0, Factor: -1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad balloon spec %d accepted: %+v", i, s)
		}
	}
	ok := small()
	ok.Churn = []ChurnEvent{{At: simtime.Second, Kind: ChurnBalloon, Node: 1, Factor: 2.5}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid balloon rejected: %v", err)
	}
}

func TestLoadVectorLenFromSpec(t *testing.T) {
	// The sample size l is behaviour-bearing and fingerprinted: a 1-entry
	// vector decides with far less knowledge than the built-in default.
	wide := small()
	wide.Procs = 48
	narrow := wide
	narrow.LoadVectorLen = 1
	if wide.Fingerprint() == narrow.Fingerprint() {
		t.Fatal("LoadVectorLen missing from the fingerprint")
	}
	if MustRun(wide, 42).Render() == MustRun(narrow, 42).Render() {
		t.Fatal("shrinking the load vector changed nothing")
	}
	// l >= Nodes-1 means full knowledge — the load-vector policy then
	// behaves like the classic target and still migrates.
	full := wide
	full.LoadVectorLen = wide.Nodes
	lv, ok := MustRun(full, 42).Scheme(sched.NameLoadVector)
	if !ok {
		t.Fatal("no load-vector row")
	}
	if lv.Migrations == 0 {
		t.Fatal("full-knowledge load vector migrated nothing on a skewed burst")
	}
	bad := wide
	bad.LoadVectorLen = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative sample size accepted")
	}
}

func TestFabricSpecCanonicalAndValidate(t *testing.T) {
	// The star zeroes the block (the legacy fixed point).
	star := FabricSpec{Topology: fabric.KindStar, RackSize: 8, GossipFanout: 5}
	if got := star.Canonical(); got != (FabricSpec{}) {
		t.Fatalf("star canonicalised to %+v, want the zero block", got)
	}
	// Two-tier resolves shape and gossip defaults; flat drops the shape.
	tt := FabricSpec{Topology: fabric.KindTwoTier}.Canonical()
	if tt.RackSize != 16 || tt.Oversub != 4 || tt.GossipFanout != 2 || tt.GossipPeriod != 2*simtime.Second {
		t.Fatalf("two-tier defaults wrong: %+v", tt)
	}
	fl := FabricSpec{Topology: fabric.KindFlat, RackSize: 9, Oversub: 2}.Canonical()
	if fl.RackSize != 0 || fl.Oversub != 0 {
		t.Fatalf("flat kept two-tier shape fields: %+v", fl)
	}
	for _, f := range []FabricSpec{
		{Topology: fabric.KindTwoTier, RackSize: 1},
		{Topology: fabric.KindTwoTier, Oversub: -1},
		{Topology: fabric.KindFlat, GossipFanout: 65},
		{Topology: fabric.KindFlat, GossipPeriod: -simtime.Second},
		{Topology: fabric.Kind(99)},
	} {
		if err := f.Validate(); err == nil {
			t.Errorf("bad fabric block accepted: %+v", f)
		}
	}
	// Fixed point through Spec.Canonical too.
	s := small()
	s.Fabric = FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4}
	if s.Canonical().Fingerprint() != s.Canonical().Canonical().Fingerprint() {
		t.Fatal("fabric block breaks the Canonical fixed point")
	}
}

func TestNewPresetsShape(t *testing.T) {
	rack, err := Preset("rack-farm")
	if err != nil {
		t.Fatal(err)
	}
	if rack.Nodes != 512 || rack.Procs != 2048 {
		t.Fatalf("rack-farm is %dn/%dp, want 512/2048", rack.Nodes, rack.Procs)
	}
	if rack.Fabric.Topology != fabric.KindTwoTier || rack.Fabric.RackSize != 32 {
		t.Fatalf("rack-farm fabric %+v, want two-tier with 32-node racks", rack.Fabric)
	}
	mesh, err := Preset("gossip-mesh")
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Fabric.Topology != fabric.KindFlat || mesh.Fabric.GossipFanout != 3 {
		t.Fatalf("gossip-mesh fabric %+v, want flat with fanout 3", mesh.Fabric)
	}
}

func TestMixTraceCoversWorkingSet(t *testing.T) {
	// Sequential and blocked mixes touch every working-set page exactly
	// once; random stays within bounds.
	for _, k := range []MixKind{MixSequential, MixBlocked, MixSmallWS, MixRandom} {
		src := k.Trace(64, 3)()
		seen := make(map[int64]int)
		n := 0
		for {
			ref, ok := src.Next()
			if !ok {
				break
			}
			if ref.Page < 0 || ref.Page >= 64 {
				t.Fatalf("%v: page %d out of the 64-page working set", k, ref.Page)
			}
			seen[int64(ref.Page)]++
			n++
		}
		if n == 0 {
			t.Fatalf("%v: empty trace", k)
		}
		if k != MixRandom && len(seen) != 64 {
			t.Fatalf("%v: touched %d of 64 pages", k, len(seen))
		}
	}
}
