package scenario

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/simtime"
)

// This file locks the property the result store and the campaign service
// lean on: report encoding is a fixed point of the I/O round trip. A
// stored artefact decoded and re-encoded is byte-identical, so serving
// decoded reports (engine store hits, the daemon's CSV endpoint, the
// -server client mode) can never drift from the bytes the simulation
// originally rendered.

// randDuration returns a whole-millisecond duration; whole units keep the
// float seconds/milliseconds wire forms exactly recoverable.
func randDuration(rng *rand.Rand) simtime.Duration {
	return simtime.Duration(rng.Int63n(1_000_000_000)) * simtime.Millisecond
}

// randReport builds a syntactically valid report with adversarial values:
// multiple policies (registry and custom names), optional tier rows,
// full-range seeds and large counters.
func randReport(rng *rand.Rand, idx int) *Report {
	spec := Spec{
		Name:            fmt.Sprintf("rt-%d", idx),
		Nodes:           2 + rng.Intn(63),
		MeanFootprintMB: 1 + rng.Int63n(512),
		Skew:            rng.Float64(),
	}
	failures := false
	if rng.Intn(2) == 0 {
		spec.Fabric = FabricSpec{Topology: fabric.KindTwoTier, RackSize: 2 + rng.Intn(6)}
		// Half the switched specs carry failure churn, so the round trip
		// covers the failure-plane event kinds, the evacuate knob and the
		// extended CSV column set.
		if rng.Intn(2) == 0 {
			failures = true
			v := rng.Intn(2)
			spec.Churn = []ChurnEvent{
				{At: 1 * simtime.Second, Kind: ChurnNodeCrash, Node: v},
				{At: 2 * simtime.Second, Kind: ChurnLinkDown, Node: -1},
				{At: 3 * simtime.Second, Kind: ChurnLinkUp, Node: -1},
				{At: 4 * simtime.Second, Kind: ChurnNodeRecover, Node: v},
			}
			spec.Evacuate = rng.Intn(2) == 0
		}
	}
	spec = spec.Canonical()
	rep := &Report{
		Spec:  spec,
		Seed:  rng.Uint64(),
		Procs: 1 + rng.Intn(256),
	}
	policies := []string{"no-migration", "AMPoM", "openMosix", fmt.Sprintf("custom-%d", idx)}
	n := 1 + rng.Intn(len(policies))
	for _, pol := range policies[:n] {
		st := SchemeStats{
			Policy:         pol,
			Makespan:       randDuration(rng),
			MeanSlowdown:   rng.Float64() * 100,
			SlowdownVsBase: rng.Float64() * 10,
			Migrations:     rng.Intn(10_000),
			FrozenTotal:    randDuration(rng),
			ExtraWork:      randDuration(rng),
			HardFaults:     rng.Int63(),
			PrefetchPages:  rng.Int63(),
			MigrationBytes: rng.Int63(),
			Unfinished:     rng.Intn(64),
			FinalRTT:       randDuration(rng),
			Events:         rng.Uint64(),
		}
		if failures {
			st.SojournP50 = randDuration(rng)
			st.SojournP95 = randDuration(rng)
			st.SojournP99 = randDuration(rng)
			st.Crashes = rng.Intn(16)
			st.Evacuations = rng.Intn(256)
			st.FailBacks = rng.Intn(64)
		}
		for tier := 0; tier < rng.Intn(3); tier++ {
			st.TierUse = append(st.TierUse, fabric.TierStats{
				Name:        fmt.Sprintf("tier-%d", tier),
				Links:       1 + rng.Intn(64),
				CapacityBps: float64(rng.Int63n(1e12)),
				Bytes:       rng.Int63(),
			})
		}
		rep.Schemes = append(rep.Schemes, st)
	}
	return rep
}

// roundTripOnce decodes a single-report JSON artefact and asserts the
// decoded report re-encodes to the identical bytes (JSON) and the
// identical CSV as the original report.
func roundTripOnce(t *testing.T, label string, rep *Report, data []byte) *Report {
	t.Helper()
	decoded, err := DecodeReports(data)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(decoded) != 1 {
		t.Fatalf("%s: decoded %d reports, want 1", label, len(decoded))
	}
	re, err := decoded[0].JSON()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !bytes.Equal(re, data) {
		t.Fatalf("%s: decode→re-encode is not byte-identical:\n%s\n---\n%s", label, data, re)
	}
	if got, want := decoded[0].CSV(), rep.CSV(); got != want {
		t.Fatalf("%s: CSV of decoded report differs:\n%s\n---\n%s", label, got, want)
	}
	return decoded[0]
}

// TestReportRoundTripProperty drives randomized reports through the JSON
// codec: one decode reaches the encoding's fixed point, and a second
// round stays there byte for byte.
func TestReportRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		rep := randReport(rng, i)
		data, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		dec := roundTripOnce(t, fmt.Sprintf("report %d", i), rep, data)
		// Idempotence: a second round trip of the decoded form is exact.
		data2, err := dec.JSON()
		if err != nil {
			t.Fatal(err)
		}
		roundTripOnce(t, fmt.Sprintf("report %d (second round)", i), dec, data2)
	}
}

// TestReportsArrayRoundTrip locks the batch (array) artefact: decode and
// re-encode of a multi-report document is byte-identical, and the shared
// CSV document survives the trip.
func TestReportsArrayRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var reps []*Report
	for i := 0; i < 5; i++ {
		reps = append(reps, randReport(rng, 100+i))
	}
	data, err := ReportsJSON(reps)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeReports(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(reps) {
		t.Fatalf("decoded %d reports, want %d", len(decoded), len(reps))
	}
	re, err := ReportsJSON(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, data) {
		t.Fatal("array artefact decode→re-encode is not byte-identical")
	}
	if got, want := ReportsCSV(decoded), ReportsCSV(reps); got != want {
		t.Fatal("batch CSV differs after the round trip")
	}
}

// TestRealRunRoundTrip anchors the property on a genuine simulation — a
// small two-tier run whose report carries tier rows — so the generated
// cases cannot drift from what the engine actually emits.
func TestRealRunRoundTrip(t *testing.T) {
	spec := Spec{
		Name:            "rt-real",
		Nodes:           8,
		Procs:           16,
		MeanCompute:     4 * simtime.Second,
		MeanFootprintMB: 32,
		Fabric:          FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4},
	}.Canonical()
	rep, err := Run(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	var tiers int
	for _, st := range rep.Schemes {
		tiers += len(st.TierUse)
	}
	if tiers == 0 {
		t.Fatal("two-tier run rendered no tier rows; the round trip would not cover them")
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	roundTripOnce(t, "real run", rep, data)
}
