package scenario

import (
	"fmt"
	"strings"

	"ampom/internal/fabric"
	"ampom/internal/sched"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// SchemeStats summarises one policy's run of a scenario.
type SchemeStats struct {
	// Policy is the balancer policy's registry name.
	Policy string

	// Makespan is the instant the last process finished (or the horizon if
	// Unfinished > 0).
	Makespan simtime.Duration
	// MeanSlowdown averages (completion − arrival)/demand over processes.
	MeanSlowdown float64
	// SlowdownVsBase is MeanSlowdown relative to the no-migration baseline.
	SlowdownVsBase float64

	// Migrations counts completed balancer moves; FrozenTotal is the time
	// processes spent frozen or stalled on their working-set stream;
	// ExtraWork is the AMPoM remote-paging transfer charged after resumes.
	Migrations  int
	FrozenTotal simtime.Duration
	ExtraWork   simtime.Duration

	// HardFaults and PrefetchPages extrapolate the AMPoM prefetcher census
	// over every migrated working set; MigrationBytes totals freeze-time
	// payloads plus remote-paged working sets.
	HardFaults     int64
	PrefetchPages  int64
	MigrationBytes int64

	// Unfinished counts processes still running (or unarrived) at the
	// horizon.
	Unfinished int

	// The failure plane's SLO metrics, populated only on specs with
	// failure churn (HasFailures): sojourn latency (arrival → completion)
	// percentiles over completed processes by the nearest-rank method, and
	// the crash/evacuation/fail-back event counters. Legacy reports keep
	// their exact shape — the render/JSON/CSV codecs surface these columns
	// only on failure specs.
	SojournP50 simtime.Duration
	SojournP95 simtime.Duration
	SojournP99 simtime.Duration
	// Crashes counts node-crash events applied; Evacuations counts
	// processes drained off dying nodes through real migrations; FailBacks
	// counts interrupted migrations that reverted to their sources (crash
	// of the destination, a dead path at freeze time, or a bounced
	// in-flight payload).
	Crashes     int
	Evacuations int
	FailBacks   int
	// FinalRTT is the monitoring plane's mean round-trip estimate at the
	// end of the run: spoke-daemon RTTs on the star, staleness-derived
	// dissemination round trips on gossip fabrics.
	FinalRTT simtime.Duration
	// Events is the engine's processed-event count.
	Events uint64
	// TierUse reports per-tier link counts, aggregate capacity and
	// carried payload bytes. Populated only on switched fabrics; legacy
	// star reports keep their pre-fabric shape.
	TierUse []fabric.TierStats

	// Sharding carries the conservative window scheduler's occupancy
	// counters when the run was sharded; nil on sequential runs. This is
	// execution telemetry, not model output — sharding is an execution
	// strategy and every shard count must render byte-identical reports —
	// so the render/JSON/CSV codecs (all explicit field lists) deliberately
	// omit it. Benchmarks read it through SchemeStats to report parallel
	// efficiency.
	Sharding *ShardStats
}

// ShardStats is the sharded execution telemetry of one policy run.
type ShardStats struct {
	// Shards is the effective shard count the run executed under.
	Shards int
	// Workers reports whether windows fanned across goroutine workers
	// (true) or ran inline on one thread (single-CPU hosts, identical
	// schedule either way).
	Workers bool
	// Group is the window scheduler's occupancy picture.
	Group sim.GroupStats
}

// Report is the cluster-level outcome of one scenario under every policy.
type Report struct {
	// Spec is the canonical scenario that ran.
	Spec Spec
	// Seed is the scenario seed all streams derived from.
	Seed uint64
	// Procs counts every process injected, churn bursts included.
	Procs int
	// Schemes holds per-policy statistics in the spec's canonical
	// (registry-sorted) policy order — variable-width, keyed by name.
	Schemes []SchemeStats
}

// Render formats the report as an aligned table with a descriptive header.
// The rendering is a pure function of the report, so equal-seed runs are
// byte-identical — the property the golden tests lock in.
func (r *Report) Render() string {
	var b strings.Builder
	s := r.Spec
	fmt.Fprintf(&b, "scenario %s: %d nodes, %d procs", s.Name, s.Nodes, r.Procs)
	if burst := r.Procs - s.Procs; burst > 0 {
		fmt.Fprintf(&b, " (%d in bursts)", burst)
	}
	fmt.Fprintf(&b, ", %s/%s arrivals, net %s, seed %d\n", s.Arrival, s.Placement, s.Network.Name, r.Seed)
	fmt.Fprintf(&b, "mix:")
	for _, m := range s.sortedMix() {
		fmt.Fprintf(&b, " %s:%d", m.Kind, m.Weight)
	}
	if len(s.Churn) > 0 {
		fmt.Fprintf(&b, "; churn:")
		for _, c := range s.Churn {
			fmt.Fprintf(&b, " %s@%.0fs", c.Kind, c.At.Seconds())
		}
	}
	b.WriteString("\n")

	header := []string{
		"policy", "makespan(s)", "slowdown", "xbase", "migrations",
		"frozen(s)", "faults", "prefetched", "MB moved", "unfinished",
	}
	// Failure specs carry the SLO percentile and failure-event columns;
	// legacy tables keep their exact shape.
	failures := s.HasFailures()
	if failures {
		header = append(header,
			"p50(s)", "p95(s)", "p99(s)", "crashes", "evacuated", "failbacks")
	}
	rows := make([][]string, 0, len(r.Schemes))
	for _, st := range r.Schemes {
		row := []string{
			st.Policy,
			fmt.Sprintf("%.1f", st.Makespan.Seconds()),
			fmt.Sprintf("%.2f", st.MeanSlowdown),
			fmt.Sprintf("%.2f", st.SlowdownVsBase),
			fmt.Sprint(st.Migrations),
			fmt.Sprintf("%.1f", st.FrozenTotal.Seconds()),
			fmt.Sprint(st.HardFaults),
			fmt.Sprint(st.PrefetchPages),
			fmt.Sprintf("%.1f", float64(st.MigrationBytes)/1e6),
			fmt.Sprint(st.Unfinished),
		}
		if failures {
			row = append(row,
				fmt.Sprintf("%.2f", st.SojournP50.Seconds()),
				fmt.Sprintf("%.2f", st.SojournP95.Seconds()),
				fmt.Sprintf("%.2f", st.SojournP99.Seconds()),
				fmt.Sprint(st.Crashes),
				fmt.Sprint(st.Evacuations),
				fmt.Sprint(st.FailBacks),
			)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	// Per-tier link utilisation, a switched-fabric artefact (the legacy
	// star table is byte-stable without it).
	for _, st := range r.Schemes {
		if len(st.TierUse) == 0 {
			continue
		}
		fmt.Fprintf(&b, "tiers[%s]:", st.Policy)
		for _, tu := range st.TierUse {
			util := 0.0
			if cap := tu.CapacityBps * st.Makespan.Seconds(); cap > 0 {
				util = float64(tu.Bytes) / cap
			}
			fmt.Fprintf(&b, " %s %d links %.1f MB (%.1f%% util)",
				tu.Name, tu.Links, float64(tu.Bytes)/1e6, 100*util)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// sojournPercentile is the nearest-rank percentile (the smallest value
// with at least q% of the sample at or below it) over an ascending slice
// of sojourn latencies; callers guarantee a non-empty slice.
func sojournPercentile(sorted []simtime.Duration, q int) simtime.Duration {
	idx := (len(sorted)*q+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Baseline returns the no-migration statistics (the first row if the
// baseline was somehow excluded).
func (r *Report) Baseline() SchemeStats {
	if st, ok := r.Scheme(sched.BaselineName); ok {
		return st
	}
	if len(r.Schemes) > 0 {
		return r.Schemes[0]
	}
	return SchemeStats{}
}

// Scheme returns the statistics of one policy by registry name, or false
// if the policy was not run.
func (r *Report) Scheme(name string) (SchemeStats, bool) {
	for _, st := range r.Schemes {
		if st.Policy == name {
			return st, true
		}
	}
	return SchemeStats{}, false
}
