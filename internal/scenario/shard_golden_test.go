package scenario

import (
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/simtime"
)

// These tests pin the sharded engine's central contract: sharding is an
// execution strategy, not a model parameter. For every shard count the
// rendered, JSON and CSV reports must match the sequential run byte for
// byte — the same golden discipline the fabric refactor was held to.

// withShardWorkers forces the goroutine-per-shard window pool for the
// duration of fn, so `go test -race` exercises the real cross-goroutine
// handoff even on a single-CPU host.
func withShardWorkers(t *testing.T, fn func()) {
	t.Helper()
	was := forceShardWorkers
	forceShardWorkers = true
	defer func() { forceShardWorkers = was }()
	fn()
}

// shardGoldenSpecs are the presets the byte-identity sweep runs: the
// two-tier fabric test spec (3 racks of 4), and a churny heterogeneous
// variant that drives migrations, bursts and balloons across rack
// boundaries.
func shardGoldenSpecs() []Spec {
	churny := Spec{
		Name:            "shard-churny",
		Nodes:           12,
		Procs:           48,
		Skew:            0.7,
		SlowFrac:        0.25,
		FastFrac:        0.25,
		MeanCompute:     4 * simtime.Second,
		MeanFootprintMB: 64,
		Fabric:          FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4},
		Churn: []ChurnEvent{
			{At: 3 * simtime.Second, Kind: ChurnSlowNode, Node: 1, Factor: 0.5},
			{At: 4 * simtime.Second, Kind: ChurnNetLoad, Node: 5, Factor: 0.4},
			{At: 5 * simtime.Second, Kind: ChurnBurst, Node: 0, Procs: 8},
			{At: 6 * simtime.Second, Kind: ChurnBalloon, Node: 0, Factor: 1.5},
		},
	}.Canonical()
	return []Spec{fabricTestSpec(fabric.KindTwoTier), churny}
}

// renderAll is the full byte surface of a report.
func renderAll(t *testing.T, rep *Report) (string, string, string) {
	t.Helper()
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return rep.Render(), string(js), rep.CSV()
}

// TestShardedReportsByteIdentical sweeps shards ∈ {1, 2, racks} over the
// shard golden presets and requires every report surface to equal the
// sequential run's, with the worker pool forced on.
func TestShardedReportsByteIdentical(t *testing.T) {
	withShardWorkers(t, func() {
		for _, spec := range shardGoldenSpecs() {
			racks := (spec.Nodes + spec.Fabric.RackSize - 1) / spec.Fabric.RackSize
			seq, err := Run(spec, 7)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			wantR, wantJ, wantC := renderAll(t, seq)
			for _, shards := range []int{1, 2, racks} {
				rep, err := RunShards(spec, 7, shards)
				if err != nil {
					t.Fatalf("%s/shards=%d: %v", spec.Name, shards, err)
				}
				gotR, gotJ, gotC := renderAll(t, rep)
				if gotR != wantR {
					t.Errorf("%s/shards=%d: rendered report diverged from sequential:\n--- got ---\n%s--- want ---\n%s",
						spec.Name, shards, gotR, wantR)
				}
				if gotJ != wantJ {
					t.Errorf("%s/shards=%d: JSON report diverged from sequential", spec.Name, shards)
				}
				if gotC != wantC {
					t.Errorf("%s/shards=%d: CSV report diverged from sequential", spec.Name, shards)
				}
				// The telemetry rides outside the byte surface: genuinely
				// sharded runs must carry it, clamped-sequential runs not.
				for _, st := range rep.Schemes {
					if shards <= 1 {
						if st.Sharding != nil {
							t.Errorf("%s/shards=%d/%s: sequential run carries sharding telemetry", spec.Name, shards, st.Policy)
						}
						continue
					}
					if st.Sharding == nil {
						t.Errorf("%s/shards=%d/%s: sharded run lost its telemetry", spec.Name, shards, st.Policy)
						continue
					}
					if st.Sharding.Shards != shards || !st.Sharding.Workers || st.Sharding.Group.Windows == 0 {
						t.Errorf("%s/shards=%d/%s: telemetry %+v inconsistent with a forced-worker sharded run",
							spec.Name, shards, st.Policy, *st.Sharding)
					}
				}
			}
		}
	})
}

// TestShardedLegacyStarUnchanged locks that requesting shards on a star
// scenario clamps to the sequential engine and keeps reproducing the
// legacy goldens byte for byte.
func TestShardedLegacyStarUnchanged(t *testing.T) {
	for name, c := range legacyGoldenCases(t) {
		rep, err := RunShards(c.spec, c.seed, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := rep.Render(), readGolden(t, "legacy_star_"+name+".render.golden"); got != want {
			t.Errorf("%s: sharded star run diverged from the legacy golden", name)
		}
	}
}

// TestShardPlanClamps locks the plan resolution: non-two-tier topologies
// and degenerate counts run sequentially, rack bands are contiguous, and
// no rack straddles shards.
func TestShardPlanClamps(t *testing.T) {
	twoTier := fabricTestSpec(fabric.KindTwoTier) // 12 nodes, 3 racks of 4
	if n, _ := shardPlan(twoTier, 1); n != 1 {
		t.Fatalf("shards=1 resolved to %d", n)
	}
	if n, _ := shardPlan(fabricTestSpec(fabric.KindFlat), 4); n != 1 {
		t.Fatalf("flat fabric resolved to %d shards, want sequential", n)
	}
	if n, _ := shardPlan(fabricTestSpec(fabric.KindStar), 4); n != 1 {
		t.Fatalf("star fabric resolved to %d shards, want sequential", n)
	}
	n, shardOf := shardPlan(twoTier, 8)
	if n != 3 {
		t.Fatalf("shards=8 over 3 racks resolved to %d, want 3", n)
	}
	for i, s := range shardOf {
		if want := i / twoTier.Fabric.RackSize; s != want {
			t.Fatalf("node %d on shard %d, want %d", i, s, want)
		}
	}
	n, shardOf = shardPlan(twoTier, 2)
	if n != 2 {
		t.Fatalf("shards=2 resolved to %d", n)
	}
	for i, s := range shardOf {
		rack := i / twoTier.Fabric.RackSize
		if want := rack * 2 / 3; s != want {
			t.Fatalf("node %d (rack %d) on shard %d, want %d", i, rack, s, want)
		}
		if first := shardOf[rack*twoTier.Fabric.RackSize]; s != first {
			t.Fatalf("rack %d straddles shards %d and %d", rack, first, s)
		}
	}
}
