package scenario

import (
	"strings"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/simtime"
)

// These tests pin the failure plane's semantics (crash, evacuation,
// fail-back, recovery — no process is ever lost) and its central execution
// contract: failures are global events, so failure reports stay
// byte-identical at every shard count.

// failureTestSpec is a 4-node two-tier cluster with every process landing
// on node 0, run under the no-migration baseline only — so the only
// migrations are the failure plane's own (evacuations), and each mechanism
// is observable in isolation.
func failureTestSpec(churn []ChurnEvent, evacuate bool) Spec {
	return Spec{
		Name:        "failure-sem",
		Nodes:       4,
		Procs:       12,
		Skew:        1, // every arrival lands on node 0
		MeanCompute: 5 * simtime.Second,
		Policies:    []string{"no-migration"},
		Fabric:      FabricSpec{Topology: fabric.KindTwoTier, RackSize: 2},
		Evacuate:    evacuate,
		Churn:       churn,
	}.Canonical()
}

// mustScheme extracts one policy row.
func mustScheme(t *testing.T, rep *Report, policy string) SchemeStats {
	t.Helper()
	st, ok := rep.Scheme(policy)
	if !ok {
		t.Fatalf("report has no %s row", policy)
	}
	return st
}

// TestCrashKillsProgress locks the non-evacuating crash semantics: the
// crashed node's runnable residents lose their progress and park until
// recovery — the run takes longer than the crash-free one — but no process
// is lost, and the sojourn percentile columns are populated.
func TestCrashKillsProgress(t *testing.T) {
	base := MustRun(failureTestSpec(nil, false), 7)
	crashed := MustRun(failureTestSpec([]ChurnEvent{
		{At: 10 * simtime.Second, Kind: ChurnNodeCrash, Node: 0},
		{At: 14 * simtime.Second, Kind: ChurnNodeRecover, Node: 0},
	}, false), 7)

	bs := mustScheme(t, base, "no-migration")
	cs := mustScheme(t, crashed, "no-migration")
	if cs.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", cs.Crashes)
	}
	if cs.Unfinished != 0 {
		t.Fatalf("crash lost %d processes", cs.Unfinished)
	}
	if cs.Makespan <= bs.Makespan {
		t.Fatalf("crash did not cost progress: makespan %v <= crash-free %v", cs.Makespan, bs.Makespan)
	}
	if cs.SojournP50 <= 0 || cs.SojournP95 < cs.SojournP50 || cs.SojournP99 < cs.SojournP95 {
		t.Fatalf("sojourn percentiles malformed: p50 %v p95 %v p99 %v", cs.SojournP50, cs.SojournP95, cs.SojournP99)
	}
	if bs.SojournP50 != 0 || bs.Crashes != 0 {
		t.Fatalf("failure metrics leaked into the failure-free run: %+v", bs)
	}
}

// TestEvacuationPreservesProgress locks the evacuating crash: the dying
// node drains its runnable residents through real migrations (counted, and
// moving real bytes), even under the no-migration balancer — the failure
// plane sits below balancing policy — and the preserved progress beats the
// kill-in-place run.
func TestEvacuationPreservesProgress(t *testing.T) {
	churn := []ChurnEvent{
		{At: 10 * simtime.Second, Kind: ChurnNodeCrash, Node: 0},
		{At: 14 * simtime.Second, Kind: ChurnNodeRecover, Node: 0},
	}
	killed := MustRun(failureTestSpec(churn, false), 7)
	evac := MustRun(failureTestSpec(churn, true), 7)

	ks := mustScheme(t, killed, "no-migration")
	es := mustScheme(t, evac, "no-migration")
	if es.Evacuations == 0 {
		t.Fatal("evacuating crash recorded no evacuations")
	}
	if es.Migrations < es.Evacuations {
		t.Fatalf("evacuations (%d) are migrations, but Migrations = %d", es.Evacuations, es.Migrations)
	}
	if es.MigrationBytes == 0 {
		t.Fatal("evacuation moved no bytes")
	}
	if ks.Evacuations != 0 || ks.Migrations != 0 {
		t.Fatalf("kill-in-place run migrated: %+v", ks)
	}
	if es.Unfinished != 0 {
		t.Fatalf("evacuation lost %d processes", es.Unfinished)
	}
	if es.Makespan >= ks.Makespan {
		t.Fatalf("evacuation did not preserve progress: makespan %v >= killed %v", es.Makespan, ks.Makespan)
	}
}

// TestCrashMidRestoreFailsBack locks the fail-back protocol end to end:
// node 0 crashes and evacuates, and 30 ms later — inside the evacuees'
// 65 ms restore window — their destinations start crashing too, so some
// evacuee demonstrably fails back to its (dead) source, parks frozen, and
// still completes after recovery. No process is ever lost.
func TestCrashMidRestoreFailsBack(t *testing.T) {
	rep := MustRun(failureTestSpec([]ChurnEvent{
		{At: 10 * simtime.Second, Kind: ChurnNodeCrash, Node: 0},
		{At: 10*simtime.Second + 30*simtime.Millisecond, Kind: ChurnNodeCrash, Node: 1},
		{At: 14 * simtime.Second, Kind: ChurnNodeRecover, Node: 0},
		{At: 15 * simtime.Second, Kind: ChurnNodeRecover, Node: 1},
	}, true), 7)
	st := mustScheme(t, rep, "no-migration")
	if st.Crashes != 2 {
		t.Fatalf("Crashes = %d, want 2", st.Crashes)
	}
	if st.Evacuations == 0 {
		t.Fatal("no evacuations — the scenario shape regressed")
	}
	if st.FailBacks == 0 {
		t.Fatal("crashing an evacuation destination mid-restore produced no fail-backs")
	}
	if st.Unfinished != 0 {
		t.Fatalf("fail-back lost %d processes", st.Unfinished)
	}
}

// TestFailBackExactlyOnce locks the "a migrant restores or fails back
// exactly once" invariant: once a migrant has failed back and parked
// suspended on its crashed source, later down-transitions must not sweep
// it up again. The probe is the TestCrashMidRestoreFailsBack script plus a
// failure-irrelevant rack-1 uplink flap while the migrants are parked —
// FailBacks and FrozenTotal must be byte-for-byte what the flap-free run
// records (a re-bounced migrant would inflate both).
func TestFailBackExactlyOnce(t *testing.T) {
	script := []ChurnEvent{
		{At: 10 * simtime.Second, Kind: ChurnNodeCrash, Node: 0},
		{At: 10*simtime.Second + 30*simtime.Millisecond, Kind: ChurnNodeCrash, Node: 1},
		{At: 14 * simtime.Second, Kind: ChurnNodeRecover, Node: 0},
		{At: 15 * simtime.Second, Kind: ChurnNodeRecover, Node: 1},
	}
	flap := append(append([]ChurnEvent(nil), script...),
		ChurnEvent{At: 11 * simtime.Second, Kind: ChurnLinkDown, Node: -2},
		ChurnEvent{At: 12 * simtime.Second, Kind: ChurnLinkUp, Node: -2},
	)
	base := mustScheme(t, MustRun(failureTestSpec(script, true), 7), "no-migration")
	got := mustScheme(t, MustRun(failureTestSpec(flap, true), 7), "no-migration")
	if base.FailBacks == 0 {
		t.Fatal("baseline recorded no fail-backs — the scenario shape regressed")
	}
	if got.FailBacks != base.FailBacks {
		t.Errorf("unrelated link flap changed FailBacks: %d, want %d", got.FailBacks, base.FailBacks)
	}
	if got.FrozenTotal != base.FrozenTotal {
		t.Errorf("unrelated link flap changed FrozenTotal: %v, want %v", got.FrozenTotal, base.FrozenTotal)
	}
	if got.Unfinished != 0 {
		t.Fatalf("lost %d processes", got.Unfinished)
	}
}

// TestLinkDownBouncesInFlight locks route re-convergence: a rack uplink
// drops while stale gossip still steers cross-rack migrations through it,
// so the balancer's in-flight and freshly admitted migrants fail back to
// their sources instead of vanishing; when the uplink heals, migration
// resumes and the batch drains.
func TestLinkDownBouncesInFlight(t *testing.T) {
	spec := Spec{
		Name:        "failure-linkflap",
		Nodes:       8,
		Procs:       48,
		Skew:        1, // rack 0 starts with the whole batch
		MeanCompute: 8 * simtime.Second,
		Policies:    []string{"queue-gossip"},
		Fabric:      FabricSpec{Topology: fabric.KindTwoTier, RackSize: 4},
		Churn: []ChurnEvent{
			// Down just after the first gossip round seeded cross-rack
			// entries; the balancer keeps deciding on the stale picture.
			{At: 2500 * simtime.Millisecond, Kind: ChurnLinkDown, Node: -2},
			{At: 20 * simtime.Second, Kind: ChurnLinkUp, Node: -2},
		},
	}.Canonical()
	rep := MustRun(spec, 7)
	st := mustScheme(t, rep, "queue-gossip")
	if st.FailBacks == 0 {
		t.Fatal("a flapping uplink under stale gossip produced no fail-backs")
	}
	if st.Unfinished != 0 {
		t.Fatalf("link failure lost %d processes", st.Unfinished)
	}
	if st.Crashes != 0 || st.Evacuations != 0 {
		t.Fatalf("link churn recorded node-crash metrics: %+v", st)
	}
}

// failureGoldenSpec is the rack-farm-failures preset shrunk to test scale
// (2 racks of 32) with the benchmark policy trio.
func failureGoldenSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := Preset("rack-farm-failures")
	if err != nil {
		t.Fatal(err)
	}
	spec.Nodes = 64
	spec.Procs = 256
	spec.Policies = []string{"no-migration", "AMPoM", "queue-gossip"}
	return spec.Canonical()
}

// TestShardedFailureReportsByteIdentical is the failure plane's shard
// golden: crashes, evacuations, link failures and fail-backs are global
// events, so the shrunk rack-farm-failures preset must render, JSON- and
// CSV-encode byte-identically at every shard count — with the worker pool
// forced on, so `go test -race` exercises the cross-goroutine handoff —
// and the failure counters must actually fire (the scenario demonstrates
// fail-back, not just tolerates it).
func TestShardedFailureReportsByteIdentical(t *testing.T) {
	withShardWorkers(t, func() {
		spec := failureGoldenSpec(t)
		seq, err := Run(spec, 7)
		if err != nil {
			t.Fatal(err)
		}
		wantR, wantJ, wantC := renderAll(t, seq)
		if !strings.Contains(wantR, "failbacks") {
			t.Fatalf("failure report lacks the failure columns:\n%s", wantR)
		}
		var failBacks int
		for _, st := range seq.Schemes {
			if st.Crashes != 2 {
				t.Errorf("%s: Crashes = %d, want 2", st.Policy, st.Crashes)
			}
			if st.Evacuations == 0 {
				t.Errorf("%s: no evacuations", st.Policy)
			}
			if st.Unfinished != 0 {
				t.Errorf("%s: lost %d processes", st.Policy, st.Unfinished)
			}
			failBacks += st.FailBacks
		}
		if failBacks == 0 {
			t.Error("no policy recorded a fail-back — the double-crash script regressed")
		}
		racks := (spec.Nodes + spec.Fabric.RackSize - 1) / spec.Fabric.RackSize
		for _, shards := range []int{2, racks} {
			rep, err := RunShards(spec, 7, shards)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			gotR, gotJ, gotC := renderAll(t, rep)
			if gotR != wantR {
				t.Errorf("shards=%d: rendered failure report diverged from sequential:\n--- got ---\n%s--- want ---\n%s",
					shards, gotR, wantR)
			}
			if gotJ != wantJ {
				t.Errorf("shards=%d: JSON failure report diverged from sequential", shards)
			}
			if gotC != wantC {
				t.Errorf("shards=%d: CSV failure report diverged from sequential", shards)
			}
		}
	})
}
