package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzSpecRoundTrip locks the codec's two contracts: malformed input never
// panics (it errors), and any document that decodes round-trips exactly —
// decode→encode→decode is the identity and the encoding is stable. The
// seed corpus is the built-in presets (the switched-fabric ones included)
// plus minimal documents exercising the fabric block and churn kinds.
func FuzzSpecRoundTrip(f *testing.F) {
	for _, spec := range Presets() {
		enc, err := EncodeSpec(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`{"version": 1}`))
	f.Add([]byte(`{"version": 1, "skew": -0.5, "churn": [{"at": "3s", "kind": "burst", "node": 0, "procs": 2}]}`))
	f.Add([]byte(`{"version": 1, "fabric": {"topology": "two-tier", "rack_size": 4, "oversubscription": 2}}`))
	f.Add([]byte(`{"version": 1, "fabric": {"topology": "flat", "gossip_fanout": 3, "gossip_period": "500ms"}}`))
	f.Add([]byte(`{"version": 1, "fabric": {"topology": "star"}, "load_vector_len": 7}`))
	f.Add([]byte(`{"version": 1, "churn": [{"at": "2s", "kind": "balloon", "node": 1, "factor": 8}]}`))
	// Overlapping node tiers must be rejected (slow+fast > 1 would
	// silently truncate the fast tier in buildWorkload).
	f.Add([]byte(`{"version": 1, "slow_frac": 0.7, "fast_frac": 0.7}`))
	// The failure plane: crash/recover/link churn (negative node selects a
	// rack uplink) and the evacuate knob, which requires a node-crash.
	f.Add([]byte(`{"version": 1, "fabric": {"topology": "two-tier", "rack_size": 4}, "evacuate": true, "churn": [{"at": "2s", "kind": "node-crash", "node": 1}, {"at": "4s", "kind": "node-recover", "node": 1}]}`))
	f.Add([]byte(`{"version": 1, "fabric": {"topology": "two-tier", "rack_size": 4}, "churn": [{"at": "3s", "kind": "link-down", "node": -1}, {"at": "5s", "kind": "link-up", "node": -1}]}`))
	f.Add([]byte(`{"version": 1, "fabric": {"topology": "flat"}, "churn": [{"at": "1s", "kind": "link-down", "node": 2}, {"at": "2s", "kind": "link-up", "node": 2}]}`))
	// Evacuate without a crash, and failure churn on the star, must reject.
	f.Add([]byte(`{"version": 1, "evacuate": true}`))
	f.Add([]byte(`{"version": 1, "churn": [{"at": "2s", "kind": "node-crash", "node": 1}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err := DecodeSpec(data)
		if err != nil {
			return // rejected, never panicking, is the contract for garbage
		}
		enc1, err := EncodeSpec(s1)
		if err != nil {
			t.Fatalf("decoded spec failed to encode: %v\nspec: %+v", err, s1)
		}
		s2, err := DecodeSpec(enc1)
		if err != nil {
			t.Fatalf("encoded spec failed to decode: %v\n%s", err, enc1)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("round trip changed the spec:\nfirst  %+v\nsecond %+v", s1, s2)
		}
		enc2, err := EncodeSpec(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding unstable:\n%s\n---\n%s", enc1, enc2)
		}
	})
}
