package scenario

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"ampom/internal/fabric"
	"ampom/internal/prng"
	"ampom/internal/sched"
	"ampom/internal/simtime"
)

// rebuildAggregates recomputes the live view's aggregates the way the
// pre-incremental runner did: one full scan of every process. lists are
// the runnable candidate ids per node; residents additionally carry the
// frozen in-migrants — the resident population the per-node tick and
// balloon scans iterate.
func rebuildAggregates(c *clusterSim) (live, runnable []int, mem []int64, lists, residents [][]int) {
	n := c.spec.Nodes
	live = make([]int, n)
	runnable = make([]int, n)
	mem = make([]int64, n)
	lists = make([][]int, n)
	residents = make([][]int, n)
	for _, p := range c.procs {
		if !p.arrived || p.done {
			continue
		}
		live[p.node]++
		mem[p.node] += p.footprintMB
		residents[p.node] = append(residents[p.node], p.t.id)
		if !p.frozen {
			runnable[p.node]++
			lists[p.node] = append(lists[p.node], p.t.id)
		}
	}
	return live, runnable, mem, lists, residents
}

// rebuildRows recomputes the NodeView rows and the descending-load source
// order exactly as the pre-incremental view() + NodesByLoad() pair did.
func rebuildRows(c *clusterSim) ([]sched.NodeView, []int) {
	n := c.spec.Nodes
	rows := make([]sched.NodeView, n)
	for i := range rows {
		rows[i].CPUScale = c.nodes[i].CPUScale
		rows[i].CapacityMB = c.spec.NodeMemMB
	}
	for _, p := range c.procs {
		if p.arrived && !p.done {
			rows[p.node].Procs++
			rows[p.node].UsedMemMB += p.footprintMB
		}
	}
	for i := range rows {
		rows[i].Load = float64(rows[i].Procs) / rows[i].CPUScale
		rows[i].QueueLen = rows[i].Procs
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return rows[order[a]].Load > rows[order[b]].Load
	})
	return rows, order
}

// verifyAggregates asserts the live counters and candidate lists equal a
// full recompute at the current instant.
func verifyAggregates(t *testing.T, c *clusterSim, when string) {
	t.Helper()
	live, runnable, mem, lists, residents := rebuildAggregates(c)
	for i := 0; i < c.spec.Nodes; i++ {
		if c.lv.live[i] != live[i] || c.lv.runnable[i] != runnable[i] || c.lv.mem[i] != mem[i] {
			t.Fatalf("%s: node %d aggregates live/runnable/mem = %d/%d/%d, rebuild %d/%d/%d",
				when, i, c.lv.live[i], c.lv.runnable[i], c.lv.mem[i], live[i], runnable[i], mem[i])
		}
		ids := make([]int, 0, len(c.lv.runnableOn[i]))
		for _, p := range c.lv.runnableOn[i] {
			ids = append(ids, p.t.id)
		}
		if !(len(ids) == 0 && len(lists[i]) == 0) && !reflect.DeepEqual(ids, lists[i]) {
			t.Fatalf("%s: node %d candidate list %v, rebuild %v", when, i, ids, lists[i])
		}
		res := make([]int, 0, len(c.lv.liveOn[i]))
		for _, p := range c.lv.liveOn[i] {
			res = append(res, p.t.id)
		}
		if !(len(res) == 0 && len(residents[i]) == 0) && !reflect.DeepEqual(res, residents[i]) {
			t.Fatalf("%s: node %d resident list %v, rebuild %v", when, i, res, residents[i])
		}
	}
}

// verifyDerived asserts the refreshed rows and source order equal a full
// rebuild + stable sort at the current instant.
func verifyDerived(t *testing.T, c *clusterSim, when string) {
	t.Helper()
	c.lv.refresh()
	rows, order := rebuildRows(c)
	for i := range rows {
		if c.lv.rows[i] != rows[i] {
			t.Fatalf("%s: node %d row %+v, rebuild %+v", when, i, c.lv.rows[i], rows[i])
		}
	}
	if !reflect.DeepEqual(c.lv.order, order) {
		t.Fatalf("%s: source order %v, rebuild %v", when, c.lv.order, order)
	}
}

// churnSpec builds a randomised scenario with every churn kind, drawn from
// one seed: mixed arrival models, CPU tiers, balloon growth, bursts,
// slowdowns and background-load shifts, on a random topology.
func churnSpec(seed uint64) Spec {
	rng := prng.New(seed)
	topos := []fabric.Kind{fabric.KindStar, fabric.KindTwoTier, fabric.KindFlat}
	nodes := 4 + rng.Intn(8)
	s := Spec{
		Name:            "liveview-churn",
		Nodes:           nodes,
		Procs:           nodes * (2 + rng.Intn(4)),
		SlowFrac:        0.25,
		FastFrac:        0.25,
		Skew:            0.5 + 0.4*rng.Float64(),
		MeanCompute:     simtime.Duration(2+rng.Intn(3)) * simtime.Second,
		MeanFootprintMB: int64(24 + rng.Intn(64)),
		Fabric:          FabricSpec{Topology: topos[rng.Intn(len(topos))], RackSize: 4},
		Churn: []ChurnEvent{
			{At: simtime.Duration(1+rng.Intn(3)) * simtime.Second, Kind: ChurnSlowNode, Node: 1, Factor: 0.5},
			{At: simtime.Duration(2+rng.Intn(3)) * simtime.Second, Kind: ChurnBalloon, Node: rng.Intn(nodes), Factor: 1.5 + rng.Float64()},
			{At: simtime.Duration(3+rng.Intn(3)) * simtime.Second, Kind: ChurnBurst, Node: rng.Intn(nodes), Procs: 2 + rng.Intn(6)},
			{At: simtime.Duration(4+rng.Intn(3)) * simtime.Second, Kind: ChurnNetLoad, Node: -1, Factor: 0.4},
			{At: simtime.Duration(5+rng.Intn(3)) * simtime.Second, Kind: ChurnBalloon, Node: rng.Intn(nodes), Factor: 2},
		},
	}
	if rng.Intn(2) == 0 {
		s.Arrival = ArrivalPoisson
		s.MeanInterarrival = 100 * simtime.Millisecond
	}
	return s.Canonical()
}

// TestLiveViewMatchesRebuild is the tentpole's central property: across
// random churn/balloon/migration sequences, every balance round's
// incrementally maintained view — aggregates, candidate lists, derived
// rows and source order — is identical to a from-scratch rebuild, under
// every registered policy and every topology.
func TestLiveViewMatchesRebuild(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		spec := churnSpec(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: invalid spec: %v", seed, err)
		}
		scales, tmpl := buildWorkload(spec, seed)
		pols, err := sched.ByNames(spec.Policies)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range pols {
			c := newClusterSim(spec, scales, tmpl, pol, seed)
			rounds := 0
			c.checkView = func(base sched.View) {
				rounds++
				verifyAggregates(t, c, spec.Fabric.Topology.String()+"/"+pol.Name())
				verifyDerived(t, c, spec.Fabric.Topology.String()+"/"+pol.Name())
				// The handed view must be a faithful copy of the canonical rows.
				for i := range base.Nodes {
					if base.Nodes[i] != c.lv.rows[i] {
						t.Fatalf("%s: handed row %d %+v diverges from canonical %+v",
							pol.Name(), i, base.Nodes[i], c.lv.rows[i])
					}
				}
			}
			c.run()
			if pol.Name() != sched.BaselineName && rounds == 0 {
				t.Fatalf("seed %d: %s ran no balance rounds — the property was never checked", seed, pol.Name())
			}
		}
	}
}

// TestLiveViewMatchesRebuildBetweenEvents steps one scenario through
// virtual time in quantum-sized slices and re-verifies the aggregates
// after every slice — catching any transition (arrival, completion,
// freeze, unfreeze, balloon) that left the counters stale between balance
// rounds, which the round-grained property test could miss.
func TestLiveViewMatchesRebuildBetweenEvents(t *testing.T) {
	spec := churnSpec(3)
	scales, tmpl := buildWorkload(spec, 3)
	pol, _ := sched.Lookup(sched.NameAMPoM)
	c := newClusterSim(spec, scales, tmpl, pol, 3)
	step := spec.Quantum
	for at := simtime.Time(0); at < simtime.Time(spec.MaxSimTime); at = at.Add(step) {
		c.eng.Run(at)
		verifyAggregates(t, c, at.String())
		verifyDerived(t, c, at.String())
		if c.doneN == len(c.procs) {
			return
		}
	}
	t.Fatal("scenario never completed inside the horizon")
}

// retainingPolicy wilfully breaks the sched.BalancerPolicy view contract:
// it keeps the Nodes slice it was handed and scribbles over every row it
// retained before delegating the next decision. The driver's
// copy-on-hand-off must confine the damage to the round the scribble
// happened in.
type retainingPolicy struct {
	inner    sched.BalancerPolicy
	retained []sched.NodeView
}

func (r *retainingPolicy) Name() string { return r.inner.Name() }

func (r *retainingPolicy) MigrationCost(footprintMB int64, wsFrac, bandwidthBps float64) (simtime.Duration, simtime.Duration) {
	return r.inner.MigrationCost(footprintMB, wsFrac, bandwidthBps)
}

func (r *retainingPolicy) ShouldMigrate(v sched.View, p sched.ProcView) (int, bool) {
	if r.retained != nil {
		for i := range r.retained {
			r.retained[i] = sched.NodeView{Procs: 1 << 20, Load: math.Inf(1), UsedMemMB: 1 << 40}
		}
	}
	r.retained = v.Nodes
	return r.inner.ShouldMigrate(v, p)
}

// TestRetainingPolicyCannotCorruptNextRound locks the hand-off contract's
// enforcement: every balance round re-derives the rows a policy sees, so a
// policy that retains and corrupts a previous round's slice never poisons
// a later round's view. checkView (which verifies the handed rows against
// a from-scratch rebuild every round) is the invariant check; it runs
// against both hand-off paths — the star's ground-truth copy and the
// switched fabrics' per-source gossip rewrite.
func TestRetainingPolicyCannotCorruptNextRound(t *testing.T) {
	for _, topo := range []fabric.Kind{fabric.KindStar, fabric.KindTwoTier} {
		spec := Spec{
			Name:            "retainer",
			Nodes:           8,
			Procs:           32,
			Skew:            0.7,
			MeanCompute:     2 * simtime.Second,
			MeanFootprintMB: 32,
			Fabric:          FabricSpec{Topology: topo, RackSize: 4},
		}.Canonical()
		scales, tmpl := buildWorkload(spec, 7)
		evil := &retainingPolicy{inner: sched.AMPoMPolicy}
		c := newClusterSim(spec, scales, tmpl, evil, 7)
		rounds := 0
		c.checkView = func(base sched.View) {
			rounds++
			// The previous round's scribble must not have leaked into this
			// round's hand-off.
			rows, _ := rebuildRows(c)
			for i := range base.Nodes {
				if base.Nodes[i] != rows[i] {
					t.Fatalf("%v round %d: handed row %d %+v poisoned (want %+v)",
						topo, rounds, i, base.Nodes[i], rows[i])
				}
			}
		}
		c.run()
		if rounds < 2 {
			t.Fatalf("%v: only %d balance rounds — retention was never exercised", topo, rounds)
		}
	}
}

// TestGossipViewIncrementalProbes locks the gossip view under the
// incremental probe path: rows for origins gossip has not reached are
// Unknown with an infinite load, known rows carry the origin's probed
// aggregates (which now read the live counters) with InfoAge equal to the
// entry's staleness, and the source's own row stays exact.
func TestGossipViewIncrementalProbes(t *testing.T) {
	spec := Spec{
		Name:            "gossip-view",
		Nodes:           12,
		Procs:           48,
		Skew:            0.7,
		MeanCompute:     4 * simtime.Second,
		MeanFootprintMB: 32,
		Fabric:          FabricSpec{Topology: fabric.KindFlat},
	}.Canonical()
	scales, tmpl := buildWorkload(spec, 11)
	pol, _ := sched.Lookup(sched.NameQueueGossip)
	c := newClusterSim(spec, scales, tmpl, pol, 11)

	// Before any gossip lands every non-source row is Unknown.
	c.eng.Run(simtime.Time(10 * simtime.Millisecond))
	const src = 2
	base := c.view()
	v := c.gossipView(src, base)
	if &v.Nodes[0] == &base.Nodes[0] {
		t.Fatal("gossip view aliases the ground-truth hand-off buffer")
	}
	if v.Nodes[src] != base.Nodes[src] {
		t.Fatalf("source row %+v diverges from ground truth %+v", v.Nodes[src], base.Nodes[src])
	}
	for i := range v.Nodes {
		if i == src {
			continue
		}
		if !v.Nodes[i].Unknown || !math.IsInf(v.Nodes[i].Load, 1) {
			t.Fatalf("pre-gossip row %d not Unknown/+Inf: %+v", i, v.Nodes[i])
		}
	}

	// After several gossip periods the rows fill in from the probes.
	c.eng.Run(simtime.Time(5 * spec.Fabric.GossipPeriod))
	base = c.view()
	v = c.gossipView(src, base)
	g := c.ic.Gossip(src)
	now := c.eng.Now()
	known := 0
	for i := range v.Nodes {
		if i == src || v.Nodes[i].Unknown {
			continue
		}
		known++
		e := g.Entry(i)
		if !e.Known {
			t.Fatalf("row %d known in the view but not in the daemon", i)
		}
		if v.Nodes[i].Procs != e.Sample.Queue || v.Nodes[i].UsedMemMB != e.Sample.UsedMemMB ||
			v.Nodes[i].Load != e.Sample.Load || v.Nodes[i].QueueLen != e.Sample.Queue {
			t.Fatalf("row %d %+v does not carry the daemon entry %+v", i, v.Nodes[i], e.Sample)
		}
		if want := now.Sub(e.Stamp); v.Nodes[i].InfoAge != want {
			t.Fatalf("row %d InfoAge %v, want staleness %v", i, v.Nodes[i].InfoAge, want)
		}
		if v.Nodes[i].InfoAge <= 0 {
			t.Fatalf("row %d InfoAge %v not positive — stamps are not aging", i, v.Nodes[i].InfoAge)
		}
	}
	if known == 0 {
		t.Fatal("no rows known after five gossip periods")
	}

	// The probes behind those entries read the live aggregates: pushing a
	// fresh probe for the source must match a from-scratch recompute.
	sample := c.probeFor(src)()
	wantQ, wantMem := 0, int64(0)
	for _, p := range c.procs {
		if p.arrived && !p.done && p.node == src {
			wantQ++
			wantMem += p.footprintMB
		}
	}
	if sample.Queue != wantQ || sample.UsedMemMB != wantMem {
		t.Fatalf("probe %+v, rebuild queue %d mem %d", sample, wantQ, wantMem)
	}
}
