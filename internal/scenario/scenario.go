// Package scenario is the cluster-scale scenario engine: it composes the
// discrete-event engine, cluster nodes, the star interconnect, the oM_infoD
// monitoring daemons, the §7 load balancer and the AMPoM prefetcher into
// end-to-end multi-node runs. A Spec declares the cluster (node count, CPU
// heterogeneity, network tier), the workload (process count, arrival model,
// per-process trace mixes) and mid-run churn (node slowdowns, arrival
// bursts, background network load); the runner executes the scenario under
// every balancing policy from a single seed and emits a cluster-level
// Report — migrations, aggregate slowdown against the no-migration
// baseline, and fault/prefetch totals per scheme.
//
// Determinism is the contract: Run is a pure function of (Spec, seed). Each
// policy's simulation owns a private engine and PRNG stream, so two runs
// with the same seed render byte-identical reports whatever worker pool
// executes them.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"ampom/internal/fabric"
	"ampom/internal/memory"
	"ampom/internal/netmodel"
	"ampom/internal/prng"
	"ampom/internal/sched"
	"ampom/internal/simtime"
	"ampom/internal/trace"
)

// MixKind names a per-process page-reference shape. The mix decides both
// the trace the process replays after a migration and the fraction of its
// footprint it actually touches (the §5.6 working-set effect).
type MixKind uint8

// The modelled reference mixes.
const (
	// MixSequential sweeps the working set in order — DGEMM/STREAM-like,
	// the best case for stride prefetching.
	MixSequential MixKind = iota
	// MixBlocked visits cache-sized blocks in scattered order but pages
	// within a block sequentially — FFT-transpose-like.
	MixBlocked
	// MixRandom touches pages uniformly at random — RandomAccess-like, the
	// worst case for prefetching.
	MixRandom
	// MixSmallWS is an interactive/VM-like process: a large allocation of
	// which only a small resident set is swept.
	MixSmallWS
)

// String names the mix.
func (k MixKind) String() string {
	switch k {
	case MixSequential:
		return "sequential"
	case MixBlocked:
		return "blocked"
	case MixRandom:
		return "random"
	case MixSmallWS:
		return "small-ws"
	default:
		return fmt.Sprintf("MixKind(%d)", uint8(k))
	}
}

// WorkingSetFrac is the fraction of the footprint a process of this mix
// touches after migrating (§5.6 motivates < 1).
func (k MixKind) WorkingSetFrac() float64 {
	switch k {
	case MixSequential:
		return 0.9
	case MixBlocked:
		return 0.7
	case MixRandom:
		return 0.5
	case MixSmallWS:
		return 0.15
	default:
		return 0.5
	}
}

// Trace returns the page-reference factory a migrant of this mix replays
// over a working set of wsPages. The live-cluster example uses the same
// factory to build real byte-page programs, so the simulated and emulated
// worlds replay one shape.
func (k MixKind) Trace(wsPages int64, seed uint64) trace.Factory {
	if wsPages < 1 {
		wsPages = 1
	}
	switch k {
	case MixBlocked:
		return trace.BlockPermuted(0, wsPages, 16, 0, false, seed)
	case MixRandom:
		return trace.RandomUniform(0, wsPages, wsPages, 0, false, seed)
	default: // sequential and small-ws sweep their (differently sized) sets
		return trace.Sequential(0, wsPages, 0, false)
	}
}

// CoverTrace is Trace with a full-coverage guarantee: every page of the
// span is touched at least once per pass. The random mix becomes a random
// permutation — the same scattered shape, but total. Live-emulation
// programs use this so a migrated run's final memory checksum is
// comparable against a never-migrated baseline.
func (k MixKind) CoverTrace(pages int64, seed uint64) trace.Factory {
	if pages < 1 {
		pages = 1
	}
	if k == MixRandom {
		return trace.Permuted(0, pages, 0, false, seed)
	}
	return k.Trace(pages, seed)
}

// MixWeight is one entry of a scenario's workload mix.
type MixWeight struct {
	Kind   MixKind
	Weight int
}

// ArrivalModel selects how processes enter the cluster.
type ArrivalModel uint8

// Arrival models.
const (
	// ArrivalBatch drops every process at t = 0 (the classic burst landing
	// on an entry node).
	ArrivalBatch ArrivalModel = iota
	// ArrivalPoisson spaces arrivals by exponentially distributed gaps with
	// mean MeanInterarrival.
	ArrivalPoisson
)

// String names the model.
func (a ArrivalModel) String() string {
	switch a {
	case ArrivalBatch:
		return "batch"
	case ArrivalPoisson:
		return "poisson"
	default:
		return fmt.Sprintf("ArrivalModel(%d)", uint8(a))
	}
}

// Placement selects where arriving processes land.
type Placement uint8

// Placements.
const (
	// PlaceSkewed lands a process on node 0 with probability Skew, else on
	// a uniformly random node.
	PlaceSkewed Placement = iota
	// PlaceRoundRobin deals processes out rank-style, process i on node
	// i mod Nodes (the MPI launcher shape).
	PlaceRoundRobin
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlaceSkewed:
		return "skewed"
	case PlaceRoundRobin:
		return "round-robin"
	default:
		return fmt.Sprintf("Placement(%d)", uint8(p))
	}
}

// FabricSpec selects the interconnect topology and its dissemination
// parameters. The zero value is the legacy single-hub star with paired
// infod daemons — byte-compatible with pre-fabric releases. Switched
// topologies (two-tier, flat) route payloads hop by hop through per-link
// queues and replace the paired daemons with decentralised gossip.
type FabricSpec struct {
	// Topology selects the interconnect shape. Default: the star.
	Topology fabric.Kind
	// RackSize is the number of nodes under one leaf switch (two-tier
	// only; default 16).
	RackSize int
	// Oversub is the core oversubscription ratio (two-tier only;
	// default 4): a rack's uplink carries RackSize/Oversub node-links'
	// worth of bandwidth.
	Oversub float64
	// GossipFanout is how many random peers each node's daemon pushes its
	// load vector to per period (switched topologies; default 2).
	GossipFanout int
	// GossipPeriod is the gossip push period (switched topologies;
	// default 2 s, the paired daemons' historical update period).
	GossipPeriod simtime.Duration
	// GossipWindow is l, the bounded number of load-vector entries (own
	// sample included) one gossip push or pull response carries — the
	// openMosix windowed dissemination (switched topologies; default 32).
	GossipWindow int
}

// Canonical resolves the fabric block's defaults. The star zeroes every
// other field (they are meaningless on it), which keeps the default block
// a fixed point that fingerprints and encodes as the legacy empty value.
func (f FabricSpec) Canonical() FabricSpec {
	if f.Topology == fabric.KindStar {
		return FabricSpec{}
	}
	if f.Topology == fabric.KindTwoTier {
		if f.RackSize <= 0 {
			f.RackSize = fabric.DefaultRackSize
		}
		if f.Oversub == 0 {
			f.Oversub = fabric.DefaultOversub
		}
	} else {
		f.RackSize, f.Oversub = 0, 0
	}
	if f.GossipFanout <= 0 {
		f.GossipFanout = fabric.DefaultGossipFanout
	}
	if f.GossipPeriod == 0 {
		f.GossipPeriod = fabric.DefaultGossipPeriod
	}
	if f.GossipWindow <= 0 {
		f.GossipWindow = fabric.DefaultGossipWindow
	}
	return f
}

// IsDefault reports whether the block is the legacy star default.
func (f FabricSpec) IsDefault() bool { return f.Topology == fabric.KindStar }

// Validate reports the first structural problem of the canonical block.
func (f FabricSpec) Validate() error {
	f = f.Canonical()
	switch f.Topology {
	case fabric.KindStar:
		return nil
	case fabric.KindTwoTier:
		if f.RackSize < 2 {
			return fmt.Errorf("scenario: fabric rack size %d below 2", f.RackSize)
		}
		if f.Oversub <= 0 || f.Oversub > 64 {
			return fmt.Errorf("scenario: fabric oversubscription %g out of (0,64]", f.Oversub)
		}
	case fabric.KindFlat:
		// No shape parameters.
	default:
		return fmt.Errorf("scenario: unknown fabric topology %v", f.Topology)
	}
	if f.GossipFanout < 1 || f.GossipFanout > 64 {
		return fmt.Errorf("scenario: gossip fanout %d out of [1,64]", f.GossipFanout)
	}
	if f.GossipPeriod <= 0 {
		return fmt.Errorf("scenario: non-positive gossip period %v", f.GossipPeriod)
	}
	if f.GossipWindow < 1 || f.GossipWindow > 1<<16 {
		return fmt.Errorf("scenario: gossip window %d out of [1,65536]", f.GossipWindow)
	}
	return nil
}

// String names the block in fingerprints.
func (f FabricSpec) String() string {
	f = f.Canonical()
	if f.IsDefault() {
		return f.Topology.String()
	}
	return fmt.Sprintf("%s/%d/%g/%d/%d/%d",
		f.Topology, f.RackSize, f.Oversub, f.GossipFanout, int64(f.GossipPeriod), f.GossipWindow)
}

// ChurnKind names a mid-run disturbance.
type ChurnKind uint8

// Churn kinds.
const (
	// ChurnSlowNode multiplies one node's CPU scale by Factor at time At
	// (thermal throttling, a co-scheduled interactive user).
	ChurnSlowNode ChurnKind = iota
	// ChurnBurst injects Procs extra processes on node Node at time At.
	ChurnBurst
	// ChurnNetLoad sets the background-load fraction of every spoke link
	// (Node < 0) or one node's spoke (Node >= 1) to Factor at time At.
	ChurnNetLoad
	// ChurnBalloon multiplies the memory footprint of the largest live
	// process on node Node by Factor at time At (an in-memory data set
	// growing mid-run) — the dynamic pressure that exercises memory
	// ushering beyond skewed arrival.
	ChurnBalloon
	// ChurnNodeCrash fails node Node at time At: its edge link goes down,
	// its runnable residents lose their progress (or, with Spec.Evacuate,
	// are migrated off before connectivity dies), and in-flight migrations
	// that can no longer be delivered fail back to their sources. Requires
	// a switched fabric.
	ChurnNodeCrash
	// ChurnNodeRecover brings a crashed node back at time At: its edge
	// link comes up and its stranded residents resume (crash-killed ones
	// from scratch, failed-back migrants from their checkpoints).
	ChurnNodeRecover
	// ChurnLinkDown fails one fabric link at time At: Node >= 0 is node
	// Node's edge link, Node = -(r+1) is rack r's core uplink (two-tier
	// only). A down link refuses new traffic at the switch; migrations
	// that lose their route fail back to their sources.
	ChurnLinkDown
	// ChurnLinkUp repairs the link addressed the same way as ChurnLinkDown.
	ChurnLinkUp
)

// churnKindNames is the single churn-kind registry: String, the JSON
// codec's parser, validation's known-kind check and the CLI listing all
// derive from it, so a kind added here cannot round-trip as unknown
// anywhere else. Index == kind value.
var churnKindNames = [...]string{
	ChurnSlowNode:    "slow-node",
	ChurnBurst:       "burst",
	ChurnNetLoad:     "net-load",
	ChurnBalloon:     "balloon",
	ChurnNodeCrash:   "node-crash",
	ChurnNodeRecover: "node-recover",
	ChurnLinkDown:    "link-down",
	ChurnLinkUp:      "link-up",
}

// ChurnKindNames lists every churn kind in declaration order.
func ChurnKindNames() []string {
	return append([]string(nil), churnKindNames[:]...)
}

// String names the kind.
func (k ChurnKind) String() string {
	if int(k) < len(churnKindNames) {
		return churnKindNames[k]
	}
	return fmt.Sprintf("ChurnKind(%d)", uint8(k))
}

// failure reports whether the kind belongs to the failure plane — the
// events under which reports grow sojourn percentiles and failure
// counters, and which require a switched fabric.
func (k ChurnKind) failure() bool {
	switch k {
	case ChurnNodeCrash, ChurnNodeRecover, ChurnLinkDown, ChurnLinkUp:
		return true
	}
	return false
}

// ChurnEvent is one scheduled disturbance.
type ChurnEvent struct {
	At     simtime.Duration
	Kind   ChurnKind
	Node   int     // target node (ChurnNetLoad: -1 means every spoke; ChurnLinkDown/Up: -(r+1) means rack r's uplink)
	Factor float64 // ChurnSlowNode: CPU multiplier; ChurnNetLoad: load fraction; ChurnBalloon: footprint multiplier
	Procs  int     // ChurnBurst: how many processes arrive
}

// Spec declares one cluster scenario. Zero fields take defaults; Canonical
// resolves them, and Fingerprint (the campaign cache/seed key) is computed
// from the canonical form.
type Spec struct {
	// Name labels the scenario in reports and fingerprints.
	Name string
	// Nodes is the cluster size. Default 8.
	Nodes int
	// Procs is the number of processes injected (before bursts).
	// Default 4×Nodes.
	Procs int

	// CPU heterogeneity: SlowFrac of the nodes run at SlowScale and
	// FastFrac at FastScale relative to the reference CPU; the rest run at
	// 1.0. Defaults: no heterogeneity (fracs 0), SlowScale 0.5,
	// FastScale 2.
	SlowFrac, FastFrac   float64
	SlowScale, FastScale float64

	// Arrival is the arrival model; MeanInterarrival spaces Poisson
	// arrivals (default 250 ms).
	Arrival          ArrivalModel
	MeanInterarrival simtime.Duration
	// Placement and Skew drive initial placement. Skew defaults to 0.8;
	// a negative value means explicitly uniform placement (the legitimate
	// 0 is not expressible directly because zero means "use the default").
	Placement Placement
	Skew      float64

	// MeanCompute is the mean per-process service demand at the reference
	// CPU (default 10 s). MeanFootprintMB is the mean process footprint
	// (default 128 MB).
	MeanCompute     simtime.Duration
	MeanFootprintMB int64
	// NodeMemMB is each node's physical memory — what the memory-ushering
	// policy balances against. Default: four balanced shares of the mean
	// footprint (4 × ⌈Procs/Nodes⌉ × MeanFootprintMB).
	NodeMemMB int64
	// Mix weights the per-process reference shapes. Default: all
	// sequential.
	Mix []MixWeight

	// Policies names the balancer policies the scenario runs under, by
	// registry name. Empty means every registered policy. The canonical
	// form is sorted, deduplicated and always contains the no-migration
	// baseline the slowdown ratios divide by.
	Policies []string

	// Network is the per-node link profile of the interconnect (zero
	// value: Fast Ethernet). BackgroundLoad is the initial fraction of
	// node-link bandwidth consumed by competing traffic.
	Network        netmodel.Profile
	BackgroundLoad float64

	// Fabric selects the interconnect topology (star, two-tier, flat) and
	// the gossip dissemination parameters of the switched topologies. The
	// zero value is the legacy star with paired daemons.
	Fabric FabricSpec
	// LoadVectorLen lifts the sampling policies' sample size l (the
	// number of peer entries one balancing decision inspects) out of the
	// built-in constants. Zero keeps each policy's default (load-vector 3,
	// queue-gossip 8); values of Nodes-1 or more mean full knowledge.
	LoadVectorLen int
	// Evacuate turns a ChurnNodeCrash into a drain: the crashing node's
	// runnable residents are migrated to the least-loaded reachable nodes
	// before its connectivity dies, with fail-back to the (crashed) source
	// when a freeze-time payload cannot be delivered — juju's
	// model-migration semantics. Without it a crash costs the residents
	// their progress until the node recovers.
	Evacuate bool

	// BalancePeriod is the load balancer's decision interval (default 1 s);
	// CostThreshold its safety factor (default 1.25).
	BalancePeriod simtime.Duration
	CostThreshold float64

	// Quantum is the processor-sharing quantum (default 50 ms).
	Quantum simtime.Duration
	// MaxSimTime bounds the virtual-time horizon; processes still running
	// at the horizon are reported as unfinished. Default: generous —
	// 4 × Procs × MeanCompute + a minute.
	MaxSimTime simtime.Duration

	// Churn is the scripted disturbance sequence.
	Churn []ChurnEvent
}

// Canonical resolves every zero "use the default" field, so two Specs that
// run identically fingerprint identically. It is a fixed point.
func (s Spec) Canonical() Spec {
	if s.Nodes <= 0 {
		s.Nodes = 8
	}
	if s.Procs <= 0 {
		s.Procs = 4 * s.Nodes
	}
	if s.SlowScale == 0 {
		s.SlowScale = 0.5
	}
	if s.FastScale == 0 {
		s.FastScale = 2
	}
	if s.MeanInterarrival == 0 {
		s.MeanInterarrival = 250 * simtime.Millisecond
	}
	if s.Skew == 0 {
		s.Skew = 0.8
	}
	if s.Skew < 0 {
		s.Skew = -1 // canonical "uniform" sentinel, a fixed point
	}
	if s.MeanCompute == 0 {
		s.MeanCompute = 10 * simtime.Second
	}
	if s.MeanFootprintMB == 0 {
		s.MeanFootprintMB = 128
	}
	if s.NodeMemMB == 0 {
		perNode := int64((s.Procs + s.Nodes - 1) / s.Nodes)
		s.NodeMemMB = 4 * perNode * s.MeanFootprintMB
	}
	if len(s.Mix) == 0 {
		s.Mix = []MixWeight{{Kind: MixSequential, Weight: 1}}
	}
	s.Policies = canonicalPolicies(s.Policies)
	if s.Network.BandwidthBps == 0 {
		s.Network = netmodel.FastEthernet()
	}
	s.Fabric = s.Fabric.Canonical()
	if s.BalancePeriod == 0 {
		s.BalancePeriod = simtime.Second
	}
	if s.CostThreshold == 0 {
		s.CostThreshold = 1.25
	}
	if s.Quantum == 0 {
		s.Quantum = 50 * simtime.Millisecond
	}
	if s.MaxSimTime == 0 {
		s.MaxSimTime = 4*simtime.Duration(s.Procs)*s.MeanCompute + simtime.Minute
	}
	return s
}

// canonicalPolicies resolves the policy set: empty means every registered
// policy; otherwise the names are deduplicated, the no-migration baseline
// is added if missing, and the set is sorted — the registry order every
// report and fingerprint iterates in.
func canonicalPolicies(names []string) []string {
	if len(names) == 0 {
		return sched.Names()
	}
	seen := make(map[string]bool, len(names)+1)
	out := make([]string, 0, len(names)+1)
	for _, n := range append([]string{sched.BaselineName}, names...) {
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate reports the first structural problem of the canonical spec,
// including policy names that resolve to no registered policy.
func (s Spec) Validate() error {
	if err := s.validateShape(); err != nil {
		return err
	}
	if _, err := sched.ByNames(s.Canonical().Policies); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// validateShape checks everything Validate does except the policy-registry
// lookup. Report decoding uses it directly: a saved report may record a
// run under a custom policy the decoding process never registered, and the
// artefact must still be readable.
func (s Spec) validateShape() error {
	s = s.Canonical()
	if s.Nodes < 2 {
		return fmt.Errorf("scenario: need at least 2 nodes, have %d", s.Nodes)
	}
	// Written as the positive condition so NaN fractions fail too: every
	// comparison against NaN is false, which made the old negated form
	// (frac < 0 || ...) wave NaNs through into buildWorkload. The sum also
	// rejects overlapping tiers (slow+fast > 1), where the fast tier would
	// silently truncate and the fingerprint would promise a node mix the
	// run never realises.
	if !(s.SlowFrac >= 0 && s.FastFrac >= 0 && s.SlowFrac+s.FastFrac <= 1) {
		return fmt.Errorf("scenario: node-tier fractions slow=%g fast=%g out of range (want non-negative, slow+fast <= 1)", s.SlowFrac, s.FastFrac)
	}
	if s.SlowScale <= 0 || s.FastScale <= 0 {
		return fmt.Errorf("scenario: non-positive CPU scale")
	}
	if s.Skew > 1 {
		return fmt.Errorf("scenario: skew %g above 1", s.Skew)
	}
	if s.MeanCompute <= 0 || s.MeanInterarrival <= 0 || s.BalancePeriod <= 0 ||
		s.Quantum <= 0 || s.MaxSimTime <= 0 {
		return fmt.Errorf("scenario: non-positive duration (compute %v, interarrival %v, balance %v, quantum %v, horizon %v)",
			s.MeanCompute, s.MeanInterarrival, s.BalancePeriod, s.Quantum, s.MaxSimTime)
	}
	if s.MeanFootprintMB <= 0 {
		return fmt.Errorf("scenario: non-positive mean footprint %d MB", s.MeanFootprintMB)
	}
	if s.NodeMemMB <= 0 {
		return fmt.Errorf("scenario: non-positive node memory %d MB", s.NodeMemMB)
	}
	if s.CostThreshold <= 0 {
		return fmt.Errorf("scenario: non-positive cost threshold %g", s.CostThreshold)
	}
	if s.BackgroundLoad < 0 || s.BackgroundLoad > 0.95 {
		return fmt.Errorf("scenario: background load %g out of [0,0.95]", s.BackgroundLoad)
	}
	if err := s.Fabric.Validate(); err != nil {
		return err
	}
	if s.LoadVectorLen < 0 || s.LoadVectorLen > 4096 {
		return fmt.Errorf("scenario: load-vector sample size %d out of [0,4096]", s.LoadVectorLen)
	}
	total := 0
	for _, m := range s.Mix {
		if m.Weight < 0 {
			return fmt.Errorf("scenario: negative mix weight for %v", m.Kind)
		}
		if m.Weight > 1<<20 {
			return fmt.Errorf("scenario: mix weight %d for %v above 2^20", m.Weight, m.Kind)
		}
		total += m.Weight
	}
	if total == 0 {
		return fmt.Errorf("scenario: mix weights sum to zero")
	}
	for i, c := range s.Churn {
		if c.At < 0 {
			return fmt.Errorf("scenario: churn[%d] at negative time", i)
		}
		switch c.Kind {
		case ChurnSlowNode:
			if c.Node < 0 || c.Node >= s.Nodes {
				return fmt.Errorf("scenario: churn[%d] slow-node targets node %d of %d", i, c.Node, s.Nodes)
			}
			if c.Factor <= 0 {
				return fmt.Errorf("scenario: churn[%d] slow-node factor %g must be positive", i, c.Factor)
			}
		case ChurnBurst:
			if c.Node < 0 || c.Node >= s.Nodes {
				return fmt.Errorf("scenario: churn[%d] burst targets node %d of %d", i, c.Node, s.Nodes)
			}
			if c.Procs <= 0 {
				return fmt.Errorf("scenario: churn[%d] burst of %d processes", i, c.Procs)
			}
		case ChurnNetLoad:
			// On the star, node 0 is the hub and has no link of its own;
			// switched fabrics give every node an edge link.
			if c.Node >= s.Nodes || (c.Node == 0 && s.Fabric.IsDefault()) {
				return fmt.Errorf("scenario: churn[%d] net-load targets node %d of %d (0 is the hub; use -1 for all spokes)", i, c.Node, s.Nodes)
			}
			if c.Factor < 0 || c.Factor > 0.95 {
				return fmt.Errorf("scenario: churn[%d] net-load %g out of [0,0.95]", i, c.Factor)
			}
		case ChurnBalloon:
			if c.Node < 0 || c.Node >= s.Nodes {
				return fmt.Errorf("scenario: churn[%d] balloon targets node %d of %d", i, c.Node, s.Nodes)
			}
			if c.Factor <= 0 {
				return fmt.Errorf("scenario: churn[%d] balloon factor %g must be positive", i, c.Factor)
			}
		case ChurnNodeCrash, ChurnNodeRecover:
			// The failure plane models link state and reachability, which the
			// legacy hub-spoke star does not have.
			if s.Fabric.IsDefault() {
				return fmt.Errorf("scenario: churn[%d] %s requires a switched fabric (two-tier or flat)", i, c.Kind)
			}
			if c.Node < 0 || c.Node >= s.Nodes {
				return fmt.Errorf("scenario: churn[%d] %s targets node %d of %d", i, c.Kind, c.Node, s.Nodes)
			}
		case ChurnLinkDown, ChurnLinkUp:
			if s.Fabric.IsDefault() {
				return fmt.Errorf("scenario: churn[%d] %s requires a switched fabric (two-tier or flat)", i, c.Kind)
			}
			if c.Node >= s.Nodes {
				return fmt.Errorf("scenario: churn[%d] %s targets node %d of %d", i, c.Kind, c.Node, s.Nodes)
			}
			if c.Node < 0 {
				racks := 0
				if s.Fabric.Topology == fabric.KindTwoTier && s.Fabric.RackSize > 0 {
					racks = (s.Nodes + s.Fabric.RackSize - 1) / s.Fabric.RackSize
				}
				if r := -c.Node - 1; r >= racks {
					return fmt.Errorf("scenario: churn[%d] %s targets uplink of rack %d of %d", i, c.Kind, r, racks)
				}
			}
		default:
			return fmt.Errorf("scenario: churn[%d] unknown kind %v", i, c.Kind)
		}
	}
	if s.Evacuate {
		crash := false
		for _, c := range s.Churn {
			crash = crash || c.Kind == ChurnNodeCrash
		}
		if !crash {
			return fmt.Errorf("scenario: evacuate set without any node-crash churn")
		}
	}
	return nil
}

// HasFailures reports whether the spec schedules failure-plane churn
// (node crashes/recoveries, link transitions) — the condition under which
// reports carry sojourn-latency percentiles and failure counters.
func (s Spec) HasFailures() bool {
	for _, c := range s.Churn {
		if c.Kind.failure() {
			return true
		}
	}
	return false
}

// Fingerprint returns the canonical cache/seed key: a pure function of
// every behaviour-bearing field. Two specs with equal fingerprints run the
// same scenario and share one campaign cache cell.
func (s Spec) Fingerprint() string {
	s = s.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "name=%s|nodes=%d|procs=%d|tiers=%g@%g/%g@%g",
		s.Name, s.Nodes, s.Procs, s.SlowFrac, s.SlowScale, s.FastFrac, s.FastScale)
	fmt.Fprintf(&b, "|arrival=%s/%d|place=%s/%g", s.Arrival, int64(s.MeanInterarrival), s.Placement, s.Skew)
	fmt.Fprintf(&b, "|compute=%d|fp=%d|mem=%d", int64(s.MeanCompute), s.MeanFootprintMB, s.NodeMemMB)
	// The policy set is part of the job key: campaigns cache and seed per
	// (spec, policies), so adding a policy re-runs the cell.
	fmt.Fprintf(&b, "|pol=%s", strings.Join(s.Policies, ","))
	b.WriteString("|mix=")
	for i, m := range s.Mix {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%d", m.Kind, m.Weight)
	}
	fmt.Fprintf(&b, "|net=%s/%d/%g/%g", s.Network.Name, int64(s.Network.LatencyOneWay), s.Network.BandwidthBps, s.BackgroundLoad)
	fmt.Fprintf(&b, "|bal=%d/%g|q=%d|horizon=%d", int64(s.BalancePeriod), s.CostThreshold, int64(s.Quantum), int64(s.MaxSimTime))
	b.WriteString("|churn=")
	for i, c := range s.Churn {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s@%d:n%d/f%g/p%d", c.Kind, int64(c.At), c.Node, c.Factor, c.Procs)
	}
	// The fabric and sample-size segments are appended only when they
	// leave their defaults, so pre-fabric specs keep their exact job keys
	// (and therefore their campaign-derived seeds and cache cells).
	if !s.Fabric.IsDefault() {
		fmt.Fprintf(&b, "|fabric=%s", s.Fabric)
	}
	if s.LoadVectorLen > 0 {
		fmt.Fprintf(&b, "|l=%d", s.LoadVectorLen)
	}
	if s.Evacuate {
		b.WriteString("|evac=1")
	}
	return b.String()
}

// String describes the spec in progress reports and errors.
func (s Spec) String() string {
	s = s.Canonical()
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	return fmt.Sprintf("%s(%dn/%dp)", name, s.Nodes, s.Procs)
}

// Presets — the named scenarios of cmd/ampom-cluster.

// PresetNames lists the built-in scenarios in presentation order.
func PresetNames() []string {
	return []string{"hpc-farm", "web-churn", "hetero-burst", "mpi-ranks", "rack-farm", "rack-farm-failures", "gossip-mesh", "mega-farm", "giga-farm"}
}

// Preset returns a named built-in scenario. The names model the cluster
// shapes the related openMosix literature runs: an HPC farm digesting a
// batch burst, a churning web/interactive mix, a heterogeneous cluster hit
// by an arrival burst, and a rank-per-CPU MPI launch on a cluster with a
// few slow nodes.
func Preset(name string) (Spec, error) {
	switch strings.ToLower(name) {
	case "hpc-farm":
		// The acceptance scenario: 64 nodes, 256 processes, a skewed batch
		// landing mostly on the entry node — the classic openMosix farm.
		return Spec{
			Name:            "hpc-farm",
			Nodes:           64,
			Procs:           256,
			Arrival:         ArrivalBatch,
			Placement:       PlaceSkewed,
			Skew:            0.35,
			MeanCompute:     6 * simtime.Second,
			MeanFootprintMB: 96,
			Mix: []MixWeight{
				{Kind: MixSequential, Weight: 3},
				{Kind: MixBlocked, Weight: 1},
			},
		}.Canonical(), nil
	case "web-churn":
		// Interactive/web processes trickling in with small working sets,
		// disturbed by a slow node, background traffic and a late burst —
		// on a tc-shaped 50 Mb/s commodity tier rather than the testbed's
		// Fast Ethernet.
		return Spec{
			Name:             "web-churn",
			Nodes:            16,
			Procs:            96,
			Arrival:          ArrivalPoisson,
			MeanInterarrival: 150 * simtime.Millisecond,
			Placement:        PlaceSkewed,
			Skew:             0.6,
			MeanCompute:      4 * simtime.Second,
			MeanFootprintMB:  64,
			Network:          netmodel.Shape(netmodel.FastEthernet(), 50e6, 500*simtime.Microsecond),
			Mix: []MixWeight{
				{Kind: MixSmallWS, Weight: 3},
				{Kind: MixRandom, Weight: 1},
			},
			Churn: []ChurnEvent{
				{At: 10 * simtime.Second, Kind: ChurnSlowNode, Node: 1, Factor: 0.5},
				{At: 20 * simtime.Second, Kind: ChurnNetLoad, Node: -1, Factor: 0.5},
				{At: 30 * simtime.Second, Kind: ChurnBurst, Node: 0, Procs: 24},
			},
		}.Canonical(), nil
	case "hetero-burst":
		// A mixed-generation cluster (a quarter slow, a quarter fast)
		// absorbing a second burst mid-run.
		return Spec{
			Name:            "hetero-burst",
			Nodes:           32,
			Procs:           128,
			SlowFrac:        0.25,
			FastFrac:        0.25,
			Arrival:         ArrivalBatch,
			Placement:       PlaceSkewed,
			Skew:            0.5,
			MeanCompute:     6 * simtime.Second,
			MeanFootprintMB: 128,
			Mix: []MixWeight{
				{Kind: MixSequential, Weight: 1},
				{Kind: MixBlocked, Weight: 1},
				{Kind: MixRandom, Weight: 1},
			},
			Churn: []ChurnEvent{
				{At: 15 * simtime.Second, Kind: ChurnBurst, Node: 0, Procs: 32},
			},
		}.Canonical(), nil
	case "mpi-ranks":
		// A rank-per-CPU MPI launch: round-robin placement is balanced by
		// construction, but slow nodes strand their ranks — migration is
		// what rescues the stragglers (cf. Open-MPI over MOSIX).
		return Spec{
			Name:            "mpi-ranks",
			Nodes:           24,
			Procs:           96,
			SlowFrac:        0.25,
			SlowScale:       0.5,
			Arrival:         ArrivalBatch,
			Placement:       PlaceRoundRobin,
			MeanCompute:     8 * simtime.Second,
			MeanFootprintMB: 160,
			CostThreshold:   1.1,
			Mix: []MixWeight{
				{Kind: MixBlocked, Weight: 2},
				{Kind: MixSequential, Weight: 1},
			},
			Churn: []ChurnEvent{
				{At: 12 * simtime.Second, Kind: ChurnSlowNode, Node: 2, Factor: 0.6},
			},
		}.Canonical(), nil
	case "rack-farm":
		// The switched-fabric acceptance scenario: a 512-node, 16-rack farm
		// launching 2048 ranks round-robin. A fifth of the machines are a
		// generation older, so migration has to rescue stragglers across
		// racks — through oversubscribed uplinks, with gossip-aged load
		// information (the multi-rack farms of the openMosix HPC-farm
		// literature, an order of magnitude past the hpc-farm preset).
		return Spec{
			Name:            "rack-farm",
			Nodes:           512,
			Procs:           2048,
			SlowFrac:        0.2,
			SlowScale:       0.5,
			Arrival:         ArrivalBatch,
			Placement:       PlaceRoundRobin,
			MeanCompute:     5 * simtime.Second,
			MeanFootprintMB: 64,
			CostThreshold:   1.1,
			Fabric: FabricSpec{
				Topology: fabric.KindTwoTier,
				RackSize: 32,
				Oversub:  4,
			},
			Mix: []MixWeight{
				{Kind: MixSequential, Weight: 3},
				{Kind: MixBlocked, Weight: 1},
			},
		}.Canonical(), nil
	case "rack-farm-failures":
		// The failure-realism acceptance scenario: the rack-farm shape with
		// things actually breaking. Two nodes crash back to back — the
		// second while the first one's evacuation payloads are still in
		// flight, so some migrants demonstrably fail back to their (dead)
		// source and strand until recovery — a rack uplink flaps while
		// stale gossip still routes migrations through it, and both nodes
		// come back before the batch drains. Evacuation is on: a crash
		// drains its runnable residents instead of discarding their
		// progress. Low node indices keep the script valid when the preset
		// is shrunk with -nodes.
		spec, err := Preset("rack-farm")
		if err != nil {
			return Spec{}, err
		}
		spec.Name = "rack-farm-failures"
		spec.Evacuate = true
		spec.Churn = []ChurnEvent{
			{At: 3 * simtime.Second, Kind: ChurnNodeCrash, Node: 5},
			{At: 3*simtime.Second + 40*simtime.Millisecond, Kind: ChurnNodeCrash, Node: 9},
			{At: 5 * simtime.Second, Kind: ChurnLinkDown, Node: -2},
			{At: 8 * simtime.Second, Kind: ChurnLinkUp, Node: -2},
			{At: 10 * simtime.Second, Kind: ChurnNodeRecover, Node: 9},
			{At: 12 * simtime.Second, Kind: ChurnNodeRecover, Node: 5},
		}
		return spec.Canonical(), nil
	case "gossip-mesh":
		// A flat full-bisection fabric whose monitoring is pure gossip: a
		// skewed burst lands on a 96-node mesh and the balancer policies
		// must spread it while their picture of far nodes ages — the
		// decentralised MOSIX dissemination regime, with no hub at all.
		return Spec{
			Name:            "gossip-mesh",
			Nodes:           96,
			Procs:           384,
			Arrival:         ArrivalBatch,
			Placement:       PlaceSkewed,
			Skew:            0.3,
			MeanCompute:     5 * simtime.Second,
			MeanFootprintMB: 96,
			Fabric: FabricSpec{
				Topology:     fabric.KindFlat,
				GossipFanout: 3,
			},
			Mix: []MixWeight{
				{Kind: MixSequential, Weight: 2},
				{Kind: MixRandom, Weight: 1},
			},
		}.Canonical(), nil
	case "mega-farm":
		// The incremental-view acceptance scenario: 4096 nodes in 64 racks
		// of 64, 16384 ranks dealt round-robin — an order of magnitude past
		// rack-farm, the multi-thousand-node farm scale the openMosix
		// HPC-farm literature aims at. A fifth of the machines are a
		// generation older, the core is heavily oversubscribed, and the
		// gossip period is stretched to 4 s, so a 4096-node farm gossips at
		// half the small-farm cadence — and balancer policies pay for it in
		// staleness, deciding from the bounded window of the farm that has
		// reached them. Only the live, dirty-node-tracked cluster view keeps
		// balance rounds at this scale within the event budget.
		return Spec{
			Name:            "mega-farm",
			Nodes:           4096,
			Procs:           16384,
			SlowFrac:        0.2,
			SlowScale:       0.5,
			Arrival:         ArrivalBatch,
			Placement:       PlaceRoundRobin,
			MeanCompute:     4 * simtime.Second,
			MeanFootprintMB: 48,
			CostThreshold:   1.1,
			Fabric: FabricSpec{
				Topology:     fabric.KindTwoTier,
				RackSize:     64,
				Oversub:      8,
				GossipPeriod: 4 * simtime.Second,
			},
			Mix: []MixWeight{
				{Kind: MixSequential, Weight: 3},
				{Kind: MixBlocked, Weight: 1},
			},
		}.Canonical(), nil
	case "giga-farm":
		// The bounded-gossip acceptance scenario: 16384 nodes in 128 racks
		// of 128, 65536 ranks dealt round-robin — a further order of
		// magnitude past mega-farm, only reachable because dissemination is
		// windowed: every push carries the l freshest entries instead of a
		// full-membership vector, and every daemon stores only the origins
		// it has recently heard (O(n·l) plane memory, not O(n²) — a dense
		// 16k×16k entry matrix alone would be tens of gigabytes). Slow pull
		// rounds keep the partial views converging while balancer policies
		// decide from whatever window of the farm has reached them.
		return Spec{
			Name:            "giga-farm",
			Nodes:           16384,
			Procs:           65536,
			SlowFrac:        0.2,
			SlowScale:       0.5,
			Arrival:         ArrivalBatch,
			Placement:       PlaceRoundRobin,
			MeanCompute:     4 * simtime.Second,
			MeanFootprintMB: 32,
			CostThreshold:   1.1,
			Fabric: FabricSpec{
				Topology:     fabric.KindTwoTier,
				RackSize:     128,
				Oversub:      16,
				GossipPeriod: 4 * simtime.Second,
			},
			Mix: []MixWeight{
				{Kind: MixSequential, Weight: 3},
				{Kind: MixBlocked, Weight: 1},
			},
		}.Canonical(), nil
	default:
		return Spec{}, fmt.Errorf("scenario: unknown preset %q (want %s)", name, strings.Join(PresetNames(), ", "))
	}
}

// Presets returns every built-in scenario.
func Presets() []Spec {
	names := PresetNames()
	out := make([]Spec, len(names))
	for i, n := range names {
		out[i], _ = Preset(n)
	}
	return out
}

// sortedMix returns the mix with zero-weight entries dropped, in kind
// order — the canonical form used when drawing processes.
func (s Spec) sortedMix() []MixWeight {
	mix := make([]MixWeight, 0, len(s.Mix))
	for _, m := range s.Mix {
		if m.Weight > 0 {
			mix = append(mix, m)
		}
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].Kind < mix[j].Kind })
	return mix
}

// footprintPages converts a footprint in MB to pages.
func footprintPages(mb int64) int64 { return mb * 1e6 / memory.PageSize }

// drawMix picks a mix kind by weight.
func drawMix(mix []MixWeight, rng *prng.Source) MixKind {
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	n := rng.Intn(total)
	for _, m := range mix {
		n -= m.Weight
		if n < 0 {
			return m.Kind
		}
	}
	return mix[len(mix)-1].Kind
}
