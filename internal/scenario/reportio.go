// Report input: the decoding half of the report I/O round trip. Saved
// report artefacts (ampom-cluster -o) decode back into Reports, and two
// artefacts can be compared field by field — so a checked-in report
// becomes a regression gate (`ampom-cluster -diff a.json b.json` exits
// non-zero on divergence).
//
// The comparison works at the on-disk (reportJSON) level: both sides pass
// through the identical decode transform, so two files are reported equal
// exactly when their recorded values are equal, independent of the
// float↔duration conversions the in-memory Report form performs. The gate
// is exact by default; DiffOptions loosens individual float columns by a
// relative epsilon (so noisy timing columns can gate softly while counts
// stay exact) and offers a per-column summary of the divergences.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"reflect"
	"strings"

	"ampom/internal/fabric"
	"ampom/internal/simtime"
)

// schemeFromJSON converts one on-disk policy row back to SchemeStats.
func schemeFromJSON(sj schemeJSON) SchemeStats {
	st := SchemeStats{
		Policy:         sj.Policy,
		Makespan:       simtime.FromSeconds(sj.MakespanS),
		MeanSlowdown:   sj.MeanSlowdown,
		SlowdownVsBase: sj.SlowdownVsBase,
		Migrations:     sj.Migrations,
		FrozenTotal:    simtime.FromSeconds(sj.FrozenS),
		ExtraWork:      simtime.FromSeconds(sj.ExtraWorkS),
		HardFaults:     sj.HardFaults,
		PrefetchPages:  sj.PrefetchPages,
		MigrationBytes: sj.MigrationBytes,
		Unfinished:     sj.Unfinished,
		FinalRTT:       simtime.FromSeconds(sj.FinalRTTMs / 1e3),
		Events:         sj.Events,
		SojournP50:     simtime.FromSeconds(sj.SojournP50S),
		SojournP95:     simtime.FromSeconds(sj.SojournP95S),
		SojournP99:     simtime.FromSeconds(sj.SojournP99S),
		Crashes:        sj.Crashes,
		Evacuations:    sj.Evacuations,
		FailBacks:      sj.FailBacks,
	}
	for _, t := range sj.Tiers {
		st.TierUse = append(st.TierUse, fabric.TierStats{
			Name: t.Tier, Links: t.Links, CapacityBps: t.CapacityBps, Bytes: t.Bytes,
		})
	}
	return st
}

// fromReportJSON rebuilds a Report from its on-disk shape. The spec is
// shape-validated only: a report may record a run under a custom policy
// this process never registered, and the artefact must still decode.
// decodeReportDocs has already gated the format version.
func (rj reportJSON) fromReportJSON() (*Report, error) {
	spec, err := rj.Spec.fromJSON()
	if err != nil {
		return nil, err
	}
	spec = spec.Canonical()
	if err := spec.validateShape(); err != nil {
		return nil, err
	}
	rep := &Report{Spec: spec, Seed: rj.Seed, Procs: rj.Procs}
	for _, sj := range rj.Policies {
		rep.Schemes = append(rep.Schemes, schemeFromJSON(sj))
	}
	return rep, nil
}

// decodeReportDocs parses a report artefact into its on-disk rows: either
// one report object (ampom-cluster -o on a single scenario) or an array
// (batch runs). Unknown fields are rejected, as for specs.
func decodeReportDocs(data []byte) ([]reportJSON, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var docs []reportJSON
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := dec.Decode(&docs); err != nil {
			return nil, fmt.Errorf("scenario: decoding report array: %w", err)
		}
	} else {
		var one reportJSON
		if err := dec.Decode(&one); err != nil {
			return nil, fmt.Errorf("scenario: decoding report: %w", err)
		}
		docs = []reportJSON{one}
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after report document")
	}
	for _, d := range docs {
		if d.Version != ReportVersion {
			return nil, fmt.Errorf("scenario: unsupported report version %d (want %d)", d.Version, ReportVersion)
		}
	}
	return docs, nil
}

// DecodeReports parses a JSON report artefact written by Report.JSON or
// ReportsJSON — a single object or an array — back into Reports.
func DecodeReports(data []byte) ([]*Report, error) {
	docs, err := decodeReportDocs(data)
	if err != nil {
		return nil, err
	}
	out := make([]*Report, 0, len(docs))
	for _, d := range docs {
		r, err := d.fromReportJSON()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// LoadReports reads a report artefact from disk.
func LoadReports(path string) ([]*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return DecodeReports(data)
}

// jsonFieldName extracts the wire name of a struct field.
func jsonFieldName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	if tag == "" {
		return f.Name
	}
	return tag
}

// DiffOptions tunes report comparison. The zero value is the historical
// exact gate: every recorded field must match bit for bit.
type DiffOptions struct {
	// RelEps maps a policy-row float column (by wire name, e.g.
	// "mean_slowdown" or "frozen_s") to the relative epsilon within which
	// the column still gates as equal: |a−b| ≤ eps × max(|a|,|b|). The ""
	// key is the default for every float column without an entry of its
	// own. Only float64 columns of the per-policy rows are eligible —
	// counts, spec fields, the seed and the tier rows always compare
	// exactly, so a tolerance for noisy timing columns can never mask a
	// changed migration count.
	RelEps map[string]float64
	// Summary collapses the line-per-field output into one line per
	// diverging column — divergence count plus the worst relative
	// deviation for float columns — the overview mode for artefacts whose
	// float noise is expected but whose shape must hold.
	Summary bool
}

// epsFor resolves the relative epsilon of one float column.
func (o DiffOptions) epsFor(column string) float64 {
	if e, ok := o.RelEps[column]; ok {
		return e
	}
	return o.RelEps[""]
}

// relDev is the symmetric relative deviation of two floats: |a−b| scaled
// by the larger magnitude (0 when both are 0).
func relDev(a, b float64) float64 {
	if a == b {
		return 0
	}
	m := math.Abs(a)
	if n := math.Abs(b); n > m {
		m = n
	}
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// diffCollector accumulates divergences in either output mode: verbose
// (one line per field, the historical format) or summary (one line per
// column).
type diffCollector struct {
	opts  DiffOptions
	lines []string
	count map[string]int
	worst map[string]float64
	order []string
}

func newDiffCollector(opts DiffOptions) *diffCollector {
	return &diffCollector{
		opts:  opts,
		count: map[string]int{},
		worst: map[string]float64{},
	}
}

// add records one divergence: line is the verbose form, column the summary
// bucket, rel the relative deviation (negative for non-float divergences,
// which summarise without a deviation figure).
func (d *diffCollector) add(column, line string, rel float64) {
	d.lines = append(d.lines, line)
	if _, seen := d.count[column]; !seen {
		d.order = append(d.order, column)
	}
	d.count[column]++
	if rel > d.worst[column] {
		d.worst[column] = rel
	}
}

// output renders the collected divergences in the selected mode.
func (d *diffCollector) output() []string {
	if !d.opts.Summary {
		return d.lines
	}
	out := make([]string, 0, len(d.order))
	for _, col := range d.order {
		line := fmt.Sprintf("column %s: %d divergence(s)", col, d.count[col])
		if w := d.worst[col]; w > 0 {
			line += fmt.Sprintf(", max rel dev %.3g", w)
		}
		out = append(out, line)
	}
	return out
}

// diffStructs records one divergence per differing field of two like-typed
// structs, labelling fields by their wire names. When floatCols is set
// (the per-policy rows), float64 fields gate through the options' relative
// epsilons; everything else compares exactly.
func diffStructs(prefix string, a, b any, c *diffCollector, floatCols bool) {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		col := jsonFieldName(t.Field(i))
		if floatCols && t.Field(i).Type.Kind() == reflect.Float64 {
			fa, fb := va.Field(i).Float(), vb.Field(i).Float()
			if fa == fb {
				continue
			}
			rel := relDev(fa, fb)
			if eps := c.opts.epsFor(col); eps > 0 {
				if rel <= eps {
					continue
				}
				c.add(col, fmt.Sprintf("%s%s: %v != %v (rel dev %.3g > eps %g)", prefix, col, fa, fb, rel, eps), rel)
				continue
			}
			c.add(col, fmt.Sprintf("%s%s: %v != %v", prefix, col, fa, fb), rel)
			continue
		}
		fa, fb := va.Field(i).Interface(), vb.Field(i).Interface()
		if !reflect.DeepEqual(fa, fb) {
			c.add(col, fmt.Sprintf("%s%s: %v != %v", prefix, col, fa, fb), 0)
		}
	}
}

// diffDocs compares two decoded report documents row by row.
func diffDocs(idx int, a, b reportJSON, c *diffCollector) {
	label := fmt.Sprintf("report[%d]", idx)
	if !reflect.DeepEqual(a.Spec, b.Spec) {
		diffStructs(label+": spec.", a.Spec, b.Spec, c, false)
	}
	if a.Seed != b.Seed {
		c.add("seed", fmt.Sprintf("%s: seed %d != %d", label, a.Seed, b.Seed), 0)
	}
	if a.Procs != b.Procs {
		c.add("procs", fmt.Sprintf("%s: procs %d != %d", label, a.Procs, b.Procs), 0)
	}
	rows := make(map[string]schemeJSON, len(b.Policies))
	for _, r := range b.Policies {
		rows[r.Policy] = r
	}
	seen := make(map[string]bool, len(a.Policies))
	for _, ra := range a.Policies {
		seen[ra.Policy] = true
		rb, ok := rows[ra.Policy]
		if !ok {
			c.add("policies", fmt.Sprintf("%s: policy %s only in the first report", label, ra.Policy), 0)
			continue
		}
		diffStructs(fmt.Sprintf("%s: %s: ", label, ra.Policy), ra, rb, c, true)
	}
	for _, rb := range b.Policies {
		if !seen[rb.Policy] {
			c.add("policies", fmt.Sprintf("%s: policy %s only in the second report", label, rb.Policy), 0)
		}
	}
}

// DiffReportsData compares two report artefacts (each a JSON object or
// array) exactly and returns one human-readable line per divergence —
// empty means the recorded runs are identical.
func DiffReportsData(a, b []byte) ([]string, error) {
	return DiffReportsDataOpts(a, b, DiffOptions{})
}

// DiffReportsDataOpts is DiffReportsData under explicit comparison
// options: per-column relative epsilons for the float columns and the
// per-column summary mode. An empty result means the artefacts gate as
// equal under the options.
func DiffReportsDataOpts(a, b []byte, opts DiffOptions) ([]string, error) {
	da, err := decodeReportDocs(a)
	if err != nil {
		return nil, fmt.Errorf("scenario: first report: %w", err)
	}
	db, err := decodeReportDocs(b)
	if err != nil {
		return nil, fmt.Errorf("scenario: second report: %w", err)
	}
	c := newDiffCollector(opts)
	if len(da) != len(db) {
		c.add("reports", fmt.Sprintf("report count %d != %d", len(da), len(db)), 0)
	}
	n := len(da)
	if len(db) < n {
		n = len(db)
	}
	for i := 0; i < n; i++ {
		diffDocs(i, da[i], db[i], c)
	}
	return c.output(), nil
}

// DiffReportFiles compares two saved report artefacts by path, exactly.
func DiffReportFiles(pathA, pathB string) ([]string, error) {
	return DiffReportFilesOpts(pathA, pathB, DiffOptions{})
}

// DiffReportFilesOpts compares two saved report artefacts by path under
// explicit comparison options.
func DiffReportFilesOpts(pathA, pathB string, opts DiffOptions) ([]string, error) {
	a, err := os.ReadFile(pathA)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return DiffReportsDataOpts(a, b, opts)
}
