// Report input: the decoding half of the report I/O round trip. Saved
// report artefacts (ampom-cluster -o) decode back into Reports, and two
// artefacts can be compared field by field — so a checked-in report
// becomes a regression gate (`ampom-cluster -diff a.json b.json` exits
// non-zero on divergence).
//
// The comparison works at the on-disk (reportJSON) level: both sides pass
// through the identical decode transform, so two files are reported equal
// exactly when their recorded values are equal, independent of the
// float↔duration conversions the in-memory Report form performs.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"

	"ampom/internal/fabric"
	"ampom/internal/simtime"
)

// schemeFromJSON converts one on-disk policy row back to SchemeStats.
func schemeFromJSON(sj schemeJSON) SchemeStats {
	st := SchemeStats{
		Policy:         sj.Policy,
		Makespan:       simtime.FromSeconds(sj.MakespanS),
		MeanSlowdown:   sj.MeanSlowdown,
		SlowdownVsBase: sj.SlowdownVsBase,
		Migrations:     sj.Migrations,
		FrozenTotal:    simtime.FromSeconds(sj.FrozenS),
		ExtraWork:      simtime.FromSeconds(sj.ExtraWorkS),
		HardFaults:     sj.HardFaults,
		PrefetchPages:  sj.PrefetchPages,
		MigrationBytes: sj.MigrationBytes,
		Unfinished:     sj.Unfinished,
		FinalRTT:       simtime.FromSeconds(sj.FinalRTTMs / 1e3),
		Events:         sj.Events,
	}
	for _, t := range sj.Tiers {
		st.TierUse = append(st.TierUse, fabric.TierStats{
			Name: t.Tier, Links: t.Links, CapacityBps: t.CapacityBps, Bytes: t.Bytes,
		})
	}
	return st
}

// fromReportJSON rebuilds a Report from its on-disk shape. The spec is
// shape-validated only: a report may record a run under a custom policy
// this process never registered, and the artefact must still decode.
// decodeReportDocs has already gated the format version.
func (rj reportJSON) fromReportJSON() (*Report, error) {
	spec, err := rj.Spec.fromJSON()
	if err != nil {
		return nil, err
	}
	spec = spec.Canonical()
	if err := spec.validateShape(); err != nil {
		return nil, err
	}
	rep := &Report{Spec: spec, Seed: rj.Seed, Procs: rj.Procs}
	for _, sj := range rj.Policies {
		rep.Schemes = append(rep.Schemes, schemeFromJSON(sj))
	}
	return rep, nil
}

// decodeReportDocs parses a report artefact into its on-disk rows: either
// one report object (ampom-cluster -o on a single scenario) or an array
// (batch runs). Unknown fields are rejected, as for specs.
func decodeReportDocs(data []byte) ([]reportJSON, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var docs []reportJSON
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := dec.Decode(&docs); err != nil {
			return nil, fmt.Errorf("scenario: decoding report array: %w", err)
		}
	} else {
		var one reportJSON
		if err := dec.Decode(&one); err != nil {
			return nil, fmt.Errorf("scenario: decoding report: %w", err)
		}
		docs = []reportJSON{one}
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after report document")
	}
	for _, d := range docs {
		if d.Version != ReportVersion {
			return nil, fmt.Errorf("scenario: unsupported report version %d (want %d)", d.Version, ReportVersion)
		}
	}
	return docs, nil
}

// DecodeReports parses a JSON report artefact written by Report.JSON or
// ReportsJSON — a single object or an array — back into Reports.
func DecodeReports(data []byte) ([]*Report, error) {
	docs, err := decodeReportDocs(data)
	if err != nil {
		return nil, err
	}
	out := make([]*Report, 0, len(docs))
	for _, d := range docs {
		r, err := d.fromReportJSON()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// LoadReports reads a report artefact from disk.
func LoadReports(path string) ([]*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return DecodeReports(data)
}

// jsonFieldName extracts the wire name of a struct field.
func jsonFieldName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	if tag == "" {
		return f.Name
	}
	return tag
}

// diffStructs appends one line per differing field of two like-typed
// structs, labelling fields by their wire names.
func diffStructs(prefix string, a, b any, out *[]string) {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		fa, fb := va.Field(i).Interface(), vb.Field(i).Interface()
		if !reflect.DeepEqual(fa, fb) {
			*out = append(*out, fmt.Sprintf("%s%s: %v != %v", prefix, jsonFieldName(t.Field(i)), fa, fb))
		}
	}
}

// diffDocs compares two decoded report documents row by row.
func diffDocs(idx int, a, b reportJSON) []string {
	var out []string
	label := fmt.Sprintf("report[%d]", idx)
	if !reflect.DeepEqual(a.Spec, b.Spec) {
		var specDiffs []string
		diffStructs(label+": spec.", a.Spec, b.Spec, &specDiffs)
		out = append(out, specDiffs...)
	}
	if a.Seed != b.Seed {
		out = append(out, fmt.Sprintf("%s: seed %d != %d", label, a.Seed, b.Seed))
	}
	if a.Procs != b.Procs {
		out = append(out, fmt.Sprintf("%s: procs %d != %d", label, a.Procs, b.Procs))
	}
	rows := make(map[string]schemeJSON, len(b.Policies))
	for _, r := range b.Policies {
		rows[r.Policy] = r
	}
	seen := make(map[string]bool, len(a.Policies))
	for _, ra := range a.Policies {
		seen[ra.Policy] = true
		rb, ok := rows[ra.Policy]
		if !ok {
			out = append(out, fmt.Sprintf("%s: policy %s only in the first report", label, ra.Policy))
			continue
		}
		diffStructs(fmt.Sprintf("%s: %s: ", label, ra.Policy), ra, rb, &out)
	}
	for _, rb := range b.Policies {
		if !seen[rb.Policy] {
			out = append(out, fmt.Sprintf("%s: policy %s only in the second report", label, rb.Policy))
		}
	}
	return out
}

// DiffReportsData compares two report artefacts (each a JSON object or
// array) and returns one human-readable line per divergence — empty means
// the recorded runs are identical.
func DiffReportsData(a, b []byte) ([]string, error) {
	da, err := decodeReportDocs(a)
	if err != nil {
		return nil, fmt.Errorf("scenario: first report: %w", err)
	}
	db, err := decodeReportDocs(b)
	if err != nil {
		return nil, fmt.Errorf("scenario: second report: %w", err)
	}
	var out []string
	if len(da) != len(db) {
		out = append(out, fmt.Sprintf("report count %d != %d", len(da), len(db)))
	}
	n := len(da)
	if len(db) < n {
		n = len(db)
	}
	for i := 0; i < n; i++ {
		out = append(out, diffDocs(i, da[i], db[i])...)
	}
	return out, nil
}

// DiffReportFiles compares two saved report artefacts by path.
func DiffReportFiles(pathA, pathB string) ([]string, error) {
	a, err := os.ReadFile(pathA)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	b, err := os.ReadFile(pathB)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return DiffReportsData(a, b)
}
