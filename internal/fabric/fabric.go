// Package fabric models the cluster interconnect topology: how nodes,
// switches and links are wired, how payloads are routed hop by hop through
// the netmodel queues along the path, and how the monitoring plane
// (oM_infoD) disseminates load information across it.
//
// Three topologies are built in:
//
//   - Star: the historical single-hub interconnect — one spoke link per
//     node, the hub node relaying spoke-to-spoke payloads, and a paired
//     infod daemon on each end of every spoke. It is byte-compatible with
//     the scenario engine's pre-fabric wiring and remains the default.
//   - TwoTier: a switched multi-rack fabric — per-rack leaf switches,
//     one core spine, configurable rack size and core oversubscription.
//     Cross-rack traffic queues on the shared uplinks, so contention is
//     modelled per link along the path (the "OpenMosix approach to build
//     scalable HPC farms" shape).
//   - Flat: a full-bisection single-switch fabric — every pair of nodes
//     two hops apart with no shared bottleneck beyond the endpoints.
//
// Switched topologies replace the paired hub-spoke infod exchange with
// decentralised gossip (infod.Gossip): each node pushes a bounded window —
// the l freshest entries of its load vector — to a few distinct random
// peers per period, runs slower anti-entropy pull rounds to heal
// partitions and late joiners, entries age as they propagate, and the
// t0/td estimates AMPoM's Equation 3 consumes are derived per origin from
// gossip-path timing — so balancer policies see staleness that grows with
// topology distance.
//
// Determinism is inherited from the engine: construction, routing and
// gossip draw only from PRNG streams derived from the caller's seed, so a
// fabric is a pure function of (Config, node set).
package fabric

import (
	"fmt"
	"strings"

	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/infod"
	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// Kind names an interconnect topology.
type Kind uint8

// The built-in topologies.
const (
	// KindStar is the legacy single-hub star: node 0 relays spoke-to-spoke
	// traffic and monitoring runs as paired per-spoke daemons.
	KindStar Kind = iota
	// KindTwoTier is a switched two-tier fabric: per-rack leaf switches
	// under an oversubscribed core spine, with gossip-based monitoring.
	KindTwoTier
	// KindFlat is a full-bisection single-switch fabric with gossip-based
	// monitoring.
	KindFlat
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindStar:
		return "star"
	case KindTwoTier:
		return "two-tier"
	case KindFlat:
		return "flat"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds lists the built-in topologies in declaration order.
func Kinds() []Kind { return []Kind{KindStar, KindTwoTier, KindFlat} }

// KindNames lists the topology names Kinds covers.
func KindNames() []string {
	ks := Kinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.String()
	}
	return out
}

// ParseKind resolves a topology name; the empty string is the star default.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if s == k.String() {
			return k, nil
		}
	}
	if s == "" {
		return KindStar, nil
	}
	return 0, fmt.Errorf("fabric: unknown topology %q (want %s)", s, strings.Join(KindNames(), ", "))
}

// Config describes the interconnect of one simulation run. Zero gossip
// fields take defaults on switched topologies and are ignored on the star.
type Config struct {
	// Kind selects the topology.
	Kind Kind
	// RackSize is the number of nodes under one leaf switch (two-tier;
	// default 16).
	RackSize int
	// Oversub is the core oversubscription ratio (two-tier; default 4): a
	// rack's uplink carries RackSize/Oversub node-links' worth of
	// bandwidth.
	Oversub float64
	// GossipFanout is how many random peers each daemon pushes its load
	// vector to per period (switched topologies; default 2).
	GossipFanout int
	// GossipPeriod is the gossip push period (default 2 s — the paired
	// daemons' historical update period).
	GossipPeriod simtime.Duration
	// GossipWindow is l, the bounded number of entries (own sample
	// included) one gossip push or pull response carries (switched
	// topologies; default 32).
	GossipWindow int
	// Network is the per-node link profile; two-tier uplinks scale its
	// bandwidth by RackSize/Oversub.
	Network netmodel.Profile
	// BackgroundLoad is the initial background-load fraction applied to
	// every node-facing link.
	BackgroundLoad float64
	// Seed drives the daemon jitter and gossip peer-selection streams.
	Seed uint64
	// Sharding, when non-nil, spreads the fabric across per-shard engines
	// for conservative parallel runs (two-tier only). Nil builds the
	// sequential fabric on eng.
	Sharding *Sharding
}

// Sharding wires a two-tier fabric for sharded execution: each rack's
// links live on the engine of the shard owning its nodes, and anything
// crossing a shard boundary is staged through the group's barriers.
type Sharding struct {
	// ShardOf maps node → shard. All nodes of a rack must share a shard.
	ShardOf []int
	// Engines are the shard engines, indexed by shard.
	Engines []*sim.Engine
	// Group coordinates the windows; link deliveries that cross shards are
	// staged through it.
	Group *sim.ShardGroup
	// GlobalPayload classifies payloads whose node-side delivery must run
	// on the group's global engine (migrations: the restore path touches
	// both endpoint daemons). Nil treats every payload as shard-local.
	GlobalPayload func(payload any) bool
}

// The shape and gossip defaults — the single source scenario's FabricSpec
// canonicalisation resolves against, so fingerprints and the built fabric
// can never disagree about what a zero field means.
const (
	// DefaultRackSize is the two-tier fabric's nodes-per-leaf default.
	DefaultRackSize = 16
	// DefaultOversub is the two-tier core oversubscription default.
	DefaultOversub = 4
	// DefaultGossipFanout is the per-period gossip push fanout default.
	DefaultGossipFanout = 2
	// DefaultGossipPeriod is the gossip push period default — the paired
	// daemons' historical update period.
	DefaultGossipPeriod = 2 * simtime.Second
	// DefaultGossipWindow is the bounded partial-view size default — the
	// l freshest entries one push carries (infod.DefaultWindowLen).
	DefaultGossipWindow = infod.DefaultWindowLen
)

// withDefaults resolves the zero gossip/topology fields.
func (c Config) withDefaults() Config {
	if c.RackSize <= 0 {
		c.RackSize = DefaultRackSize
	}
	if c.Oversub <= 0 {
		c.Oversub = DefaultOversub
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = DefaultGossipFanout
	}
	if c.GossipPeriod <= 0 {
		c.GossipPeriod = DefaultGossipPeriod
	}
	if c.GossipWindow <= 0 {
		c.GossipWindow = DefaultGossipWindow
	}
	return c
}

// TierStats summarises one tier of the interconnect after (or during) a
// run: how many links it has, their aggregate capacity, and the payload
// bytes carried across them (every hop counts).
type TierStats struct {
	// Name labels the tier ("edge", "core", "star").
	Name string
	// Links is the number of physical links in the tier.
	Links int
	// CapacityBps is the aggregate capacity across the tier's links in
	// bytes per second.
	CapacityBps float64
	// Bytes is the total payload bytes carried over the tier's links.
	Bytes int64
}

// Interconnect is a built, live interconnect serving one simulation run:
// it owns the links (and switches), routes payloads between nodes, and
// runs the monitoring plane the balancer's network estimates come from.
type Interconnect interface {
	// Kind reports the topology.
	Kind() Kind
	// Send routes m from node src to node dst along the topology path.
	// Delivery is network-paced per hop (store-and-forward through the
	// netmodel queues); the payload is dispatched to dst's handler chain
	// when the final hop lands.
	Send(src, dst int, m netmodel.Message)
	// ClusterBandwidth is the monitoring plane's conservative estimate of
	// the bandwidth available to a migration whose endpoints are not yet
	// known — what balancer policies decide with.
	ClusterBandwidth() float64
	// PathBandwidth estimates the bandwidth available on the src→dst path.
	PathBandwidth(src, dst int) float64
	// PathEstimates assembles the Eq. 3 inputs (daemon-level RTT, per-page
	// transfer time) for a migration crossing the src→dst path.
	PathEstimates(src, dst int) core.Estimates
	// MeanRTT is the mean daemon-level round-trip (dissemination delay)
	// estimate across the cluster at the current instant.
	MeanRTT() simtime.Duration
	// SetBackgroundLoad sets the background-load fraction of node's
	// node-facing link (node < 0: every node-facing link).
	SetBackgroundLoad(node int, frac float64)
	// SetLinkState marks one link up or down: node >= 0 addresses node's
	// edge link, node = -(r+1) rack r's core uplink (two-tier only). A
	// down link refuses new traffic at the switch — payloads reaching the
	// hop are dropped — while messages already serialised onto a hop keep
	// flowing; gossip silence then ages the unreachable nodes to Unknown.
	// The star has no link state and panics (spec validation rejects
	// failure events on it).
	SetLinkState(node int, up bool)
	// PathUp reports whether every link on the src→dst path is currently
	// up — the admission check a migration's freeze-time send performs
	// before committing the payload to the wire.
	PathUp(src, dst int) bool
	// DestReachable reports whether the remainder of a src→dst path is up
	// for a payload already past its source edge link: the destination
	// edge plus, cross-rack on the two-tier, both core uplinks. The
	// migration layer re-verifies in-flight payloads against it at every
	// topology transition and fails unroutable migrants back to their
	// sources.
	DestReachable(src, dst int) bool
	// Gossip returns node i's gossip daemon, or nil on topologies that run
	// the legacy paired-daemon monitoring (the star).
	Gossip(i int) *infod.Gossip
	// TierStats reports per-tier link counts, capacity and carried bytes.
	TierStats() []TierStats
}

// envelope wraps a routed payload: the node pair it travels between and
// the original message. Switch vertices (and the star hub) forward it;
// the destination node unwraps it and dispatches the inner payload.
//
// rank is the sharded-build injection tie-break: assigned once at the
// originating Send in that send's order within its scheduling phase, it
// rides every hop, so two envelopes marching through the fabric on
// identical timetables (same instant, same sizes, same link profiles)
// stage their deliveries in origination order — the order one sequential
// engine's insertion sequence gives them. Zero on unsharded builds.
type envelope struct {
	src, dst int
	rank     uint64
	inner    netmodel.Message
}

// Build constructs the configured interconnect over nodes on eng and
// starts its monitoring plane. The node slice is the cluster, indexed by
// node id; nodes must already exist (their handler chains gain the
// fabric's routing handlers).
func Build(eng *sim.Engine, nodes []*cluster.Node, cfg Config) Interconnect {
	switch cfg.Kind {
	case KindTwoTier, KindFlat:
		return buildSwitched(eng, nodes, cfg.withDefaults())
	default:
		return buildStar(eng, nodes, cfg)
	}
}
