package fabric

import (
	"testing"

	"ampom/internal/cluster"
	"ampom/internal/infod"
	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// testCluster builds n bare nodes with a sink handler counting deliveries
// of test payloads per node and stamping the last arrival instant.
func testCluster(eng *sim.Engine, n int) ([]*cluster.Node, []int, []simtime.Time) {
	nodes := make([]*cluster.Node, n)
	got := make([]int, n)
	at := make([]simtime.Time, n)
	for i := range nodes {
		nodes[i] = cluster.NewNode(eng, "n", 1)
		i := i
		nodes[i].Handle(func(p any) bool {
			if _, ok := p.(string); ok {
				got[i]++
				at[i] = eng.Now()
				return true
			}
			return false
		})
	}
	return nodes, got, at
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseKind(""); err != nil || k != KindStar {
		t.Fatalf("empty topology = %v, %v; want the star default", k, err)
	}
	if _, err := ParseKind("hypercube"); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestTwoTierShape(t *testing.T) {
	eng := sim.New()
	nodes, _, _ := testCluster(eng, 10)
	ic := Build(eng, nodes, Config{
		Kind: KindTwoTier, RackSize: 4, Oversub: 2,
		Network: netmodel.FastEthernet(), Seed: 1,
	})
	tiers := ic.TierStats()
	if len(tiers) != 2 {
		t.Fatalf("two-tier reports %d tiers", len(tiers))
	}
	if tiers[0].Name != "edge" || tiers[0].Links != 10 {
		t.Fatalf("edge tier %+v, want 10 links", tiers[0])
	}
	// 10 nodes in racks of 4 → 3 racks → 3 uplinks at RackSize/Oversub = 2×
	// node bandwidth each.
	if tiers[1].Name != "core" || tiers[1].Links != 3 {
		t.Fatalf("core tier %+v, want 3 uplinks", tiers[1])
	}
	wantCap := 3 * 2 * netmodel.FastEthernet().BandwidthBps
	if tiers[1].CapacityBps != wantCap {
		t.Fatalf("core capacity %g, want %g (oversubscription 2)", tiers[1].CapacityBps, wantCap)
	}
	if ic.Kind() != KindTwoTier {
		t.Fatalf("kind = %v", ic.Kind())
	}
	for i := 0; i < 10; i++ {
		if ic.Gossip(i) == nil {
			t.Fatalf("node %d has no gossip daemon", i)
		}
	}
}

func TestFlatShape(t *testing.T) {
	eng := sim.New()
	nodes, _, _ := testCluster(eng, 6)
	ic := Build(eng, nodes, Config{Kind: KindFlat, Network: netmodel.FastEthernet(), Seed: 1})
	tiers := ic.TierStats()
	if len(tiers) != 1 || tiers[0].Name != "edge" || tiers[0].Links != 6 {
		t.Fatalf("flat tiers %+v, want one 6-link edge tier", tiers)
	}
}

func TestStarHasNoGossip(t *testing.T) {
	eng := sim.New()
	nodes, _, _ := testCluster(eng, 4)
	ic := Build(eng, nodes, Config{Kind: KindStar, Network: netmodel.FastEthernet(), Seed: 1})
	if ic.Kind() != KindStar {
		t.Fatalf("kind = %v", ic.Kind())
	}
	if ic.Gossip(1) != nil {
		t.Fatal("star reports a gossip daemon")
	}
	if got := ic.TierStats(); len(got) != 1 || got[0].Name != "star" || got[0].Links != 3 {
		t.Fatalf("star tiers %+v", got)
	}
}

// TestRoutingDelivers locks hop-by-hop delivery and latency accounting:
// same-rack pairs cross two links, cross-rack pairs four, and every
// payload lands exactly at its destination.
func TestRoutingDelivers(t *testing.T) {
	for _, tc := range []struct {
		kind     Kind
		src, dst int
		hops     int
	}{
		{KindTwoTier, 0, 1, 2}, // same rack: node→leaf→node
		{KindTwoTier, 0, 5, 4}, // cross rack: node→leaf→core→leaf→node
		{KindFlat, 0, 5, 2},    // flat: node→switch→node
		{KindStar, 1, 5, 2},    // star: spoke→hub→spoke
		{KindStar, 0, 3, 1},    // hub send: one spoke
	} {
		eng := sim.New()
		nodes, got, at := testCluster(eng, 8)
		ic := Build(eng, nodes, Config{
			Kind: tc.kind, RackSize: 4, Oversub: 4,
			Network: netmodel.FastEthernet(), Seed: 1,
		})
		start := eng.Now()
		ic.Send(tc.src, tc.dst, netmodel.Message{Size: 1000, Payload: "probe"})
		eng.Run(simtime.Time(simtime.Second)) // before any daemon tick

		for i, n := range got {
			want := 0
			if i == tc.dst {
				want = 1
			}
			if n != want {
				t.Fatalf("%v %d→%d: node %d saw %d payloads, want %d", tc.kind, tc.src, tc.dst, i, n, want)
			}
		}
		// Each hop pays one propagation latency plus serialisation; the
		// hop count is visible in the total propagation delay.
		lat := netmodel.FastEthernet().LatencyOneWay
		ser := netmodel.FastEthernet().TransferTime(1000)
		want := simtime.Duration(tc.hops) * (lat + ser)
		if got := at[tc.dst].Sub(start); got != want {
			t.Fatalf("%v %d→%d: delivery took %v, want %v (%d hops)", tc.kind, tc.src, tc.dst, got, want, tc.hops)
		}
	}
}

// TestUplinkContention locks the oversubscription effect: two concurrent
// cross-rack transfers share one uplink and finish later than a single
// one, while same-rack traffic is unaffected.
func TestUplinkContention(t *testing.T) {
	run := func(payloads int) simtime.Time {
		eng := sim.New()
		nodes, _, at := testCluster(eng, 8)
		ic := Build(eng, nodes, Config{
			Kind: KindTwoTier, RackSize: 4, Oversub: 4,
			Network: netmodel.FastEthernet(), Seed: 1,
		})
		for i := 0; i < payloads; i++ {
			ic.Send(i, 4+i, netmodel.Message{Size: 5e6, Payload: "probe"}) // rack 0 → rack 1
		}
		eng.Run(simtime.Time(simtime.Minute))
		last := at[4]
		for _, t := range at[4 : 4+payloads] {
			if t > last {
				last = t
			}
		}
		return last
	}
	one, two := run(1), run(2)
	if two <= one {
		t.Fatalf("two cross-rack transfers (%v) not slower than one (%v) — no uplink contention", two, one)
	}
}

// TestGossipPropagatesAndAges locks the dissemination contract on a flat
// fabric: after a few periods every daemon knows every origin, entries
// carry positive age-derived RTT estimates, and the estimates are
// deterministic for a fixed seed.
func TestGossipPropagatesAndAges(t *testing.T) {
	build := func() (*sim.Engine, Interconnect, int) {
		n := 8
		eng := sim.New()
		nodes, _, _ := testCluster(eng, n)
		ic := Build(eng, nodes, Config{
			Kind: KindFlat, GossipFanout: 2, GossipPeriod: simtime.Second,
			Network: netmodel.FastEthernet(), Seed: 9,
		})
		for i := 0; i < n; i++ {
			i := i
			ic.Gossip(i).SetProbe(func() infod.LoadSample {
				return infod.LoadSample{Load: float64(i), Queue: i, UsedMemMB: int64(i) * 10}
			})
		}
		return eng, ic, n
	}
	eng, ic, n := build()
	eng.Run(simtime.Time(20 * simtime.Second))

	for i := 0; i < n; i++ {
		g := ic.Gossip(i)
		for o := 0; o < n; o++ {
			e := g.Entry(o)
			if !e.Known {
				t.Fatalf("daemon %d never heard about origin %d after 20 periods", i, o)
			}
			if e.Sample.Queue != o {
				t.Fatalf("daemon %d has origin %d queue %d, want %d", i, o, e.Sample.Queue, o)
			}
			if o != i {
				if rtt, ok := g.AgeRTT(o); !ok || rtt <= 0 {
					t.Fatalf("daemon %d has no staleness estimate for origin %d", i, o)
				}
				if e.Hops < 1 {
					t.Fatalf("daemon %d origin %d entry has hop count %d", i, o, e.Hops)
				}
			}
		}
		if ic.PathEstimates(i, (i+1)%n).RTT <= 0 {
			t.Fatalf("daemon %d path estimate degenerate", i)
		}
	}
	if ic.MeanRTT() <= 0 {
		t.Fatal("mean dissemination RTT degenerate")
	}

	// Determinism: a rebuilt world converges to the same estimates.
	eng2, ic2, _ := build()
	eng2.Run(simtime.Time(20 * simtime.Second))
	for i := 0; i < n; i++ {
		for o := 0; o < n; o++ {
			a, _ := ic.Gossip(i).AgeRTT(o)
			b, _ := ic2.Gossip(i).AgeRTT(o)
			if a != b {
				t.Fatalf("gossip estimates not deterministic: daemon %d origin %d %v != %v", i, o, a, b)
			}
		}
	}
}
