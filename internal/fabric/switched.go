// Switched fabrics: the two-tier rack fabric (per-rack leaf switches
// under an oversubscribed core spine) and the flat full-bisection fabric
// (one non-blocking switch). Payloads are routed store-and-forward: each
// hop is a netmodel link with its own FIFO serialisation horizon, so
// migrations, gossip and background load contend per link along the path
// — cross-rack traffic queues on the shared uplinks. Monitoring is
// decentralised gossip (infod.Gossip), one daemon per node.
package fabric

import (
	"fmt"

	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/infod"
	"ampom/internal/netmodel"
	"ampom/internal/prng"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// prngForDaemons derives the daemon-jitter seed stream from the scenario
// seed — the exact constant the pre-fabric runner used ("oM_infod").
func prngForDaemons(seed uint64) *prng.Source { return prng.New(seed ^ 0x6f4d5f696e666f64) }

// prngForGossip derives the gossip daemons' seed stream ("oM_gossp").
func prngForGossip(seed uint64) *prng.Source { return prng.New(seed ^ 0x6f4d5f676f737370) }

// Tier indices of the switched fabrics.
const (
	tierEdge = 0
	tierCore = 1
)

// switched is a tree fabric: node vertices at the leaves, switch vertices
// above them, and static next-hop routing per destination node.
type switched struct {
	kind  Kind
	eng   *sim.Engine
	nodes []*cluster.Node

	nominal float64

	// Vertices: 0..n-1 are nodes, the rest switches. nicOf[v] is the
	// vertex's NIC (a switch shares one NIC across its links, like the
	// star hub shares the hub node's).
	nicOf []*netmodel.NIC

	links     []*netmodel.Link
	linkTier  []int
	linkBytes []int64 // carried bytes per link; TierStats sums per tier
	linkDown  []bool  // failed links refuse new traffic at the switch
	edgeLink  []int   // edgeLink[node] is the node's uplink into the fabric

	// Routing state: the tree is regular enough that the next hop is
	// computed, not tabulated — a nextHop[vertex][dstNode] table costs
	// O(vertices·nodes) memory (2.2 GB at 16k nodes) for what three
	// comparisons answer.
	rackOf []int // node → rack (all zero on flat fabrics)
	uplink []int // two-tier: rack → core uplink link index
	spine  int   // two-tier core vertex, or -1

	// Sharded builds only: the sharding plan, the rack → shard map, and
	// the conservative lookahead (the fabric's one-way latency — the
	// minimum delay before one shard's action can reach another).
	shard       *Sharding
	shardOfRack []int
	lookahead   simtime.Duration

	// Envelope rank counters (sharded builds): mergeRank serves Sends made
	// while the group executes a coincident instant single-threaded (the
	// global phase — migrations), preserving their initiation order;
	// shardRank[i] serves Sends made inside shard i's window, where only
	// that shard's worker touches its slot.
	mergeRank uint64
	shardRank []uint64

	tiers  []TierStats
	gossip []*infod.Gossip
}

// buildSwitched wires the two-tier or flat fabric over nodes and starts
// the gossip plane. cfg has defaults resolved.
func buildSwitched(eng *sim.Engine, nodes []*cluster.Node, cfg Config) *switched {
	n := len(nodes)
	s := &switched{
		kind:     cfg.Kind,
		eng:      eng,
		nodes:    nodes,
		nominal:  cfg.Network.BandwidthBps,
		edgeLink: make([]int, n),
	}

	racks := 1
	rackOf := make([]int, n)
	if cfg.Kind == KindTwoTier {
		racks = (n + cfg.RackSize - 1) / cfg.RackSize
		for i := range rackOf {
			rackOf[i] = i / cfg.RackSize
		}
	}
	s.rackOf = rackOf
	s.lookahead = cfg.Network.LatencyOneWay

	sh := cfg.Sharding
	s.shard = sh
	if sh != nil {
		if cfg.Kind != KindTwoTier {
			panic(fmt.Sprintf("fabric: sharded build requires the two-tier topology, got %v", cfg.Kind))
		}
		if len(sh.ShardOf) != n {
			panic(fmt.Sprintf("fabric: sharding maps %d nodes, cluster has %d", len(sh.ShardOf), n))
		}
		// Shards own whole racks: a rack's leaf, edge links and uplink all
		// live on one engine, so the only cross-engine traffic is through
		// the core — the hop the lookahead window covers.
		s.shardOfRack = make([]int, racks)
		for r := range s.shardOfRack {
			s.shardOfRack[r] = sh.ShardOf[r*cfg.RackSize]
		}
		for i, si := range sh.ShardOf {
			if si < 0 || si >= len(sh.Engines) {
				panic(fmt.Sprintf("fabric: node %d assigned to shard %d of %d", i, si, len(sh.Engines)))
			}
			if si != s.shardOfRack[rackOf[i]] {
				panic(fmt.Sprintf("fabric: rack %d straddles shards %d and %d", rackOf[i], s.shardOfRack[rackOf[i]], si))
			}
		}
	}

	// Vertex layout: nodes, then leaf switches, then (two-tier) the core.
	nVerts := n + racks
	spine := -1
	if cfg.Kind == KindTwoTier {
		spine = n + racks
		nVerts++
	}
	s.spine = spine
	s.nicOf = make([]*netmodel.NIC, nVerts)
	for i, node := range nodes {
		s.nicOf[i] = node.NIC
	}
	for v := n; v < nVerts; v++ {
		v := v
		name := fmt.Sprintf("leaf%02d", v-n)
		if v == spine {
			name = "core"
		}
		nic := netmodel.NewNIC(name, nil)
		nic.SetHandler(func(m netmodel.Message) {
			env, ok := m.Payload.(*envelope)
			if !ok {
				panic(fmt.Sprintf("fabric: switch %s received non-envelope payload %T", name, m.Payload))
			}
			s.forward(v, env)
		})
		s.nicOf[v] = nic
	}

	// Edge links: every node up to its switch (its rack leaf, or the flat
	// core). Uplinks: each leaf to the core, carrying RackSize/Oversub
	// node-links' worth of bandwidth.
	s.tiers = []TierStats{{Name: "edge"}}
	addLink := func(le *sim.Engine, a, b, tier int, profile netmodel.Profile, bg float64) int {
		l := netmodel.NewLink(le, profile, s.nicOf[a], s.nicOf[b])
		l.SetBackgroundLoad(bg)
		s.links = append(s.links, l)
		s.linkTier = append(s.linkTier, tier)
		s.linkBytes = append(s.linkBytes, 0)
		s.linkDown = append(s.linkDown, false)
		s.tiers[tier].Links++
		s.tiers[tier].CapacityBps += profile.BandwidthBps
		return len(s.links) - 1
	}
	for i := range nodes {
		up := n + rackOf[i]
		if cfg.Kind == KindFlat {
			up = n // the single switch
		}
		le := eng
		if sh != nil {
			le = sh.Engines[sh.ShardOf[i]]
		}
		s.edgeLink[i] = addLink(le, i, up, tierEdge, cfg.Network, cfg.BackgroundLoad)
	}
	s.uplink = make([]int, racks)
	if cfg.Kind == KindTwoTier {
		s.tiers = append(s.tiers, TierStats{Name: "core"})
		upProfile := cfg.Network
		upProfile.Name = fmt.Sprintf("%s-uplink", cfg.Network.Name)
		upProfile.BandwidthBps = cfg.Network.BandwidthBps * float64(cfg.RackSize) / cfg.Oversub
		for r := 0; r < racks; r++ {
			le := eng
			if sh != nil {
				le = sh.Engines[s.shardOfRack[r]]
			}
			s.uplink[r] = addLink(le, n+r, spine, tierCore, upProfile, 0)
		}
	}
	if sh != nil {
		s.wireSharding(cfg)
	}

	// Node-side delivery: unwrap envelopes arriving at their destination.
	for i, node := range nodes {
		i, node := i, node
		node.Handle(func(payload any) bool {
			env, ok := payload.(*envelope)
			if !ok {
				return false
			}
			if env.dst != i {
				panic(fmt.Sprintf("fabric: payload for node %d delivered to node %d", env.dst, i))
			}
			node.Deliver(env.inner.Payload)
			return true
		})
	}

	// The gossip plane: one daemon per node, pushing its bounded window
	// (and answering anti-entropy pulls) through the fabric.
	gcfg := infod.GossipConfig{
		Period:    cfg.GossipPeriod,
		Fanout:    cfg.GossipFanout,
		WindowLen: cfg.GossipWindow,
	}
	grng := prngForGossip(cfg.Seed)
	s.gossip = make([]*infod.Gossip, n)
	for i, node := range nodes {
		i := i
		s.gossip[i] = infod.NewGossip(gcfg, node, i, n, cfg.Network.BandwidthBps,
			func(dst int, m netmodel.Message) { s.Send(i, dst, m) }, grng.Uint64())
		s.gossip[i].Start()
	}
	return s
}

// wireSharding installs the cross-shard routing on a sharded two-tier
// fabric. A shard owns its racks' edge links and uplinks, so the only
// deliveries that may land on foreign state are (a) arrivals at the core,
// whose onward hop belongs to the destination rack's shard, and (b) final
// node-side deliveries of global payloads, whose handlers mutate state the
// coordinator owns. Both are staged through the group's barriers; the
// conservative lookahead (one edge latency, which every delivery pays on
// top of a positive serialisation delay) guarantees staged instants land
// strictly beyond the window they were staged in.
func (s *switched) wireSharding(cfg Config) {
	sh := s.shard
	s.shardRank = make([]uint64, len(sh.Engines))
	spineNIC := s.nicOf[s.spine]
	// The core never runs events of its own under sharding, and its links'
	// senders live on different engines — it keeps no counters so that no
	// NIC has concurrent writers. Nothing in the model reads them.
	spineNIC.Quiet = true
	for r := range s.uplink {
		sr := s.shardOfRack[r]
		l := s.links[s.uplink[r]]
		l.SetDeliveryRouter(func(to *netmodel.NIC, m netmodel.Message, at simtime.Time, deliver func()) bool {
			if to != spineNIC {
				return false // core→leaf: the uplink already runs on the rack's shard
			}
			env, ok := m.Payload.(*envelope)
			if !ok {
				panic(fmt.Sprintf("fabric: core received non-envelope payload %T", m.Payload))
			}
			// The core hop, on the engine owning the destination rack's
			// links. The standard delivery bookkeeping stays dropped in the
			// same-shard case too — one behaviour for the silent core, and
			// one event per hop exactly like the sequential schedule.
			sh.Group.Stage(sr, s.shardOfRack[s.rackOf[env.dst]], at, env.rank, func() { s.forward(s.spine, env) })
			return true
		})
	}
	for i := range s.nodes {
		si := sh.ShardOf[i]
		nodeNIC := s.nicOf[i]
		l := s.links[s.edgeLink[i]]
		l.SetDeliveryRouter(func(to *netmodel.NIC, m netmodel.Message, at simtime.Time, deliver func()) bool {
			if to != nodeNIC || sh.GlobalPayload == nil {
				return false
			}
			env, ok := m.Payload.(*envelope)
			if !ok || !sh.GlobalPayload(env.inner.Payload) {
				return false
			}
			// Final hop of a global payload (a migration): the restore path
			// mutates both endpoints' daemons, so the delivery — with its
			// full link and NIC bookkeeping — runs in the global phase.
			sh.Group.Stage(si, sim.GlobalShard, at, env.rank, deliver)
			return true
		})
	}
}

// Kind reports the topology.
func (s *switched) Kind() Kind { return s.kind }

// Lookahead is the conservative window bound a sharded run of this fabric
// may use: the one-way edge latency, the soonest one shard's action can
// become visible to another.
func (s *switched) Lookahead() simtime.Duration { return s.lookahead }

// Send routes m from node src to node dst along the tree path, one
// store-and-forward hop at a time. On sharded builds the envelope is
// ranked at this origination point: Sends from the group's single-threaded
// coincident-instant phase draw a shared counter (their initiation order),
// Sends from inside a shard's window draw that shard's counter under the
// shard's own high bits — each counter has exactly one writer.
func (s *switched) Send(src, dst int, m netmodel.Message) {
	if src == dst {
		panic(fmt.Sprintf("fabric: send from node %d to itself", src))
	}
	env := &envelope{src: src, dst: dst, inner: m}
	if s.shard != nil {
		if s.shard.Group.InMerge() {
			s.mergeRank++
			env.rank = s.mergeRank
		} else {
			si := s.shard.ShardOf[src]
			s.shardRank[si]++
			env.rank = 1<<63 | uint64(si)<<40 | s.shardRank[si]
		}
	}
	s.forward(src, env)
}

// hop returns the link carrying traffic for destination node dst onward
// from vertex v: nodes forward up their edge link, the core descends into
// the destination rack, and a leaf (or the flat switch) delivers locally
// or climbs its uplink.
func (s *switched) hop(v, dst int) int {
	n := len(s.nodes)
	switch {
	case v < n:
		return s.edgeLink[v]
	case v == s.spine:
		return s.uplink[s.rackOf[dst]]
	default:
		r := v - n
		if s.kind == KindFlat || s.rackOf[dst] == r {
			return s.edgeLink[dst]
		}
		return s.uplink[r]
	}
}

// forward ships an envelope one hop onward from vertex v. A down link
// drops the envelope at the switch: nothing new is serialised onto a
// failed hop (messages already on the wire when the link failed keep
// flowing — the per-hop granularity of store-and-forward). Dropped
// migration payloads are not lost processes: the runner re-verifies every
// in-flight migration against DestReachable at each topology transition
// and fails unroutable migrants back to their sources, so by the time a
// hop eats a freeze-time payload its process has already reverted.
func (s *switched) forward(v int, env *envelope) {
	li := s.hop(v, env.dst)
	if s.linkDown[li] {
		return
	}
	s.linkBytes[li] += env.inner.Size
	s.links[li].Send(s.nicOf[v], netmodel.Message{Size: env.inner.Size, Payload: env})
}

// ClusterBandwidth is the tightest gossip-daemon bandwidth estimate — the
// conservative figure balancer policies decide with.
func (s *switched) ClusterBandwidth() float64 {
	bw := 0.0
	for _, g := range s.gossip {
		if b := g.Bandwidth(); b > 0 && (bw == 0 || b < bw) {
			bw = b
		}
	}
	if bw == 0 {
		bw = s.nominal
	}
	return bw
}

// PathBandwidth is the tighter of the two endpoint daemons' estimates.
func (s *switched) PathBandwidth(src, dst int) float64 {
	bw := 0.0
	for _, n := range []int{src, dst} {
		b := s.gossip[n].Bandwidth()
		if bw == 0 || b < bw {
			bw = b
		}
	}
	if bw == 0 {
		bw = s.nominal
	}
	return bw
}

// PathEstimates assembles the Eq. 3 inputs for a migration from src
// restoring on dst: the destination daemon's staleness-derived view of
// the origin (so estimates grow with topology distance), and the slower
// of the two endpoints' page-transfer estimates.
func (s *switched) PathEstimates(src, dst int) core.Estimates {
	out := s.gossip[dst].Estimates(src)
	if e := s.gossip[src].Estimates(dst); e.PageTransfer > out.PageTransfer {
		out.PageTransfer = e.PageTransfer
	}
	return out
}

// MeanRTT is the mean staleness-derived round trip across every daemon.
func (s *switched) MeanRTT() simtime.Duration {
	var sum simtime.Duration
	for _, g := range s.gossip {
		sum += g.MeanRTT()
	}
	return sum / simtime.Duration(len(s.gossip))
}

// SetBackgroundLoad sets the background-load fraction of node's edge link
// (node < 0: every edge link). Uplinks carry only modelled traffic.
func (s *switched) SetBackgroundLoad(node int, frac float64) {
	for i := range s.nodes {
		if node < 0 || node == i {
			s.links[s.edgeLink[i]].SetBackgroundLoad(frac)
		}
	}
}

// linkIndex resolves a SetLinkState selector: node >= 0 is the node's
// edge link, -(r+1) rack r's core uplink.
func (s *switched) linkIndex(node int) int {
	if node >= 0 {
		return s.edgeLink[node]
	}
	r := -node - 1
	if s.kind != KindTwoTier || r >= len(s.uplink) {
		panic(fmt.Sprintf("fabric: link selector %d addresses uplink of rack %d, which this %v fabric does not have", node, r, s.kind))
	}
	return s.uplink[r]
}

// SetLinkState marks one link up or down. State changes are global events
// (churn) executed while every shard is synchronised, so the flags are
// read race-free inside subsequent shard windows.
func (s *switched) SetLinkState(node int, up bool) {
	s.linkDown[s.linkIndex(node)] = !up
}

// PathUp reports whether every link on the src→dst path is up.
func (s *switched) PathUp(src, dst int) bool {
	return !s.linkDown[s.edgeLink[src]] && s.DestReachable(src, dst)
}

// DestReachable reports whether everything past src's edge link on the
// src→dst path is up: the destination edge plus, cross-rack on the
// two-tier, both core uplinks.
func (s *switched) DestReachable(src, dst int) bool {
	if s.linkDown[s.edgeLink[dst]] {
		return false
	}
	if s.kind == KindTwoTier && s.rackOf[src] != s.rackOf[dst] {
		return !s.linkDown[s.uplink[s.rackOf[src]]] && !s.linkDown[s.uplink[s.rackOf[dst]]]
	}
	return true
}

// Gossip returns node i's gossip daemon.
func (s *switched) Gossip(i int) *infod.Gossip { return s.gossip[i] }

// TierStats reports per-tier link counts, capacity and carried bytes.
// Bytes are kept per link (each link has exactly one writer, which is what
// lets shards account their own traffic) and summed per tier here.
func (s *switched) TierStats() []TierStats {
	out := make([]TierStats, len(s.tiers))
	copy(out, s.tiers)
	for li, b := range s.linkBytes {
		out[s.linkTier[li]].Bytes += b
	}
	return out
}
