// Switched fabrics: the two-tier rack fabric (per-rack leaf switches
// under an oversubscribed core spine) and the flat full-bisection fabric
// (one non-blocking switch). Payloads are routed store-and-forward: each
// hop is a netmodel link with its own FIFO serialisation horizon, so
// migrations, gossip and background load contend per link along the path
// — cross-rack traffic queues on the shared uplinks. Monitoring is
// decentralised gossip (infod.Gossip), one daemon per node.
package fabric

import (
	"fmt"

	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/infod"
	"ampom/internal/netmodel"
	"ampom/internal/prng"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// prngForDaemons derives the daemon-jitter seed stream from the scenario
// seed — the exact constant the pre-fabric runner used ("oM_infod").
func prngForDaemons(seed uint64) *prng.Source { return prng.New(seed ^ 0x6f4d5f696e666f64) }

// prngForGossip derives the gossip daemons' seed stream ("oM_gossp").
func prngForGossip(seed uint64) *prng.Source { return prng.New(seed ^ 0x6f4d5f676f737370) }

// Tier indices of the switched fabrics.
const (
	tierEdge = 0
	tierCore = 1
)

// switched is a tree fabric: node vertices at the leaves, switch vertices
// above them, and static next-hop routing per destination node.
type switched struct {
	kind  Kind
	eng   *sim.Engine
	nodes []*cluster.Node

	nominal float64

	// Vertices: 0..n-1 are nodes, the rest switches. nicOf[v] is the
	// vertex's NIC (a switch shares one NIC across its links, like the
	// star hub shares the hub node's).
	nicOf []*netmodel.NIC

	links    []*netmodel.Link
	linkTier []int
	edgeLink []int   // edgeLink[node] is the node's uplink into the fabric
	nextHop  [][]int // nextHop[vertex][dstNode] = link index

	tiers  []TierStats
	gossip []*infod.Gossip
}

// buildSwitched wires the two-tier or flat fabric over nodes and starts
// the gossip plane. cfg has defaults resolved.
func buildSwitched(eng *sim.Engine, nodes []*cluster.Node, cfg Config) *switched {
	n := len(nodes)
	s := &switched{
		kind:     cfg.Kind,
		eng:      eng,
		nodes:    nodes,
		nominal:  cfg.Network.BandwidthBps,
		edgeLink: make([]int, n),
	}

	racks := 1
	rackOf := make([]int, n)
	if cfg.Kind == KindTwoTier {
		racks = (n + cfg.RackSize - 1) / cfg.RackSize
		for i := range rackOf {
			rackOf[i] = i / cfg.RackSize
		}
	}

	// Vertex layout: nodes, then leaf switches, then (two-tier) the core.
	nVerts := n + racks
	spine := -1
	if cfg.Kind == KindTwoTier {
		spine = n + racks
		nVerts++
	}
	s.nicOf = make([]*netmodel.NIC, nVerts)
	for i, node := range nodes {
		s.nicOf[i] = node.NIC
	}
	for v := n; v < nVerts; v++ {
		v := v
		name := fmt.Sprintf("leaf%02d", v-n)
		if v == spine {
			name = "core"
		}
		nic := netmodel.NewNIC(name, nil)
		nic.SetHandler(func(m netmodel.Message) {
			env, ok := m.Payload.(*envelope)
			if !ok {
				panic(fmt.Sprintf("fabric: switch %s received non-envelope payload %T", name, m.Payload))
			}
			s.forward(v, env)
		})
		s.nicOf[v] = nic
	}

	// Edge links: every node up to its switch (its rack leaf, or the flat
	// core). Uplinks: each leaf to the core, carrying RackSize/Oversub
	// node-links' worth of bandwidth.
	s.tiers = []TierStats{{Name: "edge"}}
	addLink := func(a, b, tier int, profile netmodel.Profile, bg float64) int {
		l := netmodel.NewLink(eng, profile, s.nicOf[a], s.nicOf[b])
		l.SetBackgroundLoad(bg)
		s.links = append(s.links, l)
		s.linkTier = append(s.linkTier, tier)
		s.tiers[tier].Links++
		s.tiers[tier].CapacityBps += profile.BandwidthBps
		return len(s.links) - 1
	}
	for i := range nodes {
		up := n + rackOf[i]
		if cfg.Kind == KindFlat {
			up = n // the single switch
		}
		s.edgeLink[i] = addLink(i, up, tierEdge, cfg.Network, cfg.BackgroundLoad)
	}
	uplink := make([]int, racks)
	if cfg.Kind == KindTwoTier {
		s.tiers = append(s.tiers, TierStats{Name: "core"})
		upProfile := cfg.Network
		upProfile.Name = fmt.Sprintf("%s-uplink", cfg.Network.Name)
		upProfile.BandwidthBps = cfg.Network.BandwidthBps * float64(cfg.RackSize) / cfg.Oversub
		for r := 0; r < racks; r++ {
			uplink[r] = addLink(n+r, spine, tierCore, upProfile, 0)
		}
	}

	// Static routing: next link toward every destination node.
	s.nextHop = make([][]int, nVerts)
	for v := range s.nextHop {
		s.nextHop[v] = make([]int, n)
		for d := 0; d < n; d++ {
			switch {
			case v < n: // a node forwards up its edge link
				s.nextHop[v][d] = s.edgeLink[v]
			case v == spine: // the core descends into the destination rack
				s.nextHop[v][d] = uplink[rackOf[d]]
			default: // a leaf (or the flat switch)
				r := v - n
				if cfg.Kind == KindFlat || rackOf[d] == r {
					s.nextHop[v][d] = s.edgeLink[d]
				} else {
					s.nextHop[v][d] = uplink[r]
				}
			}
		}
	}

	// Node-side delivery: unwrap envelopes arriving at their destination.
	for i, node := range nodes {
		i, node := i, node
		node.Handle(func(payload any) bool {
			env, ok := payload.(*envelope)
			if !ok {
				return false
			}
			if env.dst != i {
				panic(fmt.Sprintf("fabric: payload for node %d delivered to node %d", env.dst, i))
			}
			node.Deliver(env.inner.Payload)
			return true
		})
	}

	// The gossip plane: one daemon per node, pushing its bounded window
	// (and answering anti-entropy pulls) through the fabric.
	gcfg := infod.GossipConfig{
		Period:    cfg.GossipPeriod,
		Fanout:    cfg.GossipFanout,
		WindowLen: cfg.GossipWindow,
	}
	grng := prngForGossip(cfg.Seed)
	s.gossip = make([]*infod.Gossip, n)
	for i, node := range nodes {
		i := i
		s.gossip[i] = infod.NewGossip(gcfg, node, i, n, cfg.Network.BandwidthBps,
			func(dst int, m netmodel.Message) { s.Send(i, dst, m) }, grng.Uint64())
		s.gossip[i].Start()
	}
	return s
}

// Kind reports the topology.
func (s *switched) Kind() Kind { return s.kind }

// Send routes m from node src to node dst along the tree path, one
// store-and-forward hop at a time.
func (s *switched) Send(src, dst int, m netmodel.Message) {
	if src == dst {
		panic(fmt.Sprintf("fabric: send from node %d to itself", src))
	}
	s.forward(src, &envelope{src: src, dst: dst, inner: m})
}

// forward ships an envelope one hop onward from vertex v.
func (s *switched) forward(v int, env *envelope) {
	li := s.nextHop[v][env.dst]
	s.tiers[s.linkTier[li]].Bytes += env.inner.Size
	s.links[li].Send(s.nicOf[v], netmodel.Message{Size: env.inner.Size, Payload: env})
}

// ClusterBandwidth is the tightest gossip-daemon bandwidth estimate — the
// conservative figure balancer policies decide with.
func (s *switched) ClusterBandwidth() float64 {
	bw := 0.0
	for _, g := range s.gossip {
		if b := g.Bandwidth(); b > 0 && (bw == 0 || b < bw) {
			bw = b
		}
	}
	if bw == 0 {
		bw = s.nominal
	}
	return bw
}

// PathBandwidth is the tighter of the two endpoint daemons' estimates.
func (s *switched) PathBandwidth(src, dst int) float64 {
	bw := 0.0
	for _, n := range []int{src, dst} {
		b := s.gossip[n].Bandwidth()
		if bw == 0 || b < bw {
			bw = b
		}
	}
	if bw == 0 {
		bw = s.nominal
	}
	return bw
}

// PathEstimates assembles the Eq. 3 inputs for a migration from src
// restoring on dst: the destination daemon's staleness-derived view of
// the origin (so estimates grow with topology distance), and the slower
// of the two endpoints' page-transfer estimates.
func (s *switched) PathEstimates(src, dst int) core.Estimates {
	out := s.gossip[dst].Estimates(src)
	if e := s.gossip[src].Estimates(dst); e.PageTransfer > out.PageTransfer {
		out.PageTransfer = e.PageTransfer
	}
	return out
}

// MeanRTT is the mean staleness-derived round trip across every daemon.
func (s *switched) MeanRTT() simtime.Duration {
	var sum simtime.Duration
	for _, g := range s.gossip {
		sum += g.MeanRTT()
	}
	return sum / simtime.Duration(len(s.gossip))
}

// SetBackgroundLoad sets the background-load fraction of node's edge link
// (node < 0: every edge link). Uplinks carry only modelled traffic.
func (s *switched) SetBackgroundLoad(node int, frac float64) {
	for i := range s.nodes {
		if node < 0 || node == i {
			s.links[s.edgeLink[i]].SetBackgroundLoad(frac)
		}
	}
}

// Gossip returns node i's gossip daemon.
func (s *switched) Gossip(i int) *infod.Gossip { return s.gossip[i] }

// TierStats reports per-tier link counts, capacity and carried bytes.
func (s *switched) TierStats() []TierStats {
	out := make([]TierStats, len(s.tiers))
	copy(out, s.tiers)
	return out
}
