// The legacy single-hub star interconnect, extracted from the scenario
// runner byte-for-byte: spoke links joining node 0 to every other node, a
// paired infod daemon on each end of every spoke, and hub relaying of
// spoke-to-spoke payloads. The daemon seed stream, link construction
// order, daemon start order and estimate formulae are preserved exactly,
// so a star fabric reproduces the pre-fabric golden reports unchanged.
package fabric

import (
	"fmt"

	"ampom/internal/cluster"
	"ampom/internal/core"
	"ampom/internal/infod"
	"ampom/internal/netmodel"
	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// star is the hub-spoke interconnect with paired daemons.
type star struct {
	nodes []*cluster.Node
	links []*netmodel.Link // links[i] joins node 0 and node i; links[0] is nil
	spoke []*infod.Daemon  // spoke[i] lives on node i; spoke[0] is nil
	head  []*infod.Daemon  // head[i] is node 0's daemon for spoke i

	nominal float64
	carried int64 // payload bytes carried, every hop counted
}

// buildStar wires the star exactly as the scenario runner historically
// did: same link order, same daemon-jitter seed stream, same start order.
func buildStar(eng *sim.Engine, nodes []*cluster.Node, cfg Config) *star {
	n := len(nodes)
	s := &star{
		nodes:   nodes,
		links:   make([]*netmodel.Link, n),
		spoke:   make([]*infod.Daemon, n),
		head:    make([]*infod.Daemon, n),
		nominal: cfg.Network.BandwidthBps,
	}

	for i, node := range nodes {
		i, node := i, node
		node.Handle(func(payload any) bool {
			env, ok := payload.(*envelope)
			if !ok {
				return false
			}
			s.deliver(i, node, env)
			return true
		})
	}

	// Daemon jitter seeds come from a stream derived from the scenario
	// seed, so every policy observes identical daemon behaviour.
	dcfg := infod.Config{UpdatePeriod: 2 * simtime.Second}
	drng := prngForDaemons(cfg.Seed)
	for i := 1; i < n; i++ {
		s.links[i] = netmodel.NewLink(eng, cfg.Network, nodes[0].NIC, nodes[i].NIC)
		s.links[i].SetBackgroundLoad(cfg.BackgroundLoad)
		s.head[i] = infod.New(dcfg, nodes[0], s.links[i], drng.Uint64())
		s.spoke[i] = infod.New(dcfg, nodes[i], s.links[i], drng.Uint64())
		infod.Pair(s.head[i], s.spoke[i])
		s.head[i].Start()
		s.spoke[i].Start()
	}
	return s
}

// Kind reports the topology.
func (s *star) Kind() Kind { return KindStar }

// Send ships a payload across the star: the origin spoke to the hub,
// relayed onward to the destination spoke (deliver handles the relay).
func (s *star) Send(src, dst int, m netmodel.Message) {
	env := &envelope{src: src, dst: dst, inner: m}
	wire := netmodel.Message{Size: m.Size, Payload: env}
	s.carried += m.Size
	if src == 0 {
		s.links[dst].Send(s.nodes[0].NIC, wire)
	} else {
		s.links[src].Send(s.nodes[src].NIC, wire)
	}
}

// deliver consumes a routed payload arriving at node i: the hub relays
// spoke-to-spoke transfers onward; the destination dispatches the inner
// payload to its handler chain.
func (s *star) deliver(i int, node *cluster.Node, env *envelope) {
	if i == 0 && env.dst != 0 {
		s.carried += env.inner.Size
		s.links[env.dst].Send(s.nodes[0].NIC, netmodel.Message{Size: env.inner.Size, Payload: env})
		return
	}
	if env.dst != i {
		panic(fmt.Sprintf("fabric: payload for node %d delivered to node %d", env.dst, i))
	}
	node.Deliver(env.inner.Payload)
}

// ClusterBandwidth is the tightest spoke-daemon bandwidth estimate — the
// conservative figure the balancer decides with, since it does not yet
// know which pair of nodes a migration will cross.
func (s *star) ClusterBandwidth() float64 {
	bw := 0.0
	for i := 1; i < len(s.nodes); i++ {
		if b := s.spoke[i].Bandwidth(); b > 0 && (bw == 0 || b < bw) {
			bw = b
		}
	}
	if bw == 0 {
		bw = s.nominal
	}
	return bw
}

// PathBandwidth returns the monitoring daemons' view of the available
// bandwidth on the src→dst path (the tighter spoke wins).
func (s *star) PathBandwidth(src, dst int) float64 {
	bw := 0.0
	for _, n := range []int{src, dst} {
		if n == 0 {
			continue
		}
		b := s.spoke[n].Bandwidth()
		if bw == 0 || b < bw {
			bw = b
		}
	}
	if bw == 0 {
		bw = s.nominal
	}
	return bw
}

// PathEstimates assembles the Eq. 3 inputs for a migration path: the
// spoke RTTs add (two hops through the hub), the slower page transfer
// wins.
func (s *star) PathEstimates(src, dst int) core.Estimates {
	var out core.Estimates
	for _, n := range []int{src, dst} {
		if n == 0 {
			continue
		}
		e := s.spoke[n].Estimates()
		out.RTT += e.RTT
		if e.PageTransfer > out.PageTransfer {
			out.PageTransfer = e.PageTransfer
		}
	}
	return out
}

// MeanRTT is the mean spoke-daemon RTT estimate.
func (s *star) MeanRTT() simtime.Duration {
	var rtt simtime.Duration
	for i := 1; i < len(s.nodes); i++ {
		rtt += s.spoke[i].RTT()
	}
	return rtt / simtime.Duration(len(s.nodes)-1)
}

// SetBackgroundLoad sets the background-load fraction of node's spoke
// (node < 0: every spoke). The hub has no spoke of its own.
func (s *star) SetBackgroundLoad(node int, frac float64) {
	for i := 1; i < len(s.nodes); i++ {
		if node < 0 || node == i {
			s.links[i].SetBackgroundLoad(frac)
		}
	}
}

// SetLinkState is unreachable on the star: spec validation rejects
// failure events on the hub-spoke legacy fabric, which has no link state.
func (s *star) SetLinkState(node int, up bool) {
	panic("fabric: the star fabric has no link state")
}

// PathUp reports every path up: the star never fails links.
func (s *star) PathUp(src, dst int) bool { return true }

// DestReachable reports every destination reachable on the star.
func (s *star) DestReachable(src, dst int) bool { return true }

// Gossip reports no gossip daemons: the star runs paired monitoring.
func (s *star) Gossip(int) *infod.Gossip { return nil }

// TierStats reports the single spoke tier.
func (s *star) TierStats() []TierStats {
	n := len(s.nodes)
	return []TierStats{{
		Name:        "star",
		Links:       n - 1,
		CapacityBps: float64(n-1) * s.nominal,
		Bytes:       s.carried,
	}}
}
