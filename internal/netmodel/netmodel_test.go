package netmodel

import (
	"testing"
	"testing/quick"

	"ampom/internal/sim"
	"ampom/internal/simtime"
)

func testLink(p Profile) (*sim.Engine, *Link, *NIC, *NIC, *[]simtime.Time) {
	eng := sim.New()
	var arrivals []simtime.Time
	a := NewNIC("a", nil)
	b := NewNIC("b", nil)
	l := NewLink(eng, p, a, b)
	b.SetHandler(func(m Message) { arrivals = append(arrivals, eng.Now()) })
	a.SetHandler(func(m Message) { arrivals = append(arrivals, eng.Now()) })
	return eng, l, a, b, &arrivals
}

func TestTransferTime(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: simtime.Millisecond}
	if got := p.TransferTime(1e6); got != simtime.Second {
		t.Fatalf("TransferTime = %v, want 1s", got)
	}
	if got := p.TransferTime(0); got != 0 {
		t.Fatalf("TransferTime(0) = %v", got)
	}
	if got := p.TransferTime(-5); got != 0 {
		t.Fatalf("TransferTime(-5) = %v", got)
	}
}

func TestSingleMessageArrival(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 10 * simtime.Millisecond}
	eng, l, a, _, arrivals := testLink(p)
	l.Send(a, Message{Size: 1000}) // 1 ms serialisation
	eng.RunAll()
	want := simtime.Time(11 * simtime.Millisecond)
	if len(*arrivals) != 1 || (*arrivals)[0] != want {
		t.Fatalf("arrivals = %v, want [%v]", *arrivals, want)
	}
}

func TestFIFOSerialisation(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 0}
	eng, l, a, _, arrivals := testLink(p)
	// Two 1000-byte messages sent back-to-back serialise sequentially.
	l.Send(a, Message{Size: 1000})
	l.Send(a, Message{Size: 1000})
	eng.RunAll()
	if len(*arrivals) != 2 {
		t.Fatalf("arrivals = %v", *arrivals)
	}
	if (*arrivals)[0] != simtime.Time(simtime.Millisecond) ||
		(*arrivals)[1] != simtime.Time(2*simtime.Millisecond) {
		t.Fatalf("arrivals = %v, want 1ms and 2ms", *arrivals)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 0}
	eng, l, a, b, arrivals := testLink(p)
	// Saturate a→b, then send b→a: the reverse message must not queue
	// behind forward traffic (full duplex).
	l.Send(a, Message{Size: 1e6}) // 1 s serialisation
	at := l.Send(b, Message{Size: 1000})
	eng.RunAll()
	if at != simtime.Time(simtime.Millisecond) {
		t.Fatalf("reverse arrival = %v, want 1ms", at)
	}
	if len(*arrivals) != 2 {
		t.Fatalf("arrivals = %v", *arrivals)
	}
}

func TestPipelining(t *testing.T) {
	// A batch of k messages pays latency once, not k times: total time =
	// k·serialisation + 1·latency.
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 100 * simtime.Millisecond}
	eng, l, a, _, arrivals := testLink(p)
	const k = 10
	for i := 0; i < k; i++ {
		l.Send(a, Message{Size: 1000})
	}
	eng.RunAll()
	last := (*arrivals)[len(*arrivals)-1]
	want := simtime.Time(simtime.Duration(k)*simtime.Millisecond + 100*simtime.Millisecond)
	if last != want {
		t.Fatalf("last arrival = %v, want %v", last, want)
	}
}

func TestIdleLinkResetsHorizon(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 0}
	eng, l, a, _, arrivals := testLink(p)
	l.Send(a, Message{Size: 1000})
	// After ~10 s of idleness a new message starts serialising at send
	// time, not at the old busy horizon.
	eng.At(simtime.Time(10*simtime.Second), func() { l.Send(a, Message{Size: 1000}) })
	eng.RunAll()
	want := simtime.Time(10*simtime.Second + simtime.Millisecond)
	if got := (*arrivals)[1]; got != want {
		t.Fatalf("second arrival = %v, want %v", got, want)
	}
}

func TestCounters(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 0}
	eng, l, a, b, _ := testLink(p)
	l.Send(a, Message{Size: 500})
	l.Send(a, Message{Size: 700})
	l.Send(b, Message{Size: 300})
	eng.RunAll()
	if a.Counters.TxBytes != 1200 || a.Counters.TxMsgs != 2 {
		t.Fatalf("a tx = %+v", a.Counters)
	}
	if b.Counters.RxBytes != 1200 || b.Counters.RxMsgs != 2 {
		t.Fatalf("b rx = %+v", b.Counters)
	}
	if b.Counters.TxBytes != 300 || a.Counters.RxBytes != 300 {
		t.Fatalf("reverse counters wrong: a=%+v b=%+v", a.Counters, b.Counters)
	}
	if l.Delivered != 3 {
		t.Fatalf("delivered = %d", l.Delivered)
	}
}

func TestQueueDelay(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 0}
	eng, l, a, b, _ := testLink(p)
	if d := l.QueueDelay(a); d != 0 {
		t.Fatalf("idle queue delay = %v", d)
	}
	l.Send(a, Message{Size: 2e6}) // 2 s
	if d := l.QueueDelay(a); d != 2*simtime.Second {
		t.Fatalf("queue delay = %v, want 2s", d)
	}
	if d := l.QueueDelay(b); d != 0 {
		t.Fatalf("reverse queue delay = %v, want 0", d)
	}
	eng.RunAll()
}

func TestBackgroundLoadSlowsTransfer(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 0}
	eng, l, a, _, arrivals := testLink(p)
	l.SetBackgroundLoad(0.5)
	l.Send(a, Message{Size: 1000}) // at 50% load: 2 ms
	eng.RunAll()
	if got := (*arrivals)[0]; got != simtime.Time(2*simtime.Millisecond) {
		t.Fatalf("arrival = %v, want 2ms", got)
	}
}

func TestBackgroundLoadClamped(t *testing.T) {
	_, l, _, _, _ := testLink(Profile{BandwidthBps: 1e6})
	l.SetBackgroundLoad(2.0)
	if bw := l.effectiveBandwidth(); bw < 0.04e6 || bw > 0.06e6 {
		t.Fatalf("effective bandwidth = %v, want 5%% of nominal", bw)
	}
	l.SetBackgroundLoad(-1)
	if bw := l.effectiveBandwidth(); bw != 1e6 {
		t.Fatalf("effective bandwidth = %v, want nominal", bw)
	}
}

func TestSendFromForeignNICPanics(t *testing.T) {
	_, l, _, _, _ := testLink(Profile{BandwidthBps: 1e6})
	defer func() {
		if recover() == nil {
			t.Fatal("send from unattached NIC did not panic")
		}
	}()
	l.Send(NewNIC("stranger", nil), Message{Size: 1})
}

func TestShape(t *testing.T) {
	p := Shape(FastEthernet(), 6e6, 2*simtime.Millisecond)
	if p.BandwidthBps != 0.75e6 {
		t.Fatalf("shaped bandwidth = %v, want 750000", p.BandwidthBps)
	}
	if p.LatencyOneWay != 2*simtime.Millisecond {
		t.Fatalf("shaped latency = %v", p.LatencyOneWay)
	}
}

func TestBroadbandProfile(t *testing.T) {
	p := Broadband()
	if p.BandwidthBps != 0.75e6 || p.LatencyOneWay != 2*simtime.Millisecond {
		t.Fatalf("broadband profile = %+v", p)
	}
}

func TestRTT(t *testing.T) {
	_, l, _, _, _ := testLink(Profile{BandwidthBps: 1e6, LatencyOneWay: 3 * simtime.Millisecond})
	if got := l.RTT(); got != 6*simtime.Millisecond {
		t.Fatalf("RTT = %v, want 6ms", got)
	}
}

// TestArrivalMonotonicProperty: for any sequence of sends in one direction,
// arrivals are strictly ordered and conservation holds (every byte sent is
// received).
func TestArrivalMonotonicProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := Profile{BandwidthBps: 1e5, LatencyOneWay: simtime.Millisecond}
		eng, l, a, b, arrivals := testLink(p)
		var sent int64
		for _, s := range sizes {
			size := int64(s%5000) + 1
			sent += size
			l.Send(a, Message{Size: size})
		}
		eng.RunAll()
		if len(*arrivals) != len(sizes) {
			return false
		}
		for i := 1; i < len(*arrivals); i++ {
			if (*arrivals)[i] <= (*arrivals)[i-1] {
				return false
			}
		}
		return b.Counters.RxBytes == sent && a.Counters.TxBytes == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryRouterClaimsScheduling(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 10 * simtime.Millisecond}
	eng, l, a, b, arrivals := testLink(p)
	var claimed []simtime.Time
	var claimedFns []func()
	l.SetDeliveryRouter(func(to *NIC, m Message, at simtime.Time, deliver func()) bool {
		if to != b {
			return false
		}
		claimed = append(claimed, at)
		claimedFns = append(claimedFns, deliver)
		return true
	})

	// b-ward delivery is claimed: the link schedules nothing itself.
	arrival := l.Send(a, Message{Size: 1000})
	if want := simtime.Time(11 * simtime.Millisecond); arrival != want {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
	eng.RunAll()
	if len(*arrivals) != 0 || len(claimed) != 1 || claimed[0] != arrival {
		t.Fatalf("claimed = %v, arrivals = %v, want claim at %v and no delivery", claimed, *arrivals, arrival)
	}
	// Running the captured deliver performs the full bookkeeping.
	claimedFns[0]()
	if l.Delivered != 1 || b.Counters.RxBytes != 1000 || len(*arrivals) != 1 {
		t.Fatalf("deliver closure: Delivered=%d RxBytes=%d arrivals=%v", l.Delivered, b.Counters.RxBytes, *arrivals)
	}

	// a-ward deliveries are declined by this router and flow normally.
	l.Send(b, Message{Size: 1000})
	eng.RunAll()
	if len(*arrivals) != 2 || len(claimed) != 1 {
		t.Fatalf("declined direction: arrivals=%v claimed=%v", *arrivals, claimed)
	}

	// Removing the router restores sequential behaviour.
	l.SetDeliveryRouter(nil)
	l.Send(a, Message{Size: 1000})
	eng.RunAll()
	if len(*arrivals) != 3 {
		t.Fatalf("after router removal: arrivals=%v", *arrivals)
	}
}

func TestQuietNICSuppressesCounters(t *testing.T) {
	p := Profile{BandwidthBps: 1e6, LatencyOneWay: 0}
	eng, l, a, b, arrivals := testLink(p)
	a.Quiet, b.Quiet = true, true
	l.Send(a, Message{Size: 1000})
	eng.RunAll()
	if len(*arrivals) != 1 {
		t.Fatalf("quiet NICs must still deliver: arrivals=%v", *arrivals)
	}
	if a.Counters != (Counters{}) || b.Counters != (Counters{}) {
		t.Fatalf("quiet NICs recorded counters: a=%+v b=%+v", a.Counters, b.Counters)
	}
	if l.Delivered != 1 {
		t.Fatalf("Delivered = %d, want 1 (link counters are not NIC counters)", l.Delivered)
	}
}
