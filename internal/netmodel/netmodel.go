// Package netmodel models the cluster interconnect: point-to-point links
// with propagation latency and finite bandwidth, NICs with RX/TX byte
// counters (the /sbin/ifconfig fields the paper's infoD daemon samples), and
// traffic shaping equivalent to the Linux tc setup used in the paper's
// broadband experiment.
//
// A link serialises messages FIFO: a message of size s leaves the sender
// max(now, lastDeparture) + s/bandwidth after being handed to the link and
// arrives one propagation latency later. Back-to-back messages therefore
// pipeline — the receiver sees them spaced by their serialisation times but
// pays the propagation latency only once. This is the effect AMPoM's batched
// prefetching exploits (paper §5.4).
package netmodel

import (
	"fmt"

	"ampom/internal/sim"
	"ampom/internal/simtime"
)

// Profile describes a link's characteristics.
type Profile struct {
	// Name describes the profile in reports.
	Name string
	// LatencyOneWay is the one-way propagation delay.
	LatencyOneWay simtime.Duration
	// BandwidthBps is the effective data bandwidth in bytes per second
	// (after protocol overheads).
	BandwidthBps float64
}

// FastEthernet matches the paper's testbed: the HKU Gideon 300 cluster's
// 100 Mb/s Fast Ethernet. The effective bandwidth is calibrated from the
// paper's §5.2 anchor: a 575 MB process (147200 pages plus per-page
// framing) migrates in 53.9 s, i.e. ≈11.4 MB/s of goodput through the
// openMosix transfer path.
func FastEthernet() Profile {
	return Profile{
		Name:          "fast-ethernet-100Mbps",
		LatencyOneWay: 100 * simtime.Microsecond,
		BandwidthBps:  11.36e6,
	}
}

// Broadband matches the paper's §5.5 tc-shaped network: 6 Mb/s available
// bandwidth and 2 ms latency.
func Broadband() Profile {
	return Profile{
		Name:          "broadband-6Mbps",
		LatencyOneWay: 2 * simtime.Millisecond,
		BandwidthBps:  0.75e6,
	}
}

// Shape returns a copy of p adjusted to the given bandwidth (bits per
// second) and one-way latency, mirroring `tc qdisc` traffic shaping.
func Shape(p Profile, bitsPerSecond float64, latency simtime.Duration) Profile {
	p.Name = fmt.Sprintf("%s(shaped-%.1fMbps)", p.Name, bitsPerSecond/1e6)
	p.BandwidthBps = bitsPerSecond / 8
	p.LatencyOneWay = latency
	return p
}

// TransferTime returns the serialisation time for size bytes at the
// profile's bandwidth (excluding propagation latency).
func (p Profile) TransferTime(size int64) simtime.Duration {
	if size <= 0 {
		return 0
	}
	return simtime.FromSeconds(float64(size) / p.BandwidthBps)
}

// Message is a payload in flight. Payload is opaque to the network.
type Message struct {
	Size    int64 // bytes on the wire
	Payload any
}

// Handler receives delivered messages.
type Handler func(m Message)

// Counters are cumulative NIC statistics, mirroring ifconfig's RX/TX byte
// fields.
type Counters struct {
	TxBytes int64
	RxBytes int64
	TxMsgs  int64
	RxMsgs  int64
}

// NIC is a network endpoint with counters. Attach one per node.
type NIC struct {
	Name     string
	Counters Counters
	handler  Handler

	// Quiet suppresses counter updates. Interior fabric vertices (switch
	// cores) whose links live on different shard engines set it so that no
	// NIC has concurrent counter writers; nothing in the model reads a
	// switch's counters.
	Quiet bool
}

// NewNIC returns a NIC delivering received messages to handler.
func NewNIC(name string, handler Handler) *NIC {
	return &NIC{Name: name, handler: handler}
}

// SetHandler replaces the delivery callback (used when a node binds its
// protocol stack after NIC creation).
func (n *NIC) SetHandler(h Handler) { n.handler = h }

// deliver records and dispatches an arriving message.
func (n *NIC) deliver(m Message) {
	if !n.Quiet {
		n.Counters.RxBytes += m.Size
		n.Counters.RxMsgs++
	}
	if n.handler != nil {
		n.handler(m)
	}
}

// Link is a full-duplex point-to-point connection between two NICs. Each
// direction is an independent FIFO pipe with its own serialisation horizon,
// so traffic in one direction does not delay the other (switched Ethernet).
type Link struct {
	eng     *sim.Engine
	profile Profile
	a, b    *NIC

	// busyUntil tracks, per direction, when the transmitter finishes
	// serialising the last queued message.
	busyUntilAB simtime.Time
	busyUntilBA simtime.Time

	// Background load: fraction [0,1) of bandwidth consumed by other
	// traffic, reducing effective serialisation rate. Used to model a busy
	// network in adaptation experiments.
	backgroundLoad float64

	// Delivered counts messages delivered in both directions.
	Delivered int64

	// router, when set, is offered every delivery before it is scheduled
	// on the link's engine. See SetDeliveryRouter.
	router DeliveryRouter
}

// DeliveryRouter intercepts a delivery scheduled for NIC to at instant at.
// Returning true claims the delivery: the link schedules nothing and the
// router must arrange for deliver (which updates the link's Delivered
// count and the NIC's RX counters before dispatching) to run at at, or
// substitute its own dispatch. A sharded fabric uses this to land
// deliveries on the engine that owns the receiver's state instead of the
// engine the sender ran on.
type DeliveryRouter func(to *NIC, m Message, at simtime.Time, deliver func()) bool

// NewLink connects two NICs with the given profile.
func NewLink(eng *sim.Engine, profile Profile, a, b *NIC) *Link {
	if a == nil || b == nil {
		panic("netmodel: link requires two NICs")
	}
	return &Link{eng: eng, profile: profile, a: a, b: b}
}

// Profile returns the link's current characteristics.
func (l *Link) Profile() Profile { return l.profile }

// SetProfile re-shapes the link (e.g. mid-run bandwidth change).
func (l *Link) SetProfile(p Profile) { l.profile = p }

// SetBackgroundLoad sets the fraction of bandwidth consumed by competing
// traffic, in [0, 0.95].
func (l *Link) SetBackgroundLoad(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 0.95 {
		f = 0.95
	}
	l.backgroundLoad = f
}

// effectiveBandwidth returns bytes/s available to foreground traffic.
func (l *Link) effectiveBandwidth() float64 {
	return l.profile.BandwidthBps * (1 - l.backgroundLoad)
}

// Send transmits m from the NIC from towards its peer. It returns the
// scheduled arrival instant. Sending from a NIC not attached to the link
// panics — it indicates a mis-wired model.
func (l *Link) Send(from *NIC, m Message) simtime.Time {
	var to *NIC
	var busy *simtime.Time
	switch from {
	case l.a:
		to, busy = l.b, &l.busyUntilAB
	case l.b:
		to, busy = l.a, &l.busyUntilBA
	default:
		panic("netmodel: send from NIC not attached to link")
	}

	now := l.eng.Now()
	start := now
	if busy.After(start) {
		start = *busy
	}
	ser := simtime.FromSeconds(float64(m.Size) / l.effectiveBandwidth())
	departure := start.Add(ser)
	*busy = departure
	arrival := departure.Add(l.profile.LatencyOneWay)

	if !from.Quiet {
		from.Counters.TxBytes += m.Size
		from.Counters.TxMsgs++
	}
	deliver := func() {
		l.Delivered++
		to.deliver(m)
	}
	if l.router != nil && l.router(to, m, arrival, deliver) {
		return arrival
	}
	l.eng.At(arrival, deliver)
	return arrival
}

// SetDeliveryRouter installs (or, with nil, removes) a delivery router on
// the link. With no router every delivery is scheduled on the link's own
// engine, which is the sequential behaviour.
func (l *Link) SetDeliveryRouter(r DeliveryRouter) { l.router = r }

// QueueDelay returns how long a message handed to the link right now would
// wait before starting serialisation in the from→peer direction.
func (l *Link) QueueDelay(from *NIC) simtime.Duration {
	var busy simtime.Time
	switch from {
	case l.a:
		busy = l.busyUntilAB
	case l.b:
		busy = l.busyUntilBA
	default:
		panic("netmodel: NIC not attached to link")
	}
	if d := busy.Sub(l.eng.Now()); d > 0 {
		return d
	}
	return 0
}

// RTT returns the wire round-trip time for a minimal message pair under the
// current profile (twice the propagation latency; serialisation of tiny
// messages is negligible and excluded).
func (l *Link) RTT() simtime.Duration { return 2 * l.profile.LatencyOneWay }
