// Package core implements the AMPoM algorithm — the paper's primary
// contribution (§3): an adaptive, conservative prefetching scheme that, at
// every page fault of a migrated process, analyses the spatial locality of
// the recent fault stream and decides which and how many pages to prefetch
// from the process's origin node.
//
// The Prefetcher maintains the fixed-length lookback window W of faulted
// page addresses together with the T (access time) and C (CPU utilisation)
// arrays, computes the spatial locality score S (Eq. 1), sizes the dependent
// zone N = (c'/c)·S·r·(2t0 + td + 1/r) (Eq. 3), and identifies the zone's
// pages from the prefetch pivots of outstanding strided streams (§3.4).
//
// The implementation is allocation-light: the window is a small ring and the
// stride search runs in O(l²) over at most l = 20 entries, mirroring the
// cheap in-kernel analysis the paper reports (<0.6 % of runtime, Fig. 11).
package core

import (
	"fmt"

	"ampom/internal/memory"
	"ampom/internal/simtime"
)

// Config holds the AMPoM tuning parameters. The defaults mirror the paper's
// implementation (§4).
type Config struct {
	// WindowLen is l, the lookback window length. Paper: 20.
	WindowLen int
	// DMax is the largest stride searched for. Paper: 4 ("most programs
	// perform at most two-level indirect memory references").
	DMax int
	// MaxPrefetch caps the dependent-zone size per fault, a safety valve the
	// kernel needs so a mis-estimated N cannot flood the network. 0 means
	// DefaultMaxPrefetch.
	MaxPrefetch int
	// BaselineScore is the fixed read-ahead baseline of §5.3: even when the
	// access pattern "is not clear" (S ≈ 0), AMPoM behaves like a
	// fixed-size read-ahead policy. We model this as a floor on the score
	// used for zone sizing (the reported Analysis.Score stays the raw
	// measurement). Zero means DefaultBaselineScore; negative disables the
	// baseline entirely (pure Eq. 3 — used by the ablation benchmarks).
	BaselineScore float64
}

// Defaults matching the paper's implementation.
const (
	DefaultWindowLen     = 20
	DefaultDMax          = 4
	DefaultMaxPrefetch   = 128
	DefaultBaselineScore = 0.6
)

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		WindowLen:     DefaultWindowLen,
		DMax:          DefaultDMax,
		MaxPrefetch:   DefaultMaxPrefetch,
		BaselineScore: DefaultBaselineScore,
	}
}

// Canonical returns the configuration with every "use the default" zero
// field replaced by the default it stands for, and any negative
// BaselineScore collapsed to the canonical disabled sentinel -1. The result
// is a fixed point: feeding it back through Canonical (or constructing a
// Prefetcher from it) changes nothing — the disabled sentinel must stay
// distinct from zero, which on input means "use the default". Two Configs
// with equal canonical forms configure identical behavior; the campaign
// engine builds its cache fingerprints from this, so keep it the single
// source of truth when adding fields or changing defaults.
func (c Config) Canonical() Config {
	if c.WindowLen == 0 {
		c.WindowLen = DefaultWindowLen
	}
	if c.DMax == 0 {
		c.DMax = DefaultDMax
	}
	if c.MaxPrefetch == 0 {
		c.MaxPrefetch = DefaultMaxPrefetch
	}
	if c.BaselineScore == 0 {
		c.BaselineScore = DefaultBaselineScore
	}
	if c.BaselineScore < 0 {
		c.BaselineScore = -1
	}
	return c
}

// normalised fills in zero fields and validates.
func (c Config) normalised() (Config, error) {
	c = c.Canonical()
	if c.BaselineScore < 0 {
		c.BaselineScore = 0 // disabled: the score floor vanishes
	}
	if c.BaselineScore > 1 {
		return c, fmt.Errorf("core: BaselineScore %v out of range (need <= 1)", c.BaselineScore)
	}
	if c.WindowLen < 2 {
		return c, fmt.Errorf("core: window length %d too small (need >= 2)", c.WindowLen)
	}
	if c.DMax < 1 || c.DMax >= c.WindowLen {
		return c, fmt.Errorf("core: dmax %d out of range (need 1 <= dmax < l=%d)", c.DMax, c.WindowLen)
	}
	if c.MaxPrefetch < 0 {
		return c, fmt.Errorf("core: negative MaxPrefetch %d", c.MaxPrefetch)
	}
	return c, nil
}

// Estimates carries the resource measurements AMPoM reads from the oM_infoD
// monitoring daemon at analysis time (§4).
type Estimates struct {
	// RTT is t0's round-trip component: the daemon-measured round trip time
	// between destination and origin nodes. Note the paper measures this
	// with user-level load-update acknowledgements, so it is much larger
	// than the wire RTT — see DESIGN.md.
	RTT simtime.Duration
	// PageTransfer is td, the time to transfer one page at the currently
	// estimated available bandwidth.
	PageTransfer simtime.Duration
}

// Analysis is the outcome of one per-fault run of the AMPoM algorithm.
type Analysis struct {
	// Score is the spatial locality score S in [0, 1].
	Score float64
	// PagingRate is r in faults per second of Eq. 2/3.
	PagingRate float64
	// CPUMean is c, the mean CPU utilisation over the window.
	CPUMean float64
	// CPUExpected is c' = C_l, the most recent utilisation sample.
	CPUExpected float64
	// NReal is N before truncation, useful for diagnostics.
	NReal float64
	// N is the dependent-zone size actually used (⌊NReal⌋, capped).
	N int
	// Streams is m, the number of outstanding strided streams found.
	Streams int
	// Pivots are the prefetch pivots of the outstanding streams, in window
	// order.
	Pivots []memory.PageNum
	// Zone is the dependent zone: up to N distinct candidate pages, in
	// prefetch priority order. The caller filters out pages already local
	// or in flight before issuing the remote paging request.
	Zone []memory.PageNum
}

// entry is one lookback-window slot.
type entry struct {
	page memory.PageNum
	t    simtime.Time // T_i: access (fault) time
	cpu  float64      // C_i: CPU utilisation when recorded
}

// Prefetcher is the per-process AMPoM state: the lookback window and the
// analysis machinery. Create one per migrant with New.
type Prefetcher struct {
	cfg Config

	win   []entry // ring buffer, oldest at head
	head  int
	count int

	maxPage memory.PageNum // one past the last valid page

	// scratch buffer reused across analyses to avoid per-fault allocation.
	scratchPages []memory.PageNum

	// cumulative statistics for the evaluation figures.
	faults     int64
	prefetched int64
}

// New returns a Prefetcher for an address space of totalPages pages.
func New(cfg Config, totalPages int64) (*Prefetcher, error) {
	cfg, err := cfg.normalised()
	if err != nil {
		return nil, err
	}
	if totalPages <= 0 {
		return nil, fmt.Errorf("core: non-positive address space size %d", totalPages)
	}
	return &Prefetcher{
		cfg:          cfg,
		win:          make([]entry, cfg.WindowLen),
		maxPage:      memory.PageNum(totalPages),
		scratchPages: make([]memory.PageNum, 0, cfg.WindowLen),
	}, nil
}

// MustNew is New panicking on error, for fixtures.
func MustNew(cfg Config, totalPages int64) *Prefetcher {
	p, err := New(cfg, totalPages)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the active configuration.
func (p *Prefetcher) Config() Config { return p.cfg }

// WindowLen returns the number of entries currently in the window.
func (p *Prefetcher) WindowLen() int { return p.count }

// Window returns a copy of the current window contents, oldest first.
func (p *Prefetcher) Window() []memory.PageNum {
	out := make([]memory.PageNum, 0, p.count)
	for i := 0; i < p.count; i++ {
		out = append(out, p.at(i).page)
	}
	return out
}

// at returns the i-th window entry, 0 = oldest.
func (p *Prefetcher) at(i int) *entry {
	return &p.win[(p.head+i)%len(p.win)]
}

// RecordFault appends a fault on page at time now with CPU utilisation cpu
// to the lookback window. When the window is full the oldest entry is
// discarded (§3.1). Consecutive repeated references to the same page are
// temporal locality and collapse into a single reference (§3.1); the entry's
// time and utilisation are refreshed so the paging rate stays current.
func (p *Prefetcher) RecordFault(page memory.PageNum, now simtime.Time, cpu float64) {
	if cpu < 0 {
		cpu = 0
	}
	if cpu > 1 {
		cpu = 1
	}
	p.faults++
	if p.count > 0 {
		last := p.at(p.count - 1)
		if last.page == page {
			last.t = now
			last.cpu = cpu
			return
		}
	}
	if p.count == len(p.win) {
		p.head = (p.head + 1) % len(p.win)
		p.count--
	}
	*p.at(p.count) = entry{page: page, t: now, cpu: cpu}
	p.count++
}

// Faults returns the number of faults recorded so far.
func (p *Prefetcher) Faults() int64 { return p.faults }

// NotePrefetched accumulates the count of pages actually requested as
// prefetches (after residency filtering), for the Figure 8 statistic.
func (p *Prefetcher) NotePrefetched(n int) { p.prefetched += int64(n) }

// Prefetched returns the cumulative number of prefetched pages.
func (p *Prefetcher) Prefetched() int64 { return p.prefetched }

// PrefetchedPerFault returns the Figure 8 statistic.
func (p *Prefetcher) PrefetchedPerFault() float64 {
	if p.faults == 0 {
		return 0
	}
	return float64(p.prefetched) / float64(p.faults)
}

// Analyze runs the AMPoM analysis for the current window state and returns
// the dependent zone. It is called at every page fault, after RecordFault.
func (p *Prefetcher) Analyze(est Estimates) Analysis {
	var a Analysis
	if p.count < 2 {
		return a
	}

	// Gather the window pages into scratch (oldest first).
	w := p.scratchPages[:0]
	for i := 0; i < p.count; i++ {
		w = append(w, p.at(i).page)
	}
	p.scratchPages = w

	// --- Spatial locality score S (Eq. 1) ---------------------------------
	a.Score = p.score(w)

	// --- Paging rate r and CPU terms (Eq. 2) ------------------------------
	first, last := p.at(0), p.at(p.count-1)
	span := last.t.Sub(first.t)
	if span <= 0 {
		span = simtime.Nanosecond
	}
	a.PagingRate = float64(p.count) / span.Seconds()

	var cpuSum float64
	for i := 0; i < p.count; i++ {
		cpuSum += p.at(i).cpu
	}
	a.CPUMean = cpuSum / float64(p.count)
	a.CPUExpected = last.cpu

	// --- Dependent zone size N (Eq. 3) ------------------------------------
	// N = (c'/c) · S · r · t with t = 2t0 + td + 1/r, i.e.
	// N = (c'/c) · S · (r·(2t0+td) + 1).
	// c'/c, clamped: the utilisation probes come from coarse daemon
	// sampling, and an unbounded ratio would let one noisy sample swing the
	// zone size by orders of magnitude.
	ratio := 1.0
	if a.CPUMean > 0 {
		ratio = a.CPUExpected / a.CPUMean
	}
	if ratio < 0.25 {
		ratio = 0.25
	}
	if ratio > 4 {
		ratio = 4
	}
	// t = 2t0 + td + 1/r. The daemon reports the round trip directly, so
	// 2t0 = RTT, and N = (c'/c)·S·r·t = (c'/c)·S·(r·(RTT+td) + 1).
	// The score is floored at the read-ahead baseline (§5.3) for sizing.
	t := est.RTT.Seconds() + est.PageTransfer.Seconds()
	effScore := a.Score
	if effScore < p.cfg.BaselineScore {
		effScore = p.cfg.BaselineScore
	}
	a.NReal = ratio * effScore * (a.PagingRate*t + 1)
	a.N = int(a.NReal)
	if a.N > p.cfg.MaxPrefetch {
		a.N = p.cfg.MaxPrefetch
	}
	if a.N < 0 {
		a.N = 0
	}

	// --- Which pages: prefetch pivots of outstanding streams (§3.4) -------
	a.Pivots = p.pivots(w)
	a.Streams = len(a.Pivots)
	if a.N > 0 {
		a.Zone = p.zone(w, a.Pivots, a.N)
	}
	return a
}

// strideOf returns the stride of the page at window position i: the minimum
// forward distance d (1 ≤ d ≤ DMax) to a later reference to page w[i]+1, or
// 0 when none exists within DMax.
func (p *Prefetcher) strideOf(w []memory.PageNum, i int) int {
	want := w[i] + 1
	for j := i + 1; j < len(w); j++ {
		if w[j] == want {
			if d := j - i; d <= p.cfg.DMax {
				return d
			}
			return 0
		}
	}
	return 0
}

// score computes the spatial locality score S of Eq. 1:
//
//	S = Σ_{d=1..dmax} stride_d / (l·d)
//
// stride_d counts distinct pages participating in stride-d patterns — both
// the page whose minimum forward distance to its successor page is d and
// that successor page itself, matching the paper's worked examples (e.g.
// {1,99,2,45,3,78,4} ⇒ stride_2 = 4 for pages {1,2,3,4}).
func (p *Prefetcher) score(w []memory.PageNum) float64 {
	// Minimum forward distance per page *value*. With at most l = 20
	// entries a flat pair list beats a map.
	type pd struct {
		page memory.PageNum
		d    int
	}
	links := make([]pd, 0, len(w))
	for i := range w {
		d := p.strideOf(w, i)
		if d == 0 {
			continue
		}
		// Keep the minimum d per page value across duplicate positions.
		found := false
		for k := range links {
			if links[k].page == w[i] {
				found = true
				if d < links[k].d {
					links[k].d = d
				}
				break
			}
		}
		if !found {
			links = append(links, pd{w[i], d})
		}
	}

	// Count distinct (page, d) participations: both endpoints of each link.
	var members []pd
	addMember := func(page memory.PageNum, d int) bool {
		for _, m := range members {
			if m.page == page && m.d == d {
				return false
			}
		}
		members = append(members, pd{page, d})
		return true
	}
	counts := make([]int64, p.cfg.DMax+1)
	for _, lk := range links {
		if addMember(lk.page, lk.d) {
			counts[lk.d]++
		}
		if addMember(lk.page+1, lk.d) {
			counts[lk.d]++
		}
	}

	l := p.cfg.WindowLen
	s := 0.0
	for d := 1; d <= p.cfg.DMax; d++ {
		s += float64(counts[d]) / (float64(l) * float64(d))
	}
	if s > 1 {
		s = 1
	}
	return s
}

// pivots finds the outstanding strided streams and their prefetch pivots
// (§3.4). A stride-d link w[q] = w[p]+1 (d = q−p ≤ DMax) is outstanding
// when its completing reference sits in the last d window slots — in the
// paper's 1-based indexing (p+d) > l−d, i.e. q ≥ len(w)−d here. The pivot
// is the page after the stream's last page, w[q]+1. Pivots are
// deduplicated and clamped to the address space.
func (p *Prefetcher) pivots(w []memory.PageNum) []memory.PageNum {
	var out []memory.PageNum
	n := len(w)
	seen := func(piv memory.PageNum) bool {
		for _, o := range out {
			if o == piv {
				return true
			}
		}
		return false
	}
	for i := range w {
		d := p.strideOf(w, i)
		if d == 0 {
			continue
		}
		q := i + d
		if q < n-d {
			continue // stream no longer outstanding
		}
		piv := w[q] + 1
		if piv >= 0 && piv < p.maxPage && !seen(piv) {
			out = append(out, piv)
		}
	}
	return out
}

// zone materialises the dependent zone: n pages distributed over the pivots
// (n/m pages following each pivot, duplicates rolling their quota forward to
// further pages — §3.4), or, with no outstanding streams, the n pages
// following the last faulted page, imitating Linux read-ahead.
func (p *Prefetcher) zone(w []memory.PageNum, pivots []memory.PageNum, n int) []memory.PageNum {
	out := make([]memory.PageNum, 0, n)
	chosen := make(map[memory.PageNum]bool, n)
	add := func(page memory.PageNum) bool {
		if page < 0 || page >= p.maxPage || chosen[page] {
			return false
		}
		chosen[page] = true
		out = append(out, page)
		return true
	}

	if len(pivots) == 0 {
		last := w[len(w)-1]
		for i := 1; len(out) < n; i++ {
			page := last + memory.PageNum(i)
			if page >= p.maxPage {
				break
			}
			add(page)
		}
		return out
	}

	m := len(pivots)
	quota := n / m
	extra := n % m
	for idx, piv := range pivots {
		q := quota
		if idx < extra {
			q++
		}
		// Take q *fresh* pages starting at the pivot; pages already chosen
		// by an earlier stream do not consume quota ("saved quota").
		for page := piv; q > 0 && page < p.maxPage; page++ {
			if add(page) {
				q--
			}
		}
	}
	return out
}
